// Command ringbreak demonstrates the Figure 13 / Appendix D optimization:
// on a ring share graph every replica must track every directed cycle edge
// (2n counters each — the Section 4 lower bound is tight), but breaking
// one share edge and relaying its register's updates hop-by-hop over
// virtual registers collapses the metadata to a path's worth, trading
// update latency for timestamp size.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 8
	ring := sharegraph.Ring(n)
	ringProto, err := core.NewEdgeIndexed(ring)
	if err != nil {
		return err
	}
	broken, err := optimize.BreakRing(n)
	if err != nil {
		return err
	}

	fmt.Printf("%d-replica ring, register ring%d shared by replicas 0 and %d\n\n", n, n-1, n-1)
	ringNodes, err := ringProto.NewNodes()
	if err != nil {
		return err
	}
	brokenNodes, err := broken.NewNodes()
	if err != nil {
		return err
	}
	fmt.Println("replica  ring-counters  broken-ring-counters")
	for i := 0; i < n; i++ {
		fmt.Printf("   %d          %2d               %2d\n",
			i, ringNodes[i].MetadataEntries(), brokenNodes[i].MetadataEntries())
	}

	script := workload.SharedOnly(ring, 400, 11)
	for _, p := range []core.Protocol{ringProto, broken} {
		res, err := sim.Run(sim.Config{
			Graph: ring, Protocol: p, Script: script, Sched: transport.NewRandom(5),
		})
		if err != nil {
			return err
		}
		status := "consistent ✓"
		if !res.Ok() {
			status = fmt.Sprintf("VIOLATIONS: %v", res.Violations)
		}
		fmt.Printf("\n%-12s msgs=%-5d metaBytes=%-6d avg=%.1f B/msg  %s\n",
			p.Name(), res.MessagesSent, res.MetaBytes, res.AvgMetaBytes(), status)
	}
	fmt.Printf("\nthe broken ring relays ring%d updates over %d hops instead of 1 —\n", n-1, n-1)
	fmt.Println("the metadata/latency trade-off of Appendix D, Figure 13.")
	return nil
}
