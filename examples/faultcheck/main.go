// Command faultcheck shows why partial replication needs the paper's
// metadata: it runs two tempting-but-wrong protocols under adversarial
// asynchrony and lets the happened-before oracle catch them.
//
//   - fifo-only (per-channel sequence numbers): violates SAFETY — a reply
//     can be applied before the post it answers when the dependency
//     travelled through a third replica (Theorem 8's necessity argument).
//   - naive-vector (classic length-R vector clocks without metadata
//     broadcast): violates LIVENESS — a replica waits forever for an
//     update that was never addressed to it.
//
// The paper's edge-indexed algorithm passes the same schedules.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := prcc.New([][]prcc.Register{
		{"wall", "dm-01"},
		{"wall", "dm-01", "dm-12"},
		{"wall", "dm-12"},
	})
	if err != nil {
		return err
	}

	for _, kind := range []prcc.ProtocolKind{
		prcc.FIFOOnlyProtocol,
		prcc.NaiveVectorProtocol,
		prcc.EdgeIndexedProtocol,
	} {
		verdict := "no violation found"
		// Sweep seeds; broken protocols fail quickly under reordering.
		for seed := int64(1); seed <= 30; seed++ {
			rep, err := sys.Simulate(prcc.SimOptions{
				Protocol: kind, Ops: 60, Seed: seed, TrackFalseDeps: true,
			})
			if err != nil {
				return err
			}
			if !rep.Ok() {
				if len(rep.Violations) > 0 {
					verdict = fmt.Sprintf("seed %d: %s", seed, rep.Violations[0])
				} else {
					verdict = fmt.Sprintf("seed %d: %d updates stranded forever", seed, rep.StuckUpdates)
				}
				break
			}
		}
		fmt.Printf("%-14s → %s\n", kind, verdict)
	}
	fmt.Println("\nonly the edge-indexed protocol survives every schedule — and its")
	fmt.Println("metadata is exactly what Theorem 8 proves necessary.")
	return nil
}
