// Command geosocial models the workload that motivates causally
// consistent partial replication: a social feed sharded across regional
// datacenters, with users (clients) roaming between the replicas near
// them. Causal consistency guarantees nobody sees a reply before the post
// it answers — even when post and reply live on different replicas and the
// user who wrote the reply read the post elsewhere (the Appendix E
// client-server architecture).
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four regional replicas, each storing the feeds of nearby users plus
	// shared timelines: EU and US share the "global" timeline; EU and
	// ASIA share "tech"; US and ASIA share "sports". A private board per
	// region rounds out the placement.
	const (
		eu   = prcc.ReplicaID(0)
		us   = prcc.ReplicaID(1)
		asia = prcc.ReplicaID(2)
		aus  = prcc.ReplicaID(3)
	)
	stores := [][]prcc.Register{
		{"global", "tech", "eu-board"},
		{"global", "sports", "us-board"},
		{"tech", "sports", "asia-board", "oceania"},
		{"oceania", "aus-board"},
	}
	// Alice roams between EU and US; Bob between US and ASIA; Carol
	// between ASIA and AUS. Carol's client bridges replicas 2 and 3.
	clients := [][]prcc.ReplicaID{
		{eu, us},
		{us, asia},
		{asia, aus},
	}
	cs, err := prcc.NewClientServer(stores, clients)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("replica %d: %d timestamp counters\n", i, cs.ServerEntries(prcc.ReplicaID(i)))
	}
	for c := 0; c < 3; c++ {
		fmt.Printf("client %d: %d timestamp counters\n", c, cs.ClientEntries(prcc.ClientID(c)))
	}

	// A day of traffic: posts, cross-region replies, reads.
	scripts := [][]prcc.ClientOp{
		{ // Alice: posts on global from EU, reads it back from US.
			{Reg: "global"},
			{Reg: "global", IsRead: true},
			{Reg: "tech"},
		},
		{ // Bob: reads global (must see Alice's post or nothing newer than
			// its causes), replies on sports.
			{Reg: "global", IsRead: true},
			{Reg: "sports"},
			{Reg: "sports", IsRead: true},
		},
		{ // Carol: reads tech in ASIA, posts to oceania (bridging to AUS).
			{Reg: "tech", IsRead: true},
			{Reg: "oceania"},
			{Reg: "oceania", IsRead: true},
		},
	}
	rep, err := cs.Simulate(scripts, 2026)
	if err != nil {
		return err
	}
	fmt.Printf("requests=%d responses=%d inter-replica updates=%d metadata bytes=%d\n",
		rep.Requests, rep.Responses, rep.Updates, rep.MetaBytes)
	if !rep.Ok() {
		return fmt.Errorf("consistency violations: %v", rep.Violations)
	}
	fmt.Println("causally consistent across all regions ✓")

	// The same deployment live: synchronous clients on real goroutines,
	// inter-replica updates on the shared worker-pool engine (bounded
	// inboxes, fixed goroutine count — the same runtime as sys.Cluster).
	live := cs.LiveWith(prcc.ClusterOptions{Workers: 4})
	defer live.Close()
	var wg sync.WaitGroup
	for c, script := range scripts {
		wg.Add(1)
		go func(c int, ops []prcc.ClientOp) {
			defer wg.Done()
			handle := live.Client(prcc.ClientID(c))
			for k, op := range ops {
				if op.IsRead {
					// A live read blocks until the serving replica has
					// caught up with this client's causal past (J1).
					if _, err := handle.Read(op.Reg); err != nil {
						log.Printf("client %d read %q: %v", c, op.Reg, err)
					}
					continue
				}
				if err := handle.Write(op.Reg, prcc.Value(100*c+k)); err != nil {
					log.Printf("client %d write %q: %v", c, op.Reg, err)
				}
			}
		}(c, script)
	}
	wg.Wait()
	live.Sync()
	if err := live.Check(); err != nil {
		return err
	}
	m := live.Metrics()
	fmt.Printf("live: workers=%d updates=%d metadata bytes=%d — consistent ✓\n",
		live.Workers(), m.Updates, m.MetaBytes)
	return nil
}
