// Command quickstart walks the paper's running example (Figure 3): a
// four-replica partially replicated shared memory where replica i stores
// only part of the register space, running the edge-indexed causal
// consistency protocol end to end on a live cluster.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Figure 3 placement: X1={x}, X2={x,y}, X3={y,z}, X4={z}
	// (zero-based replicas 0..3). The share graph is the path 0–1–2–3.
	sys, err := prcc.New([][]prcc.Register{
		{"x"},
		{"x", "y"},
		{"y", "z"},
		{"z"},
	})
	if err != nil {
		return err
	}

	fmt.Println(sys.ShareGraph())
	for i := 0; i < sys.NumReplicas(); i++ {
		fmt.Printf("replica %d timestamp: %d counters over %v\n",
			i, sys.MetadataEntries(prcc.ReplicaID(i)), sys.TrackedEdges(prcc.ReplicaID(i)))
	}

	cluster, err := sys.Cluster()
	if err != nil {
		return err
	}
	defer cluster.Close()

	// A causal chain: 0 writes x; 1 sees it and writes y; 2 sees y and
	// writes z; 3 reads z. Causal consistency guarantees 3 never observes
	// effects out of cause order.
	if err := cluster.Write(0, "x", 1); err != nil {
		return err
	}
	cluster.Sync()
	if v, ok := cluster.Read(1, "x"); ok {
		fmt.Printf("replica 1 reads x = %d\n", v)
	}
	if err := cluster.Write(1, "y", 2); err != nil {
		return err
	}
	cluster.Sync()
	if v, ok := cluster.Read(2, "y"); ok {
		fmt.Printf("replica 2 reads y = %d\n", v)
	}
	if err := cluster.Write(2, "z", 3); err != nil {
		return err
	}
	cluster.Sync()
	if v, ok := cluster.Read(3, "z"); ok {
		fmt.Printf("replica 3 reads z = %d\n", v)
	}

	// Audit the whole execution against the happened-before oracle.
	if err := cluster.Check(); err != nil {
		return err
	}
	m := cluster.Metrics()
	fmt.Printf("causally consistent ✓ (%d update messages, %d metadata bytes)\n", m.Messages, m.MetaBytes)
	return nil
}
