package prcc

// Steady-state allocation assertions for the emit-based write fanout: a
// full write → emit → copy-meta → deliver → recycle cycle — the hot path
// of both live runtimes — must not allocate once caches and freelists are
// warm, for the paper's algorithm and every baseline. This is the
// acceptance check for the core.Sink contract: envelope slices, encoded
// metadata and recipient lists are recycled, never reallocated per write.

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// deliverySink mimics the runtimes' sinks: it copies the node-owned Meta
// through a recycling pool, hands the envelope straight to its
// destination node, and returns the buffer once ingested. Immediate
// in-order delivery keeps every update applicable on arrival, so the
// cycle is pure steady state.
type deliverySink struct {
	nodes []core.Node
	meta  transport.BytePool
}

func (s *deliverySink) Emit(env core.Envelope) {
	env.Meta = s.meta.Copy(env.Meta)
	s.nodes[env.To].HandleMessage(env, s)
	s.meta.Put(env.Meta)
}

// fanoutProtocols builds every protocol the emit contract covers over one
// topology.
func fanoutProtocols(tb testing.TB, g *sharegraph.Graph) []core.Protocol {
	tb.Helper()
	edge, err := core.NewEdgeIndexed(g)
	if err != nil {
		tb.Fatal(err)
	}
	return []core.Protocol{
		edge,
		baseline.NewFIFOOnly(g),
		baseline.NewNaiveVector(g),
		baseline.NewBroadcast(g),
		baseline.NewMatrix(g),
	}
}

// writeCycle builds the warmed write→deliver closure for one protocol.
func writeCycle(tb testing.TB, p core.Protocol) func() {
	tb.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		tb.Fatal(err)
	}
	sink := &deliverySink{nodes: nodes}
	id := causality.UpdateID(0)
	v := core.Value(0)
	cycle := func() {
		v++
		if err := nodes[0].HandleWrite("ring0", v, id, sink); err != nil {
			tb.Fatalf("%s: write: %v", p.Name(), err)
		}
		id++
	}
	// Warm every cache on the path: recipient lists, metadata scratch,
	// decode freelists, ingest queues, the byte pool.
	for i := 0; i < 512; i++ {
		cycle()
	}
	return cycle
}

func TestWriteFanoutSteadyStateZeroAlloc(t *testing.T) {
	g := sharegraph.Ring(8)
	for _, p := range fanoutProtocols(t, g) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cycle := writeCycle(t, p)
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				t.Errorf("write fanout allocates %.2f objects/op in steady state, want 0", avg)
			}
		})
	}
}

// BenchmarkWriteFanout times the full steady-state write→deliver cycle
// per protocol and fails if it allocates — the benchmark-level assertion
// of the emit contract.
func BenchmarkWriteFanout(b *testing.B) {
	g := sharegraph.Ring(8)
	for _, p := range fanoutProtocols(b, g) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			cycle := writeCycle(b, p)
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				b.Fatalf("write fanout allocates %.2f objects/op in steady state, want 0", avg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cycle()
			}
		})
	}
}
