package prcc

// Steady-state allocation assertions for the emit-based write fanout: a
// full write → emit → copy-meta → deliver → recycle cycle — the hot path
// of both live runtimes — must not allocate once caches and freelists are
// warm, for the paper's algorithm and every baseline. This is the
// acceptance check for the core.Sink contract: envelope slices, encoded
// metadata and recipient lists are recycled, never reallocated per write.

import (
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// deliverySink mimics the runtimes' sinks: it copies the node-owned Meta
// through a recycling pool, hands the envelope straight to its
// destination node, and returns the buffer once ingested. Immediate
// in-order delivery keeps every update applicable on arrival, so the
// cycle is pure steady state.
type deliverySink struct {
	nodes []core.Node
	meta  transport.BytePool
}

func (s *deliverySink) Emit(env core.Envelope) {
	env.Meta = s.meta.Copy(env.Meta)
	s.nodes[env.To].HandleMessage(env, s)
	s.meta.Put(env.Meta)
}

// fanoutProtocols builds every protocol the emit contract covers over one
// topology.
func fanoutProtocols(tb testing.TB, g *sharegraph.Graph) []core.Protocol {
	tb.Helper()
	edge, err := core.NewEdgeIndexed(g)
	if err != nil {
		tb.Fatal(err)
	}
	return []core.Protocol{
		edge,
		baseline.NewFIFOOnly(g),
		baseline.NewNaiveVector(g),
		baseline.NewBroadcast(g),
		baseline.NewMatrix(g),
	}
}

// writeCycle builds the warmed write→deliver closure for one protocol.
func writeCycle(tb testing.TB, p core.Protocol) func() {
	tb.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		tb.Fatal(err)
	}
	sink := &deliverySink{nodes: nodes}
	id := causality.UpdateID(0)
	v := core.Value(0)
	cycle := func() {
		v++
		if err := nodes[0].HandleWrite("ring0", v, id, sink); err != nil {
			tb.Fatalf("%s: write: %v", p.Name(), err)
		}
		id++
	}
	// Warm every cache on the path: recipient lists, metadata scratch,
	// decode freelists, ingest queues, the byte pool.
	for i := 0; i < 512; i++ {
		cycle()
	}
	return cycle
}

func TestWriteFanoutSteadyStateZeroAlloc(t *testing.T) {
	g := sharegraph.Ring(8)
	for _, p := range fanoutProtocols(t, g) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cycle := writeCycle(t, p)
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				t.Errorf("write fanout allocates %.2f objects/op in steady state, want 0", avg)
			}
		})
	}
}

// TestAuditedOracleAllocBelowFlat is the end-to-end acceptance check for
// the persistent copy-on-write oracle: a full audited simulation must
// allocate strictly less under the default persistent tracker than under
// the flat-clone reference, at a scale (ring of 32, 5k ops) where the
// flat clone's quadratic bytes dominate. Differential tests elsewhere
// pin the two to identical verdicts; this pins the reason the persistent
// one is the default.
func TestAuditedOracleAllocBelowFlat(t *testing.T) {
	g := sharegraph.Ring(32)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	script := workload.SharedOnly(g, 5000, 1)
	measure := func(flat bool) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := sim.Run(sim.Config{
			Graph: g, Protocol: p, Script: script,
			Sched: transport.NewRandom(11), FlatOracle: flat,
		})
		runtime.ReadMemStats(&after)
		if err != nil || !res.Ok() {
			t.Fatalf("run failed: %v", err)
		}
		return after.TotalAlloc - before.TotalAlloc
	}
	flatBytes := measure(true)
	persBytes := measure(false)
	if persBytes >= flatBytes {
		t.Errorf("audited run allocated %d B with the persistent oracle, %d B with the flat oracle; persistent must be strictly cheaper",
			persBytes, flatBytes)
	}
}

// BenchmarkWriteFanout times the full steady-state write→deliver cycle
// per protocol and fails if it allocates — the benchmark-level assertion
// of the emit contract.
func BenchmarkWriteFanout(b *testing.B) {
	g := sharegraph.Ring(8)
	for _, p := range fanoutProtocols(b, g) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			cycle := writeCycle(b, p)
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				b.Fatalf("write fanout allocates %.2f objects/op in steady state, want 0", avg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cycle()
			}
		})
	}
}
