// Package prcc is a partially replicated causally consistent shared
// memory, implementing the algorithm and analyses of Xiang & Vaidya,
// "Partially Replicated Causally Consistent Shared Memory: Lower Bounds
// and An Algorithm" (PODC 2019).
//
// A System is defined by a register placement: which replica stores which
// shared read/write registers. From the placement the library derives the
// share graph (Definition 3), each replica's timestamp graph (the exact
// set of edge counters Theorem 8 proves necessary and Theorem 24 proves
// sufficient), and runs the Section 3.3 edge-indexed protocol over either
// a live worker-pool cluster or a deterministic simulator.
//
// Quick start:
//
//	sys, err := prcc.New([][]prcc.Register{
//	    {"x"}, {"x", "y"}, {"y", "z"}, {"z"},
//	})
//	cluster, err := sys.Cluster()
//	cluster.Write(1, "y", 42)
//	cluster.Sync()
//	v, ok := cluster.Read(2, "y") // 42, true — causally consistent
//	err = cluster.Check()          // audit with the happened-before oracle
//	cluster.Close()
//
// # Live runtime
//
// Cluster is a worker-pool runtime: a fixed pool of delivery workers
// (ClusterOptions.Workers, default GOMAXPROCS) pulls messages from
// bounded per-replica inboxes and feeds them to the protocol state
// machines, so the goroutine count is workers plus constant overhead
// regardless of traffic — not one goroutine per message. The transport
// realizes the paper's non-FIFO system model by seeded shuffle: each
// delivery takes a uniformly random buffered message from the
// destination's inbox.
//
// Backpressure contract: Write blocks while any destination inbox is at
// capacity (ClusterOptions.InboxCapacity, default 1024), so writers are
// throttled to delivery speed instead of growing memory without bound.
// Protocol-level forwards (relaying topologies) are exempt — a worker
// that blocked on a full inbox could deadlock the pool — so inboxes can
// transiently overshoot by at most one write fanout per worker. Close
// drains all in-flight messages and stops every worker before returning.
// RunCluster drives a generated workload through a live cluster end to
// end and reports the oracle's verdicts.
//
// The same engine runs the Appendix E client-server architecture:
// LiveClientServer (see ClientServerSystem.Live and LiveWith) dispatches
// inter-replica updates through an identical worker pool, so both of the
// paper's deployment shapes share one bounded-goroutine runtime.
//
// Beyond the protocol itself the package exposes the paper's analyses:
// metadata sizing and compression (Section 5), conflict-graph lower bounds
// on timestamp size (Section 4), baseline protocols for comparison, the
// client-server architecture (Appendix E), and the Appendix D
// optimizations (dummy registers, ring breaking, loop truncation).
//
// # Performance
//
// The delivery engine exploits the shape of the paper's deliverability
// predicate J: for a fixed (receiver i, sender k) pair, J requires
// τ_i[e_ki] = T[e_ki] − 1 exactly, and every update k sends to i advances
// the e_{ki} counter by exactly one — so the counter carried in an
// update's metadata is a consecutive per-receiver sequence number, and at
// most one buffered update per sender can ever be deliverable. Each
// replica therefore files buffered updates in per-sender queues keyed by
// that sequence number; an out-of-order arrival is a single O(1) map
// insert, and applying an update re-examines only the sender heads whose
// predicate reads the one gate counter the merge advanced (a set
// precomputed per topology). The reference full-buffer rescan engine is
// retained behind core.NewEdgeIndexedNaive and the baselines' *Rescan
// constructors; differential tests assert the two engines produce
// identical measurements on every schedule.
//
// The protocol⇄runtime boundary is an emit contract: instead of
// allocating and returning an envelope slice per write, a node pushes
// each outgoing message into the runtime's sink (core.Sink), referencing
// node-owned scratch — the encoded metadata buffer is reused across
// writes and the recipient list is cached per register. A sink that
// buffers an envelope copies its metadata through a recycling pool and
// returns the copy once the message has been ingested, so the entire
// write fanout — envelope, metadata, recipients — is allocation-free in
// steady state (asserted by TestWriteFanoutSteadyStateZeroAlloc and
// BenchmarkWriteFanout).
//
// Underneath, the remaining per-operation layers are allocation-free the
// same way: timestamps advance and merge in place, decoded metadata
// vectors are recycled through a freelist, the in-flight message pool
// removes by head index with amortized compaction (O(1) for the oldest
// or newest pick) while preserving message order bit-for-bit, and the
// simulator indexes its bookkeeping by the dense causality.UpdateID
// instead of maps.
//
// The consistency oracle fixes each update's causal past at issue time
// (Definition 1) — once a full bitset clone per issue, O(ops²/8) bytes
// per audited run and the dominant cost at 50k-op scale. It now runs on
// persistent copy-on-write sets: a radix tree of 512-bit chunks under
// 32-way interior nodes, where snapshotting a causal past is O(1)
// structural sharing and set/union copy only the paths they touch. Every
// node carries an (owner, epoch) tag; a snapshot or union freezes the
// source by bumping its epoch, after which either side copies-on-write
// before mutating shared structure. The frontier chunk lives by value in
// the set header (update IDs arrive in increasing order, so nearly every
// insert is a plain word store there), and the per-apply safety check
// intersects the new update's past against an incrementally maintained
// issued-but-not-yet-applied set — word-parallel over chunks, scanning
// only in-flight updates instead of the whole history. Audited ring64
// runs at 50k ops dropped from ~286 MB to ~40 MB allocated (~7×), so
// auditing stays on by default at scale; the flat representation remains
// as causality.NewFlatTracker (plus sim.Config.FlatOracle and
// sim.WithFlatOracle) for the differential tests that pin both
// representations to identical verdicts. Flat still wins only for tiny
// histories, where a clone is one small memcpy and the tree's pointer
// hop per 512 bits cannot amortize. Runs that want no verdict at all can
// still skip auditing with SimOptions.SkipAudit /
// ClusterOptions.SkipAudit.
//
// # Loop search
//
// Definition 5 timestamp graphs need an (i, e_jk)-loop existence decision
// per replica and non-incident edge. The original formulation enumerates
// simple loops through i — exponential in replica count, and in practice
// unable to finish sharegraph.RandomK(32, 96, 3, 7) untruncated. Builds
// now run on an exact engine (sharegraph.NewLoopSearcher /
// NewAugmentedLoopSearcher) that never enumerates loops. It canonicalizes
// register sets to word masks over the registers that actually appear in
// shared edge sets (private registers cannot affect any side condition),
// and searches l-paths as a Pareto fixpoint over (vertex, interior-mask)
// states: every Definition 4 side condition has the form "X − S ≠ ∅" for
// an S that only grows along the path, so feasibility is antitone in the
// interior mask and each vertex needs only an antichain of ⊆-minimal
// masks — dominated states are pruned instead of explored. States that
// cannot reach k, or whose mask already covers X_jk or every usable first
// r-hop label, die at depth 1. The r-side needs no search at all: a hop
// into an l-path interior vertex v carries a label inside X_v ⊆ interior,
// so conditions (ii)/(iii) already exclude the l-path and deciding the
// r-path is one BFS over filter-passing edges per undominated arrival at
// k. The augmented engine (Definition 27) appends visited-vertex bits to
// the state mask, since client-pair hops bypass the register filter. The
// untruncated RandomK(32, 96, 3, 7) build dropped from not finishing to
// ~40ms, so dense-topology benchmarks, prcc-graph and the simulator all
// run the exact protocol rather than the Appendix D sacrificed-causality
// variant. The legacy enumerating DFS survives as Graph.FindIEJKLoop —
// the reference implementation that differential and fuzz tests hold the
// engine byte-identical to — and still wins where it is already linear
// (one-query lookups on sparse rings/trees with no searcher reuse) and
// for bounded searches: LoopOptions.MaxLen truncation (Appendix D)
// delegates to it, because a length bound breaks mask monotonicity while
// making the DFS tractable by construction.
//
// Scale benchmarks covering 32- and 64-replica topologies at up to 100k
// operations live in the root bench harness:
//
//	go test -run xxx -bench 'BenchmarkScaleDelivery|BenchmarkDrainOutOfOrder' -benchmem .
//
// or run scripts/bench.sh to capture the full suite as JSON (the CI
// bench job replays it and fails on >25% scale-benchmark regressions via
// cmd/prcc-benchgate). The dense random topology runs both truncated
// (randomk32_5k, the Appendix D variant) and untruncated
// (randomk32_5k_exact) so the cost of exact causality tracking stays
// measured.
package prcc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Register names a shared read/write register.
type Register = sharegraph.Register

// ReplicaID identifies a replica (0-based).
type ReplicaID = sharegraph.ReplicaID

// Value is the content of a register write.
type Value = core.Value

// Violation is a detected causal-consistency violation.
type Violation = causality.Violation

// System is a partially replicated shared-memory configuration: the
// placement, its derived share and timestamp graphs, and the edge-indexed
// protocol instance. Systems are immutable and safe to share.
type System struct {
	graph    *sharegraph.Graph
	tsgraphs []*sharegraph.TSGraph
	protocol *core.EdgeIndexed
}

// New builds a System from a register placement: stores[i] lists the
// registers replicated at replica i.
func New(stores [][]Register) (*System, error) {
	g, err := sharegraph.New(stores)
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	p, err := core.NewEdgeIndexedWithGraphs(g, graphs, "edge-indexed")
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &System{graph: g, tsgraphs: graphs, protocol: p}, nil
}

// NumReplicas returns the number of replicas.
func (s *System) NumReplicas() int { return s.graph.NumReplicas() }

// Registers lists every register in the system, sorted.
func (s *System) Registers() []Register { return s.graph.Registers() }

// Stores reports whether replica i stores register x.
func (s *System) Stores(i ReplicaID, x Register) bool {
	return s.graph.StoresRegister(i, x)
}

// Holders returns the replicas storing register x.
func (s *System) Holders(x Register) []ReplicaID { return s.graph.Holders(x) }

// MetadataEntries returns |E_i| — the number of integer counters in
// replica i's timestamp, the quantity the paper's lower bounds govern.
func (s *System) MetadataEntries(i ReplicaID) int { return s.tsgraphs[i].Len() }

// TrackedEdges renders replica i's timestamp-graph edges (Definition 5) in
// e(j->k) notation.
func (s *System) TrackedEdges(i ReplicaID) []string {
	edges := s.tsgraphs[i].Edges()
	out := make([]string, len(edges))
	for p, e := range edges {
		out[p] = e.String()
	}
	return out
}

// ShareGraph renders the placement and share graph for inspection.
func (s *System) ShareGraph() string { return s.graph.String() }

// ClusterOptions configures the live worker-pool runtime. The zero value
// selects the defaults documented per field.
type ClusterOptions struct {
	// Workers is the delivery worker-pool size. The default (zero) is
	// GOMAXPROCS but at least 2; an explicit count is used as given.
	Workers int
	// InboxCapacity bounds each replica's inbox (default 1024). Client
	// writes block while a destination inbox is full — the backpressure
	// contract.
	InboxCapacity int
	// MaxDelay adds an artificial per-delivery delay of up to this
	// duration (default 0). Reordering does not need it — the inbox
	// shuffle reorders regardless — but stress tests use it to hold
	// messages in flight longer.
	MaxDelay time.Duration
	// Seed drives the per-inbox delivery shuffles (default 1).
	Seed int64
	// SkipAudit disables the causality oracle for runs that want no
	// verdict at all. Auditing is cheap by default — the oracle's
	// persistent copy-on-write sets snapshot each causal past in O(1)
	// instead of cloning a bitset per issue — so this is now a choice,
	// not a necessity, even at 50k-op scale. Check reports nothing on an
	// unaudited cluster.
	SkipAudit bool
}

func (o ClusterOptions) simOptions() []sim.ClusterOption {
	var opts []sim.ClusterOption
	if o.Workers > 0 {
		opts = append(opts, sim.WithWorkers(o.Workers))
	}
	if o.InboxCapacity > 0 {
		opts = append(opts, sim.WithInboxCapacity(o.InboxCapacity))
	}
	if o.MaxDelay > 0 {
		opts = append(opts, sim.WithMaxDelay(o.MaxDelay))
	}
	if o.Seed != 0 {
		opts = append(opts, sim.WithSeed(o.Seed))
	}
	if o.SkipAudit {
		opts = append(opts, sim.WithoutAudit())
	}
	return opts
}

// Cluster starts a live worker-pool cluster running the edge-indexed
// protocol with default options, audited by the happened-before oracle.
func (s *System) Cluster() (*Cluster, error) {
	return s.ClusterWith(ClusterOptions{})
}

// ClusterWith starts a live worker-pool cluster with explicit runtime
// options.
func (s *System) ClusterWith(opts ClusterOptions) (*Cluster, error) {
	c, err := sim.NewCluster(s.graph, s.protocol, opts.simOptions()...)
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &Cluster{inner: c}, nil
}

// Cluster is a running shared-memory deployment.
type Cluster struct {
	inner *sim.Cluster
}

// Write performs a client write at replica r. It fails if r does not
// store x.
func (c *Cluster) Write(r ReplicaID, x Register, v Value) error {
	return c.inner.Write(r, x, v)
}

// Read returns replica r's local copy of x (reads never block; this is
// the causal-consistency read of the replica prototype).
func (c *Cluster) Read(r ReplicaID, x Register) (Value, bool) {
	return c.inner.Read(r, x)
}

// Sync blocks until all in-flight updates have been delivered and applied.
func (c *Cluster) Sync() { c.inner.Quiesce() }

// Check audits the execution so far against replica-centric causal
// consistency (Definition 2) using the ground-truth happened-before
// oracle; it returns an error describing the first violation, if any.
// Call Sync first to include liveness at quiescence. On a cluster built
// with ClusterOptions.SkipAudit there is no oracle and Check reports
// nothing.
func (c *Cluster) Check() error {
	t := c.inner.Tracker()
	if t == nil {
		return nil
	}
	vs := t.Violations()
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(vs))
	for _, v := range vs {
		msgs = append(msgs, v.String())
	}
	return fmt.Errorf("prcc: %d violations: %s", len(vs), strings.Join(msgs, "; "))
}

// Stats reports transport-level counters.
func (c *Cluster) Stats() (messages int64, metaBytes int64) {
	return c.inner.MessagesSent(), c.inner.MetaBytes()
}

// Workers returns the delivery worker-pool size.
func (c *Cluster) Workers() int { return c.inner.Workers() }

// Outstanding returns the number of in-flight messages (buffered or being
// delivered). After Close it is zero.
func (c *Cluster) Outstanding() int { return c.inner.Outstanding() }

// Close shuts the cluster down after draining in-flight deliveries; no
// goroutines outlive it.
func (c *Cluster) Close() { c.inner.Close() }

// ProtocolKind selects a protocol for Simulate.
type ProtocolKind int

// Protocols available to Simulate.
const (
	// EdgeIndexedProtocol is the paper's Section 3.3 algorithm.
	EdgeIndexedProtocol ProtocolKind = iota + 1
	// MatrixProtocol is the R×R matrix-clock baseline (safe, quadratic).
	MatrixProtocol
	// BroadcastProtocol is the dummy-register full-replication emulation.
	BroadcastProtocol
	// NaiveVectorProtocol is the classic length-R vector baseline
	// (safe but not live under partial replication).
	NaiveVectorProtocol
	// FIFOOnlyProtocol is the per-channel sequencing baseline
	// (violates causal safety).
	FIFOOnlyProtocol
)

func (k ProtocolKind) String() string {
	switch k {
	case EdgeIndexedProtocol:
		return "edge-indexed"
	case MatrixProtocol:
		return "matrix"
	case BroadcastProtocol:
		return "dummy-broadcast"
	case NaiveVectorProtocol:
		return "naive-vector"
	case FIFOOnlyProtocol:
		return "fifo-only"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(k))
	}
}

// SimOptions configures a deterministic simulation.
type SimOptions struct {
	// Protocol defaults to EdgeIndexedProtocol.
	Protocol ProtocolKind
	// Ops is the number of client operations (default 200).
	Ops int
	// ReadFraction in [0,1] (default 0).
	ReadFraction float64
	// Seed drives workload and schedule (default 1).
	Seed int64
	// Adversarial uses LIFO (maximally reordering) delivery instead of
	// seeded-random.
	Adversarial bool
	// TrackFalseDeps enables false-dependency accounting (slower).
	TrackFalseDeps bool
	// SkipAudit disables the causality oracle for pure-throughput runs
	// (see ClusterOptions.SkipAudit); Violations stays empty and
	// TrackFalseDeps is ignored.
	SkipAudit bool
}

// SimReport is the outcome of a deterministic simulation.
type SimReport struct {
	Protocol         string
	Writes           int
	Applies          int
	Messages         int
	MetaOnlyMessages int
	MetaBytes        int
	AvgMetaBytes     float64
	FalseDeps        int
	StuckUpdates     int
	Violations       []Violation
	EntriesPerNode   []int
}

// Ok reports a clean run.
func (r SimReport) Ok() bool { return len(r.Violations) == 0 && r.StuckUpdates == 0 }

// protocolFor builds the protocol instance a ProtocolKind selects.
func (s *System) protocolFor(k ProtocolKind) (core.Protocol, error) {
	switch k {
	case EdgeIndexedProtocol, 0:
		return s.protocol, nil
	case MatrixProtocol:
		return baseline.NewMatrix(s.graph), nil
	case BroadcastProtocol:
		return baseline.NewBroadcast(s.graph), nil
	case NaiveVectorProtocol:
		return baseline.NewNaiveVector(s.graph), nil
	case FIFOOnlyProtocol:
		return baseline.NewFIFOOnly(s.graph), nil
	default:
		return nil, fmt.Errorf("prcc: unknown protocol %v", k)
	}
}

// Simulate runs a seeded workload under a deterministic scheduler and
// returns measurements plus the oracle's verdicts.
func (s *System) Simulate(opts SimOptions) (SimReport, error) {
	p, err := s.protocolFor(opts.Protocol)
	if err != nil {
		return SimReport{}, err
	}
	ops := opts.Ops
	if ops == 0 {
		ops = 200
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	script, err := workload.Generate(s.graph, workload.Options{
		Ops: ops, ReadFraction: opts.ReadFraction, Seed: seed,
	})
	if err != nil {
		return SimReport{}, fmt.Errorf("prcc: %w", err)
	}
	var sched transport.Scheduler = transport.NewRandom(seed)
	if opts.Adversarial {
		sched = transport.LIFOScheduler{}
	}
	res, err := sim.Run(sim.Config{
		Graph: s.graph, Protocol: p, Script: script,
		Sched: sched, TrackFalseDeps: opts.TrackFalseDeps,
		SkipAudit: opts.SkipAudit,
	})
	if err != nil {
		return SimReport{}, fmt.Errorf("prcc: %w", err)
	}
	return SimReport{
		Protocol:         res.Protocol,
		Writes:           res.Writes,
		Applies:          res.Applies,
		Messages:         res.MessagesSent,
		MetaOnlyMessages: res.MetaOnlyMessages,
		MetaBytes:        res.MetaBytes,
		AvgMetaBytes:     res.AvgMetaBytes(),
		FalseDeps:        res.FalseDepUpdates,
		StuckUpdates:     res.StuckPending,
		Violations:       res.Violations,
		EntriesPerNode:   res.MetadataEntriesPerReplica,
	}, nil
}

// RunClusterOptions configures a live end-to-end run.
type RunClusterOptions struct {
	// Protocol defaults to EdgeIndexedProtocol.
	Protocol ProtocolKind
	// Ops is the number of client operations (default 200).
	Ops int
	// ReadFraction in [0,1] (default 0).
	ReadFraction float64
	// Seed drives workload generation (default 1).
	Seed int64
	// Cluster configures the worker-pool runtime.
	Cluster ClusterOptions
}

// ClusterReport is the outcome of a live cluster run.
type ClusterReport struct {
	Protocol     string
	Workers      int
	Writes       int
	Messages     int64
	MetaBytes    int64
	StuckUpdates int
	Violations   []Violation
}

// Ok reports a clean run: no violations and no stuck updates.
func (r ClusterReport) Ok() bool { return len(r.Violations) == 0 && r.StuckUpdates == 0 }

// RunCluster drives a seeded workload through a live worker-pool cluster
// — concurrent per-replica drivers under real goroutine interleaving and
// inbox backpressure — then quiesces, audits with the oracle, and shuts
// the cluster down. It is the live counterpart of Simulate: same
// workloads and verdicts, scheduled by the runtime instead of a
// deterministic scheduler.
func (s *System) RunCluster(opts RunClusterOptions) (ClusterReport, error) {
	p, err := s.protocolFor(opts.Protocol)
	if err != nil {
		return ClusterReport{}, err
	}
	ops := opts.Ops
	if ops == 0 {
		ops = 200
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	script, err := workload.Generate(s.graph, workload.Options{
		Ops: ops, ReadFraction: opts.ReadFraction, Seed: seed,
	})
	if err != nil {
		return ClusterReport{}, fmt.Errorf("prcc: %w", err)
	}
	c, err := sim.NewCluster(s.graph, p, opts.Cluster.simOptions()...)
	if err != nil {
		return ClusterReport{}, fmt.Errorf("prcc: %w", err)
	}
	violations := c.RunScript(script)
	report := ClusterReport{
		Protocol:     p.Name(),
		Workers:      c.Workers(),
		Writes:       script.Writes(),
		Messages:     c.MessagesSent(),
		MetaBytes:    c.MetaBytes(),
		StuckUpdates: c.PendingTotal(),
		Violations:   violations,
	}
	c.Close()
	return report, nil
}

// CompressionReport describes Section 5 timestamp compression for one
// replica.
type CompressionReport struct {
	Replica    ReplicaID
	Entries    int
	Compressed int
}

// Compression analyzes timestamp compression for every replica.
func (s *System) Compression() []CompressionReport {
	reports := optimize.AnalyzeAll(s.graph, s.tsgraphs)
	out := make([]CompressionReport, len(reports))
	for i, r := range reports {
		out[i] = CompressionReport{Replica: r.Replica, Entries: r.Entries, Compressed: r.Compressed}
	}
	return out
}

// LowerBound computes the Section 4 conflict-clique lower bound on the
// timestamp space of replica i when each replica issues up to m updates:
// σ_i(m) ≥ m^Exponent. Tight reports whether the algorithm's timestamp
// dimension matches.
type LowerBound struct {
	Exponent int
	Bits     float64
	Tight    bool
	Verified bool
}

// LowerBound computes the bound for replica i with per-edge update budget m.
func (s *System) LowerBound(i ReplicaID, m int) LowerBound {
	b := lowerbound.ComputeBound(s.graph, i, m)
	return LowerBound{Exponent: b.Exponent, Bits: b.Bits(), Tight: b.Tight(), Verified: b.Verified}
}
