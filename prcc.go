// Package prcc is a partially replicated causally consistent shared
// memory, implementing the algorithm and analyses of Xiang & Vaidya,
// "Partially Replicated Causally Consistent Shared Memory: Lower Bounds
// and An Algorithm" (PODC 2019).
//
// A System is defined by a register placement: which replica stores which
// shared read/write registers. From the placement the library derives the
// share graph (Definition 3), each replica's timestamp graph (the exact
// set of edge counters Theorem 8 proves necessary and Theorem 24 proves
// sufficient), and runs the Section 3.3 edge-indexed protocol over either
// a live worker-pool cluster or a deterministic simulator.
//
// Quick start:
//
//	sys, err := prcc.New([][]prcc.Register{
//	    {"x"}, {"x", "y"}, {"y", "z"}, {"z"},
//	})
//	cluster, err := sys.Cluster()
//	cluster.Write(1, "y", 42)
//	cluster.Sync()
//	v, ok := cluster.Read(2, "y") // 42, true — causally consistent
//	err = cluster.Check()          // audit with the happened-before oracle
//	cluster.Close()
//
// # Live runtime
//
// Cluster is a worker-pool runtime: a fixed pool of delivery workers
// (ClusterOptions.Workers, default GOMAXPROCS) pulls messages from
// bounded per-replica inboxes and feeds them to the protocol state
// machines, so the goroutine count is workers plus constant overhead
// regardless of traffic — not one goroutine per message. The transport
// realizes the paper's non-FIFO system model by seeded shuffle: each
// delivery takes a uniformly random buffered message from the
// destination's inbox.
//
// Backpressure contract: Write blocks while any destination inbox is at
// capacity (ClusterOptions.InboxCapacity, default 1024), so writers are
// throttled to delivery speed instead of growing memory without bound.
// Protocol-level forwards (relaying topologies) are exempt — a worker
// that blocked on a full inbox could deadlock the pool — so inboxes can
// transiently overshoot by at most one write fanout per worker. Close
// drains all in-flight messages and stops every worker before returning.
// RunCluster drives a generated workload through a live cluster end to
// end and reports the oracle's verdicts.
//
// The same engine runs the Appendix E client-server architecture:
// LiveClientServer (see ClientServerSystem.Live and LiveWith) dispatches
// inter-replica updates through an identical worker pool, so both of the
// paper's deployment shapes share one bounded-goroutine runtime.
//
// # Robustness
//
// The runtime carries a seeded fault-injection layer, armed by
// ClusterOptions.Chaos: per-edge drop and duplication lotteries, one-
// and two-way partitions with scheduled heals, and crash/restart of
// whole replicas. Faults are injected at the engine's send/forward
// boundary, so the replica cluster and the client-server deployment
// inherit the same fault model. Every lottery outcome is a pure hash of
// (seed, edge, stream, counter), so a chaos run injects the same faults
// regardless of goroutine scheduling. A dropped transmission is
// diverted to a retransmit queue with exponential backoff and is
// force-delivered after FaultPlan.MaxRetransmits consecutive losses —
// loss degrades latency, never liveness. Messages crossing a cut edge
// or addressed to a crashed replica park at the transport and flush at
// heal or restart.
//
// A heartbeat failure detector (ClusterOptions.Heartbeat) probes every
// link each HeartbeatOptions.Interval and holds a link against its
// destination after Threshold consecutive misses: every inbound link
// over threshold is Down, only some is Suspected — the asymmetric-
// partition signature. Detection latency is therefore
// Interval × Threshold, while an ambient loss rate p falsely suspects a
// healthy link with probability ~p^Threshold per interval; raising
// Threshold trades detection speed for skepticism. A replica that
// rejoins after Down bumps its incarnation number.
//
// Crashed replicas recover by state transfer. Cluster.Checkpoint
// snapshots the node — register store, timestamp vector, buffered
// updates — together with the oracle's causal-past export for that
// replica, and begins a retention log of subsequent local events.
// Cluster.Restart installs the checkpoint into a fresh node and replays
// the log in original order (per-replica protocol determinism makes the
// replay exact, and nothing is re-emitted: the first execution already
// dispatched each update's fanout and the transport never truly loses a
// message), then releases deliveries parked while the replica was down.
//
// The happened-before oracle stays the judge under every fault class:
// loss and duplication must produce zero safety violations and full
// liveness at quiescence; partitions must settle to full liveness once
// healed; a crashed-and-restarted cluster must converge to the same
// final state as a fault-free run of the same workload (the
// differential test); and on deliberately weakened timestamp graphs the
// Theorem 8 violation must still surface — duplicate hardening may
// discard only genuine redundancy (same sender, same sequence), never
// adversarial reordering. With chaos disarmed the fault hooks reduce to
// one nil check on the delivery path, held to zero measured cost by the
// gated BenchmarkClusterThroughput base/chaos split.
//
// # Deployment
//
// A replica can be a process, not just a struct. internal/wire defines
// a versioned length-prefixed envelope codec (magic + version + kind,
// timestamp vectors via their append-style EncodeTo form) and a TCP
// transport that implements the same Send/Forward contract as the
// in-process engine: per-peer writer goroutines over bounded queues,
// Send backpressure with Forward exempt, and reconnect with the same
// capped exponential backoff the retransmit path uses. The decoder is
// hardened against adversarial input — every declared length is clamped
// against the bytes actually present before anything is allocated, and
// frames are bounded by wire.MaxFrameSize.
//
// cmd/prcc-node serves one replica of a JSON cluster config;
// cmd/prcc-client drives a deployed cluster (writes, quiescence
// detection by double-polled stable status, snapshots, shutdown) and
// can emit configs for the parametric topologies.
// scripts/run_cluster.sh boots a full cluster of OS processes on
// loopback and scripts/stop_cluster.sh retires it. The multi-process
// cluster is pinned to the in-process runtime by a differential test:
// the same owner-writes workload through real sockets must reach final
// states byte-identical to sim.Cluster's.
//
// # Sharding and batching
//
// One placement can be hosted thousands of times over: a ShardedSystem
// (System.Sharded / ShardedWith) runs ShardOptions.Spaces independent
// instances of the system — each its own protocol node set and
// optional oracle — multiplexed over a single shared worker pool
// instead of one runtime per space. Registers are addressed by (space,
// replica, register) and rendered as routing keys "s<space>/<register>"
// (ShardedSystem.Key / Resolve); space s routes to engine shard
// s mod Shards, each shard being one bounded engine inbox, so
// goroutines scale with ShardOptions.Workers while spaces scale with
// memory only.
//
// Crossing the engine boundary is batched per shard: an update fanout
// stages envelopes into its shard's outbox, and one engine message
// carries up to FlushSize of them (metadata copied through the same
// recycling pool as the cluster transport, so the staged-write →
// flush → deliver cycle is allocation-free in steady state, asserted
// by the shard package's zero-alloc test). A partial batch never
// waits longer than FlushInterval — an idle flusher sweeps outboxes —
// and Sync flushes everything before draining, so batching changes
// throughput, never visibility at quiescence. The wire codec carries
// the same aggregation across process boundaries as a Batch frame
// (wire.AppendBatch / DecodeBatch): many space-tagged envelopes in one
// length-prefixed frame, one future network write.
//
// Batching loses when it cannot fill: a latency-sensitive workload
// writing sparsely across many idle spaces pays up to FlushInterval of
// staging delay per update for no aggregation win, and FlushSize 1
// (which disables batching) is the better setting there. It wins when
// load concentrates — many writes per shard per interval, as in the
// zipf-skewed multi-tenant workloads workload.GenerateMulti produces —
// where it amortizes the engine's per-message handoff across dozens of
// envelopes (Stats reports the achieved batch sizes).
//
// # Observability
//
// Every runtime answers "what is the protocol doing" through one
// schema: Metrics (Cluster.Metrics, LiveClientServer.Metrics,
// ShardedSystem.Metrics, and wire.Client.Metrics across process
// boundaries) is a point-in-time snapshot of legacy totals plus — when
// the registry is armed — per-replica delivery/stall/recheck counters,
// per-directed-edge traffic attribution ("0->1": sent, bytes,
// delivered, dropped, duped, retransmitted, probed latency), and
// inbox-depth gauges with high-water marks. The stall and recheck
// counters are the observable texture of the paper's false-dependency
// analysis: a delivery that applies nothing buffered waiting for its
// causal past, and a delivery that releases previously parked updates
// on recheck.
//
// Arming is explicit (ClusterOptions.Metrics, ShardOptions.Metrics, a
// wire node's StatusAddr) because the default must cost nothing: with
// the registry disarmed every instrumentation site reduces to one nil
// check, held to zero allocations by the same gated-benchmark
// discipline as the chaos hooks. Armed, counters are lock-free atomics
// on the hot path and Snapshot is safe under concurrent scrape.
//
// The same snapshot is servable over HTTP: a wire node with
// NodeOptions.StatusAddr (or prcc-node -status) exposes /statusz (full
// snapshot, indented JSON) and /metricsz (flat "replica.0.delivered"
// -> number pairs for scrapers); prcc-sim -status serves the live
// cluster mid-run and prcc-client status polls a deployed cluster into
// the same schema.
//
// Metrics also close the loop back into routing: ClusterOptions.
// LoadAware ranks each write's fanout emission by destination inbox
// depth and probed edge latency (a background prober EWMAs per-edge
// RTTs), deferring the most loaded relays. Only emission order changes
// — never the recipient set — and the engine's seeded shuffle already
// permutes delivery order, so causal consistency and final state are
// unaffected; a differential test pins both.
//
// Beyond the protocol itself the package exposes the paper's analyses:
// metadata sizing and compression (Section 5), conflict-graph lower bounds
// on timestamp size (Section 4), baseline protocols for comparison, the
// client-server architecture (Appendix E), and the Appendix D
// optimizations (dummy registers, ring breaking, loop truncation).
//
// # Performance
//
// The delivery engine exploits the shape of the paper's deliverability
// predicate J: for a fixed (receiver i, sender k) pair, J requires
// τ_i[e_ki] = T[e_ki] − 1 exactly, and every update k sends to i advances
// the e_{ki} counter by exactly one — so the counter carried in an
// update's metadata is a consecutive per-receiver sequence number, and at
// most one buffered update per sender can ever be deliverable. Each
// replica therefore files buffered updates in per-sender queues keyed by
// that sequence number; an out-of-order arrival is a single O(1) map
// insert, and applying an update re-examines only the sender heads whose
// predicate reads the one gate counter the merge advanced (a set
// precomputed per topology). The reference full-buffer rescan engine is
// retained behind core.NewEdgeIndexedNaive and the baselines' *Rescan
// constructors; differential tests assert the two engines produce
// identical measurements on every schedule.
//
// The protocol⇄runtime boundary is an emit contract: instead of
// allocating and returning an envelope slice per write, a node pushes
// each outgoing message into the runtime's sink (core.Sink), referencing
// node-owned scratch — the encoded metadata buffer is reused across
// writes and the recipient list is cached per register. A sink that
// buffers an envelope copies its metadata through a recycling pool and
// returns the copy once the message has been ingested, so the entire
// write fanout — envelope, metadata, recipients — is allocation-free in
// steady state (asserted by TestWriteFanoutSteadyStateZeroAlloc and
// BenchmarkWriteFanout).
//
// Underneath, the remaining per-operation layers are allocation-free the
// same way: timestamps advance and merge in place, decoded metadata
// vectors are recycled through a freelist, the in-flight message pool
// removes by head index with amortized compaction (O(1) for the oldest
// or newest pick) while preserving message order bit-for-bit, and the
// simulator indexes its bookkeeping by the dense causality.UpdateID
// instead of maps.
//
// The consistency oracle fixes each update's causal past at issue time
// (Definition 1) — once a full bitset clone per issue, O(ops²/8) bytes
// per audited run and the dominant cost at 50k-op scale. It now runs on
// persistent copy-on-write sets: a radix tree of 512-bit chunks under
// 32-way interior nodes, where snapshotting a causal past is O(1)
// structural sharing and set/union copy only the paths they touch. Every
// node carries an (owner, epoch) tag; a snapshot or union freezes the
// source by bumping its epoch, after which either side copies-on-write
// before mutating shared structure. The frontier chunk lives by value in
// the set header (update IDs arrive in increasing order, so nearly every
// insert is a plain word store there), and the per-apply safety check
// intersects the new update's past against an incrementally maintained
// issued-but-not-yet-applied set — word-parallel over chunks, scanning
// only in-flight updates instead of the whole history. Audited ring64
// runs at 50k ops dropped from ~286 MB to ~40 MB allocated (~7×), so
// auditing stays on by default at scale; the flat representation remains
// as causality.NewFlatTracker (plus sim.Config.FlatOracle and
// sim.WithFlatOracle) for the differential tests that pin both
// representations to identical verdicts. Flat still wins only for tiny
// histories, where a clone is one small memcpy and the tree's pointer
// hop per 512 bits cannot amortize. Runs that want no verdict at all can
// still skip auditing with SimOptions.SkipAudit /
// ClusterOptions.SkipAudit.
//
// # Placement optimization and reconfiguration
//
// The Appendix D observation behind Figure 13 — removing one register
// from a ring and relaying its writes the long way around collapses the
// cycle's timestamp entries — generalizes into a search problem: which
// registers should be broken, and along which relay routes, to minimize
// the metadata the whole system tracks? System.Optimize runs that
// search: seeded hill-climbing with random restarts over placements,
// where a move breaks one more register (building a relay route over
// the edges that survive) or un-breaks one, each candidate re-scored by
// rebuilding the effective share graph's timestamp graphs and summing
// tracked entries. Entries can be priced by observed per-edge latency
// EWMAs (Cluster.LatencyWeights) so the search prefers breaking cycles
// whose edges are slow, and the result can be checked against the
// Section 4 lower bound. On rings the search rediscovers the paper's
// line topology (2n² entries down to 4n−4, within 2× of the cycle
// closed form); on dense random graphs it strictly improves within a
// 64-evaluation budget.
//
// A broken register's writes are stored at the writer, then forwarded
// hop by hop along the route through per-hop relay registers shared by
// consecutive holders; each holder on the route materializes the value
// when the relayed write arrives. Since relay registers ride the
// ordinary protocol, causal consistency is preserved without tracking
// the broken register's cycle.
//
// Cluster.Reconfigure makes the search's result deployable on a LIVE
// cluster: a two-phase epoch fence blocks client writes, drains every
// in-flight delivery to quiescence, carries each replica's register
// contents into fresh nodes of the new placement's protocol (timestamps
// restart from zero — the quiesced frontier is causally closed, the
// protocol's own initial-state assumption), and swaps the nodes. The
// fence refuses to run over crashed replicas, parked partition traffic,
// or any live undeliverable buffered update (a liveness bug it must not
// paper over). Differential tests pin a mid-run reconfiguration to the
// byte-identical final state of a never-reconfigured run, with zero
// oracle violations, both on clean executions and under drop/duplicate
// chaos with partitions and crash/restart.
//
// # Loop search
//
// Definition 5 timestamp graphs need an (i, e_jk)-loop existence decision
// per replica and non-incident edge. The original formulation enumerates
// simple loops through i — exponential in replica count, and in practice
// unable to finish sharegraph.RandomK(32, 96, 3, 7) untruncated. Builds
// now run on an exact engine (sharegraph.NewLoopSearcher /
// NewAugmentedLoopSearcher) that never enumerates loops. It canonicalizes
// register sets to word masks over the registers that actually appear in
// shared edge sets (private registers cannot affect any side condition),
// and searches l-paths as a Pareto fixpoint over (vertex, interior-mask)
// states: every Definition 4 side condition has the form "X − S ≠ ∅" for
// an S that only grows along the path, so feasibility is antitone in the
// interior mask and each vertex needs only an antichain of ⊆-minimal
// masks — dominated states are pruned instead of explored. States that
// cannot reach k, or whose mask already covers X_jk or every usable first
// r-hop label, die at depth 1. The r-side needs no search at all: a hop
// into an l-path interior vertex v carries a label inside X_v ⊆ interior,
// so conditions (ii)/(iii) already exclude the l-path and deciding the
// r-path is one BFS over filter-passing edges per undominated arrival at
// k. The augmented engine (Definition 27) appends visited-vertex bits to
// the state mask, since client-pair hops bypass the register filter. The
// untruncated RandomK(32, 96, 3, 7) build dropped from not finishing to
// ~40ms, so dense-topology benchmarks, prcc-graph and the simulator all
// run the exact protocol rather than the Appendix D sacrificed-causality
// variant. The legacy enumerating DFS survives as Graph.FindIEJKLoop —
// the reference implementation that differential and fuzz tests hold the
// engine byte-identical to — and still wins where it is already linear
// (one-query lookups on sparse rings/trees with no searcher reuse) and
// for bounded searches: LoopOptions.MaxLen truncation (Appendix D)
// delegates to it, because a length bound breaks mask monotonicity while
// making the DFS tractable by construction.
//
// Scale benchmarks covering 32- and 64-replica topologies at up to 100k
// operations live in the root bench harness:
//
//	go test -run xxx -bench 'BenchmarkScaleDelivery|BenchmarkDrainOutOfOrder' -benchmem .
//
// or run scripts/bench.sh to capture the full suite as JSON (the CI
// bench job replays it and fails on >25% scale-benchmark regressions via
// cmd/prcc-benchgate). The dense random topology runs both truncated
// (randomk32_5k, the Appendix D variant) and untruncated
// (randomk32_5k_exact) so the cost of exact causality tracking stays
// measured.
package prcc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/optimize"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Register names a shared read/write register.
type Register = sharegraph.Register

// ReplicaID identifies a replica (0-based).
type ReplicaID = sharegraph.ReplicaID

// Value is the content of a register write.
type Value = core.Value

// Violation is a detected causal-consistency violation.
type Violation = causality.Violation

// Metrics is the unified metrics snapshot every runtime returns —
// Cluster.Metrics, LiveClientServer.Metrics, ShardedSystem.Metrics and
// wire.Client.Metrics all produce this one schema, and it is exactly
// the JSON served on /statusz. Legacy totals (messages, meta bytes,
// outstanding) are always present; per-replica and per-edge breakdowns
// appear only on runtimes that armed the registry
// (ClusterOptions.Metrics / ShardOptions.Metrics / a node's
// StatusAddr). See the Observability package section.
type Metrics = obs.Snapshot

// ReplicaMetrics is the per-replica slice of a Metrics snapshot.
type ReplicaMetrics = obs.ReplicaMetrics

// EdgeMetrics is the per-directed-edge entry of a Metrics snapshot,
// keyed "from->to".
type EdgeMetrics = obs.EdgeMetrics

// QueueMetrics is the per-engine-queue entry of a Metrics snapshot,
// present when queues are not 1:1 with replicas (the sharded runtime).
type QueueMetrics = obs.QueueMetrics

// FaultPlan seeds the runtime's deterministic fault lottery: per-edge
// drop/duplication probabilities, the retransmit policy, and the
// lottery seed. The zero value injects no ambient faults but still arms
// the Partition/Crash/Checkpoint/Restart controls.
type FaultPlan = rt.FaultPlan

// EdgeFault is the per-edge loss/duplication probability pair of a
// FaultPlan.
type EdgeFault = rt.EdgeFault

// HeartbeatOptions tunes the membership failure detector: probe
// interval, suspicion threshold, and reconnect backoff. Detection
// latency is Interval × Threshold; see the Robustness section.
type HeartbeatOptions = membership.Options

// MemberStatus is a replica's health as seen by the failure detector.
type MemberStatus = membership.Status

// Membership statuses.
const (
	// MemberAlive: every inbound link answers probes.
	MemberAlive = membership.Alive
	// MemberSuspected: some inbound links crossed the miss threshold,
	// others still answer — an asymmetric partition or lossy link.
	MemberSuspected = membership.Suspected
	// MemberDown: every inbound link crossed the threshold.
	MemberDown = membership.Down
)

// MembershipEvent records one status transition observed by the
// failure detector.
type MembershipEvent = membership.Event

// System is a partially replicated shared-memory configuration: the
// placement, its derived share and timestamp graphs, and the edge-indexed
// protocol instance. Systems are immutable and safe to share.
type System struct {
	graph    *sharegraph.Graph
	tsgraphs []*sharegraph.TSGraph
	protocol *core.EdgeIndexed
}

// New builds a System from a register placement: stores[i] lists the
// registers replicated at replica i.
func New(stores [][]Register) (*System, error) {
	g, err := sharegraph.New(stores)
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	p, err := core.NewEdgeIndexedWithGraphs(g, graphs, "edge-indexed")
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &System{graph: g, tsgraphs: graphs, protocol: p}, nil
}

// NumReplicas returns the number of replicas.
func (s *System) NumReplicas() int { return s.graph.NumReplicas() }

// Registers lists every register in the system, sorted.
func (s *System) Registers() []Register { return s.graph.Registers() }

// Stores reports whether replica i stores register x.
func (s *System) Stores(i ReplicaID, x Register) bool {
	return s.graph.StoresRegister(i, x)
}

// Holders returns the replicas storing register x.
func (s *System) Holders(x Register) []ReplicaID { return s.graph.Holders(x) }

// MetadataEntries returns |E_i| — the number of integer counters in
// replica i's timestamp, the quantity the paper's lower bounds govern.
func (s *System) MetadataEntries(i ReplicaID) int { return s.tsgraphs[i].Len() }

// TrackedEdges renders replica i's timestamp-graph edges (Definition 5) in
// e(j->k) notation.
func (s *System) TrackedEdges(i ReplicaID) []string {
	edges := s.tsgraphs[i].Edges()
	out := make([]string, len(edges))
	for p, e := range edges {
		out[p] = e.String()
	}
	return out
}

// ShareGraph renders the placement and share graph for inspection.
func (s *System) ShareGraph() string { return s.graph.String() }

// ClusterOptions configures the live worker-pool runtime. The zero value
// selects the defaults documented per field.
type ClusterOptions struct {
	// Workers is the delivery worker-pool size. The default (zero) is
	// GOMAXPROCS but at least 2; an explicit count is used as given.
	Workers int
	// InboxCapacity bounds each replica's inbox (default 1024). Client
	// writes block while a destination inbox is full — the backpressure
	// contract.
	InboxCapacity int
	// MaxDelay adds an artificial per-delivery delay of up to this
	// duration (default 0). Reordering does not need it — the inbox
	// shuffle reorders regardless — but stress tests use it to hold
	// messages in flight longer.
	MaxDelay time.Duration
	// Seed drives the per-inbox delivery shuffles (default 1).
	Seed int64
	// SkipAudit disables the causality oracle for runs that want no
	// verdict at all. Auditing is cheap by default — the oracle's
	// persistent copy-on-write sets snapshot each causal past in O(1)
	// instead of cloning a bitset per issue — so this is now a choice,
	// not a necessity, even at 50k-op scale. Check reports nothing on an
	// unaudited cluster.
	SkipAudit bool
	// Chaos, when non-nil, arms the fault-injection layer with the given
	// plan. The zero FaultPlan injects no ambient faults but enables the
	// Partition/Crash/Checkpoint/Restart controls; without Chaos those
	// methods return an error. See the Robustness package section.
	Chaos *FaultPlan
	// Heartbeat, when non-nil, runs the membership failure detector
	// alongside the cluster. Its probes ride the fault layer's links, so
	// without Chaos every probe succeeds and nothing is ever suspected.
	Heartbeat *HeartbeatOptions
	// Metrics arms the observability registry: per-replica delivery and
	// stall counters, per-edge traffic attribution, and inbox-depth
	// gauges, all readable via Cluster.Metrics. Disarmed (the default)
	// the instrumentation is a nil check on the delivery path — zero
	// allocations, held there by a gated benchmark.
	Metrics bool
	// LoadAware enables load-aware relay choice: each write's fanout is
	// emitted in an order ranked by destination inbox depth and probed
	// edge latency (deepest-queued, slowest links last) instead of the
	// cached recipient order. The recipient set itself never changes —
	// only emission order, which the engine's seeded shuffle already
	// permutes — so causal consistency and final state are unaffected
	// (pinned by a differential test). Implies Metrics and starts the
	// background edge prober.
	LoadAware bool
}

func (o ClusterOptions) simOptions() []sim.ClusterOption {
	var opts []sim.ClusterOption
	if o.Workers > 0 {
		opts = append(opts, sim.WithWorkers(o.Workers))
	}
	if o.InboxCapacity > 0 {
		opts = append(opts, sim.WithInboxCapacity(o.InboxCapacity))
	}
	if o.MaxDelay > 0 {
		opts = append(opts, sim.WithMaxDelay(o.MaxDelay))
	}
	if o.Seed != 0 {
		opts = append(opts, sim.WithSeed(o.Seed))
	}
	if o.SkipAudit {
		opts = append(opts, sim.WithoutAudit())
	}
	if o.Chaos != nil {
		opts = append(opts, sim.WithChaos(*o.Chaos))
	}
	if o.Heartbeat != nil {
		opts = append(opts, sim.WithHeartbeats(*o.Heartbeat))
	}
	if o.LoadAware {
		opts = append(opts, sim.WithLoadAware())
	} else if o.Metrics {
		opts = append(opts, sim.WithMetrics())
	}
	return opts
}

// Cluster starts a live worker-pool cluster running the edge-indexed
// protocol with default options, audited by the happened-before oracle.
func (s *System) Cluster() (*Cluster, error) {
	return s.ClusterWith(ClusterOptions{})
}

// ClusterWith starts a live worker-pool cluster with explicit runtime
// options.
func (s *System) ClusterWith(opts ClusterOptions) (*Cluster, error) {
	c, err := sim.NewCluster(s.graph, s.protocol, opts.simOptions()...)
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &Cluster{inner: c, n: s.graph.NumReplicas()}, nil
}

// Cluster is a running shared-memory deployment.
type Cluster struct {
	inner *sim.Cluster
	n     int
}

func (c *Cluster) checkReplica(r ReplicaID) error {
	if int(r) < 0 || int(r) >= c.n {
		return fmt.Errorf("prcc: replica %d out of range [0,%d)", r, c.n)
	}
	return nil
}

// Write performs a client write at replica r. It fails if r does not
// store x.
func (c *Cluster) Write(r ReplicaID, x Register, v Value) error {
	return c.inner.Write(r, x, v)
}

// Read returns replica r's local copy of x (reads never block; this is
// the causal-consistency read of the replica prototype).
func (c *Cluster) Read(r ReplicaID, x Register) (Value, bool) {
	return c.inner.Read(r, x)
}

// Sync blocks until all in-flight updates have been delivered and applied.
func (c *Cluster) Sync() { c.inner.Quiesce() }

// Check audits the execution so far against replica-centric causal
// consistency (Definition 2) using the ground-truth happened-before
// oracle; it returns an error describing the first violation, if any.
// Call Sync first to include liveness at quiescence. On a cluster built
// with ClusterOptions.SkipAudit there is no oracle and Check reports
// nothing.
func (c *Cluster) Check() error {
	t := c.inner.Tracker()
	if t == nil {
		return nil
	}
	vs := t.Violations()
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(vs))
	for _, v := range vs {
		msgs = append(msgs, v.String())
	}
	return fmt.Errorf("prcc: %d violations: %s", len(vs), strings.Join(msgs, "; "))
}

// Metrics returns the cluster's unified metrics snapshot: legacy totals
// always, per-replica and per-edge breakdowns when
// ClusterOptions.Metrics (or LoadAware) armed the registry.
func (c *Cluster) Metrics() Metrics { return c.inner.Metrics() }

// Stats reports transport-level counters.
//
// Deprecated: use Metrics, whose Messages and MetaBytes fields carry
// the same totals in the unified cross-runtime snapshot schema.
func (c *Cluster) Stats() (messages int64, metaBytes int64) {
	m := c.Metrics()
	return m.Messages, m.MetaBytes
}

// Workers returns the delivery worker-pool size.
func (c *Cluster) Workers() int { return c.inner.Workers() }

// Outstanding returns the number of in-flight messages (buffered or being
// delivered). After Close it is zero.
func (c *Cluster) Outstanding() int { return c.inner.Outstanding() }

// Close shuts the cluster down after draining in-flight deliveries; no
// goroutines outlive it.
func (c *Cluster) Close() { c.inner.Close() }

// Partition cuts the links between a and b in both directions; messages
// crossing a cut edge park at the transport and deliver at heal time.
// healAfter > 0 schedules an automatic heal, 0 cuts until Heal/HealAll.
// It errors on a cluster built without ClusterOptions.Chaos.
func (c *Cluster) Partition(a, b ReplicaID, healAfter time.Duration) error {
	if err := c.checkReplica(a); err != nil {
		return err
	}
	if err := c.checkReplica(b); err != nil {
		return err
	}
	return c.inner.Partition(a, b, healAfter)
}

// PartitionOneWay cuts only the from→to direction — the asymmetric-link
// case the failure detector reports as Suspected rather than Down.
func (c *Cluster) PartitionOneWay(from, to ReplicaID, healAfter time.Duration) error {
	if err := c.checkReplica(from); err != nil {
		return err
	}
	if err := c.checkReplica(to); err != nil {
		return err
	}
	return c.inner.PartitionOneWay(from, to, healAfter)
}

// Heal restores both directions between a and b, flushing parked
// messages.
func (c *Cluster) Heal(a, b ReplicaID) error {
	if err := c.checkReplica(a); err != nil {
		return err
	}
	if err := c.checkReplica(b); err != nil {
		return err
	}
	return c.inner.Heal(a, b)
}

// HealAll removes every cut in the cluster.
func (c *Cluster) HealAll() error { return c.inner.HealAll() }

// Checkpoint snapshots replica r — protocol state plus the oracle's
// causal bookkeeping — and begins retaining r's subsequent local events
// so a later Crash/Restart can replay them. Re-checkpointing truncates
// the retention log.
func (c *Cluster) Checkpoint(r ReplicaID) error {
	if err := c.checkReplica(r); err != nil {
		return err
	}
	return c.inner.Checkpoint(r)
}

// Crash takes replica r down: reads and writes at r fail, and the fault
// layer parks everything addressed to it until Restart.
func (c *Cluster) Crash(r ReplicaID) error {
	if err := c.checkReplica(r); err != nil {
		return err
	}
	return c.inner.Crash(r)
}

// Restart recovers a crashed replica by state transfer from its last
// Checkpoint plus retention-log replay, then releases deliveries parked
// while it was down. It errors if r is up or was never checkpointed.
func (c *Cluster) Restart(r ReplicaID) error {
	if err := c.checkReplica(r); err != nil {
		return err
	}
	return c.inner.Restart(r)
}

// FaultStats reports the fault layer's counters: transmissions diverted
// to the retransmitter and duplicate deliveries injected. Both are zero
// on a cluster built without ClusterOptions.Chaos.
func (c *Cluster) FaultStats() (dropped, duped uint64) {
	if f := c.inner.Faults(); f != nil {
		return f.Dropped(), f.Duped()
	}
	return 0, 0
}

// MemberStatus returns the failure detector's current view of replica
// r. Without ClusterOptions.Heartbeat there is no detector and every
// replica reads MemberAlive.
func (c *Cluster) MemberStatus(r ReplicaID) MemberStatus {
	if d := c.inner.Membership(); d != nil && int(r) >= 0 && int(r) < c.n {
		return d.Status(int(r))
	}
	return MemberAlive
}

// MembershipEvents returns the failure detector's transition history
// (nil without ClusterOptions.Heartbeat).
func (c *Cluster) MembershipEvents() []MembershipEvent {
	if d := c.inner.Membership(); d != nil {
		return d.Events()
	}
	return nil
}

// Reconfigure switches the running cluster onto a different placement
// of the same registers — typically one found by System.Optimize — via
// a two-phase epoch fence: client writes are blocked, every in-flight
// delivery drains to quiescence, each replica's register contents are
// carried into a fresh node of the new placement's protocol (timestamps
// restart from zero — the quiesced frontier is causally closed, which
// is exactly the protocol's initial-state assumption), and the nodes
// are swapped. Causal consistency holds across the fence; differential
// tests pin the final state byte-equal to a never-reconfigured run,
// plain and under chaos.
//
// Reconfigure fails, leaving the cluster untouched, if any replica is
// down or the fault layer still holds parked messages — restart crashed
// replicas and heal partitions first. Recovery checkpoints reference
// the old epoch's timestamp space and are discarded; re-checkpoint
// afterwards.
func (c *Cluster) Reconfigure(p *Placement) error {
	if p == nil {
		return fmt.Errorf("prcc: reconfigure: nil placement")
	}
	proto, err := p.Protocol("reconfigured")
	if err != nil {
		return fmt.Errorf("prcc: reconfigure: %w", err)
	}
	return c.inner.Reconfigure(proto)
}

// LatencyWeights returns an edge-weight function for
// OptimizeOptions.EdgeWeight fed by the cluster's probed per-edge
// latency EWMAs, so the placement search prefers breaking register
// cycles whose tracked edges are slow. The weights are a snapshot taken
// now, not a live view. Probes only run under ClusterOptions.LoadAware;
// without it (or before the first probe round) every edge weighs zero
// and the search falls back to unweighted entry counts.
func (c *Cluster) LatencyWeights() func(i, j ReplicaID) float64 {
	m := c.Metrics()
	return func(i, j ReplicaID) float64 {
		ns := m.Edges[obs.EdgeKey(int(i), int(j))].LatencyNs
		if back := m.Edges[obs.EdgeKey(int(j), int(i))].LatencyNs; back > ns {
			ns = back
		}
		return float64(ns)
	}
}

// ProtocolKind selects a protocol for Simulate.
type ProtocolKind int

// Protocols available to Simulate.
const (
	// EdgeIndexedProtocol is the paper's Section 3.3 algorithm.
	EdgeIndexedProtocol ProtocolKind = iota + 1
	// MatrixProtocol is the R×R matrix-clock baseline (safe, quadratic).
	MatrixProtocol
	// BroadcastProtocol is the dummy-register full-replication emulation.
	BroadcastProtocol
	// NaiveVectorProtocol is the classic length-R vector baseline
	// (safe but not live under partial replication).
	NaiveVectorProtocol
	// FIFOOnlyProtocol is the per-channel sequencing baseline
	// (violates causal safety).
	FIFOOnlyProtocol
)

func (k ProtocolKind) String() string {
	switch k {
	case EdgeIndexedProtocol:
		return "edge-indexed"
	case MatrixProtocol:
		return "matrix"
	case BroadcastProtocol:
		return "dummy-broadcast"
	case NaiveVectorProtocol:
		return "naive-vector"
	case FIFOOnlyProtocol:
		return "fifo-only"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(k))
	}
}

// SimOptions configures a deterministic simulation.
type SimOptions struct {
	// Protocol defaults to EdgeIndexedProtocol.
	Protocol ProtocolKind
	// Ops is the number of client operations (default 200).
	Ops int
	// ReadFraction in [0,1] (default 0).
	ReadFraction float64
	// Seed drives workload and schedule (default 1).
	Seed int64
	// Adversarial uses LIFO (maximally reordering) delivery instead of
	// seeded-random.
	Adversarial bool
	// TrackFalseDeps enables false-dependency accounting (slower).
	TrackFalseDeps bool
	// SkipAudit disables the causality oracle for pure-throughput runs
	// (see ClusterOptions.SkipAudit); Violations stays empty and
	// TrackFalseDeps is ignored.
	SkipAudit bool
}

// ReportCore is the verdict shared by every run report — SimReport,
// ClusterReport and ChaosReport embed it, so the oracle's violations,
// the liveness debt at quiescence and the metadata cost always live in
// the same fields with the same Ok predicate, regardless of which
// runtime produced the run.
type ReportCore struct {
	// Violations is the happened-before oracle's verdict: safety
	// violations plus liveness failures. Empty on unaudited runs.
	Violations []Violation
	// StuckUpdates is the buffered-update count at quiescence that the
	// run treats as liveness debt (chaos runs report injected-duplicate
	// residue separately, as ChaosReport.PendingBuffered).
	StuckUpdates int
	// MetaBytes is the total timestamp metadata shipped.
	MetaBytes int64
}

// Ok reports a clean run: no violations and no stuck updates.
func (r ReportCore) Ok() bool { return len(r.Violations) == 0 && r.StuckUpdates == 0 }

// SimReport is the outcome of a deterministic simulation.
type SimReport struct {
	ReportCore
	Protocol         string
	Writes           int
	Applies          int
	Messages         int
	MetaOnlyMessages int
	AvgMetaBytes     float64
	FalseDeps        int
	EntriesPerNode   []int
}

// protocolFor builds the protocol instance a ProtocolKind selects.
func (s *System) protocolFor(k ProtocolKind) (core.Protocol, error) {
	switch k {
	case EdgeIndexedProtocol, 0:
		return s.protocol, nil
	case MatrixProtocol:
		return baseline.NewMatrix(s.graph), nil
	case BroadcastProtocol:
		return baseline.NewBroadcast(s.graph), nil
	case NaiveVectorProtocol:
		return baseline.NewNaiveVector(s.graph), nil
	case FIFOOnlyProtocol:
		return baseline.NewFIFOOnly(s.graph), nil
	default:
		return nil, fmt.Errorf("prcc: unknown protocol %v", k)
	}
}

// Simulate runs a seeded workload under a deterministic scheduler and
// returns measurements plus the oracle's verdicts.
func (s *System) Simulate(opts SimOptions) (SimReport, error) {
	p, err := s.protocolFor(opts.Protocol)
	if err != nil {
		return SimReport{}, err
	}
	ops := opts.Ops
	if ops == 0 {
		ops = 200
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	script, err := workload.Generate(s.graph, workload.Options{
		Ops: ops, ReadFraction: opts.ReadFraction, Seed: seed,
	})
	if err != nil {
		return SimReport{}, fmt.Errorf("prcc: %w", err)
	}
	var sched transport.Scheduler = transport.NewRandom(seed)
	if opts.Adversarial {
		sched = transport.LIFOScheduler{}
	}
	res, err := sim.Run(sim.Config{
		Graph: s.graph, Protocol: p, Script: script,
		Sched: sched, TrackFalseDeps: opts.TrackFalseDeps,
		SkipAudit: opts.SkipAudit,
	})
	if err != nil {
		return SimReport{}, fmt.Errorf("prcc: %w", err)
	}
	return SimReport{
		ReportCore: ReportCore{
			Violations:   res.Violations,
			StuckUpdates: res.StuckPending,
			MetaBytes:    int64(res.MetaBytes),
		},
		Protocol:         res.Protocol,
		Writes:           res.Writes,
		Applies:          res.Applies,
		Messages:         res.MessagesSent,
		MetaOnlyMessages: res.MetaOnlyMessages,
		AvgMetaBytes:     res.AvgMetaBytes(),
		FalseDeps:        res.FalseDepUpdates,
		EntriesPerNode:   res.MetadataEntriesPerReplica,
	}, nil
}

// RunClusterOptions configures a live end-to-end run.
type RunClusterOptions struct {
	// Protocol defaults to EdgeIndexedProtocol.
	Protocol ProtocolKind
	// Ops is the number of client operations (default 200).
	Ops int
	// ReadFraction in [0,1] (default 0).
	ReadFraction float64
	// Seed drives workload generation (default 1).
	Seed int64
	// Cluster configures the worker-pool runtime.
	Cluster ClusterOptions
}

// ClusterReport is the outcome of a live cluster run.
type ClusterReport struct {
	ReportCore
	Protocol string
	Workers  int
	Writes   int
	Messages int64
}

// RunCluster drives a seeded workload through a live worker-pool cluster
// — concurrent per-replica drivers under real goroutine interleaving and
// inbox backpressure — then quiesces, audits with the oracle, and shuts
// the cluster down. It is the live counterpart of Simulate: same
// workloads and verdicts, scheduled by the runtime instead of a
// deterministic scheduler.
func (s *System) RunCluster(opts RunClusterOptions) (ClusterReport, error) {
	p, err := s.protocolFor(opts.Protocol)
	if err != nil {
		return ClusterReport{}, err
	}
	ops := opts.Ops
	if ops == 0 {
		ops = 200
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	script, err := workload.Generate(s.graph, workload.Options{
		Ops: ops, ReadFraction: opts.ReadFraction, Seed: seed,
	})
	if err != nil {
		return ClusterReport{}, fmt.Errorf("prcc: %w", err)
	}
	c, err := sim.NewCluster(s.graph, p, opts.Cluster.simOptions()...)
	if err != nil {
		return ClusterReport{}, fmt.Errorf("prcc: %w", err)
	}
	violations := c.RunScript(script)
	report := ClusterReport{
		ReportCore: ReportCore{
			Violations:   violations,
			StuckUpdates: c.PendingTotal(),
			MetaBytes:    c.MetaBytes(),
		},
		Protocol: p.Name(),
		Workers:  c.Workers(),
		Writes:   script.Writes(),
		Messages: c.MessagesSent(),
	}
	c.Close()
	return report, nil
}

// ChaosOptions configures an orchestrated chaos run: a seeded workload
// executed in three phases on a live cluster, with faults injected at
// the phase boundaries and recovery before the audit.
type ChaosOptions struct {
	// Protocol defaults to EdgeIndexedProtocol. Crash recovery requires
	// a checkpointable protocol; of the built-ins only the edge-indexed
	// engine is.
	Protocol ProtocolKind
	// Ops is the number of client operations (default 600).
	Ops int
	// ReadFraction in [0,1] (default 0).
	ReadFraction float64
	// Seed drives the workload and, unless Plan.Seed overrides it, the
	// fault lottery (default 1).
	Seed int64
	// Plan is the ambient loss/duplication lottery applied for the whole
	// run. A zero Plan.Seed inherits Seed.
	Plan FaultPlan
	// Heartbeat, when non-nil, runs the failure detector alongside the
	// workload; its transition history is returned in the report.
	Heartbeat *HeartbeatOptions
	// Partition, when true, cuts PartitionA↔PartitionB in both
	// directions after the first third of the workload. PartitionHeal >
	// 0 schedules the heal; otherwise the cut lasts until the end-of-run
	// HealAll.
	Partition              bool
	PartitionA, PartitionB ReplicaID
	PartitionHeal          time.Duration
	// Crash, when true, checkpoints CrashReplica up front, crashes it
	// after the first third, and restarts it by state transfer after the
	// second. The victim's middle-third operations are deferred to the
	// final third, preserving its per-replica program order.
	Crash        bool
	CrashReplica ReplicaID
	// Cluster configures the underlying runtime. Its Chaos and Heartbeat
	// fields are ignored — Plan and Heartbeat above win.
	Cluster ClusterOptions
}

// ChaosReport is the outcome of a chaos run. Its embedded
// ReportCore.StuckUpdates is always zero: buffered residue under
// injected duplication is not liveness debt (the oracle's liveness
// audit in Violations is the judge), so it is reported separately as
// PendingBuffered and Ok reduces to the oracle's verdict.
type ChaosReport struct {
	ReportCore
	// Events is the failure detector's transition history (empty without
	// ChaosOptions.Heartbeat).
	Events   []MembershipEvent
	Messages int64
	// Dropped counts transmissions diverted to the retransmitter; Duped
	// counts injected duplicate deliveries.
	Dropped uint64
	Duped   uint64
	// PendingBuffered is the buffered-update count at quiescence.
	// Injected duplicates park dead in the ingest queues and stay
	// counted here without being liveness debt — the liveness audit in
	// Violations is the judge, so a nonzero count under duplication is
	// expected, not a failure.
	PendingBuffered int
}

// RunChaos drives a seeded workload through a live cluster under the
// configured faults: phase one runs under the ambient loss/duplication
// lottery alone, the partition cut and crash land at the one-third
// boundary, recovery at two-thirds, then every cut heals, the cluster
// quiesces, and the oracle audits. Transient faults never excuse a
// verdict — every cut heals and every crash restarts before the audit,
// so zero violations (including liveness) is the pass criterion.
func (s *System) RunChaos(opts ChaosOptions) (ChaosReport, error) {
	p, err := s.protocolFor(opts.Protocol)
	if err != nil {
		return ChaosReport{}, err
	}
	ops := opts.Ops
	if ops == 0 {
		ops = 600
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.Partition {
		for _, r := range []ReplicaID{opts.PartitionA, opts.PartitionB} {
			if int(r) < 0 || int(r) >= s.NumReplicas() {
				return ChaosReport{}, fmt.Errorf("prcc: partition replica %d out of range [0,%d)", r, s.NumReplicas())
			}
		}
	}
	if opts.Crash && (int(opts.CrashReplica) < 0 || int(opts.CrashReplica) >= s.NumReplicas()) {
		return ChaosReport{}, fmt.Errorf("prcc: crash replica %d out of range [0,%d)", opts.CrashReplica, s.NumReplicas())
	}
	script, err := workload.Generate(s.graph, workload.Options{
		Ops: ops, ReadFraction: opts.ReadFraction, Seed: seed,
	})
	if err != nil {
		return ChaosReport{}, fmt.Errorf("prcc: %w", err)
	}
	plan := opts.Plan
	if plan.Seed == 0 {
		plan.Seed = seed
	}
	cl := opts.Cluster
	cl.Chaos, cl.Heartbeat = nil, nil
	if cl.Seed == 0 {
		cl.Seed = seed
	}
	res, err := sim.RunChaos(sim.ChaosConfig{
		Graph: s.graph, Protocol: p, Script: script,
		Plan:      plan,
		Heartbeat: opts.Heartbeat,
		Partition: opts.Partition, PartitionA: opts.PartitionA,
		PartitionB: opts.PartitionB, PartitionHeal: opts.PartitionHeal,
		Crash: opts.Crash, CrashReplica: opts.CrashReplica,
		Opts: cl.simOptions(),
	})
	if err != nil {
		return ChaosReport{}, fmt.Errorf("prcc: %w", err)
	}
	return ChaosReport{
		ReportCore: ReportCore{
			Violations: res.Violations,
			MetaBytes:  res.MetaBytes,
		},
		Events:          res.Events,
		Messages:        res.MessagesSent,
		Dropped:         res.Dropped,
		Duped:           res.Duped,
		PendingBuffered: res.PendingTotal,
	}, nil
}

// CompressionReport describes Section 5 timestamp compression for one
// replica.
type CompressionReport struct {
	Replica    ReplicaID
	Entries    int
	Compressed int
}

// Compression analyzes timestamp compression for every replica.
func (s *System) Compression() []CompressionReport {
	reports := optimize.AnalyzeAll(s.graph, s.tsgraphs)
	out := make([]CompressionReport, len(reports))
	for i, r := range reports {
		out[i] = CompressionReport{Replica: r.Replica, Entries: r.Entries, Compressed: r.Compressed}
	}
	return out
}

// LowerBound computes the Section 4 conflict-clique lower bound on the
// timestamp space of replica i when each replica issues up to m updates:
// σ_i(m) ≥ m^Exponent. Tight reports whether the algorithm's timestamp
// dimension matches.
type LowerBound struct {
	Exponent int
	Bits     float64
	Tight    bool
	Verified bool
}

// LowerBound computes the bound for replica i with per-edge update budget m.
func (s *System) LowerBound(i ReplicaID, m int) LowerBound {
	b := lowerbound.ComputeBound(s.graph, i, m)
	return LowerBound{Exponent: b.Exponent, Bits: b.Bits(), Tight: b.Tight(), Verified: b.Verified}
}

// OptimizeOptions tunes the System.Optimize placement search. The zero
// value runs the default budget (3 restarts, 64 candidate evaluations,
// unweighted entry counts).
type OptimizeOptions = optimize.SearchOptions

// Placement assigns the system's registers to replicas, with some
// registers "broken" out of the cycles they close: a broken register is
// removed from every store and its writes relayed along an explicit
// route of per-hop relay registers instead, trading relay latency for
// smaller timestamps (the Figure 13 ring-breaking idea generalized to
// arbitrary registers and routes).
type Placement = optimize.Placement

// PlacementResult reports the outcome of a placement search: the best
// placement, its effective share graph, tracked-entry totals before and
// after, and optional Section 4 lower bounds on the result.
type PlacementResult = optimize.SearchResult

// Optimize searches for a placement of the system's registers whose
// effective share graph tracks fewer total timestamp entries: seeded
// hill-climbing with random restarts, where each move breaks one more
// register (relaying it along a route over the surviving edges) or
// un-breaks one, and every candidate is re-scored by rebuilding the
// effective graph's timestamp graphs. The identity placement is always
// a candidate, so the result is never worse than the current system.
// Same seed, same graph, same result.
//
// Optionally weight entries by observed per-edge latency
// (OptimizeOptions.EdgeWeight, see Cluster.LatencyWeights) and verify
// the result against the Section 4 lower bound
// (OptimizeOptions.CheckBound). Feed the result's Placement to
// Cluster.Reconfigure to switch a live cluster onto it.
func (s *System) Optimize(opts OptimizeOptions) (*PlacementResult, error) {
	res, err := optimize.Search(s.graph, opts)
	if err != nil {
		return nil, fmt.Errorf("prcc: optimize: %w", err)
	}
	return res, nil
}
