// Package obs is the repository's observability layer: a dependency-free
// registry of atomic counters and gauges shared by every runtime (the
// in-process cluster, the client-server live system, the sharded
// multi-space runtime, and the TCP wire node), a burst health prober that
// measures per-edge relay latency, and an HTTP/JSON status endpoint.
//
// The registry follows the fault-injection layer's arming discipline: a
// nil *Registry is the disarmed state, every recording method is a
// nil-receiver no-op, and call sites are unconditional — the disarmed
// hot path costs one nil check and zero allocations (pinned by an alloc
// test and a gated benchmark row, like the PR 6 chaos hooks). Armed, all
// counters are lock-free atomics safe for concurrent writers, and
// Snapshot may be called at any time from any goroutine (/statusz
// scrapes race against delivery workers by design).
//
// Two index spaces coexist: replica indices (protocol-level attribution
// — delivered, applied, stalls, per-edge traffic) and engine queue
// indices (inbox depth and peak). For the cluster and client-server
// runtimes they coincide; the sharded runtime keys its engine queues by
// shard, so the registry keeps the two arrays separate instead of
// guessing.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Registry collects counters for one runtime: per-replica protocol
// counters, per-edge (ordered replica pair) traffic counters, and
// per-engine-queue depth gauges. The zero value is not useful — use New;
// a nil Registry is the disarmed state and all methods no-op on it.
type Registry struct {
	replicas int
	queues   int
	rep      []repCounters
	edge     []edgeCounters // replicas*replicas, indexed from*replicas+to
	queue    []queueGauge

	batches   atomic.Int64
	batchEnvs atomic.Int64
	batchMax  atomic.Int64
}

type repCounters struct {
	delivered   atomic.Int64 // messages delivered at this replica
	applied     atomic.Int64 // updates applied (meta-only and buffered-only excluded)
	stalls      atomic.Int64 // deliveries that applied nothing: a dependency stall
	rechecks    atomic.Int64 // previously buffered updates released by a later arrival
	ingestDrops atomic.Int64 // corrupt/invalid envelopes rejected before buffering
}

type edgeCounters struct {
	sent          atomic.Int64
	bytes         atomic.Int64 // metadata bytes sent on this edge
	delivered     atomic.Int64
	dropped       atomic.Int64 // fault injection: diverted to the retransmit queue or lost
	duped         atomic.Int64 // fault injection: duplicate deliveries
	retransmitted atomic.Int64 // fault injection: retransmit re-sends
	probes        atomic.Int64
	ewmaNs        atomic.Int64 // probed latency EWMA in nanoseconds; 0 = never probed
}

type queueGauge struct {
	depth atomic.Int64
	peak  atomic.Int64
}

// New builds an armed registry for a runtime with the given number of
// protocol replicas and engine destination queues. queues may be zero
// when the runtime does not expose engine inboxes (the wire node).
func New(replicas, queues int) *Registry {
	if replicas < 0 {
		replicas = 0
	}
	if queues < 0 {
		queues = 0
	}
	return &Registry{
		replicas: replicas,
		queues:   queues,
		rep:      make([]repCounters, replicas),
		edge:     make([]edgeCounters, replicas*replicas),
		queue:    make([]queueGauge, queues),
	}
}

// Replicas returns the replica count the registry was sized for (0 on a
// nil registry).
func (r *Registry) Replicas() int {
	if r == nil {
		return 0
	}
	return r.replicas
}

func (r *Registry) edgeAt(from, to int) *edgeCounters {
	if from < 0 || from >= r.replicas || to < 0 || to >= r.replicas {
		return nil
	}
	return &r.edge[from*r.replicas+to]
}

// QueueDepth records the instantaneous depth of engine queue q after an
// enqueue or a take, tracking the high-water mark. Called by the engine
// with its inbox mutex held, so it must stay cheap.
func (r *Registry) QueueDepth(q, depth int) {
	if r == nil || q < 0 || q >= r.queues {
		return
	}
	g := &r.queue[q]
	g.depth.Store(int64(depth))
	for {
		peak := g.peak.Load()
		if int64(depth) <= peak || g.peak.CompareAndSwap(peak, int64(depth)) {
			return
		}
	}
}

// Depth returns the last recorded depth of engine queue q — the load
// signal the cluster's load-aware dispatch sorts by.
func (r *Registry) Depth(q int) int64 {
	if r == nil || q < 0 || q >= r.queues {
		return 0
	}
	return r.queue[q].depth.Load()
}

// MetaOnly is the applied-count sentinel for Deliver: the delivery
// carried metadata only and applies nothing by design, so it counts as
// delivered but as neither stall nor apply.
const MetaOnly = -1

// Deliver records one message delivered at replica `to` from replica
// `from` (from < 0 skips edge attribution), which applied `applied`
// buffered-or-fresh updates. applied == 0 is a dependency stall (the
// arrival buffered waiting for its causal past — the observable texture
// of false dependencies); applied > 1 means the arrival released
// applied-1 previously parked updates on recheck; applied < 0 (see
// MetaOnly) marks a delivery that applies nothing by design, counted as
// delivered but neither stall nor apply.
func (r *Registry) Deliver(from, to, applied int) {
	if r == nil || to < 0 || to >= r.replicas {
		return
	}
	c := &r.rep[to]
	c.delivered.Add(1)
	switch {
	case applied == 0:
		c.stalls.Add(1)
	case applied > 0:
		c.applied.Add(int64(applied))
		if applied > 1 {
			c.rechecks.Add(int64(applied - 1))
		}
	}
	if e := r.edgeAt(from, to); e != nil {
		e.delivered.Add(1)
	}
}

// Sent records one message accepted for sending on edge from→to carrying
// metaBytes bytes of timestamp metadata.
func (r *Registry) Sent(from, to, metaBytes int) {
	if r == nil {
		return
	}
	if e := r.edgeAt(from, to); e != nil {
		e.sent.Add(1)
		e.bytes.Add(int64(metaBytes))
	}
}

// Dropped records a fault-injected loss (or divert-to-retransmit) on
// edge from→to.
func (r *Registry) Dropped(from, to int) {
	if r == nil {
		return
	}
	if e := r.edgeAt(from, to); e != nil {
		e.dropped.Add(1)
	}
}

// Duped records a fault-injected duplicate delivery on edge from→to.
func (r *Registry) Duped(from, to int) {
	if r == nil {
		return
	}
	if e := r.edgeAt(from, to); e != nil {
		e.duped.Add(1)
	}
}

// Retransmitted records a retransmit re-send on edge from→to.
func (r *Registry) Retransmitted(from, to int) {
	if r == nil {
		return
	}
	if e := r.edgeAt(from, to); e != nil {
		e.retransmitted.Add(1)
	}
}

// IngestDrop records one envelope rejected at replica rep before
// buffering: corrupt metadata, an out-of-range sender, or a wrong-length
// timestamp. Protocol nodes report these through core.Diag instead of
// logging unconditionally; the counter is the durable signal.
func (r *Registry) IngestDrop(rep int) {
	if r == nil || rep < 0 || rep >= r.replicas {
		return
	}
	r.rep[rep].ingestDrops.Add(1)
}

// Batch records one flushed shard batch of the given envelope count,
// tracking the largest batch seen.
func (r *Registry) Batch(envelopes int) {
	if r == nil {
		return
	}
	r.batches.Add(1)
	r.batchEnvs.Add(int64(envelopes))
	for {
		max := r.batchMax.Load()
		if int64(envelopes) <= max || r.batchMax.CompareAndSwap(max, int64(envelopes)) {
			return
		}
	}
}

// ObserveLatency folds one probed round-trip on edge from→to into the
// edge's EWMA with the given smoothing factor (0 < alpha <= 1; the first
// observation seeds the average directly). alpha > 1 would extrapolate
// past the new sample — the EWMA oscillates and can go negative, which
// poisons any ordering built on it — so it is clamped to 1 (track the
// latest sample exactly).
func (r *Registry) ObserveLatency(from, to int, rtt time.Duration, alpha float64) {
	if r == nil || alpha <= 0 {
		return
	}
	if alpha > 1 {
		alpha = 1
	}
	e := r.edgeAt(from, to)
	if e == nil {
		return
	}
	e.probes.Add(1)
	for {
		old := e.ewmaNs.Load()
		next := int64(rtt)
		if old != 0 {
			next = old + int64(alpha*float64(int64(rtt)-old))
		}
		if next == 0 {
			next = 1 // 0 is the never-probed sentinel
		}
		if e.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// EdgeLatencyNs returns the probed latency EWMA for edge from→to in
// nanoseconds, or 0 if the edge was never successfully probed.
func (r *Registry) EdgeLatencyNs(from, to int) int64 {
	if r == nil {
		return 0
	}
	if e := r.edgeAt(from, to); e != nil {
		return e.ewmaNs.Load()
	}
	return 0
}

// ReplicaMetrics is one replica's protocol-level counters in a Snapshot.
type ReplicaMetrics struct {
	Delivered   int64 `json:"delivered"`
	Applied     int64 `json:"applied"`
	Stalls      int64 `json:"stalls"`
	Rechecks    int64 `json:"rechecks"`
	IngestDrops int64 `json:"ingest_drops,omitempty"` // envelopes rejected before buffering
	Parked      int64 `json:"parked"`                 // pending-buffered updates at snapshot time
	InboxDepth  int64 `json:"inbox_depth"`            // engine queue depth (when queues == replicas)
	InboxPeak   int64 `json:"inbox_peak"`
}

// QueueMetrics is one engine destination queue's gauge pair in a
// Snapshot. Present only when the runtime's queue index space differs
// from its replica index space (the sharded runtime, where queues are
// shards); otherwise the gauges fold into ReplicaMetrics.
type QueueMetrics struct {
	Depth int64 `json:"depth"`
	Peak  int64 `json:"peak"`
}

// EdgeMetrics is one ordered replica pair's traffic counters in a
// Snapshot.
type EdgeMetrics struct {
	Sent          int64 `json:"sent"`
	Bytes         int64 `json:"bytes"`
	Delivered     int64 `json:"delivered"`
	Dropped       int64 `json:"dropped,omitempty"`
	Duped         int64 `json:"duped,omitempty"`
	Retransmitted int64 `json:"retransmitted,omitempty"`
	Probes        int64 `json:"probes,omitempty"`
	LatencyNs     int64 `json:"latency_ns,omitempty"`
}

func (e EdgeMetrics) zero() bool {
	return e == EdgeMetrics{}
}

// Snapshot is the unified metrics schema every runtime returns (exposed
// publicly as prcc.Metrics) and the payload of the /statusz endpoint.
// The legacy totals mirror the values the old per-runtime Stats()
// tuples returned and are filled by the runtime even when the registry
// is disarmed; the per-replica and per-edge breakdowns are present only
// when metrics collection is armed.
type Snapshot struct {
	// Runtime identifies the producer: "cluster", "clientserver",
	// "sharded", or "wire".
	Runtime string `json:"runtime,omitempty"`

	// Legacy totals (superset of the three retired Stats() tuples).
	Messages    int64 `json:"messages"`
	MetaBytes   int64 `json:"meta_bytes"`
	Updates     int64 `json:"updates,omitempty"`
	Batches     int64 `json:"batches,omitempty"`
	Envelopes   int64 `json:"envelopes,omitempty"`
	MaxBatch    int64 `json:"max_batch,omitempty"`
	Outstanding int64 `json:"outstanding,omitempty"`
	Parked      int64 `json:"parked,omitempty"`
	Dropped     int64 `json:"dropped,omitempty"`
	Duped       int64 `json:"duped,omitempty"`

	Replicas []ReplicaMetrics       `json:"replicas,omitempty"`
	Queues   []QueueMetrics         `json:"queues,omitempty"`
	Edges    map[string]EdgeMetrics `json:"edges,omitempty"`
}

// EdgeKey is the Snapshot.Edges map key for edge from→to.
func EdgeKey(from, to int) string { return fmt.Sprintf("%d->%d", from, to) }

// Snapshot materializes the registry's current counters. Counters are
// read individually with atomic loads, so a snapshot taken mid-run is
// internally consistent per counter but not across counters — fine for
// monitoring, by design. A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.Batches = r.batches.Load()
	s.Envelopes = r.batchEnvs.Load()
	s.MaxBatch = r.batchMax.Load()
	if r.replicas > 0 {
		s.Replicas = make([]ReplicaMetrics, r.replicas)
		for i := range s.Replicas {
			c := &r.rep[i]
			s.Replicas[i] = ReplicaMetrics{
				Delivered:   c.delivered.Load(),
				Applied:     c.applied.Load(),
				Stalls:      c.stalls.Load(),
				Rechecks:    c.rechecks.Load(),
				IngestDrops: c.ingestDrops.Load(),
			}
			if r.queues == r.replicas {
				s.Replicas[i].InboxDepth = r.queue[i].depth.Load()
				s.Replicas[i].InboxPeak = r.queue[i].peak.Load()
			}
		}
	}
	if r.queues != r.replicas && r.queues > 0 {
		s.Queues = make([]QueueMetrics, r.queues)
		for i := range s.Queues {
			s.Queues[i] = QueueMetrics{Depth: r.queue[i].depth.Load(), Peak: r.queue[i].peak.Load()}
		}
	}
	for from := 0; from < r.replicas; from++ {
		for to := 0; to < r.replicas; to++ {
			c := &r.edge[from*r.replicas+to]
			e := EdgeMetrics{
				Sent:          c.sent.Load(),
				Bytes:         c.bytes.Load(),
				Delivered:     c.delivered.Load(),
				Dropped:       c.dropped.Load(),
				Duped:         c.duped.Load(),
				Retransmitted: c.retransmitted.Load(),
				Probes:        c.probes.Load(),
				LatencyNs:     c.ewmaNs.Load(),
			}
			if e.zero() {
				continue
			}
			if s.Edges == nil {
				s.Edges = make(map[string]EdgeMetrics)
			}
			s.Edges[EdgeKey(from, to)] = e
		}
	}
	return s
}
