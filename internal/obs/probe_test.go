package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestProberTickDeterministic drives the prober with a simulated clock:
// each due edge gets Burst back-to-back probes per tick, the minimum
// successful round-trip feeds the EWMA, and an edge stays quiet until its
// interval elapses again.
func TestProberTickDeterministic(t *testing.T) {
	reg := New(3, 0)
	// Per-burst round-trips for edge 0->1; edge 1->2 always fails (a
	// partitioned path leaves the EWMA untouched).
	rtts := [][3]time.Duration{
		{5 * time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond},
		{8 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond},
	}
	var round int
	probe := func(from, to int) (time.Duration, bool) {
		if from == 1 {
			return 0, false
		}
		burst := rtts[round]
		r := burst[0]
		rtts[round] = [3]time.Duration{burst[1], burst[2], burst[0]}
		return r, true
	}
	p := NewProber(reg, [][2]int{{0, 1}, {1, 2}}, probe, ProberOptions{
		Interval: 50 * time.Millisecond,
		Burst:    3,
		Alpha:    0.5,
	})

	base := time.Unix(0, 0)
	p.Tick(base)
	if got := reg.EdgeLatencyNs(0, 1); got != int64(3*time.Millisecond) {
		t.Errorf("EWMA after first burst = %d, want min-of-burst 3ms", got)
	}
	if got := reg.EdgeLatencyNs(1, 2); got != 0 {
		t.Errorf("failed edge EWMA = %d, want untouched 0", got)
	}
	if got := p.Probes(); got != 6 {
		t.Errorf("probes after tick 1 = %d, want 6 (2 edges x burst 3)", got)
	}

	// Before the interval elapses nothing is due.
	round = 1
	p.Tick(base.Add(20 * time.Millisecond))
	if got := p.Probes(); got != 6 {
		t.Errorf("early tick probed anyway: %d probes", got)
	}

	// At the interval both edges re-probe; EWMA moves halfway toward the
	// new burst minimum (7ms): 3 + 0.5*(7-3) = 5ms.
	p.Tick(base.Add(50 * time.Millisecond))
	if got := reg.EdgeLatencyNs(0, 1); got != int64(5*time.Millisecond) {
		t.Errorf("EWMA after second burst = %d, want 5ms", got)
	}
	if got := p.Probes(); got != 12 {
		t.Errorf("probes after tick 3 = %d, want 12", got)
	}
	if e := reg.Snapshot().Edges[EdgeKey(0, 1)]; e.Probes != 2 {
		t.Errorf("registry edge probes = %d, want 2 successful-burst observations", e.Probes)
	}
}

// TestProberStartStop exercises the real-time mode: Start probes, double
// Start is a no-op, Stop waits the loop out, and Start after Stop
// restarts.
func TestProberStartStop(t *testing.T) {
	reg := New(2, 0)
	var calls atomic.Int64
	probe := func(from, to int) (time.Duration, bool) {
		calls.Add(1)
		return time.Millisecond, true
	}
	p := NewProber(reg, [][2]int{{0, 1}}, probe, ProberOptions{Interval: 5 * time.Millisecond, Burst: 1})
	p.Start()
	p.Start() // second Start must not spawn a second loop
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if calls.Load() < 2 {
		t.Fatalf("probe loop made %d calls, want >= 2", calls.Load())
	}
	after := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != after {
		t.Error("probe loop still running after Stop")
	}
	if reg.EdgeLatencyNs(0, 1) == 0 {
		t.Error("real-time probing never fed the EWMA")
	}

	p.Start() // restart after Stop
	deadline = time.Now().Add(2 * time.Second)
	for calls.Load() == after && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if calls.Load() == after {
		t.Error("Start after Stop did not resume probing")
	}
}
