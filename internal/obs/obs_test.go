package obs

import (
	"testing"
	"time"
)

// TestNilRegistryNoOps pins the disarmed contract: every recording and
// reading method is safe on a nil *Registry and the whole disarmed call
// surface allocates nothing — the same zero-cost discipline the chaos
// hooks established.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	disarmed := func() {
		r.QueueDepth(0, 5)
		_ = r.Depth(0)
		r.Deliver(0, 1, 2)
		r.Sent(0, 1, 64)
		r.Dropped(0, 1)
		r.Duped(0, 1)
		r.Retransmitted(0, 1)
		r.Batch(3)
		r.ObserveLatency(0, 1, time.Millisecond, 0.2)
		_ = r.EdgeLatencyNs(0, 1)
		_ = r.Replicas()
	}
	disarmed() // must not panic
	if allocs := testing.AllocsPerRun(100, disarmed); allocs != 0 {
		t.Errorf("disarmed registry call surface allocates %.1f/op, want 0", allocs)
	}
	s := r.Snapshot()
	if s.Messages != 0 || s.Replicas != nil || s.Edges != nil || s.Queues != nil {
		t.Errorf("nil registry Snapshot not zero: %+v", s)
	}
}

// TestDeliverSemantics pins the applied-count interpretation: 0 is a
// dependency stall, >1 releases applied-1 parked updates on recheck, and
// MetaOnly counts as delivered but neither stall nor apply.
func TestDeliverSemantics(t *testing.T) {
	r := New(3, 3)
	r.Deliver(0, 1, 0)        // stall
	r.Deliver(0, 1, 1)        // plain apply
	r.Deliver(2, 1, 3)        // apply releasing two parked updates
	r.Deliver(0, 1, MetaOnly) // meta-only: neither stall nor apply
	r.Deliver(-1, 1, 1)       // unknown origin: replica counters only
	r.Deliver(0, 99, 1)       // out-of-range target: ignored entirely

	s := r.Snapshot()
	rm := s.Replicas[1]
	if rm.Delivered != 5 {
		t.Errorf("delivered = %d, want 5", rm.Delivered)
	}
	if rm.Applied != 5 {
		t.Errorf("applied = %d, want 5", rm.Applied)
	}
	if rm.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", rm.Stalls)
	}
	if rm.Rechecks != 2 {
		t.Errorf("rechecks = %d, want 2", rm.Rechecks)
	}
	if got := s.Edges[EdgeKey(0, 1)].Delivered; got != 3 {
		t.Errorf("edge 0->1 delivered = %d, want 3", got)
	}
	if got := s.Edges[EdgeKey(2, 1)].Delivered; got != 1 {
		t.Errorf("edge 2->1 delivered = %d, want 1", got)
	}
	if len(s.Replicas) != 3 || s.Replicas[0].Delivered != 0 {
		t.Errorf("unexpected replica breakdown: %+v", s.Replicas)
	}
}

// TestEdgeCounters covers the traffic counters and the fault-injection
// attribution set.
func TestEdgeCounters(t *testing.T) {
	r := New(2, 0)
	r.Sent(0, 1, 40)
	r.Sent(0, 1, 24)
	r.Dropped(0, 1)
	r.Duped(0, 1)
	r.Duped(0, 1)
	r.Retransmitted(0, 1)
	r.Sent(5, 1, 8) // out of range: ignored

	e := r.Snapshot().Edges[EdgeKey(0, 1)]
	if e.Sent != 2 || e.Bytes != 64 {
		t.Errorf("sent/bytes = %d/%d, want 2/64", e.Sent, e.Bytes)
	}
	if e.Dropped != 1 || e.Duped != 2 || e.Retransmitted != 1 {
		t.Errorf("fault counters = %d/%d/%d, want 1/2/1", e.Dropped, e.Duped, e.Retransmitted)
	}
	// The reverse edge never saw traffic and must be absent, not zero.
	if _, ok := r.Snapshot().Edges[EdgeKey(1, 0)]; ok {
		t.Error("zero-valued edge 1->0 present in snapshot")
	}
}

// TestQueueGaugesAndBatch pins the gauge high-water marks and the batch
// counters.
func TestQueueGaugesAndBatch(t *testing.T) {
	r := New(2, 2)
	r.QueueDepth(0, 4)
	r.QueueDepth(0, 9)
	r.QueueDepth(0, 2) // depth drops, peak must not
	if got := r.Depth(0); got != 2 {
		t.Errorf("Depth(0) = %d, want 2", got)
	}
	r.Batch(3)
	r.Batch(7)
	r.Batch(5)

	s := r.Snapshot()
	// queues == replicas: gauges fold into the replica rows.
	if s.Queues != nil {
		t.Errorf("Queues slice present despite queues==replicas: %+v", s.Queues)
	}
	if s.Replicas[0].InboxDepth != 2 || s.Replicas[0].InboxPeak != 9 {
		t.Errorf("folded gauges = %d/%d, want 2/9", s.Replicas[0].InboxDepth, s.Replicas[0].InboxPeak)
	}
	if s.Batches != 3 || s.Envelopes != 15 || s.MaxBatch != 7 {
		t.Errorf("batch counters = %d/%d/%d, want 3/15/7", s.Batches, s.Envelopes, s.MaxBatch)
	}
}

// TestQueueSpaceSeparate pins the sharded-runtime shape: when the queue
// index space differs from the replica space the snapshot reports a
// separate Queues slice instead of guessing a fold.
func TestQueueSpaceSeparate(t *testing.T) {
	r := New(2, 4)
	r.QueueDepth(3, 6)
	s := r.Snapshot()
	if len(s.Queues) != 4 {
		t.Fatalf("len(Queues) = %d, want 4", len(s.Queues))
	}
	if s.Queues[3].Depth != 6 || s.Queues[3].Peak != 6 {
		t.Errorf("queue 3 = %+v, want depth/peak 6/6", s.Queues[3])
	}
	if s.Replicas[0].InboxDepth != 0 || s.Replicas[1].InboxPeak != 0 {
		t.Errorf("replica rows absorbed queue gauges despite differing index spaces: %+v", s.Replicas)
	}
}

// TestObserveLatencyEWMA pins the smoothing semantics: the first sample
// seeds the average directly, later samples move it by alpha, and 0
// stays the never-probed sentinel.
func TestObserveLatencyEWMA(t *testing.T) {
	r := New(2, 0)
	if got := r.EdgeLatencyNs(0, 1); got != 0 {
		t.Errorf("unprobed edge latency = %d, want 0", got)
	}
	r.ObserveLatency(0, 1, 1000*time.Nanosecond, 0.5)
	if got := r.EdgeLatencyNs(0, 1); got != 1000 {
		t.Errorf("seeded EWMA = %d, want 1000", got)
	}
	r.ObserveLatency(0, 1, 2000*time.Nanosecond, 0.5)
	if got := r.EdgeLatencyNs(0, 1); got != 1500 {
		t.Errorf("smoothed EWMA = %d, want 1500", got)
	}
	// A computed zero is bumped to 1ns so it cannot masquerade as
	// never-probed.
	r2 := New(2, 0)
	r2.ObserveLatency(0, 1, 0, 1.0)
	if got := r2.EdgeLatencyNs(0, 1); got != 1 {
		t.Errorf("zero-rtt EWMA = %d, want sentinel-avoiding 1", got)
	}
	// Invalid alpha is ignored.
	r2.ObserveLatency(0, 1, time.Second, 0)
	if got := r2.EdgeLatencyNs(0, 1); got != 1 {
		t.Errorf("alpha<=0 mutated EWMA to %d", got)
	}
	if e := r.Snapshot().Edges[EdgeKey(0, 1)]; e.Probes != 2 || e.LatencyNs != 1500 {
		t.Errorf("snapshot edge probe fields = %d/%d, want 2/1500", e.Probes, e.LatencyNs)
	}
}

// TestObserveLatencyAlphaClamp: alpha > 1 must clamp to 1 (track the
// newest sample exactly) instead of extrapolating past it, which made
// the EWMA oscillate and, for alpha > 2, diverge — and a large enough
// sample swing could even drive it negative.
func TestObserveLatencyAlphaClamp(t *testing.T) {
	r := New(2, 0)
	r.ObserveLatency(0, 1, 1000*time.Nanosecond, 0.5)
	r.ObserveLatency(0, 1, 2000*time.Nanosecond, 5.0)
	if got := r.EdgeLatencyNs(0, 1); got != 2000 {
		t.Errorf("alpha>1 EWMA = %d, want clamped-to-newest 2000", got)
	}
	// The unclamped formula old + 3(new-old) with new << old went
	// negative; clamped it lands exactly on the new sample.
	r.ObserveLatency(0, 1, 10*time.Nanosecond, 3.0)
	if got := r.EdgeLatencyNs(0, 1); got != 10 {
		t.Errorf("alpha>1 downswing EWMA = %d, want 10", got)
	}
}

// TestIngestDrops: drop counting is nil-safe, bounds-checked, and
// surfaces in the per-replica snapshot.
func TestIngestDrops(t *testing.T) {
	var nilReg *Registry
	nilReg.IngestDrop(0) // must not panic

	r := New(3, 0)
	r.IngestDrop(-1)
	r.IngestDrop(3) // out of range: ignored
	r.IngestDrop(1)
	r.IngestDrop(1)
	s := r.Snapshot()
	if got := s.Replicas[1].IngestDrops; got != 2 {
		t.Errorf("replica 1 ingest drops = %d, want 2", got)
	}
	if got := s.Replicas[0].IngestDrops; got != 0 {
		t.Errorf("replica 0 ingest drops = %d, want 0", got)
	}
}

func TestEdgeKey(t *testing.T) {
	if got := EdgeKey(3, 11); got != "3->11" {
		t.Errorf("EdgeKey(3,11) = %q", got)
	}
}
