package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStatuszGolden pins the /statusz wire format byte-for-byte on a
// fixed registry so any schema drift (renamed json tag, lost omitempty,
// reordered field) fails loudly instead of silently breaking scrapers.
func TestStatuszGolden(t *testing.T) {
	r := New(2, 2)
	r.Deliver(0, 1, 0) // stall
	r.Deliver(0, 1, 2) // apply + recheck
	r.Sent(0, 1, 48)
	r.Sent(0, 1, 48)
	r.QueueDepth(1, 3)
	r.ObserveLatency(0, 1, 250*time.Microsecond, 0.2)

	snap := func() Snapshot {
		s := r.Snapshot()
		s.Runtime = "cluster"
		s.Messages = 2
		s.MetaBytes = 96
		s.Updates = 2
		return s
	}
	rec := httptest.NewRecorder()
	Handler(snap).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	const golden = `{
  "runtime": "cluster",
  "messages": 2,
  "meta_bytes": 96,
  "updates": 2,
  "replicas": [
    {
      "delivered": 0,
      "applied": 0,
      "stalls": 0,
      "rechecks": 0,
      "parked": 0,
      "inbox_depth": 0,
      "inbox_peak": 0
    },
    {
      "delivered": 2,
      "applied": 2,
      "stalls": 1,
      "rechecks": 1,
      "parked": 0,
      "inbox_depth": 3,
      "inbox_peak": 3
    }
  ],
  "edges": {
    "0->1": {
      "sent": 2,
      "bytes": 96,
      "delivered": 2,
      "probes": 1,
      "latency_ns": 250000
    }
  }
}
`
	if got := rec.Body.String(); got != golden {
		t.Errorf("/statusz body drifted from golden:\n got: %s\nwant: %s", got, golden)
	}
}

// TestMetricszFlatten pins the flat scraper representation: stable legacy
// totals, dotted breakdown keys, and conditional fault/probe keys.
func TestMetricszFlatten(t *testing.T) {
	r := New(2, 4)
	r.Deliver(0, 1, 1)
	r.Sent(0, 1, 16)
	r.Dropped(0, 1)
	r.QueueDepth(2, 5)
	s := r.Snapshot()
	s.Messages = 1
	s.MetaBytes = 16

	rec := httptest.NewRecorder()
	Handler(func() Snapshot { return s }).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	var flat map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatalf("/metricsz not flat JSON: %v", err)
	}
	want := map[string]int64{
		"messages":            1,
		"meta_bytes":          16,
		"updates":             0, // zero legacy totals keep their keys
		"replica.1.delivered": 1,
		"replica.1.applied":   1,
		"queue.2.depth":       5,
		"queue.2.peak":        5,
		"edge.0->1.sent":      1,
		"edge.0->1.bytes":     16,
		"edge.0->1.dropped":   1,
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %d, want %d", k, flat[k], v)
		}
	}
	for _, absent := range []string{"edge.0->1.duped", "edge.0->1.probes", "edge.0->1.latency_ns", "edge.1->0.sent"} {
		if _, ok := flat[absent]; ok {
			t.Errorf("flat key %q present, want absent", absent)
		}
	}
}

// TestConcurrentScrape races /statusz and /metricsz scrapes against
// writers hammering every counter — the exact interleaving a live
// cluster produces. Run under -race (tier-1 CI does) this pins the
// lock-free snapshot contract.
func TestConcurrentScrape(t *testing.T) {
	r := New(4, 4)
	h := Handler(func() Snapshot {
		s := r.Snapshot()
		s.Runtime = "cluster"
		return s
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Deliver(w, (w+1)%4, i%3)
				r.Sent(w, (w+1)%4, 32)
				r.QueueDepth(w, i%10)
				r.Batch(i % 5)
				r.ObserveLatency(w, (w+1)%4, time.Duration(i%100)*time.Microsecond, 0.2)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		path := "/statusz"
		if i%2 == 1 {
			path = "/metricsz"
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("scrape %d: invalid JSON", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStatusServer exercises the real listener path with port 0.
func TestStatusServer(t *testing.T) {
	r := New(2, 2)
	r.Deliver(0, 1, 1)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr(), ":") {
		t.Fatalf("bad bound addr %q", srv.Addr())
	}
	resp, err := http.Get("http://" + srv.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if len(s.Replicas) != 2 || s.Replicas[1].Delivered != 1 {
		t.Errorf("served snapshot = %+v", s)
	}
}
