package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Handler returns an http.Handler serving the two status routes:
//
//	/statusz  — the full Snapshot as indented JSON (human-oriented)
//	/metricsz — a flat JSON object of "metric" -> number pairs with
//	            dotted keys ("replica.0.delivered", "edge.0->1.sent"),
//	            stable across runtimes for scrapers
//
// snap is called once per request; it must be safe for concurrent use
// (Registry.Snapshot is).
func Handler(snap func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, snap(), true)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, Flatten(snap()), false)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any, indent bool) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // keep edge keys readable: "0->1" without > escapes
	if indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Flatten converts a Snapshot into the flat /metricsz representation:
// an ordered map from dotted metric name to value. Zero-valued legacy
// totals are kept (a scraper wants a stable key set); absent breakdowns
// simply contribute no keys.
func Flatten(s Snapshot) map[string]int64 {
	out := map[string]int64{
		"messages":    s.Messages,
		"meta_bytes":  s.MetaBytes,
		"updates":     s.Updates,
		"batches":     s.Batches,
		"envelopes":   s.Envelopes,
		"max_batch":   s.MaxBatch,
		"outstanding": s.Outstanding,
		"parked":      s.Parked,
		"dropped":     s.Dropped,
		"duped":       s.Duped,
	}
	for i, r := range s.Replicas {
		p := "replica." + strconv.Itoa(i) + "."
		out[p+"delivered"] = r.Delivered
		out[p+"applied"] = r.Applied
		out[p+"stalls"] = r.Stalls
		out[p+"rechecks"] = r.Rechecks
		out[p+"parked"] = r.Parked
		out[p+"inbox_depth"] = r.InboxDepth
		out[p+"inbox_peak"] = r.InboxPeak
	}
	for i, q := range s.Queues {
		p := "queue." + strconv.Itoa(i) + "."
		out[p+"depth"] = q.Depth
		out[p+"peak"] = q.Peak
	}
	keys := make([]string, 0, len(s.Edges))
	for k := range s.Edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.Edges[k]
		p := "edge." + k + "."
		out[p+"sent"] = e.Sent
		out[p+"bytes"] = e.Bytes
		out[p+"delivered"] = e.Delivered
		if e.Dropped != 0 {
			out[p+"dropped"] = e.Dropped
		}
		if e.Duped != 0 {
			out[p+"duped"] = e.Duped
		}
		if e.Retransmitted != 0 {
			out[p+"retransmitted"] = e.Retransmitted
		}
		if e.Probes != 0 {
			out[p+"probes"] = e.Probes
			out[p+"latency_ns"] = e.LatencyNs
		}
	}
	return out
}

// StatusServer is a running HTTP status endpoint bound to a listener.
type StatusServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free port) and serves the
// status routes for snap in a background goroutine until Close.
func Serve(addr string, snap func() Snapshot) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:     Handler(snap),
		ReadTimeout: 10 * time.Second,
	}
	s := &StatusServer{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // always returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *StatusServer) Close() error { return s.srv.Close() }
