package obs

import (
	"sync"
	"time"
)

// ProbeFunc measures one round-trip on edge from→to, returning the
// observed latency and whether the probe succeeded. A probe may fail
// because the edge is partitioned (the fault layer refuses it) or the
// peer is down; failed probes leave the EWMA untouched.
type ProbeFunc func(from, to int) (time.Duration, bool)

// ProberOptions tunes the health prober. Zero values select defaults.
type ProberOptions struct {
	// Interval is the per-edge probe spacing (and the real-time tick
	// period for Start). Default 50ms.
	Interval time.Duration
	// Burst is how many back-to-back probes each due edge gets per tick;
	// the minimum successful round-trip of the burst feeds the EWMA,
	// filtering scheduler noise the way Xray's observatory burst-pings a
	// path before trusting one sample. Default 3.
	Burst int
	// Alpha is the EWMA smoothing factor in (0, 1]. Default 0.2.
	Alpha float64
}

func (o ProberOptions) withDefaults() ProberOptions {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.Burst <= 0 {
		o.Burst = 3
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.2
	}
	return o
}

// Prober burst-pings a fixed set of relay edges and folds the measured
// round-trips into the registry's per-edge latency EWMAs. Like
// internal/membership's detector it has two drive modes: deterministic
// Tick(now) for tests and simulations, and a real-time Start/Stop loop
// for live runtimes.
type Prober struct {
	reg   *Registry
	probe ProbeFunc
	edges [][2]int
	opts  ProberOptions

	mu     sync.Mutex
	due    []time.Time // next probe time per edge; zero = immediately
	probes int64

	stop chan struct{}
	done chan struct{}
}

// NewProber builds a prober over the given directed edges. The edge set
// should be the share graph's actual relay paths (pairs of replicas
// that exchange updates), not all n² pairs — probing a pair that never
// carries traffic measures nothing actionable.
func NewProber(reg *Registry, edges [][2]int, probe ProbeFunc, opts ProberOptions) *Prober {
	es := make([][2]int, len(edges))
	copy(es, edges)
	return &Prober{
		reg:   reg,
		probe: probe,
		edges: es,
		opts:  opts.withDefaults(),
		due:   make([]time.Time, len(es)),
	}
}

// Tick probes every edge whose interval has elapsed at `now`: Burst
// back-to-back probes, minimum successful round-trip into the EWMA.
// Deterministic drivers call it directly with simulated clocks; the
// Start loop calls it with wall time.
func (p *Prober) Tick(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.edges {
		if now.Before(p.due[i]) {
			continue
		}
		p.due[i] = now.Add(p.opts.Interval)
		best := time.Duration(-1)
		for b := 0; b < p.opts.Burst; b++ {
			p.probes++
			rtt, ok := p.probe(e[0], e[1])
			if !ok {
				continue
			}
			if best < 0 || rtt < best {
				best = rtt
			}
		}
		if best >= 0 {
			p.reg.ObserveLatency(e[0], e[1], best, p.opts.Alpha)
		}
	}
}

// Probes returns the total number of individual probe calls issued.
func (p *Prober) Probes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes
}

// Start launches the real-time probe loop. Stop terminates it; Start
// after Stop restarts it. Calling Start twice without Stop is a no-op
// the second time.
func (p *Prober) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop halts the real-time loop and waits for it to exit. Safe to call
// when the loop is not running.
func (p *Prober) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Prober) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	p.Tick(time.Now())
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			p.Tick(now)
		}
	}
}
