package sharegraph

import "sync"

// This file implements the exact (i, e_jk)-loop decision engine. The legacy
// DFS in loops.go enumerates simple loops through i and is exponential on
// dense share graphs; this engine decides Definition 4 existence without
// enumerating loops, by exploiting two structural facts:
//
//  1. Every side condition has the form "X − S ≠ ∅" for a set S that only
//     grows as the l-path grows (interior ⊆ full, and both are unions of
//     replica register sets). Feasibility is therefore ANTITONE in the
//     interior: any loop that closes against a small interior also closes
//     against any subset of it. The l-path search keeps, per vertex, an
//     antichain of ⊆-minimal interior masks and prunes every dominated
//     state — the search is a Pareto fixpoint over (vertex, interior-mask)
//     states instead of a walk over simple paths.
//
//  2. Once the l-path is fixed, the r-path needs no vertex bookkeeping at
//     all: a hop into an l-path interior vertex v carries a label
//     X_uv ⊆ X_v ⊆ interior, so conditions (ii)/(iii) already forbid the
//     r-path from touching the l-path (and X_uk ⊆ X_k ⊆ full forbids k).
//     Deciding conditions (ii)+(iii) is plain BFS reachability from j to i
//     in an edge-filtered graph — polynomial, evaluated once per
//     undominated arrival at k. The only vertex the filter cannot exclude
//     is a FIRST hop onto k (condition (ii) tests against interior, which
//     excludes X_k), so r_2 = k is rejected explicitly.
//
// Dominance over register masks alone is sound because the l-path can be
// relaxed to a WALK: shortcutting a walk only shrinks the interior, which
// only helps every condition, so walk-reachable (k, S) with a feasible
// r-side implies a simple witness with interior ⊆ S. Parent chains through
// the antichain are in fact already simple (a revisit would be dominated
// by the chain's own earlier state), so witness reconstruction needs no
// shortcutting.
//
// The augmented variant (Definition 27) weakens hops to "label condition
// OR both endpoints client-accessible". Client-pair hops bypass the
// register filter, so fact 2 no longer excludes the l-path automatically;
// the augmented engine appends per-vertex visited bits to the state mask
// (dominance becomes the product order over registers × vertices) and the
// r-side BFS excludes the l-path's vertex set explicitly.
//
// Truncated searches (0 < MaxLen < R, the Appendix D causality sacrifice)
// delegate to the legacy bounded DFS: the length bound breaks mask
// monotonicity, the bounded DFS is tractable by construction, and
// delegation keeps the truncation semantics bit-identical.

// searchIndex holds the per-graph canonical bitmask tables shared by the
// exact engine and the allocation-free IsIEJKLoop validator: one bit per
// register that appears in at least one shared edge set (private registers
// never occur in edge labels, so they cannot affect any side condition).
type searchIndex struct {
	words  int              // register-mask words
	vwords int              // vertex-bitset words (⌈R/64⌉)
	regBit map[Register]int // shared registers → bit position
	xb     [][]uint64       // xb[v] = X_v ∩ shared registers
	eb     map[Edge][]uint64
	pool   sync.Pool // *loopScratch for the validators
}

// loopScratch is the reusable working memory of IsIEJKLoop /
// IsAugmentedIEJKLoop, recycled through searchIndex.pool so validation
// runs allocation-free inside fuzz and differential loops.
type loopScratch struct {
	seen     []uint64
	interior []uint64
	full     []uint64
}

// searchIndex lazily builds (once, concurrency-safe) the bitmask tables.
func (g *Graph) searchIndex() *searchIndex {
	g.searchOnce.Do(func() {
		idx := &searchIndex{regBit: make(map[Register]int)}
		for _, r := range g.regs {
			if len(g.holders[r]) >= 2 {
				idx.regBit[r] = len(idx.regBit)
			}
		}
		idx.words = (len(idx.regBit) + 63) / 64
		if idx.words == 0 {
			idx.words = 1 // keep mask slices non-empty on edgeless graphs
		}
		idx.vwords = (g.r + 63) / 64
		idx.xb = make([][]uint64, g.r)
		for i := range idx.xb {
			m := make([]uint64, idx.words)
			for r := range g.stores[i] {
				if b, ok := idx.regBit[r]; ok {
					m[b>>6] |= 1 << (b & 63)
				}
			}
			idx.xb[i] = m
		}
		idx.eb = make(map[Edge][]uint64, len(g.shared))
		for e, x := range g.shared {
			m := make([]uint64, idx.words)
			for r := range x {
				b := idx.regBit[r]
				m[b>>6] |= 1 << (b & 63)
			}
			idx.eb[e] = m
		}
		idx.pool.New = func() any {
			return &loopScratch{
				seen:     make([]uint64, idx.vwords),
				interior: make([]uint64, idx.words),
				full:     make([]uint64, idx.words),
			}
		}
		g.searchIdx = idx
	})
	return g.searchIdx
}

func (idx *searchIndex) scratch() *loopScratch   { return idx.pool.Get().(*loopScratch) }
func (idx *searchIndex) release(sc *loopScratch) { idx.pool.Put(sc) }

// ---- word-mask primitives ----

func maskZero(m []uint64) {
	for w := range m {
		m[w] = 0
	}
}

func maskCopy(dst, src []uint64) { copy(dst, src) }

func maskOr(dst, src []uint64) {
	for w := range src {
		dst[w] |= src[w]
	}
}

// maskSubset reports a ⊆ b.
func maskSubset(a, b []uint64) bool {
	for w := range a {
		if a[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

// maskDiffNonEmpty reports a − b ≠ ∅; a nil a (no such edge label) is
// empty, a nil b is the empty exclusion set.
func maskDiffNonEmpty(a, b []uint64) bool {
	if b == nil {
		for _, w := range a {
			if w != 0 {
				return true
			}
		}
		return false
	}
	for w := range a {
		if a[w]&^b[w] != 0 {
			return true
		}
	}
	return false
}

func bitSet(m []uint64, i int) { m[i>>6] |= 1 << (i & 63) }

func bitGet(m []uint64, i int) bool { return m[i>>6]&(1<<(i&63)) != 0 }

// ---- the engine ----

// LoopSearcher is the exact (i, e_jk)-loop engine over one share graph.
// It decides Definition 4 existence (and produces a witness) in time
// polynomial in the Pareto-frontier size instead of the simple-loop count,
// which makes untruncated timestamp graphs tractable on dense topologies
// where the legacy DFS runs for minutes. A searcher reuses its working
// memory across queries and is NOT safe for concurrent use; create one
// per goroutine. Results are exactly those of Graph.FindIEJKLoop (the
// retained reference implementation), as asserted by the differential and
// fuzz tests in loops_diff_test.go.
type LoopSearcher struct {
	es exactSearch
}

// NewLoopSearcher builds a searcher for g.
func NewLoopSearcher(g *Graph) *LoopSearcher {
	s := &LoopSearcher{}
	s.es.init(g, nil)
	return s
}

// Find searches for an (i, e_jk)-loop and returns a witness if one
// exists. Truncated searches (0 < opts.MaxLen < R) delegate to the legacy
// bounded DFS so Appendix D behavior is preserved bit-for-bit.
func (s *LoopSearcher) Find(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	return s.es.find(i, e, opts)
}

// Has reports whether any (i, e_jk)-loop exists.
func (s *LoopSearcher) Has(i ReplicaID, e Edge, opts LoopOptions) bool {
	_, ok := s.es.find(i, e, opts)
	return ok
}

// AugmentedLoopSearcher is the exact engine for augmented (i, e_jk)-loops
// (Definition 27) over Ĝ. Same contract as LoopSearcher, with
// AugmentedGraph.FindAugmentedIEJKLoop as the reference implementation.
type AugmentedLoopSearcher struct {
	es exactSearch
}

// NewAugmentedLoopSearcher builds a searcher for a.
func NewAugmentedLoopSearcher(a *AugmentedGraph) *AugmentedLoopSearcher {
	s := &AugmentedLoopSearcher{}
	s.es.init(a.G, a)
	return s
}

// Find searches for an augmented (i, e_jk)-loop witness.
func (s *AugmentedLoopSearcher) Find(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	return s.es.find(i, e, opts)
}

// Has reports whether any augmented (i, e_jk)-loop exists.
func (s *AugmentedLoopSearcher) Has(i ReplicaID, e Edge, opts LoopOptions) bool {
	_, ok := s.es.find(i, e, opts)
	return ok
}

// sstate is one Pareto state of the l-path search: the path's end vertex
// and a parent link for witness reconstruction. Its mask lives in the
// arena at [id*tw, (id+1)*tw). live is cleared when a later ⊆-smaller
// mask dominates the state out of its vertex's antichain.
type sstate struct {
	v    ReplicaID
	prev int32
	live bool
}

type exactSearch struct {
	g   *Graph
	aug *AugmentedGraph // nil for the plain engine
	idx *searchIndex
	n   int
	rw  int // register words in a state mask
	vw  int // vertex words in a state mask (augmented only, else 0)
	tw  int // total state-mask words

	adj     [][]ReplicaID // G adjacency, or Ĝ adjacency when augmented
	adjLab  [][][]uint64  // edge label per (v, adj index); nil for client-only edges
	adjPair [][]bool      // client-pair flag per (v, adj index); nil when plain

	// Per-query scratch, reset between queries and reused across them.
	states  []sstate
	masks   []uint64  // state-mask arena, tw words per state
	anti    [][]int32 // antichain of state ids per vertex (k's slot holds arrivals)
	dirty   []int32   // vertices with non-empty antichains, for cheap reset
	queue   []int32
	cur     []uint64 // popped state's mask (arena may grow mid-expansion)
	cand    []uint64 // candidate successor mask
	fhAll   []uint64 // union of all usable first-hop labels out of j
	reach   []uint64 // vertices that can reach k avoiding j
	rvis    []uint64 // r-side BFS visited set
	rq      []ReplicaID
	rparent []ReplicaID // r-side BFS parents; -1 = reached directly from j
	rfull   []uint64    // full = interior ∪ X_k for the current r-side query
	rGoal   ReplicaID   // last r-path vertex before i (valid after success)
	rDirect bool        // r-path was the direct close j → i (t = 1)
}

func (es *exactSearch) init(g *Graph, aug *AugmentedGraph) {
	es.g, es.aug = g, aug
	es.idx = g.searchIndex()
	es.n = g.r
	es.rw = es.idx.words
	if aug != nil {
		es.vw = es.idx.vwords
		es.adj = aug.adj
	} else {
		es.adj = g.adj
	}
	es.tw = es.rw + es.vw
	es.adjLab = make([][][]uint64, es.n)
	if aug != nil {
		es.adjPair = make([][]bool, es.n)
	}
	for v := 0; v < es.n; v++ {
		nbrs := es.adj[v]
		labs := make([][]uint64, len(nbrs))
		for x, w := range nbrs {
			labs[x] = es.idx.eb[Edge{ReplicaID(v), w}]
		}
		es.adjLab[v] = labs
		if aug != nil {
			ps := make([]bool, len(nbrs))
			for x, w := range nbrs {
				ps[x] = aug.clientPair[Edge{ReplicaID(v), w}]
			}
			es.adjPair[v] = ps
		}
	}
	es.anti = make([][]int32, es.n)
	es.cur = make([]uint64, es.tw)
	es.cand = make([]uint64, es.tw)
	es.fhAll = make([]uint64, es.rw)
	es.reach = make([]uint64, es.idx.vwords)
	es.rvis = make([]uint64, es.idx.vwords)
	es.rparent = make([]ReplicaID, es.n)
	es.rfull = make([]uint64, es.rw)
}

func (es *exactSearch) mask(id int32) []uint64 {
	return es.masks[int(id)*es.tw : (int(id)+1)*es.tw]
}

// pair reports whether the x-th adjacency hop out of v is client-backed.
func (es *exactSearch) pair(v ReplicaID, x int) bool {
	return es.adjPair != nil && es.adjPair[v][x]
}

func (es *exactSearch) find(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	j, k := e.From, e.To
	if i == j || i == k || j == k || !es.g.HasEdge(e) {
		return Loop{}, false
	}
	if opts.MaxLen > 0 && opts.MaxLen < es.n {
		// Appendix D truncation: the legacy bounded DFS is the semantics.
		if es.aug != nil {
			return es.aug.FindAugmentedIEJKLoop(i, e, opts)
		}
		return es.g.FindIEJKLoop(i, e, opts)
	}
	tl := es.idx.eb[e] // X_jk, the condition (i) label

	// Depth-1 pre-filter: only vertices that can reach k at all (avoiding
	// j, which the l-path may not touch) can sit on an l-path.
	if !es.computeReach(k, j, i) {
		return Loop{}, false
	}
	// Depth-0 pre-filter: if the r-side cannot close even against an
	// empty interior — the easiest it will ever be — no l-path helps.
	if !es.rFeasible(i, j, k, nil) {
		return Loop{}, false
	}
	// Union of first-hop labels out of j (r_2 = k is never allowed): once
	// an interior covers all of them and no client pair can stand in,
	// condition (ii) is dead for every extension — masks only grow.
	fhFree := false
	maskZero(es.fhAll)
	for x, v := range es.adj[j] {
		if v == k {
			continue
		}
		if es.pair(j, x) {
			fhFree = true
		}
		if lab := es.adjLab[j][x]; lab != nil {
			maskOr(es.fhAll, lab)
		}
	}

	// Reset per-query scratch.
	es.states = es.states[:0]
	es.masks = es.masks[:0]
	for _, v := range es.dirty {
		es.anti[v] = es.anti[v][:0]
	}
	es.dirty = es.dirty[:0]
	es.queue = es.queue[:0]

	// Seed: the empty l-path at i. Interior excludes X_i by Definition 4.
	maskZero(es.cand)
	if es.vw > 0 {
		bitSet(es.cand[es.rw:], int(i))
	}
	if id, ok := es.insertState(i, es.cand, -1); ok {
		es.queue = append(es.queue, id)
	}

	for qi := 0; qi < len(es.queue); qi++ {
		sid := es.queue[qi]
		if !es.states[sid].live {
			continue // dominated after being queued
		}
		v := es.states[sid].v
		copy(es.cur, es.mask(sid))
		for _, w := range es.adj[v] {
			if w == j || w == i {
				continue
			}
			if w == k {
				// l-path complete; cur's register part is the interior.
				if !maskDiffNonEmpty(tl, es.cur[:es.rw]) {
					continue // condition (i) fails
				}
				if _, ok := es.insertState(k, es.cur, sid); !ok {
					continue // a ⊆-smaller arrival already failed the r-side
				}
				if es.rFeasible(i, j, k, es.cur) {
					return es.buildWitness(i, j, k, sid), true
				}
				continue
			}
			if !bitGet(es.reach, int(w)) {
				continue
			}
			if es.vw > 0 && bitGet(es.cur[es.rw:], int(w)) {
				continue // augmented states track vertices; simple paths suffice
			}
			copy(es.cand, es.cur)
			maskOr(es.cand[:es.rw], es.idx.xb[w])
			if es.vw > 0 {
				bitSet(es.cand[es.rw:], int(w))
			}
			if maskSubset(tl, es.cand[:es.rw]) {
				continue // condition (i) can never hold past w
			}
			if !fhFree && maskSubset(es.fhAll, es.cand[:es.rw]) {
				continue // condition (ii) can never hold past w
			}
			if id, ok := es.insertState(w, es.cand, sid); ok {
				es.queue = append(es.queue, id)
			}
		}
	}
	return Loop{}, false
}

// insertState adds a state to v's antichain unless a ⊆-smaller mask is
// already there; states the new mask dominates are evicted.
func (es *exactSearch) insertState(v ReplicaID, m []uint64, prev int32) (int32, bool) {
	lst := es.anti[v]
	for _, id := range lst {
		if maskSubset(es.mask(id), m) {
			return -1, false
		}
	}
	wasEmpty := len(lst) == 0
	out := lst[:0]
	for _, id := range lst {
		if maskSubset(m, es.mask(id)) {
			es.states[id].live = false
			continue
		}
		out = append(out, id)
	}
	id := int32(len(es.states))
	es.states = append(es.states, sstate{v: v, prev: prev, live: true})
	es.masks = append(es.masks, m...)
	es.anti[v] = append(out, id)
	if wasEmpty {
		es.dirty = append(es.dirty, int32(v))
	}
	return id, true
}

// computeReach BFS-fills es.reach with the vertices that can reach k in
// the (symmetric) search adjacency without touching j, and reports whether
// i is among them.
func (es *exactSearch) computeReach(k, j, i ReplicaID) bool {
	maskZero(es.reach)
	bitSet(es.reach, int(k))
	es.rq = es.rq[:0]
	es.rq = append(es.rq, k)
	for qi := 0; qi < len(es.rq); qi++ {
		for _, w := range es.adj[es.rq[qi]] {
			if w == j || bitGet(es.reach, int(w)) {
				continue
			}
			bitSet(es.reach, int(w))
			es.rq = append(es.rq, w)
		}
	}
	return bitGet(es.reach, int(i))
}

// rFeasible decides whether an r-path exists for the l-path summarized by
// lmask (nil = the empty l-path): conditions (ii) and (iii) as BFS edge
// filters, target i. For the plain engine the filters themselves keep the
// r-path off the l-path interior and k (their labels are inside the
// excluded sets); the augmented engine additionally excludes the l-path's
// visited-vertex bits, since client-pair hops bypass the register filter.
// On success the BFS parents (or rDirect) describe a concrete r-path.
func (es *exactSearch) rFeasible(i, j, k ReplicaID, lmask []uint64) bool {
	var interior, excl []uint64
	if lmask != nil {
		interior = lmask[:es.rw]
		if es.vw > 0 {
			excl = lmask[es.rw:]
		}
	}
	maskCopy(es.rfull, es.idx.xb[k])
	if interior != nil {
		maskOr(es.rfull, interior)
	}
	// t = 1: close j → i directly under condition (ii).
	if es.hopOK(j, i, interior) {
		es.rDirect = true
		return true
	}
	es.rDirect = false
	maskZero(es.rvis)
	es.rq = es.rq[:0]
	// First hops j → r_2 under condition (ii); r_2 = k would revisit the
	// l-path's endpoint and is the one vertex the filter cannot exclude.
	for x, v := range es.adj[j] {
		if v == i || v == k {
			continue
		}
		if excl != nil && bitGet(excl, int(v)) {
			continue
		}
		if !es.pair(j, x) && !maskDiffNonEmpty(es.adjLab[j][x], interior) {
			continue
		}
		if bitGet(es.rvis, int(v)) {
			continue
		}
		bitSet(es.rvis, int(v))
		es.rparent[v] = -1
		es.rq = append(es.rq, v)
	}
	// Later hops r_q → r_{q+1} (and the close onto i) under condition (iii).
	for qi := 0; qi < len(es.rq); qi++ {
		u := es.rq[qi]
		for x, w := range es.adj[u] {
			if !es.pair(u, x) && !maskDiffNonEmpty(es.adjLab[u][x], es.rfull) {
				continue
			}
			if w == i {
				es.rGoal = u
				return true
			}
			if w == j || w == k || bitGet(es.rvis, int(w)) {
				continue
			}
			if excl != nil && bitGet(excl, int(w)) {
				continue
			}
			bitSet(es.rvis, int(w))
			es.rparent[w] = u
			es.rq = append(es.rq, w)
		}
	}
	return false
}

// hopOK evaluates one r-side hop condition: "client pair, or the edge
// exists with label − excluded ≠ ∅". A nil excluded set is empty.
func (es *exactSearch) hopOK(u, v ReplicaID, excluded []uint64) bool {
	if es.aug != nil && es.aug.clientPair[Edge{u, v}] {
		return true
	}
	return maskDiffNonEmpty(es.idx.eb[Edge{u, v}], excluded)
}

// buildWitness reassembles the Loop from the successful l-state chain and
// the r-side BFS scratch left by the deciding rFeasible call. The chain is
// provably simple (a vertex revisit along a chain would be dominated by
// the chain's own earlier state) and the r-path provably avoids it, so no
// shortcutting is needed; the differential tests re-validate every witness
// with IsIEJKLoop / IsAugmentedIEJKLoop regardless.
func (es *exactSearch) buildWitness(i, j, k ReplicaID, sid int32) Loop {
	var rev []ReplicaID
	for id := sid; es.states[id].prev >= 0; id = es.states[id].prev {
		rev = append(rev, es.states[id].v)
	}
	lp := Loop{I: i, L: make([]ReplicaID, 0, len(rev)+1)}
	for p := len(rev) - 1; p >= 0; p-- {
		lp.L = append(lp.L, rev[p])
	}
	lp.L = append(lp.L, k)
	if es.rDirect {
		lp.R = []ReplicaID{j}
		return lp
	}
	var rrev []ReplicaID
	for v := es.rGoal; ; v = es.rparent[v] {
		rrev = append(rrev, v)
		if es.rparent[v] < 0 {
			break
		}
	}
	lp.R = make([]ReplicaID, 0, len(rrev)+1)
	lp.R = append(lp.R, j)
	for p := len(rrev) - 1; p >= 0; p-- {
		lp.R = append(lp.R, rrev[p])
	}
	return lp
}
