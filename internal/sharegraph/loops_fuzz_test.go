package sharegraph

import "testing"

// FuzzIEJKLoopSearch derives a register placement from raw fuzz bytes and
// requires the exact engine (search.go) and the legacy enumerating DFS to
// agree on (i, e_jk)-loop existence for every (i, e) pair, with every
// engine witness re-validated by the Definition 4 checker. Each placement
// byte is a holder bitmask for one register over up to 7 replicas, so the
// fuzzer explores arbitrary shared-register hypergraphs, not just the
// generator families. A truncation byte additionally exercises the
// Appendix D MaxLen delegation path.
func FuzzIEJKLoopSearch(f *testing.F) {
	f.Add(uint8(4), uint8(0), []byte{0b0011, 0b0110, 0b1100, 0b1001})
	f.Add(uint8(7), uint8(0), []byte{0b0010011, 0b0110010, 0b1100100, 0b0001001, 0b1010000, 0b0100101})
	f.Add(uint8(5), uint8(3), []byte{0b11111, 0b10101, 0b01010, 0b00111})
	f.Add(uint8(6), uint8(0), []byte{0b110000, 0b011000, 0b001100, 0b000110, 0b000011, 0b100001})
	f.Fuzz(func(t *testing.T, nrep, trunc uint8, placement []byte) {
		n := 2 + int(nrep)%6 // 2..7 replicas
		if len(placement) > 12 {
			placement = placement[:12]
		}
		stores := make([][]Register, n)
		for r, bits := range placement {
			reg := Register('a' + rune(r))
			for i := 0; i < n; i++ {
				if bits&(1<<i) != 0 {
					stores[i] = append(stores[i], reg)
				}
			}
		}
		g, err := New(stores)
		if err != nil {
			t.Fatal(err) // n >= 2 replicas always
		}
		opts := LoopOptions{MaxLen: int(trunc) % (n + 2)} // 0 = exact, else truncated
		checkEngineAgreement(t, "fuzz", g, opts)
	})
}
