package sharegraph

import (
	"fmt"
	"strings"
)

// TSGraph is the timestamp graph G_i of a replica (Definition 5): the set
// of directed share-graph edges whose update counters replica i must keep
// in its timestamp. It contains every directed edge incident at i (both
// directions) plus every edge e_jk (j ≠ i ≠ k) for which an (i, e_jk)-loop
// exists. Timestamp-graph edges are not necessarily bidirectional.
type TSGraph struct {
	Owner ReplicaID
	edges []Edge        // deterministic order: sorted (From, To)
	index map[Edge]int  // edge → position in edges
	loops map[Edge]Loop // witness loop per non-incident edge (diagnostics)
}

// BuildTSGraph computes G_i for replica i by (i, e_jk)-loop search over
// every non-incident share-graph edge, using the exact dominance-pruned
// engine (see search.go) so dense topologies build untruncated.
// opts.MaxLen, when non-zero, truncates the search to loops of at most
// that many vertices (the Appendix D causality-sacrificing optimization,
// delegated to the legacy bounded DFS).
func BuildTSGraph(g *Graph, i ReplicaID, opts LoopOptions) *TSGraph {
	return buildTSGraphWith(g, i, opts, NewLoopSearcher(g).Find)
}

// buildTSGraphWith assembles a timestamp graph from incident edges plus
// every non-incident edge the given loop finder witnesses. The finder is
// a parameter so the differential tests can build through the legacy DFS
// and require byte-identical edge sets.
func buildTSGraphWith(g *Graph, i ReplicaID, opts LoopOptions, find func(ReplicaID, Edge, LoopOptions) (Loop, bool)) *TSGraph {
	t := &TSGraph{
		Owner: i,
		index: make(map[Edge]int),
		loops: make(map[Edge]Loop),
	}
	var edges []Edge
	for _, j := range g.Neighbors(i) {
		edges = append(edges, Edge{i, j}, Edge{j, i})
	}
	for _, e := range g.Edges() {
		if e.From == i || e.To == i {
			continue
		}
		if lp, ok := find(i, e, opts); ok {
			edges = append(edges, e)
			t.loops[e] = lp
		}
	}
	sortEdges(edges)
	t.edges = edges
	for idx, e := range edges {
		t.index[e] = idx
	}
	return t
}

// NewTSGraphFromEdges builds a TSGraph-shaped edge index over an explicit
// edge set. It is used for client timestamps in the client-server
// architecture (whose universe ∪_{r∈Rc} Ê_r is not itself a Definition 5
// timestamp graph) and by the Appendix D optimizations that shrink or
// extend the tracked edge set. Edges are deduplicated and sorted.
func NewTSGraphFromEdges(owner ReplicaID, edges []Edge) *TSGraph {
	t := &TSGraph{
		Owner: owner,
		index: make(map[Edge]int, len(edges)),
		loops: make(map[Edge]Loop),
	}
	uniq := make([]Edge, 0, len(edges))
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	sortEdges(uniq)
	t.edges = uniq
	for idx, e := range uniq {
		t.index[e] = idx
	}
	return t
}

// BuildAllTSGraphs computes the timestamp graph of every replica. One
// exact searcher is shared across replicas so its working memory is
// reused for every query.
func BuildAllTSGraphs(g *Graph, opts LoopOptions) []*TSGraph {
	s := NewLoopSearcher(g)
	out := make([]*TSGraph, g.NumReplicas())
	for i := range out {
		out[i] = buildTSGraphWith(g, ReplicaID(i), opts, s.Find)
	}
	return out
}

// Len returns |E_i|, the number of tracked edges (= timestamp entries
// before compression).
func (t *TSGraph) Len() int { return len(t.edges) }

// Edges returns the tracked edges in deterministic order. The returned
// slice is shared with the graph and must not be modified.
func (t *TSGraph) Edges() []Edge { return t.edges }

// Has reports whether edge e is tracked by this timestamp graph.
func (t *TSGraph) Has(e Edge) bool {
	_, ok := t.index[e]
	return ok
}

// Index returns the position of edge e in the edge order, and whether the
// edge is tracked at all. Timestamp vectors are indexed by this position.
func (t *TSGraph) Index(e Edge) (int, bool) {
	idx, ok := t.index[e]
	return idx, ok
}

// WitnessLoop returns the (i, e_jk)-loop that justified tracking a
// non-incident edge, if e is tracked and non-incident.
func (t *TSGraph) WitnessLoop(e Edge) (Loop, bool) {
	lp, ok := t.loops[e]
	return lp, ok
}

// NonIncidentEdges returns the tracked edges not incident at the owner —
// the edges justified by loops rather than adjacency.
func (t *TSGraph) NonIncidentEdges() []Edge {
	var out []Edge
	for _, e := range t.edges {
		if e.From != t.Owner && e.To != t.Owner {
			out = append(out, e)
		}
	}
	return out
}

// String renders the tracked edge set.
func (t *TSGraph) String() string {
	parts := make([]string, len(t.edges))
	for i, e := range t.edges {
		parts[i] = e.String()
	}
	return fmt.Sprintf("G_%d: [%s]", t.Owner, strings.Join(parts, " "))
}

// Intersection enumerates E_i ∩ E_k as aligned index pairs (position in
// t's order, position in other's order), in t's edge order. merge and the
// delivery predicate J operate on exactly this intersection.
func (t *TSGraph) Intersection(other *TSGraph) [][2]int {
	var out [][2]int
	for idx, e := range t.edges {
		if oidx, ok := other.index[e]; ok {
			out = append(out, [2]int{idx, oidx})
		}
	}
	return out
}
