package sharegraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// newTestRand builds a seeded PRNG for deterministic property tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestFig5LoopClassification reproduces the worked example after
// Definition 4: on the Figure 5a share graph, (1,2,3,4) is a (1,e43)-loop
// and a (1,e32)-loop, while (1,4,3,2) is neither a (1,e34)-loop nor a
// (1,e23)-loop. Zero-based, paper replica r is our r-1.
func TestFig5LoopClassification(t *testing.T) {
	g := Fig5Example()

	// (1,2,3,4) as a (1,e43)-loop: i=0, L=[1,2] (l-path ending at k=2,
	// paper's 3), R=[3] (j=3, paper's 4).
	loopE43 := Loop{I: 0, L: []ReplicaID{1, 2}, R: []ReplicaID{3}}
	if !g.IsIEJKLoop(loopE43) {
		t.Error("(1,2,3,4) should be a (1,e43)-loop")
	}
	// (1,2,3,4) as a (1,e32)-loop: i=0, L=[1] (k=1, paper's 2),
	// R=[2,3] (j=2, paper's 3).
	loopE32 := Loop{I: 0, L: []ReplicaID{1}, R: []ReplicaID{2, 3}}
	if !g.IsIEJKLoop(loopE32) {
		t.Error("(1,2,3,4) should be a (1,e32)-loop")
	}
	// (1,4,3,2) as a candidate (1,e34)-loop: i=0, L=[3] (k=3, paper's 4)
	// — wait: e34 has j=2 (paper 3), k=3 (paper 4): L ends at paper-4=3,
	// R starts at paper-3=2: L=[3]? The loop (1,4,3,2) walks 0→3→2→1→0,
	// so L=[3] is wrong for e34 (k is paper-4): e34 means j=paper3=2,
	// k=paper4=3. Loop written (i, l1=4, ... no: (1,4,3,2) as
	// (i, l..s=k, j=r1..rt, i) with k=paper4, j=paper3 gives L=[3], R=[2,1].
	if g.IsIEJKLoop(Loop{I: 0, L: []ReplicaID{3}, R: []ReplicaID{2, 1}}) {
		t.Error("(1,4,3,2) should not be a (1,e34)-loop (violates condition (iii): X21 − X4 = ∅)")
	}
	// (1,4,3,2) as a candidate (1,e23)-loop: j=paper2=1, k=paper3=2:
	// L=[3,2], R=[1].
	if g.IsIEJKLoop(Loop{I: 0, L: []ReplicaID{3, 2}, R: []ReplicaID{1}}) {
		t.Error("(1,4,3,2) should not be a (1,e23)-loop")
	}

	// FindIEJKLoop must agree with the classification above.
	if !g.HasIEJKLoop(0, Edge{3, 2}, LoopOptions{}) {
		t.Error("FindIEJKLoop missed the (1,e43)-loop")
	}
	if !g.HasIEJKLoop(0, Edge{2, 1}, LoopOptions{}) {
		t.Error("FindIEJKLoop missed the (1,e32)-loop")
	}
	if g.HasIEJKLoop(0, Edge{2, 3}, LoopOptions{}) {
		t.Error("FindIEJKLoop found a (1,e34)-loop; none should exist")
	}
	if g.HasIEJKLoop(0, Edge{1, 2}, LoopOptions{}) {
		t.Error("FindIEJKLoop found a (1,e23)-loop; none should exist")
	}
}

func TestLoopRejectsDegenerate(t *testing.T) {
	g := Fig5Example()
	if g.IsIEJKLoop(Loop{I: 0}) {
		t.Error("empty loop accepted")
	}
	// Non-simple loop (repeated vertex).
	if g.IsIEJKLoop(Loop{I: 0, L: []ReplicaID{1, 1}, R: []ReplicaID{3}}) {
		t.Error("non-simple loop accepted")
	}
	// Missing structural edge (0 and 2 share nothing).
	if g.IsIEJKLoop(Loop{I: 0, L: []ReplicaID{2}, R: []ReplicaID{3}}) {
		t.Error("loop with missing edge accepted")
	}
	// Search for loops on edges incident to i is meaningless by definition.
	if g.HasIEJKLoop(0, Edge{0, 1}, LoopOptions{}) {
		t.Error("loop found for incident edge")
	}
	if g.HasIEJKLoop(0, Edge{5, 9}, LoopOptions{}) {
		t.Error("loop found for nonexistent edge")
	}
}

func TestLoopEdgeAccessors(t *testing.T) {
	lp := Loop{I: 0, L: []ReplicaID{1, 2}, R: []ReplicaID{3}}
	if e := lp.Edge(); e != (Edge{3, 2}) {
		t.Errorf("Edge() = %v, want e(3->2)", e)
	}
	if lp.Len() != 4 {
		t.Errorf("Len() = %d, want 4", lp.Len())
	}
	verts := lp.Vertices()
	want := []ReplicaID{0, 1, 2, 3, 0}
	if len(verts) != len(want) {
		t.Fatalf("Vertices() = %v, want %v", verts, want)
	}
	for i := range want {
		if verts[i] != want[i] {
			t.Fatalf("Vertices() = %v, want %v", verts, want)
		}
	}
}

// bruteForceHasLoop enumerates every simple loop through i by DFS and
// every way of splitting it into an l-path and r-path, then checks
// Definition 4 via IsIEJKLoop. It is the reference implementation that
// FindIEJKLoop is validated against.
func bruteForceHasLoop(g *Graph, i ReplicaID, e Edge) bool {
	n := g.NumReplicas()
	found := false
	used := make([]bool, n)
	used[i] = true
	var cycle []ReplicaID // vertices after i
	var dfs func(cur ReplicaID)
	dfs = func(cur ReplicaID) {
		if found {
			return
		}
		for _, nxt := range g.Neighbors(cur) {
			if found {
				return
			}
			if nxt == i && len(cycle) >= 2 {
				// Found a simple cycle i, cycle..., i. Try all splits:
				// L = cycle[:p], R = cycle[p:] with 1 <= p <= len-1.
				for p := 1; p < len(cycle); p++ {
					k, j := cycle[p-1], cycle[p]
					if (Edge{j, k}) != e {
						continue
					}
					lp := Loop{I: i, L: append([]ReplicaID(nil), cycle[:p]...), R: append([]ReplicaID(nil), cycle[p:]...)}
					if g.IsIEJKLoop(lp) {
						found = true
						return
					}
				}
				continue
			}
			if used[nxt] {
				continue
			}
			used[nxt] = true
			cycle = append(cycle, nxt)
			dfs(nxt)
			cycle = cycle[:len(cycle)-1]
			used[nxt] = false
		}
	}
	dfs(i)
	return found
}

// TestFindLoopMatchesBruteForce cross-validates the incremental DFS
// against exhaustive enumeration on random small share graphs.
func TestFindLoopMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 6, 8)
		for i := 0; i < g.NumReplicas(); i++ {
			for _, e := range g.Edges() {
				if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
					continue
				}
				fast := g.HasIEJKLoop(ReplicaID(i), e, LoopOptions{})
				slow := bruteForceHasLoop(g, ReplicaID(i), e)
				if fast != slow {
					t.Logf("seed %d: replica %d edge %v: fast=%v brute=%v\n%s",
						seed, i, e, fast, slow, g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFoundLoopIsValidWitness: whenever FindIEJKLoop returns a loop, that
// loop must itself satisfy Definition 4 and witness the requested edge.
func TestFoundLoopIsValidWitness(t *testing.T) {
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 7, 10)
		for i := 0; i < g.NumReplicas(); i++ {
			for _, e := range g.Edges() {
				if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
					continue
				}
				lp, ok := g.FindIEJKLoop(ReplicaID(i), e, LoopOptions{})
				if !ok {
					continue
				}
				if !g.IsIEJKLoop(lp) || lp.Edge() != e || lp.I != ReplicaID(i) {
					t.Logf("seed %d: invalid witness %v for replica %d edge %v", seed, lp, i, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMaxLenMonotonicity: raising MaxLen can only discover more loops.
func TestMaxLenMonotonicity(t *testing.T) {
	g := Ring(6)
	e := Edge{3, 4} // far side of the ring from replica 0
	if g.HasIEJKLoop(0, e, LoopOptions{MaxLen: 4}) {
		t.Error("ring loop of 6 vertices found with MaxLen=4")
	}
	if !g.HasIEJKLoop(0, e, LoopOptions{MaxLen: 6}) {
		t.Error("ring loop not found with MaxLen=6")
	}
	if !g.HasIEJKLoop(0, e, LoopOptions{}) {
		t.Error("ring loop not found with unbounded MaxLen")
	}
}

func BenchmarkLoopDetectionRing8(b *testing.B) {
	g := Ring(8)
	e := Edge{4, 5}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if !g.HasIEJKLoop(0, e, LoopOptions{}) {
			b.Fatal("expected loop")
		}
	}
}

func BenchmarkLoopDetectionPairClique8(b *testing.B) {
	g := PairClique(8)
	e := Edge{4, 5}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		g.HasIEJKLoop(0, e, LoopOptions{})
	}
}
