package sharegraph

// This file implements the hoop machinery of Hélary and Milani that the
// paper discusses and corrects (Definitions 17, 18 and 20, Section 3.2 and
// Appendix A). It exists so the repository can demonstrate, executably,
// the paper's counterexamples: Definition 18 classifies loops as "minimal
// x-hoops" whose edges Theorem 8 proves unnecessary to track
// (counterexample 1, Figure 8a), while the modified Definition 20 excludes
// loops whose edges Theorem 8 proves necessary (counterexample 2,
// Figure 8b).

// Hoop is an x-hoop between two replicas in C(x) (Definition 17): a path
// whose interior vertices do not store x and whose consecutive pairs share
// registers other than x.
type Hoop struct {
	X    Register
	Path []ReplicaID // r_0 .. r_k with r_0, r_k ∈ C(x)
}

// edgeCount returns the number of edges on the hoop path.
func (h Hoop) edgeCount() int { return len(h.Path) - 1 }

// IsXHoop checks Definition 17 for the given register and path: endpoints
// store x, interior vertices do not, every consecutive pair shares some
// register other than x, and the path is simple.
func (g *Graph) IsXHoop(x Register, path []ReplicaID) bool {
	if len(path) < 2 {
		return false
	}
	seen := make(map[ReplicaID]bool, len(path))
	for _, v := range path {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	if !g.StoresRegister(path[0], x) || !g.StoresRegister(path[len(path)-1], x) {
		return false
	}
	for _, v := range path[1 : len(path)-1] {
		if g.StoresRegister(v, x) {
			return false
		}
	}
	for h := 0; h+1 < len(path); h++ {
		shared := g.Shared(path[h], path[h+1])
		if shared == nil {
			return false
		}
		if !shared.DiffNonEmpty(NewRegisterSet(x)) {
			return false
		}
	}
	return true
}

// MinimalHoopVariant selects which "minimal" condition to apply to an
// x-hoop labelling.
type MinimalHoopVariant int

const (
	// Original is Definition 18: each edge labelled with a distinct
	// register ≠ x, and no label stored by both hoop endpoints.
	Original MinimalHoopVariant = iota + 1
	// Modified is Definition 20: each edge labelled with a distinct
	// register ≠ x, and no label stored by more than two replicas of the
	// hoop.
	Modified
)

// IsMinimalXHoop checks whether the path is a minimal x-hoop under the
// chosen variant. "Each edge of the hoop can be labelled with a different
// register" is a system-of-distinct-representatives condition, decided by
// bipartite matching between hoop edges and candidate registers.
func (g *Graph) IsMinimalXHoop(x Register, path []ReplicaID, variant MinimalHoopVariant) bool {
	if !g.IsXHoop(x, path) {
		return false
	}
	n := len(path) - 1
	ra, rb := path[0], path[len(path)-1]
	hoopSet := make(map[ReplicaID]bool, len(path))
	for _, v := range path {
		hoopSet[v] = true
	}
	candidates := make([][]Register, n)
	for h := 0; h < n; h++ {
		for r := range g.Shared(path[h], path[h+1]) {
			if r == x {
				continue
			}
			switch variant {
			case Original:
				// Label must not be shared by (stored at both) endpoints.
				if g.StoresRegister(ra, r) && g.StoresRegister(rb, r) {
					continue
				}
			case Modified:
				// Label must be stored by at most two replicas of the hoop.
				holders := 0
				for _, v := range path {
					if g.StoresRegister(v, r) {
						holders++
					}
				}
				_ = hoopSet
				if holders > 2 {
					continue
				}
			}
			candidates[h] = append(candidates[h], r)
		}
	}
	return hasDistinctLabels(candidates)
}

// hasDistinctLabels decides whether every edge can pick a distinct label
// from its candidate list (Hall's condition via augmenting paths).
func hasDistinctLabels(candidates [][]Register) bool {
	assigned := make(map[Register]int) // register → edge currently using it
	var try func(edge int, visited map[Register]bool) bool
	try = func(edge int, visited map[Register]bool) bool {
		for _, r := range candidates[edge] {
			if visited[r] {
				continue
			}
			visited[r] = true
			prev, taken := assigned[r]
			if !taken || try(prev, visited) {
				assigned[r] = edge
				return true
			}
		}
		return false
	}
	for e := range candidates {
		if !try(e, make(map[Register]bool)) {
			return false
		}
	}
	return true
}

// FindMinimalXHoopThrough searches for a minimal x-hoop (under the chosen
// variant) that passes through replica via as an interior vertex, between
// some pair of replicas in C(x). It returns a witness hoop if one exists.
// This implements the membership test in Hélary–Milani's Lemma 19 ("the
// replica belongs to a minimal x-hoop") that the paper's counterexamples
// target.
func (g *Graph) FindMinimalXHoopThrough(x Register, via ReplicaID, variant MinimalHoopVariant) (Hoop, bool) {
	if g.StoresRegister(via, x) {
		return Hoop{}, false
	}
	holders := g.Holders(x)
	for _, ra := range holders {
		for _, rb := range holders {
			if ra == rb {
				continue
			}
			if path, ok := g.findHoopPath(x, ra, rb, via, variant); ok {
				return Hoop{X: x, Path: path}, true
			}
		}
	}
	return Hoop{}, false
}

// findHoopPath enumerates simple paths ra → rb whose interior avoids C(x),
// requiring the path to pass through via, and returns the first one that
// is a minimal x-hoop under the variant.
func (g *Graph) findHoopPath(x Register, ra, rb, via ReplicaID, variant MinimalHoopVariant) ([]ReplicaID, bool) {
	used := make([]bool, g.NumReplicas())
	used[ra] = true
	path := []ReplicaID{ra}
	var out []ReplicaID
	var dfs func(cur ReplicaID) bool
	dfs = func(cur ReplicaID) bool {
		for _, nxt := range g.Neighbors(cur) {
			if used[nxt] {
				continue
			}
			if nxt == rb {
				candidate := append(append([]ReplicaID(nil), path...), rb)
				containsVia := false
				for _, v := range candidate[1 : len(candidate)-1] {
					if v == via {
						containsVia = true
						break
					}
				}
				if containsVia && g.IsMinimalXHoop(x, candidate, variant) {
					out = candidate
					return true
				}
				continue
			}
			if g.StoresRegister(nxt, x) {
				continue // interior vertices must avoid C(x)
			}
			used[nxt] = true
			path = append(path, nxt)
			done := dfs(nxt)
			path = path[:len(path)-1]
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}
	if dfs(ra) {
		return out, true
	}
	return nil, false
}
