package sharegraph

import (
	"fmt"
	"math/rand"
)

// This file provides canonical share-graph constructions: the worked
// examples from the paper's figures (used by tests that reproduce them)
// and parametric topology families (used by experiments and benchmarks).

// Fig3Example is the Section 3 example accompanying Definition 3:
// X1 = {x}, X2 = {x, y}, X3 = {y, z}, X4 = {z}, whose share graph is the
// path 1–2–3–4 (Figure 3). Replicas are zero-based here: X0 = {x}, etc.
func Fig3Example() *Graph {
	g, err := New([][]Register{
		{"x"},
		{"x", "y"},
		{"y", "z"},
		{"z"},
	})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return g
}

// Fig5Example is the Section 3 example accompanying Definitions 4 and 5:
// X1 = {a, y, w}, X2 = {b, x, y}, X3 = {c, x, z}, X4 = {d, y, z, w}
// (Figure 5a). The paper shows that (1,2,3,4) is a (1, e43)-loop and a
// (1, e32)-loop, while (1,4,3,2) is neither a (1, e34)- nor a (1, e23)-loop,
// so G_1 contains e43 and e32 but not e34 or e23. Zero-based: replica 0
// plays the paper's replica 1.
func Fig5Example() *Graph {
	g, err := New([][]Register{
		{"a", "y", "w"},
		{"b", "x", "y"},
		{"c", "x", "z"},
		{"d", "y", "z", "w"},
	})
	if err != nil {
		panic(err)
	}
	return g
}

// HM1Roles names the replicas of the Hélary–Milani counterexample graphs
// so tests can refer to them by the paper's labels.
type HM1Roles struct {
	I, A1, A2, K, J, B1, B2 ReplicaID
}

// HelaryMilani1 is counterexample 1 (Figure 6 / Figure 8a): replicas
// i, a1, a2, k, j, b1, b2 where j,k share x; b1,b2,a1 share y; b2,a1,a2
// share z; all other edge labels are unique. The loop
// (j, b1, b2, i, a1, a2, k) is a minimal x-hoop by Definition 18, yet
// Theorem 8 does not require i to track e_jk or e_kj — the y and z chords
// break every candidate (i, e)-loop.
func HelaryMilani1() (*Graph, HM1Roles) {
	roles := HM1Roles{I: 0, A1: 1, A2: 2, K: 3, J: 4, B1: 5, B2: 6}
	stores := make([][]Register, 7)
	stores[roles.J] = []Register{"x", "p1"}
	stores[roles.B1] = []Register{"p1", "y"}
	stores[roles.B2] = []Register{"y", "z", "p2"}
	stores[roles.I] = []Register{"p2", "p3"}
	stores[roles.A1] = []Register{"y", "z", "p3"}
	stores[roles.A2] = []Register{"z", "p4"}
	stores[roles.K] = []Register{"x", "p4"}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g, roles
}

// HelaryMilani2 is counterexample 2 (Figure 8b): same shape but only
// register y is multiply shared (by b1, b2, a1); a1–a2 share a fresh
// register q and there is no z. The loop (j, b1, b2, i, a1, a2, k) is NOT
// a minimal x-hoop under the modified Definition 20 (label y is stored by
// three hoop replicas), yet Theorem 8 requires i to track e_kj: the
// (i, e_kj)-loop (i, b2, b1, j, k, a2, a1, i) satisfies Definition 4.
func HelaryMilani2() (*Graph, HM1Roles) {
	roles := HM1Roles{I: 0, A1: 1, A2: 2, K: 3, J: 4, B1: 5, B2: 6}
	stores := make([][]Register, 7)
	stores[roles.J] = []Register{"x", "p1"}
	stores[roles.B1] = []Register{"p1", "y"}
	stores[roles.B2] = []Register{"y", "p2"}
	stores[roles.I] = []Register{"p2", "p3"}
	stores[roles.A1] = []Register{"y", "p3", "q"}
	stores[roles.A2] = []Register{"q", "p4"}
	stores[roles.K] = []Register{"x", "p4"}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g, roles
}

// Ring builds the n-replica ring of Appendix D (Figure 13): replica i
// shares the unique register ring<i> with replica (i+1) mod n and shares
// nothing with anyone else. Every replica additionally stores a private
// register priv<i> so reads/writes outside the ring edges are possible.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("sharegraph: ring needs n >= 3, got %d", n))
	}
	stores := make([][]Register, n)
	for i := 0; i < n; i++ {
		prev := (i - 1 + n) % n
		stores[i] = []Register{
			Register(fmt.Sprintf("ring%d", prev)),
			Register(fmt.Sprintf("ring%d", i)),
			Register(fmt.Sprintf("priv%d", i)),
		}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// Line builds an n-replica path: replica i shares seg<i> with replica i+1.
// The share graph is a tree, so no replica tracks any non-incident edge.
func Line(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("sharegraph: line needs n >= 2, got %d", n))
	}
	stores := make([][]Register, n)
	for i := 0; i < n; i++ {
		var regs []Register
		if i > 0 {
			regs = append(regs, Register(fmt.Sprintf("seg%d", i-1)))
		}
		if i < n-1 {
			regs = append(regs, Register(fmt.Sprintf("seg%d", i)))
		}
		regs = append(regs, Register(fmt.Sprintf("priv%d", i)))
		stores[i] = regs
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// Star builds a hub-and-spoke share graph: replica 0 shares the unique
// register spoke<i> with each leaf i ≥ 1. A tree, so timestamp graphs hold
// only incident edges.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("sharegraph: star needs n >= 2, got %d", n))
	}
	stores := make([][]Register, n)
	stores[0] = []Register{Register("hub")}
	for i := 1; i < n; i++ {
		r := Register(fmt.Sprintf("spoke%d", i))
		stores[0] = append(stores[0], r)
		stores[i] = []Register{r, Register(fmt.Sprintf("priv%d", i))}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// Tree builds a share graph from a parent array: parent[i] < i is the
// parent of replica i (parent[0] is ignored). Each child shares a unique
// register with its parent.
func Tree(parent []int) *Graph {
	n := len(parent)
	if n < 1 {
		panic("sharegraph: tree needs at least one replica")
	}
	stores := make([][]Register, n)
	for i := 0; i < n; i++ {
		stores[i] = []Register{Register(fmt.Sprintf("priv%d", i))}
	}
	for i := 1; i < n; i++ {
		p := parent[i]
		if p < 0 || p >= i {
			panic(fmt.Sprintf("sharegraph: invalid parent %d for replica %d", p, i))
		}
		r := Register(fmt.Sprintf("tree%d", i))
		stores[i] = append(stores[i], r)
		stores[p] = append(stores[p], r)
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// FullReplication builds the full-replication special case: every replica
// stores the identical register set. The share graph is a clique and, per
// Section 4 and Section 5, compressed timestamps collapse to classic
// length-R vector clocks.
func FullReplication(n, registers int) *Graph {
	if n < 1 || registers < 1 {
		panic("sharegraph: full replication needs n >= 1 and registers >= 1")
	}
	regs := make([]Register, registers)
	for i := range regs {
		regs[i] = Register(fmt.Sprintf("r%d", i))
	}
	stores := make([][]Register, n)
	for i := range stores {
		stores[i] = regs
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// PairClique builds a clique where each unordered replica pair shares its
// own unique register — maximal partial replication density with fully
// independent edges.
func PairClique(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("sharegraph: pair clique needs n >= 2, got %d", n))
	}
	stores := make([][]Register, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := Register(fmt.Sprintf("pair%d_%d", i, j))
			stores[i] = append(stores[i], r)
			stores[j] = append(stores[j], r)
		}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// Grid builds a rows×cols mesh: each replica shares a unique register with
// its right and down neighbours.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("sharegraph: grid needs positive dimensions")
	}
	n := rows * cols
	stores := make([][]Register, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := id(r, c)
			stores[i] = append(stores[i], Register(fmt.Sprintf("priv%d", i)))
			if c+1 < cols {
				reg := Register(fmt.Sprintf("h%d_%d", r, c))
				stores[i] = append(stores[i], reg)
				stores[id(r, c+1)] = append(stores[id(r, c+1)], reg)
			}
			if r+1 < rows {
				reg := Register(fmt.Sprintf("v%d_%d", r, c))
				stores[i] = append(stores[i], reg)
				stores[id(r+1, c)] = append(stores[id(r+1, c)], reg)
			}
		}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomK places each of nRegisters registers on k distinct replicas
// chosen uniformly at random (seeded, deterministic) — the random
// k-replication workloads used by the metadata experiments. Replicas left
// with no registers receive a private register so the placement is total.
func RandomK(nReplicas, nRegisters, k int, seed int64) *Graph {
	if k < 1 || k > nReplicas {
		panic(fmt.Sprintf("sharegraph: replication factor %d out of range [1,%d]", k, nReplicas))
	}
	rng := rand.New(rand.NewSource(seed))
	stores := make([][]Register, nReplicas)
	for r := 0; r < nRegisters; r++ {
		perm := rng.Perm(nReplicas)
		reg := Register(fmt.Sprintf("r%d", r))
		for _, i := range perm[:k] {
			stores[i] = append(stores[i], reg)
		}
	}
	for i := range stores {
		if len(stores[i]) == 0 {
			stores[i] = []Register{Register(fmt.Sprintf("priv%d", i))}
		}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}
