package sharegraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Graph is the share graph of Definition 3: vertices are replicas and a
// (bidirectional pair of) directed edge(s) exists between replicas i and j
// iff X_ij = X_i ∩ X_j is non-empty. The Graph also retains the underlying
// register placement, since the loop and hoop definitions are stated in
// terms of the register sets, not just adjacency.
type Graph struct {
	r       int
	stores  []RegisterSet // stores[i] = X_i
	shared  map[Edge]RegisterSet
	adj     [][]ReplicaID
	holders map[Register][]ReplicaID
	regs    []Register // all registers, sorted

	// Canonical bitmask tables for the loop machinery (see search.go),
	// built on first use so plain share-graph construction stays cheap.
	searchOnce sync.Once
	searchIdx  *searchIndex
}

// ErrNoReplicas is returned when a graph is constructed with zero replicas.
var ErrNoReplicas = errors.New("sharegraph: system must have at least one replica")

// New builds a share graph from the register placement: stores[i] lists the
// registers replicated at replica i (the paper's X_i). Duplicate names
// within one replica's list are collapsed.
func New(stores [][]Register) (*Graph, error) {
	if len(stores) == 0 {
		return nil, ErrNoReplicas
	}
	sets := make([]RegisterSet, len(stores))
	for i, regs := range stores {
		sets[i] = NewRegisterSet(regs...)
	}
	return NewFromSets(sets)
}

// NewFromSets is New for callers that already hold RegisterSets. The sets
// are cloned, so later mutation by the caller does not affect the graph.
func NewFromSets(stores []RegisterSet) (*Graph, error) {
	if len(stores) == 0 {
		return nil, ErrNoReplicas
	}
	g := &Graph{
		r:       len(stores),
		stores:  make([]RegisterSet, len(stores)),
		shared:  make(map[Edge]RegisterSet),
		adj:     make([][]ReplicaID, len(stores)),
		holders: make(map[Register][]ReplicaID),
	}
	for i, s := range stores {
		g.stores[i] = s.Clone()
	}
	for i := 0; i < g.r; i++ {
		for r := range g.stores[i] {
			g.holders[r] = append(g.holders[r], ReplicaID(i))
		}
		for j := i + 1; j < g.r; j++ {
			x := g.stores[i].Intersect(g.stores[j])
			if len(x) == 0 {
				continue
			}
			g.shared[Edge{ReplicaID(i), ReplicaID(j)}] = x
			g.shared[Edge{ReplicaID(j), ReplicaID(i)}] = x
			g.adj[i] = append(g.adj[i], ReplicaID(j))
			g.adj[j] = append(g.adj[j], ReplicaID(i))
		}
	}
	for _, ns := range g.adj {
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
	}
	for r := range g.holders {
		g.regs = append(g.regs, r)
		sort.Slice(g.holders[r], func(a, b int) bool { return g.holders[r][a] < g.holders[r][b] })
	}
	sort.Slice(g.regs, func(a, b int) bool { return g.regs[a] < g.regs[b] })
	return g, nil
}

// NumReplicas returns R, the number of replicas.
func (g *Graph) NumReplicas() int { return g.r }

// Registers returns every register placed on at least one replica, sorted.
func (g *Graph) Registers() []Register {
	out := make([]Register, len(g.regs))
	copy(out, g.regs)
	return out
}

// Stores returns X_i, the register set of replica i. The returned set is
// shared with the graph and must not be modified.
func (g *Graph) Stores(i ReplicaID) RegisterSet { return g.stores[i] }

// StoresRegister reports whether replica i stores register x.
func (g *Graph) StoresRegister(i ReplicaID, x Register) bool {
	return g.stores[i].Has(x)
}

// Holders returns C(x): the replicas storing register x, sorted.
func (g *Graph) Holders(x Register) []ReplicaID {
	hs := g.holders[x]
	out := make([]ReplicaID, len(hs))
	copy(out, hs)
	return out
}

// Shared returns X_ij = X_i ∩ X_j. The returned set is shared with the
// graph and must not be modified; it is nil when the edge does not exist.
func (g *Graph) Shared(i, j ReplicaID) RegisterSet {
	return g.shared[Edge{i, j}]
}

// HasEdge reports whether the directed edge e exists in the share graph
// (equivalently, whether its endpoints share at least one register).
func (g *Graph) HasEdge(e Edge) bool {
	if e.From == e.To {
		return false
	}
	_, ok := g.shared[e]
	return ok
}

// Neighbors returns the replicas adjacent to i in the share graph, sorted.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) Neighbors(i ReplicaID) []ReplicaID { return g.adj[i] }

// Degree returns N_i, the number of share-graph neighbours of replica i.
func (g *Graph) Degree(i ReplicaID) int { return len(g.adj[i]) }

// Edges returns every directed edge of the share graph in deterministic
// (From, To) order. Edges come in both directions per Definition 3.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.shared))
	for e := range g.shared {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

// NumUndirectedEdges returns the number of adjacent replica pairs.
func (g *Graph) NumUndirectedEdges() int { return len(g.shared) / 2 }

// Connected reports whether the share graph is connected (isolated
// replicas storing no shared registers make it disconnected).
func (g *Graph) Connected() bool {
	if g.r == 0 {
		return false
	}
	seen := make([]bool, g.r)
	stack := []ReplicaID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.r
}

// UpdateRecipients returns the replicas other than writer that store
// register x — the destinations of an update(writer, τ, x, v) message in
// the replica prototype (step 2(iii)). The result is sorted.
func (g *Graph) UpdateRecipients(writer ReplicaID, x Register) []ReplicaID {
	hs := g.holders[x]
	out := make([]ReplicaID, 0, len(hs))
	for _, h := range hs {
		if h != writer {
			out = append(out, h)
		}
	}
	return out
}

// RecipientCache memoizes UpdateRecipients for one writer. Protocol nodes
// keep one per replica so the per-write fanout does not recompute (and
// reallocate) the destination list; the graph is immutable, so cached
// slices stay valid for the node's lifetime. Not safe for concurrent use.
type RecipientCache struct {
	g      *Graph
	writer ReplicaID
	m      map[Register][]ReplicaID
}

// NewRecipientCache builds a cache for updates written at writer.
func NewRecipientCache(g *Graph, writer ReplicaID) RecipientCache {
	return RecipientCache{g: g, writer: writer, m: make(map[Register][]ReplicaID)}
}

// Recipients returns the cached UpdateRecipients(writer, x). The returned
// slice is shared; callers must not mutate it.
func (c *RecipientCache) Recipients(x Register) []ReplicaID {
	if r, ok := c.m[x]; ok {
		return r
	}
	r := c.g.UpdateRecipients(c.writer, x)
	c.m[x] = r
	return r
}

// RankedRecipients appends the recipients of (writer, x) to buf ordered
// by ascending score — the load-aware route choice: the same recipient
// set the protocol's fanout must cover, emitted least-loaded first.
// Score ties break by replica ID, i.e. the default Recipients order, so
// an uninformed scorer degrades to the deterministic baseline. The
// cached slice is never mutated; callers own the returned buf.
//
// Correctness note: the edge-indexed protocol never depends on fanout
// emission order — the runtime's seeded delivery shuffle reorders
// arbitrarily anyway — so a runtime may re-rank freely without touching
// causal consistency (pinned by the LoadAware differential test).
func (c *RecipientCache) RankedRecipients(x Register, buf []ReplicaID, score func(ReplicaID) int64) []ReplicaID {
	rs := c.Recipients(x)
	start := len(buf)
	buf = append(buf, rs...)
	// Insertion sort: fanouts are small (≤ R-1) and the hot path must not
	// allocate a sort.Slice closure.
	for i := start + 1; i < len(buf); i++ {
		for j := i; j > start; j-- {
			a, b := buf[j-1], buf[j]
			if score(a) < score(b) || (score(a) == score(b) && a < b) {
				break
			}
			buf[j-1], buf[j] = b, a
		}
	}
	return buf
}

// String renders the placement and adjacency for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "share graph: %d replicas, %d undirected edges\n", g.r, g.NumUndirectedEdges())
	for i := 0; i < g.r; i++ {
		fmt.Fprintf(&b, "  X%d = %s\n", i, g.stores[i])
	}
	for i := 0; i < g.r; i++ {
		for _, j := range g.adj[i] {
			if j > ReplicaID(i) {
				fmt.Fprintf(&b, "  X%d%d = %s\n", i, j, g.shared[Edge{ReplicaID(i), j}])
			}
		}
	}
	return b.String()
}

// Validate performs internal consistency checks and is primarily useful in
// tests: share edges must be symmetric with identical labels, and every
// register must have at least one holder.
func (g *Graph) Validate() error {
	for e, x := range g.shared {
		y, ok := g.shared[e.Reverse()]
		if !ok {
			return fmt.Errorf("sharegraph: edge %v present but reverse missing", e)
		}
		if !x.Equal(y) {
			return fmt.Errorf("sharegraph: edge %v label differs from reverse", e)
		}
		if len(x) == 0 {
			return fmt.Errorf("sharegraph: edge %v has empty label", e)
		}
	}
	for r, hs := range g.holders {
		if len(hs) == 0 {
			return fmt.Errorf("sharegraph: register %q has no holders", r)
		}
	}
	return nil
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		return es[a].To < es[b].To
	})
}
