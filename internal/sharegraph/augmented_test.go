package sharegraph

import "testing"

// bridgeGraph builds a share graph where replicas 1 and 2 share nothing,
// plus a client that accesses both — the canonical case where the
// augmented share graph (Definition 16) gains an edge absent from E.
// Topology: 0–1 share a, 2–3 share b, 0–3 share c (so a real loop can
// close through the client edge 1–2).
func bridgeGraph(t *testing.T) (*Graph, *AugmentedGraph) {
	t.Helper()
	g, err := New([][]Register{
		{"a", "c"},
		{"a", "p1"},
		{"b", "p2"},
		{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAugmented(g, ClientAssignment{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func TestAugmentedEdges(t *testing.T) {
	g, a := bridgeGraph(t)
	if g.HasEdge(Edge{1, 2}) {
		t.Fatal("1 and 2 should share no registers")
	}
	if !a.HasEdge(Edge{1, 2}) || !a.HasEdge(Edge{2, 1}) {
		t.Error("client edge 1–2 missing from Ê")
	}
	if !a.ClientPair(Edge{1, 2}) {
		t.Error("ClientPair(1,2) = false")
	}
	if a.ClientPair(Edge{0, 1}) {
		t.Error("ClientPair(0,1) = true; no client spans 0 and 1")
	}
	// Ĝ adjacency includes both real and client neighbours.
	n1 := a.Neighbors(1)
	if len(n1) != 2 || n1[0] != 0 || n1[1] != 2 {
		t.Errorf("Ĝ-neighbours of 1 = %v, want [0 2]", n1)
	}
}

func TestNewAugmentedValidation(t *testing.T) {
	g := Fig3Example()
	if _, err := NewAugmented(g, ClientAssignment{{}}); err == nil {
		t.Error("empty client replica set accepted")
	}
	if _, err := NewAugmented(g, ClientAssignment{{0, 9}}); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if _, err := NewAugmented(g, ClientAssignment{{0, 0}}); err == nil {
		t.Error("duplicate replica accepted")
	}
}

// TestAugmentedLoopThroughClientEdge: a dependency chain can cross the
// client bridge, so replica 0 must track e_23 (zero-based e(2→3)) even
// though the only loop through 0 uses the client edge 1–2 — exactly the
// Appendix E extension of Definition 4.
func TestAugmentedLoopThroughClientEdge(t *testing.T) {
	g, a := bridgeGraph(t)

	// Without clients, 0 tracks no non-incident edge (the share graph is
	// a tree: 1–0–3–2).
	plain := BuildTSGraph(g, 0, LoopOptions{})
	if len(plain.NonIncidentEdges()) != 0 {
		t.Fatalf("plain share graph should be a tree; got extra edges %v", plain.NonIncidentEdges())
	}

	// With the client bridge, the cycle 0–1~2–3–0 exists in Ĝ (~ is the
	// client edge). For edge e(2→3): j=2, k=3; loop (0, L=[3]... no:
	// L must end at k=3: L=[3] means hop 0→3 then R=[2,1]: 2→1 client
	// edge, 1→0 real. Conditions: (i) X23={b}−∅ ≠ ∅; (ii) X_{2,1}=∅ but
	// client pair(2,1) holds; (iii) q=2: X_{1,0}={a} − X3 ≠ ∅.
	lp := Loop{I: 0, L: []ReplicaID{3}, R: []ReplicaID{2, 1}}
	if !a.IsAugmentedIEJKLoop(lp) {
		t.Error("(0,3,2,1,0) should be an augmented (0, e(2→3))-loop")
	}
	if g.IsIEJKLoop(lp) {
		t.Error("plain Definition 4 should reject the loop (edge 2–1 is client-only)")
	}

	ats := a.BuildAugmentedTSGraph(0, LoopOptions{})
	if !ats.Has(Edge{2, 3}) {
		t.Error("Ê_0 missing e(2→3)")
	}
	// Ê_i ∩ E: the client edge itself must never be tracked.
	for _, e := range ats.Edges() {
		if !g.HasEdge(e) {
			t.Errorf("Ê_0 contains non-share edge %v", e)
		}
	}
}

func TestAugmentedTSGraphSupersetOfPlain(t *testing.T) {
	// Adding clients can only add tracked edges, never remove them.
	g := Fig5Example()
	a, err := NewAugmented(g, ClientAssignment{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumReplicas(); i++ {
		plain := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
		aug := a.BuildAugmentedTSGraph(ReplicaID(i), LoopOptions{})
		for _, e := range plain.Edges() {
			if !aug.Has(e) {
				t.Errorf("replica %d: plain edge %v missing from augmented graph", i, e)
			}
		}
	}
}

func TestClientTSEdges(t *testing.T) {
	_, a := bridgeGraph(t)
	graphs := a.BuildAllAugmentedTSGraphs(LoopOptions{})
	edges := a.ClientTSEdges(0, graphs)
	// The client accesses replicas 1 and 2; its timestamp universe is
	// Ê_1 ∪ Ê_2 and must contain each replica's incident edges.
	want := []Edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}}
	set := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		set[e] = true
	}
	for _, e := range want {
		if !set[e] {
			t.Errorf("client timestamp universe missing %v (got %v)", e, edges)
		}
	}
	if a.NumClients() != 1 {
		t.Errorf("NumClients = %d, want 1", a.NumClients())
	}
	rs := a.ClientReplicas(0)
	if len(rs) != 2 || rs[0] != 1 || rs[1] != 2 {
		t.Errorf("ClientReplicas(0) = %v, want [1 2]", rs)
	}
	cs := a.ClientsFor(1)
	if len(cs) != 1 || cs[0] != 0 {
		t.Errorf("ClientsFor(1) = %v, want [0]", cs)
	}
}

// bruteForceHasAugmentedLoop enumerates every simple cycle through i in Ĝ
// and every L/R split, checking Definition 27 via IsAugmentedIEJKLoop —
// the reference the incremental search is validated against.
func bruteForceHasAugmentedLoop(a *AugmentedGraph, i ReplicaID, e Edge) bool {
	n := a.G.NumReplicas()
	found := false
	used := make([]bool, n)
	used[i] = true
	var cycle []ReplicaID
	var dfs func(cur ReplicaID)
	dfs = func(cur ReplicaID) {
		if found {
			return
		}
		for _, nxt := range a.Neighbors(cur) {
			if found {
				return
			}
			if nxt == i && len(cycle) >= 2 {
				for p := 1; p < len(cycle); p++ {
					k, j := cycle[p-1], cycle[p]
					if (Edge{j, k}) != e {
						continue
					}
					lp := Loop{I: i, L: append([]ReplicaID(nil), cycle[:p]...), R: append([]ReplicaID(nil), cycle[p:]...)}
					if a.IsAugmentedIEJKLoop(lp) {
						found = true
						return
					}
				}
				continue
			}
			if used[nxt] {
				continue
			}
			used[nxt] = true
			cycle = append(cycle, nxt)
			dfs(nxt)
			cycle = cycle[:len(cycle)-1]
			used[nxt] = false
		}
	}
	dfs(i)
	return found
}

// TestAugmentedLoopMatchesBruteForce cross-validates the augmented loop
// search against exhaustive enumeration on random graphs with random
// client assignments.
func TestAugmentedLoopMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := placementFromSeed(seed, 5, 7)
		rng := newTestRand(seed ^ 0x1234)
		// One or two random clients spanning 2 replicas each.
		var assignment ClientAssignment
		for c := 0; c < 1+rng.Intn(2); c++ {
			p := rng.Intn(g.NumReplicas())
			q := rng.Intn(g.NumReplicas())
			if p == q {
				q = (q + 1) % g.NumReplicas()
			}
			assignment = append(assignment, []ReplicaID{ReplicaID(p), ReplicaID(q)})
		}
		a, err := NewAugmented(g, assignment)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumReplicas(); i++ {
			for _, e := range g.Edges() {
				if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
					continue
				}
				fast := false
				if _, ok := a.FindAugmentedIEJKLoop(ReplicaID(i), e, LoopOptions{}); ok {
					fast = true
				}
				slow := bruteForceHasAugmentedLoop(a, ReplicaID(i), e)
				if fast != slow {
					t.Fatalf("seed %d replica %d edge %v: fast=%v brute=%v\n%s clients=%v",
						seed, i, e, fast, slow, g, assignment)
				}
			}
		}
	}
}

// TestTimestampEntriesBelowMatrix: the paper's algorithm never needs more
// counters than an R×R matrix clock, on any placement.
func TestTimestampEntriesBelowMatrix(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := placementFromSeed(seed, 7, 10)
		r := g.NumReplicas()
		for i := 0; i < r; i++ {
			ts := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
			if ts.Len() > r*(r-1) {
				t.Fatalf("seed %d replica %d: %d entries exceeds R(R-1)=%d",
					seed, i, ts.Len(), r*(r-1))
			}
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	graphs := map[string]*Graph{
		"fig3":    Fig3Example(),
		"fig5":    Fig5Example(),
		"ring5":   Ring(5),
		"line4":   Line(4),
		"star5":   Star(5),
		"tree":    Tree([]int{0, 0, 1, 1, 2}),
		"fullrep": FullReplication(4, 2),
		"pairclq": PairClique(5),
		"grid":    Grid(3, 3),
		"randomk": RandomK(8, 20, 3, 42),
	}
	for name, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !g.Connected() && name != "randomk" {
			t.Errorf("%s: expected connected share graph", name)
		}
	}
	hm1, _ := HelaryMilani1()
	hm2, _ := HelaryMilani2()
	if err := hm1.Validate(); err != nil {
		t.Errorf("hm1: %v", err)
	}
	if err := hm2.Validate(); err != nil {
		t.Errorf("hm2: %v", err)
	}
}

func TestRandomKDeterministic(t *testing.T) {
	g1 := RandomK(8, 15, 3, 7)
	g2 := RandomK(8, 15, 3, 7)
	for i := 0; i < 8; i++ {
		if !g1.Stores(ReplicaID(i)).Equal(g2.Stores(ReplicaID(i))) {
			t.Fatalf("RandomK not deterministic for seed 7 at replica %d", i)
		}
	}
}
