package sharegraph

import "fmt"

// Loop is a simple loop witnessing that e_{jk} must be tracked by replica i
// (an (i, e_jk)-loop, Definition 4). Written out, the loop is
//
//	(i, L[0], …, L[s-1]=k, R[0]=j, …, R[t-1], i)
//
// so L is the "l-path" from i to k (l_1 … l_s with l_s = k) and R is the
// "r-path" from j back towards i (r_1 … r_t with r_1 = j); the loop closes
// with the edge from R[t-1] to i (the paper defines r_{t+1} = i).
type Loop struct {
	I ReplicaID
	L []ReplicaID // l_1 .. l_s, with l_s = k
	R []ReplicaID // r_1 .. r_t, with r_1 = j
}

// Vertices returns the full vertex sequence of the loop starting and
// ending at I.
func (lp Loop) Vertices() []ReplicaID {
	out := make([]ReplicaID, 0, len(lp.L)+len(lp.R)+2)
	out = append(out, lp.I)
	out = append(out, lp.L...)
	out = append(out, lp.R...)
	out = append(out, lp.I)
	return out
}

// Len returns the number of distinct vertices on the loop.
func (lp Loop) Len() int { return 1 + len(lp.L) + len(lp.R) }

// Edge returns the tracked edge e_jk this loop witnesses.
func (lp Loop) Edge() Edge {
	return Edge{From: lp.R[0], To: lp.L[len(lp.L)-1]}
}

// String renders the loop as loop[i l1 ... k j ... rt i].
func (lp Loop) String() string {
	return fmt.Sprintf("loop%v", lp.Vertices())
}

// LoopOptions controls the (i, e_jk)-loop search.
type LoopOptions struct {
	// MaxLen bounds the number of distinct vertices allowed on a loop;
	// 0 means unbounded. Bounding the loop length implements the
	// "sacrificing causality" truncation of Appendix D, and also keeps
	// the exhaustive search tractable on dense graphs.
	MaxLen int
}

// IsIEJKLoop checks whether the given simple loop is an (i, e_jk)-loop per
// Definition 4: it verifies simplicity, presence of all structural edges,
// s ≥ 1, t ≥ 1, and the three register-set side conditions. The edge e_jk
// being witnessed is implied by the loop itself (j = R[0], k = L[s-1]).
func (g *Graph) IsIEJKLoop(lp Loop) bool {
	s, t := len(lp.L), len(lp.R)
	if s < 1 || t < 1 {
		return false
	}
	// Simplicity: all vertices distinct.
	seen := map[ReplicaID]bool{lp.I: true}
	for _, v := range append(append([]ReplicaID(nil), lp.L...), lp.R...) {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	// Structural edges along the cycle.
	verts := lp.Vertices()
	for h := 0; h+1 < len(verts); h++ {
		if !g.HasEdge(Edge{verts[h], verts[h+1]}) {
			return false
		}
	}
	j, k := lp.R[0], lp.L[s-1]
	// interior = ∪_{1≤p≤s-1} X_{l_p}; full = interior ∪ X_{l_s} = interior ∪ X_k.
	interior := make(RegisterSet)
	for _, v := range lp.L[:s-1] {
		interior.UnionInPlace(g.stores[v])
	}
	full := interior.Union(g.stores[k])
	// (i) X_jk − interior ≠ ∅.
	if !g.shared[Edge{j, k}].DiffNonEmpty(interior) {
		return false
	}
	// (ii) X_{j r_2} − interior ≠ ∅, where r_2 = R[1] if t ≥ 2 else i.
	r2 := lp.I
	if t >= 2 {
		r2 = lp.R[1]
	}
	if !g.shared[Edge{j, r2}].DiffNonEmpty(interior) {
		return false
	}
	// (iii) for 2 ≤ q ≤ t: X_{r_q r_{q+1}} − full ≠ ∅, with r_{t+1} = i.
	for q := 2; q <= t; q++ {
		cur := lp.R[q-1]
		next := lp.I
		if q < t {
			next = lp.R[q]
		}
		if !g.shared[Edge{cur, next}].DiffNonEmpty(full) {
			return false
		}
	}
	return true
}

// FindIEJKLoop searches for an (i, e_jk)-loop (Definition 4) and returns a
// witness if one exists. The search is an exhaustive DFS over simple loops
// through i with the register-set conditions evaluated incrementally, so
// it decides existence exactly (subject to opts.MaxLen). Worst-case cost
// is exponential in the number of replicas, as expected for the exact
// definition; the package benchmarks quantify it.
func (g *Graph) FindIEJKLoop(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	j, k := e.From, e.To
	if i == j || i == k || j == k || !g.HasEdge(e) {
		return Loop{}, false
	}
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > g.r {
		maxLen = g.r
	}
	used := make([]bool, g.r)
	used[i] = true
	used[j] = true // j sits on the loop; the l-path must avoid it
	var (
		lpath []ReplicaID
		found Loop
		ok    bool
	)

	record := func(rpath []ReplicaID) {
		found = Loop{
			I: i,
			L: append([]ReplicaID(nil), lpath...),
			R: append([]ReplicaID(nil), rpath...),
		}
		ok = true
	}

	// Phase 2: extend the r-path beyond r_2. Every hop here (including the
	// closing hop to i) is an "r_q → r_{q+1}, q ≥ 2" hop, so it must
	// satisfy condition (iii) against full.
	var extendR func(rpath []ReplicaID, full RegisterSet) bool
	extendR = func(rpath []ReplicaID, full RegisterSet) bool {
		cur := rpath[len(rpath)-1]
		if g.HasEdge(Edge{cur, i}) && g.shared[Edge{cur, i}].DiffNonEmpty(full) {
			record(rpath)
			return true
		}
		if 1+len(lpath)+len(rpath) >= maxLen {
			return false
		}
		for _, nxt := range g.adj[cur] {
			if used[nxt] || nxt == i {
				continue
			}
			if !g.shared[Edge{cur, nxt}].DiffNonEmpty(full) {
				continue
			}
			used[nxt] = true
			done := extendR(append(rpath, nxt), full)
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	// tryRPath starts the r-path once the l-path is complete (lpath ends
	// in k and condition (i) holds). interior excludes X_k; full includes it.
	tryRPath := func(interior, full RegisterSet) bool {
		// t = 1: the loop closes j → i directly; condition (ii) applies to
		// X_{j i} against interior, and condition (iii) is vacuous.
		if g.HasEdge(Edge{j, i}) && g.shared[Edge{j, i}].DiffNonEmpty(interior) {
			record([]ReplicaID{j})
			return true
		}
		if 1+len(lpath)+1 >= maxLen {
			return false
		}
		// t ≥ 2: first hop j → r_2 must satisfy condition (ii) (interior).
		for _, r2 := range g.adj[j] {
			if used[r2] || r2 == i {
				continue
			}
			if !g.shared[Edge{j, r2}].DiffNonEmpty(interior) {
				continue
			}
			used[r2] = true
			done := extendR([]ReplicaID{j, r2}, full)
			used[r2] = false
			if done {
				return true
			}
		}
		return false
	}

	// Phase 1: grow the l-path from i towards k, avoiding j.
	var extendL func(cur ReplicaID, interior RegisterSet) bool
	extendL = func(cur ReplicaID, interior RegisterSet) bool {
		if 1+len(lpath)+1 >= maxLen { // must still fit k and at least j
			return false
		}
		for _, nxt := range g.adj[cur] {
			if used[nxt] {
				continue
			}
			if nxt == k {
				if !g.shared[Edge{j, k}].DiffNonEmpty(interior) {
					continue // condition (i) fails for this interior set
				}
				lpath = append(lpath, k)
				used[k] = true
				done := tryRPath(interior, interior.Union(g.stores[k]))
				used[k] = false
				lpath = lpath[:len(lpath)-1]
				if done {
					return true
				}
				continue
			}
			used[nxt] = true
			lpath = append(lpath, nxt)
			done := extendL(nxt, interior.Union(g.stores[nxt]))
			lpath = lpath[:len(lpath)-1]
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	extendL(i, make(RegisterSet))
	return found, ok
}

// HasIEJKLoop reports whether any (i, e_jk)-loop exists.
func (g *Graph) HasIEJKLoop(i ReplicaID, e Edge, opts LoopOptions) bool {
	_, ok := g.FindIEJKLoop(i, e, opts)
	return ok
}
