package sharegraph

import "fmt"

// Loop is a simple loop witnessing that e_{jk} must be tracked by replica i
// (an (i, e_jk)-loop, Definition 4). Written out, the loop is
//
//	(i, L[0], …, L[s-1]=k, R[0]=j, …, R[t-1], i)
//
// so L is the "l-path" from i to k (l_1 … l_s with l_s = k) and R is the
// "r-path" from j back towards i (r_1 … r_t with r_1 = j); the loop closes
// with the edge from R[t-1] to i (the paper defines r_{t+1} = i).
type Loop struct {
	I ReplicaID
	L []ReplicaID // l_1 .. l_s, with l_s = k
	R []ReplicaID // r_1 .. r_t, with r_1 = j
}

// Vertices returns the full vertex sequence of the loop starting and
// ending at I.
func (lp Loop) Vertices() []ReplicaID {
	out := make([]ReplicaID, 0, len(lp.L)+len(lp.R)+2)
	out = append(out, lp.I)
	out = append(out, lp.L...)
	out = append(out, lp.R...)
	out = append(out, lp.I)
	return out
}

// Len returns the number of distinct vertices on the loop.
func (lp Loop) Len() int { return 1 + len(lp.L) + len(lp.R) }

// Edge returns the tracked edge e_jk this loop witnesses.
func (lp Loop) Edge() Edge {
	return Edge{From: lp.R[0], To: lp.L[len(lp.L)-1]}
}

// String renders the loop as loop[i l1 ... k j ... rt i].
func (lp Loop) String() string {
	return fmt.Sprintf("loop%v", lp.Vertices())
}

// LoopOptions controls the (i, e_jk)-loop search.
type LoopOptions struct {
	// MaxLen bounds the number of distinct vertices allowed on a loop;
	// 0 means unbounded. Bounding the loop length implements the
	// "sacrificing causality" truncation of Appendix D, and also keeps
	// the exhaustive search tractable on dense graphs.
	MaxLen int
}

// IsIEJKLoop checks whether the given simple loop is an (i, e_jk)-loop per
// Definition 4: it verifies simplicity, presence of all structural edges,
// s ≥ 1, t ≥ 1, and the three register-set side conditions. The edge e_jk
// being witnessed is implied by the loop itself (j = R[0], k = L[s-1]).
// The check runs on the graph's canonical bitmask tables with pooled
// scratch, so it is cheap enough to validate every witness inside the
// engine's differential and fuzz loops.
func (g *Graph) IsIEJKLoop(lp Loop) bool {
	return checkIEJKLoop(g, nil, lp)
}

// checkIEJKLoop validates Definition 4 (aug == nil) or Definition 27
// (aug != nil, which relaxes structural edges to Ĝ and lets client pairs
// stand in for conditions (ii)/(iii)).
func checkIEJKLoop(g *Graph, aug *AugmentedGraph, lp Loop) bool {
	s, t := len(lp.L), len(lp.R)
	if s < 1 || t < 1 {
		return false
	}
	// Structural edges along the cycle first: each hop must be a share
	// (or, augmented, Ĝ) edge, which also proves every vertex names a
	// real replica before any slice indexing below.
	prev := lp.I
	for _, v := range lp.L {
		if !structEdge(g, aug, prev, v) {
			return false
		}
		prev = v
	}
	for _, v := range lp.R {
		if !structEdge(g, aug, prev, v) {
			return false
		}
		prev = v
	}
	if !structEdge(g, aug, prev, lp.I) {
		return false
	}
	idx := g.searchIndex()
	sc := idx.scratch()
	defer idx.release(sc)
	// Simplicity: all vertices distinct.
	maskZero(sc.seen)
	bitSet(sc.seen, int(lp.I))
	for _, v := range lp.L {
		if bitGet(sc.seen, int(v)) {
			return false
		}
		bitSet(sc.seen, int(v))
	}
	for _, v := range lp.R {
		if bitGet(sc.seen, int(v)) {
			return false
		}
		bitSet(sc.seen, int(v))
	}
	j, k := lp.R[0], lp.L[s-1]
	// interior = ∪_{1≤p≤s-1} X_{l_p}; full = interior ∪ X_{l_s}. Private
	// registers never occur in edge labels, so the shared-register masks
	// decide the conditions exactly.
	maskZero(sc.interior)
	for _, v := range lp.L[:s-1] {
		maskOr(sc.interior, idx.xb[v])
	}
	// (i) X_jk − interior ≠ ∅: a real share edge in both variants.
	if !maskDiffNonEmpty(idx.eb[Edge{j, k}], sc.interior) {
		return false
	}
	// (ii) hop j → r_2 against interior, where r_2 = R[1] if t ≥ 2 else i.
	r2 := lp.I
	if t >= 2 {
		r2 = lp.R[1]
	}
	if !condHop(idx, aug, j, r2, sc.interior) {
		return false
	}
	// (iii) for 2 ≤ q ≤ t: hop r_q → r_{q+1} against full, with r_{t+1} = i.
	maskCopy(sc.full, sc.interior)
	maskOr(sc.full, idx.xb[k])
	for q := 2; q <= t; q++ {
		cur := lp.R[q-1]
		next := lp.I
		if q < t {
			next = lp.R[q]
		}
		if !condHop(idx, aug, cur, next, sc.full) {
			return false
		}
	}
	return true
}

// structEdge is the structural-edge test of the applicable definition:
// share edges only, or Ĝ edges when augmented.
func structEdge(g *Graph, aug *AugmentedGraph, from, to ReplicaID) bool {
	if aug != nil {
		return aug.HasEdge(Edge{from, to})
	}
	return g.HasEdge(Edge{from, to})
}

// condHop evaluates one side-condition hop: "X_uv − excluded ≠ ∅", with
// a client pair standing in when augmented.
func condHop(idx *searchIndex, aug *AugmentedGraph, u, v ReplicaID, excluded []uint64) bool {
	if aug != nil && aug.clientPair[Edge{u, v}] {
		return true
	}
	return maskDiffNonEmpty(idx.eb[Edge{u, v}], excluded)
}

// FindIEJKLoop searches for an (i, e_jk)-loop (Definition 4) and returns a
// witness if one exists. The search is an exhaustive DFS over simple loops
// through i with the register-set conditions evaluated incrementally, so
// it decides existence exactly (subject to opts.MaxLen). Worst-case cost
// is exponential in the number of replicas, as expected for the exact
// definition; the package benchmarks quantify it.
func (g *Graph) FindIEJKLoop(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	j, k := e.From, e.To
	if i == j || i == k || j == k || !g.HasEdge(e) {
		return Loop{}, false
	}
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > g.r {
		maxLen = g.r
	}
	used := make([]bool, g.r)
	used[i] = true
	used[j] = true // j sits on the loop; the l-path must avoid it
	var (
		lpath []ReplicaID
		found Loop
		ok    bool
	)

	record := func(rpath []ReplicaID) {
		found = Loop{
			I: i,
			L: append([]ReplicaID(nil), lpath...),
			R: append([]ReplicaID(nil), rpath...),
		}
		ok = true
	}

	// Phase 2: extend the r-path beyond r_2. Every hop here (including the
	// closing hop to i) is an "r_q → r_{q+1}, q ≥ 2" hop, so it must
	// satisfy condition (iii) against full.
	var extendR func(rpath []ReplicaID, full RegisterSet) bool
	extendR = func(rpath []ReplicaID, full RegisterSet) bool {
		cur := rpath[len(rpath)-1]
		if g.HasEdge(Edge{cur, i}) && g.shared[Edge{cur, i}].DiffNonEmpty(full) {
			record(rpath)
			return true
		}
		if 1+len(lpath)+len(rpath) >= maxLen {
			return false
		}
		for _, nxt := range g.adj[cur] {
			if used[nxt] || nxt == i {
				continue
			}
			if !g.shared[Edge{cur, nxt}].DiffNonEmpty(full) {
				continue
			}
			used[nxt] = true
			done := extendR(append(rpath, nxt), full)
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	// tryRPath starts the r-path once the l-path is complete (lpath ends
	// in k and condition (i) holds). interior excludes X_k; full includes it.
	tryRPath := func(interior, full RegisterSet) bool {
		// t = 1: the loop closes j → i directly; condition (ii) applies to
		// X_{j i} against interior, and condition (iii) is vacuous.
		if g.HasEdge(Edge{j, i}) && g.shared[Edge{j, i}].DiffNonEmpty(interior) {
			record([]ReplicaID{j})
			return true
		}
		if 1+len(lpath)+1 >= maxLen {
			return false
		}
		// t ≥ 2: first hop j → r_2 must satisfy condition (ii) (interior).
		for _, r2 := range g.adj[j] {
			if used[r2] || r2 == i {
				continue
			}
			if !g.shared[Edge{j, r2}].DiffNonEmpty(interior) {
				continue
			}
			used[r2] = true
			done := extendR([]ReplicaID{j, r2}, full)
			used[r2] = false
			if done {
				return true
			}
		}
		return false
	}

	// Phase 1: grow the l-path from i towards k, avoiding j.
	var extendL func(cur ReplicaID, interior RegisterSet) bool
	extendL = func(cur ReplicaID, interior RegisterSet) bool {
		if 1+len(lpath)+1 >= maxLen { // must still fit k and at least j
			return false
		}
		for _, nxt := range g.adj[cur] {
			if used[nxt] {
				continue
			}
			if nxt == k {
				if !g.shared[Edge{j, k}].DiffNonEmpty(interior) {
					continue // condition (i) fails for this interior set
				}
				lpath = append(lpath, k)
				used[k] = true
				done := tryRPath(interior, interior.Union(g.stores[k]))
				used[k] = false
				lpath = lpath[:len(lpath)-1]
				if done {
					return true
				}
				continue
			}
			used[nxt] = true
			lpath = append(lpath, nxt)
			done := extendL(nxt, interior.Union(g.stores[nxt]))
			lpath = lpath[:len(lpath)-1]
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	extendL(i, make(RegisterSet))
	return found, ok
}

// HasIEJKLoop reports whether any (i, e_jk)-loop exists.
func (g *Graph) HasIEJKLoop(i ReplicaID, e Edge, opts LoopOptions) bool {
	_, ok := g.FindIEJKLoop(i, e, opts)
	return ok
}
