package sharegraph

import (
	"reflect"
	"testing"
	"time"
)

func TestMaskPrimitives(t *testing.T) {
	a := []uint64{0b1010, 0}
	b := []uint64{0b1110, 1}
	if !maskSubset(a, b) {
		t.Error("a ⊆ b expected")
	}
	if maskSubset(b, a) {
		t.Error("b ⊄ a expected")
	}
	if maskDiffNonEmpty(a, b) {
		t.Error("a − b should be empty")
	}
	if !maskDiffNonEmpty(b, a) {
		t.Error("b − a should be non-empty")
	}
	if !maskDiffNonEmpty(a, nil) {
		t.Error("a − ∅ should be non-empty")
	}
	if maskDiffNonEmpty(nil, a) {
		t.Error("∅ − a should be empty (nil label)")
	}
	if maskDiffNonEmpty([]uint64{0, 0}, nil) {
		t.Error("zero mask − ∅ should be empty")
	}
	m := make([]uint64, 2)
	bitSet(m, 0)
	bitSet(m, 64)
	bitSet(m, 127)
	for _, i := range []int{0, 64, 127} {
		if !bitGet(m, i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if bitGet(m, 63) || bitGet(m, 1) {
		t.Error("unexpected bits set")
	}
	maskZero(m)
	if bitGet(m, 0) || bitGet(m, 64) {
		t.Error("maskZero left bits behind")
	}
}

// TestSearchIndexSharedRegistersOnly: the canonical bitmask universe holds
// exactly the registers appearing in shared edge sets; private registers
// get no bit (they cannot affect any side condition).
func TestSearchIndexSharedRegistersOnly(t *testing.T) {
	g := Ring(5) // ring<i> shared, priv<i> private
	idx := g.searchIndex()
	if got, want := len(idx.regBit), 5; got != want {
		t.Fatalf("regBit has %d registers, want %d (ring registers only)", got, want)
	}
	for r := range idx.regBit {
		if len(g.holders[r]) < 2 {
			t.Errorf("register %q has %d holders but got a bit", r, len(g.holders[r]))
		}
	}
	if idx.words != 1 {
		t.Errorf("5 shared registers should fit one word, got %d", idx.words)
	}
}

// TestLoopAccessorsDegenerateShapes pins Vertices/Edge/Len/String on the
// smallest legal loop shapes: s = 1 (L is just k) and t = 1 (R is just j).
func TestLoopAccessorsDegenerateShapes(t *testing.T) {
	// s = 1, t = 1: the 3-vertex loop i → k → j → i.
	min := Loop{I: 2, L: []ReplicaID{7}, R: []ReplicaID{4}}
	if got, want := min.Len(), 3; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}
	if got := min.Edge(); got != (Edge{From: 4, To: 7}) {
		t.Errorf("Edge() = %v, want e(4->7)", got)
	}
	if got, want := min.Vertices(), []ReplicaID{2, 7, 4, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Vertices() = %v, want %v", got, want)
	}
	if got, want := min.String(), "loop[2 7 4 2]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// t = 1 with a longer l-path: the r-path is only j.
	t1 := Loop{I: 0, L: []ReplicaID{1, 2, 3}, R: []ReplicaID{5}}
	if got := t1.Edge(); got != (Edge{From: 5, To: 3}) {
		t.Errorf("t=1 Edge() = %v, want e(5->3)", got)
	}
	if got, want := t1.Vertices(), []ReplicaID{0, 1, 2, 3, 5, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("t=1 Vertices() = %v, want %v", got, want)
	}
	// s = 1 with a longer r-path: the l-path is only k.
	s1 := Loop{I: 0, L: []ReplicaID{9}, R: []ReplicaID{4, 5, 6}}
	if got := s1.Edge(); got != (Edge{From: 4, To: 9}) {
		t.Errorf("s=1 Edge() = %v, want e(4->9)", got)
	}
	if got, want := s1.Len(), 5; got != want {
		t.Errorf("s=1 Len() = %d, want %d", got, want)
	}
	if got, want := s1.String(), "loop[0 9 4 5 6 0]"; got != want {
		t.Errorf("s=1 String() = %q, want %q", got, want)
	}
}

// TestEngineFindsDegenerateShapes: the engine must produce valid witnesses
// for the smallest shapes too — s = 1 arrivals straight from i, and t = 1
// closes via the direct j → i hop.
func TestEngineFindsDegenerateShapes(t *testing.T) {
	// Triangle where each pair shares its own register: every non-incident
	// directed edge of every replica is witnessed by the 3-vertex loop
	// with s = t = 1.
	g := PairClique(3)
	s := NewLoopSearcher(g)
	lp, ok := s.Find(0, Edge{From: 1, To: 2}, LoopOptions{})
	if !ok {
		t.Fatal("no (0, e12)-loop on the pair-clique triangle")
	}
	if len(lp.L) != 1 || len(lp.R) != 1 {
		t.Fatalf("triangle witness should have s = t = 1, got %v", lp)
	}
	if !g.IsIEJKLoop(lp) {
		t.Fatalf("witness %v fails IsIEJKLoop", lp)
	}
}

// TestMaxLenPreservedThroughEngine: the Appendix D truncation must behave
// identically whether the caller reaches it through the legacy DFS or the
// exact engine (which delegates bounded searches to the DFS): same
// existence verdicts at every bound, and monotonically growing tracked
// sets as the bound rises to R, where the engine takes over.
func TestMaxLenPreservedThroughEngine(t *testing.T) {
	g := Ring(6)
	e := Edge{From: 3, To: 4} // needs the full 6-vertex ring loop
	s := NewLoopSearcher(g)
	for maxLen := 0; maxLen <= 7; maxLen++ {
		opts := LoopOptions{MaxLen: maxLen}
		if got, want := s.Has(0, e, opts), g.HasIEJKLoop(0, e, opts); got != want {
			t.Errorf("MaxLen %d: engine=%v legacy=%v", maxLen, got, want)
		}
	}
	if s.Has(0, e, LoopOptions{MaxLen: 4}) {
		t.Error("6-vertex ring loop found with MaxLen=4")
	}
	if !s.Has(0, e, LoopOptions{MaxLen: 6}) {
		t.Error("ring loop not found with MaxLen=6")
	}
	// Whole graphs: truncated builds through BuildTSGraph (engine-routed)
	// must equal direct legacy builds at every bound, and the tracked
	// sets must grow monotonically in the bound.
	for seed := int64(0); seed < 20; seed++ {
		rg := placementFromSeed(seed, 7, 10)
		var prevLen int
		for maxLen := 3; maxLen <= rg.NumReplicas(); maxLen++ {
			opts := LoopOptions{MaxLen: maxLen}
			total := 0
			for i := 0; i < rg.NumReplicas(); i++ {
				engine := BuildTSGraph(rg, ReplicaID(i), opts)
				legacy := buildTSGraphWith(rg, ReplicaID(i), opts, rg.FindIEJKLoop)
				if !reflect.DeepEqual(engine.Edges(), legacy.Edges()) {
					t.Fatalf("seed %d replica %d MaxLen %d: engine %v != legacy %v",
						seed, i, maxLen, engine.Edges(), legacy.Edges())
				}
				total += engine.Len()
			}
			if total < prevLen {
				t.Fatalf("seed %d: tracked entries shrank raising MaxLen to %d", seed, maxLen)
			}
			prevLen = total
		}
	}
}

// TestExactDenseRandomKBuild is the acceptance check for the engine: the
// untruncated RandomK(32, 96, 3, 7) build — unreachable for the legacy
// DFS (minutes+) — must complete quickly, every non-incident tracked edge
// must carry a witness that passes IsIEJKLoop, and the exact tracked sets
// must contain the Appendix D truncated ones (monotonicity: exact search
// can only discover more loops than a bounded one).
func TestExactDenseRandomKBuild(t *testing.T) {
	g := RandomK(32, 96, 3, 7)
	start := time.Now()
	graphs := BuildAllTSGraphs(g, LoopOptions{})
	elapsed := time.Since(start)
	t.Logf("untruncated RandomK(32,96,3,7) BuildAllTSGraphs: %v", elapsed)
	if elapsed > 10*time.Second {
		t.Fatalf("untruncated dense build took %v, want well under 10s", elapsed)
	}
	entries := 0
	for _, tg := range graphs {
		entries += tg.Len()
		for _, e := range tg.NonIncidentEdges() {
			lp, ok := tg.WitnessLoop(e)
			if !ok {
				t.Fatalf("replica %d tracks %v without a witness loop", tg.Owner, e)
			}
			if !g.IsIEJKLoop(lp) {
				t.Fatalf("replica %d edge %v: witness %v fails IsIEJKLoop", tg.Owner, e, lp)
			}
			if lp.I != tg.Owner || lp.Edge() != e {
				t.Fatalf("replica %d edge %v: witness %v mismatched", tg.Owner, e, lp)
			}
		}
	}
	if entries == 0 {
		t.Fatal("dense build produced no tracked edges")
	}
	truncated := BuildAllTSGraphs(g, LoopOptions{MaxLen: 5})
	for i, tg := range truncated {
		for _, e := range tg.Edges() {
			if !graphs[i].Has(e) {
				t.Fatalf("replica %d: truncated tracks %v but exact does not", i, e)
			}
		}
	}
}

// BenchmarkExactLoopSearch measures the engine head to head with the
// legacy DFS on topologies both can handle, and alone on the dense
// random graph only the engine can build untruncated.
func BenchmarkExactLoopSearch(b *testing.B) {
	b.Run("ring8_e45", func(b *testing.B) {
		g := Ring(8)
		s := NewLoopSearcher(g)
		e := Edge{From: 4, To: 5}
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if !s.Has(0, e, LoopOptions{}) {
				b.Fatal("expected loop")
			}
		}
	})
	b.Run("pairclique8_e45", func(b *testing.B) {
		g := PairClique(8)
		s := NewLoopSearcher(g)
		e := Edge{From: 4, To: 5}
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			s.Has(0, e, LoopOptions{})
		}
	})
	b.Run("randomk32_replica0_exact", func(b *testing.B) {
		g := RandomK(32, 96, 3, 7)
		b.ReportAllocs()
		entries := 0
		for n := 0; n < b.N; n++ {
			entries = BuildTSGraph(g, 0, LoopOptions{}).Len()
		}
		b.ReportMetric(float64(entries), "entries")
	})
}

// BenchmarkIsIEJKLoopValidate measures the allocation-slimmed validator on
// a real witness (it must stay cheap: the differential and fuzz harnesses
// call it for every returned loop).
func BenchmarkIsIEJKLoopValidate(b *testing.B) {
	g := Ring(8)
	lp, ok := g.FindIEJKLoop(0, Edge{From: 4, To: 5}, LoopOptions{})
	if !ok {
		b.Fatal("expected loop")
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if !g.IsIEJKLoop(lp) {
			b.Fatal("witness must validate")
		}
	}
}
