package sharegraph

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Differential tests proving the exact dominance-pruned engine (search.go)
// equivalent to the legacy enumerating DFS, which stays in the tree as the
// reference implementation. Equivalence is checked three ways: existence
// agreement on every (i, e) pair, witness validity through the Definition 4
// validator, and byte-identical tracked-edge sets for whole timestamp
// graphs built through either engine.

// diffGraphs returns every generator family at sizes small enough for the
// legacy DFS to stay fast.
func diffGraphs() map[string]*Graph {
	hm1, _ := HelaryMilani1()
	hm2, _ := HelaryMilani2()
	return map[string]*Graph{
		"fig3":     Fig3Example(),
		"fig5":     Fig5Example(),
		"hm1":      hm1,
		"hm2":      hm2,
		"ring4":    Ring(4),
		"ring6":    Ring(6),
		"ring8":    Ring(8),
		"line5":    Line(5),
		"star6":    Star(6),
		"tree6":    Tree([]int{0, 0, 1, 1, 2, 3}),
		"fullrep5": FullReplication(5, 3),
		"pairclq6": PairClique(6),
		"grid9":    Grid(3, 3),
		"randomk2": RandomK(8, 20, 2, 11),
		"randomk3": RandomK(8, 24, 3, 7),
		"randomk4": RandomK(9, 18, 4, 3),
	}
}

// checkEngineAgreement asserts, for every (i, e) pair of g, that the exact
// engine and the legacy DFS agree on existence and that every witness the
// engine returns satisfies Definition 4 and witnesses the requested edge.
func checkEngineAgreement(t *testing.T, name string, g *Graph, opts LoopOptions) {
	t.Helper()
	s := NewLoopSearcher(g)
	for i := 0; i < g.NumReplicas(); i++ {
		for _, e := range g.Edges() {
			if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
				continue
			}
			legacy := g.HasIEJKLoop(ReplicaID(i), e, opts)
			lp, exact := s.Find(ReplicaID(i), e, opts)
			if legacy != exact {
				t.Fatalf("%s: replica %d edge %v opts %+v: legacy=%v exact=%v\n%s",
					name, i, e, opts, legacy, exact, g)
			}
			if !exact {
				continue
			}
			if !g.IsIEJKLoop(lp) {
				t.Fatalf("%s: replica %d edge %v: engine witness %v fails IsIEJKLoop\n%s",
					name, i, e, lp, g)
			}
			if lp.I != ReplicaID(i) || lp.Edge() != e {
				t.Fatalf("%s: replica %d edge %v: witness %v has I=%d Edge=%v",
					name, i, e, lp, lp.I, lp.Edge())
			}
		}
	}
}

// TestExactEngineMatchesLegacyOnGenerators runs the full differential
// sweep over every generator family, unbounded and truncated.
func TestExactEngineMatchesLegacyOnGenerators(t *testing.T) {
	for name, g := range diffGraphs() {
		checkEngineAgreement(t, name, g, LoopOptions{})
		checkEngineAgreement(t, name, g, LoopOptions{MaxLen: 5})
	}
}

// TestExactEngineMatchesLegacyRandomPlacements runs the differential sweep
// over randomized register assignments.
func TestExactEngineMatchesLegacyRandomPlacements(t *testing.T) {
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 7, 10)
		checkEngineAgreement(t, "random", g, LoopOptions{})
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBuildTSGraphByteIdenticalToLegacy: routing BuildTSGraph through the
// exact engine must leave every tracked-edge set byte-identical to a build
// through the legacy DFS — the timestamp layout (and hence the wire
// format) may not shift by a single entry.
func TestBuildTSGraphByteIdenticalToLegacy(t *testing.T) {
	check := func(name string, g *Graph, opts LoopOptions) {
		t.Helper()
		for i := 0; i < g.NumReplicas(); i++ {
			engine := BuildTSGraph(g, ReplicaID(i), opts)
			legacy := buildTSGraphWith(g, ReplicaID(i), opts, g.FindIEJKLoop)
			if !reflect.DeepEqual(engine.Edges(), legacy.Edges()) {
				t.Fatalf("%s replica %d opts %+v: engine edges %v != legacy edges %v",
					name, i, opts, engine.Edges(), legacy.Edges())
			}
		}
	}
	for name, g := range diffGraphs() {
		check(name, g, LoopOptions{})
		check(name, g, LoopOptions{MaxLen: 4})
	}
	for seed := int64(0); seed < 40; seed++ {
		check("random", placementFromSeed(seed, 7, 10), LoopOptions{})
	}
}

// TestAugmentedEngineMatchesLegacy runs the augmented differential sweep:
// random placements with random client assignments, existence agreement on
// every (i, e) pair, witnesses validated by IsAugmentedIEJKLoop, and whole
// augmented timestamp graphs byte-identical through either engine.
func TestAugmentedEngineMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := placementFromSeed(seed, 6, 9)
		rng := newTestRand(seed ^ 0x5eed)
		var assignment ClientAssignment
		for c := 0; c < 1+rng.Intn(3); c++ {
			p := rng.Intn(g.NumReplicas())
			q := rng.Intn(g.NumReplicas())
			if p == q {
				q = (q + 1) % g.NumReplicas()
			}
			assignment = append(assignment, []ReplicaID{ReplicaID(p), ReplicaID(q)})
		}
		a, err := NewAugmented(g, assignment)
		if err != nil {
			t.Fatal(err)
		}
		s := NewAugmentedLoopSearcher(a)
		for i := 0; i < g.NumReplicas(); i++ {
			for _, e := range g.Edges() {
				if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
					continue
				}
				_, legacy := a.FindAugmentedIEJKLoop(ReplicaID(i), e, LoopOptions{})
				lp, exact := s.Find(ReplicaID(i), e, LoopOptions{})
				if legacy != exact {
					t.Fatalf("seed %d replica %d edge %v: legacy=%v exact=%v\n%s clients=%v",
						seed, i, e, legacy, exact, g, assignment)
				}
				if exact && !a.IsAugmentedIEJKLoop(lp) {
					t.Fatalf("seed %d replica %d edge %v: witness %v fails IsAugmentedIEJKLoop\n%s clients=%v",
						seed, i, e, lp, g, assignment)
				}
			}
			engine := a.BuildAugmentedTSGraph(ReplicaID(i), LoopOptions{})
			legacy := buildTSGraphWith(a.G, ReplicaID(i), LoopOptions{}, a.FindAugmentedIEJKLoop)
			if !reflect.DeepEqual(engine.Edges(), legacy.Edges()) {
				t.Fatalf("seed %d replica %d: engine edges %v != legacy edges %v",
					seed, i, engine.Edges(), legacy.Edges())
			}
		}
	}
}

// TestExactEngineAgainstBruteForce closes the loop a third way: the exact
// engine against the exhaustive split-enumeration oracle used to validate
// the legacy DFS, independent of the legacy DFS's own search order.
func TestExactEngineAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 6, 8)
		s := NewLoopSearcher(g)
		for i := 0; i < g.NumReplicas(); i++ {
			for _, e := range g.Edges() {
				if e.From == ReplicaID(i) || e.To == ReplicaID(i) {
					continue
				}
				if s.Has(ReplicaID(i), e, LoopOptions{}) != bruteForceHasLoop(g, ReplicaID(i), e) {
					t.Logf("seed %d replica %d edge %v\n%s", seed, i, e, g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
