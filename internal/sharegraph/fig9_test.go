package sharegraph

import "testing"

// TestFig9TimestampGraphSymmetry reproduces the structure of Figure 9:
// the counterexample-1 graph has a mirror automorphism fixing i and
// swapping (j k), (b1 a2), (b2 a1); timestamp graphs must respect it,
// which yields the figure's grouping — G_i alone, G_b2 ≅ G_a1, and
// G_b1 ≅ G_a2 ≅ G_j ≅ G_k (by size).
func TestFig9TimestampGraphSymmetry(t *testing.T) {
	g, roles := HelaryMilani1()
	σ := map[ReplicaID]ReplicaID{
		roles.I:  roles.I,
		roles.J:  roles.K,
		roles.K:  roles.J,
		roles.B1: roles.A2,
		roles.A2: roles.B1,
		roles.B2: roles.A1,
		roles.A1: roles.B2,
	}
	// σ must be a share-graph automorphism.
	for _, e := range g.Edges() {
		if !g.HasEdge(Edge{σ[e.From], σ[e.To]}) {
			t.Fatalf("σ is not an automorphism: %v maps to a non-edge", e)
		}
	}
	graphs := BuildAllTSGraphs(g, LoopOptions{})
	for r := 0; r < g.NumReplicas(); r++ {
		src := graphs[r]
		dst := graphs[σ[ReplicaID(r)]]
		if src.Len() != dst.Len() {
			t.Errorf("|G_%d| = %d but |G_%d| = %d under σ", r, src.Len(), σ[ReplicaID(r)], dst.Len())
			continue
		}
		for _, e := range src.Edges() {
			if !dst.Has(Edge{σ[e.From], σ[e.To]}) {
				t.Errorf("G_%d edge %v has no σ-image in G_%d", r, e, σ[ReplicaID(r)])
			}
		}
	}
	// Figure 9's panel (c) draws G_b1, G_a2, G_j and G_k identically: all
	// four have the same number of tracked edges.
	sizes := []int{
		graphs[roles.B1].Len(), graphs[roles.A2].Len(),
		graphs[roles.J].Len(), graphs[roles.K].Len(),
	}
	for _, s := range sizes[1:] {
		if s != sizes[0] {
			t.Errorf("panel (c) group sizes differ: %v", sizes)
			break
		}
	}
	// Panel (b): G_b2 and G_a1 coincide under σ (checked above) and are
	// distinct in size from panel (a)'s G_i unless the graph forces
	// otherwise — record the observed partition for the experiment log.
	t.Logf("Fig 9 sizes: G_i=%d, G_b2=G_a1=%d, G_b1=G_a2=G_j=G_k=%d",
		graphs[roles.I].Len(), graphs[roles.B2].Len(), graphs[roles.B1].Len())
}
