package sharegraph

import (
	"testing"
	"testing/quick"
)

// TestFig5TimestampGraph reproduces the Definition 5 worked example:
// G_1 (our G_0) contains e43 and e32 but not e34 or e23, plus all edges
// incident at replica 1 in both directions.
func TestFig5TimestampGraph(t *testing.T) {
	g := Fig5Example()
	ts := BuildTSGraph(g, 0, LoopOptions{})

	// Incident edges: replica 0 is adjacent to 1 and 3 (shares y with 1,
	// {y,w} with 3).
	for _, e := range []Edge{{0, 1}, {1, 0}, {0, 3}, {3, 0}} {
		if !ts.Has(e) {
			t.Errorf("G_0 missing incident edge %v", e)
		}
	}
	// Paper: e43 ∈ G_1, e34 ∉ G_1 (zero-based: e(3→2) in, e(2→3) out).
	if !ts.Has(Edge{3, 2}) {
		t.Error("G_0 missing e43 (zero-based e(3->2))")
	}
	if ts.Has(Edge{2, 3}) {
		t.Error("G_0 contains e34 (zero-based e(2->3)); timestamp edges need not be bidirectional")
	}
	// Paper: e32 ∈ G_1 via the same loop; e23 ∉ G_1.
	if !ts.Has(Edge{2, 1}) {
		t.Error("G_0 missing e32 (zero-based e(2->1))")
	}
	if ts.Has(Edge{1, 2}) {
		t.Error("G_0 contains e23 (zero-based e(1->2))")
	}
	// Witness loops must be retrievable and valid for non-incident edges.
	for _, e := range ts.NonIncidentEdges() {
		lp, ok := ts.WitnessLoop(e)
		if !ok {
			t.Errorf("no witness loop recorded for %v", e)
			continue
		}
		if !g.IsIEJKLoop(lp) || lp.Edge() != e {
			t.Errorf("invalid witness loop %v for %v", lp, e)
		}
	}
}

// TestTreeTimestampGraphsIncidentOnly: trees have no loops at all, so every
// timestamp graph holds exactly the incident edges — 2·N_i entries, the
// quantity the Section 4 tree lower bound says is optimal.
func TestTreeTimestampGraphsIncidentOnly(t *testing.T) {
	for _, g := range []*Graph{Line(6), Star(6), Tree([]int{0, 0, 0, 1, 1, 2, 4})} {
		for i := 0; i < g.NumReplicas(); i++ {
			ts := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
			if got, want := ts.Len(), 2*g.Degree(ReplicaID(i)); got != want {
				t.Errorf("tree replica %d: |E_i| = %d, want 2·N_i = %d", i, got, want)
			}
			if len(ts.NonIncidentEdges()) != 0 {
				t.Errorf("tree replica %d tracks non-incident edges %v", i, ts.NonIncidentEdges())
			}
		}
	}
}

// TestRingTimestampGraphsFullCycle: on an n-cycle every replica must track
// every directed cycle edge — 2n entries, matching the Section 4 cycle
// lower bound of 2n·log m bits.
func TestRingTimestampGraphsFullCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7} {
		g := Ring(n)
		for i := 0; i < n; i++ {
			ts := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
			if got := ts.Len(); got != 2*n {
				t.Errorf("ring(%d) replica %d: |E_i| = %d, want %d", n, i, got, 2*n)
			}
		}
	}
}

func TestTSGraphIndexStable(t *testing.T) {
	g := Fig5Example()
	ts := BuildTSGraph(g, 0, LoopOptions{})
	for pos, e := range ts.Edges() {
		idx, ok := ts.Index(e)
		if !ok || idx != pos {
			t.Errorf("Index(%v) = (%d,%v), want (%d,true)", e, idx, ok, pos)
		}
	}
	if _, ok := ts.Index(Edge{9, 9}); ok {
		t.Error("Index of untracked edge reported ok")
	}
}

func TestTSGraphIntersection(t *testing.T) {
	g := Fig5Example()
	all := BuildAllTSGraphs(g, LoopOptions{})
	for i, ti := range all {
		for k, tk := range all {
			inter := ti.Intersection(tk)
			seen := make(map[Edge]bool)
			for _, pair := range inter {
				e := ti.Edges()[pair[0]]
				if tk.Edges()[pair[1]] != e {
					t.Fatalf("intersection misaligned between G_%d and G_%d", i, k)
				}
				seen[e] = true
			}
			// Every commonly tracked edge must appear exactly once.
			for _, e := range ti.Edges() {
				if tk.Has(e) && !seen[e] {
					t.Errorf("edge %v in E_%d ∩ E_%d missing from Intersection", e, i, k)
				}
			}
		}
	}
}

// TestTSGraphContainsIncidentProperty: Definition 5 guarantees E_i always
// contains every incident directed edge, on any share graph.
func TestTSGraphContainsIncidentProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 7, 10)
		for i := 0; i < g.NumReplicas(); i++ {
			ts := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
			for _, j := range g.Neighbors(ReplicaID(i)) {
				if !ts.Has(Edge{ReplicaID(i), j}) || !ts.Has(Edge{j, ReplicaID(i)}) {
					return false
				}
			}
			// And every tracked edge is a share-graph edge.
			for _, e := range ts.Edges() {
				if !g.HasEdge(e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestFullReplicationTSGraph: with identical stores everywhere the share
// graph is a clique and loops exist generously; |E_i| is bounded by the
// total number of directed edges, R(R-1).
func TestFullReplicationTSGraph(t *testing.T) {
	g := FullReplication(5, 3)
	for i := 0; i < 5; i++ {
		ts := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
		if ts.Len() > 5*4 {
			t.Errorf("replica %d: |E_i| = %d exceeds R(R-1) = 20", i, ts.Len())
		}
		if ts.Len() < 2*4 {
			t.Errorf("replica %d: |E_i| = %d below incident count 8", i, ts.Len())
		}
	}
}

func BenchmarkTSGraphBuildFig5(b *testing.B) {
	g := Fig5Example()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		BuildTSGraph(g, 0, LoopOptions{})
	}
}

func BenchmarkTSGraphBuildRing10(b *testing.B) {
	g := Ring(10)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		BuildTSGraph(g, 0, LoopOptions{})
	}
}

func BenchmarkShareGraphBuildRandom(b *testing.B) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		RandomK(12, 30, 3, int64(n))
	}
}
