package sharegraph

import "testing"

// TestHelaryMilaniCounterexample1 reproduces Section 3.2 / Appendix A
// counterexample 1 (Figures 6, 8a, 9): the loop (j,b1,b2,i,a1,a2,k) is a
// minimal x-hoop under the original Definition 18 — so Hélary–Milani's
// Lemma 19 would force replica i to track information about register x —
// yet no (i, e_jk)- or (i, e_kj)-loop exists, so Theorem 8 does not
// require it.
func TestHelaryMilaniCounterexample1(t *testing.T) {
	g, roles := HelaryMilani1()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	hoopPath := []ReplicaID{roles.J, roles.B1, roles.B2, roles.I, roles.A1, roles.A2, roles.K}
	if !g.IsXHoop("x", hoopPath) {
		t.Fatal("(j,b1,b2,i,a1,a2,k) is not recognized as an x-hoop")
	}
	if !g.IsMinimalXHoop("x", hoopPath, Original) {
		t.Error("(j,b1,b2,i,a1,a2,k) should be minimal under Definition 18")
	}
	if _, ok := g.FindMinimalXHoopThrough("x", roles.I, Original); !ok {
		t.Error("search failed to find the Definition 18 minimal x-hoop through i")
	}

	// Theorem 8's edge set: neither e_jk nor e_kj is in G_i.
	ts := BuildTSGraph(g, roles.I, LoopOptions{})
	if ts.Has(Edge{roles.J, roles.K}) {
		t.Error("G_i contains e_jk; the y/z chords should break every candidate loop")
	}
	if ts.Has(Edge{roles.K, roles.J}) {
		t.Error("G_i contains e_kj; the y/z chords should break every candidate loop")
	}
	// Cross-check with brute force, since this is the paper's key claim.
	if bruteForceHasLoop(g, roles.I, Edge{roles.J, roles.K}) {
		t.Error("brute force found an (i,e_jk)-loop")
	}
	if bruteForceHasLoop(g, roles.I, Edge{roles.K, roles.J}) {
		t.Error("brute force found an (i,e_kj)-loop")
	}
}

// TestHelaryMilaniCounterexample2 reproduces counterexample 2 (Figure 8b):
// under the modified Definition 20 the loop is NOT a minimal x-hoop
// (label y is stored by three hoop replicas), which would exempt i from
// tracking x — but Theorem 8 requires e_kj ∈ G_i.
func TestHelaryMilaniCounterexample2(t *testing.T) {
	g, roles := HelaryMilani2()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	hoopPath := []ReplicaID{roles.J, roles.B1, roles.B2, roles.I, roles.A1, roles.A2, roles.K}
	if !g.IsXHoop("x", hoopPath) {
		t.Fatal("(j,b1,b2,i,a1,a2,k) is not recognized as an x-hoop")
	}
	if g.IsMinimalXHoop("x", hoopPath, Modified) {
		t.Error("loop should NOT be minimal under Definition 20 (y held by 3 hoop replicas)")
	}
	if _, ok := g.FindMinimalXHoopThrough("x", roles.I, Modified); ok {
		t.Error("no minimal x-hoop through i should exist under Definition 20")
	}

	// Yet Theorem 8 requires tracking e_kj: the loop
	// (i, b2, b1, j, k, a2, a1, i) is an (i, e_kj)-loop.
	witness := Loop{
		I: roles.I,
		L: []ReplicaID{roles.B2, roles.B1, roles.J},
		R: []ReplicaID{roles.K, roles.A2, roles.A1},
	}
	if !g.IsIEJKLoop(witness) {
		t.Error("(i,b2,b1,j,k,a2,a1,i) should be an (i,e_kj)-loop")
	}
	ts := BuildTSGraph(g, roles.I, LoopOptions{})
	if !ts.Has(Edge{roles.K, roles.J}) {
		t.Error("G_i missing e_kj, contradicting Theorem 8")
	}
	// The reverse direction has no loop (condition (iii) fails on the
	// b1–b2 hop because y ∈ X_a1), showing the asymmetry again.
	if ts.Has(Edge{roles.J, roles.K}) {
		t.Error("G_i contains e_jk; only e_kj should be tracked")
	}
}

func TestIsXHoopRejects(t *testing.T) {
	g, roles := HelaryMilani1()
	// Endpoint not in C(x).
	if g.IsXHoop("x", []ReplicaID{roles.B1, roles.B2, roles.I}) {
		t.Error("hoop with endpoints outside C(x) accepted")
	}
	// Interior vertex in C(x): j–k direct edge means path (j, k) is fine
	// structurally, but a path routing through k's co-holder is not.
	if g.IsXHoop("x", []ReplicaID{roles.J, roles.K, roles.A2}) {
		t.Error("hoop with interior vertex in C(x) accepted")
	}
	// Too short.
	if g.IsXHoop("x", []ReplicaID{roles.J}) {
		t.Error("single-vertex hoop accepted")
	}
	// Non-simple.
	if g.IsXHoop("x", []ReplicaID{roles.J, roles.B1, roles.J}) {
		t.Error("non-simple hoop accepted")
	}
}

func TestMinimalHoopDistinctLabels(t *testing.T) {
	// Two adjacent edges forced to use the same single register cannot be
	// labelled distinctly: a–b and b–c both share only register s.
	g, err := New([][]Register{
		{"x", "s"},       // 0 = ra, stores x
		{"s"},            // 1 interior
		{"s", "x2"},      // 2 interior-ish
		{"x", "x2", "s"}, // 3 = rb, stores x
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path 0–1–2–3: labels candidates {s},{s},{x2,s}. Edges 0–1 and 1–2
	// both need s — no distinct labelling exists.
	if g.IsMinimalXHoop("x", []ReplicaID{0, 1, 2, 3}, Original) {
		t.Error("hoop with unavoidable duplicate labels accepted as minimal")
	}
}

func TestHasDistinctLabels(t *testing.T) {
	cases := []struct {
		name string
		cand [][]Register
		want bool
	}{
		{"empty", nil, true},
		{"single", [][]Register{{"a"}}, true},
		{"swap needed", [][]Register{{"a", "b"}, {"a"}}, true},
		{"impossible", [][]Register{{"a"}, {"a"}}, false},
		{"chain", [][]Register{{"a"}, {"a", "b"}, {"b", "c"}}, true},
		{"no candidates", [][]Register{{}}, false},
	}
	for _, tc := range cases {
		if got := hasDistinctLabels(tc.cand); got != tc.want {
			t.Errorf("%s: hasDistinctLabels = %v, want %v", tc.name, got, tc.want)
		}
	}
}
