package sharegraph

import (
	"fmt"
	"sort"
)

// ClientID identifies a client in the client-server architecture.
type ClientID int

// ClientAssignment maps each client to R_c, the set of replicas it may
// access (Section 6). Client c may operate on any register in ∪_{r∈Rc} X_r.
type ClientAssignment [][]ReplicaID

// AugmentedGraph is the augmented share graph Ĝ of Definition 16: the
// share graph plus a directed edge pair between every two replicas that
// some client can both access. Client edges capture causal-dependency
// propagation through clients even across replicas sharing no registers.
type AugmentedGraph struct {
	G       *Graph
	clients ClientAssignment
	// clientPair[e] reports that some client can access both endpoints.
	clientPair map[Edge]bool
	adj        [][]ReplicaID // adjacency in Ĝ (share edges ∪ client edges)
}

// NewAugmented builds Ĝ from a share graph and a client assignment.
// Every client must name at least one valid replica.
func NewAugmented(g *Graph, clients ClientAssignment) (*AugmentedGraph, error) {
	a := &AugmentedGraph{
		G:          g,
		clients:    make(ClientAssignment, len(clients)),
		clientPair: make(map[Edge]bool),
	}
	n := g.NumReplicas()
	adjSet := make([]map[ReplicaID]bool, n)
	for i := 0; i < n; i++ {
		adjSet[i] = make(map[ReplicaID]bool)
		for _, j := range g.Neighbors(ReplicaID(i)) {
			adjSet[i][j] = true
		}
	}
	for c, rs := range clients {
		if len(rs) == 0 {
			return nil, fmt.Errorf("sharegraph: client %d has empty replica set", c)
		}
		seen := make(map[ReplicaID]bool, len(rs))
		for _, r := range rs {
			if r < 0 || int(r) >= n {
				return nil, fmt.Errorf("sharegraph: client %d names invalid replica %d", c, r)
			}
			if seen[r] {
				return nil, fmt.Errorf("sharegraph: client %d names replica %d twice", c, r)
			}
			seen[r] = true
		}
		a.clients[c] = append([]ReplicaID(nil), rs...)
		for _, p := range rs {
			for _, q := range rs {
				if p == q {
					continue
				}
				a.clientPair[Edge{p, q}] = true
				adjSet[p][q] = true
			}
		}
	}
	a.adj = make([][]ReplicaID, n)
	for i := 0; i < n; i++ {
		for j := range adjSet[i] {
			a.adj[i] = append(a.adj[i], j)
		}
		sort.Slice(a.adj[i], func(x, y int) bool { return a.adj[i][x] < a.adj[i][y] })
	}
	return a, nil
}

// NumClients returns C, the number of clients.
func (a *AugmentedGraph) NumClients() int { return len(a.clients) }

// ClientReplicas returns R_c for client c. The slice is a copy.
func (a *AugmentedGraph) ClientReplicas(c ClientID) []ReplicaID {
	return append([]ReplicaID(nil), a.clients[c]...)
}

// ClientPair reports whether some client can access both endpoints of e —
// the condition that adds e to Ê and relaxes the loop side conditions.
func (a *AugmentedGraph) ClientPair(e Edge) bool { return a.clientPair[e] }

// HasEdge reports whether e ∈ Ê (a share edge or a client edge).
func (a *AugmentedGraph) HasEdge(e Edge) bool {
	return a.G.HasEdge(e) || a.clientPair[e]
}

// Neighbors returns the Ĝ-neighbours of i (shared with the graph; do not
// modify).
func (a *AugmentedGraph) Neighbors(i ReplicaID) []ReplicaID { return a.adj[i] }

// ClientsFor returns the clients that may access replica i, sorted.
func (a *AugmentedGraph) ClientsFor(i ReplicaID) []ClientID {
	var out []ClientID
	for c, rs := range a.clients {
		for _, r := range rs {
			if r == i {
				out = append(out, ClientID(c))
				break
			}
		}
	}
	return out
}

// IsAugmentedIEJKLoop checks Definition 27 for a given simple loop in Ĝ:
// condition (i) is unchanged, while conditions (ii) and (iii) are
// alternatively satisfied when the two replicas of the hop are both
// accessible to a single client. Like IsIEJKLoop it runs on the graph's
// bitmask tables with pooled scratch, so it validates witnesses
// allocation-free inside differential and fuzz loops.
func (a *AugmentedGraph) IsAugmentedIEJKLoop(lp Loop) bool {
	return checkIEJKLoop(a.G, a, lp)
}

// hopOK evaluates "X_uv − excluded ≠ ∅ or u,v ∈ R_c for some client c".
func (a *AugmentedGraph) hopOK(u, v ReplicaID, excluded RegisterSet) bool {
	if a.clientPair[Edge{u, v}] {
		return true
	}
	return a.G.shared[Edge{u, v}].DiffNonEmpty(excluded)
}

// FindAugmentedIEJKLoop searches for an augmented (i, e_jk)-loop
// (Definition 27). The tracked edge e must be a real share-graph edge;
// the loop itself may traverse client edges.
func (a *AugmentedGraph) FindAugmentedIEJKLoop(i ReplicaID, e Edge, opts LoopOptions) (Loop, bool) {
	j, k := e.From, e.To
	if i == j || i == k || j == k || !a.G.HasEdge(e) {
		return Loop{}, false
	}
	n := a.G.NumReplicas()
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > n {
		maxLen = n
	}
	used := make([]bool, n)
	used[i] = true
	used[j] = true
	var (
		lpath []ReplicaID
		found Loop
		ok    bool
	)
	record := func(rpath []ReplicaID) {
		found = Loop{I: i, L: append([]ReplicaID(nil), lpath...), R: append([]ReplicaID(nil), rpath...)}
		ok = true
	}

	var extendR func(rpath []ReplicaID, full RegisterSet) bool
	extendR = func(rpath []ReplicaID, full RegisterSet) bool {
		cur := rpath[len(rpath)-1]
		if a.HasEdge(Edge{cur, i}) && a.hopOK(cur, i, full) {
			record(rpath)
			return true
		}
		if 1+len(lpath)+len(rpath) >= maxLen {
			return false
		}
		for _, nxt := range a.adj[cur] {
			if used[nxt] || nxt == i {
				continue
			}
			if !a.hopOK(cur, nxt, full) {
				continue
			}
			used[nxt] = true
			done := extendR(append(rpath, nxt), full)
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	tryRPath := func(interior, full RegisterSet) bool {
		if a.HasEdge(Edge{j, i}) && a.hopOK(j, i, interior) {
			record([]ReplicaID{j})
			return true
		}
		if 1+len(lpath)+1 >= maxLen {
			return false
		}
		for _, r2 := range a.adj[j] {
			if used[r2] || r2 == i {
				continue
			}
			if !a.hopOK(j, r2, interior) {
				continue
			}
			used[r2] = true
			done := extendR([]ReplicaID{j, r2}, full)
			used[r2] = false
			if done {
				return true
			}
		}
		return false
	}

	var extendL func(cur ReplicaID, interior RegisterSet) bool
	extendL = func(cur ReplicaID, interior RegisterSet) bool {
		if 1+len(lpath)+1 >= maxLen {
			return false
		}
		for _, nxt := range a.adj[cur] {
			if used[nxt] {
				continue
			}
			if nxt == k {
				if !a.G.shared[Edge{j, k}].DiffNonEmpty(interior) {
					continue
				}
				lpath = append(lpath, k)
				used[k] = true
				done := tryRPath(interior, interior.Union(a.G.stores[k]))
				used[k] = false
				lpath = lpath[:len(lpath)-1]
				if done {
					return true
				}
				continue
			}
			used[nxt] = true
			lpath = append(lpath, nxt)
			done := extendL(nxt, interior.Union(a.G.stores[nxt]))
			lpath = lpath[:len(lpath)-1]
			used[nxt] = false
			if done {
				return true
			}
		}
		return false
	}

	extendL(i, make(RegisterSet))
	return found, ok
}

// BuildAugmentedTSGraph computes Ê_i per Definition 28: incident Ê edges
// and augmented-loop edges, intersected with the real edge set E. The
// result is returned as a TSGraph whose tracked edges all belong to E.
// Loop existence is decided by the exact engine (see search.go); the
// incident edges of Ĝ intersected with E are exactly the share-graph
// incident edges (client-only edges carry no registers), so the shared
// builder applies unchanged.
func (a *AugmentedGraph) BuildAugmentedTSGraph(i ReplicaID, opts LoopOptions) *TSGraph {
	return buildTSGraphWith(a.G, i, opts, NewAugmentedLoopSearcher(a).Find)
}

// BuildAllAugmentedTSGraphs computes Ê_i for every replica, sharing one
// exact searcher across replicas.
func (a *AugmentedGraph) BuildAllAugmentedTSGraphs(opts LoopOptions) []*TSGraph {
	s := NewAugmentedLoopSearcher(a)
	out := make([]*TSGraph, a.G.NumReplicas())
	for i := range out {
		out[i] = buildTSGraphWith(a.G, ReplicaID(i), opts, s.Find)
	}
	return out
}

// ClientTSEdges returns the edge universe of client c's timestamp µ_c:
// ∪_{i∈Rc} Ê_i, in deterministic order (Appendix E.5). graphs must be the
// per-replica augmented timestamp graphs of the same AugmentedGraph.
func (a *AugmentedGraph) ClientTSEdges(c ClientID, graphs []*TSGraph) []Edge {
	set := make(map[Edge]bool)
	for _, r := range a.clients[c] {
		for _, e := range graphs[r].Edges() {
			set[e] = true
		}
	}
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}
