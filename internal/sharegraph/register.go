// Package sharegraph models how shared read/write registers are placed on
// replicas in a partially replicated distributed shared memory, and derives
// from that placement the combinatorial structures of Xiang & Vaidya
// (PODC 2019): the share graph (Definition 3), (i, e_jk)-loops
// (Definition 4), per-replica timestamp graphs (Definition 5), the
// Hélary–Milani hoop definitions the paper corrects (Definitions 17, 18
// and 20), and the augmented variants for the client-server architecture
// (Definitions 16, 27 and 28).
package sharegraph

import (
	"fmt"
	"sort"
	"strings"
)

// Register names a shared read/write register.
type Register string

// ReplicaID identifies a replica. Replicas are numbered 0 through R-1.
// (The paper numbers replicas 1 through R; we use zero-based indices and
// translate in display helpers.)
type ReplicaID int

// Edge is a directed edge e_{From,To} of a share graph. Directed edges in
// the share graph itself always come in pairs (Definition 3), but timestamp
// graphs may contain an edge in only one direction (see the Figure 5
// example in the paper), so direction is significant.
type Edge struct {
	From ReplicaID
	To   ReplicaID
}

// String renders the edge in the paper's e_{jk} notation.
func (e Edge) String() string {
	return fmt.Sprintf("e(%d->%d)", e.From, e.To)
}

// Reverse returns the edge with endpoints swapped.
func (e Edge) Reverse() Edge {
	return Edge{From: e.To, To: e.From}
}

// RegisterSet is a set of register names.
type RegisterSet map[Register]struct{}

// NewRegisterSet builds a set from the given registers.
func NewRegisterSet(regs ...Register) RegisterSet {
	s := make(RegisterSet, len(regs))
	for _, r := range regs {
		s[r] = struct{}{}
	}
	return s
}

// Has reports whether x is in the set.
func (s RegisterSet) Has(x Register) bool {
	_, ok := s[x]
	return ok
}

// Add inserts x into the set.
func (s RegisterSet) Add(x Register) {
	s[x] = struct{}{}
}

// Len returns the number of registers in the set.
func (s RegisterSet) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s RegisterSet) Clone() RegisterSet {
	c := make(RegisterSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}

// Union returns a new set holding s ∪ t.
func (s RegisterSet) Union(t RegisterSet) RegisterSet {
	u := s.Clone()
	for r := range t {
		u[r] = struct{}{}
	}
	return u
}

// UnionInPlace adds every register of t to s and returns s.
func (s RegisterSet) UnionInPlace(t RegisterSet) RegisterSet {
	for r := range t {
		s[r] = struct{}{}
	}
	return s
}

// Intersect returns a new set holding s ∩ t.
func (s RegisterSet) Intersect(t RegisterSet) RegisterSet {
	small, large := s, t
	if len(large) < len(small) {
		small, large = large, small
	}
	u := make(RegisterSet)
	for r := range small {
		if large.Has(r) {
			u[r] = struct{}{}
		}
	}
	return u
}

// Diff returns a new set holding s − t.
func (s RegisterSet) Diff(t RegisterSet) RegisterSet {
	u := make(RegisterSet)
	for r := range s {
		if !t.Has(r) {
			u[r] = struct{}{}
		}
	}
	return u
}

// DiffNonEmpty reports whether s − t is non-empty without materializing it.
// The paper's loop conditions (Definition 4) are all of this form.
func (s RegisterSet) DiffNonEmpty(t RegisterSet) bool {
	for r := range s {
		if !t.Has(r) {
			return true
		}
	}
	return false
}

// Equal reports whether the two sets hold exactly the same registers.
func (s RegisterSet) Equal(t RegisterSet) bool {
	if len(s) != len(t) {
		return false
	}
	for r := range s {
		if !t.Has(r) {
			return false
		}
	}
	return true
}

// Sorted returns the registers in lexicographic order.
func (s RegisterSet) Sorted() []Register {
	out := make([]Register, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// String renders the set as {a, b, c} in sorted order.
func (s RegisterSet) String() string {
	regs := s.Sorted()
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = string(r)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
