package sharegraph

import (
	"testing"
	"testing/quick"
)

func TestFig3ShareGraph(t *testing.T) {
	g := Fig3Example()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.NumReplicas(); got != 4 {
		t.Fatalf("NumReplicas = %d, want 4", got)
	}
	// The share graph is the path 0–1–2–3 (paper's 1–2–3–4).
	wantEdges := map[Edge]bool{
		{0, 1}: true, {1, 0}: true,
		{1, 2}: true, {2, 1}: true,
		{2, 3}: true, {3, 2}: true,
	}
	for _, e := range g.Edges() {
		if !wantEdges[e] {
			t.Errorf("unexpected edge %v", e)
		}
		delete(wantEdges, e)
	}
	for e := range wantEdges {
		t.Errorf("missing edge %v", e)
	}
	// X23 = {y} in the paper = Shared(1, 2) here; X14 = ∅ = Shared(0, 3).
	if got := g.Shared(1, 2); !got.Equal(NewRegisterSet("y")) {
		t.Errorf("Shared(1,2) = %v, want {y}", got)
	}
	if got := g.Shared(0, 3); got != nil {
		t.Errorf("Shared(0,3) = %v, want nil", got)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) succeeded, want error")
	}
}

func TestHoldersAndRecipients(t *testing.T) {
	g := Fig5Example()
	// y is stored at paper replicas 1, 2, 4 = zero-based 0, 1, 3.
	want := []ReplicaID{0, 1, 3}
	got := g.Holders("y")
	if len(got) != len(want) {
		t.Fatalf("Holders(y) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Holders(y) = %v, want %v", got, want)
		}
	}
	rec := g.UpdateRecipients(1, "y")
	if len(rec) != 2 || rec[0] != 0 || rec[1] != 3 {
		t.Fatalf("UpdateRecipients(1, y) = %v, want [0 3]", rec)
	}
}

func TestConnected(t *testing.T) {
	if !Fig3Example().Connected() {
		t.Error("Fig3 share graph should be connected")
	}
	g, err := New([][]Register{{"a"}, {"a"}, {"b"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("two disjoint pairs should be disconnected")
	}
}

func TestDegreeMatchesNeighbors(t *testing.T) {
	g := Fig5Example()
	for i := 0; i < g.NumReplicas(); i++ {
		if g.Degree(ReplicaID(i)) != len(g.Neighbors(ReplicaID(i))) {
			t.Errorf("replica %d: Degree != len(Neighbors)", i)
		}
	}
}

// placementFromSeed derives a small random register placement from a seed,
// for property tests.
func placementFromSeed(seed int64, maxReplicas, maxRegisters int) *Graph {
	rng := newTestRand(seed)
	n := 2 + rng.Intn(maxReplicas-1)
	regs := 1 + rng.Intn(maxRegisters)
	stores := make([][]Register, n)
	for r := 0; r < regs; r++ {
		// Place register r on a random non-empty subset of replicas.
		placed := false
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				stores[i] = append(stores[i], Register('a'+rune(r)))
				placed = true
			}
		}
		if !placed {
			stores[rng.Intn(n)] = append(stores[rng.Intn(n)], Register('a'+rune(r)))
		}
	}
	for i := range stores {
		if len(stores[i]) == 0 {
			stores[i] = []Register{Register("priv" + string(rune('0'+i)))}
		}
	}
	g, err := New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

func TestShareGraphSymmetryProperty(t *testing.T) {
	// Definition 3: e_ij ∈ E iff e_ji ∈ E, with identical labels.
	prop := func(seed int64) bool {
		g := placementFromSeed(seed, 7, 10)
		if err := g.Validate(); err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.Reverse()) {
				return false
			}
			if !g.Shared(e.From, e.To).Equal(g.Shared(e.To, e.From)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegisterSetOps(t *testing.T) {
	a := NewRegisterSet("x", "y")
	b := NewRegisterSet("y", "z")
	if got := a.Union(b); got.Len() != 3 {
		t.Errorf("Union = %v, want 3 registers", got)
	}
	if got := a.Intersect(b); !got.Equal(NewRegisterSet("y")) {
		t.Errorf("Intersect = %v, want {y}", got)
	}
	if got := a.Diff(b); !got.Equal(NewRegisterSet("x")) {
		t.Errorf("Diff = %v, want {x}", got)
	}
	if !a.DiffNonEmpty(b) {
		t.Error("DiffNonEmpty({x,y},{y,z}) = false, want true")
	}
	if b.DiffNonEmpty(NewRegisterSet("y", "z", "w")) {
		t.Error("DiffNonEmpty({y,z},{y,z,w}) = true, want false")
	}
	if a.String() != "{x, y}" {
		t.Errorf("String = %q, want {x, y}", a.String())
	}
	c := a.Clone()
	c.Add("q")
	if a.Has("q") {
		t.Error("Clone shares storage with original")
	}
}

func TestRegisterSetUnionDiffProperty(t *testing.T) {
	// (s ∪ t) − t == s − t for all register sets.
	prop := func(xs, ys []uint8) bool {
		s, u := make(RegisterSet), make(RegisterSet)
		for _, x := range xs {
			s.Add(Register('a' + rune(x%16)))
		}
		for _, y := range ys {
			u.Add(Register('a' + rune(y%16)))
		}
		return s.Union(u).Diff(u).Equal(s.Diff(u))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringersAndAccessors(t *testing.T) {
	g := Fig3Example()
	if s := g.String(); s == "" {
		t.Error("empty graph render")
	}
	if regs := g.Registers(); len(regs) != 3 || regs[0] != "x" {
		t.Errorf("Registers = %v", regs)
	}
	if g.NumUndirectedEdges() != 3 {
		t.Errorf("NumUndirectedEdges = %d", g.NumUndirectedEdges())
	}
	if g.HasEdge(Edge{1, 1}) {
		t.Error("self-edge reported")
	}
	e := Edge{0, 1}
	if e.String() == "" || e.Reverse() != (Edge{1, 0}) {
		t.Error("edge helpers wrong")
	}
	lp := Loop{I: 0, L: []ReplicaID{1}, R: []ReplicaID{2}}
	if lp.String() == "" {
		t.Error("empty loop render")
	}
	ts := BuildTSGraph(g, 1, LoopOptions{})
	if ts.String() == "" {
		t.Error("empty tsgraph render")
	}
	h := Hoop{X: "x", Path: []ReplicaID{0, 1}}
	if h.edgeCount() != 1 {
		t.Errorf("edgeCount = %d", h.edgeCount())
	}
}
