package sharegraph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Config is the JSON-serializable description of a system: the register
// placement and, optionally, client assignments for the client-server
// architecture. It is the on-disk format consumed by the command-line
// tools.
//
//	{
//	  "replicas": [
//	    {"registers": ["x"]},
//	    {"registers": ["x", "y"]}
//	  ],
//	  "clients": [
//	    {"replicas": [0, 1]}
//	  ]
//	}
type Config struct {
	Replicas []ReplicaConfig `json:"replicas"`
	Clients  []ClientConfig  `json:"clients,omitempty"`
}

// ReplicaConfig is one replica's register set.
type ReplicaConfig struct {
	Registers []Register `json:"registers"`
}

// ClientConfig is one client's accessible replica set (order expresses
// routing preference).
type ClientConfig struct {
	Replicas []ReplicaID `json:"replicas"`
}

// ParseConfig decodes a Config from JSON.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("sharegraph: parse config: %w", err)
	}
	if len(c.Replicas) == 0 {
		return Config{}, fmt.Errorf("sharegraph: config has no replicas")
	}
	return c, nil
}

// Graph builds the share graph described by the config.
func (c Config) Graph() (*Graph, error) {
	stores := make([][]Register, len(c.Replicas))
	for i, r := range c.Replicas {
		stores[i] = r.Registers
	}
	return New(stores)
}

// Assignment returns the client assignment, or nil when no clients are
// configured.
func (c Config) Assignment() ClientAssignment {
	if len(c.Clients) == 0 {
		return nil
	}
	out := make(ClientAssignment, len(c.Clients))
	for i, cl := range c.Clients {
		out[i] = append([]ReplicaID(nil), cl.Replicas...)
	}
	return out
}

// ConfigFromGraph captures an existing graph (and optional assignment) as
// a serializable Config, with registers sorted for determinism.
func ConfigFromGraph(g *Graph, clients ClientAssignment) Config {
	c := Config{Replicas: make([]ReplicaConfig, g.NumReplicas())}
	for i := range c.Replicas {
		c.Replicas[i].Registers = g.Stores(ReplicaID(i)).Sorted()
	}
	for _, rs := range clients {
		sorted := append([]ReplicaID(nil), rs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		c.Clients = append(c.Clients, ClientConfig{Replicas: sorted})
	}
	return c
}

// MarshalIndent renders the config as indented JSON.
func (c Config) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}
