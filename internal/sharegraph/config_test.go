package sharegraph

import "testing"

func TestConfigRoundTrip(t *testing.T) {
	g := Fig5Example()
	assignment := ClientAssignment{{0, 2}, {1, 3}}
	cfg := ConfigFromGraph(g, assignment)
	data, err := cfg.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := parsed.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumReplicas() != g.NumReplicas() {
		t.Fatalf("replicas %d != %d", g2.NumReplicas(), g.NumReplicas())
	}
	for i := 0; i < g.NumReplicas(); i++ {
		if !g2.Stores(ReplicaID(i)).Equal(g.Stores(ReplicaID(i))) {
			t.Errorf("replica %d stores differ", i)
		}
	}
	a2 := parsed.Assignment()
	if len(a2) != 2 || len(a2[0]) != 2 || a2[0][0] != 0 || a2[0][1] != 2 {
		t.Errorf("assignment = %v", a2)
	}
	// Derived structures must match too.
	for i := 0; i < g.NumReplicas(); i++ {
		t1 := BuildTSGraph(g, ReplicaID(i), LoopOptions{})
		t2 := BuildTSGraph(g2, ReplicaID(i), LoopOptions{})
		if t1.Len() != t2.Len() {
			t.Errorf("replica %d: timestamp graphs differ after round trip", i)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := ParseConfig([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParseConfig([]byte(`{"replicas": []}`)); err == nil {
		t.Error("empty replica list accepted")
	}
	cfg, err := ParseConfig([]byte(`{"replicas": [{"registers": ["a"]}, {"registers": ["a"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Assignment() != nil {
		t.Error("assignment should be nil without clients")
	}
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(Edge{0, 1}) {
		t.Error("edge missing after parse")
	}
}
