package transport

import "sync"

// BytePool recycles metadata buffers across the send→deliver cycle: a
// runtime's sink copies a node-owned Meta buffer through Copy when it
// retains an envelope, and returns the copy with Put once the message has
// been ingested at its destination. In steady state every Copy is served
// from a recycled buffer, so buffering envelopes costs no allocation.
//
// The zero value is ready to use. Safe for concurrent use.
type BytePool struct {
	mu   sync.Mutex
	bufs [][]byte
}

// maxPooled bounds the freelist so a burst of in-flight messages cannot
// pin memory forever; excess buffers fall to the garbage collector.
const maxPooled = 1024

// Copy returns a copy of b backed by a recycled buffer when one is
// available. Copy(nil) is nil.
func (p *BytePool) Copy(b []byte) []byte {
	if b == nil {
		return nil
	}
	p.mu.Lock()
	var buf []byte
	if n := len(p.bufs); n > 0 {
		buf = p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
	}
	p.mu.Unlock()
	return append(buf, b...)
}

// Put returns a buffer to the pool. Put(nil) and Put of zero-capacity
// buffers are no-ops.
func (p *BytePool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < maxPooled {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}
