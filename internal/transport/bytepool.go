package transport

import "sync"

// BytePool recycles byte buffers across produce→consume cycles: a
// runtime's sink copies a node-owned Meta buffer through Copy when it
// retains an envelope (or takes an empty buffer with Get to encode into),
// and returns the buffer with Put once the message has been consumed. In
// steady state every Copy/Get is served from a recycled buffer, so
// buffering envelopes — or encoding them onto the wire — costs no
// allocation.
//
// The pool also keeps a live-buffer balance: Copy and Get count a buffer
// out, Put counts it back in, and Live reports the difference. Leak
// checks assert Live() == 0 once a run has drained — a nonzero balance
// means some path took a pooled buffer and never returned it.
//
// The zero value is ready to use. Safe for concurrent use.
type BytePool struct {
	mu   sync.Mutex
	bufs [][]byte
	live int
}

// maxPooled bounds the freelist so a burst of in-flight messages cannot
// pin memory forever; excess buffers fall to the garbage collector.
const maxPooled = 1024

// minBufCap sizes fresh Get buffers; big enough for a typical encoded
// update frame so the first use does not immediately regrow.
const minBufCap = 256

// Copy returns a copy of b backed by a recycled buffer when one is
// available. Copy of a nil or empty slice returns b unchanged and does
// not count against the live balance (Put of a zero-capacity buffer is a
// no-op, so the two stay paired).
func (p *BytePool) Copy(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	p.mu.Lock()
	var buf []byte
	if n := len(p.bufs); n > 0 {
		buf = p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
	}
	p.live++
	p.mu.Unlock()
	return append(buf, b...)
}

// Get returns an empty buffer to append into: recycled when available,
// freshly allocated otherwise. Never nil; always counted in the live
// balance until returned with Put.
func (p *BytePool) Get() []byte {
	p.mu.Lock()
	var buf []byte
	if n := len(p.bufs); n > 0 {
		buf = p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
	}
	p.live++
	p.mu.Unlock()
	if buf == nil {
		buf = make([]byte, 0, minBufCap)
	}
	return buf
}

// Put returns a buffer to the pool. Put(nil) and Put of zero-capacity
// buffers are no-ops; a buffer that grew past the pool bound still counts
// as returned even though its memory falls to the garbage collector.
func (p *BytePool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	p.live--
	if len(p.bufs) < maxPooled {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}

// Live returns the number of buffers currently counted out of the pool:
// taken by Copy/Get and not yet returned by Put. Zero once every
// in-flight buffer has completed its cycle.
func (p *BytePool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}
