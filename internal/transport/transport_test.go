package transport

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestPoolOrderPreserved(t *testing.T) {
	var p Pool
	p.Add(core.Envelope{Val: 1}, core.Envelope{Val: 2}, core.Envelope{Val: 3})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.Take(1); got.Val != 2 {
		t.Errorf("Take(1) = %v, want Val 2", got.Val)
	}
	// Remaining order must be 1, 3.
	if p.Peek(0).Val != 1 || p.Peek(1).Val != 3 {
		t.Errorf("order broken: %v %v", p.Peek(0).Val, p.Peek(1).Val)
	}
}

// TestPoolMatchesReference differentially tests the hybrid pool against
// the obvious append-copy implementation under a random mix of adds and
// takes at arbitrary indexes: every Take must return the same message
// and leave the same relative order. A seed burst pushes the pool past
// the Fenwick threshold first, so the mixed phase drains down through
// the index-drop conversion and continues in shifting mode — both
// representations, both conversions, and both compactions are crossed
// while being checked step by step.
func TestPoolMatchesReference(t *testing.T) {
	var p Pool
	var ref []core.Envelope
	rng := rand.New(rand.NewSource(42))
	next := int64(0)
	for ; next < 3000; next++ {
		env := core.Envelope{Val: core.Value(next)}
		p.Add(env)
		ref = append(ref, env)
	}
	for op := 0; op < 20000; op++ {
		if p.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, reference %d", op, p.Len(), len(ref))
		}
		if len(ref) == 0 || rng.Intn(3) == 0 {
			burst := 1 + rng.Intn(3)
			for b := 0; b < burst; b++ {
				env := core.Envelope{Val: core.Value(next)}
				next++
				p.Add(env)
				ref = append(ref, env)
			}
			continue
		}
		// Bias picks toward the ends to exercise the O(1) paths and the
		// compaction trigger, with arbitrary middles mixed in.
		var idx int
		switch rng.Intn(4) {
		case 0:
			idx = 0
		case 1:
			idx = len(ref) - 1
		default:
			idx = rng.Intn(len(ref))
		}
		got := p.Take(idx)
		want := ref[idx]
		ref = append(ref[:idx], ref[idx+1:]...)
		if got.Val != want.Val {
			t.Fatalf("op %d: Take(%d) = %v, want %v", op, idx, got.Val, want.Val)
		}
		if len(ref) > 0 {
			spot := rng.Intn(len(ref))
			if p.Peek(spot).Val != ref[spot].Val {
				t.Fatalf("op %d: Peek(%d) = %v, want %v", op, spot, p.Peek(spot).Val, ref[spot].Val)
			}
		}
	}
}

// TestPoolFIFODrainCompacts drives the pure-FIFO pattern that builds the
// dead prefix and verifies draining to empty across compactions.
func TestPoolFIFODrainCompacts(t *testing.T) {
	var p Pool
	const total = 2000 // crosses into indexed mode and back out
	for i := 0; i < total; i++ {
		p.Add(core.Envelope{Val: core.Value(i)})
	}
	for i := 0; i < total; i++ {
		if got := p.Take(0); got.Val != core.Value(i) {
			t.Fatalf("Take #%d = %v", i, got.Val)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after drain", p.Len())
	}
	// Pool remains usable after full drain.
	p.Add(core.Envelope{Val: 999})
	if p.Len() != 1 || p.Take(0).Val != 999 {
		t.Fatal("pool unusable after drain")
	}
}

// TestPoolLIFODrainTrims drives the pure-LIFO pattern: every take hits
// the trailing-trim O(1) path and must keep the newest-live invariant.
func TestPoolLIFODrainTrims(t *testing.T) {
	var p Pool
	const total = 2000 // crosses into indexed mode and back out
	for i := 0; i < total; i++ {
		p.Add(core.Envelope{Val: core.Value(i)})
	}
	for i := total - 1; i >= 0; i-- {
		if got := p.Take(p.Len() - 1); got.Val != core.Value(i) {
			t.Fatalf("LIFO take = %v, want %v", got.Val, i)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after drain", p.Len())
	}
}

// TestPoolInteriorSelection forces the Fenwick rank-selection path: take
// the exact middle until empty, checking the returned message and the
// surviving order every step. Middle takes never touch the O(1) head and
// tail fast paths, so while the pool is indexed every removal exercises
// the tree walk, the tombstone bookkeeping, and compaction with a tree
// rebuild; the drain then crosses back into shifting mode and finishes
// on the memmove path.
func TestPoolInteriorSelection(t *testing.T) {
	var p Pool
	var ref []core.Envelope
	const total = 5000 // crosses several tree doublings on the way up
	for i := 0; i < total; i++ {
		env := core.Envelope{Val: core.Value(i)}
		p.Add(env)
		ref = append(ref, env)
	}
	for len(ref) > 0 {
		idx := len(ref) / 2
		got, want := p.Take(idx), ref[idx]
		ref = append(ref[:idx], ref[idx+1:]...)
		if got.Val != want.Val {
			t.Fatalf("Take(%d) = %v, want %v", idx, got.Val, want.Val)
		}
		if len(ref) > 0 {
			for _, spot := range []int{0, len(ref) / 4, len(ref) - 1} {
				if p.Peek(spot).Val != ref[spot].Val {
					t.Fatalf("Peek(%d) = %v, want %v", spot, p.Peek(spot).Val, ref[spot].Val)
				}
			}
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after drain", p.Len())
	}
}

// TestPoolShrinksAfterHighWater checks that a pool that once held many
// messages compacts its index down once the population collapses, then
// keeps behaving correctly at the small size.
func TestPoolShrinksAfterHighWater(t *testing.T) {
	var p Pool
	var ref []core.Envelope
	for i := 0; i < 4096; i++ {
		env := core.Envelope{Val: core.Value(i)}
		p.Add(env)
		ref = append(ref, env)
	}
	rng := rand.New(rand.NewSource(7))
	for p.Len() > 8 {
		idx := rng.Intn(len(ref))
		got, want := p.Take(idx), ref[idx]
		ref = append(ref[:idx], ref[idx+1:]...)
		if got.Val != want.Val {
			t.Fatalf("Take(%d) = %v, want %v", idx, got.Val, want.Val)
		}
	}
	if p.indexed || p.treeN != 0 {
		t.Errorf("indexed=%v treeN=%d after collapse to %d live, want index dropped", p.indexed, p.treeN, p.Len())
	}
	for i := 0; i < 100; i++ { // stays usable at the small size
		p.Add(core.Envelope{Val: core.Value(10000 + i)})
		ref = append(ref, core.Envelope{Val: core.Value(10000 + i)})
	}
	for len(ref) > 0 {
		idx := rng.Intn(len(ref))
		got, want := p.Take(idx), ref[idx]
		ref = append(ref[:idx], ref[idx+1:]...)
		if got.Val != want.Val {
			t.Fatalf("post-shrink Take(%d) = %v, want %v", idx, got.Val, want.Val)
		}
	}
}

func TestSchedulers(t *testing.T) {
	if (FIFOScheduler{}).Pick(5) != 0 {
		t.Error("FIFO should pick 0")
	}
	if (LIFOScheduler{}).Pick(5) != 4 {
		t.Error("LIFO should pick n-1")
	}
	r1, r2 := NewRandom(7), NewRandom(7)
	for i := 0; i < 100; i++ {
		if r1.Pick(10) != r2.Pick(10) {
			t.Fatal("random scheduler not deterministic per seed")
		}
	}
	for _, s := range []Scheduler{FIFOScheduler{}, LIFOScheduler{}, NewRandom(1), NewScripted(1)} {
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
		if got := s.Pick(1); got != 0 {
			t.Errorf("%s: Pick(1) = %d, want 0", s.Name(), got)
		}
	}
}

func TestScriptedScheduler(t *testing.T) {
	s := NewScripted(2, 99, -1)
	if got := s.Pick(5); got != 2 {
		t.Errorf("pick 1 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 2 { // 99 clamped to n-1
		t.Errorf("pick 2 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 0 { // -1 clamped to 0
		t.Errorf("pick 3 = %d, want 0", got)
	}
	if got := s.Pick(9); got != 0 { // exhausted → FIFO fallback
		t.Errorf("pick 4 = %d, want 0", got)
	}
}
