package transport

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestPoolOrderPreserved(t *testing.T) {
	var p Pool
	p.Add(core.Envelope{Val: 1}, core.Envelope{Val: 2}, core.Envelope{Val: 3})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.Take(1); got.Val != 2 {
		t.Errorf("Take(1) = %v, want Val 2", got.Val)
	}
	// Remaining order must be 1, 3.
	if p.Peek(0).Val != 1 || p.Peek(1).Val != 3 {
		t.Errorf("order broken: %v %v", p.Peek(0).Val, p.Peek(1).Val)
	}
}

// TestPoolMatchesReference differentially tests the head-indexed pool
// against the obvious append-copy implementation under a random mix of
// adds and takes at arbitrary indexes: every Take must return the same
// message and leave the same relative order, across compactions.
func TestPoolMatchesReference(t *testing.T) {
	var p Pool
	var ref []core.Envelope
	rng := rand.New(rand.NewSource(42))
	next := int64(0)
	for op := 0; op < 20000; op++ {
		if p.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, reference %d", op, p.Len(), len(ref))
		}
		if len(ref) == 0 || rng.Intn(3) == 0 {
			burst := 1 + rng.Intn(3)
			for b := 0; b < burst; b++ {
				env := core.Envelope{Val: core.Value(next)}
				next++
				p.Add(env)
				ref = append(ref, env)
			}
			continue
		}
		// Bias picks toward the ends to exercise the O(1) paths and the
		// compaction trigger, with arbitrary middles mixed in.
		var idx int
		switch rng.Intn(4) {
		case 0:
			idx = 0
		case 1:
			idx = len(ref) - 1
		default:
			idx = rng.Intn(len(ref))
		}
		got := p.Take(idx)
		want := ref[idx]
		ref = append(ref[:idx], ref[idx+1:]...)
		if got.Val != want.Val {
			t.Fatalf("op %d: Take(%d) = %v, want %v", op, idx, got.Val, want.Val)
		}
		if len(ref) > 0 {
			spot := rng.Intn(len(ref))
			if p.Peek(spot).Val != ref[spot].Val {
				t.Fatalf("op %d: Peek(%d) = %v, want %v", op, spot, p.Peek(spot).Val, ref[spot].Val)
			}
		}
	}
}

// TestPoolFIFODrainCompacts drives the pure-FIFO pattern that builds the
// dead prefix and verifies draining to empty across compactions.
func TestPoolFIFODrainCompacts(t *testing.T) {
	var p Pool
	const total = 500
	for i := 0; i < total; i++ {
		p.Add(core.Envelope{Val: core.Value(i)})
	}
	for i := 0; i < total; i++ {
		if got := p.Take(0); got.Val != core.Value(i) {
			t.Fatalf("Take #%d = %v", i, got.Val)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after drain", p.Len())
	}
	// Pool remains usable after full drain.
	p.Add(core.Envelope{Val: 999})
	if p.Len() != 1 || p.Take(0).Val != 999 {
		t.Fatal("pool unusable after drain")
	}
}

func TestSchedulers(t *testing.T) {
	if (FIFOScheduler{}).Pick(5) != 0 {
		t.Error("FIFO should pick 0")
	}
	if (LIFOScheduler{}).Pick(5) != 4 {
		t.Error("LIFO should pick n-1")
	}
	r1, r2 := NewRandom(7), NewRandom(7)
	for i := 0; i < 100; i++ {
		if r1.Pick(10) != r2.Pick(10) {
			t.Fatal("random scheduler not deterministic per seed")
		}
	}
	for _, s := range []Scheduler{FIFOScheduler{}, LIFOScheduler{}, NewRandom(1), NewScripted(1)} {
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
		if got := s.Pick(1); got != 0 {
			t.Errorf("%s: Pick(1) = %d, want 0", s.Name(), got)
		}
	}
}

func TestScriptedScheduler(t *testing.T) {
	s := NewScripted(2, 99, -1)
	if got := s.Pick(5); got != 2 {
		t.Errorf("pick 1 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 2 { // 99 clamped to n-1
		t.Errorf("pick 2 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 0 { // -1 clamped to 0
		t.Errorf("pick 3 = %d, want 0", got)
	}
	if got := s.Pick(9); got != 0 { // exhausted → FIFO fallback
		t.Errorf("pick 4 = %d, want 0", got)
	}
}
