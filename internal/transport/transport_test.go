package transport

import (
	"testing"

	"repro/internal/core"
)

func TestPoolOrderPreserved(t *testing.T) {
	var p Pool
	p.Add(core.Envelope{Val: 1}, core.Envelope{Val: 2}, core.Envelope{Val: 3})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.Take(1); got.Val != 2 {
		t.Errorf("Take(1) = %v, want Val 2", got.Val)
	}
	// Remaining order must be 1, 3.
	if p.Peek(0).Val != 1 || p.Peek(1).Val != 3 {
		t.Errorf("order broken: %v %v", p.Peek(0).Val, p.Peek(1).Val)
	}
}

func TestSchedulers(t *testing.T) {
	if (FIFOScheduler{}).Pick(5) != 0 {
		t.Error("FIFO should pick 0")
	}
	if (LIFOScheduler{}).Pick(5) != 4 {
		t.Error("LIFO should pick n-1")
	}
	r1, r2 := NewRandom(7), NewRandom(7)
	for i := 0; i < 100; i++ {
		if r1.Pick(10) != r2.Pick(10) {
			t.Fatal("random scheduler not deterministic per seed")
		}
	}
	for _, s := range []Scheduler{FIFOScheduler{}, LIFOScheduler{}, NewRandom(1), NewScripted(1)} {
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
		if got := s.Pick(1); got != 0 {
			t.Errorf("%s: Pick(1) = %d, want 0", s.Name(), got)
		}
	}
}

func TestScriptedScheduler(t *testing.T) {
	s := NewScripted(2, 99, -1)
	if got := s.Pick(5); got != 2 {
		t.Errorf("pick 1 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 2 { // 99 clamped to n-1
		t.Errorf("pick 2 = %d, want 2", got)
	}
	if got := s.Pick(3); got != 0 { // -1 clamped to 0
		t.Errorf("pick 3 = %d, want 0", got)
	}
	if got := s.Pick(9); got != 0 { // exhausted → FIFO fallback
		t.Errorf("pick 4 = %d, want 0", got)
	}
}
