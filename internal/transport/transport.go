// Package transport provides the simulated asynchronous network of the
// paper's system model (Section 2): reliable, point-to-point, and —
// crucially for the lower-bound arguments — NOT FIFO. In-flight messages
// live in a Pool; a Scheduler decides which one is delivered next, letting
// tests explore seeded-random and adversarial reorderings reproducibly.
package transport

import (
	"math/rand"

	"repro/internal/core"
)

// Pool is the multiset of in-flight messages. The zero value is ready to
// use. Pool is not safe for concurrent use; the deterministic runner owns
// it single-threaded.
//
// The representation is hybrid, switched by live population. Small pools
// (the steady state of every current experiment) keep messages in arrival
// order in one slice with a head index: Take shifts whichever side of the
// removal point is shorter, so the oldest (FIFO) and newest (LIFO) picks
// are O(1), a uniformly random pick moves at most half the live region,
// and memmove over a few hundred envelopes beats any index. Past indexOn
// live messages the pool converts to tombstones plus a Fenwick (binary
// indexed) tree over the alive flags, making the k-th-live lookup an
// O(log n) order-statistic selection with no element movement — random
// picks stop degrading as the in-flight population grows. Draining below
// indexOff converts back (the hysteresis gap prevents thrashing). Both
// representations and both conversions preserve relative message order
// bit-for-bit, so every scheduler sees exactly the ordering the original
// shifting implementation produced.
type Pool struct {
	// Shifting representation: the live region is msgs[head:], in arrival
	// order. In indexed mode the same slice holds live slots and
	// tombstones, and head points at the first live slot.
	msgs []core.Envelope
	head int

	// Fenwick representation, active when indexed is true.
	indexed bool
	alive   []bool
	// tree is a 1-based Fenwick tree of size treeN (a power of two ≥
	// len(msgs)) over the alive flags; tree[i] sums a dyadic block, so
	// prefix counts and rank selection walk O(log n) nodes.
	tree  []int32
	treeN int
	count int // live messages (indexed mode only)
}

const (
	// indexOn is the live population at which Add switches the pool to
	// the Fenwick representation; below it the shifting slice is faster
	// in both constants and cache behavior.
	indexOn = 1024
	// indexOff is the live population at which Take abandons the index
	// again. The gap to indexOn gives O(indexOn) takes between opposite
	// conversions, amortizing their O(live) cost away.
	indexOff = 256
)

// Add inserts messages into the pool.
func (p *Pool) Add(envs ...core.Envelope) {
	if !p.indexed {
		p.msgs = append(p.msgs, envs...)
		if len(p.msgs)-p.head >= indexOn {
			p.buildIndex()
		}
		return
	}
	for _, env := range envs {
		p.msgs = append(p.msgs, env)
		// Append dead, grow, then mark live: growTree rebuilds from the
		// alive flags, so the new entry must not be visible there or the
		// bump below would double-count it across a doubling.
		p.alive = append(p.alive, false)
		if len(p.msgs) > p.treeN {
			p.growTree()
		}
		p.alive[len(p.msgs)-1] = true
		p.bump(len(p.msgs), 1)
		p.count++
	}
}

// Len returns the number of in-flight messages.
func (p *Pool) Len() int {
	if p.indexed {
		return p.count
	}
	return len(p.msgs) - p.head
}

// Peek returns the message at index idx without removing it.
func (p *Pool) Peek(idx int) core.Envelope {
	if !p.indexed {
		return p.msgs[p.head+idx]
	}
	return p.msgs[p.locate(idx)]
}

// Take removes and returns the message at index idx. Removal preserves
// the relative order of the remaining messages, so FIFO scheduling over
// the pool really is per-arrival FIFO.
func (p *Pool) Take(idx int) core.Envelope {
	if !p.indexed {
		i := p.head + idx
		m := p.msgs[i]
		if i-p.head <= len(p.msgs)-1-i {
			// Shift the (shorter) prefix right; vacated slots are zeroed
			// so the pool does not pin delivered metadata buffers.
			copy(p.msgs[p.head+1:i+1], p.msgs[p.head:i])
			p.msgs[p.head] = core.Envelope{}
			p.head++
			if p.head > len(p.msgs)/2 && p.head >= 64 {
				p.compactShift()
			}
		} else {
			copy(p.msgs[i:], p.msgs[i+1:])
			p.msgs[len(p.msgs)-1] = core.Envelope{}
			p.msgs = p.msgs[:len(p.msgs)-1]
		}
		return m
	}
	i := p.locate(idx)
	m := p.msgs[i]
	// Zero the slot so the tombstone does not pin delivered metadata.
	p.msgs[i] = core.Envelope{}
	p.alive[i] = false
	p.bump(i+1, -1)
	p.count--
	if p.count <= indexOff {
		p.dropIndex()
		return m
	}
	for p.head < len(p.msgs) && !p.alive[p.head] {
		p.head++
	}
	// Trailing-trim invariant: the last slot is always live, so LIFO
	// picks are O(1) and re-appends reuse the popped indices (their tree
	// contributions are already zero).
	for n := len(p.msgs); n > 0 && !p.alive[n-1]; n = len(p.msgs) {
		p.msgs = p.msgs[:n-1]
		p.alive = p.alive[:n-1]
	}
	if len(p.msgs) >= 2*p.count {
		p.compact()
	}
	return m
}

// compactShift slides the shifting-mode live region back to the front of
// the backing array, reclaiming the dead prefix. Triggered only once the
// prefix dominates, its O(live) cost amortizes to O(1) per Take.
func (p *Pool) compactShift() {
	live := len(p.msgs) - p.head
	copy(p.msgs, p.msgs[p.head:])
	tail := p.msgs[live:]
	for j := range tail {
		tail[j] = core.Envelope{}
	}
	p.msgs = p.msgs[:live]
	p.head = 0
}

// buildIndex converts the pool to the Fenwick representation: the live
// region compacts to the slice front, every slot starts alive, and the
// tree is built over the flags.
func (p *Pool) buildIndex() {
	p.compactShift()
	n := len(p.msgs)
	p.count = n
	p.alive = make([]bool, n)
	for i := range p.alive {
		p.alive[i] = true
	}
	p.treeN = 64
	for p.treeN < n {
		p.treeN *= 2
	}
	p.tree = make([]int32, p.treeN+1)
	for i := 1; i <= n; i++ {
		p.bump(i, 1)
	}
	p.indexed = true
}

// dropIndex converts back to the shifting representation, squeezing out
// tombstones (order preserved) and releasing the index.
func (p *Pool) dropIndex() {
	j := 0
	for i := p.head; i < len(p.msgs); i++ {
		if p.alive[i] {
			p.msgs[j] = p.msgs[i]
			j++
		}
	}
	tail := p.msgs[j:]
	for i := range tail {
		tail[i] = core.Envelope{}
	}
	p.msgs = p.msgs[:j]
	p.head = 0
	p.alive = nil
	p.tree = nil
	p.treeN = 0
	p.count = 0
	p.indexed = false
}

// locate maps a live-rank index to its slot in indexed mode: O(1) for
// the oldest (head pointer) and newest (trailing-trim invariant)
// messages, Fenwick rank selection for interior picks.
func (p *Pool) locate(idx int) int {
	switch idx {
	case 0:
		return p.head
	case p.count - 1:
		return len(p.msgs) - 1
	}
	// Select the smallest slot position whose alive-prefix count reaches
	// idx+1 by walking the tree's implicit binary trie top-down.
	rem := int32(idx + 1)
	pos := 0
	for bit := p.treeN; bit > 0; bit >>= 1 {
		if next := pos + bit; next <= p.treeN && p.tree[next] < rem {
			pos = next
			rem -= p.tree[next]
		}
	}
	return pos // 0-based: prefix(pos) < idx+1 ≤ prefix(pos+1)
}

// bump adds delta to the alive count at 1-based slot position i.
func (p *Pool) bump(i int, delta int32) {
	for ; i <= p.treeN; i += i & -i {
		p.tree[i] += delta
	}
}

// growTree doubles the Fenwick capacity and rebuilds it from the alive
// flags. Doubling makes the O(n log n) rebuild amortized O(log n) per
// Add.
func (p *Pool) growTree() {
	p.treeN = max(64, p.treeN*2)
	for p.treeN < len(p.msgs) {
		p.treeN *= 2
	}
	p.tree = make([]int32, p.treeN+1)
	for i, a := range p.alive {
		if a {
			p.bump(i+1, 1)
		}
	}
}

// compact rewrites the slice with only live messages (order preserved)
// and rebuilds the tree. Triggered only once tombstones dominate, its
// cost amortizes away.
func (p *Pool) compact() {
	j := 0
	for i := p.head; i < len(p.msgs); i++ {
		if p.alive[i] {
			p.msgs[j] = p.msgs[i]
			j++
		}
	}
	tail := p.msgs[j:]
	for i := range tail {
		tail[i] = core.Envelope{}
	}
	p.msgs = p.msgs[:j]
	p.alive = p.alive[:j]
	for i := range p.alive {
		p.alive[i] = true
	}
	p.head = 0
	// Re-size the tree to the live region (a long-shrunk pool should not
	// keep paying for its high-water mark on every compaction).
	p.treeN = 64
	for p.treeN < j {
		p.treeN *= 2
	}
	p.tree = make([]int32, p.treeN+1)
	for i := 1; i <= j; i++ {
		p.bump(i, 1)
	}
}

// Scheduler picks which of n pending choices happens next. Implementations
// must be deterministic given their construction parameters.
type Scheduler interface {
	// Pick returns an index in [0, n). n ≥ 1.
	Pick(n int) int
	// Name identifies the schedule in experiment output.
	Name() string
}

// RandomScheduler delivers uniformly at random from a seeded PRNG —
// the workhorse reordering adversary.
type RandomScheduler struct {
	rng *rand.Rand
}

var _ Scheduler = (*RandomScheduler)(nil)

// NewRandom builds a seeded random scheduler.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(n int) int { return s.rng.Intn(n) }

// Name implements Scheduler.
func (s *RandomScheduler) Name() string { return "random" }

// FIFOScheduler always delivers the oldest choice — the most benign
// schedule (per-channel FIFO and op order preserved).
type FIFOScheduler struct{}

var _ Scheduler = FIFOScheduler{}

// Pick implements Scheduler.
func (FIFOScheduler) Pick(int) int { return 0 }

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// ScriptedScheduler replays a fixed pick sequence, then falls back to
// FIFO. Picks out of range are clamped to the newest choice. It drives the
// precisely staged executions of the Theorem 8 necessity experiments.
type ScriptedScheduler struct {
	picks []int
	pos   int
}

var _ Scheduler = (*ScriptedScheduler)(nil)

// NewScripted builds a scheduler replaying picks.
func NewScripted(picks ...int) *ScriptedScheduler {
	return &ScriptedScheduler{picks: picks}
}

// Pick implements Scheduler.
func (s *ScriptedScheduler) Pick(n int) int {
	if s.pos >= len(s.picks) {
		return 0
	}
	p := s.picks[s.pos]
	s.pos++
	if p >= n {
		p = n - 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Name implements Scheduler.
func (s *ScriptedScheduler) Name() string { return "scripted" }

// LIFOScheduler always delivers the newest choice, maximally reversing
// per-channel order — the adversary used by the Theorem 8 necessity
// executions, which rely on a later message overtaking an earlier one.
type LIFOScheduler struct{}

var _ Scheduler = LIFOScheduler{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(n int) int { return n - 1 }

// Name implements Scheduler.
func (LIFOScheduler) Name() string { return "lifo" }
