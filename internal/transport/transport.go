// Package transport provides the simulated asynchronous network of the
// paper's system model (Section 2): reliable, point-to-point, and —
// crucially for the lower-bound arguments — NOT FIFO. In-flight messages
// live in a Pool; a Scheduler decides which one is delivered next, letting
// tests explore seeded-random and adversarial reorderings reproducibly.
package transport

import (
	"math/rand"

	"repro/internal/core"
)

// Pool is the multiset of in-flight messages. The zero value is ready to
// use. Pool is not safe for concurrent use; the deterministic runner owns
// it single-threaded.
//
// Messages live in arrival order in one slice with a head index; Take
// shifts whichever side of the removal point is shorter, so taking the
// oldest message (FIFO schedules) or the newest (LIFO schedules) is O(1)
// and a uniformly random pick moves at most half the live region. The
// dead prefix left by head removals is reclaimed by amortized O(1)
// compaction. Relative message order is preserved bit-for-bit, so every
// scheduler sees exactly the ordering the previous append-copy
// implementation produced.
type Pool struct {
	msgs []core.Envelope
	head int
}

// Add inserts messages into the pool.
func (p *Pool) Add(envs ...core.Envelope) {
	p.msgs = append(p.msgs, envs...)
}

// Len returns the number of in-flight messages.
func (p *Pool) Len() int { return len(p.msgs) - p.head }

// Peek returns the message at index idx without removing it.
func (p *Pool) Peek(idx int) core.Envelope { return p.msgs[p.head+idx] }

// Take removes and returns the message at index idx. Removal preserves
// the relative order of the remaining messages, so FIFO scheduling over
// the pool really is per-arrival FIFO.
func (p *Pool) Take(idx int) core.Envelope {
	i := p.head + idx
	m := p.msgs[i]
	if i-p.head <= len(p.msgs)-1-i {
		// Shift the (shorter) prefix right; vacated slots are zeroed so
		// the pool does not pin delivered metadata buffers.
		copy(p.msgs[p.head+1:i+1], p.msgs[p.head:i])
		p.msgs[p.head] = core.Envelope{}
		p.head++
		if p.head > len(p.msgs)/2 && p.head >= 64 {
			p.compact()
		}
	} else {
		copy(p.msgs[i:], p.msgs[i+1:])
		p.msgs[len(p.msgs)-1] = core.Envelope{}
		p.msgs = p.msgs[:len(p.msgs)-1]
	}
	return m
}

// compact slides the live region back to the front of the backing array,
// reclaiming the dead prefix. Triggered only once the prefix dominates,
// its O(live) cost amortizes to O(1) per Take.
func (p *Pool) compact() {
	live := len(p.msgs) - p.head
	copy(p.msgs, p.msgs[p.head:])
	tail := p.msgs[live:]
	for j := range tail {
		tail[j] = core.Envelope{}
	}
	p.msgs = p.msgs[:live]
	p.head = 0
}

// Scheduler picks which of n pending choices happens next. Implementations
// must be deterministic given their construction parameters.
type Scheduler interface {
	// Pick returns an index in [0, n). n ≥ 1.
	Pick(n int) int
	// Name identifies the schedule in experiment output.
	Name() string
}

// RandomScheduler delivers uniformly at random from a seeded PRNG —
// the workhorse reordering adversary.
type RandomScheduler struct {
	rng *rand.Rand
}

var _ Scheduler = (*RandomScheduler)(nil)

// NewRandom builds a seeded random scheduler.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(n int) int { return s.rng.Intn(n) }

// Name implements Scheduler.
func (s *RandomScheduler) Name() string { return "random" }

// FIFOScheduler always delivers the oldest choice — the most benign
// schedule (per-channel FIFO and op order preserved).
type FIFOScheduler struct{}

var _ Scheduler = FIFOScheduler{}

// Pick implements Scheduler.
func (FIFOScheduler) Pick(int) int { return 0 }

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// ScriptedScheduler replays a fixed pick sequence, then falls back to
// FIFO. Picks out of range are clamped to the newest choice. It drives the
// precisely staged executions of the Theorem 8 necessity experiments.
type ScriptedScheduler struct {
	picks []int
	pos   int
}

var _ Scheduler = (*ScriptedScheduler)(nil)

// NewScripted builds a scheduler replaying picks.
func NewScripted(picks ...int) *ScriptedScheduler {
	return &ScriptedScheduler{picks: picks}
}

// Pick implements Scheduler.
func (s *ScriptedScheduler) Pick(n int) int {
	if s.pos >= len(s.picks) {
		return 0
	}
	p := s.picks[s.pos]
	s.pos++
	if p >= n {
		p = n - 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Name implements Scheduler.
func (s *ScriptedScheduler) Name() string { return "scripted" }

// LIFOScheduler always delivers the newest choice, maximally reversing
// per-channel order — the adversary used by the Theorem 8 necessity
// executions, which rely on a later message overtaking an earlier one.
type LIFOScheduler struct{}

var _ Scheduler = LIFOScheduler{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(n int) int { return n - 1 }

// Name implements Scheduler.
func (LIFOScheduler) Name() string { return "lifo" }
