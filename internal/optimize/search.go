package optimize

import (
	"fmt"
	"math/rand"

	"repro/internal/lowerbound"
	"repro/internal/sharegraph"
)

// SearchOptions tunes the placement search.
type SearchOptions struct {
	// Seed drives every random choice (restart starting points, move
	// order). The same seed on the same graph yields the same result.
	Seed int64
	// Restarts is the number of hill-climb starts beyond the identity
	// placement; each restart begins from a random broken subset.
	// Default 3.
	Restarts int
	// MaxEvals caps total candidate evaluations (each evaluation builds
	// the effective graph's timestamp graphs — the expensive step).
	// Default 64; 0 means the default, negative means unlimited.
	MaxEvals int
	// MaxBroken caps how many registers one placement may break (0 =
	// unlimited). Each break trades timestamp entries for relay latency,
	// so deployments may want to bound the damage.
	MaxBroken int
	// EdgeWeight optionally prices the base edge between two replicas
	// (e.g. an observed latency EWMA). When set, every tracked timestamp
	// entry costs 1 + normalized weight of the edge it tracks instead of
	// 1, steering breaks toward cycles whose edges are slow. Weights are
	// normalized by the maximum over base edges, so the score stays
	// within 2× of the entry count and entry reductions dominate.
	EdgeWeight func(i, j sharegraph.ReplicaID) float64
	// CheckBound, when set, computes the Section 4 lower bound for each
	// replica of the result's effective graph (skipping replicas whose
	// timestamp graphs exceed boundEntryCap entries — the family is
	// exponential in |E_i|).
	CheckBound bool
	// BoundM is the per-edge count range m for CheckBound. Default 2.
	BoundM int
}

// boundEntryCap bounds the per-replica timestamp-graph size for which
// CheckBound enumerates the conflict family (m^|E_i| members).
const boundEntryCap = 16

// SearchResult reports the best placement found.
type SearchResult struct {
	Placement *Placement
	Effective *sharegraph.Graph
	// BaseEntries and Entries are the total tracked timestamp entries
	// (Σ_i |E_i|) before and after; Entries < BaseEntries whenever the
	// search found any improving move.
	BaseEntries int
	Entries     int
	// Score is the weighted objective of the winner (equals Entries plus
	// a sub-1 break penalty when EdgeWeight is nil).
	Score float64
	// Evals is how many candidate placements were scored.
	Evals int
	// Bounds holds the per-replica lower bounds of the effective graph
	// when CheckBound was set (skipped replicas are omitted).
	Bounds []lowerbound.Bound
}

// Tight reports whether every computed lower bound matches the
// algorithm's entry count (vacuously true when CheckBound was off or
// all replicas were skipped).
func (r *SearchResult) Tight() bool {
	for _, b := range r.Bounds {
		if !b.Tight() {
			return false
		}
	}
	return true
}

// Search runs seeded local search over placements of g: hill-climbing
// with random restarts, where a move breaks one more register (relaying
// it along a route built over the surviving edges) or un-breaks one.
// Candidates are scored by rebuilding the effective graph's timestamp
// graphs and summing tracked entries, optionally weighted per edge; the
// placement with the lowest score wins. The identity placement is always
// a candidate, so the result is never worse than the input.
func Search(g *sharegraph.Graph, opts SearchOptions) (*SearchResult, error) {
	if g == nil {
		return nil, fmt.Errorf("optimize: nil graph")
	}
	if opts.Restarts == 0 {
		opts.Restarts = 3
	}
	if opts.MaxEvals == 0 {
		opts.MaxEvals = 64
	}
	if opts.BoundM == 0 {
		opts.BoundM = 2
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	regs := g.Registers()

	weight := func(*sharegraph.Graph) func(sharegraph.Edge) float64 {
		return func(sharegraph.Edge) float64 { return 1 }
	}
	if opts.EdgeWeight != nil {
		max := 0.0
		for _, e := range g.Edges() {
			if w := opts.EdgeWeight(e.From, e.To); w > max {
				max = w
			}
		}
		weight = func(eff *sharegraph.Graph) func(sharegraph.Edge) float64 {
			return func(e sharegraph.Edge) float64 {
				if max <= 0 {
					return 1
				}
				w := opts.EdgeWeight(e.From, e.To)
				if w < 0 {
					w = 0
				}
				return 1 + w/max
			}
		}
	}
	// Breaking a register is never free operationally (relay latency), so
	// ties in entry count prefer fewer breaks: each break costs under
	// 1/(2·|registers|) — the total penalty stays below ½ and can never
	// outvote a whole-entry improvement.
	breakPenalty := 1.0 / float64(2*(len(regs)+1))

	evals := 0
	score := func(p *Placement) (float64, int, bool) {
		if opts.MaxEvals > 0 && evals >= opts.MaxEvals {
			return 0, 0, false
		}
		evals++
		eff, err := p.EffectiveGraph()
		if err != nil {
			return 0, 0, false
		}
		w := weight(eff)
		entries := 0
		total := 0.0
		for _, tsg := range sharegraph.BuildAllTSGraphs(eff, sharegraph.LoopOptions{}) {
			entries += tsg.Len()
			for _, e := range tsg.Edges() {
				total += w(e)
			}
		}
		return total + breakPenalty*float64(len(p.Broken)), entries, true
	}

	best := NewPlacement(g)
	bestScore, bestEntries, ok := score(best)
	if !ok {
		return nil, fmt.Errorf("optimize: could not score the identity placement")
	}
	baseEntries := bestEntries

	// climb improves p by first-improvement hill-climbing until a full
	// pass finds no improving move or the evaluation budget runs out.
	climb := func(p *Placement, s float64, entries int) (*Placement, float64, int) {
		for {
			improved := false
			order := rng.Perm(len(regs))
			for _, ri := range order {
				x := regs[ri]
				var cand *Placement
				if _, broken := p.Broken[x]; broken {
					cand = p.Clone()
					delete(cand.Broken, x)
				} else {
					if opts.MaxBroken > 0 && len(p.Broken) >= opts.MaxBroken {
						continue
					}
					route, routeOK := p.buildRoute(x)
					if !routeOK {
						continue
					}
					cand = p.Clone()
					cand.Broken[x] = route
				}
				cs, ce, scored := score(cand)
				if !scored {
					return p, s, entries
				}
				if cs < s {
					p, s, entries = cand, cs, ce
					improved = true
					break
				}
			}
			if !improved {
				return p, s, entries
			}
		}
	}

	start := best
	startScore, startEntries := bestScore, bestEntries
	for r := 0; r <= opts.Restarts; r++ {
		if r > 0 {
			// Random restart: break a random subset to escape the local
			// optimum the greedy pass settled into.
			p := NewPlacement(g)
			for _, x := range regs {
				if opts.MaxBroken > 0 && len(p.Broken) >= opts.MaxBroken {
					break
				}
				if rng.Intn(3) != 0 {
					continue
				}
				if route, routeOK := p.buildRoute(x); routeOK {
					p.Broken[x] = route
				}
			}
			s, e, scored := score(p)
			if !scored {
				break
			}
			start, startScore, startEntries = p, s, e
		}
		p, s, e := climb(start, startScore, startEntries)
		if s < bestScore {
			best, bestScore, bestEntries = p, s, e
		}
		if opts.MaxEvals > 0 && evals >= opts.MaxEvals {
			break
		}
	}

	eff, err := best.EffectiveGraph()
	if err != nil {
		return nil, err
	}
	res := &SearchResult{
		Placement:   best,
		Effective:   eff,
		BaseEntries: baseEntries,
		Entries:     bestEntries,
		Score:       bestScore,
		Evals:       evals,
	}
	if opts.CheckBound {
		for _, tsg := range sharegraph.BuildAllTSGraphs(eff, sharegraph.LoopOptions{}) {
			if tsg.Len() > boundEntryCap {
				continue
			}
			res.Bounds = append(res.Bounds, lowerbound.ComputeBound(eff, tsg.Owner, opts.BoundM))
		}
	}
	return res, nil
}
