package optimize

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// RingBreak implements the Figure 13 optimization: on an n-replica ring,
// direct communication between replicas 0 and n−1 is disallowed, turning
// the share graph into a path. Updates to their shared register are
// relayed hop-by-hop as writes to virtual registers (never client
// accessed), with the final hop materializing the value. Per-replica
// timestamps shrink from 2n counters (every replica tracks the whole
// cycle) to at most 4 (a path has no loops); the relayed register pays
// n−1 message hops of latency.
type RingBreak struct {
	base   *sharegraph.Graph
	n      int
	broken sharegraph.Register
	line   *sharegraph.Graph
	space  *timestamp.Space
	diag   *core.Diag
}

var (
	_ core.Protocol     = (*RingBreak)(nil)
	_ core.DiagSettable = (*RingBreak)(nil)
)

// SetDiag implements core.DiagSettable.
func (p *RingBreak) SetDiag(d *core.Diag) { p.diag = d }

// BreakRing builds the broken-ring protocol over sharegraph.Ring(n). The
// register shared by replicas 0 and n−1 ("ring<n-1>") becomes the relayed
// register.
func BreakRing(n int) (*RingBreak, error) {
	if n < 3 {
		return nil, fmt.Errorf("optimize: ring break needs n >= 3, got %d", n)
	}
	base := sharegraph.Ring(n)
	broken := sharegraph.Register(fmt.Sprintf("ring%d", n-1))
	stores := make([]sharegraph.RegisterSet, n)
	for i := 0; i < n; i++ {
		s := base.Stores(sharegraph.ReplicaID(i)).Clone()
		delete(s, broken)
		stores[i] = s
	}
	for i := 0; i < n-1; i++ {
		vr := relayRegister(i)
		stores[i].Add(vr)
		stores[i+1].Add(vr)
	}
	line, err := sharegraph.NewFromSets(stores)
	if err != nil {
		return nil, fmt.Errorf("optimize: line graph: %w", err)
	}
	space, err := timestamp.NewSpace(line, sharegraph.BuildAllTSGraphs(line, sharegraph.LoopOptions{}))
	if err != nil {
		return nil, fmt.Errorf("optimize: line space: %w", err)
	}
	return &RingBreak{base: base, n: n, broken: broken, line: line, space: space}, nil
}

// relayRegister names the virtual register carrying relayed updates over
// the path edge (i, i+1).
func relayRegister(i int) sharegraph.Register {
	return sharegraph.Register(fmt.Sprintf("__relay%d", i))
}

// Base returns the original ring share graph (the oracle's view).
func (p *RingBreak) Base() *sharegraph.Graph { return p.base }

// Line returns the broken (path) share graph the timestamps run over.
func (p *RingBreak) Line() *sharegraph.Graph { return p.line }

// Broken returns the relayed register.
func (p *RingBreak) Broken() sharegraph.Register { return p.broken }

// Name implements core.Protocol.
func (p *RingBreak) Name() string { return "ring-break" }

// NewNodes implements core.Protocol.
func (p *RingBreak) NewNodes() ([]core.Node, error) {
	nodes := make([]core.Node, p.n)
	for i := range nodes {
		id := sharegraph.ReplicaID(i)
		nodes[i] = &relayNode{
			p:     p,
			id:    id,
			τ:     p.space.Zero(id),
			store: make(map[sharegraph.Register]core.Value),
		}
	}
	return nodes, nil
}

type relayPending struct {
	from     sharegraph.ReplicaID
	ts       timestamp.Vec
	reg      sharegraph.Register
	val      core.Value
	oracleID causality.UpdateID
}

// relayNode runs the edge-indexed machinery over the path graph and
// relays broken-register updates hop by hop.
type relayNode struct {
	p       *RingBreak
	id      sharegraph.ReplicaID
	τ       timestamp.Vec
	store   map[sharegraph.Register]core.Value
	pending []relayPending
}

var _ core.Node = (*relayNode)(nil)

func (n *relayNode) ID() sharegraph.ReplicaID { return n.id }

func (n *relayNode) HandleWrite(x sharegraph.Register, v core.Value, id causality.UpdateID, out core.Sink) error {
	if !n.p.base.StoresRegister(n.id, x) {
		return &core.NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	if x == n.p.broken {
		// Only replicas 0 and n−1 store the broken register; relay toward
		// the far end.
		next := sharegraph.ReplicaID(1)
		if n.id == sharegraph.ReplicaID(n.p.n-1) {
			next = sharegraph.ReplicaID(n.p.n - 2)
		}
		out.Emit(n.relayEnvelope(next, v, id))
		return nil
	}
	n.τ = n.p.space.Advance(n.id, n.τ, x)
	meta := timestamp.Encode(n.τ)
	for _, k := range n.p.line.UpdateRecipients(n.id, x) {
		out.Emit(core.Envelope{
			From: n.id, To: k, Reg: x, Val: v, Meta: meta, OracleID: id,
		})
	}
	return nil
}

// relayEnvelope advances the timestamp on the virtual register of the hop
// (n.id → to) and builds the hop message.
func (n *relayNode) relayEnvelope(to sharegraph.ReplicaID, v core.Value, id causality.UpdateID) core.Envelope {
	lo := n.id
	if to < lo {
		lo = to
	}
	vr := relayRegister(int(lo))
	n.τ = n.p.space.Advance(n.id, n.τ, vr)
	return core.Envelope{
		From: n.id, To: to, Reg: vr, Val: v,
		Meta: timestamp.Encode(n.τ), OracleID: id,
	}
}

func (n *relayNode) HandleMessage(env core.Envelope, out core.Sink) []core.Applied {
	ts, err := timestamp.Decode(env.Meta)
	if err != nil {
		n.p.diag.Dropf(n.id, "ring-break: replica %d dropping corrupt metadata from %d: %v", n.id, env.From, err)
		return nil
	}
	// The drain indexes the space's per-sender plans by From; an
	// out-of-range sender or a wrong-length vector is harness corruption
	// that must be dropped, not dereferenced.
	if int(env.From) < 0 || int(env.From) >= n.p.space.NumReplicas() {
		n.p.diag.Dropf(n.id, "ring-break: replica %d dropping update from invalid sender %d", n.id, env.From)
		return nil
	}
	if len(ts) != n.p.space.Len(env.From) {
		n.p.diag.Dropf(n.id, "ring-break: replica %d dropping update from %d with %d-entry timestamp, want %d",
			n.id, env.From, len(ts), n.p.space.Len(env.From))
		return nil
	}
	n.pending = append(n.pending, relayPending{
		from: env.From, ts: ts, reg: env.Reg, val: env.Val, oracleID: env.OracleID,
	})
	return n.drain(out)
}

func (n *relayNode) drain(out core.Sink) []core.Applied {
	var applied []core.Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if stalePending(n.p.space, n.id, n.τ, u.from, u.ts) {
				// A fault-injected duplicate of an already-applied update:
				// the gate only grows, so predicate J can never admit it
				// again. Drop it so chaos duplicates cannot accumulate as
				// dead pendings — and, on the relay path, cannot
				// double-forward after a replay.
				n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
				idx--
				continue
			}
			if !n.p.space.Deliverable(n.id, n.τ, u.from, u.ts) {
				continue
			}
			n.p.space.MergeInPlace(n.id, n.τ, u.from, u.ts)
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			switch {
			case isRelayRegister(u.reg):
				// A relayed broken-register update.
				if n.id == 0 || int(n.id) == n.p.n-1 {
					// Terminal hop: materialize the value.
					n.store[n.p.broken] = u.val
					applied = append(applied, core.Applied{
						OracleID: u.oracleID, From: u.from, Reg: n.p.broken, Val: u.val,
					})
				} else {
					next := 2*n.id - u.from // keep moving away from the sender
					out.Emit(n.relayEnvelope(next, u.val, u.oracleID))
				}
			default:
				n.store[u.reg] = u.val
				applied = append(applied, core.Applied{
					OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
				})
			}
			progress = true
			idx--
		}
		if !progress {
			return applied
		}
	}
}

func (n *relayNode) Read(x sharegraph.Register) (core.Value, bool) {
	if !n.p.base.StoresRegister(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *relayNode) PendingCount() int { return len(n.pending) }

func (n *relayNode) PendingOracleIDs() []causality.UpdateID {
	out := make([]causality.UpdateID, 0, len(n.pending))
	for _, u := range n.pending {
		// In-transit relays are protocol-internal: the update is not yet
		// "at" this replica in the oracle's model, so it cannot be a false
		// dependency here.
		if !isRelayRegister(u.reg) {
			out = append(out, u.oracleID)
		}
	}
	return out
}

func isRelayRegister(x sharegraph.Register) bool {
	return len(x) > 7 && x[:7] == "__relay"
}

func (n *relayNode) MetadataEntries() int { return len(n.τ) }

var _ core.LivePendingCounter = (*relayNode)(nil)

// LivePending implements core.LivePendingCounter. The drain drops stale
// duplicates eagerly, so the buffer is live by construction; the filter
// here re-applies the same rule defensively.
func (n *relayNode) LivePending() int {
	live := 0
	for _, u := range n.pending {
		if !stalePending(n.p.space, n.id, n.τ, u.from, u.ts) {
			live++
		}
	}
	return live
}

// stalePending reports whether a buffered update's sequence number on the
// tracked edge (from → i) is already at or below the receiver's gate
// counter: predicate J requires strict equality with gate+1 and the gate
// only grows, so such an update can never be delivered. Untracked edges
// (no SeqPos) never report stale.
func stalePending(s *timestamp.Space, i sharegraph.ReplicaID, τ timestamp.Vec, from sharegraph.ReplicaID, ts timestamp.Vec) bool {
	sp, ok := s.SeqPos(i, from)
	if !ok {
		return false
	}
	gp, _ := s.GatePos(i, from)
	return ts[sp] <= τ[gp]
}

var _ core.Snapshotter = (*relayNode)(nil)

// Snapshot implements core.Snapshotter, making the relay protocol
// crash/restartable under the fault layer.
func (n *relayNode) Snapshot() *core.NodeCheckpoint {
	ck := &core.NodeCheckpoint{
		Replica: n.id,
		Tau:     n.τ.Clone(),
		Store:   make(map[sharegraph.Register]core.Value, len(n.store)),
	}
	for x, v := range n.store {
		ck.Store[x] = v
	}
	for _, u := range n.pending {
		ck.Pending = append(ck.Pending, core.Envelope{
			From: u.from, To: n.id, Reg: u.reg, Val: u.val,
			Meta: timestamp.Encode(u.ts), OracleID: u.oracleID,
		})
	}
	return ck
}

// Install implements core.Snapshotter. Pendings re-file through
// HandleMessage with a discard sink: they were undeliverable at snapshot
// time and the restored τ is identical, so determinism keeps them
// buffered and nothing is re-emitted.
func (n *relayNode) Install(ck *core.NodeCheckpoint) ([]core.Applied, error) {
	if ck == nil {
		return nil, fmt.Errorf("optimize: nil checkpoint")
	}
	if ck.Replica != n.id {
		return nil, fmt.Errorf("optimize: checkpoint of replica %d installed at %d", ck.Replica, n.id)
	}
	switch {
	case ck.Tau == nil:
		// Store-only checkpoint (live reconfiguration onto a new
		// timestamp space): keep the fresh zero vector.
		for i := range n.τ {
			n.τ[i] = 0
		}
	case len(ck.Tau) != len(n.τ):
		return nil, fmt.Errorf("optimize: checkpoint has %d timestamp entries, node tracks %d — different timestamp graphs",
			len(ck.Tau), len(n.τ))
	default:
		copy(n.τ, ck.Tau)
	}
	n.store = make(map[sharegraph.Register]core.Value, len(ck.Store))
	for x, v := range ck.Store {
		n.store[x] = v
	}
	n.pending = nil
	var out []core.Applied
	for _, env := range ck.Pending {
		out = append(out, n.HandleMessage(env, core.DiscardSink{})...)
	}
	return out, nil
}
