package optimize

import (
	"testing"

	"repro/internal/sharegraph"
)

// FuzzPlacementMove drives random break/un-break move sequences over
// random topologies and checks the search's core invariant: every move
// buildRoute accepts yields a placement that validates — the route is a
// simple path visiting all holders, and the effective graph round-trips
// through NewFromSets connected. A violation here would let the search
// hand a disconnected or malformed graph to the timestamp machinery.
func FuzzPlacementMove(f *testing.F) {
	f.Add(int64(7), uint8(8), []byte{0, 1, 2, 0})
	f.Add(int64(3), uint8(5), []byte{4, 4, 4})
	f.Add(int64(11), uint8(12), []byte{9, 0, 9, 3, 1})
	f.Fuzz(func(t *testing.T, seed int64, size uint8, ops []byte) {
		n := int(size%14) + 3
		var g *sharegraph.Graph
		if seed%2 == 0 {
			g = sharegraph.Ring(n)
		} else {
			g = sharegraph.RandomK(n, 3*n, 3, seed)
		}
		regs := g.Registers()
		if len(regs) == 0 {
			return
		}
		p := NewPlacement(g)
		for _, op := range ops {
			x := regs[int(op)%len(regs)]
			if _, broken := p.Broken[x]; broken {
				delete(p.Broken, x)
			} else {
				route, ok := p.buildRoute(x)
				if !ok {
					continue
				}
				p.Broken[x] = route
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted move broke the placement invariant: %v (broken=%v)",
					err, p.BrokenRegisters())
			}
			eff, err := p.EffectiveGraph()
			if err != nil {
				t.Fatalf("effective graph: %v", err)
			}
			if !eff.Connected() {
				t.Fatalf("effective graph disconnected with broken=%v", p.BrokenRegisters())
			}
		}
	})
}
