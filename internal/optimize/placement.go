package optimize

import (
	"fmt"
	"sort"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// Route is a simple path of replicas relaying one broken register: it
// visits every holder of the register, consecutive route members share a
// virtual hop register, and updates travel hop by hop in both directions
// from the writer. The Figure 13 ring break is the special case of one
// register routed the long way around the cycle.
type Route []sharegraph.ReplicaID

// Placement is a candidate optimization of a base share graph: a set of
// "broken" registers, each replaced by a relay route. Breaking a register
// removes its share-graph edges (the holders no longer exchange it
// directly) and adds the route's hop edges instead — a placement search
// move that can only sparsify cycles, never invent replica pairs that
// share data, because routes are constrained to edges the remaining
// registers already support.
//
// The zero set of broken registers is the identity placement: the
// effective graph equals the base graph.
type Placement struct {
	Base   *sharegraph.Graph
	Broken map[sharegraph.Register]Route
}

// NewPlacement returns the identity placement over base.
func NewPlacement(base *sharegraph.Graph) *Placement {
	return &Placement{Base: base, Broken: make(map[sharegraph.Register]Route)}
}

// Clone deep-copies the placement (the base graph is shared, immutable).
func (p *Placement) Clone() *Placement {
	q := &Placement{Base: p.Base, Broken: make(map[sharegraph.Register]Route, len(p.Broken))}
	for x, r := range p.Broken {
		q.Broken[x] = append(Route(nil), r...)
	}
	return q
}

// hopRegister names the virtual register carrying relayed updates of x
// over route hop h (between route[h] and route[h+1]). The "__relay"
// prefix keeps hop registers out of oracle liveness accounting (they are
// protocol-internal, never client-accessible).
func hopRegister(x sharegraph.Register, h int) sharegraph.Register {
	return sharegraph.Register(fmt.Sprintf("__relay/%s/%d", x, h))
}

// EffectiveGraph materializes the share graph the timestamps run over:
// the base placement with every broken register removed and its route's
// hop registers added. Fails if the result is not a valid connected
// share graph.
func (p *Placement) EffectiveGraph() (*sharegraph.Graph, error) {
	n := p.Base.NumReplicas()
	stores := make([]sharegraph.RegisterSet, n)
	for i := 0; i < n; i++ {
		stores[i] = p.Base.Stores(sharegraph.ReplicaID(i)).Clone()
	}
	for x, route := range p.Broken {
		for i := range stores {
			delete(stores[i], x)
		}
		for h := 0; h+1 < len(route); h++ {
			vr := hopRegister(x, h)
			stores[route[h]].Add(vr)
			stores[route[h+1]].Add(vr)
		}
	}
	g, err := sharegraph.NewFromSets(stores)
	if err != nil {
		return nil, fmt.Errorf("optimize: effective graph: %w", err)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("optimize: effective graph is disconnected")
	}
	return g, nil
}

// Validate checks the placement invariants every search move must
// preserve: each broken register exists in the base graph with at least
// two holders; its route is a simple path of in-range replicas visiting
// every holder; no route hops over a pair whose only support was broken
// registers (each hop pair must still share at least one surviving
// register OR be adjacent via the hop registers themselves — the hop
// register it introduces always satisfies this, so the real constraint
// is the effective graph round-tripping through NewFromSets connected).
func (p *Placement) Validate() error {
	n := p.Base.NumReplicas()
	for x, route := range p.Broken {
		holders := p.Base.Holders(x)
		if len(holders) < 2 {
			return fmt.Errorf("optimize: broken register %q has %d holders; need at least 2", x, len(holders))
		}
		if len(route) < 2 {
			return fmt.Errorf("optimize: route for %q has %d members; need at least 2", x, len(route))
		}
		seen := make(map[sharegraph.ReplicaID]bool, len(route))
		for _, r := range route {
			if int(r) < 0 || int(r) >= n {
				return fmt.Errorf("optimize: route for %q visits out-of-range replica %d", x, r)
			}
			if seen[r] {
				return fmt.Errorf("optimize: route for %q revisits replica %d — not a simple path", x, r)
			}
			seen[r] = true
		}
		for _, h := range holders {
			if !seen[h] {
				return fmt.Errorf("optimize: route for %q skips holder %d", x, h)
			}
		}
	}
	_, err := p.EffectiveGraph()
	return err
}

// buildRoute constructs a relay route for register x under the current
// broken set: starting from one holder, it repeatedly extends the path
// to the nearest not-yet-visited holder by BFS over the support graph
// (replica pairs still sharing at least one unbroken register other
// than x), never revisiting a vertex. Returns false when no simple
// holder-visiting path exists — the move is invalid.
//
// On a ring this reproduces Figure 13: holders 0 and n−1 share only the
// broken register, so the path runs the long way around the cycle.
func (p *Placement) buildRoute(x sharegraph.Register) (Route, bool) {
	holders := p.Base.Holders(x)
	if len(holders) < 2 {
		return nil, false
	}
	n := p.Base.NumReplicas()
	support := func(a, b sharegraph.ReplicaID) bool {
		for r := range p.Base.Shared(a, b) {
			if r != x && p.Broken[r] == nil {
				return true
			}
		}
		return false
	}
	remaining := make(map[sharegraph.ReplicaID]bool, len(holders))
	for _, h := range holders {
		remaining[h] = true
	}
	route := Route{holders[0]}
	used := make([]bool, n)
	used[holders[0]] = true
	delete(remaining, holders[0])
	for len(remaining) > 0 {
		// BFS from the route's end to the nearest remaining holder,
		// through unused vertices only (keeps the path simple).
		start := route[len(route)-1]
		const unvisited = -2
		parent := make([]int, n)
		for i := range parent {
			parent[i] = unvisited
		}
		parent[start] = -1
		queue := []sharegraph.ReplicaID{start}
		found := sharegraph.ReplicaID(-1)
		for len(queue) > 0 && found < 0 {
			cur := queue[0]
			queue = queue[1:]
			for b := 0; b < n && found < 0; b++ {
				rb := sharegraph.ReplicaID(b)
				if parent[b] != unvisited || (used[b] && rb != start) || !support(cur, rb) {
					continue
				}
				parent[b] = int(cur)
				if remaining[rb] {
					found = rb
				} else {
					queue = append(queue, rb)
				}
			}
		}
		if found < 0 {
			return nil, false
		}
		// Unwind the BFS parents into the path extension.
		var ext Route
		for at := found; parent[at] >= 0; at = sharegraph.ReplicaID(parent[at]) {
			ext = append(ext, at)
		}
		for i := len(ext) - 1; i >= 0; i-- {
			route = append(route, ext[i])
			used[ext[i]] = true
		}
		delete(remaining, found)
	}
	return route, true
}

// BrokenRegisters returns the broken set in sorted order (deterministic
// iteration for printing and scoring).
func (p *Placement) BrokenRegisters() []sharegraph.Register {
	out := make([]sharegraph.Register, 0, len(p.Broken))
	for x := range p.Broken {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Relay protocol over a placement

// hopInfo resolves a hop register back to its real register and hop
// index.
type hopInfo struct {
	reg sharegraph.Register // the broken (real) register
	hop int                 // route hop index: connects route[hop] and route[hop+1]
}

// PlacementProtocol runs the edge-indexed machinery over a placement's
// effective graph, relaying broken-register updates along their routes —
// the generalization of RingBreak to arbitrary broken sets. Writes at a
// route member emit hop messages in both directions; every holder on
// the route materializes the value, interior members forward away from
// the sender. Reads and client writes are accepted exactly where the
// BASE graph stores the register, so the oracle's model of the
// placement never changes.
type PlacementProtocol struct {
	place *Placement
	base  *sharegraph.Graph
	eff   *sharegraph.Graph
	space *timestamp.Space
	name  string
	diag  *core.Diag

	routes map[sharegraph.Register]Route                        // broken register → route
	pos    map[sharegraph.Register]map[sharegraph.ReplicaID]int // broken register → route position
	hops   map[sharegraph.Register]hopInfo                      // hop register → (real register, hop index)
}

var (
	_ core.Protocol     = (*PlacementProtocol)(nil)
	_ core.DiagSettable = (*PlacementProtocol)(nil)
)

// Protocol builds the relay protocol for the placement. The name shows
// up in diagnostics and benchmarks.
func (p *Placement) Protocol(name string) (*PlacementProtocol, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eff, err := p.EffectiveGraph()
	if err != nil {
		return nil, err
	}
	space, err := timestamp.NewSpace(eff, sharegraph.BuildAllTSGraphs(eff, sharegraph.LoopOptions{}))
	if err != nil {
		return nil, fmt.Errorf("optimize: placement space: %w", err)
	}
	pp := &PlacementProtocol{
		place: p, base: p.Base, eff: eff, space: space, name: name,
		routes: make(map[sharegraph.Register]Route, len(p.Broken)),
		pos:    make(map[sharegraph.Register]map[sharegraph.ReplicaID]int, len(p.Broken)),
		hops:   make(map[sharegraph.Register]hopInfo),
	}
	for x, route := range p.Broken {
		pp.routes[x] = route
		at := make(map[sharegraph.ReplicaID]int, len(route))
		for i, r := range route {
			at[r] = i
		}
		pp.pos[x] = at
		for h := 0; h+1 < len(route); h++ {
			pp.hops[hopRegister(x, h)] = hopInfo{reg: x, hop: h}
		}
	}
	return pp, nil
}

// Name implements core.Protocol.
func (p *PlacementProtocol) Name() string { return p.name }

// SetDiag implements core.DiagSettable.
func (p *PlacementProtocol) SetDiag(d *core.Diag) { p.diag = d }

// Effective returns the share graph the timestamps run over.
func (p *PlacementProtocol) Effective() *sharegraph.Graph { return p.eff }

// Space exposes the timestamp space (size accounting, diagnostics).
func (p *PlacementProtocol) Space() *timestamp.Space { return p.space }

// NewNodes implements core.Protocol.
func (p *PlacementProtocol) NewNodes() ([]core.Node, error) {
	n := p.base.NumReplicas()
	nodes := make([]core.Node, n)
	for i := range nodes {
		id := sharegraph.ReplicaID(i)
		nodes[i] = &placeNode{
			p:     p,
			id:    id,
			τ:     p.space.Zero(id),
			store: make(map[sharegraph.Register]core.Value, p.base.Stores(id).Len()),
		}
	}
	return nodes, nil
}

type placePending struct {
	from     sharegraph.ReplicaID
	ts       timestamp.Vec
	reg      sharegraph.Register
	val      core.Value
	oracleID causality.UpdateID
}

// placeNode is one replica of the placement relay protocol: edge-indexed
// deliverability over the effective graph, with hop-register messages
// materialized at holders and forwarded by interior route members.
type placeNode struct {
	p       *PlacementProtocol
	id      sharegraph.ReplicaID
	τ       timestamp.Vec
	store   map[sharegraph.Register]core.Value
	pending []placePending
}

var (
	_ core.Node        = (*placeNode)(nil)
	_ core.Snapshotter = (*placeNode)(nil)
)

func (n *placeNode) ID() sharegraph.ReplicaID { return n.id }

func (n *placeNode) HandleWrite(x sharegraph.Register, v core.Value, id causality.UpdateID, out core.Sink) error {
	if !n.p.base.StoresRegister(n.id, x) {
		return &core.NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	if route, broken := n.p.routes[x]; broken {
		// Relay in both directions from the writer's route position; each
		// hop message is a write to the hop's virtual register.
		pos := n.p.pos[x][n.id]
		if pos > 0 {
			out.Emit(n.hopEnvelope(x, pos-1, route[pos-1], v, id))
		}
		if pos+1 < len(route) {
			out.Emit(n.hopEnvelope(x, pos, route[pos+1], v, id))
		}
		return nil
	}
	n.τ = n.p.space.Advance(n.id, n.τ, x)
	meta := timestamp.Encode(n.τ)
	for _, k := range n.p.eff.UpdateRecipients(n.id, x) {
		out.Emit(core.Envelope{From: n.id, To: k, Reg: x, Val: v, Meta: meta, OracleID: id})
	}
	return nil
}

// hopEnvelope advances the timestamp on hop h's virtual register of
// broken register x and builds the message to the hop's other end.
func (n *placeNode) hopEnvelope(x sharegraph.Register, h int, to sharegraph.ReplicaID, v core.Value, id causality.UpdateID) core.Envelope {
	vr := hopRegister(x, h)
	n.τ = n.p.space.Advance(n.id, n.τ, vr)
	return core.Envelope{
		From: n.id, To: to, Reg: vr, Val: v,
		Meta: timestamp.Encode(n.τ), OracleID: id,
	}
}

func (n *placeNode) HandleMessage(env core.Envelope, out core.Sink) []core.Applied {
	ts, err := timestamp.Decode(env.Meta)
	if err != nil {
		n.p.diag.Dropf(n.id, "%s: replica %d dropping corrupt metadata from %d: %v", n.p.name, n.id, env.From, err)
		return nil
	}
	if int(env.From) < 0 || int(env.From) >= n.p.space.NumReplicas() {
		n.p.diag.Dropf(n.id, "%s: replica %d dropping update from invalid sender %d", n.p.name, n.id, env.From)
		return nil
	}
	if len(ts) != n.p.space.Len(env.From) {
		n.p.diag.Dropf(n.id, "%s: replica %d dropping update from %d with %d-entry timestamp, want %d",
			n.p.name, n.id, env.From, len(ts), n.p.space.Len(env.From))
		return nil
	}
	n.pending = append(n.pending, placePending{
		from: env.From, ts: ts, reg: env.Reg, val: env.Val, oracleID: env.OracleID,
	})
	return n.drain(out)
}

func (n *placeNode) drain(out core.Sink) []core.Applied {
	var applied []core.Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if stalePending(n.p.space, n.id, n.τ, u.from, u.ts) {
				// Fault-injected duplicate of an already-applied update:
				// can never deliver again; drop it so it cannot linger as
				// a dead pending or double-forward after replay.
				n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
				idx--
				continue
			}
			if !n.p.space.Deliverable(n.id, n.τ, u.from, u.ts) {
				continue
			}
			n.p.space.MergeInPlace(n.id, n.τ, u.from, u.ts)
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			if hi, isHop := n.p.hops[u.reg]; isHop {
				route := n.p.routes[hi.reg]
				pos := n.p.pos[hi.reg][n.id]
				if n.p.base.StoresRegister(n.id, hi.reg) {
					// A holder on the route: materialize the relayed value.
					n.store[hi.reg] = u.val
					applied = append(applied, core.Applied{
						OracleID: u.oracleID, From: u.from, Reg: hi.reg, Val: u.val,
					})
				}
				// Forward away from the sender: a message on hop hi.hop
				// reached us moving left or right along the route.
				if pos == hi.hop && pos > 0 {
					out.Emit(n.hopEnvelope(hi.reg, pos-1, route[pos-1], u.val, u.oracleID))
				} else if pos == hi.hop+1 && pos+1 < len(route) {
					out.Emit(n.hopEnvelope(hi.reg, pos, route[pos+1], u.val, u.oracleID))
				}
			} else {
				n.store[u.reg] = u.val
				applied = append(applied, core.Applied{
					OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
				})
			}
			progress = true
			idx--
		}
		if !progress {
			return applied
		}
	}
}

func (n *placeNode) Read(x sharegraph.Register) (core.Value, bool) {
	if !n.p.base.StoresRegister(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *placeNode) PendingCount() int { return len(n.pending) }

func (n *placeNode) PendingOracleIDs() []causality.UpdateID {
	out := make([]causality.UpdateID, 0, len(n.pending))
	for _, u := range n.pending {
		// In-transit relays are protocol-internal: the update is not yet
		// "at" this replica in the oracle's model.
		if _, isHop := n.p.hops[u.reg]; !isHop {
			out = append(out, u.oracleID)
		}
	}
	return out
}

func (n *placeNode) MetadataEntries() int { return len(n.τ) }

var _ core.LivePendingCounter = (*placeNode)(nil)

// LivePending implements core.LivePendingCounter; see relayNode.
func (n *placeNode) LivePending() int {
	live := 0
	for _, u := range n.pending {
		if !stalePending(n.p.space, n.id, n.τ, u.from, u.ts) {
			live++
		}
	}
	return live
}

// Snapshot implements core.Snapshotter.
func (n *placeNode) Snapshot() *core.NodeCheckpoint {
	ck := &core.NodeCheckpoint{
		Replica: n.id,
		Tau:     n.τ.Clone(),
		Store:   make(map[sharegraph.Register]core.Value, len(n.store)),
	}
	for x, v := range n.store {
		ck.Store[x] = v
	}
	for _, u := range n.pending {
		ck.Pending = append(ck.Pending, core.Envelope{
			From: u.from, To: n.id, Reg: u.reg, Val: u.val,
			Meta: timestamp.Encode(u.ts), OracleID: u.oracleID,
		})
	}
	return ck
}

// Install implements core.Snapshotter; see relayNode.Install for the
// no-re-emission argument and NodeCheckpoint for nil-Tau semantics.
func (n *placeNode) Install(ck *core.NodeCheckpoint) ([]core.Applied, error) {
	if ck == nil {
		return nil, fmt.Errorf("optimize: nil checkpoint")
	}
	if ck.Replica != n.id {
		return nil, fmt.Errorf("optimize: checkpoint of replica %d installed at %d", ck.Replica, n.id)
	}
	switch {
	case ck.Tau == nil:
		for i := range n.τ {
			n.τ[i] = 0
		}
	case len(ck.Tau) != len(n.τ):
		return nil, fmt.Errorf("optimize: checkpoint has %d timestamp entries, node tracks %d — different timestamp graphs",
			len(ck.Tau), len(n.τ))
	default:
		copy(n.τ, ck.Tau)
	}
	n.store = make(map[sharegraph.Register]core.Value, len(ck.Store))
	for x, v := range ck.Store {
		n.store[x] = v
	}
	n.pending = nil
	var out []core.Applied
	for _, env := range ck.Pending {
		out = append(out, n.HandleMessage(env, core.DiscardSink{})...)
	}
	return out, nil
}
