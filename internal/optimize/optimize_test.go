package optimize

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestFullReplicationCompression is experiment E10: with identical stores
// on a clique, all of a source's outgoing-edge counters are equal, so the
// compressed timestamp has exactly R independent counters — the classic
// vector clock, as Section 4/5 predict.
func TestFullReplicationCompression(t *testing.T) {
	for _, r := range []int{3, 4, 5, 6} {
		g := sharegraph.FullReplication(r, 3)
		graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
		for i, rep := range AnalyzeAll(g, graphs) {
			if rep.Compressed != r {
				t.Errorf("R=%d replica %d: compressed = %d, want %d (vector clock)",
					r, i, rep.Compressed, r)
			}
			if rep.Entries < rep.Compressed {
				t.Errorf("R=%d replica %d: entries %d < compressed %d", r, i, rep.Entries, rep.Compressed)
			}
			if rep.Ratio() > 1 || rep.Ratio() <= 0 {
				t.Errorf("R=%d replica %d: ratio %v out of (0,1]", r, i, rep.Ratio())
			}
		}
	}
}

// TestPairCliqueNoCompression: when every edge carries a unique register,
// all counters are independent and compression saves nothing.
func TestPairCliqueNoCompression(t *testing.T) {
	g := sharegraph.PairClique(4)
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	for i, rep := range AnalyzeAll(g, graphs) {
		if rep.Compressed != rep.Entries {
			t.Errorf("replica %d: compressed %d != entries %d on independent registers",
				i, rep.Compressed, rep.Entries)
		}
	}
}

// TestCompressionPaperExample reproduces the Section 5 example: source j
// has four outgoing edges labelled {x}, {y}, {z} and {x,y,z}; the fourth
// counter is the sum of the first three, so the rank is 3.
func TestCompressionPaperExample(t *testing.T) {
	// Replica 0 = j stores x,y,z (plus nothing else); replicas 1..3 store
	// one register each and replica 4 stores all three.
	g, err := sharegraph.New([][]sharegraph.Register{
		{"x", "y", "z"},
		{"x"},
		{"y"},
		{"z"},
		{"x", "y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replica 4 tracks its incident edges; edges from 0 to 1,2,3 are
	// tracked only if loops exist — analyze from source 0's perspective at
	// replica 4 using a synthetic edge set containing all four.
	edges := []sharegraph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 4}}
	tsg := sharegraph.NewTSGraphFromEdges(4, edges)
	rep := Analyze(g, tsg)
	if rep.Entries != 4 || rep.Compressed != 3 {
		t.Errorf("entries/compressed = %d/%d, want 4/3", rep.Entries, rep.Compressed)
	}
	if len(rep.PerSource) != 1 || rep.PerSource[0].Rank != 3 || rep.PerSource[0].Edges != 4 {
		t.Errorf("per-source = %+v", rep.PerSource)
	}
}

func TestIndicatorRank(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int
		cols int
		want int
	}{
		{"empty", nil, 0, 0},
		{"identity", [][]int{{0}, {1}, {2}}, 3, 3},
		{"duplicate rows", [][]int{{0, 1}, {0, 1}}, 2, 1},
		{"sum dependency", [][]int{{0}, {1}, {2}, {0, 1, 2}}, 3, 3},
		{"zero row", [][]int{{}}, 2, 0},
		{"overlap chain", [][]int{{0, 1}, {1, 2}, {0, 2}}, 3, 3},
	}
	for _, tc := range cases {
		if got := indicatorRank(tc.rows, tc.cols); got != tc.want {
			t.Errorf("%s: rank = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestDummyPlanRingShortcut is experiment E12: planting dummies across a
// ring adds chords to the effective share graph; the protocol stays
// correct (oracle-audited) while messages increase and dummy deliveries
// appear.
func TestDummyPlanRingShortcut(t *testing.T) {
	g := sharegraph.Ring(6)
	plan := NewDummyPlan(g)
	// Plant a dummy copy of ring0 (shared 0–1) on every other replica:
	// every replica now neighbours both holders of ring0.
	for r := 2; r < 6; r++ {
		if err := plan.Add("ring0", sharegraph.ReplicaID(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := plan.Add("ring0", 0); err == nil {
		t.Error("dummy accepted at genuine holder")
	}
	if err := plan.Add("ring0", 2); err != nil {
		t.Errorf("idempotent add failed: %v", err)
	}
	if plan.DummyCount() != 4 {
		t.Errorf("DummyCount = %d", plan.DummyCount())
	}
	if regs := plan.DummyRegisters(); len(regs) != 1 || regs[0] != "ring0" {
		t.Errorf("DummyRegisters = %v", regs)
	}

	p, err := plan.Protocol("dummy-ring")
	if err != nil {
		t.Fatal(err)
	}
	script := workload.SharedOnly(g, 120, 5)
	for seed := int64(0); seed < 5; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: g, Protocol: p, Script: script,
			Sched: transport.NewRandom(seed), TrackFalseDeps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("seed %d: dummy protocol violated consistency: %v", seed, res.Violations)
		}
		if res.MetaOnlyMessages == 0 {
			t.Error("no metadata-only messages despite dummies")
		}
	}
}

// TestFullEmulationVectorSize: the full-emulation plan compresses every
// replica's timestamp to exactly R counters.
func TestFullEmulationVectorSize(t *testing.T) {
	g := sharegraph.Ring(5)
	plan := FullEmulationPlan(g)
	eff, err := plan.EffectiveGraph()
	if err != nil {
		t.Fatal(err)
	}
	graphs := sharegraph.BuildAllTSGraphs(eff, sharegraph.LoopOptions{})
	for i, rep := range AnalyzeAll(eff, graphs) {
		if rep.Compressed != 5 {
			t.Errorf("replica %d: compressed = %d, want R = 5", i, rep.Compressed)
		}
	}
	// And the protocol over it remains consistent.
	p, err := plan.Protocol("full-emulation")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Protocol: p, Script: workload.SharedOnly(g, 80, 9),
		Sched: transport.NewRandom(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("full emulation violated consistency: %v", res.Violations)
	}
}

// TestRingBreak is experiment E13 (Figure 13): after breaking the ring,
// per-replica metadata drops from 2n to ≤4 entries, the relayed register
// still satisfies causal consistency, and each relayed write costs n−1
// messages instead of 1.
func TestRingBreak(t *testing.T) {
	const n = 6
	rb, err := BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "ring-break" {
		t.Error("bad name")
	}
	if rb.Broken() != "ring5" {
		t.Errorf("broken = %q", rb.Broken())
	}
	nodes, err := rb.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		if node.MetadataEntries() > 4 {
			t.Errorf("replica %d: %d entries, want <= 4 (ring would need %d)",
				i, node.MetadataEntries(), 2*n)
		}
	}

	// Relay correctness and cost: write the broken register at replica 0,
	// deliver hops in order, count messages until replica n−1 applies.
	tracker := causality.NewTracker(rb.Base())
	id := tracker.OnIssue(0, rb.Broken())
	envs, err := core.CollectWrite(nodes[0], rb.Broken(), 77, id)
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	for len(envs) > 0 {
		env := envs[0]
		envs = envs[1:]
		hops++
		applied, fwd := core.CollectMessage(nodes[env.To], env)
		for _, a := range applied {
			tracker.OnApply(env.To, a.OracleID)
		}
		envs = append(envs, fwd...)
	}
	if hops != n-1 {
		t.Errorf("relay hops = %d, want n-1 = %d", hops, n-1)
	}
	if v, ok := nodes[n-1].Read(rb.Broken()); !ok || v != 77 {
		t.Errorf("far end read = (%d,%v), want (77,true)", v, ok)
	}
	if vs := tracker.CheckLiveness(); len(vs) != 0 {
		t.Errorf("liveness violations: %v", vs)
	}
	if !tracker.Ok() {
		t.Errorf("violations: %v", tracker.Violations())
	}
}

// TestRingBreakSweep: the broken-ring protocol passes the oracle across
// random schedules, including writes from both ends of the broken edge and
// normal ring traffic.
func TestRingBreakSweep(t *testing.T) {
	const n = 5
	rb, err := BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	script := workload.SharedOnly(rb.Base(), 100, 13)
	for seed := int64(0); seed < 8; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: rb.Base(), Protocol: rb, Script: script,
			Sched: transport.NewRandom(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("seed %d: %s\n%v", seed, res.Summary(), res.Violations)
		}
	}
}

func TestRingBreakValidation(t *testing.T) {
	if _, err := BreakRing(2); err == nil {
		t.Error("BreakRing(2) accepted")
	}
	rb, err := BreakRing(4)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := rb.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CollectWrite(nodes[1], rb.Broken(), 1, 0); err == nil {
		t.Error("write of broken register at non-holder accepted")
	}
	if _, ok := nodes[1].Read(rb.Broken()); ok {
		t.Error("non-holder read of broken register ok")
	}
	if _, ok := nodes[0].Read(rb.Broken()); !ok {
		t.Error("holder read of broken register failed")
	}
	if isRelayRegister("ring0") || !isRelayRegister("__relay0") {
		t.Error("relay register detection wrong")
	}
}

// TestTruncationUnsafeUnderAdversary is experiment E16: capping loop
// tracking below a ring's circumference drops the counters that guard
// long dependency chains; an adversarial schedule then violates safety,
// while the exact graphs stay clean on the same schedule.
func TestTruncationUnsafeUnderAdversary(t *testing.T) {
	g := sharegraph.Ring(5) // loops need 5 vertices; cap at 3 hops
	trunc, graphs, err := TruncatedProtocol(g, 3, "edge-indexed-l3")
	if err != nil {
		t.Fatal(err)
	}
	for i, tg := range graphs {
		if len(tg.NonIncidentEdges()) != 0 {
			t.Errorf("replica %d still tracks loop edges at l=3 on a 5-ring", i)
		}
	}
	// Stage the Theorem 8 Case 3 chain around the full ring: u0 by replica
	// 1 on ring0 (to replica 0, delayed); then a dependent chain
	// u1 ↪ u2 ↪ u3 ↪ u4 travels 1→2→3→4→0. Delivering u4 at replica 0
	// before u0 violates safety, and the truncated graphs lack the loop
	// counter that would block it.
	stage := func(p core.Protocol) *causality.Tracker {
		nodes, err := p.NewNodes()
		if err != nil {
			t.Fatal(err)
		}
		tracker := causality.NewTracker(g)
		write := func(r sharegraph.ReplicaID, x sharegraph.Register) []core.Envelope {
			id := tracker.OnIssue(r, x)
			envs, err := core.CollectWrite(nodes[r], x, 1, id)
			if err != nil {
				t.Fatalf("write %q at %d: %v", x, r, err)
			}
			return envs
		}
		deliver := func(envs []core.Envelope, to sharegraph.ReplicaID) {
			t.Helper()
			for _, e := range envs {
				if e.To != to {
					continue
				}
				applied, fwd := core.CollectMessage(nodes[to], e)
				for _, a := range applied {
					tracker.OnApply(to, a.OracleID)
				}
				if len(fwd) != 0 {
					t.Fatal("unexpected forwarding")
				}
				return
			}
			t.Fatalf("no message for replica %d", to)
		}
		u0 := write(1, "ring0") // to replica 0, held back
		u1 := write(1, "ring1")
		deliver(u1, 2)
		u2 := write(2, "ring2")
		deliver(u2, 3)
		u3 := write(3, "ring3")
		deliver(u3, 4)
		u4 := write(4, "ring4") // to replica 0
		deliver(u4, 0)          // adversarial: arrives before u0
		deliver(u0, 0)
		return tracker
	}
	if tr := stage(trunc); tr.Ok() {
		t.Error("truncated protocol survived the staged ring chain; expected a safety violation")
	}
	// The exact protocol blocks u4 until u0 arrives on the same schedule.
	exactProto, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr := stage(exactProto); !tr.Ok() {
		t.Errorf("exact protocol violated consistency: %v", tr.Violations())
	}
	script := workload.SharedOnly(g, 60, 21)

	// A bound covering the full circumference is exact and safe.
	full, graphs5, err := TruncatedProtocol(g, 4, "edge-indexed-l4")
	if err != nil {
		t.Fatal(err)
	}
	exact := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	for i := range graphs5 {
		if graphs5[i].Len() != exact[i].Len() {
			t.Errorf("replica %d: l=4 graphs differ from exact on a 5-ring", i)
		}
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Protocol: full, Script: script, Sched: transport.NewRandom(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Errorf("full-bound protocol violated consistency: %v", res.Violations)
	}

	if _, _, err := TruncatedProtocol(g, 0, "bad"); err == nil {
		t.Error("hop bound 0 accepted")
	}
	tr, ex := TruncationSavings(g, 3)
	if tr >= ex {
		t.Errorf("truncation saved nothing: %d vs %d", tr, ex)
	}
}

// TestTruncationSafeUnderLooseSynchrony is the positive half of the
// Appendix D claim: when single-hop messages are never overtaken by
// multi-hop chains — modelled by globally-FIFO delivery — the truncated
// protocol remains causally consistent, because the dependency chain that
// defeats it needs a long path to outrun one hop.
func TestTruncationSafeUnderLooseSynchrony(t *testing.T) {
	for _, n := range []int{5, 6} {
		g := sharegraph.Ring(n)
		trunc, _, err := TruncatedProtocol(g, 3, "edge-indexed-l3")
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2, 3} {
			script := workload.SharedOnly(g, 200, seed)
			res, err := sim.Run(sim.Config{
				Graph: g, Protocol: trunc, Script: script,
				Sched: transport.FIFOScheduler{}, TrackFalseDeps: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Errorf("ring %d seed %d: truncated protocol failed under FIFO delivery: %v",
					n, seed, res.Violations)
			}
		}
	}
}

// TestPerRegisterRefinement: the Appendix D per-register counting scheme
// always needs at least as many counters as the rank basis (it spans the
// same space with unit vectors), and on the paper's {x},{y},{z},{x,y,z}
// example it coincides with the rank.
func TestPerRegisterRefinement(t *testing.T) {
	g, err := sharegraph.New([][]sharegraph.Register{
		{"x", "y", "z"}, {"x"}, {"y"}, {"z"}, {"x", "y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := []sharegraph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 4}}
	rep := Analyze(g, sharegraph.NewTSGraphFromEdges(4, edges))
	if rep.RegisterLevel != 3 || rep.PerSource[0].Registers != 3 {
		t.Errorf("register-level counters = %d, want 3", rep.RegisterLevel)
	}
	// Register-level ≥ rank on every topology.
	for _, g2 := range []*sharegraph.Graph{sharegraph.Ring(6), sharegraph.FullReplication(4, 3), sharegraph.RandomK(7, 20, 3, 8)} {
		for _, r := range AnalyzeAll(g2, sharegraph.BuildAllTSGraphs(g2, sharegraph.LoopOptions{})) {
			if r.RegisterLevel < r.Compressed {
				t.Errorf("replica %d: register-level %d below rank %d", r.Replica, r.RegisterLevel, r.Compressed)
			}
		}
	}
}

// TestRingBreakLatency quantifies the Figure 13 trade-off's other side:
// relayed updates take longer end to end. Under FIFO delivery the broken
// ring's average send→apply delay strictly exceeds the plain ring's.
func TestRingBreakLatency(t *testing.T) {
	const n = 6
	g := sharegraph.Ring(n)
	plain, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	// Workload of only broken-register writes isolates the relay path.
	script := make(workload.Script, 20)
	for i := range script {
		script[i] = workload.Op{Replica: 0, Reg: rb.Broken()}
	}
	var delays [2]float64
	for pi, p := range []core.Protocol{plain, rb} {
		res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: transport.FIFOScheduler{}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("%s: %v", p.Name(), res.Violations)
		}
		delays[pi] = res.AvgDeliveryDelay()
		if res.DeliveryCount == 0 {
			t.Fatalf("%s: no deliveries measured", p.Name())
		}
	}
	if delays[1] <= delays[0] {
		t.Errorf("broken-ring delay %.1f not above plain-ring delay %.1f", delays[1], delays[0])
	}
}

func TestOptimizeAccessors(t *testing.T) {
	rb, err := BreakRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Line().NumReplicas() != 4 || rb.Base().NumReplicas() != 4 {
		t.Error("graph accessors wrong")
	}
	nodes, err := rb.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	if nodes[2].ID() != 2 {
		t.Error("bad relay node id")
	}
	if ids := nodes[2].PendingOracleIDs(); len(ids) != 0 {
		t.Errorf("fresh node has pending ids %v", ids)
	}
	// Corrupt metadata dropped by the relay node.
	if applied, fwd := core.CollectMessage(nodes[1], core.Envelope{From: 0, To: 1, Reg: "__relay0", Meta: []byte{0xff}}); len(applied)+len(fwd) != 0 {
		t.Error("corrupt relay message processed")
	}
	// Report totals.
	g := sharegraph.FullReplication(3, 2)
	reports := AnalyzeAll(g, sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}))
	if TotalEntries(reports) <= 0 || TotalCompressed(reports) != 9 {
		t.Errorf("totals = %d/%d", TotalEntries(reports), TotalCompressed(reports))
	}
	if (Report{}).Ratio() != 1 {
		t.Error("empty ratio should be 1")
	}
}
