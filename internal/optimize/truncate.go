package optimize

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// TruncatedProtocol builds the edge-indexed protocol with loop tracking
// capped at l hops: timestamp graphs include a non-incident edge e_jk only
// if an (i, e_jk)-loop of at most l+1 vertices exists (Appendix D,
// "sacrificing causality"). The result is cheaper metadata that remains
// causally consistent exactly when messages over paths longer than l hops
// always arrive after single-hop messages — adversarial schedules violate
// that assumption, and the package tests show the oracle catching it.
func TruncatedProtocol(g *sharegraph.Graph, l int, name string) (core.Protocol, []*sharegraph.TSGraph, error) {
	if l < 1 {
		return nil, nil, fmt.Errorf("optimize: hop bound must be >= 1, got %d", l)
	}
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{MaxLen: l + 1})
	p, err := core.NewEdgeIndexedWithGraphs(g, graphs, name)
	if err != nil {
		return nil, nil, err
	}
	return p, graphs, nil
}

// TruncationSavings reports total timestamp entries at a hop bound versus
// the exact Definition 5 graphs.
func TruncationSavings(g *sharegraph.Graph, l int) (truncated, exact int) {
	for _, tg := range sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{MaxLen: l + 1}) {
		truncated += tg.Len()
	}
	for _, tg := range sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}) {
		exact += tg.Len()
	}
	return truncated, exact
}
