package optimize

import (
	"testing"

	"repro/internal/lowerbound"
	"repro/internal/sharegraph"
)

// TestSearchRingFindsLine checks the acceptance criterion on rings: the
// search must strictly beat the base ring's 2n² total entries, and land
// within 2× of the cycle lower bound per replica. Breaking one register
// turns the ring into a line (4n−4 total ≤ 2·(2n) always), so a single
// move suffices — the search just has to find it.
func TestSearchRingFindsLine(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		g := sharegraph.Ring(n)
		res, err := Search(g, SearchOptions{Seed: 1})
		if err != nil {
			t.Fatalf("Ring(%d): %v", n, err)
		}
		if res.BaseEntries != 2*n*n {
			t.Fatalf("Ring(%d): base entries = %d, want %d", n, res.BaseEntries, 2*n*n)
		}
		if res.Entries >= res.BaseEntries {
			t.Errorf("Ring(%d): search found no improvement (%d entries)", n, res.Entries)
		}
		// Per-replica tracked entries within 2× of the cycle closed form.
		limit := 2 * lowerbound.CycleClosedForm(n)
		for _, tsg := range sharegraph.BuildAllTSGraphs(res.Effective, sharegraph.LoopOptions{}) {
			if tsg.Len() > limit {
				t.Errorf("Ring(%d): replica %d tracks %d entries, want <= %d", n, tsg.Owner, tsg.Len(), limit)
			}
		}
		if err := res.Placement.Validate(); err != nil {
			t.Errorf("Ring(%d): winning placement invalid: %v", n, err)
		}
	}
}

// TestSearchRingBound verifies, on a small ring where the Section 4
// family is enumerable, that the optimized placement's per-replica
// entries match the lower-bound exponent (the tightness claim carries
// over to the line graph the break produces).
func TestSearchRingBound(t *testing.T) {
	res, err := Search(sharegraph.Ring(5), SearchOptions{Seed: 1, CheckBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bounds) == 0 {
		t.Fatal("CheckBound produced no bounds")
	}
	if !res.Tight() {
		for _, b := range res.Bounds {
			t.Logf("%s", b.String())
		}
		t.Error("optimized placement not tight against the Section 4 bound")
	}
}

// TestSearchRandomKImproves checks the acceptance criterion on the dense
// random topology: strictly fewer total tracked entries, within a small
// evaluation budget.
func TestSearchRandomKImproves(t *testing.T) {
	g := sharegraph.RandomK(32, 96, 3, 7)
	res, err := Search(g, SearchOptions{Seed: 7, Restarts: 1, MaxEvals: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries >= res.BaseEntries {
		t.Errorf("RandomK(32,96,3): no improvement (base %d, got %d in %d evals)",
			res.BaseEntries, res.Entries, res.Evals)
	}
	if err := res.Placement.Validate(); err != nil {
		t.Errorf("winning placement invalid: %v", err)
	}
	t.Logf("RandomK(32,96,3): %d -> %d entries (%d broken, %d evals)",
		res.BaseEntries, res.Entries, len(res.Placement.Broken), res.Evals)
}

// TestSearchDeterministic: same seed, same graph, same result.
func TestSearchDeterministic(t *testing.T) {
	g := sharegraph.RandomK(16, 40, 3, 3)
	a, err := Search(g, SearchOptions{Seed: 42, Restarts: 2, MaxEvals: 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(g, SearchOptions{Seed: 42, Restarts: 2, MaxEvals: 24})
	if err != nil {
		t.Fatal(err)
	}
	if a.Entries != b.Entries || a.Evals != b.Evals || len(a.Placement.Broken) != len(b.Placement.Broken) {
		t.Errorf("same seed diverged: (%d entries, %d evals, %d broken) vs (%d, %d, %d)",
			a.Entries, a.Evals, len(a.Placement.Broken), b.Entries, b.Evals, len(b.Placement.Broken))
	}
	for x, ra := range a.Placement.Broken {
		rb, ok := b.Placement.Broken[x]
		if !ok || len(ra) != len(rb) {
			t.Errorf("broken set diverged at %q", x)
		}
	}
}

// TestSearchEdgeWeightSteering: with one ring register's edge priced far
// above the rest, the weighted search must break that register (its
// cycle entries cost the most), while the placement stays valid.
func TestSearchEdgeWeightSteering(t *testing.T) {
	n := 8
	g := sharegraph.Ring(n)
	slow := func(i, j sharegraph.ReplicaID) float64 {
		// The edge between replicas 2 and 3 (register "ring2") is slow.
		if (i == 2 && j == 3) || (i == 3 && j == 2) {
			return 100
		}
		return 1
	}
	res, err := Search(g, SearchOptions{Seed: 5, EdgeWeight: slow})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Placement.Broken["ring2"]; !ok {
		t.Errorf("weighted search broke %v, want ring2 (the slow edge)", res.Placement.BrokenRegisters())
	}
}

// TestSearchMaxBroken caps the break count.
func TestSearchMaxBroken(t *testing.T) {
	g := sharegraph.RandomK(16, 40, 3, 3)
	res, err := Search(g, SearchOptions{Seed: 9, MaxBroken: 2, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placement.Broken) > 2 {
		t.Errorf("MaxBroken=2 exceeded: %d broken", len(res.Placement.Broken))
	}
}

// TestPlacementValidateRejects covers the validation error paths.
func TestPlacementValidateRejects(t *testing.T) {
	g := sharegraph.Ring(5)
	cases := []struct {
		name  string
		build func() *Placement
	}{
		{"unknown register", func() *Placement {
			p := NewPlacement(g)
			p.Broken["nope"] = Route{0, 1}
			return p
		}},
		{"short route", func() *Placement {
			p := NewPlacement(g)
			p.Broken["ring4"] = Route{0}
			return p
		}},
		{"out-of-range replica", func() *Placement {
			p := NewPlacement(g)
			p.Broken["ring4"] = Route{0, 99}
			return p
		}},
		{"revisit", func() *Placement {
			p := NewPlacement(g)
			p.Broken["ring4"] = Route{0, 1, 0, 4}
			return p
		}},
		{"skips holder", func() *Placement {
			p := NewPlacement(g)
			p.Broken["ring4"] = Route{0, 1}
			return p
		}},
	}
	for _, tc := range cases {
		if err := tc.build().Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid placement", tc.name)
		}
	}
}

// TestBuildRouteRingLongWay: breaking the ring-closing register must
// route the long way around (holders 0 and n−1 share nothing else), i.e.
// visit every replica.
func TestBuildRouteRingLongWay(t *testing.T) {
	n := 6
	p := NewPlacement(sharegraph.Ring(n))
	route, ok := p.buildRoute(sharegraph.Register("ring5"))
	if !ok {
		t.Fatal("no route found")
	}
	if len(route) != n {
		t.Fatalf("route %v has %d members, want all %d replicas", route, len(route), n)
	}
}
