package optimize

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// DummyPlan places metadata-only register copies (Section 5 "dummy
// registers"): a dummy copy participates in the share graph — changing the
// timestamp graphs — and receives metadata-only update messages, but is
// never read or written by clients and never stores data.
type DummyPlan struct {
	Base *sharegraph.Graph
	// Dummies[x] lists the replicas holding a dummy copy of register x.
	Dummies map[sharegraph.Register][]sharegraph.ReplicaID
}

// NewDummyPlan starts an empty plan over the base placement.
func NewDummyPlan(g *sharegraph.Graph) *DummyPlan {
	return &DummyPlan{Base: g, Dummies: make(map[sharegraph.Register][]sharegraph.ReplicaID)}
}

// Add plants a dummy copy of x at replica r. Adding a dummy where the
// register genuinely lives is an error.
func (p *DummyPlan) Add(x sharegraph.Register, r sharegraph.ReplicaID) error {
	if p.Base.StoresRegister(r, x) {
		return fmt.Errorf("optimize: replica %d already stores %q", r, x)
	}
	for _, held := range p.Dummies[x] {
		if held == r {
			return nil // idempotent
		}
	}
	p.Dummies[x] = append(p.Dummies[x], r)
	return nil
}

// FullEmulationPlan plants a dummy copy of every register at every replica
// not genuinely storing it — the Section 5 extreme that emulates full
// replication: compressed timestamps collapse to length R, and every write
// broadcasts metadata to all replicas.
func FullEmulationPlan(g *sharegraph.Graph) *DummyPlan {
	p := NewDummyPlan(g)
	for _, x := range g.Registers() {
		for i := 0; i < g.NumReplicas(); i++ {
			r := sharegraph.ReplicaID(i)
			if !g.StoresRegister(r, x) {
				p.Dummies[x] = append(p.Dummies[x], r)
			}
		}
	}
	return p
}

// EffectiveGraph returns the share graph induced by genuine plus dummy
// copies — the graph the timestamps are computed over.
func (p *DummyPlan) EffectiveGraph() (*sharegraph.Graph, error) {
	n := p.Base.NumReplicas()
	stores := make([]sharegraph.RegisterSet, n)
	for i := 0; i < n; i++ {
		stores[i] = p.Base.Stores(sharegraph.ReplicaID(i)).Clone()
	}
	for x, rs := range p.Dummies {
		for _, r := range rs {
			stores[r].Add(x)
		}
	}
	return sharegraph.NewFromSets(stores)
}

// Protocol builds the edge-indexed protocol over the effective graph with
// dummy-aware routing: data to genuine holders, metadata-only messages to
// dummy holders.
func (p *DummyPlan) Protocol(name string) (core.Protocol, error) {
	eff, err := p.EffectiveGraph()
	if err != nil {
		return nil, fmt.Errorf("optimize: effective graph: %w", err)
	}
	return core.NewEdgeIndexedRouted(eff, p.Base.StoresRegister, name)
}

// DummyCount returns the number of planted dummy copies.
func (p *DummyPlan) DummyCount() int {
	n := 0
	for _, rs := range p.Dummies {
		n += len(rs)
	}
	return n
}

// DummyRegisters lists registers with at least one dummy copy, sorted.
func (p *DummyPlan) DummyRegisters() []sharegraph.Register {
	out := make([]sharegraph.Register, 0, len(p.Dummies))
	for x := range p.Dummies {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
