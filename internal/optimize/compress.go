// Package optimize implements the metadata-reduction techniques of
// Section 5 and Appendix D of Xiang & Vaidya (PODC 2019):
//
//   - timestamp compression: counters for a source replica's outgoing
//     edges are linearly dependent whenever the underlying register sets
//     overlap; the minimal number of independent counters is the rank of
//     the edge/register incidence matrix (exact, over ℚ);
//   - dummy registers: planting metadata-only register copies reshapes the
//     share graph, trading messages and false dependencies for smaller
//     timestamps (full-replication emulation as the extreme);
//   - ring breaking with virtual registers (Figure 13): removing a share
//     edge and relaying its updates hop-by-hop turns a cycle's 2n counters
//     into a path's ≤4 per replica, at a latency cost of n−1 hops;
//   - l-hop truncation ("sacrificing causality"): dropping counters for
//     loops longer than l is safe exactly when long paths are slower than
//     single hops, and detectably unsafe otherwise.
package optimize

import (
	"math/big"
	"sort"

	"repro/internal/sharegraph"
)

// SourceReport describes compression for one source replica j within a
// timestamp graph E_i: how many outgoing-edge counters E_i keeps for j and
// the minimal independent subset (the paper's I(E_i, j)).
type SourceReport struct {
	Source sharegraph.ReplicaID
	Edges  int
	Rank   int
	// Registers is the size of the union of the tracked edges' register
	// labels for this source — the counter count of the Appendix D
	// per-register refinement. Always ≥ Rank, but each per-register
	// counter stays smaller (it counts writes to one register, not sums
	// over label sets), trading counter count for counter width.
	Registers int
}

// Report describes compression of one replica's timestamp.
type Report struct {
	Replica sharegraph.ReplicaID
	// Entries is |E_i|, the uncompressed counter count.
	Entries int
	// Compressed is Σ_j I(E_i, j), the minimal counter count when the
	// per-edge counts are consistent (the paper's best case).
	Compressed int
	// RegisterLevel is Σ_j |∪ labels|, the Appendix D per-register
	// counting alternative (more counters than Compressed, narrower
	// each).
	RegisterLevel int
	PerSource     []SourceReport
}

// Ratio returns Compressed/Entries (1.0 when nothing compresses).
func (r Report) Ratio() float64 {
	if r.Entries == 0 {
		return 1
	}
	return float64(r.Compressed) / float64(r.Entries)
}

// Analyze computes the compression report for replica i's timestamp graph.
// For each source replica j, the counters {τ_i[e_jk]} count updates to the
// register sets {X_jk}; writing each counter as the sum of per-register
// write counts makes it a 0/1 linear combination, so the minimal basis
// size is the rank of the indicator matrix over ℚ (computed exactly with
// big.Rat arithmetic).
func Analyze(g *sharegraph.Graph, tsg *sharegraph.TSGraph) Report {
	bySource := make(map[sharegraph.ReplicaID][]sharegraph.Edge)
	for _, e := range tsg.Edges() {
		bySource[e.From] = append(bySource[e.From], e)
	}
	sources := make([]sharegraph.ReplicaID, 0, len(bySource))
	for j := range bySource {
		sources = append(sources, j)
	}
	sort.Slice(sources, func(a, b int) bool { return sources[a] < sources[b] })

	rep := Report{Replica: tsg.Owner, Entries: tsg.Len()}
	for _, j := range sources {
		edges := bySource[j]
		// Column universe: registers appearing in any X_jk for these edges.
		colIdx := make(map[sharegraph.Register]int)
		var rows [][]int
		for _, e := range edges {
			row := make([]int, 0, 4)
			for x := range g.Shared(e.From, e.To) {
				c, ok := colIdx[x]
				if !ok {
					c = len(colIdx)
					colIdx[x] = c
				}
				row = append(row, c)
			}
			rows = append(rows, row)
		}
		rank := indicatorRank(rows, len(colIdx))
		rep.PerSource = append(rep.PerSource, SourceReport{
			Source: j, Edges: len(edges), Rank: rank, Registers: len(colIdx),
		})
		rep.Compressed += rank
		rep.RegisterLevel += len(colIdx)
	}
	return rep
}

// AnalyzeAll runs Analyze for every replica.
func AnalyzeAll(g *sharegraph.Graph, graphs []*sharegraph.TSGraph) []Report {
	out := make([]Report, len(graphs))
	for i, tsg := range graphs {
		out[i] = Analyze(g, tsg)
	}
	return out
}

// TotalEntries sums Entries over reports.
func TotalEntries(reports []Report) int {
	n := 0
	for _, r := range reports {
		n += r.Entries
	}
	return n
}

// TotalCompressed sums Compressed over reports.
func TotalCompressed(reports []Report) int {
	n := 0
	for _, r := range reports {
		n += r.Compressed
	}
	return n
}

// indicatorRank computes the rank over ℚ of a 0/1 matrix given as sparse
// rows (lists of set-column indices) via exact Gaussian elimination.
func indicatorRank(rows [][]int, cols int) int {
	if cols == 0 {
		return 0
	}
	dense := make([][]*big.Rat, len(rows))
	for i, row := range rows {
		dense[i] = make([]*big.Rat, cols)
		for c := range dense[i] {
			dense[i][c] = new(big.Rat)
		}
		for _, c := range row {
			dense[i][c].SetInt64(1)
		}
	}
	rank := 0
	for col := 0; col < cols && rank < len(dense); col++ {
		pivot := -1
		for r := rank; r < len(dense); r++ {
			if dense[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		dense[rank], dense[pivot] = dense[pivot], dense[rank]
		// Normalize pivot row.
		inv := new(big.Rat).Inv(dense[rank][col])
		for c := col; c < cols; c++ {
			dense[rank][c].Mul(dense[rank][c], inv)
		}
		// Eliminate below.
		for r := rank + 1; r < len(dense); r++ {
			f := new(big.Rat).Set(dense[r][col])
			if f.Sign() == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				t := new(big.Rat).Mul(f, dense[rank][c])
				dense[r][c].Sub(dense[r][c], t)
			}
		}
		rank++
	}
	return rank
}
