package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// edgeMsg is a testMsg that also knows its sender, so the fault layer
// keys its lotteries and cuts on the real (from, to) pair.
type edgeMsg struct {
	from, to int
	val      int
}

func (m edgeMsg) Dest() int   { return m.to }
func (m edgeMsg) Source() int { return m.from }

// collectEngine builds a fault-injected engine that counts deliveries
// per (from, val) and returns the engine plus the delivery counter map.
func collectEngine(t *testing.T, dests int, plan FaultPlan) (*Engine[edgeMsg], *sync.Map, *atomic.Int64) {
	t.Helper()
	var seen sync.Map // edgeMsg → *atomic.Int64
	var total atomic.Int64
	clone := func(m edgeMsg) edgeMsg { return m }
	eng := NewWithFaults(dests, Options{Workers: 2}, plan, clone, func(m edgeMsg) {
		c, _ := seen.LoadOrStore(m, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		total.Add(1)
	})
	return eng, &seen, &total
}

// TestFaultLotteryDeterministic pins the lottery to (seed, edge, stream,
// counter): two injectors with identical plans draw identical sequences.
func TestFaultLotteryDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, Default: EdgeFault{Drop: 0.5}}.withDefaults()
	a := newFaultInjector[edgeMsg](nil, plan, nil)
	b := newFaultInjector[edgeMsg](nil, plan, nil)
	for i := 0; i < 100; i++ {
		av := a.roll(1, 2, streamDrop)
		bv := b.roll(1, 2, streamDrop)
		if av != bv {
			t.Fatalf("draw %d: %v != %v", i, av, bv)
		}
		if av < 0 || av >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, av)
		}
	}
	// Distinct streams on the same edge draw independent sequences.
	if a.roll(1, 2, streamDrop) == a.roll(1, 2, streamProbe) {
		t.Error("drop and probe streams should not coincide (vanishingly unlikely)")
	}
	c := newFaultInjector[edgeMsg](nil, FaultPlan{Seed: 43, Default: EdgeFault{Drop: 0.5}}.withDefaults(), nil)
	if a.roll(3, 4, streamDrop) == c.roll(3, 4, streamDrop) {
		t.Error("different seeds should draw different sequences (vanishingly unlikely)")
	}
}

// TestFaultDropsRetransmit: with heavy loss, every message still
// delivers exactly once after Quiesce — drops divert to the retransmit
// queue, they never vanish.
func TestFaultDropsRetransmit(t *testing.T) {
	plan := FaultPlan{
		Seed:           7,
		Default:        EdgeFault{Drop: 0.5},
		RetransmitBase: 100 * time.Microsecond,
	}
	eng, seen, total := collectEngine(t, 4, plan)
	const msgs = 400
	for i := 0; i < msgs; i++ {
		m := edgeMsg{from: i % 4, to: (i + 1) % 4, val: i}
		if eng.Send(m) != 1 {
			t.Fatalf("send %d rejected", i)
		}
	}
	eng.Quiesce()
	if got := total.Load(); got != msgs {
		t.Fatalf("delivered %d messages, want %d", got, msgs)
	}
	seen.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("message %v delivered %d times, want 1", k, n)
		}
		return true
	})
	if eng.Faults().Dropped() == 0 {
		t.Error("expected some transmissions to be diverted at Drop=0.5")
	}
	eng.Close()
}

// TestFaultDuplication: duplicated messages deliver at least twice and
// every message still delivers at least once.
func TestFaultDuplication(t *testing.T) {
	plan := FaultPlan{Seed: 11, Default: EdgeFault{Dup: 0.5}}
	eng, seen, total := collectEngine(t, 4, plan)
	const msgs = 400
	for i := 0; i < msgs; i++ {
		eng.Send(edgeMsg{from: i % 4, to: (i + 1) % 4, val: i})
	}
	eng.Quiesce()
	duped := eng.Faults().Duped()
	if duped == 0 {
		t.Fatal("expected duplicates at Dup=0.5")
	}
	if got := total.Load(); got != msgs+int64(duped) {
		t.Fatalf("delivered %d messages, want %d originals + %d duplicates", got, msgs, duped)
	}
	count := 0
	seen.Range(func(k, v any) bool { count++; return true })
	if count != msgs {
		t.Fatalf("saw %d distinct messages, want %d", count, msgs)
	}
	eng.Close()
}

// TestFaultPartitionHeal: a cut edge parks its traffic; Heal delivers
// the backlog; other edges flow normally throughout.
func TestFaultPartitionHeal(t *testing.T) {
	eng, _, total := collectEngine(t, 3, FaultPlan{Seed: 3})
	f := eng.Faults()
	f.Cut(0, 1, 0) // manual heal
	for i := 0; i < 10; i++ {
		eng.Send(edgeMsg{from: 0, to: 1, val: i}) // parks
		eng.Send(edgeMsg{from: 0, to: 2, val: i}) // flows
	}
	eng.Quiesce()
	if got := total.Load(); got != 10 {
		t.Fatalf("delivered %d with the cut in place, want 10 (uncut edge only)", got)
	}
	if parked := f.ParkedMessages(); parked != 10 {
		t.Fatalf("parked %d, want 10", parked)
	}
	f.Heal(0, 1)
	eng.Quiesce()
	if got := total.Load(); got != 20 {
		t.Fatalf("delivered %d after heal, want 20", got)
	}
	eng.Close()
}

// TestFaultScheduledHeal: a cut with a deadline heals on its own.
func TestFaultScheduledHeal(t *testing.T) {
	eng, _, total := collectEngine(t, 2, FaultPlan{Seed: 5, RetransmitBase: 100 * time.Microsecond})
	eng.Faults().CutBoth(0, 1, 5*time.Millisecond)
	eng.Send(edgeMsg{from: 0, to: 1, val: 1})
	eng.Send(edgeMsg{from: 1, to: 0, val: 2})
	deadline := time.Now().Add(2 * time.Second)
	for total.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := total.Load(); got != 2 {
		t.Fatalf("scheduled heal never delivered the backlog (got %d)", got)
	}
	eng.Close()
}

// TestFaultCrashRestart: messages to a down destination park and flush
// on restart; Probe reflects the down state.
func TestFaultCrashRestart(t *testing.T) {
	eng, _, total := collectEngine(t, 3, FaultPlan{Seed: 9})
	f := eng.Faults()
	f.SetDown(1, true)
	if !f.Down(1) || f.Down(2) {
		t.Fatal("down flags wrong")
	}
	if f.Probe(0, 1) {
		t.Error("probe to a down destination should fail")
	}
	if f.Probe(1, 0) {
		t.Error("probe from a down replica should fail")
	}
	if !f.Probe(0, 2) {
		t.Error("probe between live replicas should succeed")
	}
	for i := 0; i < 7; i++ {
		eng.Send(edgeMsg{from: 0, to: 1, val: i})
	}
	eng.Quiesce()
	if total.Load() != 0 {
		t.Fatalf("delivered %d to a down destination", total.Load())
	}
	f.SetDown(1, false)
	eng.Quiesce()
	if total.Load() != 7 {
		t.Fatalf("restart flushed %d messages, want 7", total.Load())
	}
	eng.Close()
}

// TestFaultDisabledPath: an engine built with New has no injector and
// behaves exactly as before.
func TestFaultDisabledPath(t *testing.T) {
	var total atomic.Int64
	eng := New(2, Options{Workers: 2}, func(m edgeMsg) { total.Add(1) })
	if eng.Faults() != nil {
		t.Fatal("plain engine should have no fault injector")
	}
	eng.Send(edgeMsg{from: 0, to: 1})
	eng.Quiesce()
	if total.Load() != 1 {
		t.Fatalf("delivered %d, want 1", total.Load())
	}
	eng.Close()
}

// TestCloseUnderActiveLossInjection is the shutdown-determinism check
// (run under -race): Close racing a storm of lossy sends and forwards
// must cancel every pending retransmit, drop the parked backlogs, and
// leave the engine fully drained — no retransmit timer may fire into a
// closed engine, and no goroutine may still hold a message afterwards.
func TestCloseUnderActiveLossInjection(t *testing.T) {
	for round := 0; round < 5; round++ {
		plan := FaultPlan{
			Seed:           int64(round + 1),
			Default:        EdgeFault{Drop: 0.4, Dup: 0.2},
			RetransmitBase: 100 * time.Microsecond,
		}
		var total atomic.Int64
		clone := func(m edgeMsg) edgeMsg { return m }
		eng := NewWithFaults(4, Options{Workers: 3, InboxCapacity: 16}, plan, clone, func(m edgeMsg) {
			total.Add(1)
		})
		// One destination is cut and one down, so all three parking books
		// (retransmit, partition, crash) have live entries at Close time.
		eng.Faults().Cut(0, 2, 0)
		eng.Faults().SetDown(3, true)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					m := edgeMsg{from: s, to: (s + 1 + i) % 4, val: i}
					if i%3 == 0 {
						eng.Forward(m)
					} else if eng.Send(m) == 0 {
						return // engine refused: shutdown reached us
					}
				}
			}(s)
		}
		time.Sleep(2 * time.Millisecond) // let drops, dups and retransmits accumulate
		eng.Close()
		close(stop)
		wg.Wait()

		if n := eng.Faults().ParkedMessages(); n != 0 {
			t.Fatalf("round %d: %d messages still parked after Close", round, n)
		}
		if n := eng.Outstanding(); n != 0 {
			t.Fatalf("round %d: %d messages outstanding after Close", round, n)
		}
		if got := eng.Send(edgeMsg{from: 0, to: 1}); got != 0 {
			t.Fatalf("round %d: Send accepted %d after Close", round, got)
		}
		if eng.Faults().Dropped() == 0 {
			t.Fatalf("round %d: loss lottery never fired; the race window was empty", round)
		}
	}
}
