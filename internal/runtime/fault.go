package runtime

import (
	"fmt"
	"sync"
	"time"
)

// EdgeMessage is optionally implemented by messages that know their
// sender. The fault layer keys its per-edge plans and lotteries on the
// (Source, Dest) pair; messages that do not implement it are treated as
// coming from the pseudo-source -1. Both core.Envelope and
// clientserver.UpdateMsg implement it.
type EdgeMessage interface {
	Message
	Source() int
}

// EdgeFault configures the unreliability of one directed link.
//
// Faults are transient, never permanent: a "dropped" transmission is
// diverted to a retransmit queue (exponential backoff, bounded attempts,
// then forced delivery), matching the paper's reliable-channel system
// model in the limit while exercising arbitrary extra reordering and
// delay in the meantime. Duplication re-delivers an accepted transmission
// a second time; receivers must tolerate exact replays.
type EdgeFault struct {
	// Drop is the probability in [0,1] that one transmission attempt is
	// lost and must be retransmitted.
	Drop float64
	// Dup is the probability in [0,1] that an accepted transmission is
	// delivered twice.
	Dup float64
}

// FaultPlan seeds the deterministic fault lottery of an engine. The zero
// value injects no faults (but still enables the partition/crash
// controls of the FaultInjector).
//
// Determinism: every lottery outcome is a pure hash of (Seed, from, to,
// stream, counter) where the counter increments per transmission on that
// edge, so for a fixed sequence of per-edge transmissions the same
// faults fire regardless of goroutine scheduling.
type FaultPlan struct {
	// Seed drives the lottery (default 1).
	Seed int64
	// Default applies to every edge without a PerEdge entry.
	Default EdgeFault
	// PerEdge overrides Default for specific (from, to) links.
	PerEdge map[[2]int]EdgeFault
	// MaxRetransmits bounds consecutive lottery losses of one message
	// (default 6): after that many diverted attempts the retransmitter
	// delivers unconditionally, so loss never becomes a liveness failure.
	MaxRetransmits int
	// RetransmitBase is the first retransmission backoff (default 500µs);
	// it doubles per failed attempt.
	RetransmitBase time.Duration
}

func (p FaultPlan) withDefaults() FaultPlan {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxRetransmits <= 0 {
		p.MaxRetransmits = 6
	}
	if p.RetransmitBase <= 0 {
		p.RetransmitBase = 500 * time.Microsecond
	}
	return p
}

func (p FaultPlan) edgeFault(from, to int) EdgeFault {
	if p.PerEdge != nil {
		if ef, ok := p.PerEdge[[2]int{from, to}]; ok {
			return ef
		}
	}
	return p.Default
}

// Lottery streams: distinct counters per purpose so data drops, data
// duplication and heartbeat-probe losses draw independent sequences.
const (
	streamDrop = iota
	streamDup
	streamProbe
)

// mix64 is the splitmix64 finalizer — the engine's standard bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// backoffMax caps one retransmission backoff: exponential growth is only
// meaningful for the first handful of attempts, and an unclamped
// RetransmitBase << attempts overflows time.Duration for user-configured
// MaxRetransmits past ~40, collapsing the backoff into immediate retries.
const backoffMax = time.Second

// backoff returns the delay before retransmission attempt n (n ≥ 1),
// doubling per attempt up to backoffMax (the shared Backoff discipline).
func (f *FaultInjector[M]) backoff(attempts int) time.Duration {
	return Backoff(f.plan.RetransmitBase, attempts, backoffMax)
}

// retransEntry is one diverted transmission waiting to be re-attempted.
type retransEntry[M Message] struct {
	m        M
	from, to int
	attempts int
	due      time.Time
}

// FaultInjector applies a FaultPlan at the engine's send/forward
// boundary and exposes the runtime fault controls: partitions (with
// optional scheduled heal), crash/restart parking of a destination, and
// the Probe primitive heartbeat failure detectors are built on. All
// methods are safe for concurrent use.
//
// Parked messages — whether behind a cut edge or a down destination —
// do not count as in flight and bypass inbox backpressure: a writer
// whose recipient is partitioned away proceeds, exactly as a real
// sender would, and the backlog delivers at Heal / restart time.
type FaultInjector[M Message] struct {
	eng   *Engine[M]
	plan  FaultPlan
	clone func(M) M

	mu      sync.Mutex
	seqs    map[[3]int]uint64    // (from, to, stream) → lottery counter
	cuts    map[[2]int]time.Time // cut edges → heal deadline (zero = manual)
	down    map[int]bool
	parked  map[[2]int][]M // partition-parked, per cut edge
	crashed map[int][]M    // crash-parked, per down destination
	retrans []retransEntry[M]
	dropped uint64 // transmissions diverted to the retransmit queue
	duped   uint64 // extra deliveries injected
	stopped bool

	stopPump chan struct{}
	pumpDone chan struct{}
}

func newFaultInjector[M Message](e *Engine[M], plan FaultPlan, clone func(M) M) *FaultInjector[M] {
	return &FaultInjector[M]{
		eng:      e,
		plan:     plan.withDefaults(),
		clone:    clone,
		seqs:     make(map[[3]int]uint64),
		cuts:     make(map[[2]int]time.Time),
		down:     make(map[int]bool),
		parked:   make(map[[2]int][]M),
		crashed:  make(map[int][]M),
		stopPump: make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
}

// roll draws the next lottery value in [0,1) for one (edge, stream).
// Caller holds mu.
func (f *FaultInjector[M]) roll(from, to, stream int) float64 {
	k := [3]int{from, to, stream}
	n := f.seqs[k]
	f.seqs[k] = n + 1
	h := mix64(uint64(f.plan.Seed) ^ mix64(uint64(from+1)<<42^uint64(to+1)<<21^uint64(stream+1)))
	h = mix64(h ^ n)
	return float64(h>>11) / (1 << 53)
}

func source[M Message](m M) int {
	if em, ok := any(m).(EdgeMessage); ok {
		return em.Source()
	}
	return -1
}

// send routes one batch through the fault layer. Returns the number of
// messages accepted (delivered, queued for retransmission, or parked —
// everything except a shutdown-race drop).
func (f *FaultInjector[M]) send(ms []M, backpressure bool) int {
	accepted := 0
	for _, m := range ms {
		if !f.admit(m, backpressure) {
			break
		}
		accepted++
	}
	return accepted
}

func (f *FaultInjector[M]) admit(m M, backpressure bool) bool {
	from, to := source(m), m.Dest()
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		// Close has begun: the pump is joined and nothing may re-enter
		// the retransmit or parking books, but workers still deliver —
		// and forward — during the engine's drain. Pass straight through
		// so a forward cascade racing Close is delivered exactly as it
		// would be without the fault layer; the engine itself refuses
		// once it sets stopping.
		return f.eng.enqueueOne(m, backpressure) == 1
	}
	if f.down[to] {
		f.crashed[to] = append(f.crashed[to], m)
		f.mu.Unlock()
		return true
	}
	key := [2]int{from, to}
	if _, cut := f.cuts[key]; cut {
		f.parked[key] = append(f.parked[key], m)
		f.mu.Unlock()
		return true
	}
	ef := f.plan.edgeFault(from, to)
	if ef.Drop > 0 && f.roll(from, to, streamDrop) < ef.Drop {
		f.dropped++
		f.eng.obs.Dropped(from, to)
		f.retrans = append(f.retrans, retransEntry[M]{
			m: m, from: from, to: to, attempts: 1,
			due: time.Now().Add(f.plan.RetransmitBase),
		})
		f.mu.Unlock()
		return true
	}
	dup := ef.Dup > 0 && f.clone != nil && f.roll(from, to, streamDup) < ef.Dup
	// The duplicate is a distinct delivery of cloned payload (pooled
	// buffers inside m cannot be shared across two deliveries). The clone
	// must be taken BEFORE the original enters the engine: once enqueued, a
	// pool worker may deliver m concurrently and recycle its buffers, so a
	// later clone would copy memory another sender already reuses.
	var d M
	if dup {
		f.duped++
		f.eng.obs.Duped(from, to)
		d = f.clone(m)
	}
	f.mu.Unlock()
	if f.eng.enqueueOne(m, backpressure) == 0 {
		return false
	}
	if dup {
		// Duplicates never backpressure: real networks duplicate without
		// asking.
		f.eng.enqueueOne(d, false)
	}
	return true
}

// Cut severs the directed link from → to: transmissions park until the
// link heals. A zero healAfter cuts until an explicit Heal/HealAll; a
// positive healAfter schedules the heal, performed by the fault pump.
func (f *FaultInjector[M]) Cut(from, to int, healAfter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var deadline time.Time
	if healAfter > 0 {
		deadline = time.Now().Add(healAfter)
	}
	f.cuts[[2]int{from, to}] = deadline
}

// CutBoth severs both directions between a and b (a two-way partition).
func (f *FaultInjector[M]) CutBoth(a, b int, healAfter time.Duration) {
	f.Cut(a, b, healAfter)
	f.Cut(b, a, healAfter)
}

// Heal restores the directed link from → to and delivers its parked
// backlog (without backpressure — the backlog was already accepted).
func (f *FaultInjector[M]) Heal(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healLocked([2]int{from, to})
}

// HealAll restores every cut link.
func (f *FaultInjector[M]) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for key := range f.cuts {
		f.healLocked(key)
	}
}

// healLocked flushes one cut edge. Caller holds mu; enqueueOne without
// backpressure never blocks, so holding mu across it is safe (the lock
// order f.mu → e.mu occurs on every flush path and nothing acquires
// them in the opposite order).
func (f *FaultInjector[M]) healLocked(key [2]int) {
	if _, ok := f.cuts[key]; !ok {
		return
	}
	delete(f.cuts, key)
	for _, m := range f.parked[key] {
		f.eng.enqueueOne(m, false)
	}
	delete(f.parked, key)
}

// SetDown marks destination r as crashed (true) or restarted (false).
// While down, transmissions to r park; clearing the flag delivers the
// backlog. The state-machine side of a crash — wiping and restoring the
// replica — is the runtime's job (see sim.Cluster.Crash / Restart);
// SetDown only controls the transport.
func (f *FaultInjector[M]) SetDown(r int, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if down {
		f.down[r] = true
		return
	}
	if !f.down[r] {
		return
	}
	delete(f.down, r)
	for _, m := range f.crashed[r] {
		f.eng.enqueueOne(m, false)
	}
	delete(f.crashed, r)
}

// Down reports whether destination r is currently marked crashed.
func (f *FaultInjector[M]) Down(r int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[r]
}

// Probe is the heartbeat primitive: it reports whether a probe from →
// to would currently be answered. It fails when either endpoint is
// down, when either direction of the link is cut, or — with the
// link's Drop probability, drawn from an independent lottery stream —
// spuriously, so detectors see realistic false-suspicion texture.
func (f *FaultInjector[M]) Probe(from, to int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped || f.down[to] || f.down[from] {
		return false
	}
	if _, cut := f.cuts[[2]int{from, to}]; cut {
		return false
	}
	if _, cut := f.cuts[[2]int{to, from}]; cut {
		return false
	}
	ef := f.plan.edgeFault(from, to)
	if ef.Drop > 0 && f.roll(from, to, streamProbe) < ef.Drop {
		return false
	}
	return true
}

// Dropped returns the number of transmissions diverted to the
// retransmit queue so far; Duped the number of injected duplicates.
func (f *FaultInjector[M]) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

func (f *FaultInjector[M]) Duped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.duped
}

// ParkedMessages returns the number of messages currently parked behind
// cuts and down destinations plus those awaiting retransmission.
func (f *FaultInjector[M]) ParkedMessages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.retrans)
	for _, ms := range f.parked {
		n += len(ms)
	}
	for _, ms := range f.crashed {
		n += len(ms)
	}
	return n
}

// pump is the fault layer's single background goroutine: it re-attempts
// due retransmissions (re-rolling the loss lottery up to MaxRetransmits)
// and performs scheduled heals.
func (f *FaultInjector[M]) pump() {
	defer close(f.pumpDone)
	tick := f.plan.RetransmitBase
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	timer := time.NewTimer(tick)
	defer timer.Stop()
	for {
		select {
		case <-f.stopPump:
			return
		case <-timer.C:
			f.step(time.Now())
			timer.Reset(tick)
		}
	}
}

// step performs one pump iteration at the given time.
func (f *FaultInjector[M]) step(now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return
	}
	for key, deadline := range f.cuts {
		if !deadline.IsZero() && !now.Before(deadline) {
			f.healLocked(key)
		}
	}
	kept := f.retrans[:0]
	for _, re := range f.retrans {
		if now.Before(re.due) {
			kept = append(kept, re)
			continue
		}
		// A parked destination or re-cut edge re-parks the message rather
		// than retransmitting into the void.
		if f.down[re.to] {
			f.crashed[re.to] = append(f.crashed[re.to], re.m)
			continue
		}
		key := [2]int{re.from, re.to}
		if _, cut := f.cuts[key]; cut {
			f.parked[key] = append(f.parked[key], re.m)
			continue
		}
		ef := f.plan.edgeFault(re.from, re.to)
		if re.attempts < f.plan.MaxRetransmits && ef.Drop > 0 &&
			f.roll(re.from, re.to, streamDrop) < ef.Drop {
			re.attempts++
			re.due = now.Add(f.backoff(re.attempts))
			kept = append(kept, re)
			continue
		}
		f.eng.obs.Retransmitted(re.from, re.to)
		f.eng.enqueueOne(re.m, false)
	}
	// Zero the tail so dropped entries do not pin message payloads.
	for i := len(kept); i < len(f.retrans); i++ {
		f.retrans[i] = retransEntry[M]{}
	}
	f.retrans = kept
}

// settle force-delivers every queued retransmission and performs due
// scheduled heals — the Quiesce hook. It reports whether it enqueued
// anything. Manually cut edges and down destinations stay parked:
// quiescing a partitioned engine settles everything deliverable and
// leaves the partition backlog for Heal / SetDown.
func (f *FaultInjector[M]) settle() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return false
	}
	flushed := false
	now := time.Now()
	for key, deadline := range f.cuts {
		if !deadline.IsZero() && !now.Before(deadline) {
			if len(f.parked[key]) > 0 {
				flushed = true
			}
			f.healLocked(key)
		}
	}
	for _, re := range f.retrans {
		if f.down[re.to] {
			f.crashed[re.to] = append(f.crashed[re.to], re.m)
			continue
		}
		key := [2]int{re.from, re.to}
		if _, cut := f.cuts[key]; cut {
			f.parked[key] = append(f.parked[key], re.m)
			continue
		}
		f.eng.obs.Retransmitted(re.from, re.to)
		f.eng.enqueueOne(re.m, false)
		flushed = true
	}
	for i := range f.retrans {
		f.retrans[i] = retransEntry[M]{}
	}
	f.retrans = f.retrans[:0]
	return flushed
}

// stop shuts the pump down and drops everything still parked (Close
// semantics: undelivered messages die with the engine).
func (f *FaultInjector[M]) stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	f.mu.Unlock()
	close(f.stopPump)
	<-f.pumpDone
	// With the pump joined, admit in pass-through and settle a no-op,
	// nothing touches the books again: cancel every pending retransmit
	// and drop the parked backlogs deterministically, so Close leaves no
	// timer-armed entry behind and releases the pinned payloads now
	// rather than at the garbage collector's whim.
	f.mu.Lock()
	for i := range f.retrans {
		f.retrans[i] = retransEntry[M]{}
	}
	f.retrans = f.retrans[:0]
	clear(f.parked)
	clear(f.crashed)
	f.mu.Unlock()
}

// String summarizes the injector state for diagnostics.
func (f *FaultInjector[M]) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("faults{cuts=%d down=%d retrans=%d dropped=%d duped=%d}",
		len(f.cuts), len(f.down), len(f.retrans), f.dropped, f.duped)
}
