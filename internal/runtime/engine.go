// Package runtime is the shared live delivery engine behind both of the
// paper's deployment shapes: the replica cluster (internal/sim.Cluster,
// Section 3.3) and the client-server architecture
// (internal/clientserver.LiveSystem, Appendix E). A fixed pool of workers
// pulls messages from bounded per-destination inboxes and hands each one
// to a caller-supplied deliver callback, so the goroutine count is the
// worker-pool size regardless of traffic — never one goroutine per
// message.
//
// The engine realizes the paper's system model — reliable, point-to-point,
// NOT FIFO — by seeded shuffle: each delivery takes a uniformly random
// buffered message from the destination's inbox, so delivery order is
// arbitrarily reordered even though the goroutine count stays fixed.
//
// Backpressure contract: Send (the client-operation path) blocks while a
// destination inbox is at capacity, so a fast writer cannot grow memory
// without bound. Forward (the worker path — messages produced while
// delivering another message) enqueues above capacity instead: a worker
// that blocked on a full inbox could deadlock the pool, and the bounded
// worker count already bounds the transient overshoot to one fanout per
// worker.
package runtime

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Message is anything the engine can route: it names its destination
// inbox. core.Envelope and clientserver.UpdateMsg implement it.
type Message interface {
	Dest() int
}

// Options configures an Engine. The zero value selects the defaults
// documented per field.
type Options struct {
	// Workers is the delivery worker-pool size. The default (zero) is
	// GOMAXPROCS but at least 2; an explicit count is used as given.
	Workers int
	// InboxCapacity bounds each destination's inbox (default 1024). Send
	// blocks while a destination inbox is full.
	InboxCapacity int
	// MaxDelay adds an artificial per-delivery delay of up to this
	// duration (default 0). Reordering does not need it — the inbox
	// shuffle reorders regardless — but stress tests use it to hold
	// messages in flight longer.
	MaxDelay time.Duration
	// Seed drives the per-inbox delivery shuffles (default 1).
	Seed int64
	// Obs, when non-nil, arms metrics collection at the engine boundary:
	// the engine keeps the registry's per-destination inbox-depth gauges
	// current, and the fault layer attributes its drop/dup/retransmit
	// lotteries per edge. Disarmed (nil, the default) the hooks cost one
	// nil check — the same discipline as the fault-injection layer.
	Obs *obs.Registry
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	if o.InboxCapacity <= 0 {
		o.InboxCapacity = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Engine is the worker-pool delivery engine. Workers run from New until
// Close; deliver callbacks execute outside the engine lock and may call
// Forward to enqueue follow-on messages.
type Engine[M Message] struct {
	deliver  func(M)
	workers  int
	capacity int
	maxDelay time.Duration
	seed     int64
	seq      atomic.Uint64 // per-delivery counter driving delay jitter

	// mu guards the inboxes, the ready queue and the lifecycle flags.
	// Buffer operations under it are O(1); delivery work happens outside
	// it in the caller's deliver callback.
	mu        sync.Mutex
	workAvail *sync.Cond // a ready entry was pushed, or shutdown began
	spaceCond *sync.Cond // an inbox crossed back below capacity
	idleCond  *sync.Cond // outstanding hit zero
	inboxes   []inbox[M]
	ready     []int // non-empty inboxes, FIFO, deduplicated
	readyHead int
	// outstanding counts messages buffered in inboxes plus messages a
	// worker is currently delivering (a delivery's forwards are enqueued
	// before its own count drops, so the counter never dips to zero while
	// causally-produced work remains).
	outstanding int
	stopping    bool // workers exit once the ready queue is empty
	wg          sync.WaitGroup

	// faults, when non-nil, intercepts every enqueue — the seeded
	// fault-injection layer (see fault.go). Set once at construction
	// (NewWithFaults) and never mutated, so the disabled path costs one
	// nil check.
	faults *FaultInjector[M]
	// obs, when non-nil, receives inbox-depth gauge updates (see
	// Options.Obs). Set once at construction and never mutated.
	obs *obs.Registry
}

// inbox buffers in-flight messages destined for one inbox index. Guarded
// by Engine.mu.
type inbox[M Message] struct {
	buf []M
	rng *rand.Rand // seeded shuffle: which buffered message delivers next
	// queued marks the destination as present in the ready queue, keeping
	// at most one entry per destination there.
	queued bool
}

// New builds and starts an engine with one inbox per destination. The
// worker pool runs until Close; each worker hands messages to deliver.
func New[M Message](destinations int, opts Options, deliver func(M)) *Engine[M] {
	opts = opts.withDefaults()
	e := &Engine[M]{
		deliver:  deliver,
		workers:  opts.Workers,
		capacity: opts.InboxCapacity,
		maxDelay: opts.MaxDelay,
		seed:     opts.Seed,
		obs:      opts.Obs,
	}
	e.workAvail = sync.NewCond(&e.mu)
	e.spaceCond = sync.NewCond(&e.mu)
	e.idleCond = sync.NewCond(&e.mu)
	e.inboxes = make([]inbox[M], destinations)
	for r := range e.inboxes {
		// Distinct odd multipliers decorrelate the per-inbox streams
		// derived from one user-facing seed.
		e.inboxes[r].rng = rand.New(rand.NewSource(e.seed + int64(r+1)*0x4f1bdcdcbfa53e0b))
	}
	e.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go e.worker()
	}
	return e
}

// NewWithFaults builds and starts an engine whose send/forward boundary
// runs through a seeded fault-injection layer: every message is subject
// to the plan's loss/duplication lottery and to the injector's runtime
// partition and crash controls. clone must return an independently
// deliverable copy of a message (deep-copying any pooled buffers); nil
// disables duplication. Both deployment shapes — the replica cluster and
// the client-server system — inherit fault injection through this one
// boundary.
func NewWithFaults[M Message](destinations int, opts Options, plan FaultPlan, clone func(M) M, deliver func(M)) *Engine[M] {
	e := New(destinations, opts, deliver)
	e.faults = newFaultInjector(e, plan, clone)
	go e.faults.pump()
	return e
}

// Faults returns the engine's fault injector, or nil when the engine
// was built without one.
func (e *Engine[M]) Faults() *FaultInjector[M] { return e.faults }

// Workers returns the delivery worker-pool size.
func (e *Engine[M]) Workers() int { return e.workers }

// Send files messages into their destination inboxes, blocking while a
// destination inbox is at capacity — the backpressure contract for client
// operations. Messages sent after shutdown has drained the engine are
// dropped: the workers that would deliver them are gone. It returns the
// number of messages actually accepted (a prefix of ms), so callers can
// keep transport counters honest across shutdown races.
func (e *Engine[M]) Send(ms ...M) int { return e.enqueue(ms, true) }

// Forward files messages without backpressure — the worker path, used
// for messages produced while delivering another message. A worker that
// blocked on a full inbox could deadlock the pool, so forwards overshoot
// capacity instead; the bounded worker count bounds the overshoot.
// Like Send, it returns the number of messages accepted.
func (e *Engine[M]) Forward(ms ...M) int { return e.enqueue(ms, false) }

func (e *Engine[M]) enqueue(ms []M, backpressure bool) int {
	if len(ms) == 0 {
		return 0
	}
	if e.faults != nil {
		return e.faults.send(ms, backpressure)
	}
	accepted := 0
	e.mu.Lock()
	for _, m := range ms {
		to := m.Dest()
		if backpressure {
			for len(e.inboxes[to].buf) >= e.capacity && !e.stopping {
				e.spaceCond.Wait()
			}
		}
		if e.stopping {
			break
		}
		ib := &e.inboxes[to]
		ib.buf = append(ib.buf, m)
		if e.obs != nil {
			e.obs.QueueDepth(to, len(ib.buf))
		}
		e.outstanding++
		accepted++
		if !ib.queued {
			ib.queued = true
			e.pushReady(to)
			e.workAvail.Signal()
		}
	}
	e.mu.Unlock()
	return accepted
}

// enqueueOne files a single message directly into its inbox, bypassing
// the fault layer — the delivery half the fault layer itself uses, and
// the reason its flush paths may hold the injector lock: without
// backpressure this never blocks.
func (e *Engine[M]) enqueueOne(m M, backpressure bool) int {
	to := m.Dest()
	e.mu.Lock()
	if backpressure {
		for len(e.inboxes[to].buf) >= e.capacity && !e.stopping {
			e.spaceCond.Wait()
		}
	}
	if e.stopping {
		e.mu.Unlock()
		return 0
	}
	ib := &e.inboxes[to]
	ib.buf = append(ib.buf, m)
	if e.obs != nil {
		e.obs.QueueDepth(to, len(ib.buf))
	}
	e.outstanding++
	if !ib.queued {
		ib.queued = true
		e.pushReady(to)
		e.workAvail.Signal()
	}
	e.mu.Unlock()
	return 1
}

// pushReady appends to the ready queue, reclaiming the consumed prefix
// once it dominates. Caller holds mu.
func (e *Engine[M]) pushReady(r int) {
	if e.readyHead > 0 && e.readyHead >= len(e.ready)/2 {
		e.ready = append(e.ready[:0], e.ready[e.readyHead:]...)
		e.readyHead = 0
	}
	e.ready = append(e.ready, r)
}

// worker is one delivery loop: pop a destination with buffered messages,
// take a random one from its inbox, deliver it outside the central lock.
func (e *Engine[M]) worker() {
	defer e.wg.Done()
	var zero M
	e.mu.Lock()
	for {
		for e.readyHead == len(e.ready) && !e.stopping {
			e.workAvail.Wait()
		}
		if e.readyHead == len(e.ready) { // stopping and drained
			e.mu.Unlock()
			return
		}
		r := e.ready[e.readyHead]
		e.readyHead++
		ib := &e.inboxes[r]
		ib.queued = false
		if len(ib.buf) == 0 {
			continue // raced with another worker; nothing left here
		}
		// Seeded shuffle: deliver a uniformly random buffered message.
		// Swap-remove keeps the take O(1); the vacated slot is zeroed so
		// the inbox does not pin delivered message payloads.
		i := ib.rng.Intn(len(ib.buf))
		m := ib.buf[i]
		last := len(ib.buf) - 1
		ib.buf[i] = ib.buf[last]
		ib.buf[last] = zero
		ib.buf = ib.buf[:last]
		if e.obs != nil {
			e.obs.QueueDepth(r, len(ib.buf))
		}
		if len(ib.buf) == e.capacity-1 {
			// Crossed back below the bound: wake blocked senders. Inboxes
			// can sit above capacity transiently (forward overshoot), in
			// which case later takes re-cross and re-signal.
			e.spaceCond.Broadcast()
		}
		if len(ib.buf) > 0 && !ib.queued {
			ib.queued = true
			e.pushReady(r)
			e.workAvail.Signal()
		}
		e.mu.Unlock()

		if e.maxDelay > 0 {
			// splitmix64-style hash of the delivery counter gives
			// deterministic-ish jitter without sharing a PRNG across
			// workers.
			z := e.seq.Add(1) * 0x9e3779b97f4a7c15
			z ^= z >> 31
			time.Sleep(time.Duration(z % uint64(e.maxDelay)))
		}
		e.deliver(m)

		e.mu.Lock()
		e.outstanding--
		if e.outstanding == 0 {
			e.idleCond.Broadcast()
		}
	}
}

// Quiesce blocks until no messages are in flight. Messages a protocol
// buffers internally after ingest (a liveness failure) do not count as in
// flight, so Quiesce terminates even for broken protocols.
//
// Under fault injection Quiesce also settles the retransmit queue: every
// diverted transmission is force-delivered (loss is transient in the
// paper's reliable model) and due scheduled heals are performed, looping
// until nothing remains in flight. Messages parked behind a manual cut
// or a down destination stay parked — heal or restart first for a fully
// settled system.
func (e *Engine[M]) Quiesce() {
	for {
		e.mu.Lock()
		for e.outstanding != 0 {
			e.idleCond.Wait()
		}
		e.mu.Unlock()
		if e.faults == nil {
			return
		}
		if e.faults.settle() {
			continue // the flush put messages back in flight; drain again
		}
		// The settle was empty, but the fault pump may have flushed
		// retransmissions between our drain and the settle: re-check.
		e.mu.Lock()
		done := e.outstanding == 0
		e.mu.Unlock()
		if done {
			return
		}
	}
}

// Close waits for all in-flight deliveries to drain, then stops the
// worker pool. It returns only after every worker has exited — no
// goroutines outlive the engine. Callers gate their own client operations
// before calling Close; sends racing shutdown are dropped once the drain
// begins.
func (e *Engine[M]) Close() {
	if e.faults != nil {
		// Stop the pump first so nothing re-enters the inboxes mid-drain;
		// messages still parked in the fault layer die with the engine,
		// like any message sent after shutdown.
		e.faults.stop()
	}
	e.mu.Lock()
	for e.outstanding != 0 {
		e.idleCond.Wait()
	}
	e.stopping = true
	e.workAvail.Broadcast()
	e.spaceCond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Outstanding returns the number of in-flight messages: buffered in
// inboxes or currently being delivered. After Close it is zero.
func (e *Engine[M]) Outstanding() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.outstanding
}
