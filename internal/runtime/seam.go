package runtime

import "time"

// Inboxes is the send/forward delivery contract both deployment seams
// satisfy: the in-process Engine (bounded channel-backed inboxes drained
// by the worker pool) and, across process boundaries, the TCP transport
// in internal/wire (bounded per-peer frame queues drained by writer
// goroutines). Runtimes written against this interface do not care
// whether a destination is a struct or a process.
//
// The contract, shared verbatim by both implementations:
//
//   - Send applies backpressure: it blocks while a destination's queue is
//     at capacity, so a fast writer cannot grow memory without bound.
//   - Forward is backpressure-exempt: messages produced while delivering
//     another message enqueue above capacity, because a delivering worker
//     that blocked on a full queue could deadlock the pipeline.
//   - Both return the number of messages accepted (a prefix); sends
//     racing shutdown are dropped, never half-applied.
//   - Quiesce blocks until nothing is in flight; Close drains then stops,
//     leaving no goroutines behind.
type Inboxes[M Message] interface {
	Send(ms ...M) int
	Forward(ms ...M) int
	Quiesce()
	Close()
	Outstanding() int
}

// seamMsg pins the compile-time assertion below without reaching into a
// client package's message type.
type seamMsg struct{}

func (seamMsg) Dest() int { return 0 }

var _ Inboxes[seamMsg] = (*Engine[seamMsg])(nil)

// Backoff returns the delay before retry attempt n (n ≥ 1): base doubled
// per attempt, saturating at max. It is the repository's single retry
// discipline — the fault layer's retransmit queue and the wire
// transport's reconnect loop both use it, so an unclamped base<<attempts
// can never overflow time.Duration into immediate-retry storms.
func Backoff(base time.Duration, attempts int, max time.Duration) time.Duration {
	if base <= 0 || base >= max {
		return max
	}
	d := base
	for i := 1; i < attempts; i++ {
		d <<= 1
		if d <= 0 || d >= max {
			return max
		}
	}
	return d
}
