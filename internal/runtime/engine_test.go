package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testMsg routes on its dest field and carries a payload for assertions.
type testMsg struct {
	dest int
	val  int
}

func (m testMsg) Dest() int { return m.dest }

func TestEngineDeliversEverything(t *testing.T) {
	const dests = 8
	const msgs = 500
	var mu sync.Mutex
	got := make(map[int][]int)
	e := New(dests, Options{Workers: 4, Seed: 3}, func(m testMsg) {
		mu.Lock()
		got[m.dest] = append(got[m.dest], m.val)
		mu.Unlock()
	})
	for i := 0; i < msgs; i++ {
		e.Send(testMsg{dest: i % dests, val: i})
	}
	e.Quiesce()
	if n := e.Outstanding(); n != 0 {
		t.Errorf("Outstanding after Quiesce = %d", n)
	}
	e.Close()
	total := 0
	for _, vs := range got {
		total += len(vs)
	}
	if total != msgs {
		t.Errorf("delivered %d of %d messages", total, msgs)
	}
}

// TestEngineForwardCascade checks that deliveries forwarding new messages
// keep the outstanding counter balanced: a chain of forwards must fully
// drain before Quiesce returns.
func TestEngineForwardCascade(t *testing.T) {
	const hops = 64
	var e *Engine[testMsg]
	var delivered atomic.Int64
	e = New(2, Options{Workers: 2}, func(m testMsg) {
		delivered.Add(1)
		if m.val < hops {
			e.Forward(testMsg{dest: 1 - m.dest, val: m.val + 1})
		}
	})
	e.Send(testMsg{dest: 0, val: 0})
	e.Quiesce()
	if n := delivered.Load(); n != hops+1 {
		t.Errorf("delivered %d messages, want %d", n, hops+1)
	}
	e.Close()
}

// TestEngineBackpressureTinyInbox drives many sends through capacity-1
// inboxes: senders must block rather than grow memory, and the run must
// drain without deadlock.
func TestEngineBackpressureTinyInbox(t *testing.T) {
	var delivered atomic.Int64
	e := New(3, Options{Workers: 2, InboxCapacity: 1}, func(m testMsg) {
		delivered.Add(1)
		time.Sleep(10 * time.Microsecond)
	})
	var wg sync.WaitGroup
	const perSender = 100
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				e.Send(testMsg{dest: (s + i) % 3, val: i})
			}
		}(s)
	}
	wg.Wait()
	e.Quiesce()
	e.Close()
	if n := delivered.Load(); n != 3*perSender {
		t.Errorf("delivered %d of %d", n, 3*perSender)
	}
}

// TestEngineBoundedGoroutines pins the worker-pool property: the engine
// adds exactly Workers goroutines, independent of traffic, and Close
// removes all of them.
func TestEngineBoundedGoroutines(t *testing.T) {
	const workers = 3
	before := runtime.NumGoroutine()
	e := New(4, Options{Workers: workers, MaxDelay: 100 * time.Microsecond}, func(testMsg) {})
	for i := 0; i < 2000; i++ {
		e.Send(testMsg{dest: i % 4, val: i})
	}
	if peak := runtime.NumGoroutine(); peak > before+workers+2 {
		t.Errorf("goroutine count %d exceeds baseline %d + %d workers", peak, before, workers)
	}
	if e.Workers() != workers {
		t.Errorf("Workers = %d", e.Workers())
	}
	e.Close()
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after Close", before, after)
	}
}

// TestEngineSendAfterCloseDropped documents the shutdown contract:
// messages sent once the drain has begun are dropped, not delivered and
// not counted outstanding.
func TestEngineSendAfterCloseDropped(t *testing.T) {
	var delivered atomic.Int64
	e := New(1, Options{Workers: 2}, func(testMsg) { delivered.Add(1) })
	e.Send(testMsg{dest: 0})
	e.Close()
	n := delivered.Load()
	e.Send(testMsg{dest: 0}) // dropped: workers are gone
	if delivered.Load() != n {
		t.Error("send after Close was delivered")
	}
	if e.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after Close", e.Outstanding())
	}
}

// TestEngineDefaultOptions exercises the zero-value option resolution.
func TestEngineDefaultOptions(t *testing.T) {
	e := New(2, Options{}, func(testMsg) {})
	if e.Workers() < 2 {
		t.Errorf("default Workers = %d, want >= 2", e.Workers())
	}
	e.Send(testMsg{dest: 1})
	e.Quiesce()
	e.Close()
}
