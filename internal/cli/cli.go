// Package cli provides shared flag-level helpers for the repository's
// command-line tools: named topology and protocol selectors.
package cli

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sharegraph"
)

// Load builds a share graph (and optional client assignment) from either
// a JSON config file (when path is non-empty) or a named topology family.
func Load(path, topology string, n int, seed int64) (*sharegraph.Graph, sharegraph.ClientAssignment, error) {
	if path == "" {
		g, err := Topology(topology, n, seed)
		return g, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("read config: %w", err)
	}
	cfg, err := sharegraph.ParseConfig(data)
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph()
	if err != nil {
		return nil, nil, err
	}
	return g, cfg.Assignment(), nil
}

// Topology builds a share graph by family name. n is the size parameter
// (ignored by the fixed paper examples); seed feeds the random family.
func Topology(name string, n int, seed int64) (*sharegraph.Graph, error) {
	switch strings.ToLower(name) {
	case "fig3":
		return sharegraph.Fig3Example(), nil
	case "fig5":
		return sharegraph.Fig5Example(), nil
	case "hm1":
		g, _ := sharegraph.HelaryMilani1()
		return g, nil
	case "hm2":
		g, _ := sharegraph.HelaryMilani2()
		return g, nil
	case "ring":
		return sharegraph.Ring(n), nil
	case "line":
		return sharegraph.Line(n), nil
	case "star":
		return sharegraph.Star(n), nil
	case "clique":
		return sharegraph.PairClique(n), nil
	case "fullrep":
		return sharegraph.FullReplication(n, 3), nil
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		return sharegraph.Grid(side, (n+side-1)/side), nil
	case "random":
		return sharegraph.RandomK(n, 3*n, 3, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want %s)", name, strings.Join(TopologyNames(), "|"))
	}
}

// TopologyNames lists the accepted topology names.
func TopologyNames() []string {
	names := []string{"fig3", "fig5", "hm1", "hm2", "ring", "line", "star", "clique", "fullrep", "grid", "random"}
	sort.Strings(names)
	return names
}

// Protocol builds a protocol by name over the graph.
func Protocol(name string, g *sharegraph.Graph) (core.Protocol, error) {
	switch strings.ToLower(name) {
	case "edge-indexed", "edge", "":
		return core.NewEdgeIndexed(g)
	case "matrix":
		return baseline.NewMatrix(g), nil
	case "dummy-broadcast", "broadcast":
		return baseline.NewBroadcast(g), nil
	case "naive-vector", "vector":
		return baseline.NewNaiveVector(g), nil
	case "fifo-only", "fifo":
		return baseline.NewFIFOOnly(g), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (want edge-indexed|matrix|dummy-broadcast|naive-vector|fifo-only)", name)
	}
}
