package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTopologyNames(t *testing.T) {
	for _, name := range TopologyNames() {
		g, err := Topology(name, 5, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumReplicas() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Topology("nope", 5, 1); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestProtocolNames(t *testing.T) {
	g, err := Topology("fig3", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"edge-indexed", "edge", "", "matrix", "dummy-broadcast", "broadcast", "naive-vector", "vector", "fifo-only", "fifo"} {
		p, err := Protocol(name, g)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if _, err := p.NewNodes(); err != nil {
			t.Errorf("%q: NewNodes: %v", name, err)
		}
	}
	if _, err := Protocol("nope", g); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestLoadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.json")
	data := []byte(`{
	  "replicas": [
	    {"registers": ["x"]},
	    {"registers": ["x", "y"]},
	    {"registers": ["y"]}
	  ],
	  "clients": [{"replicas": [0, 2]}]
	}`)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	g, clients, err := Load(path, "ignored", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumReplicas() != 3 || len(clients) != 1 {
		t.Errorf("replicas=%d clients=%d", g.NumReplicas(), len(clients))
	}
	if _, _, err := Load(filepath.Join(dir, "missing.json"), "", 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(bad, "", 0, 0); err == nil {
		t.Error("malformed config accepted")
	}
	// No path falls back to the topology family.
	g2, _, err := Load("", "ring", 4, 1)
	if err != nil || g2.NumReplicas() != 4 {
		t.Errorf("fallback failed: %v", err)
	}
}
