package sim

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// The oracle's two set representations must be indistinguishable through
// the simulator: a deterministic run audited by the persistent
// copy-on-write tracker and the same run audited by the flat-bitset
// reference must produce identical verdicts and measurements — for the
// paper's algorithm (clean) and for a safety-violating baseline, under
// both the seeded-random and the adversarial LIFO schedule.
func TestRunOracleFlatVsPersistent(t *testing.T) {
	type protoCase struct {
		name  string
		build func(*sharegraph.Graph) core.Protocol
	}
	protos := []protoCase{
		{"edge-indexed", func(g *sharegraph.Graph) core.Protocol {
			p, err := core.NewEdgeIndexed(g)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		// fifo-only violates causal safety on multi-hop topologies, so
		// this case pins the violation-reporting path across oracles.
		{"fifo-only", func(g *sharegraph.Graph) core.Protocol { return baseline.NewFIFOOnly(g) }},
	}
	graphs := []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"ring8", sharegraph.Ring(8)},
		{"fig5", sharegraph.Fig5Example()},
	}
	scheds := []struct {
		name string
		mk   func(seed int64) transport.Scheduler
	}{
		{"random", func(seed int64) transport.Scheduler { return transport.NewRandom(seed) }},
		{"lifo", func(int64) transport.Scheduler { return transport.LIFOScheduler{} }},
	}
	for _, gc := range graphs {
		for _, pc := range protos {
			p := pc.build(gc.g)
			for _, sc := range scheds {
				for seed := int64(1); seed <= 3; seed++ {
					script := workload.OwnerWrites(gc.g, 300, seed)
					run := func(flat bool) *Result {
						res, err := Run(Config{
							Graph: gc.g, Protocol: p, Script: script,
							Sched: sc.mk(seed), FlatOracle: flat,
							TrackFalseDeps: true, CaptureState: true,
						})
						if err != nil {
							t.Fatalf("%s/%s/%s seed %d: %v", gc.name, pc.name, sc.name, seed, err)
						}
						return res
					}
					pers := run(false)
					flat := run(true)
					if !reflect.DeepEqual(pers, flat) {
						t.Fatalf("%s/%s/%s seed %d: results differ\npersistent: %+v\nflat: %+v",
							gc.name, pc.name, sc.name, seed, pers, flat)
					}
				}
			}
		}
	}
}

// TestClusterFlatOracleOption drives the live worker-pool cluster with
// the flat reference oracle: same protocol, real concurrency, and the
// verdict must be clean exactly as under the default persistent oracle.
func TestClusterFlatOracleOption(t *testing.T) {
	g := sharegraph.Ring(8)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []struct {
		name string
		opts []ClusterOption
		impl string
	}{
		{"persistent", nil, "persistent"},
		{"flat", []ClusterOption{WithFlatOracle()}, "flat"},
	} {
		c, err := NewCluster(g, p, append(opt.opts, WithWorkers(4), WithSeed(7))...)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Tracker().Impl(); got != opt.impl {
			t.Fatalf("%s: Tracker().Impl() = %q", opt.name, got)
		}
		violations := c.RunScript(workload.Uniform(g, 1000, 3))
		if len(violations) != 0 {
			t.Errorf("%s: live run reported %d violations: %v", opt.name, len(violations), violations[:1])
		}
		if c.PendingTotal() != 0 {
			t.Errorf("%s: %d updates stuck", opt.name, c.PendingTotal())
		}
		c.Close()
	}
}
