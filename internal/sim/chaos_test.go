package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// chaosScale picks the soak size: the full ISSUE-mandated Ring(32)×10k
// normally, a smaller ring under -short so the race-enabled CI smoke
// stays fast.
func chaosScale(t *testing.T) (n, ops int) {
	if testing.Short() {
		return 8, 2000
	}
	return 32, 10000
}

// TestChaosSoak is the headline robustness run: a ring cluster under
// 1% loss, 1% duplication and a scheduled partition+heal, audited by
// the oracle as judge. Transient faults are no excuse — the pass bar is
// zero safety violations AND full eventual liveness (every update
// applied everywhere it belongs) once the partition heals.
func TestChaosSoak(t *testing.T) {
	n, ops := chaosScale(t)
	g := sharegraph.Ring(n)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChaos(ChaosConfig{
		Graph:    g,
		Protocol: p,
		Script:   workload.OwnerWrites(g, ops, 61),
		Plan: rt.FaultPlan{
			Seed:    7,
			Default: rt.EdgeFault{Drop: 0.01, Dup: 0.01},
		},
		Partition:     true,
		PartitionA:    0,
		PartitionB:    sharegraph.ReplicaID(n / 2),
		PartitionHeal: 3 * time.Millisecond,
		Opts:          []ClusterOption{WithWorkers(8), WithSeed(11)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("oracle verdicts under chaos (want none):\n%v", res.Violations)
	}
	// PendingTotal is NOT asserted zero here: duplicated envelopes are
	// dead-parked by the per-sender ingest queues (never deliverable,
	// never applied), and they stay counted as buffered. Liveness is the
	// oracle's call — CheckLiveness demands every genuine update applied
	// everywhere it belongs, and that passed above.
	if res.Dropped == 0 || res.Duped == 0 {
		t.Errorf("chaos did not bite: dropped=%d duped=%d of %d messages",
			res.Dropped, res.Duped, res.MessagesSent)
	}
	// The workload pins one writer per register, so the final state is
	// schedule-independent; it must match a fault-free run bit for bit.
	clean, err := NewCluster(g, p, WithWorkers(8), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if v := clean.RunScript(workload.OwnerWrites(g, ops, 61)); len(v) != 0 {
		t.Fatalf("fault-free reference run has verdicts: %v", v)
	}
	if want, got := clean.StateSnapshot(), res.FinalState; !reflect.DeepEqual(want, got) {
		t.Fatal("chaos run converged to a different final state than the fault-free run")
	}
}

// TestChaosCrashRestartDifferential crashes a replica mid-workload and
// restarts it via state transfer (checkpoint + retention-log replay),
// then pins the recovered cluster's final state to a fault-free run of
// the same script. The crash window overlaps live traffic: updates
// addressed to the victim park at the transport and at the node
// boundary, and must all land after recovery.
func TestChaosCrashRestartDifferential(t *testing.T) {
	g := sharegraph.Ring(8)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	script := workload.OwnerWrites(g, 1600, 29)
	res, err := RunChaos(ChaosConfig{
		Graph:    g,
		Protocol: p,
		Script:   script,
		Plan: rt.FaultPlan{
			Seed:    3,
			Default: rt.EdgeFault{Drop: 0.02},
		},
		Crash:        true,
		CrashReplica: 5,
		Opts:         []ClusterOption{WithWorkers(4), WithSeed(17)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("oracle verdicts after crash/restart (want none):\n%v", res.Violations)
	}
	if res.PendingTotal != 0 {
		t.Errorf("quiesced with %d updates still buffered", res.PendingTotal)
	}
	clean, err := NewCluster(g, p, WithWorkers(4), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if v := clean.RunScript(script); len(v) != 0 {
		t.Fatalf("fault-free reference run has verdicts: %v", v)
	}
	if want, got := clean.StateSnapshot(), res.FinalState; !reflect.DeepEqual(want, got) {
		t.Fatal("recovered cluster diverged from the fault-free final state")
	}
}

// TestChaosCrashGuards pins the client-facing contract while a replica
// is down, and the recovery preconditions.
func TestChaosCrashGuards(t *testing.T) {
	g := sharegraph.Ring(4)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, p, WithChaos(rt.FaultPlan{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := g.Stores(1).Sorted()[0]
	if err := c.Restart(1); err == nil {
		t.Error("restarting a live replica should fail")
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, reg, 9); err == nil {
		t.Error("write at a crashed replica should fail")
	}
	if _, ok := c.Read(1, reg); ok {
		t.Error("read at a crashed replica should fail")
	}
	if err := c.Crash(1); err == nil {
		t.Error("double crash should fail")
	}
	if err := c.Checkpoint(1); err == nil {
		t.Error("checkpointing a crashed replica should fail")
	}
	if err := c.Restart(1); err == nil {
		t.Error("restart without a prior checkpoint should fail")
	}
	// With a checkpoint the full cycle works, twice over: the checkpoint
	// is refreshed on restore, so a second crash recovers from the first
	// recovery's basis.
	c2, err := NewCluster(g, p, WithChaos(rt.FaultPlan{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for round := 0; round < 2; round++ {
		if err := c2.Checkpoint(1); err != nil {
			t.Fatal(err)
		}
		if err := c2.Write(1, reg, core.Value(10+round)); err != nil {
			t.Fatal(err)
		}
		if err := c2.Crash(1); err != nil {
			t.Fatal(err)
		}
		if err := c2.Restart(1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if v, ok := c2.Read(1, reg); !ok || v != core.Value(10+round) {
			t.Fatalf("round %d: post-restart read = %v,%v; want %d", round, v, ok, 10+round)
		}
	}
	c2.Quiesce()
	if tr := c2.Tracker(); tr != nil {
		tr.CheckLiveness()
		if v := tr.Violations(); len(v) != 0 {
			t.Fatalf("verdicts after repeated crash cycles: %v", v)
		}
	}
}

// TestClusterMembershipObservesCrash wires the heartbeat detector to a
// live cluster and checks the view tracks a real crash/restart: the
// victim is declared Down (its probes fail in both directions), and
// rejoins as Alive with a bumped incarnation after Restart.
func TestClusterMembershipObservesCrash(t *testing.T) {
	g := sharegraph.Ring(4)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, p,
		WithChaos(rt.FaultPlan{Seed: 1}),
		WithHeartbeats(membership.Options{Interval: 200 * time.Microsecond, Threshold: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	det := c.Membership()
	if det == nil {
		t.Fatal("WithHeartbeats set but Membership() is nil")
	}
	waitStatus := func(r sharegraph.ReplicaID, want membership.Status) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if det.Status(int(r)) == want {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		t.Fatalf("replica %d never reached %v (stuck at %v)", r, want, det.Status(int(r)))
	}
	if err := c.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	before := det.Incarnation(2)
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	waitStatus(2, membership.Down)
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitStatus(2, membership.Alive)
	if det.Incarnation(2) <= before {
		t.Errorf("incarnation did not advance across rejoin: %d -> %d", before, det.Incarnation(2))
	}
}

// TestChaosDisabledGuards pins that recovery controls refuse to operate
// on a cluster built without WithChaos rather than panicking.
func TestChaosDisabledGuards(t *testing.T) {
	g := sharegraph.Ring(3)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Faults() != nil {
		t.Error("fault injector present without WithChaos")
	}
	if err := c.Crash(0); err == nil {
		t.Error("Crash should fail without WithChaos")
	}
	if err := c.Partition(0, 1, 0); err == nil {
		t.Error("Partition should fail without WithChaos")
	}
	if err := c.Checkpoint(0); err == nil {
		t.Error("Checkpoint should fail without WithChaos")
	}
}
