package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/membership"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// ChaosConfig describes one orchestrated chaos run: a workload executed
// in three phases with faults injected at the phase boundaries.
type ChaosConfig struct {
	Graph    *sharegraph.Graph
	Protocol core.Protocol
	Script   workload.Script
	// Plan seeds the per-edge loss/duplication lottery for the whole run.
	Plan rt.FaultPlan
	// Heartbeat, when non-nil, runs the membership failure detector
	// alongside the workload; its events are returned in the result.
	Heartbeat *membership.Options
	// Partition, when true, cuts PartitionA↔PartitionB in both directions
	// after the first third of the workload. PartitionHeal > 0 schedules
	// the heal; otherwise the cut lasts until the end-of-run HealAll.
	Partition              bool
	PartitionA, PartitionB sharegraph.ReplicaID
	PartitionHeal          time.Duration
	// Crash, when true, checkpoints CrashReplica up front, crashes it
	// after the first third, and restarts it (checkpoint + log replay +
	// parked-delivery flush) after the second third. The victim's
	// middle-third operations are deferred to the final third, preserving
	// its per-replica program order.
	Crash        bool
	CrashReplica sharegraph.ReplicaID
	// Reconfigure, when non-nil, live-switches the cluster onto this
	// protocol at the 2/3 boundary — after the crash victim restarts and
	// with partitions healed first (Cluster.Reconfigure requires an
	// empty fault layer). The run therefore exercises an epoch fence in
	// the middle of recovery traffic, the hardest spot for it.
	Reconfigure core.Protocol
	// Opts are extra cluster options (workers, seed, inbox capacity, …).
	Opts []ClusterOption
	// OnCluster, when non-nil, is called with the live cluster after
	// construction and before the workload starts — a hook for observers
	// (e.g. a status endpoint scraping Cluster.Metrics during the run).
	// The cluster is closed when RunChaos returns; the hook must not
	// retain it past that.
	OnCluster func(*Cluster)
}

// ChaosResult reports what a chaos run did and what the oracle thought
// of it.
type ChaosResult struct {
	// Violations is the oracle's verdict after HealAll and Quiesce:
	// safety violations plus liveness failures. A correct protocol under
	// transient faults must return none.
	Violations []causality.Violation
	// Events is the membership detector's transition history (empty
	// without Heartbeat).
	Events []membership.Event
	// FinalState is the per-replica register contents after quiescence.
	FinalState   []map[sharegraph.Register]core.Value
	MessagesSent int64
	MetaBytes    int64
	Dropped      uint64
	Duped        uint64
	PendingTotal int
}

// RunChaos executes the configured run: phase 1 fault-free apart from
// the ambient loss/duplication lottery, faults injected at the 1/3
// boundary, recovery at the 2/3 boundary, then HealAll, Quiesce and a
// full oracle audit. Transient faults never excuse a verdict: every
// cut heals and every crash restarts before the audit, so zero
// violations — including liveness — is the pass criterion.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	opts := append([]ClusterOption{WithChaos(cfg.Plan)}, cfg.Opts...)
	if cfg.Heartbeat != nil {
		opts = append(opts, WithHeartbeats(*cfg.Heartbeat))
	}
	c, err := NewCluster(cfg.Graph, cfg.Protocol, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if cfg.OnCluster != nil {
		cfg.OnCluster(c)
	}

	if cfg.Crash {
		if err := c.Checkpoint(cfg.CrashReplica); err != nil {
			return nil, err
		}
	}

	// Split the script into thirds, keeping per-replica order.
	n := cfg.Graph.NumReplicas()
	var phases [3][][]workload.Op
	for p := range phases {
		phases[p] = make([][]workload.Op, n)
	}
	for i, op := range cfg.Script {
		p := i * 3 / len(cfg.Script)
		phases[p][op.Replica] = append(phases[p][op.Replica], op)
	}

	var val atomic.Int64
	runPhase := func(queues [][]workload.Op) {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			if len(queues[r]) == 0 {
				continue
			}
			wg.Add(1)
			go func(r int, ops []workload.Op) {
				defer wg.Done()
				for _, op := range ops {
					if op.IsRead {
						c.Read(sharegraph.ReplicaID(r), op.Reg)
						continue
					}
					v := core.Value(op.Val)
					if v == 0 {
						v = core.Value(val.Add(1))
					}
					_ = c.Write(sharegraph.ReplicaID(r), op.Reg, v)
				}
			}(r, queues[r])
		}
		wg.Wait()
	}

	runPhase(phases[0])

	if cfg.Partition {
		if err := c.Partition(cfg.PartitionA, cfg.PartitionB, cfg.PartitionHeal); err != nil {
			return nil, err
		}
	}
	var deferred []workload.Op
	if cfg.Crash {
		if err := c.Crash(cfg.CrashReplica); err != nil {
			return nil, err
		}
		deferred = phases[1][cfg.CrashReplica]
		phases[1][cfg.CrashReplica] = nil
	}

	runPhase(phases[1])

	if cfg.Crash {
		if err := c.Restart(cfg.CrashReplica); err != nil {
			return nil, fmt.Errorf("restart replica %d: %w", cfg.CrashReplica, err)
		}
		phases[2][cfg.CrashReplica] = append(deferred, phases[2][cfg.CrashReplica]...)
	}

	if cfg.Reconfigure != nil {
		// The fence rejects parked messages, so flush the cuts first; the
		// ambient loss/duplication lottery stays armed across the switch.
		if cfg.Partition {
			if err := c.HealAll(); err != nil {
				return nil, err
			}
		}
		if err := c.Reconfigure(cfg.Reconfigure); err != nil {
			return nil, fmt.Errorf("reconfigure: %w", err)
		}
	}

	runPhase(phases[2])

	if err := c.HealAll(); err != nil {
		return nil, err
	}
	c.Quiesce()

	res := &ChaosResult{
		FinalState:   c.StateSnapshot(),
		MessagesSent: c.MessagesSent(),
		MetaBytes:    c.MetaBytes(),
		PendingTotal: c.PendingTotal(),
	}
	if f := c.Faults(); f != nil {
		res.Dropped = f.Dropped()
		res.Duped = f.Duped()
	}
	if d := c.Membership(); d != nil {
		d.Stop()
		res.Events = d.Events()
	}
	if tr := c.Tracker(); tr != nil {
		tr.CheckLiveness()
		res.Violations = tr.Violations()
	}
	return res, nil
}
