package sim

// Differential tests between the two runtimes: a single-writer-per-register
// workload (workload.OwnerWrites) has a schedule-independent final state
// for every protocol that delivers each sender's updates in send order, so
// the live worker-pool cluster and the deterministic runner must converge
// to identical register contents at every replica — under any worker
// count, inbox capacity, shuffle seed or scheduler. Run with -race this
// also hammers the cluster's locking.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// diffProtocols builds the four live protocols the differential test
// covers: the paper's algorithm plus the safe baselines. NaiveVector is
// deliberately absent — its liveness failure (an update can wait forever
// for a message it was never sent) makes the final state
// schedule-DEPENDENT by design; it is the paper's negative example, not a
// convergence candidate. FIFOOnly violates causal safety but still
// converges per register under a single-writer workload, so state
// equivalence holds even though the oracle flags it on other workloads.
func diffProtocols(t testing.TB, g *sharegraph.Graph) map[string]func() core.Protocol {
	t.Helper()
	return map[string]func() core.Protocol{
		"edge-indexed": func() core.Protocol {
			p, err := core.NewEdgeIndexed(g)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"fifo-only": func() core.Protocol { return baseline.NewFIFOOnly(g) },
		"vector":    func() core.Protocol { return baseline.NewBroadcast(g) },
		"matrix":    func() core.Protocol { return baseline.NewMatrix(g) },
	}
}

func TestClusterRunnerStateEquivalence(t *testing.T) {
	topos := []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"fig5", sharegraph.Fig5Example()},
		{"ring8", sharegraph.Ring(8)},
		{"grid9", sharegraph.Grid(3, 3)},
	}
	for _, topo := range topos {
		script := workload.OwnerWrites(topo.g, 400, 21)
		for name, build := range diffProtocols(t, topo.g) {
			t.Run(fmt.Sprintf("%s/%s", topo.name, name), func(t *testing.T) {
				// Deterministic runner under a seeded-random schedule.
				res, err := Run(Config{
					Graph: topo.g, Protocol: build(), Script: script,
					Sched: transport.NewRandom(5), CaptureState: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Live worker-pool cluster, small inboxes to exercise
				// backpressure, fresh protocol instance.
				c, err := NewCluster(topo.g, build(),
					WithWorkers(4), WithInboxCapacity(16), WithSeed(77))
				if err != nil {
					t.Fatal(err)
				}
				c.RunScript(script)
				live := c.StateSnapshot()
				c.Close()
				if !reflect.DeepEqual(res.FinalState, live) {
					t.Errorf("final states diverge:\nrunner:  %v\ncluster: %v",
						res.FinalState, live)
				}
			})
		}
	}
}

// TestClusterRunnerStateEquivalenceSchedules double-checks the premise on
// the runner alone: OwnerWrites final state must not depend on the
// deterministic schedule either.
func TestClusterRunnerStateEquivalenceSchedules(t *testing.T) {
	g := sharegraph.Ring(6)
	script := workload.OwnerWrites(g, 200, 3)
	var want []map[sharegraph.Register]core.Value
	for _, mk := range []func() transport.Scheduler{
		func() transport.Scheduler { return transport.FIFOScheduler{} },
		func() transport.Scheduler { return transport.LIFOScheduler{} },
		func() transport.Scheduler { return transport.NewRandom(13) },
	} {
		p, err := core.NewEdgeIndexed(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Graph: g, Protocol: p, Script: script, Sched: mk(), CaptureState: true})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.FinalState
			continue
		}
		if !reflect.DeepEqual(want, res.FinalState) {
			t.Errorf("schedule-dependent final state:\nfirst: %v\n  got: %v", want, res.FinalState)
		}
	}
}
