package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// TestClusterMetricsArmed checks the armed registry against the
// cluster's own ground truth after a quiesced workload: every message
// sent was delivered somewhere, edge attribution sums to the totals, and
// the meta-byte accounting matches the legacy counter.
func TestClusterMetricsArmed(t *testing.T) {
	g := sharegraph.Ring(6)
	c, err := NewCluster(g, edgeIndexed(t, g), WithMetrics(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if violations := c.RunScript(workload.Uniform(g, 400, 11)); len(violations) != 0 {
		t.Fatalf("armed run violations: %v", violations)
	}
	m := c.Metrics()
	if m.Runtime != "cluster" {
		t.Errorf("runtime = %q, want cluster", m.Runtime)
	}
	if m.Messages != c.MessagesSent() || m.MetaBytes != c.MetaBytes() {
		t.Errorf("legacy totals diverge: %d/%d vs %d/%d",
			m.Messages, m.MetaBytes, c.MessagesSent(), c.MetaBytes())
	}
	if len(m.Replicas) != g.NumReplicas() {
		t.Fatalf("replica breakdown has %d rows, want %d", len(m.Replicas), g.NumReplicas())
	}
	var sent, bytes, delivered, edgeDelivered int64
	for _, e := range m.Edges {
		sent += e.Sent
		bytes += e.Bytes
		edgeDelivered += e.Delivered
	}
	for _, r := range m.Replicas {
		delivered += r.Delivered
	}
	if sent != m.Messages {
		t.Errorf("edge sent sum = %d, want messages %d", sent, m.Messages)
	}
	if bytes != m.MetaBytes {
		t.Errorf("edge byte sum = %d, want meta bytes %d", bytes, m.MetaBytes)
	}
	// Quiesced: everything sent was delivered, and edge attribution
	// agrees with the per-replica counters.
	if delivered != m.Messages || edgeDelivered != m.Messages {
		t.Errorf("delivered sums = %d (replica) / %d (edge), want %d",
			delivered, edgeDelivered, m.Messages)
	}
	if m.Outstanding != 0 || m.Parked != 0 {
		t.Errorf("quiesced cluster reports outstanding=%d parked=%d", m.Outstanding, m.Parked)
	}

	// The prober is constructed but not started in plain metrics mode;
	// deterministic drivers tick it explicitly.
	p := c.Prober()
	if p == nil {
		t.Fatal("armed cluster has no prober")
	}
	p.Tick(time.Now())
	if p.Probes() == 0 {
		t.Error("prober tick issued no probes")
	}
	probed := false
	for _, e := range c.Metrics().Edges {
		if e.Probes > 0 && e.LatencyNs > 0 {
			probed = true
		}
	}
	if !probed {
		t.Error("no edge carries a probed latency EWMA after a tick")
	}
}

// TestClusterMetricsDisarmed pins the disarmed contract at the public
// surface: Metrics still reports the legacy totals, but no breakdowns
// exist and no prober runs.
func TestClusterMetricsDisarmed(t *testing.T) {
	g := sharegraph.Ring(4)
	c, err := NewCluster(g, edgeIndexed(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if violations := c.RunScript(workload.Uniform(g, 100, 5)); len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	m := c.Metrics()
	if m.Messages == 0 || m.MetaBytes == 0 {
		t.Error("disarmed Metrics lost the legacy totals")
	}
	if m.Replicas != nil || m.Edges != nil || m.Queues != nil {
		t.Errorf("disarmed Metrics carries breakdowns: %+v", m)
	}
	if c.Prober() != nil {
		t.Error("disarmed cluster built a prober")
	}
}

// TestClusterMetricsDisarmedZeroAlloc asserts the acceptance criterion
// from the chaos-hook precedent: with the registry disarmed, the
// write-and-deliver hot path allocates exactly as much as before the
// observability layer existed — nothing in steady state.
func TestClusterMetricsDisarmedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool sheds items, so alloc accounting is meaningless")
	}
	g := sharegraph.Ring(4)
	c, err := NewCluster(g, edgeIndexed(t, g), WithoutAudit(), WithWorkers(1), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	regs := g.Registers()
	reg := regs[0]
	owner := g.Holders(reg)[0]
	cycle := func() {
		for i := 0; i < 64; i++ {
			if err := c.Write(owner, reg, 1); err != nil {
				t.Fatal(err)
			}
		}
		c.Quiesce()
	}
	for i := 0; i < 16; i++ { // warm pools, slice capacities and inboxes
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("disarmed metrics hot path allocates: %.2f allocs per 64-write cycle", avg)
	}
}

// TestLoadAwareDifferential is the acceptance test for the load-aware
// relay choice: on the same single-writer workload, a load-aware cluster
// must produce zero causal violations and the exact final state of a
// plain cluster — the fanout SET is untouched, only its emission order
// changes, and the engine's delivery shuffle already absorbs arbitrary
// orders.
func TestLoadAwareDifferential(t *testing.T) {
	g := sharegraph.Ring(6)
	script := workload.OwnerWrites(g, 400, 21)

	plain, err := NewCluster(g, edgeIndexed(t, g), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if violations := plain.RunScript(script); len(violations) != 0 {
		t.Fatalf("plain run violations: %v", violations)
	}
	want := plain.StateSnapshot()
	wantMsgs := plain.MessagesSent()
	plain.Close()

	la, err := NewCluster(g, edgeIndexed(t, g), WithSeed(5), WithLoadAware())
	if err != nil {
		t.Fatal(err)
	}
	if violations := la.RunScript(script); len(violations) != 0 {
		t.Fatalf("load-aware run violations: %v", violations)
	}
	if p := la.PendingTotal(); p != 0 {
		t.Errorf("%d updates stuck pending under load-aware dispatch", p)
	}
	got := la.StateSnapshot()
	m := la.Metrics()
	la.Close()

	if !reflect.DeepEqual(want, got) {
		t.Errorf("load-aware final state diverges:\nplain:      %v\nload-aware: %v", want, got)
	}
	// Same protocol, same workload: the message count is identical — the
	// route choice reorders, it never reroutes.
	if m.Messages != wantMsgs {
		t.Errorf("load-aware sent %d messages, plain sent %d", m.Messages, wantMsgs)
	}
	// WithLoadAware implies an armed registry and a running prober.
	if len(m.Replicas) != g.NumReplicas() {
		t.Errorf("load-aware cluster has no replica breakdown")
	}
}

// TestLoadAwareUnderChaos combines the load-aware route choice with the
// fault layer: loss, duplication and a transient partition must not
// break safety or liveness when the fanout is re-ranked by load.
func TestLoadAwareUnderChaos(t *testing.T) {
	g := sharegraph.Ring(5)
	c, err := NewCluster(g, edgeIndexed(t, g), WithSeed(7), WithLoadAware(),
		WithChaos(rt.FaultPlan{Seed: 31, Default: rt.EdgeFault{Drop: 0.05, Dup: 0.05}}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if violations := c.RunScript(workload.Uniform(g, 300, 23)); len(violations) != 0 {
		t.Errorf("load-aware chaos violations: %v", violations)
	}
	// PendingTotal is not asserted zero: duplicated envelopes dead-park in
	// the per-sender ingest queues by design (see TestChaosSoak). The
	// oracle's liveness audit above is the authoritative check.
	m := c.Metrics()
	if m.Dropped == 0 && m.Duped == 0 {
		t.Log("chaos plan injected no faults this run (acceptable, seeded lottery)")
	}
}

// TestReorderFanout pins the permutation helper: ranked destinations
// move to the front in rank order, unranked envelopes keep their
// relative order behind them.
func TestReorderFanout(t *testing.T) {
	mkEnvs := func(tos ...sharegraph.ReplicaID) []core.Envelope {
		envs := make([]core.Envelope, len(tos))
		for i, to := range tos {
			envs[i].To = to
		}
		return envs
	}
	envTos := func(envs []core.Envelope) []sharegraph.ReplicaID {
		tos := make([]sharegraph.ReplicaID, len(envs))
		for i := range envs {
			tos[i] = envs[i].To
		}
		return tos
	}
	envs := mkEnvs(1, 2, 3, 4)
	reorderFanout(envs, []sharegraph.ReplicaID{3, 1})
	if got := envTos(envs); !reflect.DeepEqual(got, []sharegraph.ReplicaID{3, 1, 2, 4}) {
		t.Errorf("reorderFanout = %v, want [3 1 2 4]", got)
	}
	// Rank mentioning absent destinations is harmless.
	envs = mkEnvs(2, 0)
	reorderFanout(envs, []sharegraph.ReplicaID{9, 0, 2})
	if got := envTos(envs); !reflect.DeepEqual(got, []sharegraph.ReplicaID{0, 2}) {
		t.Errorf("reorderFanout with absent rank = %v, want [0 2]", got)
	}
	// Empty rank leaves the batch untouched.
	envs = mkEnvs(1, 0)
	reorderFanout(envs, nil)
	if got := envTos(envs); !reflect.DeepEqual(got, []sharegraph.ReplicaID{1, 0}) {
		t.Errorf("reorderFanout with nil rank = %v", got)
	}
}

// TestClusterMetricsSnapshotRace hammers Metrics from a scraper
// goroutine while a workload runs — the /statusz pattern. Run under
// -race this pins that live snapshots are safe.
func TestClusterMetricsSnapshotRace(t *testing.T) {
	g := sharegraph.Ring(5)
	c, err := NewCluster(g, edgeIndexed(t, g), WithMetrics(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				s := c.Metrics()
				_ = obs.EdgeKey(0, 1)
				if s.Messages < 0 {
					panic("negative message count")
				}
			}
		}
	}()
	if violations := c.RunScript(workload.Uniform(g, 300, 13)); len(violations) != 0 {
		t.Errorf("violations under concurrent scraping: %v", violations)
	}
	close(stop)
	<-done
}
