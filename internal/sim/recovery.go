package sim

import (
	"fmt"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
)

// replicaRec is one replica's crash/restart state, guarded by the
// replica's nodeMu entry. The recovery model is checkpoint + retention
// log: Checkpoint snapshots the node and the oracle's view of it and
// starts logging every subsequent local event (client writes and
// ingested envelopes); Restart rebuilds a fresh node from the
// checkpoint and replays the log in original order, which per-replica
// protocol determinism makes an exact reconstruction.
type replicaRec struct {
	down    bool
	logging bool
	log     []logEntry
	// parked holds envelopes that slipped past the fault layer's down
	// check before delivery; their pooled Meta buffers are retained
	// until Restart re-forwards them.
	parked []core.Envelope
	ckpt   *core.NodeCheckpoint
	ockpt  *causality.ReplicaCheckpoint
}

// logEntry is one retained local event: either a client write (reg,
// val, oracle id) or an ingested envelope whose Meta the log owns.
type logEntry struct {
	write bool
	env   core.Envelope
	reg   sharegraph.Register
	val   core.Value
	id    causality.UpdateID
}

func (c *Cluster) requireChaos() error {
	if c.rec == nil {
		return fmt.Errorf("cluster: built without WithChaos")
	}
	return nil
}

// Partition cuts the links between a and b in both directions. Messages
// crossing a cut edge park at the transport and deliver at heal time.
// healAfter > 0 schedules an automatic heal; 0 cuts until Heal/HealAll.
func (c *Cluster) Partition(a, b sharegraph.ReplicaID, healAfter time.Duration) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	c.eng.Faults().CutBoth(int(a), int(b), healAfter)
	return nil
}

// PartitionOneWay cuts only the from→to direction, the asymmetric-link
// case where the failure detector may suspect but must not declare down.
func (c *Cluster) PartitionOneWay(from, to sharegraph.ReplicaID, healAfter time.Duration) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	c.eng.Faults().Cut(int(from), int(to), healAfter)
	return nil
}

// Heal restores both directions between a and b, flushing parked
// messages.
func (c *Cluster) Heal(a, b sharegraph.ReplicaID) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	f := c.eng.Faults()
	f.Heal(int(a), int(b))
	f.Heal(int(b), int(a))
	return nil
}

// HealAll removes every cut in the cluster.
func (c *Cluster) HealAll() error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	c.eng.Faults().HealAll()
	return nil
}

// Checkpoint snapshots replica r — protocol state plus the oracle's
// causal bookkeeping for r — and begins retaining r's subsequent local
// events so a later Crash/Restart can replay them. Re-checkpointing
// truncates the retention log.
func (c *Cluster) Checkpoint(r sharegraph.ReplicaID) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	sn, ok := c.nodes[r].(core.Snapshotter)
	if !ok {
		return fmt.Errorf("cluster: protocol %T does not support checkpointing", c.nodes[r])
	}
	c.nodeMu[r].Lock()
	defer c.nodeMu[r].Unlock()
	rec := &c.rec[r]
	if rec.down {
		return fmt.Errorf("cluster: replica %d is down", r)
	}
	rec.ckpt = sn.Snapshot()
	if c.tracker != nil {
		rec.ockpt = c.tracker.ExportCheckpoint(r)
	}
	rec.logging = true
	rec.log = nil
	return nil
}

// Crash takes replica r down: it stops serving reads and writes, the
// fault layer parks everything addressed to it, and any delivery already
// in flight parks at the node boundary. State accumulated since the last
// Checkpoint is considered lost until Restart replays the retention log.
func (c *Cluster) Crash(r sharegraph.ReplicaID) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	c.nodeMu[r].Lock()
	rec := &c.rec[r]
	if rec.down {
		c.nodeMu[r].Unlock()
		return fmt.Errorf("cluster: replica %d is already down", r)
	}
	rec.down = true
	c.nodeMu[r].Unlock()
	c.eng.Faults().SetDown(int(r), true)
	return nil
}

// Restart recovers a crashed replica by state transfer: a fresh node is
// built, the last checkpoint is installed into it and into the oracle,
// and the retention log is replayed synchronously in original order.
// Replayed events re-apply with no re-emission — an update's fanout was
// already dispatched at first execution, and the transport never truly
// loses a message (drops retransmit, cuts park), so resending would only
// manufacture duplicates. The oracle is told each replayed apply, then
// deliveries that arrived while the replica was down are released.
func (c *Cluster) Restart(r sharegraph.ReplicaID) error {
	if err := c.requireChaos(); err != nil {
		return err
	}
	// Build the replacement node before taking the lock.
	fresh, err := c.protocol.NewNodes()
	if err != nil {
		return fmt.Errorf("cluster: rebuild nodes: %w", err)
	}
	node, ok := fresh[r].(core.Snapshotter)
	if !ok {
		return fmt.Errorf("cluster: protocol %T does not support checkpointing", fresh[r])
	}

	c.nodeMu[r].Lock()
	rec := &c.rec[r]
	if !rec.down {
		c.nodeMu[r].Unlock()
		return fmt.Errorf("cluster: replica %d is not down", r)
	}
	if rec.ckpt == nil {
		c.nodeMu[r].Unlock()
		return fmt.Errorf("cluster: replica %d has no checkpoint to restore from", r)
	}
	applied, err := node.Install(rec.ckpt)
	if err != nil {
		c.nodeMu[r].Unlock()
		return fmt.Errorf("cluster: install checkpoint at %d: %w", r, err)
	}
	if c.tracker != nil {
		if err := c.tracker.RestoreCheckpoint(r, rec.ockpt); err != nil {
			c.nodeMu[r].Unlock()
			return fmt.Errorf("cluster: restore oracle checkpoint at %d: %w", r, err)
		}
		// Determinism keeps installed pendings pending, but report any
		// applies Install did produce rather than hide them.
		for _, a := range applied {
			c.tracker.OnApply(r, a.OracleID)
		}
	}
	c.nodes[r] = node
	oldLog := rec.log
	// Re-checkpoint the restored basis so a second crash replays only
	// events after this recovery.
	rec.ckpt = node.Snapshot()
	if c.tracker != nil {
		rec.ockpt = c.tracker.ExportCheckpoint(r)
	}
	rec.log = nil
	for _, le := range oldLog {
		if le.write {
			if err := node.HandleWrite(le.reg, le.val, le.id, core.DiscardSink{}); err != nil {
				c.nodeMu[r].Unlock()
				return fmt.Errorf("cluster: replay write at %d: %w", r, err)
			}
			if c.tracker != nil {
				// The oracle saw OnIssue at first execution and rolled the
				// apply back in restore; replay is an apply, not a re-issue.
				c.tracker.OnApply(r, le.id)
			}
		} else {
			replayed := node.HandleMessage(le.env, core.DiscardSink{})
			if c.tracker != nil {
				for _, a := range replayed {
					c.tracker.OnApply(r, a.OracleID)
				}
			}
		}
		rec.log = append(rec.log, le)
	}
	parked := rec.parked
	rec.parked = nil
	rec.down = false
	c.nodeMu[r].Unlock()

	// Release deliveries that raced past the fault layer while down
	// (their Meta is still pooled and will be recycled on delivery), then
	// let the fault layer flush everything it parked for r.
	c.eng.Forward(parked...)
	c.eng.Faults().SetDown(int(r), false)
	return nil
}
