// Package sim drives protocol state machines over the simulated network:
// a deterministic single-threaded runner (seeded/adversarial schedules,
// used by the correctness experiments) and a live worker-pool cluster
// (bounded per-replica inboxes, used to exercise real concurrency at
// scale). Both audit executions with the causality oracle and collect the
// metadata metrics the experiments report.
package sim

import (
	"fmt"
	"strings"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Config configures one deterministic run.
type Config struct {
	Graph    *sharegraph.Graph
	Protocol core.Protocol
	Script   workload.Script
	Sched    transport.Scheduler
	// MaxSteps bounds the run as a safety net; 0 derives a generous bound
	// from the script size.
	MaxSteps int
	// SkipAudit disables the causality oracle for pure-throughput runs.
	// Since the oracle moved to persistent copy-on-write sets its audited
	// cost is near-linear (the per-issue causal-past snapshot is O(1)
	// structural sharing, no longer a full bitset clone), so audited runs
	// are the default even at 50k-op scale; SkipAudit remains for runs
	// that want no verdict at all. Violations stays nil and
	// TrackFalseDeps is ignored (false dependencies are defined against
	// the oracle's ground truth).
	SkipAudit bool
	// FlatOracle audits with the flat-bitset reference oracle (one full
	// causal-past clone per issued update, quadratic bytes) instead of
	// the persistent copy-on-write oracle. Differential tests run the
	// same schedule under both and require identical verdicts; it is not
	// meant for scale runs.
	FlatOracle bool
	// TrackFalseDeps enables per-step oracle queries on pending updates
	// (quadratic-ish cost; off for throughput benchmarks).
	TrackFalseDeps bool
	// CaptureState fills Result.FinalState with each replica's register
	// contents at the end of the run, for differential comparison against
	// other runtimes.
	CaptureState bool
}

// Result holds the measurements of one run.
type Result struct {
	Protocol  string
	Scheduler string
	Steps     int

	// Messages.
	MessagesSent     int
	MetaOnlyMessages int
	MetaBytes        int

	// Updates.
	Writes  int
	Reads   int
	Applies int

	// Consistency verdicts.
	Violations []causality.Violation
	// StuckPending counts updates still buffered at quiescence (delivered
	// but never applicable — the naive-vector liveness failure mode).
	StuckPending int

	// False dependencies: distinct updates that were buffered while the
	// oracle said all their true dependencies were satisfied, and the
	// total number of step-update pairs spent in that state.
	FalseDepUpdates int
	FalseDepDelay   int

	// Metadata sizing.
	MetadataEntriesPerReplica []int
	MaxPending                int

	// FinalState holds each replica's register contents at quiescence
	// (only the registers it genuinely stores). Nil unless
	// Config.CaptureState was set.
	FinalState []map[sharegraph.Register]core.Value

	// Delivery latency, in scheduler steps between an update message
	// being sent and its value being applied at the destination. Relayed
	// protocols (Appendix D ring breaking) pay multiple hops here.
	DeliveryDelayTotal int
	DeliveryDelayMax   int
	DeliveryCount      int
}

// AvgDeliveryDelay returns mean steps from send to apply.
func (r *Result) AvgDeliveryDelay() float64 {
	if r.DeliveryCount == 0 {
		return 0
	}
	return float64(r.DeliveryDelayTotal) / float64(r.DeliveryCount)
}

// AvgMetaBytes returns mean metadata bytes per sent message.
func (r *Result) AvgMetaBytes() float64 {
	if r.MessagesSent == 0 {
		return 0
	}
	return float64(r.MetaBytes) / float64(r.MessagesSent)
}

// TotalMetadataEntries sums per-replica timestamp entry counts.
func (r *Result) TotalMetadataEntries() int {
	total := 0
	for _, n := range r.MetadataEntriesPerReplica {
		total += n
	}
	return total
}

// Ok reports whether the run finished with no violations and no stuck
// updates.
func (r *Result) Ok() bool { return len(r.Violations) == 0 && r.StuckPending == 0 }

// Summary renders a one-line digest.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: steps=%d writes=%d applies=%d msgs=%d (meta-only %d) metaBytes=%d",
		r.Protocol, r.Scheduler, r.Steps, r.Writes, r.Applies, r.MessagesSent, r.MetaOnlyMessages, r.MetaBytes)
	fmt.Fprintf(&b, " falseDeps=%d stuck=%d violations=%d", r.FalseDepUpdates, r.StuckPending, len(r.Violations))
	return b.String()
}

// Run executes the configured script to quiescence (or MaxSteps) and
// returns measurements plus the oracle's verdicts. The runner interleaves
// client operations and message deliveries under the scheduler's control;
// per-replica operation order follows the script.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil || cfg.Protocol == nil || cfg.Sched == nil {
		return nil, fmt.Errorf("sim: Graph, Protocol and Sched are required")
	}
	nodes, err := cfg.Protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("sim: build nodes: %w", err)
	}
	n := cfg.Graph.NumReplicas()
	if len(nodes) != n {
		return nil, fmt.Errorf("sim: protocol built %d nodes for %d replicas", len(nodes), n)
	}
	var tracker *causality.Tracker
	switch {
	case cfg.SkipAudit:
	case cfg.FlatOracle:
		tracker = causality.NewFlatTracker(cfg.Graph)
	default:
		tracker = causality.NewTracker(cfg.Graph)
	}
	res := &Result{Protocol: cfg.Protocol.Name(), Scheduler: cfg.Sched.Name()}

	// Per-replica op queues preserving script order.
	queues := make([][]workload.Op, n)
	for _, op := range cfg.Script {
		if int(op.Replica) < 0 || int(op.Replica) >= n {
			return nil, fmt.Errorf("sim: script names invalid replica %d", op.Replica)
		}
		queues[op.Replica] = append(queues[op.Replica], op)
	}

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		// Every op sends at most n messages; each step consumes an op or a
		// message, so this bound is unreachable absent a protocol bug.
		maxSteps = (len(cfg.Script)+1)*(n+2) + 64
	}

	var pool transport.Pool
	// sink routes emitted envelopes into the in-flight pool, copying each
	// node-owned Meta buffer through a freelist (the core.Sink ownership
	// contract); buffers return to the freelist once their message has
	// been ingested, so the steady-state send→deliver cycle is
	// allocation-free.
	sink := &runnerSink{res: res, pool: &pool}
	nextVal := core.Value(1)
	// nextID mints update identifiers when the oracle is off; with the
	// oracle on, OnIssue is the allocator so IDs stay dense either way.
	nextID := causality.UpdateID(0)
	// falseDeps tracks oracle IDs that have ever been blocked while
	// oracle-deliverable. UpdateIDs are issued sequentially, so a dense
	// slice replaces the map the runner used to allocate per lookup.
	var falseDeps []bool
	falseDepCount := 0
	// sentAt records the step at which each update was issued, for
	// end-to-end delivery-latency accounting: a relayed update's latency
	// counts from the original write, not the last hop. Indexed by
	// UpdateID; -1 marks updates issued outside this runner.
	var sentAt []int
	// opReplicas is rebuilt in place every step.
	opReplicas := make([]int, 0, n)

	for step := 0; step < maxSteps; step++ {
		// Choices: one per replica with remaining ops, then one per
		// in-flight message.
		opReplicas = opReplicas[:0]
		for r := 0; r < n; r++ {
			if len(queues[r]) > 0 {
				opReplicas = append(opReplicas, r)
			}
		}
		total := len(opReplicas) + pool.Len()
		if total == 0 {
			res.Steps = step
			break
		}
		choice := cfg.Sched.Pick(total)
		if choice < len(opReplicas) {
			r := opReplicas[choice]
			op := queues[r][0]
			queues[r] = queues[r][1:]
			if op.IsRead {
				nodes[r].Read(op.Reg)
				res.Reads++
			} else {
				v := core.Value(op.Val)
				if v == 0 {
					v = nextVal
					nextVal++
				}
				var id causality.UpdateID
				if tracker != nil {
					id = tracker.OnIssue(op.Replica, op.Reg)
				} else {
					id = nextID
					nextID++
				}
				if err := nodes[r].HandleWrite(op.Reg, v, id, sink); err != nil {
					return nil, fmt.Errorf("sim: write at replica %d: %w", r, err)
				}
				res.Writes++
				for int(id) >= len(sentAt) {
					sentAt = append(sentAt, -1)
				}
				sentAt[id] = step
			}
		} else {
			env := pool.Take(choice - len(opReplicas))
			applied := nodes[env.To].HandleMessage(env, sink)
			sink.meta.Put(env.Meta)
			for _, a := range applied {
				if tracker != nil {
					tracker.OnApply(env.To, a.OracleID)
				}
				res.Applies++
				if int(a.OracleID) < len(sentAt) && sentAt[a.OracleID] >= 0 {
					d := step - sentAt[a.OracleID]
					res.DeliveryDelayTotal += d
					if d > res.DeliveryDelayMax {
						res.DeliveryDelayMax = d
					}
					res.DeliveryCount++
				}
			}
		}
		if cfg.TrackFalseDeps && tracker != nil {
			for r := 0; r < n; r++ {
				for _, id := range nodes[r].PendingOracleIDs() {
					if tracker.OracleDeliverable(sharegraph.ReplicaID(r), id) {
						res.FalseDepDelay++
						for int(id) >= len(falseDeps) {
							falseDeps = append(falseDeps, false)
						}
						if !falseDeps[id] {
							falseDeps[id] = true
							falseDepCount++
						}
					}
				}
			}
		}
		for r := 0; r < n; r++ {
			if p := nodes[r].PendingCount(); p > res.MaxPending {
				res.MaxPending = p
			}
		}
		res.Steps = step + 1
	}

	for r := 0; r < n; r++ {
		res.StuckPending += nodes[r].PendingCount()
		res.MetadataEntriesPerReplica = append(res.MetadataEntriesPerReplica, nodes[r].MetadataEntries())
	}
	res.FalseDepUpdates = falseDepCount
	if cfg.CaptureState {
		res.FinalState = make([]map[sharegraph.Register]core.Value, n)
		for r := 0; r < n; r++ {
			res.FinalState[r] = nodeState(cfg.Graph, nodes[r], sharegraph.ReplicaID(r))
		}
	}
	if tracker != nil {
		tracker.CheckLiveness()
		res.Violations = tracker.Violations()
	}
	return res, nil
}

// runnerSink is the deterministic runner's core.Sink: it records
// transport metrics and files each emitted envelope into the in-flight
// pool with its metadata copied through a recycling freelist.
type runnerSink struct {
	res  *Result
	pool *transport.Pool
	meta transport.BytePool
}

// Emit implements core.Sink.
func (s *runnerSink) Emit(env core.Envelope) {
	s.res.MessagesSent++
	s.res.MetaBytes += len(env.Meta)
	if env.MetaOnly {
		s.res.MetaOnlyMessages++
	}
	env.Meta = s.meta.Copy(env.Meta)
	s.pool.Add(env)
}

// nodeState snapshots the registers replica r genuinely stores. Both
// runtimes build their differential-test state captures with it, so the
// two sides compare maps produced by the same code. Callers serialize
// access to the node (the runner is single-threaded; the cluster holds
// the node's lock).
func nodeState(g *sharegraph.Graph, node core.Node, r sharegraph.ReplicaID) map[sharegraph.Register]core.Value {
	out := make(map[sharegraph.Register]core.Value)
	for _, x := range g.Stores(r).Sorted() {
		if v, ok := node.Read(x); ok {
			out[x] = v
		}
	}
	return out
}
