package sim

import (
	"fmt"

	"repro/internal/core"
)

// Reconfigure switches a running cluster onto a different protocol over
// the SAME base share graph — the live half of placement optimization:
// run, observe, search a better placement, reconfigure onto it without
// restarting or losing state.
//
// The switch is a two-phase epoch fence:
//
//  1. Quiesce-drain: the epoch write lock blocks new client writes
//     (Write holds the read side across issue+send), then Quiesce waits
//     for every in-flight delivery — including relay cascades — to
//     drain. At that point the old epoch's causal history is fully
//     applied: no message of the old timestamp space exists anywhere.
//  2. Snapshot/install: each old node's register contents are carried
//     into a fresh node of the next protocol via a store-only
//     NodeCheckpoint (nil Tau — the old vector indexes the old space's
//     edges and is meaningless in the new one; the new epoch starts
//     from zero). Nodes are swapped under their locks, then the
//     protocol pointer itself.
//
// Causal consistency is preserved across the fence by the quiesce
// argument: every update issued before the fence is applied everywhere
// before any update issued after it, so the new epoch's zero timestamps
// start from a causally closed frontier — exactly the initial-state
// assumption the protocol's correctness argument makes.
//
// Reconfigure fails (leaving the cluster on the old protocol) if any
// replica is down, the fault layer still holds parked messages (heal
// partitions and restart crashed replicas first), a node is left with a
// buffered-but-undeliverable update after the drain (a liveness bug —
// reconfiguring would silently drop it), or either protocol's nodes do
// not support snapshotting. Recovery checkpoints and retention logs
// reference the old epoch's timestamp space, so they are discarded;
// re-checkpoint after a successful reconfigure.
func (c *Cluster) Reconfigure(next core.Protocol) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: closed")
	}
	// Build the next epoch's nodes before fencing anything.
	c.armDiag(next)
	newNodes, err := next.NewNodes()
	if err != nil {
		return fmt.Errorf("cluster: reconfigure: build nodes: %w", err)
	}
	if len(newNodes) != len(c.nodes) {
		return fmt.Errorf("cluster: reconfigure: next protocol has %d replicas, cluster has %d",
			len(newNodes), len(c.nodes))
	}

	c.epoch.Lock()
	defer c.epoch.Unlock()
	c.Quiesce()
	if c.closed.Load() {
		return fmt.Errorf("cluster: closed")
	}
	if f := c.eng.Faults(); f != nil {
		if n := f.ParkedMessages(); n > 0 {
			return fmt.Errorf("cluster: reconfigure: %d messages parked at the fault layer — heal partitions and restart crashed replicas first", n)
		}
	}

	// Phase A: snapshot every old node and install into the new ones.
	// Nothing is mutated yet, so any failure aborts cleanly.
	installed := make([]core.Snapshotter, len(c.nodes))
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		if c.rec != nil && c.rec[r].down {
			c.nodeMu[r].Unlock()
			return fmt.Errorf("cluster: reconfigure: replica %d is down", r)
		}
		oldSn, ok := c.nodes[r].(core.Snapshotter)
		if !ok {
			c.nodeMu[r].Unlock()
			return fmt.Errorf("cluster: reconfigure: protocol %T does not support snapshotting", c.nodes[r])
		}
		// Post-quiesce, a LIVE pending update means some causally earlier
		// message never arrived — a liveness bug the fence must not paper
		// over by dropping state. Dead-parked buffers (fault-injected
		// duplicates, stale replays, metadata-only leftovers) can never
		// deliver and die with the old epoch.
		if lp, ok := c.nodes[r].(core.LivePendingCounter); ok {
			if n := lp.LivePending(); n != 0 {
				c.nodeMu[r].Unlock()
				return fmt.Errorf("cluster: reconfigure: replica %d still buffers %d undeliverable updates after the drain", r, n)
			}
		}
		ck := oldSn.Snapshot()
		c.nodeMu[r].Unlock()
		newSn, ok := newNodes[r].(core.Snapshotter)
		if !ok {
			return fmt.Errorf("cluster: reconfigure: next protocol %T does not support snapshotting", newNodes[r])
		}
		// Store-only checkpoint: nil Tau keeps the new node's zero vector,
		// no pendings cross the fence.
		if _, err := newSn.Install(&core.NodeCheckpoint{Replica: ck.Replica, Store: ck.Store}); err != nil {
			return fmt.Errorf("cluster: reconfigure: install at %d: %w", r, err)
		}
		installed[r] = newSn
	}

	// Phase B: swap. Reads (which take only nodeMu) see either epoch's
	// node — both serve the same register contents.
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		c.nodes[r] = installed[r]
		if c.rec != nil {
			// Old-epoch checkpoints and logs index the old timestamp
			// space; replaying them into the new epoch would corrupt it.
			c.rec[r] = replicaRec{}
		}
		c.nodeMu[r].Unlock()
	}
	c.protocol = next
	return nil
}
