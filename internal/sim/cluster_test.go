package sim

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// TestClusterEdgeIndexedConcurrent runs the live goroutine runtime with
// concurrent writers on several topologies and audits with the oracle —
// the concurrency-hardening counterpart of the deterministic sweeps.
func TestClusterEdgeIndexedConcurrent(t *testing.T) {
	graphs := map[string]*sharegraph.Graph{
		"fig5":    sharegraph.Fig5Example(),
		"ring5":   sharegraph.Ring(5),
		"clique4": sharegraph.PairClique(4),
	}
	for name, g := range graphs {
		c, err := NewCluster(g, edgeIndexed(t, g))
		if err != nil {
			t.Fatal(err)
		}
		script := workload.Uniform(g, 300, 42)
		violations := c.RunScript(script)
		if len(violations) != 0 {
			t.Errorf("%s: live cluster violations: %v", name, violations)
		}
		if c.PendingTotal() != 0 {
			t.Errorf("%s: %d updates stuck pending after quiescence", name, c.PendingTotal())
		}
		if c.MessagesSent() == 0 {
			t.Errorf("%s: no messages sent", name)
		}
		if c.MetaBytes() == 0 {
			t.Errorf("%s: no metadata bytes recorded", name)
		}
		c.Close()
	}
}

func TestClusterMatrixConcurrent(t *testing.T) {
	g := sharegraph.Ring(4)
	c, err := NewCluster(g, baseline.NewMatrix(g), WithMaxDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	if violations := c.RunScript(workload.Uniform(g, 200, 9)); len(violations) != 0 {
		t.Errorf("matrix live cluster violations: %v", violations)
	}
	c.Close()
}

func TestClusterReadAndLifecycle(t *testing.T) {
	g := sharegraph.Fig3Example()
	c, err := NewCluster(g, edgeIndexed(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, "x", 7); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if v, ok := c.Read(1, "x"); !ok || v != 7 {
		t.Errorf("Read(1, x) = (%d, %v), want (7, true)", v, ok)
	}
	if _, ok := c.Read(3, "x"); ok {
		t.Error("Read of unstored register reported ok")
	}
	if err := c.Write(0, "zzz", 1); err == nil {
		t.Error("write to unstored register accepted")
	}
	if c.Tracker() == nil {
		t.Error("nil tracker")
	}
	c.Close()
	if err := c.Write(0, "x", 8); err == nil {
		t.Error("write after Close accepted")
	}
}

// TestClusterRingBreakRelay exercises message forwarding (HandleMessage
// emitting new envelopes) under live concurrency: relayed updates must
// keep the outstanding counter balanced and satisfy the oracle.
func TestClusterRingBreakRelay(t *testing.T) {
	rb, err := optimize.BreakRing(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(rb.Base(), rb)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	script := workload.SharedOnly(rb.Base(), 200, 17)
	if violations := c.RunScript(script); len(violations) != 0 {
		t.Errorf("ring-break live cluster violations: %v", violations)
	}
	if c.PendingTotal() != 0 {
		t.Errorf("%d updates stuck pending", c.PendingTotal())
	}
	// Relays must reach the far holder: write the broken register and
	// check the other end observes it.
	if err := c.Write(0, rb.Broken(), 1234); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if v, ok := c.Read(4, rb.Broken()); !ok || v != 1234 {
		t.Errorf("far-end read = (%d,%v), want (1234,true)", v, ok)
	}
}

func TestClusterQuiesceIdempotent(t *testing.T) {
	g := sharegraph.Fig3Example()
	c, err := NewCluster(g, edgeIndexed(t, g))
	if err != nil {
		t.Fatal(err)
	}
	c.Quiesce() // no traffic: returns immediately
	c.Quiesce()
	c.Close()
}
