package sim

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// TestClusterEdgeIndexedConcurrent runs the live goroutine runtime with
// concurrent writers on several topologies and audits with the oracle —
// the concurrency-hardening counterpart of the deterministic sweeps.
func TestClusterEdgeIndexedConcurrent(t *testing.T) {
	graphs := map[string]*sharegraph.Graph{
		"fig5":    sharegraph.Fig5Example(),
		"ring5":   sharegraph.Ring(5),
		"clique4": sharegraph.PairClique(4),
	}
	for name, g := range graphs {
		c, err := NewCluster(g, edgeIndexed(t, g))
		if err != nil {
			t.Fatal(err)
		}
		script := workload.Uniform(g, 300, 42)
		violations := c.RunScript(script)
		if len(violations) != 0 {
			t.Errorf("%s: live cluster violations: %v", name, violations)
		}
		if c.PendingTotal() != 0 {
			t.Errorf("%s: %d updates stuck pending after quiescence", name, c.PendingTotal())
		}
		if c.MessagesSent() == 0 {
			t.Errorf("%s: no messages sent", name)
		}
		if c.MetaBytes() == 0 {
			t.Errorf("%s: no metadata bytes recorded", name)
		}
		c.Close()
	}
}

func TestClusterMatrixConcurrent(t *testing.T) {
	g := sharegraph.Ring(4)
	c, err := NewCluster(g, baseline.NewMatrix(g), WithMaxDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	if violations := c.RunScript(workload.Uniform(g, 200, 9)); len(violations) != 0 {
		t.Errorf("matrix live cluster violations: %v", violations)
	}
	c.Close()
}

func TestClusterReadAndLifecycle(t *testing.T) {
	g := sharegraph.Fig3Example()
	c, err := NewCluster(g, edgeIndexed(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, "x", 7); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if v, ok := c.Read(1, "x"); !ok || v != 7 {
		t.Errorf("Read(1, x) = (%d, %v), want (7, true)", v, ok)
	}
	if _, ok := c.Read(3, "x"); ok {
		t.Error("Read of unstored register reported ok")
	}
	if err := c.Write(0, "zzz", 1); err == nil {
		t.Error("write to unstored register accepted")
	}
	if c.Tracker() == nil {
		t.Error("nil tracker")
	}
	c.Close()
	if err := c.Write(0, "x", 8); err == nil {
		t.Error("write after Close accepted")
	}
}

// TestClusterRingBreakRelay exercises message forwarding (HandleMessage
// emitting new envelopes) under live concurrency: relayed updates must
// keep the outstanding counter balanced and satisfy the oracle.
func TestClusterRingBreakRelay(t *testing.T) {
	rb, err := optimize.BreakRing(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(rb.Base(), rb)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	script := workload.SharedOnly(rb.Base(), 200, 17)
	if violations := c.RunScript(script); len(violations) != 0 {
		t.Errorf("ring-break live cluster violations: %v", violations)
	}
	if c.PendingTotal() != 0 {
		t.Errorf("%d updates stuck pending", c.PendingTotal())
	}
	// Relays must reach the far holder: write the broken register and
	// check the other end observes it.
	if err := c.Write(0, rb.Broken(), 1234); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if v, ok := c.Read(4, rb.Broken()); !ok || v != 1234 {
		t.Errorf("far-end read = (%d,%v), want (1234,true)", v, ok)
	}
}

// TestClusterWithoutAudit covers the pure-throughput configuration: no
// oracle, no verdicts, but deliveries and state still flow — and final
// state still matches an audited run on the same single-writer workload.
func TestClusterWithoutAudit(t *testing.T) {
	g := sharegraph.Ring(6)
	script := workload.OwnerWrites(g, 300, 13)

	audited, err := NewCluster(g, edgeIndexed(t, g), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if violations := audited.RunScript(script); len(violations) != 0 {
		t.Fatalf("audited run violations: %v", violations)
	}
	want := audited.StateSnapshot()
	audited.Close()

	c, err := NewCluster(g, edgeIndexed(t, g), WithSeed(5), WithoutAudit())
	if err != nil {
		t.Fatal(err)
	}
	if c.Tracker() != nil {
		t.Error("unaudited cluster exposes a tracker")
	}
	if violations := c.RunScript(script); violations != nil {
		t.Errorf("unaudited RunScript returned verdicts: %v", violations)
	}
	if p := c.PendingTotal(); p != 0 {
		t.Errorf("%d updates stuck pending", p)
	}
	if c.MessagesSent() == 0 {
		t.Error("no messages sent")
	}
	got := c.StateSnapshot()
	c.Close()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("unaudited final state diverges:\naudited:   %v\nunaudited: %v", want, got)
	}
}

func TestClusterQuiesceIdempotent(t *testing.T) {
	g := sharegraph.Fig3Example()
	c, err := NewCluster(g, edgeIndexed(t, g))
	if err != nil {
		t.Fatal(err)
	}
	c.Quiesce() // no traffic: returns immediately
	c.Quiesce()
	c.Close()
}

// TestClusterStressRing32 is the scale workload the goroutine-per-message
// runtime could never run: 32 replicas, 10k concurrent writes, artificial
// delivery delays holding messages in flight. The oracle must report zero
// causal violations, every update must apply (no liveness loss), and
// Close must leave no outstanding messages or workers behind.
func TestClusterStressRing32(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	g := sharegraph.Ring(32)
	before := runtime.NumGoroutine()
	c, err := NewCluster(g, edgeIndexed(t, g),
		WithWorkers(8), WithInboxCapacity(128),
		WithMaxDelay(100*time.Microsecond), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	script := workload.Uniform(g, 10000, 7)
	violations := c.RunScript(script)
	if len(violations) != 0 {
		t.Errorf("stress run violations: %v", violations[:min(len(violations), 5)])
	}
	if p := c.PendingTotal(); p != 0 {
		t.Errorf("%d updates stuck pending after quiescence", p)
	}
	c.Close()
	if n := c.Outstanding(); n != 0 {
		t.Errorf("Close left %d outstanding messages", n)
	}
	// Workers exited before Close returned; the goroutine count is back
	// to its pre-cluster baseline (modulo unrelated runtime goroutines).
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before cluster, %d after Close", before, after)
	}
}

// TestClusterBoundedGoroutines pins the worker-pool property directly:
// while thousands of messages are in flight, the goroutine count stays at
// workers + drivers + constant overhead — not O(messages).
func TestClusterBoundedGoroutines(t *testing.T) {
	g := sharegraph.Ring(16)
	const workers = 4
	before := runtime.NumGoroutine()
	c, err := NewCluster(g, edgeIndexed(t, g), WithWorkers(workers),
		WithMaxDelay(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	script := workload.Uniform(g, 2000, 5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.RunScript(script)
	}()
	peak := 0
	for {
		select {
		case <-done:
			if peak > before+workers+g.NumReplicas()+8 {
				t.Errorf("goroutine count not bounded by pool: peak %d (baseline %d, %d workers, %d drivers)",
					peak, before, workers, g.NumReplicas())
			}
			c.Close()
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestClusterBackpressureTinyInbox runs with capacity 1, forcing writers
// to block on nearly every send: the run must still drain cleanly (no
// deadlock between blocked writers and the worker pool).
func TestClusterBackpressureTinyInbox(t *testing.T) {
	g := sharegraph.Ring(5)
	c, err := NewCluster(g, edgeIndexed(t, g), WithWorkers(2), WithInboxCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	if violations := c.RunScript(workload.Uniform(g, 500, 11)); len(violations) != 0 {
		t.Errorf("backpressure run violations: %v", violations)
	}
	if p := c.PendingTotal(); p != 0 {
		t.Errorf("%d updates stuck pending", p)
	}
	c.Close()
	if n := c.Outstanding(); n != 0 {
		t.Errorf("Close left %d outstanding", n)
	}
}

// TestClusterRelayBackpressure exercises the forward-exemption path under
// a tiny inbox bound: relayed messages enqueue above capacity rather than
// deadlocking the pool.
func TestClusterRelayBackpressure(t *testing.T) {
	rb, err := optimize.BreakRing(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(rb.Base(), rb, WithWorkers(2), WithInboxCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	if violations := c.RunScript(workload.SharedOnly(rb.Base(), 200, 17)); len(violations) != 0 {
		t.Errorf("relay backpressure violations: %v", violations)
	}
	c.Close()
}
