//go:build !race

package sim

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately sheds items to widen interleavings, so
// allocation accounting over pooled paths is meaningless there.
const raceEnabled = false
