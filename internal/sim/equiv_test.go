package sim

// Differential tests for the indexed delivery engines: every protocol's
// per-sender seq-keyed engine must produce results indistinguishable from
// the reference full-buffer rescan on identical workloads and schedules —
// same applies, messages, oracle verdicts, stuck counts, false-dependency
// accounting and per-step pending maxima. Only the Protocol name (and the
// apply order within a single delivery, which no Result field observes)
// may differ.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// enginePair builds the indexed and reference variants of one protocol.
type enginePair struct {
	name      string
	indexed   func(*sharegraph.Graph) (core.Protocol, error)
	reference func(*sharegraph.Graph) (core.Protocol, error)
}

func enginePairs() []enginePair {
	return []enginePair{
		{
			"edge-indexed",
			func(g *sharegraph.Graph) (core.Protocol, error) { return core.NewEdgeIndexed(g) },
			func(g *sharegraph.Graph) (core.Protocol, error) { return core.NewEdgeIndexedNaive(g) },
		},
		{
			"matrix",
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewMatrix(g), nil },
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewMatrixRescan(g), nil },
		},
		{
			"dummy-broadcast",
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewBroadcast(g), nil },
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewBroadcastRescan(g), nil },
		},
		{
			"naive-vector",
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewNaiveVector(g), nil },
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewNaiveVectorRescan(g), nil },
		},
		{
			"fifo-only",
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewFIFOOnly(g), nil },
			func(g *sharegraph.Graph) (core.Protocol, error) { return baseline.NewFIFOOnlyRescan(g), nil },
		},
	}
}

// equivSchedulers returns fresh schedulers per call so both runs see
// identical pick sequences: seeded-random reorderings, the adversarial
// LIFO reversal, and benign FIFO.
func equivSchedulers() map[string]func() transport.Scheduler {
	out := map[string]func() transport.Scheduler{
		"lifo": func() transport.Scheduler { return transport.LIFOScheduler{} },
		"fifo": func() transport.Scheduler { return transport.FIFOScheduler{} },
	}
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		out[fmt.Sprintf("random%d", seed)] = func() transport.Scheduler { return transport.NewRandom(seed) }
	}
	return out
}

func TestEngineEquivalence(t *testing.T) {
	topos := []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"fig5", sharegraph.Fig5Example()},
		{"ring8", sharegraph.Ring(8)},
		{"grid9", sharegraph.Grid(3, 3)},
		{"randomk8", sharegraph.RandomK(8, 24, 3, 5)},
	}
	for _, topo := range topos {
		script := workload.SharedOnly(topo.g, 400, 3)
		for _, pair := range enginePairs() {
			pi, err := pair.indexed(topo.g)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo.name, pair.name, err)
			}
			pr, err := pair.reference(topo.g)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo.name, pair.name, err)
			}
			for schedName, mkSched := range equivSchedulers() {
				t.Run(fmt.Sprintf("%s/%s/%s", topo.name, pair.name, schedName), func(t *testing.T) {
					cfgI := Config{Graph: topo.g, Protocol: pi, Script: script, Sched: mkSched(), TrackFalseDeps: true}
					cfgR := Config{Graph: topo.g, Protocol: pr, Script: script, Sched: mkSched(), TrackFalseDeps: true}
					ri, err := Run(cfgI)
					if err != nil {
						t.Fatal(err)
					}
					rr, err := Run(cfgR)
					if err != nil {
						t.Fatal(err)
					}
					// Engine choice must be invisible in every measurement.
					ri.Protocol, rr.Protocol = "", ""
					ri.Scheduler, rr.Scheduler = "", ""
					if !reflect.DeepEqual(ri, rr) {
						t.Errorf("engines diverge:\nindexed:   %+v\nreference: %+v", ri, rr)
					}
				})
			}
		}
	}
}

// TestEngineEquivalenceAdversarialScripted replays hand-crafted pick
// sequences that maximize reordering pressure on a small ring: long
// scripted prefixes force deep buffering before unlocking cascades.
func TestEngineEquivalenceAdversarialScripted(t *testing.T) {
	g := sharegraph.Ring(6)
	script := workload.SharedOnly(g, 120, 9)
	// Alternate newest/oldest/middle picks to interleave op issuance with
	// badly ordered deliveries.
	picks := make([]int, 0, 600)
	for i := 0; i < 200; i++ {
		picks = append(picks, i%13, (i*7)%11, 0)
	}
	for _, pair := range enginePairs() {
		pi, err := pair.indexed(g)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := pair.reference(g)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(pair.name, func(t *testing.T) {
			ri, err := Run(Config{Graph: g, Protocol: pi, Script: script,
				Sched: transport.NewScripted(picks...), TrackFalseDeps: true})
			if err != nil {
				t.Fatal(err)
			}
			rr, err := Run(Config{Graph: g, Protocol: pr, Script: script,
				Sched: transport.NewScripted(picks...), TrackFalseDeps: true})
			if err != nil {
				t.Fatal(err)
			}
			ri.Protocol, rr.Protocol = "", ""
			if !reflect.DeepEqual(ri, rr) {
				t.Errorf("engines diverge:\nindexed:   %+v\nreference: %+v", ri, rr)
			}
		})
	}
}

// TestEngineEquivalenceRouted covers the Section 5 dummy-register routing
// variant: metadata-only updates must flow through the indexed queues
// exactly as through the reference engine.
func TestEngineEquivalenceRouted(t *testing.T) {
	eff, err := sharegraph.New([][]sharegraph.Register{
		{"x", "y"}, {"x", "y", "z"}, {"x", "z"}, {"x", "w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replica 3's copy of x is a dummy: it receives metadata-only updates.
	realStore := func(r sharegraph.ReplicaID, x sharegraph.Register) bool {
		return !(r == 3 && x == "x")
	}
	pi, err := core.NewEdgeIndexedRouted(eff, realStore, "routed")
	if err != nil {
		t.Fatal(err)
	}
	prBase, err := core.NewEdgeIndexedRouted(eff, realStore, "routed-naive")
	if err != nil {
		t.Fatal(err)
	}
	pr := core.AsNaive(prBase)
	// Writes only at genuine holders.
	var script workload.Script
	for i := 0; i < 200; i++ {
		reg := []sharegraph.Register{"x", "y", "z", "w"}[i%4]
		holder := []sharegraph.ReplicaID{0, 1, 2, 3}[i%4]
		if reg == "x" {
			holder = sharegraph.ReplicaID(i % 3) // skip the dummy holder
		}
		script = append(script, workload.Op{Replica: holder, Reg: reg})
	}
	for schedName, mkSched := range equivSchedulers() {
		t.Run(schedName, func(t *testing.T) {
			ri, err := Run(Config{Graph: eff, Protocol: pi, Script: script, Sched: mkSched()})
			if err != nil {
				t.Fatal(err)
			}
			rr, err := Run(Config{Graph: eff, Protocol: pr, Script: script, Sched: mkSched()})
			if err != nil {
				t.Fatal(err)
			}
			ri.Protocol, rr.Protocol = "", ""
			if !reflect.DeepEqual(ri, rr) {
				t.Errorf("routed engines diverge:\nindexed:   %+v\nreference: %+v", ri, rr)
			}
		})
	}
}
