package sim

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
)

// TestTheorem8NotMaskedByDupHardening pins an interaction between two
// defenses: the ingest queues discard duplicated and stale envelopes,
// and the oracle flags Theorem-8 violations on weakened timestamp
// graphs. Discarding must be keyed on genuine redundancy (same sender,
// same sequence), never on "looks already applied" heuristics that
// could swallow the adversarial early delivery the theorem constructs.
// So: the Case 3 execution, with every envelope delivered twice and the
// whole prefix replayed stale at the end, must still produce the safety
// violation on weakened graphs — and stay perfectly clean on full ones.
func TestTheorem8NotMaskedByDupHardening(t *testing.T) {
	g := sharegraph.Fig5Example()
	dropped := sharegraph.Edge{From: 3, To: 2}
	full := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})

	// deliverTwiceTo: the duplicated-transport version of deliverTo.
	deliverTwiceTo := func(h *harness, envs []core.Envelope, to sharegraph.ReplicaID) {
		t.Helper()
		h.deliverTo(envs, to)
		h.deliverTo(envs, to)
	}

	run := func(p core.Protocol) *harness {
		h := newHarness(t, g, p)
		u0 := h.write(3, "z")
		u1 := h.write(3, "w")
		deliverTwiceTo(h, u1, 0)
		uy := h.write(0, "y")
		deliverTwiceTo(h, uy, 1)
		ux := h.write(1, "x")
		// Adversarial asynchrony with duplication: ux reaches replica 2
		// twice before u0 does.
		deliverTwiceTo(h, ux, 2)
		deliverTwiceTo(h, u0, 2)
		// Complete delivery (uy also goes to replica 3) so the liveness
		// audit has no undelivered excuse, then replay the whole prefix
		// stale, long after application.
		deliverTwiceTo(h, uy, 3)
		h.deliverTo(u1, 0)
		h.deliverTo(uy, 1)
		h.deliverTo(ux, 2)
		h.deliverTo(u0, 2)
		return h
	}

	pFull, err := core.NewEdgeIndexedWithGraphs(g, full, "edge-indexed")
	if err != nil {
		t.Fatal(err)
	}
	h := run(pFull)
	if !h.tracker.Ok() {
		t.Errorf("full graphs under duplication violated safety: %v", h.tracker.Violations())
	}
	// Dead-parked duplicates are bookkeeping, not liveness debt: every
	// genuine update must have applied (no deliverable update stuck).
	if vs := h.tracker.CheckLiveness(); len(vs) != 0 {
		t.Errorf("duplication broke liveness on full graphs: %v", vs)
	}

	pWeak, err := core.NewEdgeIndexedWithGraphs(g, weakenedGraphs(g, 0, dropped), "edge-indexed-weakened")
	if err != nil {
		t.Fatal(err)
	}
	h = run(pWeak)
	sawSafety := false
	for _, v := range h.tracker.Violations() {
		if v.Kind == causality.SafetyViolation && v.Replica == 2 {
			sawSafety = true
		}
	}
	if !sawSafety {
		t.Errorf("duplicate hardening masked the Theorem 8 violation: %v", h.tracker.Violations())
	}
}
