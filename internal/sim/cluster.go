package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/membership"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Cluster is the live concurrent runtime over the same protocol state
// machines the deterministic runner drives: the shared worker-pool engine
// (internal/runtime) pulls messages from bounded per-replica inboxes and
// feeds them to lock-protected nodes.
//
// The engine preserves the paper's system model — reliable,
// point-to-point, NOT FIFO — without spawning a goroutine per message:
// each worker takes a uniformly random buffered message from an inbox
// (a seeded per-inbox shuffle), so delivery order is arbitrarily reordered
// even though the goroutine count stays fixed at the worker-pool size.
//
// Backpressure contract: client writes (Write, RunScript drivers) block
// while a destination inbox is at capacity, so a fast writer cannot grow
// memory without bound. Deliveries that forward messages (relaying
// protocols) enqueue above capacity rather than block — see the engine's
// Forward path.
//
// The write fanout is allocation-free in steady state: nodes emit
// envelopes referencing node-owned metadata scratch (the core.Sink
// contract), and the cluster's sink copies each Meta into a recycled
// buffer that returns to the pool once the message has been ingested at
// its destination.
type Cluster struct {
	g        *sharegraph.Graph
	protocol core.Protocol
	tracker  *causality.Tracker // nil when auditing is disabled
	nodes    []core.Node
	nodeMu   []sync.Mutex
	eng      *rt.Engine[core.Envelope]

	opts       rt.Options
	audit      bool
	flatOracle bool

	// Chaos state: nil/zero unless WithChaos / WithHeartbeats were given.
	chaosPlan *rt.FaultPlan
	hbOpts    *membership.Options
	det       *membership.Detector
	// rec[r] is replica r's recovery state, guarded by nodeMu[r]; the
	// slice itself is nil when chaos is disabled, so the fault-free
	// delivery path pays one nil check.
	rec []replicaRec

	meta    transport.BytePool
	batches sync.Pool // *envBatch

	idSeq     atomic.Int64 // oracle-ID source when auditing is off
	closed    atomic.Bool
	msgs      atomic.Int64
	metaBytes atomic.Int64
}

// envBatch is a core.Sink that stages one node call's emitted envelopes:
// Meta buffers are copied through the cluster's recycling pool inside the
// node's lock (satisfying the consume-before-next-call contract), and the
// staged batch is flushed to the engine after the lock is released so
// backpressure never blocks while holding a node.
type envBatch struct {
	c    *Cluster
	envs []core.Envelope
}

// Emit implements core.Sink.
func (b *envBatch) Emit(env core.Envelope) {
	env.Meta = b.c.meta.Copy(env.Meta)
	b.envs = append(b.envs, env)
}

// recordSent counts messages the engine actually accepted — never the
// suffix a shutdown race dropped — so Stats stays consistent with what
// was delivered.
func (c *Cluster) recordSent(envs []core.Envelope) {
	c.msgs.Add(int64(len(envs)))
	total := int64(0)
	for i := range envs {
		total += int64(len(envs[i].Meta))
	}
	c.metaBytes.Add(total)
}

func (c *Cluster) getBatch() *envBatch {
	b := c.batches.Get().(*envBatch)
	b.c = c
	return b
}

func (c *Cluster) putBatch(b *envBatch) {
	b.envs = b.envs[:0]
	c.batches.Put(b)
}

// ClusterOption customizes a Cluster.
type ClusterOption func(*Cluster)

// WithMaxDelay sets the maximum artificial delivery delay (default 0).
// A delivering worker sleeps up to this long before handling a message,
// adding wall-clock jitter on top of the inbox shuffle's reordering; with
// a bounded worker pool it also throttles throughput, which is the point
// in stress tests.
func WithMaxDelay(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.opts.MaxDelay = d }
}

// WithWorkers sets the delivery worker-pool size. The default is
// GOMAXPROCS but at least 2; an explicit n is used as given.
func WithWorkers(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.opts.Workers = n
		}
	}
}

// WithInboxCapacity bounds each replica's inbox (default 1024). Client
// writes block while a destination inbox is full.
func WithInboxCapacity(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.opts.InboxCapacity = n
		}
	}
}

// WithSeed seeds the per-inbox delivery shuffles (default 1). Two runs
// with the same seed still interleave differently — goroutine scheduling
// stays nondeterministic — but the seed varies which reorderings the
// shuffle explores.
func WithSeed(seed int64) ClusterOption {
	return func(c *Cluster) { c.opts.Seed = seed }
}

// WithoutAudit disables the causality oracle for runs that want no
// verdict at all. Auditing is affordable by default since the oracle
// moved to persistent copy-on-write sets (the per-issue causal-past
// snapshot is O(1) sharing, not a full clone); Tracker returns nil and
// RunScript returns no violations on an unaudited cluster.
func WithoutAudit() ClusterOption {
	return func(c *Cluster) { c.audit = false }
}

// WithFlatOracle audits with the flat-bitset reference oracle (full
// causal-past clone per issue, quadratic bytes) instead of the default
// persistent one. Differential tests use it to pin both representations
// to identical verdicts under real concurrency.
func WithFlatOracle() ClusterOption {
	return func(c *Cluster) { c.flatOracle = true }
}

// WithChaos routes every message through the engine's seeded
// fault-injection layer (loss, duplication, partitions, crash parking —
// see runtime.FaultPlan) and enables the cluster's recovery controls:
// Partition/Heal, Checkpoint/Crash/Restart. Faults are transient, so a
// chaos run that heals its partitions and restarts its crashed replicas
// still satisfies the paper's reliable-delivery model in the limit and
// must pass the oracle's liveness audit.
func WithChaos(plan rt.FaultPlan) ClusterOption {
	return func(c *Cluster) { c.chaosPlan = &plan }
}

// WithHeartbeats runs a membership failure detector over the cluster:
// every replica pair is probed per the options' interval, with probes
// answered by the fault layer (cuts, crashes and the loss lottery all
// shape what the detector sees; without WithChaos every probe
// succeeds). Access the view through Membership.
func WithHeartbeats(opts membership.Options) ClusterOption {
	return func(c *Cluster) { c.hbOpts = &opts }
}

// NewCluster builds and starts a live cluster for the protocol. The
// worker pool runs until Close.
func NewCluster(g *sharegraph.Graph, protocol core.Protocol, opts ...ClusterOption) (*Cluster, error) {
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("cluster: build nodes: %w", err)
	}
	c := &Cluster{
		g:        g,
		protocol: protocol,
		nodes:    nodes,
		nodeMu:   make([]sync.Mutex, len(nodes)),
		audit:    true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.audit {
		if c.flatOracle {
			c.tracker = causality.NewFlatTracker(g)
		} else {
			c.tracker = causality.NewTracker(g)
		}
	}
	c.batches.New = func() any { return &envBatch{} }
	if c.chaosPlan != nil {
		c.rec = make([]replicaRec, len(nodes))
		c.eng = rt.NewWithFaults(len(nodes), c.opts, *c.chaosPlan, c.cloneEnv, c.deliver)
	} else {
		c.eng = rt.New(len(nodes), c.opts, c.deliver)
	}
	if c.hbOpts != nil {
		c.det = membership.New(len(nodes), c.probe, *c.hbOpts)
		c.det.Start()
	}
	return c, nil
}

// cloneEnv deep-copies an envelope for the fault layer's duplication
// path: the original's Meta is a pooled buffer recycled after its own
// delivery, so the duplicate needs an independent copy.
func (c *Cluster) cloneEnv(env core.Envelope) core.Envelope {
	env.Meta = c.meta.Copy(env.Meta)
	return env
}

// probe answers one heartbeat: it succeeds unless the fault layer says
// the link is unusable (endpoint down, edge cut, or the probe-stream
// loss lottery fires).
func (c *Cluster) probe(from, to int) bool {
	if f := c.eng.Faults(); f != nil {
		return f.Probe(from, to)
	}
	return true
}

// Membership exposes the heartbeat failure detector; nil unless the
// cluster was built with WithHeartbeats.
func (c *Cluster) Membership() *membership.Detector { return c.det }

// Faults exposes the engine's fault injector; nil unless the cluster was
// built with WithChaos.
func (c *Cluster) Faults() *rt.FaultInjector[core.Envelope] { return c.eng.Faults() }

// Tracker exposes the oracle auditing this cluster; nil when the cluster
// was built with WithoutAudit.
func (c *Cluster) Tracker() *causality.Tracker { return c.tracker }

// Workers returns the delivery worker-pool size.
func (c *Cluster) Workers() int { return c.eng.Workers() }

// issueID reports a client write to the oracle, or mints a bare ID when
// auditing is off. Callers hold the writer node's lock, preserving the
// per-replica issue order the oracle requires.
func (c *Cluster) issueID(r sharegraph.ReplicaID, x sharegraph.Register) causality.UpdateID {
	if c.tracker != nil {
		return c.tracker.OnIssue(r, x)
	}
	return causality.UpdateID(c.idSeq.Add(1) - 1)
}

// Write performs a client write at replica r, blocking while any
// destination inbox is at capacity (the backpressure contract).
func (c *Cluster) Write(r sharegraph.ReplicaID, x sharegraph.Register, v core.Value) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: closed")
	}
	b := c.getBatch()
	c.nodeMu[r].Lock()
	if c.rec != nil && c.rec[r].down {
		c.nodeMu[r].Unlock()
		c.putBatch(b)
		return fmt.Errorf("cluster: replica %d is down", r)
	}
	id := c.issueID(r, x)
	err := c.nodes[r].HandleWrite(x, v, id, b)
	if err == nil && c.rec != nil && c.rec[r].logging {
		c.rec[r].log = append(c.rec[r].log, logEntry{write: true, reg: x, val: v, id: id})
	}
	c.nodeMu[r].Unlock()
	if err != nil {
		c.putBatch(b)
		return fmt.Errorf("cluster: write at %d: %w", r, err)
	}
	accepted := c.eng.Send(b.envs...)
	c.recordSent(b.envs[:accepted])
	c.putBatch(b)
	return nil
}

// Read returns replica r's local copy of x. A crashed replica serves no
// reads: ok is false while r is down.
func (c *Cluster) Read(r sharegraph.ReplicaID, x sharegraph.Register) (core.Value, bool) {
	c.nodeMu[r].Lock()
	defer c.nodeMu[r].Unlock()
	if c.rec != nil && c.rec[r].down {
		return 0, false
	}
	return c.nodes[r].Read(x)
}

// deliver handles one message at its destination node and forwards any
// relayed messages. The engine calls it from pool workers; forwards are
// enqueued before the worker decrements its own outstanding count, so the
// counter never reads zero mid-cascade.
func (c *Cluster) deliver(env core.Envelope) {
	b := c.getBatch()
	to := env.To
	c.nodeMu[to].Lock()
	if c.rec != nil {
		rec := &c.rec[to]
		if rec.down {
			// Arrived in the window between the fault layer's down check
			// and delivery; park it (keeping its pooled Meta) until
			// Restart re-forwards it.
			rec.parked = append(rec.parked, env)
			c.nodeMu[to].Unlock()
			c.putBatch(b)
			return
		}
		if rec.logging {
			e := env
			e.Meta = append([]byte(nil), env.Meta...)
			rec.log = append(rec.log, logEntry{env: e})
		}
	}
	applied := c.nodes[to].HandleMessage(env, b)
	if c.tracker != nil {
		for _, a := range applied {
			c.tracker.OnApply(to, a.OracleID)
		}
	}
	c.nodeMu[to].Unlock()
	// The node has decoded (or rejected) the metadata; recycle the buffer
	// for a future emit.
	c.meta.Put(env.Meta)
	accepted := c.eng.Forward(b.envs...)
	c.recordSent(b.envs[:accepted])
	c.putBatch(b)
}

// Quiesce blocks until no messages are in flight. Updates stuck in pending
// buffers (a liveness failure) do not count as in flight, so Quiesce
// terminates even for broken protocols.
func (c *Cluster) Quiesce() { c.eng.Quiesce() }

// Close rejects further writes, waits for all in-flight deliveries to
// drain, and stops the worker pool. It returns only after every worker
// has exited — no goroutines outlive the cluster.
func (c *Cluster) Close() {
	c.closed.Store(true)
	if c.det != nil {
		c.det.Stop()
	}
	c.eng.Close()
}

// Outstanding returns the number of in-flight messages: buffered in
// inboxes or currently being delivered. After Close it is zero.
func (c *Cluster) Outstanding() int { return c.eng.Outstanding() }

// PendingTotal sums buffered-but-unapplied updates across replicas.
func (c *Cluster) PendingTotal() int {
	total := 0
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		total += c.nodes[r].PendingCount()
		c.nodeMu[r].Unlock()
	}
	return total
}

// StateSnapshot returns each replica's current register contents: one map
// per replica covering the registers it genuinely stores. Call after
// Quiesce for a stable snapshot.
func (c *Cluster) StateSnapshot() []map[sharegraph.Register]core.Value {
	out := make([]map[sharegraph.Register]core.Value, len(c.nodes))
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		out[r] = nodeState(c.g, c.nodes[r], sharegraph.ReplicaID(r))
		c.nodeMu[r].Unlock()
	}
	return out
}

// MessagesSent returns the number of messages dispatched so far.
func (c *Cluster) MessagesSent() int64 { return c.msgs.Load() }

// MetaBytes returns total metadata bytes dispatched so far.
func (c *Cluster) MetaBytes() int64 { return c.metaBytes.Load() }

// RunScript executes a workload concurrently: one driver goroutine per
// replica issues that replica's operations in script order (blocking
// under inbox backpressure), then the cluster quiesces. Returns the
// oracle verdicts (including liveness); nil on an unaudited cluster.
func (c *Cluster) RunScript(script workload.Script) []causality.Violation {
	n := c.g.NumReplicas()
	queues := make([][]workload.Op, n)
	for _, op := range script {
		queues[op.Replica] = append(queues[op.Replica], op)
	}
	var wg sync.WaitGroup
	var val atomic.Int64
	for r := 0; r < n; r++ {
		if len(queues[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, op := range queues[r] {
				if op.IsRead {
					c.Read(sharegraph.ReplicaID(r), op.Reg)
					continue
				}
				v := core.Value(op.Val)
				if v == 0 {
					v = core.Value(val.Add(1))
				}
				// Errors can only be NotStoredError from a malformed
				// script; generators never produce those.
				_ = c.Write(sharegraph.ReplicaID(r), op.Reg, v)
			}
		}(r)
	}
	wg.Wait()
	c.Quiesce()
	if c.tracker == nil {
		return nil
	}
	c.tracker.CheckLiveness()
	return c.tracker.Violations()
}
