package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// Cluster is the live concurrent runtime over the same protocol state
// machines the deterministic runner drives: a fixed pool of delivery
// workers pulls messages from bounded per-replica inboxes and feeds them
// to lock-protected nodes.
//
// The transport preserves the paper's system model — reliable,
// point-to-point, NOT FIFO — without spawning a goroutine per message:
// each worker takes a uniformly random buffered message from an inbox
// (a seeded per-inbox shuffle), so delivery order is arbitrarily reordered
// even though the goroutine count stays fixed at the worker-pool size.
//
// Backpressure contract: client writes (Write, RunScript drivers) block
// while a destination inbox is at capacity, so a fast writer cannot grow
// memory without bound — the inbox bound replaces the unbounded goroutine
// fanout of the previous runtime. Deliveries that forward messages
// (relaying protocols) enqueue above capacity rather than block: a worker
// that blocked on a full inbox could deadlock the pool, and bounded
// worker count already bounds the transient overshoot to one fanout per
// worker.
type Cluster struct {
	g       *sharegraph.Graph
	tracker *causality.Tracker
	nodes   []core.Node
	nodeMu  []sync.Mutex

	workers  int
	capacity int
	maxDelay time.Duration
	seed     int64
	seq      atomic.Uint64 // per-delivery counter driving delay jitter

	// mu guards the inboxes, the ready queue and the lifecycle flags.
	// Buffer operations under it are O(1); protocol work happens outside
	// it under the per-node locks.
	mu        sync.Mutex
	workAvail *sync.Cond // a ready entry was pushed, or shutdown began
	spaceCond *sync.Cond // an inbox crossed back below capacity
	idleCond  *sync.Cond // outstanding hit zero
	inboxes   []inbox
	ready     []sharegraph.ReplicaID // non-empty inboxes, FIFO, deduplicated
	readyHead int
	// outstanding counts messages buffered in inboxes plus messages a
	// worker is currently delivering (a delivery's forwards are enqueued
	// before its own count drops, so the counter never dips to zero while
	// causally-produced work remains).
	outstanding int
	closed      bool // Write rejects new client operations
	stopping    bool // workers exit once the ready queue is empty
	wg          sync.WaitGroup

	msgs      atomic.Int64
	metaBytes atomic.Int64
}

// inbox buffers in-flight messages destined for one replica. Guarded by
// Cluster.mu.
type inbox struct {
	buf []core.Envelope
	rng *rand.Rand // seeded shuffle: which buffered message delivers next
	// queued marks the replica as present in the ready queue, keeping at
	// most one entry per replica there.
	queued bool
}

// ClusterOption customizes a Cluster.
type ClusterOption func(*Cluster)

// WithMaxDelay sets the maximum artificial delivery delay (default 0).
// A delivering worker sleeps up to this long before handling a message,
// adding wall-clock jitter on top of the inbox shuffle's reordering; with
// a bounded worker pool it also throttles throughput, which is the point
// in stress tests.
func WithMaxDelay(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.maxDelay = d }
}

// WithWorkers sets the delivery worker-pool size. The default is
// GOMAXPROCS but at least 2; an explicit n is used as given.
func WithWorkers(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithInboxCapacity bounds each replica's inbox (default 1024). Client
// writes block while a destination inbox is full.
func WithInboxCapacity(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.capacity = n
		}
	}
}

// WithSeed seeds the per-inbox delivery shuffles (default 1). Two runs
// with the same seed still interleave differently — goroutine scheduling
// stays nondeterministic — but the seed varies which reorderings the
// shuffle explores.
func WithSeed(seed int64) ClusterOption {
	return func(c *Cluster) { c.seed = seed }
}

// NewCluster builds and starts a live cluster for the protocol. The
// worker pool runs until Close.
func NewCluster(g *sharegraph.Graph, protocol core.Protocol, opts ...ClusterOption) (*Cluster, error) {
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("cluster: build nodes: %w", err)
	}
	c := &Cluster{
		g:        g,
		tracker:  causality.NewTracker(g),
		nodes:    nodes,
		nodeMu:   make([]sync.Mutex, len(nodes)),
		workers:  max(2, runtime.GOMAXPROCS(0)),
		capacity: 1024,
		seed:     1,
	}
	for _, o := range opts {
		o(c)
	}
	c.workAvail = sync.NewCond(&c.mu)
	c.spaceCond = sync.NewCond(&c.mu)
	c.idleCond = sync.NewCond(&c.mu)
	c.inboxes = make([]inbox, len(nodes))
	for r := range c.inboxes {
		// Distinct odd multipliers decorrelate the per-inbox streams
		// derived from one user-facing seed.
		c.inboxes[r].rng = rand.New(rand.NewSource(c.seed + int64(r+1)*0x4f1bdcdcbfa53e0b))
	}
	c.wg.Add(c.workers)
	for w := 0; w < c.workers; w++ {
		go c.worker()
	}
	return c, nil
}

// Tracker exposes the oracle auditing this cluster.
func (c *Cluster) Tracker() *causality.Tracker { return c.tracker }

// Workers returns the delivery worker-pool size.
func (c *Cluster) Workers() int { return c.workers }

// Write performs a client write at replica r, blocking while any
// destination inbox is at capacity (the backpressure contract).
func (c *Cluster) Write(r sharegraph.ReplicaID, x sharegraph.Register, v core.Value) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: closed")
	}
	c.mu.Unlock()

	c.nodeMu[r].Lock()
	id := c.tracker.OnIssue(r, x)
	envs, err := c.nodes[r].HandleWrite(x, v, id)
	c.nodeMu[r].Unlock()
	if err != nil {
		return fmt.Errorf("cluster: write at %d: %w", r, err)
	}
	c.enqueue(envs, true)
	return nil
}

// Read returns replica r's local copy of x.
func (c *Cluster) Read(r sharegraph.ReplicaID, x sharegraph.Register) (core.Value, bool) {
	c.nodeMu[r].Lock()
	defer c.nodeMu[r].Unlock()
	return c.nodes[r].Read(x)
}

// enqueue files envelopes into their destination inboxes. With
// backpressure set (client writes) it blocks while an inbox is full;
// workers forwarding relayed messages pass false and overshoot instead,
// which keeps the pool deadlock-free. Envelopes enqueued after shutdown
// has drained the cluster are dropped — the workers that would deliver
// them are gone.
func (c *Cluster) enqueue(envs []core.Envelope, backpressure bool) {
	if len(envs) == 0 {
		return
	}
	c.mu.Lock()
	for _, env := range envs {
		if backpressure {
			for len(c.inboxes[env.To].buf) >= c.capacity && !c.stopping {
				c.spaceCond.Wait()
			}
		}
		if c.stopping {
			break
		}
		ib := &c.inboxes[env.To]
		ib.buf = append(ib.buf, env)
		c.outstanding++
		c.msgs.Add(1)
		c.metaBytes.Add(int64(len(env.Meta)))
		if !ib.queued {
			ib.queued = true
			c.pushReady(env.To)
			c.workAvail.Signal()
		}
	}
	c.mu.Unlock()
}

// pushReady appends to the ready queue, reclaiming the consumed prefix
// once it dominates. Caller holds mu.
func (c *Cluster) pushReady(r sharegraph.ReplicaID) {
	if c.readyHead > 0 && c.readyHead >= len(c.ready)/2 {
		c.ready = append(c.ready[:0], c.ready[c.readyHead:]...)
		c.readyHead = 0
	}
	c.ready = append(c.ready, r)
}

// worker is one delivery loop: pop a replica with buffered messages, take
// a random one from its inbox, deliver it outside the central lock.
func (c *Cluster) worker() {
	defer c.wg.Done()
	c.mu.Lock()
	for {
		for c.readyHead == len(c.ready) && !c.stopping {
			c.workAvail.Wait()
		}
		if c.readyHead == len(c.ready) { // stopping and drained
			c.mu.Unlock()
			return
		}
		r := c.ready[c.readyHead]
		c.readyHead++
		ib := &c.inboxes[r]
		ib.queued = false
		if len(ib.buf) == 0 {
			continue // raced with another worker; nothing left here
		}
		// Seeded shuffle: deliver a uniformly random buffered message.
		// Swap-remove keeps the take O(1); the vacated slot is zeroed so
		// the inbox does not pin delivered metadata buffers.
		i := ib.rng.Intn(len(ib.buf))
		env := ib.buf[i]
		last := len(ib.buf) - 1
		ib.buf[i] = ib.buf[last]
		ib.buf[last] = core.Envelope{}
		ib.buf = ib.buf[:last]
		if len(ib.buf) == c.capacity-1 {
			// Crossed back below the bound: wake blocked writers. Inboxes
			// can sit above capacity transiently (forward overshoot), in
			// which case later takes re-cross and re-signal.
			c.spaceCond.Broadcast()
		}
		if len(ib.buf) > 0 && !ib.queued {
			ib.queued = true
			c.pushReady(r)
			c.workAvail.Signal()
		}
		c.mu.Unlock()

		c.deliver(env)

		c.mu.Lock()
		c.outstanding--
		if c.outstanding == 0 {
			c.idleCond.Broadcast()
		}
	}
}

// deliver handles one message at its destination node and enqueues any
// forwards. Forwards are enqueued before the caller decrements
// outstanding, so the counter never reads zero mid-cascade.
func (c *Cluster) deliver(env core.Envelope) {
	if c.maxDelay > 0 {
		// splitmix64-style hash of the delivery counter gives deterministic-
		// ish jitter without sharing a PRNG across workers.
		z := c.seq.Add(1) * 0x9e3779b97f4a7c15
		z ^= z >> 31
		time.Sleep(time.Duration(z % uint64(c.maxDelay)))
	}
	c.nodeMu[env.To].Lock()
	applied, fwd := c.nodes[env.To].HandleMessage(env)
	for _, a := range applied {
		c.tracker.OnApply(env.To, a.OracleID)
	}
	c.nodeMu[env.To].Unlock()
	c.enqueue(fwd, false)
}

// Quiesce blocks until no messages are in flight. Updates stuck in pending
// buffers (a liveness failure) do not count as in flight, so Quiesce
// terminates even for broken protocols.
func (c *Cluster) Quiesce() {
	c.mu.Lock()
	for c.outstanding != 0 {
		c.idleCond.Wait()
	}
	c.mu.Unlock()
}

// Close rejects further writes, waits for all in-flight deliveries to
// drain, and stops the worker pool. It returns only after every worker
// has exited — no goroutines outlive the cluster.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	for c.outstanding != 0 {
		c.idleCond.Wait()
	}
	c.stopping = true
	c.workAvail.Broadcast()
	c.spaceCond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// Outstanding returns the number of in-flight messages: buffered in
// inboxes or currently being delivered. After Close it is zero.
func (c *Cluster) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outstanding
}

// PendingTotal sums buffered-but-unapplied updates across replicas.
func (c *Cluster) PendingTotal() int {
	total := 0
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		total += c.nodes[r].PendingCount()
		c.nodeMu[r].Unlock()
	}
	return total
}

// StateSnapshot returns each replica's current register contents: one map
// per replica covering the registers it genuinely stores. Call after
// Quiesce for a stable snapshot.
func (c *Cluster) StateSnapshot() []map[sharegraph.Register]core.Value {
	out := make([]map[sharegraph.Register]core.Value, len(c.nodes))
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		out[r] = nodeState(c.g, c.nodes[r], sharegraph.ReplicaID(r))
		c.nodeMu[r].Unlock()
	}
	return out
}

// MessagesSent returns the number of messages dispatched so far.
func (c *Cluster) MessagesSent() int64 { return c.msgs.Load() }

// MetaBytes returns total metadata bytes dispatched so far.
func (c *Cluster) MetaBytes() int64 { return c.metaBytes.Load() }

// RunScript executes a workload concurrently: one driver goroutine per
// replica issues that replica's operations in script order (blocking
// under inbox backpressure), then the cluster quiesces. Returns the
// oracle verdicts (including liveness).
func (c *Cluster) RunScript(script workload.Script) []causality.Violation {
	n := c.g.NumReplicas()
	queues := make([][]workload.Op, n)
	for _, op := range script {
		queues[op.Replica] = append(queues[op.Replica], op)
	}
	var wg sync.WaitGroup
	var val atomic.Int64
	for r := 0; r < n; r++ {
		if len(queues[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, op := range queues[r] {
				if op.IsRead {
					c.Read(sharegraph.ReplicaID(r), op.Reg)
					continue
				}
				v := core.Value(op.Val)
				if v == 0 {
					v = core.Value(val.Add(1))
				}
				// Errors can only be NotStoredError from a malformed
				// script; generators never produce those.
				_ = c.Write(sharegraph.ReplicaID(r), op.Reg, v)
			}
		}(r)
	}
	wg.Wait()
	c.Quiesce()
	c.tracker.CheckLiveness()
	return c.tracker.Violations()
}
