package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// Cluster runs one goroutine-free node per replica behind per-node locks,
// delivering every message on its own goroutine after a pseudo-random
// delay — a live concurrent runtime over the same protocol state machines
// the deterministic runner drives. Message delays make delivery order
// non-FIFO, as the paper's system model demands.
type Cluster struct {
	g       *sharegraph.Graph
	tracker *causality.Tracker
	nodes   []core.Node
	nodeMu  []sync.Mutex

	maxDelay time.Duration
	seq      atomic.Uint64 // per-message counter driving delay jitter

	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int
	closed      bool
	wg          sync.WaitGroup

	msgs      atomic.Int64
	metaBytes atomic.Int64
}

// ClusterOption customizes a Cluster.
type ClusterOption func(*Cluster)

// WithMaxDelay sets the maximum artificial delivery delay (default 1ms).
// Zero disables delays (messages still hop goroutines, so order remains
// nondeterministic).
func WithMaxDelay(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.maxDelay = d }
}

// NewCluster builds and starts a live cluster for the protocol.
func NewCluster(g *sharegraph.Graph, protocol core.Protocol, opts ...ClusterOption) (*Cluster, error) {
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("cluster: build nodes: %w", err)
	}
	c := &Cluster{
		g:        g,
		tracker:  causality.NewTracker(g),
		nodes:    nodes,
		nodeMu:   make([]sync.Mutex, len(nodes)),
		maxDelay: time.Millisecond,
	}
	c.cond = sync.NewCond(&c.mu)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Tracker exposes the oracle auditing this cluster.
func (c *Cluster) Tracker() *causality.Tracker { return c.tracker }

// Write performs a client write at replica r.
func (c *Cluster) Write(r sharegraph.ReplicaID, x sharegraph.Register, v core.Value) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: closed")
	}
	c.mu.Unlock()

	c.nodeMu[r].Lock()
	id := c.tracker.OnIssue(r, x)
	envs, err := c.nodes[r].HandleWrite(x, v, id)
	c.nodeMu[r].Unlock()
	if err != nil {
		return fmt.Errorf("cluster: write at %d: %w", r, err)
	}
	c.dispatch(envs)
	return nil
}

// Read returns replica r's local copy of x.
func (c *Cluster) Read(r sharegraph.ReplicaID, x sharegraph.Register) (core.Value, bool) {
	c.nodeMu[r].Lock()
	defer c.nodeMu[r].Unlock()
	return c.nodes[r].Read(x)
}

func (c *Cluster) dispatch(envs []core.Envelope) {
	if len(envs) == 0 {
		return
	}
	c.mu.Lock()
	c.outstanding += len(envs)
	c.mu.Unlock()
	for _, env := range envs {
		c.msgs.Add(1)
		c.metaBytes.Add(int64(len(env.Meta)))
		env := env
		c.wg.Add(1)
		go c.deliver(env)
	}
}

func (c *Cluster) deliver(env core.Envelope) {
	defer c.wg.Done()
	if c.maxDelay > 0 {
		// splitmix64-style hash of the message sequence number gives a
		// deterministic-ish jitter without sharing a PRNG across
		// goroutines.
		z := c.seq.Add(1) * 0x9e3779b97f4a7c15
		z ^= z >> 31
		time.Sleep(time.Duration(z % uint64(c.maxDelay)))
	}
	c.nodeMu[env.To].Lock()
	applied, fwd := c.nodes[env.To].HandleMessage(env)
	for _, a := range applied {
		c.tracker.OnApply(env.To, a.OracleID)
	}
	c.nodeMu[env.To].Unlock()
	c.dispatch(fwd)

	c.mu.Lock()
	c.outstanding--
	if c.outstanding == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Quiesce blocks until no messages are in flight. Updates stuck in pending
// buffers (a liveness failure) do not count as in flight, so Quiesce
// terminates even for broken protocols.
func (c *Cluster) Quiesce() {
	c.mu.Lock()
	for c.outstanding != 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Close waits for all in-flight deliveries to finish and shuts the
// cluster down. Further writes fail.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}

// PendingTotal sums buffered-but-unapplied updates across replicas.
func (c *Cluster) PendingTotal() int {
	total := 0
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		total += c.nodes[r].PendingCount()
		c.nodeMu[r].Unlock()
	}
	return total
}

// MessagesSent returns the number of messages dispatched so far.
func (c *Cluster) MessagesSent() int64 { return c.msgs.Load() }

// MetaBytes returns total metadata bytes dispatched so far.
func (c *Cluster) MetaBytes() int64 { return c.metaBytes.Load() }

// RunScript executes a workload concurrently: one driver goroutine per
// replica issues that replica's operations in script order, then the
// cluster quiesces. Returns the oracle verdicts (including liveness).
func (c *Cluster) RunScript(script workload.Script) []causality.Violation {
	n := c.g.NumReplicas()
	queues := make([][]workload.Op, n)
	for _, op := range script {
		queues[op.Replica] = append(queues[op.Replica], op)
	}
	var wg sync.WaitGroup
	var val atomic.Int64
	for r := 0; r < n; r++ {
		if len(queues[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, op := range queues[r] {
				if op.IsRead {
					c.Read(sharegraph.ReplicaID(r), op.Reg)
					continue
				}
				// Errors can only be NotStoredError from a malformed
				// script; generators never produce those.
				_ = c.Write(sharegraph.ReplicaID(r), op.Reg, core.Value(val.Add(1)))
			}
		}(r)
	}
	wg.Wait()
	c.Quiesce()
	c.tracker.CheckLiveness()
	return c.tracker.Violations()
}
