package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Cluster is the live concurrent runtime over the same protocol state
// machines the deterministic runner drives: the shared worker-pool engine
// (internal/runtime) pulls messages from bounded per-replica inboxes and
// feeds them to lock-protected nodes.
//
// The engine preserves the paper's system model — reliable,
// point-to-point, NOT FIFO — without spawning a goroutine per message:
// each worker takes a uniformly random buffered message from an inbox
// (a seeded per-inbox shuffle), so delivery order is arbitrarily reordered
// even though the goroutine count stays fixed at the worker-pool size.
//
// Backpressure contract: client writes (Write, RunScript drivers) block
// while a destination inbox is at capacity, so a fast writer cannot grow
// memory without bound. Deliveries that forward messages (relaying
// protocols) enqueue above capacity rather than block — see the engine's
// Forward path.
//
// The write fanout is allocation-free in steady state: nodes emit
// envelopes referencing node-owned metadata scratch (the core.Sink
// contract), and the cluster's sink copies each Meta into a recycled
// buffer that returns to the pool once the message has been ingested at
// its destination.
type Cluster struct {
	g        *sharegraph.Graph
	protocol core.Protocol
	tracker  *causality.Tracker // nil when auditing is disabled
	nodes    []core.Node
	nodeMu   []sync.Mutex
	eng      *rt.Engine[core.Envelope]

	opts       rt.Options
	audit      bool
	flatOracle bool

	// Chaos state: nil/zero unless WithChaos / WithHeartbeats were given.
	chaosPlan *rt.FaultPlan
	hbOpts    *membership.Options
	det       *membership.Detector

	// Observability: reg is nil (disarmed) unless WithMetrics or
	// WithLoadAware were given; every recording call below is nil-safe so
	// the fault-free, metrics-free hot path pays a nil check, nothing
	// more. prober burst-pings the share graph's directed edges; it is
	// constructed armed but only started automatically in LoadAware mode
	// (deterministic drivers call Tick themselves).
	metrics   bool
	reg       *obs.Registry
	prober    *obs.Prober
	loadAware bool
	// rankCache/scorers implement the load-aware route choice: writer r's
	// fanout destinations re-ranked least-loaded-first. rankCache[r] is
	// guarded by nodeMu[r], like the node's own recipient cache.
	rankCache []sharegraph.RecipientCache
	scorers   []func(sharegraph.ReplicaID) int64
	// rec[r] is replica r's recovery state, guarded by nodeMu[r]; the
	// slice itself is nil when chaos is disabled, so the fault-free
	// delivery path pays one nil check.
	rec []replicaRec

	meta    transport.BytePool
	batches sync.Pool // *envBatch

	// epoch is the reconfiguration fence: every client write holds it
	// for reading, so Reconfigure's write lock blocks new writes while
	// the old epoch drains. Deliveries never take it — a write blocked
	// on inbox backpressure inside the read section can always drain.
	epoch sync.RWMutex

	idSeq     atomic.Int64 // oracle-ID source when auditing is off
	closed    atomic.Bool
	msgs      atomic.Int64
	metaBytes atomic.Int64
}

// envBatch is a core.Sink that stages one node call's emitted envelopes:
// Meta buffers are copied through the cluster's recycling pool inside the
// node's lock (satisfying the consume-before-next-call contract), and the
// staged batch is flushed to the engine after the lock is released so
// backpressure never blocks while holding a node.
type envBatch struct {
	c    *Cluster
	envs []core.Envelope
	rank []sharegraph.ReplicaID // load-aware scratch: ranked fanout order
}

// Emit implements core.Sink.
func (b *envBatch) Emit(env core.Envelope) {
	env.Meta = b.c.meta.Copy(env.Meta)
	b.envs = append(b.envs, env)
}

// recordSent counts messages the engine actually accepted — never the
// suffix a shutdown race dropped — so Stats stays consistent with what
// was delivered.
func (c *Cluster) recordSent(envs []core.Envelope) {
	c.msgs.Add(int64(len(envs)))
	total := int64(0)
	for i := range envs {
		total += int64(len(envs[i].Meta))
	}
	c.metaBytes.Add(total)
	if c.reg != nil {
		for i := range envs {
			c.reg.Sent(int(envs[i].From), int(envs[i].To), len(envs[i].Meta))
		}
	}
}

func (c *Cluster) getBatch() *envBatch {
	b := c.batches.Get().(*envBatch)
	b.c = c
	return b
}

func (c *Cluster) putBatch(b *envBatch) {
	b.envs = b.envs[:0]
	b.rank = b.rank[:0]
	c.batches.Put(b)
}

// ClusterOption customizes a Cluster.
type ClusterOption func(*Cluster)

// WithMaxDelay sets the maximum artificial delivery delay (default 0).
// A delivering worker sleeps up to this long before handling a message,
// adding wall-clock jitter on top of the inbox shuffle's reordering; with
// a bounded worker pool it also throttles throughput, which is the point
// in stress tests.
func WithMaxDelay(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.opts.MaxDelay = d }
}

// WithWorkers sets the delivery worker-pool size. The default is
// GOMAXPROCS but at least 2; an explicit n is used as given.
func WithWorkers(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.opts.Workers = n
		}
	}
}

// WithInboxCapacity bounds each replica's inbox (default 1024). Client
// writes block while a destination inbox is full.
func WithInboxCapacity(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.opts.InboxCapacity = n
		}
	}
}

// WithSeed seeds the per-inbox delivery shuffles (default 1). Two runs
// with the same seed still interleave differently — goroutine scheduling
// stays nondeterministic — but the seed varies which reorderings the
// shuffle explores.
func WithSeed(seed int64) ClusterOption {
	return func(c *Cluster) { c.opts.Seed = seed }
}

// WithoutAudit disables the causality oracle for runs that want no
// verdict at all. Auditing is affordable by default since the oracle
// moved to persistent copy-on-write sets (the per-issue causal-past
// snapshot is O(1) sharing, not a full clone); Tracker returns nil and
// RunScript returns no violations on an unaudited cluster.
func WithoutAudit() ClusterOption {
	return func(c *Cluster) { c.audit = false }
}

// WithFlatOracle audits with the flat-bitset reference oracle (full
// causal-past clone per issue, quadratic bytes) instead of the default
// persistent one. Differential tests use it to pin both representations
// to identical verdicts under real concurrency.
func WithFlatOracle() ClusterOption {
	return func(c *Cluster) { c.flatOracle = true }
}

// WithChaos routes every message through the engine's seeded
// fault-injection layer (loss, duplication, partitions, crash parking —
// see runtime.FaultPlan) and enables the cluster's recovery controls:
// Partition/Heal, Checkpoint/Crash/Restart. Faults are transient, so a
// chaos run that heals its partitions and restarts its crashed replicas
// still satisfies the paper's reliable-delivery model in the limit and
// must pass the oracle's liveness audit.
func WithChaos(plan rt.FaultPlan) ClusterOption {
	return func(c *Cluster) { c.chaosPlan = &plan }
}

// WithHeartbeats runs a membership failure detector over the cluster:
// every replica pair is probed per the options' interval, with probes
// answered by the fault layer (cuts, crashes and the loss lottery all
// shape what the detector sees; without WithChaos every probe
// succeeds). Access the view through Membership.
func WithHeartbeats(opts membership.Options) ClusterOption {
	return func(c *Cluster) { c.hbOpts = &opts }
}

// WithMetrics arms the observability registry: per-replica delivery /
// stall / recheck counters, per-edge traffic counters, and engine
// inbox-depth gauges, snapshotted by Metrics. Disarmed (the default)
// the collection hooks cost one nil check on the hot path — the same
// discipline as the fault-injection layer, pinned by an alloc test and
// a gated benchmark row.
func WithMetrics() ClusterOption {
	return func(c *Cluster) { c.metrics = true }
}

// WithLoadAware arms metrics and enables load-aware relay choice: each
// write's fanout (the recipient set the share graph dictates) is
// emitted least-loaded-first, ordered by destination inbox depth with
// probed edge-latency EWMAs breaking ties. The recipient SET never
// changes — only the emission order, which the engine's delivery
// shuffle already permutes arbitrarily — so causal consistency and
// final state are untouched (pinned by a differential test). The
// health prober starts automatically and stops with the cluster.
func WithLoadAware() ClusterOption {
	return func(c *Cluster) {
		c.metrics = true
		c.loadAware = true
	}
}

// NewCluster builds and starts a live cluster for the protocol. The
// worker pool runs until Close.
func NewCluster(g *sharegraph.Graph, protocol core.Protocol, opts ...ClusterOption) (*Cluster, error) {
	c := &Cluster{
		g:        g,
		protocol: protocol,
		audit:    true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.audit {
		if c.flatOracle {
			c.tracker = causality.NewFlatTracker(g)
		} else {
			c.tracker = causality.NewTracker(g)
		}
	}
	c.batches.New = func() any { return &envBatch{} }
	if c.metrics {
		c.reg = obs.New(g.NumReplicas(), g.NumReplicas())
		c.opts.Obs = c.reg
	}
	// Inject the drop-diagnostics sink before building nodes (nodes
	// capture it at construction): drops count in the registry when
	// metrics are armed, and logging is rate-limited either way.
	c.armDiag(protocol)
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("cluster: build nodes: %w", err)
	}
	c.nodes = nodes
	c.nodeMu = make([]sync.Mutex, len(nodes))
	if c.chaosPlan != nil {
		c.rec = make([]replicaRec, len(nodes))
		c.eng = rt.NewWithFaults(len(nodes), c.opts, *c.chaosPlan, c.cloneEnv, c.deliver)
	} else {
		c.eng = rt.New(len(nodes), c.opts, c.deliver)
	}
	if c.metrics {
		edges := g.Edges()
		pairs := make([][2]int, len(edges))
		for i, e := range edges {
			pairs[i] = [2]int{int(e.From), int(e.To)}
		}
		c.prober = obs.NewProber(c.reg, pairs, c.probeRTT, obs.ProberOptions{})
	}
	if c.loadAware {
		c.rankCache = make([]sharegraph.RecipientCache, len(nodes))
		c.scorers = make([]func(sharegraph.ReplicaID) int64, len(nodes))
		for r := range nodes {
			c.rankCache[r] = sharegraph.NewRecipientCache(g, sharegraph.ReplicaID(r))
			c.scorers[r] = c.loadScorer(sharegraph.ReplicaID(r))
		}
		c.prober.Start()
	}
	if c.hbOpts != nil {
		c.det = membership.New(len(nodes), c.probe, *c.hbOpts)
		c.det.Start()
	}
	return c, nil
}

// armDiag injects the cluster's ingest-drop sink into protocols that
// accept one (core.DiagSettable): every drop counts in the obs registry
// when metrics are armed, and the diagnostic log line is rate-limited
// either way. Protocols without the interface keep the package default.
func (c *Cluster) armDiag(protocol core.Protocol) {
	ds, ok := protocol.(core.DiagSettable)
	if !ok {
		return
	}
	reg := c.reg // may be nil (disarmed); IngestDrop no-ops on nil
	ds.SetDiag(core.NewDiag(nil, func(r int) { reg.IngestDrop(r) }))
}

// loadScorer builds writer from's destination scorer: inbox depth
// dominates (in 1ms units), with the probed from→to latency EWMA
// (clamped below 1ms — in-process round-trips are microseconds)
// breaking ties between equally deep inboxes. Unprobed edges score
// latency 0, so before the prober has measured anything the ranking
// degrades to plain depth order, and with idle inboxes to the default
// recipient order.
func (c *Cluster) loadScorer(from sharegraph.ReplicaID) func(sharegraph.ReplicaID) int64 {
	const tie = int64(time.Millisecond)
	return func(to sharegraph.ReplicaID) int64 {
		lat := c.reg.EdgeLatencyNs(int(from), int(to))
		if lat >= tie {
			lat = tie - 1
		}
		return c.reg.Depth(int(to))*tie + lat
	}
}

// probeRTT measures one relay-path round trip for the health prober: the
// time to acquire the destination node's lock — the cluster-internal
// analogue of pinging the peer, dominated by how contended the
// destination currently is. Under chaos the fault layer gates the probe
// exactly as it gates heartbeats (cut edges and down replicas fail).
func (c *Cluster) probeRTT(from, to int) (time.Duration, bool) {
	if f := c.eng.Faults(); f != nil && !f.Probe(from, to) {
		return 0, false
	}
	start := time.Now()
	c.nodeMu[to].Lock()
	rtt := time.Since(start)
	c.nodeMu[to].Unlock()
	return rtt, true
}

// cloneEnv deep-copies an envelope for the fault layer's duplication
// path: the original's Meta is a pooled buffer recycled after its own
// delivery, so the duplicate needs an independent copy.
func (c *Cluster) cloneEnv(env core.Envelope) core.Envelope {
	env.Meta = c.meta.Copy(env.Meta)
	return env
}

// probe answers one heartbeat: it succeeds unless the fault layer says
// the link is unusable (endpoint down, edge cut, or the probe-stream
// loss lottery fires).
func (c *Cluster) probe(from, to int) bool {
	if f := c.eng.Faults(); f != nil {
		return f.Probe(from, to)
	}
	return true
}

// Membership exposes the heartbeat failure detector; nil unless the
// cluster was built with WithHeartbeats.
func (c *Cluster) Membership() *membership.Detector { return c.det }

// Faults exposes the engine's fault injector; nil unless the cluster was
// built with WithChaos.
func (c *Cluster) Faults() *rt.FaultInjector[core.Envelope] { return c.eng.Faults() }

// Tracker exposes the oracle auditing this cluster; nil when the cluster
// was built with WithoutAudit.
func (c *Cluster) Tracker() *causality.Tracker { return c.tracker }

// Workers returns the delivery worker-pool size.
func (c *Cluster) Workers() int { return c.eng.Workers() }

// issueID reports a client write to the oracle, or mints a bare ID when
// auditing is off. Callers hold the writer node's lock, preserving the
// per-replica issue order the oracle requires.
func (c *Cluster) issueID(r sharegraph.ReplicaID, x sharegraph.Register) causality.UpdateID {
	if c.tracker != nil {
		return c.tracker.OnIssue(r, x)
	}
	return causality.UpdateID(c.idSeq.Add(1) - 1)
}

// Write performs a client write at replica r, blocking while any
// destination inbox is at capacity (the backpressure contract).
func (c *Cluster) Write(r sharegraph.ReplicaID, x sharegraph.Register, v core.Value) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: closed")
	}
	// Hold the epoch fence for reading across issue AND send: Reconfigure
	// must never observe a write that issued against the old epoch but
	// has not yet reached the engine.
	c.epoch.RLock()
	defer c.epoch.RUnlock()
	b := c.getBatch()
	c.nodeMu[r].Lock()
	if c.rec != nil && c.rec[r].down {
		c.nodeMu[r].Unlock()
		c.putBatch(b)
		return fmt.Errorf("cluster: replica %d is down", r)
	}
	id := c.issueID(r, x)
	err := c.nodes[r].HandleWrite(x, v, id, b)
	if err == nil && c.rec != nil && c.rec[r].logging {
		c.rec[r].log = append(c.rec[r].log, logEntry{write: true, reg: x, val: v, id: id})
	}
	if err == nil && c.loadAware {
		// Rank while still holding the writer's lock: rankCache[r] is
		// single-writer state like the node's own recipient cache. The
		// envelope permutation itself happens outside the lock.
		b.rank = c.rankCache[r].RankedRecipients(x, b.rank[:0], c.scorers[r])
	}
	c.nodeMu[r].Unlock()
	if err != nil {
		c.putBatch(b)
		return fmt.Errorf("cluster: write at %d: %w", r, err)
	}
	if c.loadAware {
		reorderFanout(b.envs, b.rank)
	}
	accepted := c.eng.Send(b.envs...)
	c.recordSent(b.envs[:accepted])
	c.putBatch(b)
	return nil
}

// reorderFanout permutes one write's staged envelopes to match the
// ranked destination order. Envelopes whose destination is not in the
// ranking (there are none today — the fanout and the recipient cache
// derive from the same share graph) keep their relative order after the
// ranked prefix. Quadratic in the fanout size, which is at most R-1 and
// typically the share-graph degree.
func reorderFanout(envs []core.Envelope, rank []sharegraph.ReplicaID) {
	i := 0
	for _, dest := range rank {
		for j := i; j < len(envs); j++ {
			if envs[j].To == dest {
				envs[i], envs[j] = envs[j], envs[i]
				i++
				break
			}
		}
	}
}

// Read returns replica r's local copy of x. A crashed replica serves no
// reads: ok is false while r is down.
func (c *Cluster) Read(r sharegraph.ReplicaID, x sharegraph.Register) (core.Value, bool) {
	c.nodeMu[r].Lock()
	defer c.nodeMu[r].Unlock()
	if c.rec != nil && c.rec[r].down {
		return 0, false
	}
	return c.nodes[r].Read(x)
}

// deliver handles one message at its destination node and forwards any
// relayed messages. The engine calls it from pool workers; forwards are
// enqueued before the worker decrements its own outstanding count, so the
// counter never reads zero mid-cascade.
func (c *Cluster) deliver(env core.Envelope) {
	b := c.getBatch()
	to := env.To
	c.nodeMu[to].Lock()
	if c.rec != nil {
		rec := &c.rec[to]
		if rec.down {
			// Arrived in the window between the fault layer's down check
			// and delivery; park it (keeping its pooled Meta) until
			// Restart re-forwards it.
			rec.parked = append(rec.parked, env)
			c.nodeMu[to].Unlock()
			c.putBatch(b)
			return
		}
		if rec.logging {
			e := env
			e.Meta = append([]byte(nil), env.Meta...)
			rec.log = append(rec.log, logEntry{env: e})
		}
	}
	applied := c.nodes[to].HandleMessage(env, b)
	if c.tracker != nil {
		for _, a := range applied {
			c.tracker.OnApply(to, a.OracleID)
		}
	}
	c.nodeMu[to].Unlock()
	if c.reg != nil {
		n := len(applied)
		if env.MetaOnly {
			n = obs.MetaOnly // applies nothing by design: not a stall
		}
		c.reg.Deliver(int(env.From), int(to), n)
	}
	// The node has decoded (or rejected) the metadata; recycle the buffer
	// for a future emit.
	c.meta.Put(env.Meta)
	accepted := c.eng.Forward(b.envs...)
	c.recordSent(b.envs[:accepted])
	c.putBatch(b)
}

// Quiesce blocks until no messages are in flight. Updates stuck in pending
// buffers (a liveness failure) do not count as in flight, so Quiesce
// terminates even for broken protocols.
func (c *Cluster) Quiesce() { c.eng.Quiesce() }

// Close rejects further writes, waits for all in-flight deliveries to
// drain, and stops the worker pool. It returns only after every worker
// has exited — no goroutines outlive the cluster.
func (c *Cluster) Close() {
	c.closed.Store(true)
	if c.det != nil {
		c.det.Stop()
	}
	if c.prober != nil {
		c.prober.Stop()
	}
	c.eng.Close()
}

// Outstanding returns the number of in-flight messages: buffered in
// inboxes or currently being delivered. After Close it is zero.
func (c *Cluster) Outstanding() int { return c.eng.Outstanding() }

// PendingTotal sums buffered-but-unapplied updates across replicas.
func (c *Cluster) PendingTotal() int {
	total := 0
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		total += c.nodes[r].PendingCount()
		c.nodeMu[r].Unlock()
	}
	return total
}

// StateSnapshot returns each replica's current register contents: one map
// per replica covering the registers it genuinely stores. Call after
// Quiesce for a stable snapshot.
func (c *Cluster) StateSnapshot() []map[sharegraph.Register]core.Value {
	out := make([]map[sharegraph.Register]core.Value, len(c.nodes))
	for r := range c.nodes {
		c.nodeMu[r].Lock()
		out[r] = nodeState(c.g, c.nodes[r], sharegraph.ReplicaID(r))
		c.nodeMu[r].Unlock()
	}
	return out
}

// MessagesSent returns the number of messages dispatched so far.
func (c *Cluster) MessagesSent() int64 { return c.msgs.Load() }

// MetaBytes returns total metadata bytes dispatched so far.
func (c *Cluster) MetaBytes() int64 { return c.metaBytes.Load() }

// Prober exposes the health prober; nil unless metrics are armed
// (WithMetrics / WithLoadAware). In LoadAware mode it is already
// running; otherwise drive it with Tick or Start as needed.
func (c *Cluster) Prober() *obs.Prober { return c.prober }

// Metrics snapshots the cluster in the unified observability schema.
// The legacy totals (messages, metadata bytes) are always present; the
// per-replica and per-edge breakdowns require WithMetrics or
// WithLoadAware. Safe to call concurrently with a running workload.
func (c *Cluster) Metrics() obs.Snapshot {
	s := c.reg.Snapshot()
	s.Runtime = "cluster"
	s.Messages = c.msgs.Load()
	s.MetaBytes = c.metaBytes.Load()
	s.Outstanding = int64(c.eng.Outstanding())
	if f := c.eng.Faults(); f != nil {
		s.Dropped = int64(f.Dropped())
		s.Duped = int64(f.Duped())
		s.Parked += int64(f.ParkedMessages())
	}
	if len(s.Replicas) == len(c.nodes) {
		for r := range c.nodes {
			c.nodeMu[r].Lock()
			p := int64(c.nodes[r].PendingCount())
			c.nodeMu[r].Unlock()
			s.Replicas[r].Parked = p
			s.Parked += p
		}
	} else {
		s.Parked += int64(c.PendingTotal())
	}
	return s
}

// RunScript executes a workload concurrently: one driver goroutine per
// replica issues that replica's operations in script order (blocking
// under inbox backpressure), then the cluster quiesces. Returns the
// oracle verdicts (including liveness); nil on an unaudited cluster.
func (c *Cluster) RunScript(script workload.Script) []causality.Violation {
	n := c.g.NumReplicas()
	queues := make([][]workload.Op, n)
	for _, op := range script {
		queues[op.Replica] = append(queues[op.Replica], op)
	}
	var wg sync.WaitGroup
	var val atomic.Int64
	for r := 0; r < n; r++ {
		if len(queues[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, op := range queues[r] {
				if op.IsRead {
					c.Read(sharegraph.ReplicaID(r), op.Reg)
					continue
				}
				v := core.Value(op.Val)
				if v == 0 {
					v = core.Value(val.Add(1))
				}
				// Errors can only be NotStoredError from a malformed
				// script; generators never produce those.
				_ = c.Write(sharegraph.ReplicaID(r), op.Reg, v)
			}
		}(r)
	}
	wg.Wait()
	c.Quiesce()
	if c.tracker == nil {
		return nil
	}
	c.tracker.CheckLiveness()
	return c.tracker.Violations()
}
