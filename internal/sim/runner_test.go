package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// corpus returns the share-graph test corpus used across correctness
// sweeps: the paper's worked examples plus the parametric families.
func corpus() map[string]*sharegraph.Graph {
	hm1, _ := sharegraph.HelaryMilani1()
	hm2, _ := sharegraph.HelaryMilani2()
	return map[string]*sharegraph.Graph{
		"fig3":     sharegraph.Fig3Example(),
		"fig5":     sharegraph.Fig5Example(),
		"hm1":      hm1,
		"hm2":      hm2,
		"ring4":    sharegraph.Ring(4),
		"ring6":    sharegraph.Ring(6),
		"line5":    sharegraph.Line(5),
		"star5":    sharegraph.Star(5),
		"clique5":  sharegraph.PairClique(5),
		"grid2x3":  sharegraph.Grid(2, 3),
		"fullrep4": sharegraph.FullReplication(4, 2),
		"randk2":   sharegraph.RandomK(6, 12, 2, 11),
		"randk3":   sharegraph.RandomK(6, 12, 3, 12),
	}
}

func edgeIndexed(t testing.TB, g *sharegraph.Graph) core.Protocol {
	t.Helper()
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEdgeIndexedCausalConsistencySweep is experiment E6: the paper's
// algorithm must be safe and live (Theorem 24) on every topology, under
// benign, random and adversarial schedules — with zero false dependencies
// (its predicate blocks only on true causal predecessors).
func TestEdgeIndexedCausalConsistencySweep(t *testing.T) {
	for name, g := range corpus() {
		script, err := workload.Generate(g, workload.Options{Ops: 150, ReadFraction: 0.2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		scheds := []transport.Scheduler{
			transport.FIFOScheduler{},
			transport.LIFOScheduler{},
			transport.NewRandom(1),
			transport.NewRandom(2),
			transport.NewRandom(3),
		}
		for _, sched := range scheds {
			res, err := Run(Config{
				Graph: g, Protocol: edgeIndexed(t, g), Script: script,
				Sched: sched, TrackFalseDeps: true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, sched.Name(), err)
			}
			if !res.Ok() {
				t.Errorf("%s/%s: %s\nviolations: %v", name, sched.Name(), res.Summary(), res.Violations)
			}
			if res.FalseDepUpdates != 0 {
				t.Errorf("%s/%s: edge-indexed should induce no false dependencies, got %d",
					name, sched.Name(), res.FalseDepUpdates)
			}
			if res.Applies == 0 && res.Writes > 0 && g.NumUndirectedEdges() > 0 {
				t.Errorf("%s/%s: no updates applied (writes=%d)", name, sched.Name(), res.Writes)
			}
		}
	}
}

// TestMatrixCausalConsistencySweep: the R×R matrix baseline is also safe
// and live, with zero false dependencies, at quadratic metadata cost.
func TestMatrixCausalConsistencySweep(t *testing.T) {
	for name, g := range corpus() {
		script := workload.SharedOnly(g, 120, 3)
		for _, sched := range []transport.Scheduler{transport.LIFOScheduler{}, transport.NewRandom(5)} {
			res, err := Run(Config{
				Graph: g, Protocol: baseline.NewMatrix(g), Script: script,
				Sched: sched, TrackFalseDeps: true,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Ok() {
				t.Errorf("%s/%s: matrix violated consistency: %v", name, sched.Name(), res.Violations)
			}
			if res.FalseDepUpdates != 0 {
				t.Errorf("%s/%s: matrix should induce no false dependencies, got %d",
					name, sched.Name(), res.FalseDepUpdates)
			}
		}
	}
}

// TestBroadcastCausalConsistencySweep: the dummy-register emulation is
// safe and live; unlike edge-indexed and matrix it may delay updates on
// false dependencies, and it sends extra metadata-only messages.
func TestBroadcastCausalConsistencySweep(t *testing.T) {
	sawMetaOnly := false
	for name, g := range corpus() {
		script := workload.SharedOnly(g, 120, 4)
		res, err := Run(Config{
			Graph: g, Protocol: baseline.NewBroadcast(g), Script: script,
			Sched: transport.NewRandom(9), TrackFalseDeps: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Ok() {
			t.Errorf("%s: broadcast violated consistency: %v", name, res.Violations)
		}
		if res.MetaOnlyMessages > 0 {
			sawMetaOnly = true
		}
	}
	if !sawMetaOnly {
		t.Error("broadcast emulation never sent a metadata-only message")
	}
}

// TestFIFOOnlyViolatesSafety is the executable core of Theorem 8: a
// protocol oblivious to everything but per-channel order must violate
// safety once a dependency propagates through a third replica. We sweep
// random schedules on a triangle until the oracle catches it.
func TestFIFOOnlyViolatesSafety(t *testing.T) {
	g := sharegraph.FullReplication(3, 1) // all replicas share register r0
	script := workload.SharedOnly(g, 30, 2)
	sawSafety := false
	for seed := int64(0); seed < 40 && !sawSafety; seed++ {
		res, err := Run(Config{
			Graph: g, Protocol: baseline.NewFIFOOnly(g), Script: script,
			Sched: transport.NewRandom(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			if v.Kind == causality.SafetyViolation {
				sawSafety = true
			}
		}
	}
	if !sawSafety {
		t.Error("fifo-only never violated safety across 40 random schedules; expected Theorem 8 failure")
	}
}

// TestNaiveVectorLivenessFailure: classic length-R vectors without
// metadata broadcast block forever when a dependency was never sent to
// the waiting replica — safety holds, liveness does not (the reason the
// full-replication recipe does not transfer to partial replication).
func TestNaiveVectorLivenessFailure(t *testing.T) {
	g := sharegraph.Fig3Example() // path 0–1–2–3
	// Stage precisely: 0 writes x; its update reaches 1; 1 writes y; the
	// y-update reaches 2, which now waits for an x-update that will never
	// come (2 does not store x).
	script := workload.Script{
		{Replica: 0, Reg: "x"},
		{Replica: 1, Reg: "y"},
	}
	// Choice indices: step1 picks op@0 (index 0); step2 delivers the x
	// update to 1 (after ops, pool has [x→1]; ops list = [op@1], so index
	// 1); step3 picks op@1 (index 0); then FIFO drains the rest.
	sched := transport.NewScripted(0, 1, 0)
	res, err := Run(Config{
		Graph: g, Protocol: baseline.NewNaiveVector(g), Script: script,
		Sched: sched, TrackFalseDeps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StuckPending == 0 {
		t.Fatalf("expected naive-vector to strand the y-update at replica 2: %s", res.Summary())
	}
	sawLiveness := false
	for _, v := range res.Violations {
		if v.Kind == causality.LivenessViolation {
			sawLiveness = true
		}
		if v.Kind == causality.SafetyViolation {
			t.Errorf("naive-vector should never violate safety, got %v", v)
		}
	}
	if !sawLiveness {
		t.Errorf("expected a liveness violation: %v", res.Violations)
	}
	if res.FalseDepUpdates == 0 {
		t.Error("the stranded update is a false dependency; none recorded")
	}
	// The same staging under the paper's algorithm is perfectly fine.
	res2, err := Run(Config{
		Graph: g, Protocol: edgeIndexed(t, g), Script: script,
		Sched: transport.NewScripted(0, 1, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Ok() {
		t.Errorf("edge-indexed failed the staged schedule: %v", res2.Violations)
	}
}

// TestEdgeIndexedQuickProperty is the flagship property test: on random
// placements, random workloads and random schedules, the paper's
// algorithm never violates safety or liveness.
func TestEdgeIndexedQuickProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed)
		script, err := workload.Generate(g, workload.Options{Ops: 80, Seed: seed ^ 0x5a5a})
		if err != nil {
			return false
		}
		p, err := core.NewEdgeIndexed(g)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Graph: g, Protocol: p, Script: script,
			Sched: transport.NewRandom(seed ^ 0xa5a5), TrackFalseDeps: true,
		})
		if err != nil {
			return false
		}
		if !res.Ok() || res.FalseDepUpdates != 0 {
			t.Logf("seed %d: %s\nviolations: %v\n%s", seed, res.Summary(), res.Violations, g)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomGraph derives a small random placement from a seed (2–6 replicas,
// up to 10 registers, random holder sets).
func randomGraph(seed int64) *sharegraph.Graph {
	rng := transport.NewRandom(seed)
	n := 2 + rng.Pick(5)
	nRegs := 1 + rng.Pick(10)
	stores := make([][]sharegraph.Register, n)
	for r := 0; r < nRegs; r++ {
		reg := sharegraph.Register(rune('a' + r))
		placed := false
		for i := 0; i < n; i++ {
			if rng.Pick(3) == 0 {
				stores[i] = append(stores[i], reg)
				placed = true
			}
		}
		if !placed {
			stores[rng.Pick(n)] = append(stores[rng.Pick(n)], reg)
		}
	}
	for i := range stores {
		if len(stores[i]) == 0 {
			stores[i] = []sharegraph.Register{sharegraph.Register(rune('A' + i))}
		}
	}
	g, err := sharegraph.New(stores)
	if err != nil {
		panic(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := sharegraph.Fig3Example()
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	p := edgeIndexed(t, g)
	if _, err := Run(Config{
		Graph: g, Protocol: p,
		Script: workload.Script{{Replica: 99, Reg: "x"}},
		Sched:  transport.FIFOScheduler{},
	}); err == nil {
		t.Error("script with invalid replica accepted")
	}
	if _, err := Run(Config{
		Graph: g, Protocol: p,
		Script: workload.Script{{Replica: 3, Reg: "x"}}, // 3 does not store x
		Sched:  transport.FIFOScheduler{},
	}); err == nil {
		t.Error("write to unstored register accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{MessagesSent: 4, MetaBytes: 40, MetadataEntriesPerReplica: []int{2, 3}}
	if r.AvgMetaBytes() != 10 {
		t.Errorf("AvgMetaBytes = %v", r.AvgMetaBytes())
	}
	if r.TotalMetadataEntries() != 5 {
		t.Errorf("TotalMetadataEntries = %v", r.TotalMetadataEntries())
	}
	if (&Result{}).AvgMetaBytes() != 0 {
		t.Error("AvgMetaBytes on empty result should be 0")
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func BenchmarkRunEdgeIndexedRing6(b *testing.B) {
	g := sharegraph.Ring(6)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		b.Fatal(err)
	}
	script := workload.Uniform(g, 200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := Run(Config{Graph: g, Protocol: p, Script: script, Sched: transport.NewRandom(int64(n))})
		if err != nil || !res.Ok() {
			b.Fatalf("run failed: %v %v", err, res.Violations)
		}
	}
}

func BenchmarkRunMatrixRing6(b *testing.B) {
	g := sharegraph.Ring(6)
	script := workload.Uniform(g, 200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := Run(Config{Graph: g, Protocol: baseline.NewMatrix(g), Script: script, Sched: transport.NewRandom(int64(n))})
		if err != nil || !res.Ok() {
			b.Fatalf("run failed: %v %v", err, res.Violations)
		}
	}
}
