package sim

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
)

// harness direct-drives protocol nodes with full control over delivery
// order — the executable analogue of the hand-constructed executions in
// the proof of Theorem 8.
type harness struct {
	t       *testing.T
	g       *sharegraph.Graph
	nodes   []core.Node
	tracker *causality.Tracker
	nextVal core.Value
}

func newHarness(t *testing.T, g *sharegraph.Graph, p core.Protocol) *harness {
	t.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, g: g, nodes: nodes, tracker: causality.NewTracker(g), nextVal: 1}
}

// write performs a client write and returns the update messages.
func (h *harness) write(r sharegraph.ReplicaID, x sharegraph.Register) []core.Envelope {
	h.t.Helper()
	id := h.tracker.OnIssue(r, x)
	envs, err := core.CollectWrite(h.nodes[r], x, h.nextVal, id)
	if err != nil {
		h.t.Fatalf("write %q at %d: %v", x, r, err)
	}
	h.nextVal++
	return envs
}

// deliver hands one envelope to its destination and reports applies to
// the oracle.
func (h *harness) deliver(env core.Envelope) {
	applied, fwd := core.CollectMessage(h.nodes[env.To], env)
	for _, a := range applied {
		h.tracker.OnApply(env.To, a.OracleID)
	}
	for _, f := range fwd {
		h.deliver(f)
	}
}

// deliverTo delivers the (unique) message destined for replica to from the
// batch, failing if absent.
func (h *harness) deliverTo(envs []core.Envelope, to sharegraph.ReplicaID) {
	h.t.Helper()
	for _, e := range envs {
		if e.To == to {
			h.deliver(e)
			return
		}
	}
	h.t.Fatalf("no message destined for replica %d in batch", to)
}

// weakenedGraphs returns Definition 5 timestamp graphs with `drop` removed
// from replica owner's edge set.
func weakenedGraphs(g *sharegraph.Graph, owner sharegraph.ReplicaID, drop sharegraph.Edge) []*sharegraph.TSGraph {
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	var kept []sharegraph.Edge
	for _, e := range graphs[owner].Edges() {
		if e != drop {
			kept = append(kept, e)
		}
	}
	graphs[owner] = sharegraph.NewTSGraphFromEdges(owner, kept)
	return graphs
}

// TestLoopEdgeNecessity is the Case 3 execution of Theorem 8's proof,
// staged on the Figure 5 example: replica 0 (the paper's replica 1) must
// track the non-incident edge e43 (our e(3→2)). With the full timestamp
// graph the dependent update blocks at replica 2 until its transitive
// dependency arrives; with e(3→2) dropped from G_0, replica 2 applies it
// early and the oracle reports a safety violation.
func TestLoopEdgeNecessity(t *testing.T) {
	g := sharegraph.Fig5Example()
	dropped := sharegraph.Edge{From: 3, To: 2}

	// Preconditions of the staged execution (verified, not assumed):
	// e(3→2) is tracked by replicas 0, 1 and 2 under Definition 5.
	full := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	for _, r := range []sharegraph.ReplicaID{0, 1, 2} {
		if !full[r].Has(dropped) {
			t.Fatalf("precondition: e(3->2) should be in E_%d", r)
		}
	}

	run := func(p core.Protocol) *harness {
		h := newHarness(t, g, p)
		// u0: replica 3 writes z (z ∈ X23, sent to replica 2 only) — the
		// update whose knowledge must survive the chain.
		u0 := h.write(3, "z")
		// u1: replica 3 writes w (w ∈ X03, sent to replica 0): u0 ↪ u1.
		u1 := h.write(3, "w")
		h.deliverTo(u1, 0)
		// uy: replica 0 writes y (sent to 1 and 3): u1 ↪ uy.
		uy := h.write(0, "y")
		h.deliverTo(uy, 1)
		// ux: replica 1 writes x (x ∈ X12, sent to replica 2): uy ↪ ux,
		// hence u0 ↪ ux transitively — and z is stored at replica 2.
		ux := h.write(1, "x")
		// Adversarial asynchrony: ux reaches 2 before u0 does.
		h.deliverTo(ux, 2)
		h.deliverTo(u0, 2)
		return h
	}

	// Full Definition 5 graphs: safe (ux buffered until u0 applied).
	pFull, err := core.NewEdgeIndexedWithGraphs(g, full, "edge-indexed")
	if err != nil {
		t.Fatal(err)
	}
	h := run(pFull)
	if !h.tracker.Ok() {
		t.Errorf("full timestamp graphs violated safety: %v", h.tracker.Violations())
	}
	if n := h.nodes[2].PendingCount(); n != 0 {
		t.Errorf("full graphs left %d updates pending at replica 2", n)
	}

	// Weakened G_0 (e(3→2) dropped): the chain loses the z-counter and
	// replica 2 applies ux before u0 — exactly the Theorem 8 violation.
	pWeak, err := core.NewEdgeIndexedWithGraphs(g, weakenedGraphs(g, 0, dropped), "edge-indexed-weakened")
	if err != nil {
		t.Fatal(err)
	}
	h = run(pWeak)
	sawSafety := false
	for _, v := range h.tracker.Violations() {
		if v.Kind == causality.SafetyViolation && v.Replica == 2 {
			sawSafety = true
		}
	}
	if !sawSafety {
		t.Errorf("dropping e(3->2) from G_0 did not produce the Theorem 8 safety violation: %v",
			h.tracker.Violations())
	}
}

// TestIncomingEdgeNecessity is Theorem 8 Case 2: a replica oblivious to an
// incoming incident edge cannot order that neighbour's updates; in this
// implementation the delivery plan degenerates and updates stall forever
// (liveness failure).
func TestIncomingEdgeNecessity(t *testing.T) {
	g := sharegraph.Fig3Example()
	p, err := core.NewEdgeIndexedWithGraphs(g, weakenedGraphs(g, 0, sharegraph.Edge{From: 1, To: 0}), "weakened")
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, g, p)
	envs := h.write(1, "x") // x ∈ X01: sent to replica 0
	h.deliverTo(envs, 0)
	if h.nodes[0].PendingCount() == 0 {
		t.Fatal("update applied despite replica 0 lacking the e(1->0) counter")
	}
	if vs := h.tracker.CheckLiveness(); len(vs) == 0 {
		t.Error("expected a liveness violation")
	}
}

// TestOutgoingEdgeNecessity is Theorem 8 Case 1: a replica oblivious to an
// outgoing incident edge attaches indistinguishable timestamps to
// successive updates on that edge; the receiver cannot order them and, in
// this implementation, stalls.
func TestOutgoingEdgeNecessity(t *testing.T) {
	g := sharegraph.Fig3Example()
	p, err := core.NewEdgeIndexedWithGraphs(g, weakenedGraphs(g, 0, sharegraph.Edge{From: 0, To: 1}), "weakened")
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, g, p)
	u1 := h.write(0, "x")
	u2 := h.write(0, "x")
	// Non-FIFO channel: second write arrives first.
	h.deliverTo(u2, 1)
	h.deliverTo(u1, 1)
	if h.nodes[1].PendingCount() == 0 && h.tracker.Ok() {
		t.Fatal("receiver ordered updates correctly despite the sender being oblivious to e(0->1)")
	}
}
