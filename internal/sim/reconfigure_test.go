package sim

import (
	"testing"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/optimize"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/wire"
	"repro/internal/workload"
)

// searchProtocol runs the placement search on g and builds the relay
// protocol for the winner, failing the test if the search found nothing
// to improve (the differential below would then be vacuous).
func searchProtocol(t *testing.T, g *sharegraph.Graph, seed int64) *optimize.PlacementProtocol {
	t.Helper()
	res, err := optimize.Search(g, optimize.SearchOptions{Seed: seed})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if res.Entries >= res.BaseEntries {
		t.Fatalf("search found no improvement on %d base entries", res.BaseEntries)
	}
	pp, err := res.Placement.Protocol("optimized")
	if err != nil {
		t.Fatalf("placement protocol: %v", err)
	}
	return pp
}

// runSplit executes the script's first half, optionally reconfigures,
// executes the second half, and returns the canonical final state.
// OwnerWrites gives every register a single writer, so the final state
// is schedule-independent and byte-comparable across runs.
func runSplit(t *testing.T, g *sharegraph.Graph, p, reconf core.Protocol, script workload.Script, opts ...ClusterOption) string {
	t.Helper()
	c, err := NewCluster(g, p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	half := len(script) / 2
	var violations []causality.Violation
	violations = append(violations, c.RunScript(script[:half])...)
	if reconf != nil {
		if err := c.Reconfigure(reconf); err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
	}
	violations = append(violations, c.RunScript(script[half:])...)
	for _, v := range violations {
		t.Errorf("violation: %v", v)
	}
	return wire.FormatSnapshots(c.StateSnapshot())
}

// TestReconfigureDifferential is the tentpole acceptance check in its
// plain form: a cluster that switches onto the search's optimized
// placement mid-run must end violation-free with final state byte-equal
// to an unreconfigured run of the same script.
func TestReconfigureDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"ring8", sharegraph.Ring(8)},
		{"randomk", sharegraph.RandomK(12, 30, 3, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := core.NewEdgeIndexed(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			pp := searchProtocol(t, tc.g, 1)
			script := workload.OwnerWrites(tc.g, 400, 11)

			reconfigured := runSplit(t, tc.g, p, pp, script, WithSeed(3))
			p2, err := core.NewEdgeIndexed(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			straight := runSplit(t, tc.g, p2, nil, script, WithSeed(3))
			if reconfigured != straight {
				t.Errorf("final state diverged after reconfiguration:\n-- reconfigured --\n%s\n-- straight --\n%s",
					reconfigured, straight)
			}
		})
	}
}

// TestReconfigureMetadataShrinks pins the point of the exercise: after
// the switch the live nodes track strictly fewer timestamp entries.
func TestReconfigureMetadataShrinks(t *testing.T) {
	g := sharegraph.Ring(8)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	script := workload.OwnerWrites(g, 200, 5)
	c.RunScript(script[:100])
	before := 0
	for r := range c.nodes {
		before += c.nodes[r].MetadataEntries()
	}
	if err := c.Reconfigure(searchProtocol(t, g, 1)); err != nil {
		t.Fatal(err)
	}
	c.RunScript(script[100:])
	after := 0
	for r := range c.nodes {
		after += c.nodes[r].MetadataEntries()
	}
	if after >= before {
		t.Errorf("tracked entries did not shrink: %d -> %d", before, after)
	}
}

// TestReconfigureChaosDifferential runs the same differential with the
// epoch fence dropped into the middle of a chaos run: ambient
// loss/duplication, a partition, and a crash/restart all before the
// switch. Zero violations and byte-equal final state remain the bar.
func TestReconfigureChaosDifferential(t *testing.T) {
	g := sharegraph.Ring(8)
	script := workload.OwnerWrites(g, 360, 13)
	plan := rt.FaultPlan{Seed: 5, Default: rt.EdgeFault{Drop: 0.05, Dup: 0.05}}

	run := func(reconf core.Protocol) string {
		p, err := core.NewEdgeIndexed(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunChaos(ChaosConfig{
			Graph: g, Protocol: p, Script: script, Plan: plan,
			Partition: true, PartitionA: 1, PartitionB: 2,
			Crash: true, CrashReplica: 4,
			Reconfigure: reconf,
			Opts:        []ClusterOption{WithSeed(9)},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %v", v)
		}
		return wire.FormatSnapshots(res.FinalState)
	}

	reconfigured := run(searchProtocol(t, g, 1))
	straight := run(nil)
	if reconfigured != straight {
		t.Errorf("chaos final state diverged after reconfiguration:\n-- reconfigured --\n%s\n-- straight --\n%s",
			reconfigured, straight)
	}
}

// TestReconfigureRejectsDown: the fence must refuse to switch epochs
// while a replica is crashed (its state would be lost).
func TestReconfigureRejectsDown(t *testing.T) {
	g := sharegraph.Ring(6)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(g, p, WithChaos(rt.FaultPlan{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(searchProtocol(t, g, 1)); err == nil {
		t.Error("Reconfigure succeeded with replica 2 down")
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(searchProtocol(t, g, 1)); err != nil {
		t.Errorf("Reconfigure failed after restart: %v", err)
	}
}

// TestRingBreakChaosSoak soaks the Figure 13 relay protocol under the
// ambient fault lottery plus a partition across the relay path — the
// coverage the fault layer previously never exercised.
func TestRingBreakChaosSoak(t *testing.T) {
	n := 8
	p, err := optimize.BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Base()
	script := workload.OwnerWrites(g, 400, 17)
	res, err := RunChaos(ChaosConfig{
		Graph: g, Protocol: p, Script: script,
		Plan:      rt.FaultPlan{Seed: 3, Default: rt.EdgeFault{Drop: 0.08, Dup: 0.08}},
		Partition: true, PartitionA: 3, PartitionB: 4,
		Opts: []ClusterOption{WithSeed(21)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.PendingTotal != 0 {
		t.Errorf("%d updates stuck pending after heal+quiesce", res.PendingTotal)
	}

	// Differential: the chaos run's final state must match a fault-free
	// run of the same single-writer script.
	p2, err := optimize.BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	clean := runSplit(t, g, p2, nil, script, WithSeed(21))
	if got := wire.FormatSnapshots(res.FinalState); got != clean {
		t.Errorf("chaos run diverged from fault-free run:\n-- chaos --\n%s\n-- clean --\n%s", got, clean)
	}
}

// TestRingBreakCrashRestart crashes a relay-interior replica mid-run and
// checks checkpoint/log-replay recovery through the relay path.
func TestRingBreakCrashRestart(t *testing.T) {
	n := 8
	p, err := optimize.BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Base()
	script := workload.OwnerWrites(g, 400, 19)
	res, err := RunChaos(ChaosConfig{
		Graph: g, Protocol: p, Script: script,
		Plan:  rt.FaultPlan{Seed: 7, Default: rt.EdgeFault{Dup: 0.05}},
		Crash: true, CrashReplica: 4, // interior relay hop
		Opts: []ClusterOption{WithSeed(29)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	p2, err := optimize.BreakRing(n)
	if err != nil {
		t.Fatal(err)
	}
	clean := runSplit(t, g, p2, nil, script, WithSeed(29))
	if got := wire.FormatSnapshots(res.FinalState); got != clean {
		t.Errorf("crash/restart run diverged from fault-free run:\n-- chaos --\n%s\n-- clean --\n%s", got, clean)
	}
}
