package timestamp

// Tests for the zero-allocation operation variants: the in-place advance
// and merge must agree bit-for-bit with their copying counterparts, and
// the append-style codec must round-trip through reused buffers.

import (
	"math/rand"
	"testing"

	"repro/internal/sharegraph"
)

func TestAdvanceInPlaceMatchesAdvance(t *testing.T) {
	for _, g := range []*sharegraph.Graph{
		sharegraph.Fig5Example(), sharegraph.Ring(8), sharegraph.Grid(3, 3),
	} {
		s := newSpace(t, g)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < g.NumReplicas(); i++ {
			ri := sharegraph.ReplicaID(i)
			τ := randomVec(rng, s.Len(ri))
			for x := range g.Stores(ri) {
				want := s.Advance(ri, τ, x)
				got := τ.Clone()
				s.AdvanceInPlace(ri, got, x)
				if !got.Equal(want) {
					t.Errorf("replica %d write %q: AdvanceInPlace = %v, Advance = %v", i, x, got, want)
				}
			}
		}
	}
}

func TestMergeInPlaceMatchesMerge(t *testing.T) {
	for _, g := range []*sharegraph.Graph{
		sharegraph.Fig5Example(), sharegraph.Ring(8), sharegraph.Grid(3, 3),
	} {
		s := newSpace(t, g)
		rng := rand.New(rand.NewSource(6))
		n := g.NumReplicas()
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				ri, rk := sharegraph.ReplicaID(i), sharegraph.ReplicaID(k)
				τ := randomVec(rng, s.Len(ri))
				T := randomVec(rng, s.Len(rk))
				want := s.Merge(ri, τ, rk, T)
				got := τ.Clone()
				s.MergeInPlace(ri, got, rk, T)
				if !got.Equal(want) {
					t.Errorf("merge(%d ← %d): MergeInPlace = %v, Merge = %v", i, k, got, want)
				}
			}
		}
	}
}

func TestEncodeToAppendsAndReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := randomVec(rng, 17)
	want := Encode(v)

	// Appending after a prefix leaves the prefix intact.
	buf := []byte{0xAA, 0xBB}
	out := EncodeTo(buf, v)
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("EncodeTo clobbered the prefix")
	}
	if string(out[2:]) != string(want) {
		t.Fatalf("EncodeTo = %x, want %x", out[2:], want)
	}

	// Reusing a sized buffer must not allocate.
	scratch := make([]byte, 0, EncodedSize(v))
	allocs := testing.AllocsPerRun(100, func() {
		scratch = EncodeTo(scratch[:0], v)
	})
	if allocs != 0 {
		t.Errorf("EncodeTo with sized buffer allocates %v times", allocs)
	}
}

func TestDecodeIntoReusesCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := randomVec(rng, 23)
	enc := Encode(v)

	buf := make(Vec, 0, 64)
	got, err := DecodeInto(buf, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("DecodeInto = %v, want %v", got, v)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("DecodeInto did not reuse the supplied storage")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeInto(buf, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeInto with capacity allocates %v times", allocs)
	}

	// Undersized buffers grow transparently.
	small := make(Vec, 0, 2)
	got, err = DecodeInto(small, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("grown DecodeInto = %v, want %v", got, v)
	}
}

func TestSeqGateRecheckConsistency(t *testing.T) {
	// SeqPos/GatePos must name the same edge e_{ki} in the two orders, and
	// every sender must appear first in its own recheck list.
	for _, g := range []*sharegraph.Graph{
		sharegraph.Fig5Example(), sharegraph.Ring(8),
	} {
		s := newSpace(t, g)
		n := g.NumReplicas()
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				ri, rk := sharegraph.ReplicaID(i), sharegraph.ReplicaID(k)
				sp, okS := s.SeqPos(ri, rk)
				gp, okG := s.GatePos(ri, rk)
				if okS != okG {
					t.Fatalf("(%d←%d): SeqPos ok=%v but GatePos ok=%v", i, k, okS, okG)
				}
				if !okS {
					continue
				}
				eki := sharegraph.Edge{From: rk, To: ri}
				if idx, ok := s.Graph(rk).Index(eki); !ok || idx != sp {
					t.Errorf("(%d←%d): SeqPos = %d, sender order has e_ki at %d (ok=%v)", i, k, sp, idx, ok)
				}
				if idx, ok := s.Graph(ri).Index(eki); !ok || idx != gp {
					t.Errorf("(%d←%d): GatePos = %d, receiver order has e_ki at %d (ok=%v)", i, k, gp, idx, ok)
				}
				rl := s.RecheckOnApply(ri, rk)
				if len(rl) == 0 || rl[0] != rk {
					t.Errorf("(%d←%d): recheck list %v does not start with the sender", i, k, rl)
				}
			}
		}
	}
}
