package timestamp

// FuzzDecode drives the wire-format parser with arbitrary bytes: it must
// never panic, and whenever it accepts an input, re-encoding the parsed
// vector must produce bytes that decode to the same vector (varints are
// not canonical, so the bytes themselves may differ). DecodeInto with a
// dirty reused buffer must agree with the allocating path on both the
// verdict and the value.

import (
	"bytes"
	"testing"
)

func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(Encode(Vec{}))
	f.Add(Encode(Vec{0, 1, 2, 3}))
	f.Add(Encode(Vec{1 << 40, 7, 1<<64 - 1}))
	f.Add([]byte{0xff})                   // truncated length varint
	f.Add([]byte{0x05, 0x01})             // length overruns data
	f.Add([]byte{0x01, 0x80})             // truncated element varint
	f.Add([]byte{0x01, 0x01, 0x01})       // trailing bytes
	f.Add([]byte{0x80, 0x01, 0x01, 0x01}) // non-minimal length varint
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		dirty := make(Vec, 3, 64)
		dirty[0], dirty[1], dirty[2] = 99, 98, 97
		v2, err2 := DecodeInto(dirty, data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if !v.Equal(v2) {
			t.Fatalf("Decode = %v but DecodeInto = %v", v, v2)
		}
		re := Encode(v)
		if len(re) != EncodedSize(v) {
			t.Fatalf("EncodedSize = %d, Encode produced %d bytes", EncodedSize(v), len(re))
		}
		rv, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of %x failed: %v", re, err)
		}
		if !rv.Equal(v) {
			t.Fatalf("round trip %v → %x → %v", v, re, rv)
		}
		// Canonical inputs round-trip bit-for-bit.
		if bytes.Equal(re, data) {
			return
		}
	})
}
