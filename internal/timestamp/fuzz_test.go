package timestamp

// FuzzDecode drives the wire-format parser with arbitrary bytes: it must
// never panic, and whenever it accepts an input, re-encoding the parsed
// vector must produce bytes that decode to the same vector (varints are
// not canonical, so the bytes themselves may differ). DecodeInto with a
// dirty reused buffer must agree with the allocating path on both the
// verdict and the value.

import (
	"bytes"
	"testing"
)

func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(Encode(Vec{}))
	f.Add(Encode(Vec{0, 1, 2, 3}))
	f.Add(Encode(Vec{1 << 40, 7, 1<<64 - 1}))
	f.Add([]byte{0xff})                   // truncated length varint
	f.Add([]byte{0x05, 0x01})             // length overruns data
	f.Add([]byte{0x01, 0x80})             // truncated element varint
	f.Add([]byte{0x01, 0x01, 0x01})       // trailing bytes
	f.Add([]byte{0x80, 0x01, 0x01, 0x01}) // non-minimal length varint
	// Adversarial-length corpus: declared counts that overrun what the
	// payload can hold (the decoder must reject them before allocating)
	// and frames truncated mid-stream.
	f.Add(append([]byte{0x80, 0x01}, make([]byte, 126)...))                   // 128 declared, 126 payload bytes
	f.Add(append([]byte{0x80, 0x01}, bytes.Repeat([]byte{0x01}, 128)...))     // exactly fits
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // 2^63 declared, empty payload
	f.Add(Encode(Vec{1 << 40, 7, 9, 1<<64 - 1})[:5])                          // truncated mid-element
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		dirty := make(Vec, 3, 64)
		dirty[0], dirty[1], dirty[2] = 99, 98, 97
		v2, err2 := DecodeInto(dirty, data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if !v.Equal(v2) {
			t.Fatalf("Decode = %v but DecodeInto = %v", v, v2)
		}
		re := Encode(v)
		if len(re) != EncodedSize(v) {
			t.Fatalf("EncodedSize = %d, Encode produced %d bytes", EncodedSize(v), len(re))
		}
		rv, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of %x failed: %v", re, err)
		}
		if !rv.Equal(v) {
			t.Fatalf("round trip %v → %x → %v", v, re, rv)
		}
		// Canonical inputs round-trip bit-for-bit.
		if bytes.Equal(re, data) {
			return
		}
	})
}

// TestDecodeClampsDeclaredLength pins the hardened bound: the declared
// element count is clamped against the bytes remaining AFTER the length
// prefix, so a count the payload cannot possibly hold is rejected before
// any allocation (previously a multi-byte prefix let counts up to the
// whole input length through to a doomed-but-allocating parse).
func TestDecodeClampsDeclaredLength(t *testing.T) {
	cases := [][]byte{
		append([]byte{0x80, 0x01}, make([]byte, 126)...), // 128 declared, 126 present
		{0x03, 0x01, 0x01}, // 3 declared, 2 present
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // 2^63 declared
	}
	for _, data := range cases {
		if v, err := Decode(data); err == nil {
			t.Errorf("Decode(%x) accepted as %v", data, v)
		}
	}
	// The bound is exact: a count that just fits still decodes.
	ok := append([]byte{0x80, 0x01}, bytes.Repeat([]byte{0x01}, 128)...)
	v, err := Decode(ok)
	if err != nil || len(v) != 128 {
		t.Fatalf("Decode(128 ones) = %d elems, %v", len(v), err)
	}
}
