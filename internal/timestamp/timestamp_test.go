package timestamp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sharegraph"
)

func newSpace(t testing.TB, g *sharegraph.Graph) *Space {
	t.Helper()
	s, err := NewSpace(g, sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	g := sharegraph.Fig3Example()
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	if _, err := NewSpace(g, graphs[:2]); err == nil {
		t.Error("short graph slice accepted")
	}
	swapped := append([]*sharegraph.TSGraph(nil), graphs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := NewSpace(g, swapped); err == nil {
		t.Error("misowned graphs accepted")
	}
}

func TestAdvanceIncrementsSharers(t *testing.T) {
	g := sharegraph.Fig3Example() // path: 0–1 share x, 1–2 share y, 2–3 share z
	s := newSpace(t, g)

	τ := s.Zero(1)
	// Replica 1 writes x, shared only with replica 0: exactly e(1→0) bumps.
	τ2 := s.Advance(1, τ, "x")
	g1 := s.Graph(1)
	idx10, _ := g1.Index(sharegraph.Edge{From: 1, To: 0})
	idx12, _ := g1.Index(sharegraph.Edge{From: 1, To: 2})
	if τ2[idx10] != 1 {
		t.Errorf("e(1->0) counter = %d, want 1", τ2[idx10])
	}
	if τ2[idx12] != 0 {
		t.Errorf("e(1->2) counter = %d, want 0", τ2[idx12])
	}
	// Original must be untouched (value semantics at the API boundary).
	if !τ.Equal(s.Zero(1)) {
		t.Error("Advance mutated its input")
	}
	// Writing a register not shared with anyone changes nothing.
	τ3 := s.Advance(1, τ, "nonexistent")
	if !τ3.Equal(τ) {
		t.Error("Advance on unshared register changed the vector")
	}
}

func TestMergeMaxOverIntersection(t *testing.T) {
	g := sharegraph.Fig5Example()
	s := newSpace(t, g)
	τ0 := s.Zero(0)
	τ1 := s.Zero(1)
	// Bump a few counters on replica 1's vector.
	τ1 = s.Advance(1, τ1, "y") // edges 1→0 and 1→3 (y shared with 0 and 3)
	merged := s.Merge(0, τ0, 1, τ1)
	g0 := s.Graph(0)
	idx10, _ := g0.Index(sharegraph.Edge{From: 1, To: 0})
	if merged[idx10] != 1 {
		t.Errorf("merged e(1->0) = %d, want 1", merged[idx10])
	}
	// Merge must not lower anything: merging zero in changes nothing.
	again := s.Merge(0, merged, 1, s.Zero(1))
	if !again.Equal(merged) {
		t.Error("merging a zero vector lowered counters")
	}
}

func TestDeliverableFIFOPerEdge(t *testing.T) {
	g := sharegraph.Fig3Example()
	s := newSpace(t, g)
	// Replica 0 writes x twice; the two updates carry counters 1 and 2 on
	// e(0→1). Replica 1 must apply them in order.
	τ0 := s.Zero(0)
	T1 := s.Advance(0, τ0, "x")
	T2 := s.Advance(0, T1, "x")

	τ1 := s.Zero(1)
	if s.Deliverable(1, τ1, 0, T2) {
		t.Error("second update deliverable before first")
	}
	if !s.Deliverable(1, τ1, 0, T1) {
		t.Error("first update not deliverable")
	}
	τ1 = s.Merge(1, τ1, 0, T1)
	if !s.Deliverable(1, τ1, 0, T2) {
		t.Error("second update not deliverable after first applied")
	}
	τ1 = s.Merge(1, τ1, 0, T2)
	if s.Deliverable(1, τ1, 0, T2) {
		t.Error("already-applied update still deliverable")
	}
}

func TestDeliverableTransitiveDependency(t *testing.T) {
	// Fig 3 path: 0 –x– 1 –y– 2. Replica 1 applies 0's x-update, then
	// writes y. Replica 2 receives 1's update; predicate J at 2 only sees
	// edges ending at 2, so it is immediately deliverable — the paper's
	// point is that 2 need not wait for 0's update (it does not store x).
	g := sharegraph.Fig3Example()
	s := newSpace(t, g)
	T0 := s.Advance(0, s.Zero(0), "x")
	τ1 := s.Merge(1, s.Zero(1), 0, T0)
	T1 := s.Advance(1, τ1, "y")
	if !s.Deliverable(2, s.Zero(2), 1, T1) {
		t.Error("update with no causal predecessor on 2's registers blocked")
	}
}

func TestDeliverableChainOnTriangle(t *testing.T) {
	// Triangle where all three replicas share pairwise registers; use
	// Fig5's triangle 0–1–3 (y shared by all three). An update from 1 that
	// causally follows an update from 0 must wait at 3 until 0's arrives.
	g := sharegraph.Fig5Example()
	s := newSpace(t, g)

	T0 := s.Advance(0, s.Zero(0), "y") // 0 writes y → sent to 1 and 3
	τ1 := s.Merge(1, s.Zero(1), 0, T0) // 1 applies it
	T1 := s.Advance(1, τ1, "y")        // 1 writes y → sent to 0 and 3

	τ3 := s.Zero(3)
	if s.Deliverable(3, τ3, 1, T1) {
		t.Error("dependent update deliverable at 3 before its dependency from 0")
	}
	if !s.Deliverable(3, τ3, 0, T0) {
		t.Error("origin update not deliverable at 3")
	}
	τ3 = s.Merge(3, τ3, 0, T0)
	if !s.Deliverable(3, τ3, 1, T1) {
		t.Error("dependent update still blocked after dependency applied")
	}
}

func TestDeliverableUnrelatedSender(t *testing.T) {
	g := sharegraph.Fig3Example()
	s := newSpace(t, g)
	// Replicas 0 and 3 share nothing: no plan, never deliverable.
	if s.Deliverable(3, s.Zero(3), 0, s.Zero(0)) {
		t.Error("update deliverable between non-adjacent replicas")
	}
}

// TestTruncatedSpaceDegenerates: a Space over weakened edge sets (the
// Theorem 8 experiments and Appendix D truncations) must degrade
// predictably — advance skips missing outgoing edges and the delivery
// plan for a stripped incident edge reports undeliverable, never panics.
func TestTruncatedSpaceDegenerates(t *testing.T) {
	g := sharegraph.Fig3Example()
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	// Strip all of replica 1's edges except e(1->2).
	graphs[1] = sharegraph.NewTSGraphFromEdges(1, []sharegraph.Edge{{From: 1, To: 2}})
	s, err := NewSpace(g, graphs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len(1) != 1 {
		t.Fatalf("Len(1) = %d", s.Len(1))
	}
	// Writing x (shared with 0) increments nothing: e(1->0) is untracked.
	τ := s.Advance(1, s.Zero(1), "x")
	if !τ.Equal(s.Zero(1)) {
		t.Error("advance incremented an untracked edge")
	}
	if len(s.AdvanceIndexes(1, "y")) != 1 {
		t.Error("tracked outgoing edge missing from advance plan")
	}
	// Updates from 0 to 1 can never be delivered: e(0->1) untracked by 1.
	T := s.Advance(0, s.Zero(0), "x")
	if s.Deliverable(1, s.Zero(1), 0, T) {
		t.Error("delivery possible despite missing e(0->1) counter")
	}
	// And updates from 1 to 2 can never be delivered at 2: the SENDER
	// lacks e(1->2)? No — sender tracks e(1->2); receiver 2 tracks it too,
	// so this direction still works.
	T12 := s.Advance(1, s.Zero(1), "y")
	if !s.Deliverable(2, s.Zero(2), 1, T12) {
		t.Error("intact direction broken by unrelated stripping")
	}
}

func randomVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = uint64(rng.Intn(50))
	}
	return v
}

// TestMergeAlgebraProperties: merge is commutative, associative and
// idempotent on aligned vectors (same owner pair), and monotone.
func TestMergeAlgebraProperties(t *testing.T) {
	g := sharegraph.Fig5Example()
	s := newSpace(t, g)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, k := sharegraph.ReplicaID(0), sharegraph.ReplicaID(1)
		a := randomVec(rng, s.Len(i))
		b := randomVec(rng, s.Len(k))
		c := randomVec(rng, s.Len(k))

		// Idempotence: merging a vector derived from a's own values is a no-op
		// when the source carries nothing newer.
		m := s.Merge(i, a, k, s.Zero(k))
		if !m.Equal(a) {
			return false
		}
		// Monotonicity: merged ≥ a pointwise.
		m = s.Merge(i, a, k, b)
		for p := range a {
			if m[p] < a[p] {
				return false
			}
		}
		// Order independence: merge(merge(a,b),c) == merge(merge(a,c),b).
		abc := s.Merge(i, s.Merge(i, a, k, b), k, c)
		acb := s.Merge(i, s.Merge(i, a, k, c), k, b)
		return abc.Equal(acb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAdvanceMonotoneProperty: advance never decreases any counter and
// increments at least one counter for shared registers.
func TestAdvanceMonotoneProperty(t *testing.T) {
	g := sharegraph.Fig5Example()
	s := newSpace(t, g)
	regs := g.Registers()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i := sharegraph.ReplicaID(rng.Intn(g.NumReplicas()))
		x := regs[rng.Intn(len(regs))]
		if !g.StoresRegister(i, x) {
			return true // replica cannot write registers it does not store
		}
		τ := randomVec(rng, s.Len(i))
		τ2 := s.Advance(i, τ, x)
		bumped := 0
		for p := range τ {
			if τ2[p] < τ[p] {
				return false
			}
			if τ2[p] > τ[p] {
				if τ2[p] != τ[p]+1 {
					return false
				}
				bumped++
			}
		}
		return bumped == len(g.UpdateRecipients(i, x))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(vals []uint64) bool {
		v := Vec(vals)
		data := Encode(v)
		if len(data) != EncodedSize(v) {
			return false
		}
		w, err := Decode(data)
		if err != nil {
			return false
		}
		if len(v) == 0 {
			return len(w) == 0
		}
		return w.Equal(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xff}); err == nil {
		t.Error("Decode of truncated varint succeeded")
	}
	// Length prefix claims more elements than bytes remain.
	if _, err := Decode([]byte{200, 1}); err == nil {
		t.Error("Decode with implausible length succeeded")
	}
	// Trailing garbage.
	data := append(Encode(Vec{1, 2}), 0x00)
	if _, err := Decode(data); err == nil {
		t.Error("Decode with trailing bytes succeeded")
	}
}

func TestVecHelpers(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
	if v.Equal(Vec{1, 2}) || v.Equal(Vec{1, 2, 4}) {
		t.Error("Equal misreports")
	}
	if v.String() != "[1 2 3]" {
		t.Errorf("String = %q", v.String())
	}
}

func BenchmarkAdvance(b *testing.B) {
	g := sharegraph.Ring(8)
	s := newSpace(b, g)
	τ := s.Zero(0)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		τ = s.Advance(0, τ, "ring0")
	}
}

func BenchmarkMerge(b *testing.B) {
	g := sharegraph.Ring(8)
	s := newSpace(b, g)
	τ := s.Zero(0)
	T := s.Advance(1, s.Zero(1), "ring0")
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.MergeInPlace(0, τ, 1, T)
	}
}

func BenchmarkDeliverable(b *testing.B) {
	g := sharegraph.Ring(8)
	s := newSpace(b, g)
	τ := s.Zero(0)
	T := s.Advance(1, s.Zero(1), "ring0")
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Deliverable(0, τ, 1, T)
	}
}

func BenchmarkEncode(b *testing.B) {
	g := sharegraph.Ring(10)
	s := newSpace(b, g)
	τ := s.Advance(0, s.Zero(0), "ring0")
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Encode(τ)
	}
}
