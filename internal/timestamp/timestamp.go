// Package timestamp implements the edge-indexed vector timestamps of
// Section 3.3 of Xiang & Vaidya (PODC 2019): each replica i keeps one
// integer counter per edge of its timestamp graph G_i, and the three
// protocol operations — advance (on local writes), merge (on applying a
// remote update) and the delivery predicate J — manipulate those counters.
//
// Timestamps of different replicas have different lengths and are indexed
// by different edge sets; a Space precomputes the pairwise intersections
// E_i ∩ E_k that merge and J operate on, so the per-operation cost is
// linear in the intersection size with no map lookups.
package timestamp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/sharegraph"
)

// Vec is an edge-indexed vector timestamp. Position p counts updates on
// the p-th edge of the owner's timestamp-graph edge order.
type Vec []uint64

// Clone returns an independent copy of the vector.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Equal reports whether two vectors are identical.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// String renders the raw counter values.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// pairIdx aligns one edge's position in two different timestamp orders.
type pairIdx struct {
	a int // index in the first vector
	b int // index in the second vector
}

// deliveryPlan precomputes what predicate J(i, ·, k, ·) inspects for a
// fixed (receiver i, sender k) pair: the position of e_{ki} in both
// vectors, and the aligned positions of every other incoming edge
// e_{ji} ∈ E_i ∩ E_k (j ≠ k).
type deliveryPlan struct {
	valid    bool
	ekiRecv  int // index of e_{ki} in τ_i
	ekiSend  int // index of e_{ki} in T (sender's order)
	incoming []pairIdx
}

// Space holds the per-replica timestamp graphs plus every precomputed
// intersection and delivery plan. One Space is shared by all replicas of
// a system; it is immutable after construction and safe for concurrent
// use.
type Space struct {
	graphs []*sharegraph.TSGraph
	// advanceIdx[i][x] lists the positions in τ_i that a write to x at i
	// increments: edges e_{ij} with x ∈ X_ij.
	advanceIdx []map[sharegraph.Register][]int
	// inter[i][k] aligns E_i ∩ E_k as (pos in τ_i, pos in τ_k).
	inter [][][]pairIdx
	// plans[i][k] is the predicate-J plan for i receiving from k.
	plans [][]deliveryPlan
	// recheck[i][k] lists the senders whose predicate J(i, ·, m, ·) reads
	// the counter of e_{ki} and can therefore flip to true when replica i
	// applies an update from k: k itself (whose gate just advanced) plus
	// every m with e_{ki} ∈ E_m. No other predicate at i can change,
	// because merge leaves all other incoming-edge counters untouched
	// (J's second clause guarantees τ_i already dominates them).
	recheck [][][]sharegraph.ReplicaID
}

// NewSpace builds a Space for the given share graph and per-replica
// timestamp graphs. graphs[i].Owner must be i; graphs typically come from
// sharegraph.BuildAllTSGraphs, but optimized or truncated edge sets
// (Appendix D) are accepted as long as each still contains the edges the
// delivery predicate needs for the pairs that actually exchange updates.
func NewSpace(g *sharegraph.Graph, graphs []*sharegraph.TSGraph) (*Space, error) {
	n := g.NumReplicas()
	if len(graphs) != n {
		return nil, fmt.Errorf("timestamp: have %d timestamp graphs for %d replicas", len(graphs), n)
	}
	for i, tg := range graphs {
		if tg.Owner != sharegraph.ReplicaID(i) {
			return nil, fmt.Errorf("timestamp: graph %d has owner %d", i, tg.Owner)
		}
	}
	s := &Space{
		graphs:     graphs,
		advanceIdx: make([]map[sharegraph.Register][]int, n),
		inter:      make([][][]pairIdx, n),
		plans:      make([][]deliveryPlan, n),
		recheck:    make([][][]sharegraph.ReplicaID, n),
	}
	for i := 0; i < n; i++ {
		ri := sharegraph.ReplicaID(i)
		s.advanceIdx[i] = make(map[sharegraph.Register][]int)
		for _, j := range g.Neighbors(ri) {
			e := sharegraph.Edge{From: ri, To: j}
			idx, ok := graphs[i].Index(e)
			if !ok {
				continue // truncated edge sets may omit even incident edges
			}
			for x := range g.Shared(ri, j) {
				s.advanceIdx[i][x] = append(s.advanceIdx[i][x], idx)
			}
		}
		s.inter[i] = make([][]pairIdx, n)
		s.plans[i] = make([]deliveryPlan, n)
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			pairs := graphs[i].Intersection(graphs[k])
			ip := make([]pairIdx, len(pairs))
			for p, pr := range pairs {
				ip[p] = pairIdx{a: pr[0], b: pr[1]}
			}
			s.inter[i][k] = ip
			s.plans[i][k] = buildPlan(graphs[i], graphs[k], ri, sharegraph.ReplicaID(k))
		}
		s.recheck[i] = buildRecheck(s.plans[i])
	}
	return s, nil
}

// buildRecheck derives, for each sender k, the senders whose delivery
// predicate at this receiver inspects the counter of e_{ki}: k itself plus
// every m whose plan lists e_{ki}'s receiver position among its incoming
// pairs.
func buildRecheck(plans []deliveryPlan) [][]sharegraph.ReplicaID {
	out := make([][]sharegraph.ReplicaID, len(plans))
	for k := range plans {
		if !plans[k].valid {
			continue
		}
		pos := plans[k].ekiRecv
		lst := []sharegraph.ReplicaID{sharegraph.ReplicaID(k)}
		for m := range plans {
			if m == k || !plans[m].valid {
				continue
			}
			for _, p := range plans[m].incoming {
				if p.a == pos {
					lst = append(lst, sharegraph.ReplicaID(m))
					break
				}
			}
		}
		out[k] = lst
	}
	return out
}

func buildPlan(gi, gk *sharegraph.TSGraph, i, k sharegraph.ReplicaID) deliveryPlan {
	eki := sharegraph.Edge{From: k, To: i}
	recvIdx, okR := gi.Index(eki)
	sendIdx, okS := gk.Index(eki)
	if !okR || !okS {
		return deliveryPlan{}
	}
	plan := deliveryPlan{valid: true, ekiRecv: recvIdx, ekiSend: sendIdx}
	for _, e := range gi.Edges() {
		if e.To != i || e.From == k {
			continue
		}
		if sidx, ok := gk.Index(e); ok {
			ridx, _ := gi.Index(e)
			plan.incoming = append(plan.incoming, pairIdx{a: ridx, b: sidx})
		}
	}
	return plan
}

// Graph returns replica i's timestamp graph.
func (s *Space) Graph(i sharegraph.ReplicaID) *sharegraph.TSGraph { return s.graphs[i] }

// NumReplicas returns the number of replicas the space was built for.
func (s *Space) NumReplicas() int { return len(s.graphs) }

// Zero returns replica i's initial timestamp: all counters zero.
func (s *Space) Zero(i sharegraph.ReplicaID) Vec {
	return make(Vec, s.graphs[i].Len())
}

// Len returns |E_i|, the number of counters in replica i's timestamp.
func (s *Space) Len(i sharegraph.ReplicaID) int { return s.graphs[i].Len() }

// Advance implements advance(i, τ_i, x, v): it returns a new vector with
// the counters of edges e_{ij} such that x ∈ X_ij incremented (the write's
// value v does not influence the timestamp). τ is not modified.
func (s *Space) Advance(i sharegraph.ReplicaID, τ Vec, x sharegraph.Register) Vec {
	out := τ.Clone()
	for _, idx := range s.advanceIdx[i][x] {
		out[idx]++
	}
	return out
}

// AdvanceInPlace is Advance without the defensive copy, for hot paths
// that own τ.
func (s *Space) AdvanceInPlace(i sharegraph.ReplicaID, τ Vec, x sharegraph.Register) {
	for _, idx := range s.advanceIdx[i][x] {
		τ[idx]++
	}
}

// AdvanceIndexes returns the positions in τ_i incremented by a write to x
// at replica i (diagnostics and compression use this).
func (s *Space) AdvanceIndexes(i sharegraph.ReplicaID, x sharegraph.Register) []int {
	return s.advanceIdx[i][x]
}

// SeqPos returns the position of e_{ki} in SENDER k's edge order. Because
// every update k sends to i is a write to some register in X_ki, advance
// increments that counter on exactly the writes i receives, so the value
// at this position is a consecutive per-receiver sequence number
// (1, 2, 3, …): the key the indexed delivery engine files pending updates
// under. ok is false when either side does not track e_{ki}, in which case
// predicate J can never admit an update from k at i.
func (s *Space) SeqPos(i, k sharegraph.ReplicaID) (int, bool) {
	p := &s.plans[i][k]
	return p.ekiSend, p.valid
}

// GatePos returns the position of e_{ki} in RECEIVER i's edge order — the
// "gate" counter that predicate J compares the sender sequence number
// against: an update with sequence s is deliverable only once
// τ_i[gate] = s − 1.
func (s *Space) GatePos(i, k sharegraph.ReplicaID) (int, bool) {
	p := &s.plans[i][k]
	return p.ekiRecv, p.valid
}

// RecheckOnApply returns the senders whose delivery predicate at i may
// newly hold after i applies an update from k (k first, then every sender
// whose predicate reads e_{ki}). The slice is shared; callers must not
// modify it.
func (s *Space) RecheckOnApply(i, k sharegraph.ReplicaID) []sharegraph.ReplicaID {
	return s.recheck[i][k]
}

// Merge implements merge(i, τ_i, k, T): element-wise max over E_i ∩ E_k,
// leaving counters for E_i − E_k untouched. τ is not modified.
func (s *Space) Merge(i sharegraph.ReplicaID, τ Vec, k sharegraph.ReplicaID, T Vec) Vec {
	out := τ.Clone()
	for _, p := range s.inter[i][k] {
		if T[p.b] > out[p.a] {
			out[p.a] = T[p.b]
		}
	}
	return out
}

// MergeInPlace is Merge without the defensive copy, for hot paths that own τ.
func (s *Space) MergeInPlace(i sharegraph.ReplicaID, τ Vec, k sharegraph.ReplicaID, T Vec) {
	for _, p := range s.inter[i][k] {
		if T[p.b] > τ[p.a] {
			τ[p.a] = T[p.b]
		}
	}
}

// Deliverable implements predicate J(i, τ_i, k, T) for k ≠ i:
//
//	τ_i[e_ki] = T[e_ki] − 1, and
//	τ_i[e_ji] ≥ T[e_ji] for every e_ji ∈ E_i ∩ E_k with j ≠ k.
//
// It reports false when e_ki is untracked by either side (which cannot
// happen for updates the protocol actually sends, since senders share a
// register with recipients).
func (s *Space) Deliverable(i sharegraph.ReplicaID, τ Vec, k sharegraph.ReplicaID, T Vec) bool {
	plan := &s.plans[i][k]
	if !plan.valid {
		return false
	}
	if τ[plan.ekiRecv] != T[plan.ekiSend]-1 {
		return false
	}
	for _, p := range plan.incoming {
		if τ[p.a] < T[p.b] {
			return false
		}
	}
	return true
}

// EncodedSize returns the number of bytes Encode will produce for v.
func EncodedSize(v Vec) int {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(v)))
	for _, x := range v {
		n += binary.PutUvarint(buf[:], x)
	}
	return n
}

// Encode serializes v with varint encoding (length-prefixed). The wire
// format is what the metadata-size experiments measure.
func Encode(v Vec) []byte {
	return EncodeTo(make([]byte, 0, EncodedSize(v)), v)
}

// EncodeTo appends the encoding of v to dst and returns the extended
// slice, allocating only if dst lacks capacity. Hot paths size dst with
// EncodedSize and reuse it across calls.
func EncodeTo(dst []byte, v Vec) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(v)))
	dst = append(dst, buf[:n]...)
	for _, x := range v {
		n = binary.PutUvarint(buf[:], x)
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// Decode parses a vector produced by Encode.
func Decode(data []byte) (Vec, error) {
	return DecodeInto(nil, data)
}

// DecodeReuse parses a vector produced by Encode into storage recycled
// from free when available; on error the popped buffer is returned to the
// freelist. Delivery engines feed vectors freed by applies back through
// this so steady-state ingestion does not allocate.
func DecodeReuse(free *[]Vec, data []byte) (Vec, error) {
	var buf Vec
	if ln := len(*free); ln > 0 {
		buf = (*free)[ln-1]
		*free = (*free)[:ln-1]
	}
	v, err := DecodeInto(buf, data)
	if err != nil {
		if buf != nil {
			*free = append(*free, buf)
		}
		return nil, err
	}
	return v, nil
}

// DecodeInto parses a vector produced by Encode into dst's storage,
// growing it only when the capacity is insufficient, and returns the
// parsed vector. On error dst's contents are unspecified but its storage
// is still usable for a later call. The delivery engines recycle decoded
// vectors through DecodeInto so steady-state message ingestion does not
// allocate.
func DecodeInto(dst Vec, data []byte) (Vec, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("timestamp: corrupt length prefix")
	}
	// Clamp the declared element count against the bytes actually present
	// AFTER the prefix (each element takes at least one byte) before any
	// allocation: a corrupt or adversarial length must fail here, not
	// drive a huge make or survive to a partial parse.
	if ln > uint64(len(data)-n) {
		return nil, fmt.Errorf("timestamp: implausible length %d for %d payload bytes", ln, len(data)-n)
	}
	data = data[n:]
	var out Vec
	if uint64(cap(dst)) >= ln {
		out = dst[:ln]
	} else {
		out = make(Vec, ln)
	}
	for i := range out {
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("timestamp: corrupt element %d", i)
		}
		out[i] = x
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("timestamp: %d trailing bytes", len(data))
	}
	return out, nil
}
