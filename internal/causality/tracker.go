// Package causality is the ground-truth oracle for replica-centric causal
// consistency (Definitions 1 and 2 of Xiang & Vaidya, PODC 2019). It
// tracks the true happened-before relation ↪ between updates as events are
// reported by a simulation — independently of any protocol timestamps — and
// judges safety (no update applied before a causally preceding update on a
// co-located register) and liveness (at quiescence, every update reached
// every replica storing its register).
//
// Because the oracle sees only issue/apply events and the register
// placement, it can audit any protocol, including deliberately broken
// baselines; the test suite relies on it to demonstrate both Theorem 24
// (the paper's algorithm is safe) and Theorem 8 (weakened timestamps are
// not).
package causality

import (
	"fmt"
	"sync"

	"repro/internal/sharegraph"
)

// UpdateID identifies an issued update in issue order (0-based).
type UpdateID int

// ViolationKind classifies consistency violations.
type ViolationKind int

const (
	// SafetyViolation: an update was applied at a replica before some
	// causally preceding update on a register that replica stores.
	SafetyViolation ViolationKind = iota + 1
	// DuplicateApply: the same update was applied twice at one replica.
	DuplicateApply
	// ForeignApply: a replica applied an update for a register it does
	// not store.
	ForeignApply
	// LivenessViolation: at quiescence, an update had not been applied at
	// some replica storing its register.
	LivenessViolation
	// StaleAccess: a replica served a client while an update in the
	// client's observed causal past, on a register the replica stores,
	// was not yet applied there (Definition 26, second safety clause).
	StaleAccess
)

func (k ViolationKind) String() string {
	switch k {
	case SafetyViolation:
		return "safety"
	case DuplicateApply:
		return "duplicate-apply"
	case ForeignApply:
		return "foreign-apply"
	case LivenessViolation:
		return "liveness"
	case StaleAccess:
		return "stale-access"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation records one detected consistency violation.
type Violation struct {
	Kind    ViolationKind
	Replica sharegraph.ReplicaID
	Update  UpdateID
	// Missing is the causally preceding update that should have been
	// applied first (SafetyViolation only).
	Missing UpdateID
}

func (v Violation) String() string {
	switch v.Kind {
	case SafetyViolation:
		return fmt.Sprintf("safety: replica %d applied update %d before its causal predecessor %d",
			v.Replica, v.Update, v.Missing)
	case LivenessViolation:
		return fmt.Sprintf("liveness: update %d never applied at replica %d", v.Update, v.Replica)
	default:
		return fmt.Sprintf("%s: replica %d update %d", v.Kind, v.Replica, v.Update)
	}
}

type updateInfo struct {
	issuer sharegraph.ReplicaID
	reg    sharegraph.Register
	// preds is the transitive closure of ↪ predecessors (excluding the
	// update itself), fixed at issue time per Definition 1.
	preds *bitset
}

// Tracker is the oracle. It is safe for concurrent use, so the live
// goroutine cluster and the deterministic simulator share the same code.
type Tracker struct {
	g *sharegraph.Graph

	mu        sync.Mutex
	updates   []updateInfo
	applied   []*bitset // applied[i] = set of updates applied at replica i
	knownPast []*bitset // knownPast[i] = ∪ over applied u of {u} ∪ preds(u)
	// relevant[i] = updates on registers replica i stores. Safety checks
	// intersect against it so the per-apply test is pure word arithmetic
	// instead of one placement lookup per causal predecessor.
	relevant   []*bitset
	holderIdx  map[sharegraph.Register][]sharegraph.ReplicaID
	clients    map[sharegraph.ClientID]*bitset
	violations []Violation
}

// NewTracker builds an oracle for the given register placement.
func NewTracker(g *sharegraph.Graph) *Tracker {
	n := g.NumReplicas()
	t := &Tracker{
		g:         g,
		applied:   make([]*bitset, n),
		knownPast: make([]*bitset, n),
		relevant:  make([]*bitset, n),
		holderIdx: make(map[sharegraph.Register][]sharegraph.ReplicaID),
	}
	for i := range t.applied {
		t.applied[i] = &bitset{}
		t.knownPast[i] = &bitset{}
		t.relevant[i] = &bitset{}
	}
	return t
}

// holders caches g.Holders per register (the graph accessor copies).
func (t *Tracker) holders(x sharegraph.Register) []sharegraph.ReplicaID {
	hs, ok := t.holderIdx[x]
	if !ok {
		hs = t.g.Holders(x)
		t.holderIdx[x] = hs
	}
	return hs
}

// OnIssue records that replica i issued an update on register x and
// returns its UpdateID. Per the replica prototype (step 2), the update is
// also applied locally at i as part of issuing. The update's causal past
// is the set of updates applied at i so far, transitively closed.
func (t *Tracker) OnIssue(i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := UpdateID(len(t.updates))
	t.updates = append(t.updates, updateInfo{
		issuer: i,
		reg:    x,
		preds:  t.knownPast[i].clone(),
	})
	for _, h := range t.holders(x) {
		t.relevant[int(h)].set(int(id))
	}
	t.applied[int(i)].set(int(id))
	t.knownPast[int(i)].set(int(id))
	return id
}

// OnApply records that replica j applied update id (received from its
// issuer) and checks the safety property of Definition 2: every update u2
// with u2 ↪ id on a register j stores must already be applied at j.
func (t *Tracker) OnApply(j sharegraph.ReplicaID, id UpdateID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		t.violations = append(t.violations, Violation{Kind: ForeignApply, Replica: j, Update: id})
		return
	}
	u := t.updates[id]
	if !t.g.StoresRegister(j, u.reg) {
		t.violations = append(t.violations, Violation{Kind: ForeignApply, Replica: j, Update: id})
		return
	}
	if t.applied[int(j)].has(int(id)) {
		t.violations = append(t.violations, Violation{Kind: DuplicateApply, Replica: j, Update: id})
		return
	}
	// Fast path: pure word arithmetic. Only on an actual violation does
	// the per-element walk run to name the missing predecessors.
	if u.preds.intersectsDiff(t.relevant[int(j)], t.applied[int(j)]) {
		u.preds.forEachDiff(t.relevant[int(j)], t.applied[int(j)], func(pred int) bool {
			t.violations = append(t.violations, Violation{
				Kind: SafetyViolation, Replica: j, Update: id, Missing: UpdateID(pred),
			})
			return true
		})
	}
	t.applied[int(j)].set(int(id))
	t.knownPast[int(j)].set(int(id))
	t.knownPast[int(j)].orWith(u.preds)
}

// OracleDeliverable reports whether, per the true ↪ relation, update id
// could safely be applied at replica j right now: every causal predecessor
// on a register j stores has been applied at j. The simulator uses it to
// measure false dependencies — moments when a protocol's predicate blocked
// an update the oracle would admit.
func (t *Tracker) OracleDeliverable(j sharegraph.ReplicaID, id UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		return false
	}
	return !t.updates[id].preds.intersectsDiff(t.relevant[int(j)], t.applied[int(j)])
}

// HappenedBefore reports whether a ↪ b under the true relation.
func (t *Tracker) HappenedBefore(a, b UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(a) >= len(t.updates) || int(b) >= len(t.updates) {
		return false
	}
	return t.updates[b].preds.has(int(a))
}

// Concurrent reports whether neither a ↪ b nor b ↪ a.
func (t *Tracker) Concurrent(a, b UpdateID) bool {
	if a == b {
		return false
	}
	return !t.HappenedBefore(a, b) && !t.HappenedBefore(b, a)
}

// NumUpdates returns the number of updates issued so far.
func (t *Tracker) NumUpdates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.updates)
}

// Applied reports whether update id has been applied at replica j.
func (t *Tracker) Applied(j sharegraph.ReplicaID, id UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applied[int(j)].has(int(id))
}

// CausalPastSize returns |preds(id)|, the number of updates that
// happened-before id.
func (t *Tracker) CausalPastSize(id UpdateID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		return 0
	}
	return t.updates[id].preds.count()
}

// CheckLiveness audits the liveness property of Definition 2 at
// quiescence: every issued update must be applied at every replica storing
// its register. Found gaps are recorded and returned.
func (t *Tracker) CheckLiveness() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Violation
	for id, u := range t.updates {
		for _, h := range t.holders(u.reg) {
			if !t.applied[int(h)].has(id) {
				v := Violation{Kind: LivenessViolation, Replica: h, Update: UpdateID(id)}
				out = append(out, v)
				t.violations = append(t.violations, v)
			}
		}
	}
	return out
}

// Violations returns all violations recorded so far (a copy).
func (t *Tracker) Violations() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Violation(nil), t.violations...)
}

// Ok reports whether no violation has been recorded.
func (t *Tracker) Ok() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.violations) == 0
}
