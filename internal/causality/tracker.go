// Package causality is the ground-truth oracle for replica-centric causal
// consistency (Definitions 1 and 2 of Xiang & Vaidya, PODC 2019). It
// tracks the true happened-before relation ↪ between updates as events are
// reported by a simulation — independently of any protocol timestamps — and
// judges safety (no update applied before a causally preceding update on a
// co-located register) and liveness (at quiescence, every update reached
// every replica storing its register).
//
// Because the oracle sees only issue/apply events and the register
// placement, it can audit any protocol, including deliberately broken
// baselines; the test suite relies on it to demonstrate both Theorem 24
// (the paper's algorithm is safe) and Theorem 8 (weakened timestamps are
// not).
//
// The oracle's sets of update IDs come in two interchangeable
// representations: the persistent copy-on-write pset (the default — its
// O(1) snapshot removes the per-issue causal-past clone that made audited
// runs quadratic in bytes; see persist.go) and the flat bitset reference
// (NewFlatTracker), kept so differential tests can pin the two to
// identical verdicts on identical event streams.
package causality

import (
	"fmt"
	"sync"

	"repro/internal/sharegraph"
)

// UpdateID identifies an issued update in issue order (0-based).
type UpdateID int

// ViolationKind classifies consistency violations.
type ViolationKind int

const (
	// SafetyViolation: an update was applied at a replica before some
	// causally preceding update on a register that replica stores.
	SafetyViolation ViolationKind = iota + 1
	// DuplicateApply: the same update was applied twice at one replica.
	DuplicateApply
	// ForeignApply: a replica applied an update for a register it does
	// not store.
	ForeignApply
	// LivenessViolation: at quiescence, an update had not been applied at
	// some replica storing its register.
	LivenessViolation
	// StaleAccess: a replica served a client while an update in the
	// client's observed causal past, on a register the replica stores,
	// was not yet applied there (Definition 26, second safety clause).
	StaleAccess
)

func (k ViolationKind) String() string {
	switch k {
	case SafetyViolation:
		return "safety"
	case DuplicateApply:
		return "duplicate-apply"
	case ForeignApply:
		return "foreign-apply"
	case LivenessViolation:
		return "liveness"
	case StaleAccess:
		return "stale-access"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation records one detected consistency violation.
type Violation struct {
	Kind    ViolationKind
	Replica sharegraph.ReplicaID
	Update  UpdateID
	// Missing is the causally preceding update that should have been
	// applied first (SafetyViolation only).
	Missing UpdateID
}

func (v Violation) String() string {
	switch v.Kind {
	case SafetyViolation:
		return fmt.Sprintf("safety: replica %d applied update %d before its causal predecessor %d",
			v.Replica, v.Update, v.Missing)
	case LivenessViolation:
		return fmt.Sprintf("liveness: update %d never applied at replica %d", v.Update, v.Replica)
	default:
		return fmt.Sprintf("%s: replica %d update %d", v.Kind, v.Replica, v.Update)
	}
}

// updateSet is the contract both set representations satisfy. S is the
// concrete pointer type itself, so the generic tracker below compiles to
// direct calls on whichever representation it was instantiated with —
// no per-word interface dispatch on the hot path.
type updateSet[S any] interface {
	set(idx int)
	clear(idx int)
	has(idx int) bool
	count() int
	// snapshot returns an independently mutable copy: O(1) structural
	// sharing for pset, a full clone for the flat bitset.
	snapshot() S
	orWith(other S)
	// intersectsDiff reports whether receiver ∩ mask ∩ ¬excl ≠ ∅; the
	// zero S (nil) stands for the empty set.
	intersectsDiff(mask, excl S) bool
	// forEachDiff enumerates receiver ∩ mask ∩ ¬excl in ascending order.
	forEachDiff(mask, excl S, fn func(idx int) bool)
}

// oracle is the representation-independent surface Tracker delegates to.
type oracle interface {
	OnIssue(i sharegraph.ReplicaID, x sharegraph.Register) UpdateID
	OnApply(j sharegraph.ReplicaID, id UpdateID)
	OracleDeliverable(j sharegraph.ReplicaID, id UpdateID) bool
	HappenedBefore(a, b UpdateID) bool
	NumUpdates() int
	Applied(j sharegraph.ReplicaID, id UpdateID) bool
	CausalPastSize(id UpdateID) int
	CheckLiveness() []Violation
	Violations() []Violation
	Ok() bool
	OnClientAccess(c sharegraph.ClientID, i sharegraph.ReplicaID)
	OnClientWrite(c sharegraph.ClientID, i sharegraph.ReplicaID, x sharegraph.Register) UpdateID
	ClientPastSize(c sharegraph.ClientID) int
	ExportCheckpoint(j sharegraph.ReplicaID) *ReplicaCheckpoint
	RestoreCheckpoint(j sharegraph.ReplicaID, ck *ReplicaCheckpoint) error
	Impl() string
}

// Tracker is the oracle. It is safe for concurrent use, so the live
// goroutine cluster and the deterministic simulator share the same code.
type Tracker struct {
	impl oracle
}

// NewTracker builds an oracle for the given register placement, backed
// by persistent copy-on-write sets (O(1) causal-past snapshot per issue).
func NewTracker(g *sharegraph.Graph) *Tracker {
	return &Tracker{impl: newTrackerImpl(g, func() *pset { return &pset{} }, "persistent")}
}

// NewFlatTracker builds an oracle backed by flat bitsets — one full
// causal-past clone per issue, O(ops²/8) bytes per run. It exists as the
// reference for differential tests and memory benchmarks against the
// persistent representation; behavior is identical.
func NewFlatTracker(g *sharegraph.Graph) *Tracker {
	return &Tracker{impl: newTrackerImpl(g, func() *bitset { return &bitset{} }, "flat")}
}

// Impl names the set representation backing this tracker ("persistent"
// or "flat").
func (t *Tracker) Impl() string { return t.impl.Impl() }

// OnIssue records that replica i issued an update on register x and
// returns its UpdateID. Per the replica prototype (step 2), the update is
// also applied locally at i as part of issuing. The update's causal past
// is the set of updates applied at i so far, transitively closed.
func (t *Tracker) OnIssue(i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	return t.impl.OnIssue(i, x)
}

// OnApply records that replica j applied update id (received from its
// issuer) and checks the safety property of Definition 2: every update u2
// with u2 ↪ id on a register j stores must already be applied at j.
func (t *Tracker) OnApply(j sharegraph.ReplicaID, id UpdateID) { t.impl.OnApply(j, id) }

// OracleDeliverable reports whether, per the true ↪ relation, update id
// could safely be applied at replica j right now: every causal predecessor
// on a register j stores has been applied at j. The simulator uses it to
// measure false dependencies — moments when a protocol's predicate blocked
// an update the oracle would admit.
func (t *Tracker) OracleDeliverable(j sharegraph.ReplicaID, id UpdateID) bool {
	return t.impl.OracleDeliverable(j, id)
}

// HappenedBefore reports whether a ↪ b under the true relation.
func (t *Tracker) HappenedBefore(a, b UpdateID) bool { return t.impl.HappenedBefore(a, b) }

// Concurrent reports whether neither a ↪ b nor b ↪ a.
func (t *Tracker) Concurrent(a, b UpdateID) bool {
	if a == b {
		return false
	}
	return !t.HappenedBefore(a, b) && !t.HappenedBefore(b, a)
}

// NumUpdates returns the number of updates issued so far.
func (t *Tracker) NumUpdates() int { return t.impl.NumUpdates() }

// Applied reports whether update id has been applied at replica j.
func (t *Tracker) Applied(j sharegraph.ReplicaID, id UpdateID) bool { return t.impl.Applied(j, id) }

// CausalPastSize returns |preds(id)|, the number of updates that
// happened-before id.
func (t *Tracker) CausalPastSize(id UpdateID) int { return t.impl.CausalPastSize(id) }

// CheckLiveness audits the liveness property of Definition 2 at
// quiescence: every issued update must be applied at every replica storing
// its register. Found gaps are recorded and returned.
func (t *Tracker) CheckLiveness() []Violation { return t.impl.CheckLiveness() }

// Violations returns all violations recorded so far (a copy).
func (t *Tracker) Violations() []Violation { return t.impl.Violations() }

// Ok reports whether no violation has been recorded.
func (t *Tracker) Ok() bool { return t.impl.Ok() }

// OnClientAccess records that replica i accepted (responded to) a request
// from client c, and audits the second safety clause of Definition 26:
// every update in the client's observed past on a register i stores must
// already be applied at i. The client then absorbs i's causal past.
func (t *Tracker) OnClientAccess(c sharegraph.ClientID, i sharegraph.ReplicaID) {
	t.impl.OnClientAccess(c, i)
}

// OnClientWrite records that replica i accepted a write of register x from
// client c: the new update's causal past is the union of the replica's and
// the client's pasts (Definition 25, clauses (i) and (ii)); the update is
// applied locally at i as part of issuing, and the client observes it.
// Call OnClientAccess first to audit the access itself.
func (t *Tracker) OnClientWrite(c sharegraph.ClientID, i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	return t.impl.OnClientWrite(c, i, x)
}

// ClientPastSize returns the number of updates in client c's observed
// causal past.
func (t *Tracker) ClientPastSize(c sharegraph.ClientID) int { return t.impl.ClientPastSize(c) }

type updateInfo[S any] struct {
	issuer sharegraph.ReplicaID
	reg    sharegraph.Register
	// preds is the transitive closure of ↪ predecessors (excluding the
	// update itself), fixed at issue time per Definition 1.
	preds S
}

// tracker is the oracle's logic, generic over the set representation.
type tracker[S updateSet[S]] struct {
	g      *sharegraph.Graph
	newSet func() S
	name   string
	// none is the zero S (nil), standing for the empty excl argument of
	// the diff primitives.
	none S

	mu      sync.Mutex
	updates []updateInfo[S]
	applied []S // applied[i] = set of updates applied at replica i
	// knownPast[i] = ∪ over applied u of {u} ∪ preds(u); snapshotted per
	// issue to fix the new update's causal past.
	knownPast []S
	// missing[i] = updates on registers replica i stores, not yet applied
	// there — relevant(i) ∖ applied(i), maintained incrementally (set on
	// issue at every non-issuing holder, cleared on apply). The per-apply
	// safety test intersects the new update's preds against it, so the
	// check scans only in-flight updates instead of the whole history.
	missing    []S
	holderIdx  map[sharegraph.Register][]sharegraph.ReplicaID
	clients    map[sharegraph.ClientID]S
	violations []Violation
}

func newTrackerImpl[S updateSet[S]](g *sharegraph.Graph, newSet func() S, name string) *tracker[S] {
	n := g.NumReplicas()
	t := &tracker[S]{
		g:         g,
		newSet:    newSet,
		name:      name,
		applied:   make([]S, n),
		knownPast: make([]S, n),
		missing:   make([]S, n),
		holderIdx: make(map[sharegraph.Register][]sharegraph.ReplicaID),
	}
	for i := 0; i < n; i++ {
		t.applied[i] = newSet()
		t.knownPast[i] = newSet()
		t.missing[i] = newSet()
	}
	return t
}

func (t *tracker[S]) Impl() string { return t.name }

// holders caches g.Holders per register (the graph accessor copies).
func (t *tracker[S]) holders(x sharegraph.Register) []sharegraph.ReplicaID {
	hs, ok := t.holderIdx[x]
	if !ok {
		hs = t.g.Holders(x)
		t.holderIdx[x] = hs
	}
	return hs
}

func (t *tracker[S]) OnIssue(i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := UpdateID(len(t.updates))
	t.updates = append(t.updates, updateInfo[S]{
		issuer: i,
		reg:    x,
		preds:  t.knownPast[int(i)].snapshot(),
	})
	for _, h := range t.holders(x) {
		if h != i {
			t.missing[int(h)].set(int(id))
		}
	}
	t.applied[int(i)].set(int(id))
	t.knownPast[int(i)].set(int(id))
	return id
}

func (t *tracker[S]) OnApply(j sharegraph.ReplicaID, id UpdateID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		t.violations = append(t.violations, Violation{Kind: ForeignApply, Replica: j, Update: id})
		return
	}
	u := t.updates[id]
	if !t.g.StoresRegister(j, u.reg) {
		t.violations = append(t.violations, Violation{Kind: ForeignApply, Replica: j, Update: id})
		return
	}
	if t.applied[int(j)].has(int(id)) {
		t.violations = append(t.violations, Violation{Kind: DuplicateApply, Replica: j, Update: id})
		return
	}
	// Fast path: pure word arithmetic over the in-flight set. Only on an
	// actual violation does the per-element walk run to name the missing
	// predecessors.
	miss := t.missing[int(j)]
	if miss.intersectsDiff(u.preds, t.none) {
		miss.forEachDiff(u.preds, t.none, func(pred int) bool {
			t.violations = append(t.violations, Violation{
				Kind: SafetyViolation, Replica: j, Update: id, Missing: UpdateID(pred),
			})
			return true
		})
	}
	miss.clear(int(id))
	t.applied[int(j)].set(int(id))
	t.knownPast[int(j)].set(int(id))
	t.knownPast[int(j)].orWith(u.preds)
}

func (t *tracker[S]) OracleDeliverable(j sharegraph.ReplicaID, id UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		return false
	}
	return !t.missing[int(j)].intersectsDiff(t.updates[id].preds, t.none)
}

func (t *tracker[S]) HappenedBefore(a, b UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(a) >= len(t.updates) || int(b) >= len(t.updates) {
		return false
	}
	return t.updates[b].preds.has(int(a))
}

func (t *tracker[S]) NumUpdates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.updates)
}

func (t *tracker[S]) Applied(j sharegraph.ReplicaID, id UpdateID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applied[int(j)].has(int(id))
}

func (t *tracker[S]) CausalPastSize(id UpdateID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.updates) {
		return 0
	}
	return t.updates[id].preds.count()
}

func (t *tracker[S]) CheckLiveness() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Violation
	for id, u := range t.updates {
		for _, h := range t.holders(u.reg) {
			if !t.applied[int(h)].has(id) {
				v := Violation{Kind: LivenessViolation, Replica: h, Update: UpdateID(id)}
				out = append(out, v)
				t.violations = append(t.violations, v)
			}
		}
	}
	return out
}

func (t *tracker[S]) Violations() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Violation(nil), t.violations...)
}

func (t *tracker[S]) Ok() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.violations) == 0
}
