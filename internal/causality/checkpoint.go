package causality

import (
	"fmt"

	"repro/internal/sharegraph"
)

// ReplicaCheckpoint freezes one replica's oracle-side state — its
// applied set and its known causal past — for crash/restart recovery.
// With the persistent set representation the export is O(1) structural
// sharing (the same mechanism that froze per-issue causal pasts in
// PR 4), so checkpointing is cheap enough to take eagerly.
//
// The frozen sets are opaque: a checkpoint restores only into a tracker
// of the same representation it was exported from.
type ReplicaCheckpoint struct {
	// Replica is the checkpointed replica.
	Replica sharegraph.ReplicaID
	// Issued is the number of updates issued system-wide at export time
	// (diagnostics only; restore does not depend on it).
	Issued int

	applied any
	known   any
}

// ExportCheckpoint freezes replica j's applied set and known causal
// past. The snapshot is independently mutable state: later tracker
// activity never leaks into it.
func (t *Tracker) ExportCheckpoint(j sharegraph.ReplicaID) *ReplicaCheckpoint {
	return t.impl.ExportCheckpoint(j)
}

// RestoreCheckpoint rolls replica j's oracle state back to a checkpoint:
// applied and known-past revert to the frozen sets and the in-flight
// (missing) index is recomputed against every update issued so far —
// updates issued while the replica was down correctly reappear as
// missing and must be re-applied for liveness. Update metadata (issuer,
// register, causal past) is global and survives untouched.
func (t *Tracker) RestoreCheckpoint(j sharegraph.ReplicaID, ck *ReplicaCheckpoint) error {
	return t.impl.RestoreCheckpoint(j, ck)
}

func (t *tracker[S]) ExportCheckpoint(j sharegraph.ReplicaID) *ReplicaCheckpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &ReplicaCheckpoint{
		Replica: j,
		Issued:  len(t.updates),
		applied: t.applied[int(j)].snapshot(),
		known:   t.knownPast[int(j)].snapshot(),
	}
}

func (t *tracker[S]) RestoreCheckpoint(j sharegraph.ReplicaID, ck *ReplicaCheckpoint) error {
	if ck == nil {
		return fmt.Errorf("causality: nil checkpoint")
	}
	if ck.Replica != j {
		return fmt.Errorf("causality: checkpoint of replica %d restored at %d", ck.Replica, j)
	}
	ap, okA := ck.applied.(S)
	kn, okK := ck.known.(S)
	if !okA || !okK {
		return fmt.Errorf("causality: checkpoint from a different set representation than %q", t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-snapshot on the way in so the caller may restore the same
	// checkpoint again after a second crash.
	t.applied[int(j)] = ap.snapshot()
	t.knownPast[int(j)] = kn.snapshot()
	// missing[j] = {updates on registers j stores} ∖ applied[j]. A full
	// recompute is O(updates issued), paid only on restart. The rolled-
	// back applied set also uncovers j's own post-checkpoint issues;
	// replaying them reports OnApply, which requires them missing here.
	m := t.newSet()
	for id, u := range t.updates {
		if t.g.StoresRegister(j, u.reg) && !t.applied[int(j)].has(id) {
			m.set(id)
		}
	}
	t.missing[int(j)] = m
	return nil
}
