package causality

import "repro/internal/sharegraph"

// Client-server extensions (Appendix E): clients propagate causal
// dependencies between replicas they access, so the happened-before
// relation ↪′ (Definition 25) gains a clause — an update issued by a
// client depends on everything applied at every replica that client
// previously accessed. The oracle models this with one causal-past set
// per client.

func (t *tracker[S]) OnClientAccess(c sharegraph.ClientID, i sharegraph.ReplicaID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	past := t.clientPast(c)
	// Definition 26, second safety clause: anything in the client's
	// observed past that is still missing at i is a stale access.
	t.missing[int(i)].forEachDiff(past, t.none, func(u int) bool {
		t.violations = append(t.violations, Violation{
			Kind: StaleAccess, Replica: i, Update: UpdateID(u), Missing: UpdateID(u),
		})
		return true
	})
	past.orWith(t.knownPast[int(i)])
}

func (t *tracker[S]) OnClientWrite(c sharegraph.ClientID, i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := UpdateID(len(t.updates))
	preds := t.knownPast[int(i)].snapshot()
	past := t.clientPast(c)
	preds.orWith(past)
	t.updates = append(t.updates, updateInfo[S]{issuer: i, reg: x, preds: preds})
	for _, h := range t.holders(x) {
		if h != i {
			t.missing[int(h)].set(int(id))
		}
	}
	t.applied[int(i)].set(int(id))
	t.knownPast[int(i)].set(int(id))
	t.knownPast[int(i)].orWith(preds)
	past.set(int(id))
	past.orWith(preds)
	return id
}

// clientPast returns (lazily creating) client c's causal-past set.
// Caller holds t.mu.
func (t *tracker[S]) clientPast(c sharegraph.ClientID) S {
	if t.clients == nil {
		t.clients = make(map[sharegraph.ClientID]S)
	}
	b, ok := t.clients[c]
	if !ok {
		b = t.newSet()
		t.clients[c] = b
	}
	return b
}

func (t *tracker[S]) ClientPastSize(c sharegraph.ClientID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clientPast(c).count()
}
