package causality

import "repro/internal/sharegraph"

// Client-server extensions (Appendix E): clients propagate causal
// dependencies between replicas they access, so the happened-before
// relation ↪′ (Definition 25) gains a clause — an update issued by a
// client depends on everything applied at every replica that client
// previously accessed. The oracle models this with one causal-past bitset
// per client.

// OnClientAccess records that replica i accepted (responded to) a request
// from client c, and audits the second safety clause of Definition 26:
// every update in the client's observed past on a register i stores must
// already be applied at i. The client then absorbs i's causal past.
func (t *Tracker) OnClientAccess(c sharegraph.ClientID, i sharegraph.ReplicaID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	past := t.clientPast(c)
	past.forEachDiff(t.relevant[int(i)], t.applied[int(i)], func(u int) bool {
		t.violations = append(t.violations, Violation{
			Kind: StaleAccess, Replica: i, Update: UpdateID(u), Missing: UpdateID(u),
		})
		return true
	})
	past.orWith(t.knownPast[int(i)])
}

// OnClientWrite records that replica i accepted a write of register x from
// client c: the new update's causal past is the union of the replica's and
// the client's pasts (Definition 25, clauses (i) and (ii)); the update is
// applied locally at i as part of issuing, and the client observes it.
// Call OnClientAccess first to audit the access itself.
func (t *Tracker) OnClientWrite(c sharegraph.ClientID, i sharegraph.ReplicaID, x sharegraph.Register) UpdateID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := UpdateID(len(t.updates))
	preds := t.knownPast[int(i)].clone()
	past := t.clientPast(c)
	preds.orWith(past)
	t.updates = append(t.updates, updateInfo{issuer: i, reg: x, preds: preds})
	for _, h := range t.holders(x) {
		t.relevant[int(h)].set(int(id))
	}
	t.applied[int(i)].set(int(id))
	t.knownPast[int(i)].set(int(id))
	t.knownPast[int(i)].orWith(preds)
	past.set(int(id))
	past.orWith(preds)
	return id
}

// clientPast returns (lazily creating) client c's causal-past bitset.
// Caller holds t.mu.
func (t *Tracker) clientPast(c sharegraph.ClientID) *bitset {
	if t.clients == nil {
		t.clients = make(map[sharegraph.ClientID]*bitset)
	}
	b, ok := t.clients[c]
	if !ok {
		b = &bitset{}
		t.clients[c] = b
	}
	return b
}

// ClientPastSize returns the number of updates in client c's observed
// causal past.
func (t *Tracker) ClientPastSize(c sharegraph.ClientID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clientPast(c).count()
}
