package causality

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sharegraph"
)

func TestFig2HappenedBefore(t *testing.T) {
	// Reproduces the Figure 2 example: three replicas r1,r2,r3 (0,1,2).
	// r1 issues u1, u2; r2 issues u3; r3 issues u4. u2 is applied at r2
	// before u3 is issued; u3 is applied at r3; u4 is independent.
	// Expected: u1 ↪ u2, u2 ↪ u3, u1 ↪ u3 (transitivity); u1,u2 ∥ u4.
	g, err := sharegraph.New([][]sharegraph.Register{
		{"a", "b"},
		{"b", "c"},
		{"c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	u1 := tr.OnIssue(0, "a")
	u2 := tr.OnIssue(0, "b")
	tr.OnApply(1, u2)
	u3 := tr.OnIssue(1, "c")
	u4 := tr.OnIssue(2, "d") // issued before u3 reaches r3 → concurrent
	tr.OnApply(2, u3)

	if !tr.HappenedBefore(u1, u2) {
		t.Error("u1 ↪ u2 expected (condition (i))")
	}
	if !tr.HappenedBefore(u2, u3) {
		t.Error("u2 ↪ u3 expected (u2 applied at r2 before r2 issued u3)")
	}
	if !tr.HappenedBefore(u1, u3) {
		t.Error("u1 ↪ u3 expected (condition (ii), transitivity)")
	}
	if !tr.Concurrent(u1, u4) || !tr.Concurrent(u2, u4) {
		t.Error("u1 and u2 should be concurrent with u4")
	}
	if tr.HappenedBefore(u3, u2) {
		t.Error("↪ must be antisymmetric here")
	}
	if tr.Concurrent(u1, u1) {
		t.Error("an update is not concurrent with itself")
	}
	if !tr.Ok() {
		t.Errorf("unexpected violations: %v", tr.Violations())
	}
}

func TestSafetyViolationDetected(t *testing.T) {
	// 0 and 1 share both x and y. 0 writes x (u1) then y (u2): u1 ↪ u2.
	// Applying u2 at replica 1 before u1 violates safety.
	g, err := sharegraph.New([][]sharegraph.Register{
		{"x", "y"},
		{"x", "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	u1 := tr.OnIssue(0, "x")
	u2 := tr.OnIssue(0, "y")
	tr.OnApply(1, u2) // out of causal order
	vs := tr.Violations()
	if len(vs) != 1 || vs[0].Kind != SafetyViolation || vs[0].Missing != u1 || vs[0].Update != u2 {
		t.Fatalf("expected one safety violation (missing u1), got %v", vs)
	}
	if vs[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestSafetyIgnoresForeignRegisters(t *testing.T) {
	// Fig 3 path: 2 does not store x, so applying 1's y-update at 2
	// without 0's x-update is fine even though the x-update ↪ y-update.
	g := sharegraph.Fig3Example()
	tr := NewTracker(g)
	ux := tr.OnIssue(0, "x")
	tr.OnApply(1, ux)
	uy := tr.OnIssue(1, "y")
	tr.OnApply(2, uy)
	if !tr.Ok() {
		t.Errorf("unexpected violations: %v", tr.Violations())
	}
	if !tr.HappenedBefore(ux, uy) {
		t.Error("ux ↪ uy expected")
	}
}

func TestDuplicateAndForeignApply(t *testing.T) {
	g := sharegraph.Fig3Example()
	tr := NewTracker(g)
	u := tr.OnIssue(0, "x")
	tr.OnApply(1, u)
	tr.OnApply(1, u) // duplicate
	tr.OnApply(3, u) // replica 3 does not store x
	tr.OnApply(1, UpdateID(99))
	kinds := map[ViolationKind]int{}
	for _, v := range tr.Violations() {
		kinds[v.Kind]++
	}
	if kinds[DuplicateApply] != 1 || kinds[ForeignApply] != 2 {
		t.Errorf("violations = %v", tr.Violations())
	}
	for _, k := range []ViolationKind{SafetyViolation, DuplicateApply, ForeignApply, LivenessViolation, ViolationKind(99)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestLivenessCheck(t *testing.T) {
	g := sharegraph.Fig3Example()
	tr := NewTracker(g)
	u := tr.OnIssue(0, "x") // x stored at 0 and 1; never applied at 1
	vs := tr.CheckLiveness()
	if len(vs) != 1 || vs[0].Kind != LivenessViolation || vs[0].Replica != 1 || vs[0].Update != u {
		t.Fatalf("expected liveness violation at replica 1, got %v", vs)
	}
	// After applying, a fresh tracker run is clean.
	tr2 := NewTracker(g)
	u2 := tr2.OnIssue(0, "x")
	tr2.OnApply(1, u2)
	if vs := tr2.CheckLiveness(); len(vs) != 0 {
		t.Errorf("unexpected liveness violations: %v", vs)
	}
}

func TestOracleDeliverable(t *testing.T) {
	// Fig5 triangle 0–1–3 sharing y.
	g := sharegraph.Fig5Example()
	tr := NewTracker(g)
	u1 := tr.OnIssue(0, "y")
	tr.OnApply(1, u1)
	u2 := tr.OnIssue(1, "y")
	if tr.OracleDeliverable(3, u2) {
		t.Error("u2 should not be deliverable at 3 before u1")
	}
	if !tr.OracleDeliverable(3, u1) {
		t.Error("u1 should be deliverable at 3")
	}
	tr.OnApply(3, u1)
	if !tr.OracleDeliverable(3, u2) {
		t.Error("u2 should be deliverable at 3 after u1 applied")
	}
	if tr.OracleDeliverable(3, UpdateID(42)) {
		t.Error("unknown update reported deliverable")
	}
}

func TestCausalPastSize(t *testing.T) {
	g, err := sharegraph.New([][]sharegraph.Register{{"x"}, {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	var last UpdateID
	for i := 0; i < 5; i++ {
		last = tr.OnIssue(0, "x")
	}
	if got := tr.CausalPastSize(last); got != 4 {
		t.Errorf("CausalPastSize = %d, want 4", got)
	}
	if tr.CausalPastSize(UpdateID(99)) != 0 {
		t.Error("unknown update should have empty past")
	}
	if tr.NumUpdates() != 5 {
		t.Errorf("NumUpdates = %d, want 5", tr.NumUpdates())
	}
	if !tr.Applied(0, last) || tr.Applied(1, last) {
		t.Error("Applied bookkeeping wrong")
	}
}

// TestHappenedBeforeTransitiveProperty: ↪ is transitively closed in the
// tracker for arbitrary event interleavings on a shared-everything system.
func TestHappenedBeforeTransitiveProperty(t *testing.T) {
	g, err := sharegraph.New([][]sharegraph.Register{
		{"x", "y", "z"}, {"x", "y", "z"}, {"x", "y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	regs := []sharegraph.Register{"x", "y", "z"}
	prop := func(script []uint8) bool {
		tr := NewTracker(g)
		var issued []UpdateID
		for _, b := range script {
			replica := sharegraph.ReplicaID(b % 3)
			if b%2 == 0 || len(issued) == 0 {
				issued = append(issued, tr.OnIssue(replica, regs[(b/4)%3]))
				continue
			}
			// Apply the oldest not-yet-applied update at this replica in
			// causal order (so we never create violations).
			for _, id := range issued {
				if !tr.Applied(replica, id) && tr.OracleDeliverable(replica, id) {
					tr.OnApply(replica, id)
					break
				}
			}
		}
		if !tr.Ok() {
			return false
		}
		// Transitivity: a ↪ b and b ↪ c imply a ↪ c.
		n := tr.NumUpdates()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !tr.HappenedBefore(UpdateID(a), UpdateID(b)) {
					continue
				}
				for c := 0; c < n; c++ {
					if tr.HappenedBefore(UpdateID(b), UpdateID(c)) &&
						!tr.HappenedBefore(UpdateID(a), UpdateID(c)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTrackerConcurrencySafe(t *testing.T) {
	g := sharegraph.FullReplication(4, 2)
	tr := NewTracker(g)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.OnIssue(sharegraph.ReplicaID(r), "r0")
				_ = tr.OracleDeliverable(sharegraph.ReplicaID((r+1)%4), id)
				_ = tr.CausalPastSize(id)
			}
		}(r)
	}
	wg.Wait()
	if tr.NumUpdates() != 800 {
		t.Errorf("NumUpdates = %d, want 800", tr.NumUpdates())
	}
}

func TestBitset(t *testing.T) {
	b := &bitset{}
	b.set(3)
	b.set(200)
	if !b.has(3) || !b.has(200) || b.has(4) || b.has(1000) {
		t.Error("set/has wrong")
	}
	if b.count() != 2 {
		t.Errorf("count = %d, want 2", b.count())
	}
	c := b.clone()
	c.set(5)
	if b.has(5) {
		t.Error("clone shares storage")
	}
	d := &bitset{}
	d.set(64)
	d.orWith(b)
	if !d.has(3) || !d.has(64) || !d.has(200) {
		t.Error("orWith lost bits")
	}
	var got []int
	excl := &bitset{}
	excl.set(64)
	d.forEachAndNot(excl, func(i int) bool { got = append(got, i); return true })
	if len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Errorf("forEachAndNot = %v, want [3 200]", got)
	}
	// Early stop.
	calls := 0
	d.forEachAndNot(&bitset{}, func(i int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
}

func BenchmarkTrackerIssueApply(b *testing.B) {
	g := sharegraph.Ring(8)
	for _, impl := range []struct {
		name string
		mk   func(*sharegraph.Graph) *Tracker
	}{
		{"persistent", NewTracker},
		{"flat", NewFlatTracker},
	} {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			tr := impl.mk(g)
			for n := 0; n < b.N; n++ {
				// Causal pasts grow with execution length; reset
				// periodically so the benchmark measures steady-state cost
				// at a realistic history size rather than an ever-growing
				// one.
				if n%4096 == 0 {
					tr = impl.mk(g)
				}
				id := tr.OnIssue(0, sharegraph.Register("ring0"))
				tr.OnApply(1, id)
			}
		})
	}
}
