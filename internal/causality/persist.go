package causality

// Persistent copy-on-write update sets.
//
// The oracle snapshots a replica's causal past once per issued update
// (Definition 1 fixes preds at issue time). With the flat bitset that
// snapshot is a full clone — O(ops/8) bytes each, O(ops²/8) per audited
// run, ~300 MB at 50k operations — which made every scale benchmark
// either skip auditing or pay the quadratic clone. pset replaces the
// clone with structural sharing: a radix tree of 512-bit chunks where
// snapshot is O(1) (share the root, bump an epoch) and set/orWith copy
// only the path they touch.
//
// Sharing discipline. Every node carries an (owner, epoch) tag. A set p
// may mutate a node in place iff the node's tag matches p's current
// identity and epoch; otherwise the node may be reachable from an older
// snapshot and the mutation copies the path first. snapshot bumps the
// source's epoch — an O(1) freeze — so structure built before the
// snapshot is copy-on-write afterwards, while structure built after it
// is mutated in place again. orWith freezes its source the same way
// before adopting subtree pointers, so a set may absorb another's chunks
// without copying them until either side writes. The owner tag is a
// strong pointer, so a tagged node keeps its owner alive and an owner
// address is never recycled into a false match.
//
// Tail. Update IDs are issued in increasing order, so nearly every set()
// lands in the current highest chunk. That frontier chunk lives by value
// in the pset struct ("tail") rather than in the tree: sets to it are
// plain word stores with no path copy, and snapshot copies it implicitly
// when the struct is copied. The tail is pushed into the tree only when
// the frontier advances past it — once per 512 IDs — which is what makes
// the per-issue snapshot cost O(1) amortized instead of one path copy
// per issue. Invariant: the tree never holds a chunk at or above the
// tail's chunk index, so iteration (tree, then tail) stays ascending.
//
// When flat still wins: executions short enough that the whole ID space
// fits in a few words (a clone is one small memcpy, cheaper than any
// tree discipline), and access patterns that are pure random writes with
// no snapshots — the flat words are contiguous, the tree adds a pointer
// hop per 512 bits. The oracle's workload — sequential issue, O(1)
// snapshot per issue, unions against near-identical pasts — is exactly
// the shape the tree is built for; NewFlatTracker keeps the flat
// representation for differential tests and for tiny runs.

const (
	// pchunkWords is the leaf granularity: 512-bit chunks, small enough
	// that the per-epoch copy of a freshly shared chunk is one cache line
	// pair, large enough that word-parallel intersection amortizes the
	// pointer hop.
	pchunkWords = 8
	// pchunkBits is the number of update IDs one leaf covers.
	pchunkBits = pchunkWords * 64
	// pfanout is the radix of interior nodes; pshift its log2. Height 2
	// covers half a million updates.
	pfanout = 32
	pshift  = 5
)

// pchunk is one leaf's worth of bits.
type pchunk [pchunkWords]uint64

// pnode is a tree node: a leaf (words != nil) or an interior node
// (kids != nil). The (owner, epoch) tag implements the sharing
// discipline above.
type pnode struct {
	owner *pset
	epoch uint64
	kids  *[pfanout]*pnode
	words *pchunk
}

// pset is a persistent bitset over update IDs. The zero value is an
// empty set ready for use. Not safe for concurrent use — the tracker's
// mutex serializes all oracle sets.
type pset struct {
	root   *pnode
	height int // interior levels above the leaves; capacity pfanout^height chunks
	epoch  uint64
	// tail is the frontier chunk, covering [tailBase, tailBase+pchunkBits).
	tailBase int
	tail     pchunk
}

// capChunks returns how many chunks the tree can address at its current
// height.
func (p *pset) capChunks() int { return 1 << (pshift * p.height) }

func (p *pset) tailChunk() int { return p.tailBase / pchunkBits }

// owns reports whether p may mutate n in place.
func (p *pset) owns(n *pnode) bool { return n.owner == p && n.epoch == p.epoch }

// leafBlock and interiorBlock co-allocate a node with its payload array,
// so materializing or copy-on-writing a node is one allocation, not two.
type leafBlock struct {
	n pnode
	w pchunk
}

type interiorBlock struct {
	n pnode
	k [pfanout]*pnode
}

// newNode allocates an owned empty node for the given level.
func (p *pset) newNode(level int) *pnode {
	if level == 0 {
		b := &leafBlock{n: pnode{owner: p, epoch: p.epoch}}
		b.n.words = &b.w
		return &b.n
	}
	return p.newInterior()
}

func (p *pset) newInterior() *pnode {
	b := &interiorBlock{n: pnode{owner: p, epoch: p.epoch}}
	b.n.kids = &b.k
	return &b.n
}

// copyNode returns an owned shallow copy of n (kids pointers stay
// shared; the arrays themselves are duplicated so the copy can diverge).
func (p *pset) copyNode(n *pnode) *pnode {
	if n.words != nil {
		b := &leafBlock{n: pnode{owner: p, epoch: p.epoch}, w: *n.words}
		b.n.words = &b.w
		return &b.n
	}
	b := &interiorBlock{n: pnode{owner: p, epoch: p.epoch}, k: *n.kids}
	b.n.kids = &b.k
	return &b.n
}

// growTo raises the tree height until chunk index ci is addressable.
func (p *pset) growTo(ci int) {
	for p.capChunks() <= ci {
		if p.root != nil {
			nr := p.newInterior()
			nr.kids[0] = p.root
			p.root = nr
		}
		p.height++
	}
}

// ownedLeaf returns the leaf for chunk ci, materializing and
// copy-on-writing the path so the caller may mutate it in place.
func (p *pset) ownedLeaf(ci int) *pnode {
	p.growTo(ci)
	switch {
	case p.root == nil:
		p.root = p.newNode(p.height)
	case !p.owns(p.root):
		p.root = p.copyNode(p.root)
	}
	n := p.root
	for level := p.height; level > 0; level-- {
		d := (ci >> (pshift * (level - 1))) & (pfanout - 1)
		k := n.kids[d]
		switch {
		case k == nil:
			k = p.newNode(level - 1)
			n.kids[d] = k
		case !p.owns(k):
			k = p.copyNode(k)
			n.kids[d] = k
		}
		n = k
	}
	return n
}

// pushTail folds the tail chunk into the tree. Callers advance tailBase
// immediately after, restoring the chunk-index invariant.
func (p *pset) pushTail() {
	if p.tail == (pchunk{}) {
		return
	}
	l := p.ownedLeaf(p.tailChunk())
	for k := range l.words {
		l.words[k] |= p.tail[k]
	}
}

// set inserts idx.
func (p *pset) set(idx int) {
	if idx < 0 {
		return
	}
	ci := idx / pchunkBits
	tc := p.tailChunk()
	switch {
	case ci == tc:
		p.tail[(idx%pchunkBits)/64] |= 1 << (uint(idx) % 64)
	case ci > tc:
		p.pushTail()
		p.tailBase = ci * pchunkBits
		p.tail = pchunk{}
		p.tail[(idx%pchunkBits)/64] |= 1 << (uint(idx) % 64)
	default:
		l := p.ownedLeaf(ci)
		l.words[(idx%pchunkBits)/64] |= 1 << (uint(idx) % 64)
	}
}

// clear removes idx, pruning the leaf if it empties so long-lived
// in-flight sets (the tracker's missing sets) stay proportional to
// their live contents.
func (p *pset) clear(idx int) {
	if idx < 0 {
		return
	}
	ci := idx / pchunkBits
	tc := p.tailChunk()
	if ci == tc {
		p.tail[(idx%pchunkBits)/64] &^= 1 << (uint(idx) % 64)
		return
	}
	if ci > tc || p.chunkAt(ci) == nil {
		return
	}
	l := p.ownedLeaf(ci)
	l.words[(idx%pchunkBits)/64] &^= 1 << (uint(idx) % 64)
	if *l.words == (pchunk{}) {
		p.detachLeaf(ci)
	}
}

// detachLeaf removes the (owned, just-emptied) leaf for chunk ci.
func (p *pset) detachLeaf(ci int) {
	if p.height == 0 {
		p.root = nil
		return
	}
	n := p.root
	for level := p.height; level > 1; level-- {
		n = n.kids[(ci>>(pshift*(level-1)))&(pfanout-1)]
	}
	n.kids[ci&(pfanout-1)] = nil
}

// chunkAt returns the chunk covering index ci, or nil. Works on a nil
// receiver (the empty set).
func (p *pset) chunkAt(ci int) *pchunk {
	if p == nil || ci < 0 {
		return nil
	}
	tc := p.tailChunk()
	if ci == tc {
		return &p.tail
	}
	if ci > tc || p.root == nil || ci >= p.capChunks() {
		return nil
	}
	n := p.root
	for level := p.height; level > 0; level-- {
		n = n.kids[(ci>>(pshift*(level-1)))&(pfanout-1)]
		if n == nil {
			return nil
		}
	}
	return n.words
}

// has reports membership of idx.
func (p *pset) has(idx int) bool {
	if p == nil || idx < 0 {
		return false
	}
	c := p.chunkAt(idx / pchunkBits)
	if c == nil {
		return false
	}
	return c[(idx%pchunkBits)/64]&(1<<(uint(idx)%64)) != 0
}

// snapshot returns an independently mutable copy in O(1): the tree is
// shared (the source's epoch bump freezes it on both sides) and the tail
// rides along by value.
func (p *pset) snapshot() *pset {
	p.epoch++
	return &pset{root: p.root, height: p.height, tailBase: p.tailBase, tail: p.tail}
}

// orWith adds every element of src to p, adopting src's subtrees where p
// has none, skipping pointer-equal or already-subsumed chunks, and
// copying only the paths that actually gain bits.
func (p *pset) orWith(src *pset) {
	if src == nil || src == p {
		return
	}
	// Freeze src: adopted nodes may be reached from src too, so src must
	// copy-on-write from here on, exactly as after a snapshot.
	src.epoch++
	stc, dtc := src.tailChunk(), p.tailChunk()
	switch {
	case stc > dtc:
		p.pushTail()
		p.tailBase = src.tailBase
		p.tail = src.tail
	case stc == dtc:
		for k := range p.tail {
			p.tail[k] |= src.tail[k]
		}
	default:
		if src.tail != (pchunk{}) {
			l := p.ownedLeaf(stc)
			for k := range l.words {
				l.words[k] |= src.tail[k]
			}
		}
	}
	if src.root == nil {
		return
	}
	for p.height < src.height {
		if p.root != nil {
			nr := p.newInterior()
			nr.kids[0] = p.root
			p.root = nr
		}
		p.height++
	}
	p.root = p.mergeTop(p.root, src.root, p.height, src.height)
}

// mergeTop merges src (rooted at level sl) into dst (rooted at level
// dl ≥ sl); a shorter src occupies dst's leftmost spine.
func (p *pset) mergeTop(dst, src *pnode, dl, sl int) *pnode {
	if dl == sl {
		return p.mergeNode(dst, src, dl)
	}
	if dst == nil {
		for l := sl; l < dl; l++ {
			w := p.newInterior()
			w.kids[0] = src
			src = w
		}
		return src
	}
	nk := p.mergeTop(dst.kids[0], src, dl-1, sl)
	if nk != dst.kids[0] {
		if !p.owns(dst) {
			dst = p.copyNode(dst)
		}
		dst.kids[0] = nk
	}
	return dst
}

// mergeNode returns the union of dst and src at the given level,
// mutating dst in place where owned and sharing otherwise.
func (p *pset) mergeNode(dst, src *pnode, level int) *pnode {
	if src == nil || dst == src {
		return dst
	}
	if dst == nil {
		return src // adopt the shared subtree wholesale
	}
	if level == 0 {
		changed := false
		for k := 0; k < pchunkWords; k++ {
			if src.words[k]&^dst.words[k] != 0 {
				changed = true
				break
			}
		}
		if !changed {
			return dst
		}
		if !p.owns(dst) {
			dst = p.copyNode(dst)
		}
		for k := 0; k < pchunkWords; k++ {
			dst.words[k] |= src.words[k]
		}
		return dst
	}
	d := dst
	for k := 0; k < pfanout; k++ {
		sk := src.kids[k]
		if sk == nil {
			continue
		}
		nk := p.mergeNode(d.kids[k], sk, level-1)
		if nk != d.kids[k] {
			if !p.owns(d) {
				d = p.copyNode(d)
			}
			d.kids[k] = nk
		}
	}
	return d
}

// eachChunk calls fn for every chunk in ascending chunk-index order
// (tree chunks, then the tail), stopping early if fn returns false.
func (p *pset) eachChunk(fn func(ci int, c *pchunk) bool) {
	if p == nil {
		return
	}
	if p.root != nil && !eachChunkNode(p.root, p.height, 0, fn) {
		return
	}
	fn(p.tailChunk(), &p.tail)
}

func eachChunkNode(n *pnode, level, base int, fn func(int, *pchunk) bool) bool {
	if level == 0 {
		return fn(base, n.words)
	}
	stride := 1 << (pshift * (level - 1))
	for k, kid := range n.kids {
		if kid == nil {
			continue
		}
		if !eachChunkNode(kid, level-1, base+k*stride, fn) {
			return false
		}
	}
	return true
}

// count returns the number of elements.
func (p *pset) count() int {
	n := 0
	p.eachChunk(func(_ int, c *pchunk) bool {
		for _, w := range c {
			n += popcount(w)
		}
		return true
	})
	return n
}

// maskedChunkWord returns c ∩ mask ∩ ¬excl restricted to word k of chunk
// ci — the chunk-level counterpart of the flat bitset's maskedWord, so
// the safety check stays pure word arithmetic.
func maskedChunkWord(c, mask, excl *pchunk, k int) uint64 {
	w := c[k] & mask[k]
	if excl != nil {
		w &^= excl[k]
	}
	return w
}

// intersectsDiff reports whether p ∩ mask ∩ ¬excl is non-empty with
// word-parallel chunk operations. A nil mask or excl is the empty set.
func (p *pset) intersectsDiff(mask, excl *pset) bool {
	if p == nil || mask == nil {
		return false
	}
	found := false
	p.eachChunk(func(ci int, c *pchunk) bool {
		m := mask.chunkAt(ci)
		if m == nil {
			return true
		}
		e := excl.chunkAt(ci)
		for k := 0; k < pchunkWords; k++ {
			if maskedChunkWord(c, m, e, k) != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// forEachDiff calls fn for every element of p ∩ mask ∩ ¬excl in
// ascending order, stopping early if fn returns false. A nil mask or
// excl is the empty set.
func (p *pset) forEachDiff(mask, excl *pset, fn func(idx int) bool) {
	if p == nil || mask == nil {
		return
	}
	p.eachChunk(func(ci int, c *pchunk) bool {
		m := mask.chunkAt(ci)
		if m == nil {
			return true
		}
		e := excl.chunkAt(ci)
		base := ci * pchunkBits
		for k := 0; k < pchunkWords; k++ {
			w := maskedChunkWord(c, m, e, k)
			for w != 0 {
				bit := trailingZeros(w)
				if !fn(base + k*64 + bit) {
					return false
				}
				w &= w - 1
			}
		}
		return true
	})
}
