package causality

import (
	"testing"

	"repro/internal/sharegraph"
)

func TestClientPropagatesHappenedBefore(t *testing.T) {
	// Replicas 0 and 1 share nothing; a client bridging them propagates
	// causality per Definition 25 clause (ii).
	g, err := sharegraph.New([][]sharegraph.Register{{"a"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	tr.OnClientAccess(0, 0)
	u1 := tr.OnClientWrite(0, 0, "a")
	tr.OnClientAccess(0, 1)
	u2 := tr.OnClientWrite(0, 1, "b")
	if !tr.HappenedBefore(u1, u2) {
		t.Error("client bridge should give u1 ↪′ u2")
	}
	if tr.ClientPastSize(0) != 2 {
		t.Errorf("ClientPastSize = %d, want 2", tr.ClientPastSize(0))
	}
	if !tr.Ok() {
		t.Errorf("violations: %v", tr.Violations())
	}
}

func TestStaleAccessDetected(t *testing.T) {
	// Both replicas store a. The client writes a at 0; accessing replica 1
	// before the update propagates is a Definition 26 clause-2 violation.
	g, err := sharegraph.New([][]sharegraph.Register{{"a"}, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	tr.OnClientAccess(0, 0)
	u := tr.OnClientWrite(0, 0, "a")
	tr.OnClientAccess(0, 1) // stale: u not applied at 1
	saw := false
	for _, v := range tr.Violations() {
		if v.Kind == StaleAccess && v.Replica == 1 && v.Update == u {
			saw = true
		}
	}
	if !saw {
		t.Errorf("expected StaleAccess, got %v", tr.Violations())
	}
	if StaleAccess.String() != "stale-access" {
		t.Error("bad kind string")
	}

	// After the update is applied at 1, access is clean.
	tr2 := NewTracker(g)
	tr2.OnClientAccess(0, 0)
	u2 := tr2.OnClientWrite(0, 0, "a")
	tr2.OnApply(1, u2)
	tr2.OnClientAccess(0, 1)
	if !tr2.Ok() {
		t.Errorf("clean access flagged: %v", tr2.Violations())
	}
}

func TestClientWritePredsIncludeReplicaPast(t *testing.T) {
	g, err := sharegraph.New([][]sharegraph.Register{{"a", "b"}, {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	u1 := tr.OnIssue(0, "a") // peer-style write at replica 0
	tr.OnClientAccess(1, 0)
	u2 := tr.OnClientWrite(1, 0, "b")
	if !tr.HappenedBefore(u1, u2) {
		t.Error("client write should inherit the replica's past")
	}
}
