package causality

import (
	"math/rand"
	"testing"
)

// collect enumerates a pset's contents up to limit via has().
func collectPset(p *pset, limit int) []int {
	var out []int
	for i := 0; i < limit; i++ {
		if p.has(i) {
			out = append(out, i)
		}
	}
	return out
}

func collectFlat(b *bitset, limit int) []int {
	var out []int
	for i := 0; i < limit; i++ {
		if b.has(i) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPsetBasic(t *testing.T) {
	p := &pset{}
	if p.has(0) || p.count() != 0 {
		t.Fatal("zero value not empty")
	}
	p.set(3)
	p.set(200)    // still within the first tail chunk? no: 200 < 512, same chunk
	p.set(700)    // advances the tail past chunk 0
	p.set(5)      // behind the tail — lands in the tree
	p.set(100000) // forces height growth past one interior level
	for _, want := range []int{3, 5, 200, 700, 100000} {
		if !p.has(want) {
			t.Errorf("missing %d", want)
		}
	}
	for _, not := range []int{0, 4, 6, 199, 701, 99999, 100001, 1 << 30} {
		if p.has(not) {
			t.Errorf("spurious %d", not)
		}
	}
	if got := p.count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	p.clear(5)
	p.clear(700)
	p.clear(12345) // absent: no-op
	if p.has(5) || p.has(700) || p.count() != 3 {
		t.Errorf("clear failed: count=%d", p.count())
	}
	p.clear(-1)
	p.set(-1)
	if p.count() != 3 {
		t.Error("negative indices must be ignored")
	}
}

func TestPsetSnapshotImmutable(t *testing.T) {
	p := &pset{}
	for i := 0; i < 2000; i += 3 {
		p.set(i)
	}
	snap := p.snapshot()
	before := collectPset(snap, 4000)
	// Mutate the source heavily after the snapshot: in-tail, in-tree and
	// frontier-advancing writes, plus clears.
	for i := 0; i < 3000; i++ {
		p.set(i)
	}
	p.clear(3)
	p.set(10000)
	if got := collectPset(snap, 4000); !equalInts(got, before) {
		t.Fatal("snapshot changed when its source was mutated")
	}
	// And the other direction: mutating the snapshot must not leak into
	// the source.
	src := &pset{}
	src.set(7)
	src.set(900)
	s2 := src.snapshot()
	s2.set(8)
	s2.clear(7)
	s2.set(5000)
	if !src.has(7) || src.has(8) || src.has(5000) || src.count() != 2 {
		t.Fatal("snapshot mutation leaked into its source")
	}
}

func TestPsetOrWithAdoptionIsolation(t *testing.T) {
	// orWith adopts subtrees from its source; later mutations on either
	// side must not show through the other.
	src := &pset{}
	for i := 0; i < 1500; i += 2 {
		src.set(i)
	}
	dst := &pset{}
	dst.set(4000) // dst's tail is ahead; src's chunks merge into dst's tree
	dst.orWith(src)
	if dst.count() != 751 || !dst.has(0) || !dst.has(1498) {
		t.Fatalf("union wrong: count=%d", dst.count())
	}
	src.set(9)    // mutate source after adoption
	dst.clear(10) // and destination
	if dst.has(9) {
		t.Error("source mutation leaked into destination")
	}
	if !src.has(10) {
		t.Error("destination mutation leaked into source")
	}
}

func TestPsetOrWithTailCases(t *testing.T) {
	mk := func(idxs ...int) *pset {
		p := &pset{}
		for _, i := range idxs {
			p.set(i)
		}
		return p
	}
	cases := []struct {
		name     string
		dst, src *pset
		want     []int
	}{
		{"src tail ahead", mk(1, 513), mk(2000), []int{1, 513, 2000}},
		{"same tail chunk", mk(520, 530), mk(525), []int{520, 525, 530}},
		{"src tail behind", mk(3000), mk(40), []int{40, 3000}},
		{"into empty", &pset{}, mk(5, 600, 20000), []int{5, 600, 20000}},
		{"from empty", mk(5, 600), &pset{}, []int{5, 600}},
	}
	for _, tc := range cases {
		tc.dst.orWith(tc.src)
		if got := collectPset(tc.dst, 50000); !equalInts(got, tc.want) {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
	// Self-union is a no-op.
	p := mk(1, 2, 3)
	p.orWith(p)
	if p.count() != 3 {
		t.Error("self orWith changed the set")
	}
	p.orWith(nil)
	if p.count() != 3 {
		t.Error("nil orWith changed the set")
	}
}

func TestPsetDiffPrimitives(t *testing.T) {
	b := &pset{}
	mask := &pset{}
	excl := &pset{}
	for _, i := range []int{3, 64, 600, 2000} {
		b.set(i)
	}
	for _, i := range []int{3, 600, 2000, 9999} {
		mask.set(i)
	}
	excl.set(600)
	if !b.intersectsDiff(mask, excl) {
		t.Fatal("intersection should be non-empty")
	}
	var got []int
	b.forEachDiff(mask, excl, func(i int) bool { got = append(got, i); return true })
	if !equalInts(got, []int{3, 2000}) {
		t.Fatalf("forEachDiff = %v, want [3 2000]", got)
	}
	// Early stop.
	calls := 0
	b.forEachDiff(mask, nil, func(i int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
	// nil mask/excl are the empty set; nil receiver intersects nothing.
	if b.intersectsDiff(nil, nil) {
		t.Error("nil mask should intersect nothing")
	}
	if !b.intersectsDiff(mask, nil) {
		t.Error("nil excl should exclude nothing")
	}
	if (*pset)(nil).intersectsDiff(mask, nil) {
		t.Error("nil receiver should intersect nothing")
	}
	excl2 := &pset{}
	for _, i := range []int{3, 2000} {
		excl2.set(i)
	}
	if b.intersectsDiff(mask, func() *pset { e := excl2.snapshot(); e.set(600); return e }()) {
		t.Error("full exclusion should empty the intersection")
	}
}

// TestPsetMatchesFlatRandomOps drives a pset and a flat bitset through
// identical randomized operation streams — frontier-style and random
// sets, clears, unions, snapshots — and requires identical contents at
// every checkpoint, including for every snapshot ever taken (frozen
// copies must never change afterwards).
func TestPsetMatchesFlatRandomOps(t *testing.T) {
	const maxIdx = 60000 // spans three tree heights
	type pair struct {
		p *pset
		b *bitset
	}
	type frozen struct {
		p    *pset
		want *bitset
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pairs := []*pair{{&pset{}, &bitset{}}, {&pset{}, &bitset{}}, {&pset{}, &bitset{}}}
		var snaps []frozen
		frontier := 0
		randIdx := func() int {
			if rng.Intn(3) > 0 { // mostly sequential, like update IDs
				frontier += rng.Intn(40)
				return frontier % maxIdx
			}
			return rng.Intn(maxIdx)
		}
		for step := 0; step < 4000; step++ {
			pr := pairs[rng.Intn(len(pairs))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				i := randIdx()
				pr.p.set(i)
				pr.b.set(i)
			case 5:
				i := randIdx()
				pr.p.clear(i)
				pr.b.clear(i)
			case 6:
				other := pairs[rng.Intn(len(pairs))]
				if other != pr {
					pr.p.orWith(other.p)
					pr.b.orWith(other.b)
				}
			case 7:
				snaps = append(snaps, frozen{p: pr.p.snapshot(), want: pr.b.clone()})
				if rng.Intn(2) == 0 {
					// Snapshots are mutable copies: promote a second,
					// independent one to a live pair so the CoW paths get
					// exercised from both sides while the first stays
					// frozen.
					pairs = append(pairs, &pair{pr.p.snapshot(), pr.b.clone()})
					if len(pairs) > 6 {
						pairs = pairs[1:]
					}
				}
			case 8:
				a, b := pairs[rng.Intn(len(pairs))], pairs[rng.Intn(len(pairs))]
				if got, want := a.p.intersectsDiff(b.p, pr.p), a.b.intersectsDiff(b.b, pr.b); got != want {
					t.Fatalf("seed %d step %d: intersectsDiff %v want %v", seed, step, got, want)
				}
			case 9:
				if got, want := pr.p.count(), pr.b.count(); got != want {
					t.Fatalf("seed %d step %d: count %d want %d", seed, step, got, want)
				}
			}
		}
		for k, pr := range pairs {
			if got, want := collectPset(pr.p, maxIdx), collectFlat(pr.b, maxIdx); !equalInts(got, want) {
				t.Fatalf("seed %d: pair %d diverged (%d vs %d elements)", seed, k, len(got), len(want))
			}
		}
		for k, s := range snaps {
			if got, want := collectPset(s.p, maxIdx), collectFlat(s.want, maxIdx); !equalInts(got, want) {
				t.Fatalf("seed %d: snapshot %d mutated after the fact (%d vs %d elements)", seed, k, len(got), len(want))
			}
		}
	}
}
