package causality

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// The persistent-set tracker must be observationally identical to the
// flat-bitset reference: same UpdateIDs, same violations in the same
// order, same causal-past sizes, same deliverability answers — on clean
// schedules, on schedules that violate safety, and under the
// client-server extension. These tests drive both through identical
// event traces derived from randomized workload.OwnerWrites runs.

// oracleEvent is one oracle call in a replayable trace.
type oracleEvent struct {
	kind    int // 0 issue, 1 apply, 2 client access, 3 client write
	replica sharegraph.ReplicaID
	reg     sharegraph.Register
	// update names the trace-relative index of the issue event an apply
	// refers to (UpdateIDs are allocated identically on both sides, so
	// the nth issued update has the same ID in each tracker).
	update int
	client sharegraph.ClientID
}

// genTrace turns an OwnerWrites script into an oracle event trace:
// issues in per-replica script order, deliveries to holders interleaved
// by rng. With violate set, deliveries go out of causal order and a few
// duplicate and foreign applies are thrown in, so the violation paths
// are compared too; otherwise deliveries follow issue order per holder
// (single-writer registers make that causally safe).
func genTrace(g *sharegraph.Graph, script workload.Script, rng *rand.Rand, violate, clients bool) []oracleEvent {
	n := g.NumReplicas()
	queues := make([][]workload.Op, n)
	for _, op := range script {
		if !op.IsRead {
			queues[op.Replica] = append(queues[op.Replica], op)
		}
	}
	type delivery struct {
		to sharegraph.ReplicaID
		up int
	}
	var trace []oracleEvent
	var pending []delivery
	issued := 0
	for {
		var writers []int
		for r := 0; r < n; r++ {
			if len(queues[r]) > 0 {
				writers = append(writers, r)
			}
		}
		if len(writers) == 0 && len(pending) == 0 {
			break
		}
		if len(writers) > 0 && (len(pending) == 0 || rng.Intn(2) == 0) {
			r := writers[rng.Intn(len(writers))]
			op := queues[r][0]
			queues[r] = queues[r][1:]
			if clients && rng.Intn(8) == 0 {
				c := sharegraph.ClientID(rng.Intn(3))
				trace = append(trace, oracleEvent{kind: 2, replica: op.Replica, client: c})
				trace = append(trace, oracleEvent{kind: 3, replica: op.Replica, reg: op.Reg, client: c})
			} else {
				trace = append(trace, oracleEvent{kind: 0, replica: op.Replica, reg: op.Reg})
			}
			for _, h := range g.Holders(op.Reg) {
				if h != op.Replica {
					pending = append(pending, delivery{to: h, up: issued})
				}
			}
			issued++
			continue
		}
		pick := 0
		if violate {
			pick = rng.Intn(len(pending)) // arbitrary reordering
		}
		d := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		trace = append(trace, oracleEvent{kind: 1, replica: d.to, update: d.up})
		if violate && rng.Intn(40) == 0 {
			trace = append(trace, oracleEvent{kind: 1, replica: d.to, update: d.up}) // duplicate
		}
		if violate && rng.Intn(40) == 0 {
			trace = append(trace, oracleEvent{kind: 1, replica: d.to, update: issued + 1000}) // foreign
		}
	}
	return trace
}

// replay drives one tracker through a trace, returning the IDs the
// issue events produced.
func replay(tr *Tracker, trace []oracleEvent) []UpdateID {
	var ids []UpdateID
	for _, ev := range trace {
		switch ev.kind {
		case 0:
			ids = append(ids, tr.OnIssue(ev.replica, ev.reg))
		case 1:
			id := UpdateID(ev.update + 1000000) // unknown → foreign
			if ev.update < len(ids) {
				id = ids[ev.update]
			}
			tr.OnApply(ev.replica, id)
		case 2:
			tr.OnClientAccess(ev.client, ev.replica)
		case 3:
			ids = append(ids, tr.OnClientWrite(ev.client, ev.replica, ev.reg))
		}
	}
	return ids
}

func TestTrackerDifferentialFlatVsPersistent(t *testing.T) {
	graphs := []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"ring8", sharegraph.Ring(8)},
		{"fig5", sharegraph.Fig5Example()},
		{"randomk", sharegraph.RandomK(10, 30, 3, 5)},
	}
	for _, tc := range graphs {
		for seed := int64(1); seed <= 6; seed++ {
			for _, mode := range []struct {
				name             string
				violate, clients bool
				mustBeClean      bool // in-order, no client hops → no violations
			}{
				{"clean", false, false, true},
				// Client hops can make an in-order delivery trace report
				// genuine stale accesses (the client saw a past the next
				// replica lacks), so only the no-client trace asserts Ok.
				{"clients", false, true, false},
				{"violate", true, true, false},
			} {
				violate := mode.violate
				rng := rand.New(rand.NewSource(seed))
				script := workload.OwnerWrites(tc.g, 400, seed)
				trace := genTrace(tc.g, script, rng, violate, mode.clients)

				flat := NewFlatTracker(tc.g)
				pers := NewTracker(tc.g)
				if flat.Impl() != "flat" || pers.Impl() != "persistent" {
					t.Fatalf("Impl() labels wrong: %q %q", flat.Impl(), pers.Impl())
				}
				fids := replay(flat, trace)
				pids := replay(pers, trace)
				if !reflect.DeepEqual(fids, pids) {
					t.Fatalf("%s seed %d violate=%v: issued IDs differ", tc.name, seed, violate)
				}
				if mode.mustBeClean && !flat.Ok() {
					t.Fatalf("%s seed %d: in-order trace violated safety under the reference oracle: %v",
						tc.name, seed, flat.Violations())
				}
				if fv, pv := flat.Violations(), pers.Violations(); !reflect.DeepEqual(fv, pv) {
					t.Fatalf("%s seed %d violate=%v: violations differ:\nflat: %v\npersistent: %v",
						tc.name, seed, violate, fv, pv)
				}
				if fl, pl := flat.CheckLiveness(), pers.CheckLiveness(); !reflect.DeepEqual(fl, pl) {
					t.Fatalf("%s seed %d violate=%v: liveness verdicts differ", tc.name, seed, violate)
				}
				if flat.NumUpdates() != pers.NumUpdates() {
					t.Fatalf("%s seed %d: NumUpdates differ", tc.name, seed)
				}
				for id := 0; id < flat.NumUpdates(); id++ {
					if f, p := flat.CausalPastSize(UpdateID(id)), pers.CausalPastSize(UpdateID(id)); f != p {
						t.Fatalf("%s seed %d violate=%v: CausalPastSize(%d) = %d vs %d",
							tc.name, seed, violate, id, f, p)
					}
					for r := 0; r < tc.g.NumReplicas(); r++ {
						j := sharegraph.ReplicaID(r)
						if flat.Applied(j, UpdateID(id)) != pers.Applied(j, UpdateID(id)) {
							t.Fatalf("%s seed %d: Applied(%d,%d) differs", tc.name, seed, r, id)
						}
						if flat.OracleDeliverable(j, UpdateID(id)) != pers.OracleDeliverable(j, UpdateID(id)) {
							t.Fatalf("%s seed %d: OracleDeliverable(%d,%d) differs", tc.name, seed, r, id)
						}
					}
				}
				for c := 0; c < 3; c++ {
					cid := sharegraph.ClientID(c)
					if flat.ClientPastSize(cid) != pers.ClientPastSize(cid) {
						t.Fatalf("%s seed %d: ClientPastSize(%d) differs", tc.name, seed, c)
					}
				}
			}
		}
	}
}

// driveOracle replays a straightforward audited run — every write
// applied at every holder in causal order — at the given op count.
func driveOracle(tr *Tracker, g *sharegraph.Graph, script workload.Script) {
	for _, op := range script {
		if op.IsRead {
			continue
		}
		id := tr.OnIssue(op.Replica, op.Reg)
		for _, h := range g.Holders(op.Reg) {
			if h != op.Replica {
				tr.OnApply(h, id)
			}
		}
	}
}

// totalAllocBytes measures the bytes allocated by fn. Benchmarks run
// sequentially, so TotalAlloc deltas are attributable to fn.
func totalAllocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// BenchmarkTrackerMemory compares allocated bytes per audited 10k-op run
// between the flat-clone oracle and the persistent copy-on-write oracle,
// and fails unless the persistent one is strictly cheaper. The flat
// representation clones one causal past per issue — quadratic bytes —
// while the persistent snapshot is O(1) sharing, so the gap widens with
// op count.
func BenchmarkTrackerMemory(b *testing.B) {
	const ops = 10000
	g := sharegraph.Ring(16)
	script := workload.OwnerWrites(g, ops, 1)
	flatB := totalAllocBytes(func() { driveOracle(NewFlatTracker(g), g, script) })
	persB := totalAllocBytes(func() { driveOracle(NewTracker(g), g, script) })
	if persB >= flatB {
		b.Fatalf("persistent oracle allocated %d B/run, flat %d B/run — persistent must be strictly below flat at %d ops",
			persB, flatB, ops)
	}
	b.ReportMetric(float64(flatB), "flatB/run")
	b.ReportMetric(float64(persB), "persB/run")
	b.ReportMetric(float64(flatB)/float64(persB), "flat/pers")
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		driveOracle(NewTracker(g), g, script)
	}
}
