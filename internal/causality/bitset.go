package causality

import "math/bits"

// bitset is a growable set of small non-negative integers used to store
// update-ID sets (causal pasts and applied sets). Executions of tens of
// thousands of updates stay compact: one bit per update ever issued.
type bitset struct {
	words []uint64
}

func (b *bitset) grow(idx int) {
	need := idx/64 + 1
	if need > len(b.words) {
		nw := make([]uint64, need*2)
		copy(nw, b.words)
		b.words = nw
	}
}

// set inserts idx.
func (b *bitset) set(idx int) {
	b.grow(idx)
	b.words[idx/64] |= 1 << (uint(idx) % 64)
}

// clear removes idx.
func (b *bitset) clear(idx int) {
	w := idx / 64
	if w >= 0 && w < len(b.words) {
		b.words[w] &^= 1 << (uint(idx) % 64)
	}
}

// has reports membership of idx.
func (b *bitset) has(idx int) bool {
	w := idx / 64
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(idx)%64)) != 0
}

// orWith adds every element of other to b.
func (b *bitset) orWith(other *bitset) {
	if len(other.words) > len(b.words) {
		nw := make([]uint64, len(other.words))
		copy(nw, b.words)
		b.words = nw
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// clone returns an independent copy.
func (b *bitset) clone() *bitset {
	out := &bitset{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// snapshot returns an independent copy. The flat representation has no
// structural sharing, so this is the O(n) clone the persistent pset
// replaces — kept as the differential-testing reference.
func (b *bitset) snapshot() *bitset { return b.clone() }

// count returns the number of elements.
func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

// forEachAndNot calls fn for every element in b that is NOT in excl,
// stopping early if fn returns false.
func (b *bitset) forEachAndNot(excl *bitset, fn func(idx int) bool) {
	for wi, w := range b.words {
		if wi < len(excl.words) {
			w &^= excl.words[wi]
		}
		for w != 0 {
			bit := trailingZeros(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// maskedWord returns b ∩ mask ∩ ¬excl restricted to word wi.
func maskedWord(b, mask, excl *bitset, wi int) uint64 {
	w := b.words[wi]
	if wi < len(mask.words) {
		w &= mask.words[wi]
	} else {
		return 0
	}
	if wi < len(excl.words) {
		w &^= excl.words[wi]
	}
	return w
}

// emptyFlat substitutes for nil mask/excl arguments so maskedWord can
// index without guards.
var emptyFlat = &bitset{}

// intersectsDiff reports whether b ∩ mask ∩ ¬excl is non-empty, purely
// with word operations — the oracle's per-apply safety test runs on this
// instead of per-element callbacks. A nil mask or excl is the empty set.
func (b *bitset) intersectsDiff(mask, excl *bitset) bool {
	if mask == nil {
		return false
	}
	if excl == nil {
		excl = emptyFlat
	}
	for wi := range b.words {
		if maskedWord(b, mask, excl, wi) != 0 {
			return true
		}
	}
	return false
}

// forEachDiff calls fn for every element of b ∩ mask ∩ ¬excl, stopping
// early if fn returns false. A nil mask or excl is the empty set.
func (b *bitset) forEachDiff(mask, excl *bitset, fn func(idx int) bool) {
	if mask == nil {
		return
	}
	if excl == nil {
		excl = emptyFlat
	}
	for wi := range b.words {
		w := maskedWord(b, mask, excl, wi)
		for w != 0 {
			bit := trailingZeros(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
