package lowerbound

import (
	"math"
	"testing"

	"repro/internal/sharegraph"
)

// TestTreeLowerBoundTight is experiment E8: on trees the conflict-clique
// bound is m^(2N_i) — 2·N_i·log m bits — and the algorithm's timestamp has
// exactly 2·N_i counters, so the bound is tight.
func TestTreeLowerBoundTight(t *testing.T) {
	graphs := map[string]*sharegraph.Graph{
		"line3": sharegraph.Line(3),
		"star4": sharegraph.Star(4),
		"tree5": sharegraph.Tree([]int{0, 0, 0, 1, 1}),
	}
	for name, g := range graphs {
		for i := 0; i < g.NumReplicas(); i++ {
			r := sharegraph.ReplicaID(i)
			b := ComputeBound(g, r, 2)
			if !b.Verified {
				t.Errorf("%s replica %d: conflict family failed verification", name, i)
				continue
			}
			want := TreeClosedForm(g, r)
			if b.Exponent != want {
				t.Errorf("%s replica %d: exponent = %d, want 2·N_i = %d", name, i, b.Exponent, want)
			}
			if !b.Tight() {
				t.Errorf("%s replica %d: bound not tight: %s", name, i, b)
			}
			wantBits := float64(want) // log2(2) = 1
			if math.Abs(b.Bits()-wantBits) > 1e-9 {
				t.Errorf("%s replica %d: bits = %v, want %v", name, i, b.Bits(), wantBits)
			}
		}
	}
}

// TestCycleLowerBoundTight is experiment E9: on an n-cycle every replica's
// bound is m^(2n) and the algorithm tracks exactly 2n counters.
func TestCycleLowerBoundTight(t *testing.T) {
	for _, n := range []int{3, 4} {
		g := sharegraph.Ring(n)
		for i := 0; i < n; i++ {
			b := ComputeBound(g, sharegraph.ReplicaID(i), 2)
			if !b.Verified {
				t.Errorf("ring%d replica %d: family failed verification", n, i)
				continue
			}
			if b.Exponent != CycleClosedForm(n) {
				t.Errorf("ring%d replica %d: exponent = %d, want 2n = %d", n, i, b.Exponent, 2*n)
			}
			if !b.Tight() {
				t.Errorf("ring%d replica %d: not tight: %s", n, i, b)
			}
		}
	}
}

func TestConflictsIncidentEdge(t *testing.T) {
	g := sharegraph.Fig3Example()
	s1 := NewPast(g)
	s2 := s1.With(sharegraph.Edge{From: 0, To: 1}, 3)
	if !Conflicts(g, 0, s1, s2) {
		t.Error("pasts differing on an incident edge must conflict")
	}
	if !Conflicts(g, 0, s2, s1) {
		t.Error("conflict relation must be symmetric")
	}
	if Conflicts(g, 0, s1, s1) {
		t.Error("identical pasts conflict")
	}
	// Counts of zero violate condition 1.
	z := s1.With(sharegraph.Edge{From: 2, To: 3}, 0)
	z2 := z.With(sharegraph.Edge{From: 0, To: 1}, 5)
	if Conflicts(g, 0, z, z2) {
		t.Error("pasts with an empty edge restriction conflict")
	}
}

// TestConflictsNonIncidentNeedsLoop: on a tree, pasts differing only on a
// far-away edge do NOT conflict for replica 0 — the information never
// needs to reach it, which is exactly why tree timestamps are small.
func TestConflictsNonIncidentNeedsLoop(t *testing.T) {
	g := sharegraph.Line(4) // 0–1–2–3
	s1 := NewPast(g)
	s2 := s1.With(sharegraph.Edge{From: 2, To: 3}, 4)
	if Conflicts(g, 0, s1, s2) {
		t.Error("tree: non-incident difference should not conflict for replica 0")
	}
	if !Conflicts(g, 2, s1, s2) {
		t.Error("the edge is incident at replica 2; conflict expected there")
	}
}

// TestConflictsLoopClause: on a ring the loop clause makes far-edge
// differences conflict for every replica.
func TestConflictsLoopClause(t *testing.T) {
	g := sharegraph.Ring(4)
	far := sharegraph.Edge{From: 2, To: 3}
	s1 := NewPast(g)
	s2 := s1.With(far, 2)
	if !Conflicts(g, 0, s1, s2) {
		t.Error("ring: far-edge difference should conflict via the loop clause")
	}
	// But when the would-be witness loop's chords carry unequal counts,
	// condition (1) blocks that edge — differing on a second chord edge
	// still conflicts via that chord's own clause, so to isolate the loop
	// clause we check loopClauseHolds directly.
	if !loopClauseHolds(g, 0, far, s1, s2) {
		t.Error("loopClauseHolds should find the ring loop")
	}
}

// TestLoopClauseChordCondition: condition (1) of the loop clause requires
// equal counts on (r_p, l_q) chords. Build a graph where the only witness
// loop for e has a chord, and check that unequal chord counts block it.
func TestLoopClauseChordCondition(t *testing.T) {
	// Diamond with a chord: 0–1, 1–2, 2–3, 3–0 and chord 1–3, each pair
	// sharing a unique register. For i=0 and e=e(2,3): l-path 0→3 is
	// blocked? No — L must end at 3... we want e = e_{r1,ls} with a chord
	// (r_p, l_q). Take e = e(1,2) at i=0: l-path 0→3→2 (L=[3,2]), r-path
	// r1=1→0 (t=1). Chord (r_1=1, l_1=3) = edge 1–3 exists and ≠ e.
	g, err := sharegraph.New([][]sharegraph.Register{
		{"a", "d"},      // 0: a with 1, d with 3
		{"a", "b", "x"}, // 1: b with 2, x with 3
		{"b", "c"},      // 2: c with 3
		{"c", "d", "x"}, // 3
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sharegraph.Edge{From: 1, To: 2}
	s1 := NewPast(g)
	s2 := s1.With(e, 2)
	if !loopClauseHolds(g, 0, e, s1, s2) {
		t.Fatal("witness loop (0,3,2,1,0) should satisfy the clause with equal chords")
	}
	// Unequal counts on the chord e(1,3) violate condition (1).
	chord := sharegraph.Edge{From: 1, To: 3}
	s1c := s1.With(chord, 5)
	s2c := s2.With(chord, 6)
	if loopClauseHolds(g, 0, e, s1c, s2c) {
		t.Error("loop clause should fail when chord counts differ")
	}
}

func TestGreedyChromaticBracketsClique(t *testing.T) {
	g := sharegraph.Line(3)
	tsg := sharegraph.BuildTSGraph(g, 0, sharegraph.LoopOptions{})
	family := enumerateFamily(g, tsg.Edges(), 2)
	chrom := GreedyChromatic(g, 0, family)
	if chrom < len(family) {
		t.Errorf("greedy chromatic %d < clique size %d on a fully conflicting family", chrom, len(family))
	}
}

func TestComputeBoundSampledPath(t *testing.T) {
	// Ring(4) with m=2 gives 2^8 = 256 pasts > verifyCap: the sampled
	// verification path must still succeed.
	g := sharegraph.Ring(4)
	b := ComputeBound(g, 0, 2)
	if b.Exhaustive {
		t.Error("expected sampled verification for a 256-member family")
	}
	if !b.Verified || b.Exponent != 8 {
		t.Errorf("bound = %+v", b)
	}
	if b.String() == "" {
		t.Error("empty string")
	}
}

// TestExactChromaticMatchesClique: on a pairwise-conflicting family the
// conflict graph is complete, so χ equals the family size exactly —
// pinning Theorem 15's bound rather than bracketing it.
func TestExactChromaticMatchesClique(t *testing.T) {
	g := sharegraph.Line(3)
	tsg := sharegraph.BuildTSGraph(g, 0, sharegraph.LoopOptions{})
	family := enumerateFamily(g, tsg.Edges(), 2) // 4 pasts, all conflicting
	if got := ExactChromatic(g, 0, family); got != len(family) {
		t.Errorf("χ = %d, want %d", got, len(family))
	}
	if ExactChromatic(g, 0, nil) != 0 {
		t.Error("empty family should have χ = 0")
	}
}

// TestExactChromaticNonClique: mix in pasts that do NOT conflict (they
// differ only on an edge irrelevant to replica 0) and verify χ < |family|
// while χ ≥ the clique within it.
func TestExactChromaticNonClique(t *testing.T) {
	g := sharegraph.Line(4) // 0–1–2–3; edge 2–3 is invisible to replica 0
	base := NewPast(g)
	incident := sharegraph.Edge{From: 0, To: 1}
	far := sharegraph.Edge{From: 2, To: 3}
	family := []Past{
		base,
		base.With(incident, 2), // conflicts with base
		base.With(far, 2),      // does NOT conflict with base for replica 0
	}
	chrom := ExactChromatic(g, 0, family)
	if chrom != 2 {
		t.Errorf("χ = %d, want 2 (two of three pasts are compatible)", chrom)
	}
	greedy := GreedyChromatic(g, 0, family)
	if greedy < chrom {
		t.Errorf("greedy %d below exact %d", greedy, chrom)
	}
}

func TestPastAccessors(t *testing.T) {
	g := sharegraph.Fig3Example()
	p := NewPast(g)
	e := sharegraph.Edge{From: 0, To: 1}
	if p.Count(e) != 1 {
		t.Errorf("initial count = %d", p.Count(e))
	}
	q := p.With(e, 7)
	if q.Count(e) != 7 || p.Count(e) != 1 {
		t.Error("With must not mutate the receiver")
	}
}

func BenchmarkComputeBoundLine4(b *testing.B) {
	g := sharegraph.Line(4)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ComputeBound(g, 1, 2)
	}
}

func BenchmarkConflicts(b *testing.B) {
	g := sharegraph.Ring(5)
	s1 := NewPast(g)
	s2 := s1.With(sharegraph.Edge{From: 2, To: 3}, 2)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		Conflicts(g, 0, s1, s2)
	}
}
