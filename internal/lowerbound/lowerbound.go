// Package lowerbound implements the Section 4 results of Xiang & Vaidya
// (PODC 2019): lower bounds on the size of the timestamp space σ_i(m)
// (Definition 12) under Constraint 1 (timestamps are a function of the
// causal past).
//
// Causal pasts are modelled per Constraint 1 as per-edge update counts
// (S|e, the updates issued by e.From on registers in X_{e.From,e.To});
// Definition 13's conflict relation is implemented over these counts, with
// the register-level side conditions evaluated exactly on the share graph.
// A family of pairwise-conflicting pasts forms a clique in the conflict
// graph H_i, so its size lower-bounds the chromatic number χ(H_i) and
// hence σ_i(m) (Theorem 15). The package verifies the paper's closed
// forms: m^(2N_i) states (2·N_i·log m bits) on trees, m^(2n) on cycles,
// and tightness against the algorithm's actual timestamp dimensions.
package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/sharegraph"
)

// Past is a causal past under Constraint 1, abstracted to per-edge update
// counts: Counts[e] = |S restricted to edge e|. Definition 13 condition 1
// requires every edge of the share graph to carry at least one update, so
// valid pasts have Counts[e] ≥ 1 everywhere.
type Past struct {
	counts map[sharegraph.Edge]int
}

// NewPast builds a past with count 1 on every share-graph edge.
func NewPast(g *sharegraph.Graph) Past {
	c := make(map[sharegraph.Edge]int)
	for _, e := range g.Edges() {
		c[e] = 1
	}
	return Past{counts: c}
}

// With returns a copy with edge e's count set to n (n ≥ 1).
func (p Past) With(e sharegraph.Edge, n int) Past {
	c := make(map[sharegraph.Edge]int, len(p.counts))
	for k, v := range p.counts {
		c[k] = v
	}
	c[e] = n
	return Past{counts: c}
}

// Count returns the count on edge e.
func (p Past) Count(e sharegraph.Edge) int { return p.counts[e] }

// Conflicts implements Definition 13 for replica i: the pasts conflict if
// both are everywhere non-empty and there is an edge e with S1|e ⊂ S2|e
// (or vice versa; the relation is symmetric) such that either e is
// incident at i, or a simple loop (i, l_1..l_s, r_1..r_t, i) exists with
// e = e_{r_1 l_s}, equal counts on every other (r_p, l_q) chord, and the
// register-level escape condition (2) along the r-path.
func Conflicts(g *sharegraph.Graph, i sharegraph.ReplicaID, s1, s2 Past) bool {
	for _, e := range g.Edges() {
		if s1.counts[e] < 1 || s2.counts[e] < 1 {
			return false // condition 1 fails
		}
	}
	for _, e := range g.Edges() {
		if s1.counts[e] == s2.counts[e] {
			continue
		}
		// Counts differing means (in the executions realizing these
		// pasts) one restriction is a strict prefix of the other.
		if e.From == i || e.To == i {
			return true
		}
		if loopClauseHolds(g, i, e, s1, s2) {
			return true
		}
	}
	return false
}

// loopClauseHolds searches for a simple loop (i, l_1..l_s, r_1..r_t, i)
// with e = e_{r_1, l_s} satisfying Definition 13 condition 2's loop
// clause. The l-path runs from i to l_s = e.To avoiding r_1 = e.From; the
// r-path runs from r_1 back to i avoiding the l-path.
func loopClauseHolds(g *sharegraph.Graph, i sharegraph.ReplicaID, e sharegraph.Edge, s1, s2 Past) bool {
	r1, ls := e.From, e.To
	if !g.HasEdge(e) {
		return false
	}
	n := g.NumReplicas()
	used := make([]bool, n)
	used[i] = true
	used[r1] = true

	var lpath []sharegraph.ReplicaID
	found := false

	chordsEqual := func(rp sharegraph.ReplicaID) bool {
		// Condition (1): counts equal on every chord e_{rp, lq} ≠ e.
		for _, lq := range lpath {
			ch := sharegraph.Edge{From: rp, To: lq}
			if ch == e || !g.HasEdge(ch) {
				continue
			}
			if s1.counts[ch] != s2.counts[ch] {
				return false
			}
		}
		return true
	}

	escapeOK := func(rp, rnext sharegraph.ReplicaID) bool {
		// Condition (2): X_{rp,rnext} − ∪_q X_{rp,lq} ≠ ∅ — an update by
		// rp on the hop register can avoid touching the l-side.
		shared := g.Shared(rp, rnext)
		if shared == nil {
			return false
		}
		excl := make(sharegraph.RegisterSet)
		for _, lq := range lpath {
			if s := g.Shared(rp, lq); s != nil {
				excl.UnionInPlace(s)
			}
		}
		return shared.DiffNonEmpty(excl)
	}

	var extendR func(cur sharegraph.ReplicaID) bool
	extendR = func(cur sharegraph.ReplicaID) bool {
		if !chordsEqual(cur) {
			return false
		}
		if g.HasEdge(sharegraph.Edge{From: cur, To: i}) && escapeOK(cur, i) {
			return true
		}
		for _, nxt := range g.Neighbors(cur) {
			if used[nxt] || nxt == i {
				continue
			}
			if !escapeOK(cur, nxt) {
				continue
			}
			used[nxt] = true
			ok := extendR(nxt)
			used[nxt] = false
			if ok {
				return true
			}
		}
		return false
	}

	var extendL func(cur sharegraph.ReplicaID) bool
	extendL = func(cur sharegraph.ReplicaID) bool {
		for _, nxt := range g.Neighbors(cur) {
			if used[nxt] {
				continue
			}
			if nxt == ls {
				lpath = append(lpath, ls)
				used[ls] = true
				if extendR(r1) {
					found = true
				}
				used[ls] = false
				lpath = lpath[:len(lpath)-1]
				if found {
					return true
				}
				continue
			}
			used[nxt] = true
			lpath = append(lpath, nxt)
			ok := extendL(nxt)
			lpath = lpath[:len(lpath)-1]
			used[nxt] = false
			if ok {
				return true
			}
		}
		return false
	}

	extendL(i)
	return found
}

// Bound is a conflict-clique lower bound on σ_i(m) together with the
// matching upper bound from the paper's algorithm.
type Bound struct {
	Replica sharegraph.ReplicaID
	M       int
	// Exponent k: a verified family of m^k pairwise-conflicting causal
	// pasts exists, so σ_i(m) ≥ m^k and the timestamp needs at least
	// k·log2(m) bits.
	Exponent int
	// Verified is true when every pair in the family was checked against
	// Definition 13 (exhaustive for small families, else sampled).
	Verified bool
	// Exhaustive is true when verification covered all pairs.
	Exhaustive bool
	// AlgorithmEntries is |E_i|: the paper's algorithm uses timestamps
	// ranging over ≤ (m·R+1)^|E_i| values, i.e. ~|E_i|·log m bits.
	AlgorithmEntries int
}

// Bits returns the lower bound in bits, k·log2(m).
func (b Bound) Bits() float64 { return float64(b.Exponent) * math.Log2(float64(b.M)) }

// Tight reports whether the algorithm's timestamp dimension matches the
// lower-bound exponent — the paper's tightness claim for trees, cycles
// and full replication.
func (b Bound) Tight() bool { return b.Exponent == b.AlgorithmEntries }

// String renders the bound.
func (b Bound) String() string {
	return fmt.Sprintf("replica %d: σ(m=%d) ≥ %d^%d (%.1f bits), algorithm uses %d counters (tight=%v)",
		b.Replica, b.M, b.M, b.Exponent, b.Bits(), b.AlgorithmEntries, b.Tight())
}

// verifyCap bounds exhaustive pairwise verification: families larger than
// this have a deterministic sample of pairs checked instead.
const verifyCap = 100

// ComputeBound builds the conflict-clique family for replica i: all
// per-edge count assignments in {1..m} over the edges of i's timestamp
// graph E_i (other edges fixed at 1), verifies pairwise conflicts per
// Definition 13, and returns the resulting bound.
func ComputeBound(g *sharegraph.Graph, i sharegraph.ReplicaID, m int) Bound {
	tsg := sharegraph.BuildTSGraph(g, i, sharegraph.LoopOptions{})
	edges := tsg.Edges()
	k := len(edges)
	b := Bound{Replica: i, M: m, Exponent: k, AlgorithmEntries: tsg.Len()}

	family := enumerateFamily(g, edges, m)
	if len(family) <= verifyCap {
		b.Exhaustive = true
		b.Verified = true
		for a := 0; a < len(family) && b.Verified; a++ {
			for c := a + 1; c < len(family); c++ {
				if !Conflicts(g, i, family[a], family[c]) {
					b.Verified = false
					b.Exponent = 0
					break
				}
			}
		}
		return b
	}
	// Deterministic sample: consecutive pairs plus a strided sweep.
	b.Verified = true
	stride := len(family)/verifyCap + 1
	for a := 0; a < len(family)-1 && b.Verified; a += stride {
		for c := a + 1; c < len(family); c += stride {
			if !Conflicts(g, i, family[a], family[c]) {
				b.Verified = false
				b.Exponent = 0
			}
		}
	}
	return b
}

// enumerateFamily lists every count assignment in {1..m}^edges over the
// base past (1 everywhere else).
func enumerateFamily(g *sharegraph.Graph, edges []sharegraph.Edge, m int) []Past {
	base := NewPast(g)
	family := []Past{base}
	for _, e := range edges {
		next := make([]Past, 0, len(family)*m)
		for _, p := range family {
			for v := 1; v <= m; v++ {
				next = append(next, p.With(e, v))
			}
		}
		family = next
	}
	return family
}

// GreedyChromatic computes a greedy-colouring upper estimate of the
// chromatic number of the conflict graph over the given pasts. Together
// with the clique size it brackets χ(H_i) on small instances.
func GreedyChromatic(g *sharegraph.Graph, i sharegraph.ReplicaID, pasts []Past) int {
	colors := make([]int, len(pasts))
	maxColor := 0
	for a := range pasts {
		used := make(map[int]bool)
		for b := 0; b < a; b++ {
			if Conflicts(g, i, pasts[a], pasts[b]) {
				used[colors[b]] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[a] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return maxColor
}

// ExactChromatic computes the exact chromatic number of the conflict
// graph over the given pasts by branch and bound (DSATUR-ordered),
// feasible for a few dozen vertices. Theorem 15 states σ_i(m) ≥ χ(H_i);
// on instances small enough to solve exactly, this pins the bound rather
// than bracketing it between clique and greedy estimates.
func ExactChromatic(g *sharegraph.Graph, i sharegraph.ReplicaID, pasts []Past) int {
	n := len(pasts)
	if n == 0 {
		return 0
	}
	adj := make([][]bool, n)
	for a := range adj {
		adj[a] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if Conflicts(g, i, pasts[a], pasts[b]) {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	best := GreedyChromatic(g, i, pasts) // upper bound to prune against
	colors := make([]int, n)

	var solve func(v, used int) bool
	solve = func(v, used int) bool {
		if used >= best {
			return false
		}
		if v == n {
			best = used
			return true
		}
		// Pick the uncoloured vertex with the most distinctly-coloured
		// conflicting neighbours (DSATUR), breaking ties by degree.
		pick, bestSat, bestDeg := -1, -1, -1
		for u := 0; u < n; u++ {
			if colors[u] != 0 {
				continue
			}
			sat := make(map[int]bool)
			deg := 0
			for w := 0; w < n; w++ {
				if !adj[u][w] {
					continue
				}
				deg++
				if colors[w] != 0 {
					sat[colors[w]] = true
				}
			}
			if len(sat) > bestSat || (len(sat) == bestSat && deg > bestDeg) {
				pick, bestSat, bestDeg = u, len(sat), deg
			}
		}
		improved := false
		for c := 1; c <= used+1 && c < best+1; c++ {
			ok := true
			for w := 0; w < n; w++ {
				if adj[pick][w] && colors[w] == c {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			colors[pick] = c
			nu := used
			if c > used {
				nu = c
			}
			if solve(v+1, nu) {
				improved = true
			}
			colors[pick] = 0
		}
		return improved
	}
	solve(0, 0)
	return best
}

// TreeClosedForm returns the paper's closed-form exponent for a tree share
// graph: 2·N_i (i.e. 2·N_i·log m bits).
func TreeClosedForm(g *sharegraph.Graph, i sharegraph.ReplicaID) int {
	return 2 * g.Degree(i)
}

// CycleClosedForm returns the closed-form exponent for a cycle of n
// replicas: 2n for every replica.
func CycleClosedForm(n int) int { return 2 * n }
