package clientserver

import (
	"testing"
	"testing/quick"

	"repro/internal/causality"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// bridgeSystem: replicas 0–1 share a, 2–3 share b, 0–3 share c; client 0
// accesses {1, 2} (the causal bridge), client 1 accesses {0, 3}.
func bridgeSystem(t *testing.T, augmented bool) *System {
	t.Helper()
	g, err := sharegraph.New([][]sharegraph.Register{
		{"a", "c"},
		{"a", "p1"},
		{"b", "p2"},
		{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Client 1 lists replica 3 first so PickReplica routes register c
	// there (replica order expresses client preference).
	aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment{{1, 2}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if augmented {
		return NewSystem(aug)
	}
	return NewSystemWithPlainGraphs(aug)
}

// TestClientBridgePropagatesDependency is the Appendix E headline: a
// client writing at two replicas that share nothing creates a causal
// chain that must block a transitively dependent update elsewhere. With
// augmented timestamp graphs the system is safe; with plain Definition 5
// graphs the same schedule violates safety.
func TestClientBridgePropagatesDependency(t *testing.T) {
	run := func(sys *System) []causality.Violation {
		// Client 0 writes a at replica 1 (u1 → replica 0, delayed), then
		// writes b at replica 2 (u2 → replica 3). Replica 3 applies u2,
		// then client 1 writes c at replica 3 (u3 → replica 0). u3 arrives
		// at replica 0 before u1: u1 ↪′ u2 ↪′ u3 and a ∈ X_0, so applying
		// u3 first violates safety.
		scripts := [][]ClientOp{
			{{Reg: "a"}, {Reg: "b"}},
			{{Reg: "c"}},
		}
		// Schedule choices, traced through Run's choice enumeration:
		//  1. client0 issues write(a)@1     → pool [req(a@1)]
		//  2. deliver req(a@1): served      → pool [upd(a→0), resp→c0]
		//  3. deliver resp→c0               → pool [upd(a→0)]
		//  4. client0 issues write(b)@2     → pool [upd(a→0), req(b@2)]
		//  5. deliver req(b@2)              → pool [upd(a→0), upd(b→3), resp→c0]
		//  6. deliver upd(b→3)              → applied at 3
		//  7. client1 issues write(c)@3     → ... wait: client1 idle all along.
		// Client1 is idle from the start, so the idle list is [c0, c1] at
		// step 1 and choices shift; use explicit picks computed below.
		res, err := Run(RunConfig{
			Sys:     sys,
			Scripts: scripts,
			// Step-by-step picks (idle clients enumerate before pool):
			//  s1: idle=[c0,c1] pool=[]                pick 0 → c0 write(a)@1
			//  s2: idle=[c1] pool=[req(a@1)]           pick 1 → serve req: upd(a→0), resp
			//  s3: idle=[c1] pool=[upd(a→0),resp]      pick 2 → resp to c0
			//  s4: idle=[c0,c1] pool=[upd(a→0)]        pick 0 → c0 write(b)@2
			//  s5: idle=[c1] pool=[upd(a→0),req(b@2)]  pick 2 → serve req: upd(b→3), resp
			//  s6: idle=[c1] pool=[upd(a→0),upd(b→3),resp] pick 2 → apply b at 3
			//  s7: idle=[c1] pool=[upd(a→0),resp]      pick 0 → c1 write(c)@3
			//  s8: idle=[] pool=[upd(a→0),resp,req(c@3)] pick 2 → serve: upd(c→0), resp
			//  s9: idle=[] pool=[upd(a→0),resp,upd(c→0),resp] pick 2 → deliver upd(c→0) FIRST
			//  rest: FIFO drains upd(a→0), responses.
			Sched: transport.NewScripted(0, 1, 2, 0, 2, 2, 0, 2, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Violations
	}

	if vs := run(bridgeSystem(t, true)); len(vs) != 0 {
		t.Errorf("augmented system violated consistency: %v", vs)
	}
	vs := run(bridgeSystem(t, false))
	sawSafety := false
	for _, v := range vs {
		if v.Kind == causality.SafetyViolation {
			sawSafety = true
		}
	}
	if !sawSafety {
		t.Errorf("plain graphs should violate safety on the bridge schedule; got %v", vs)
	}
}

// TestReadYourWritesAcrossReplicas: after writing a at replica 1, a client
// read of a at... replica 1 is the only holder the client can reach, but
// client 1 (accessing replicas 0 and 3) must see the write of c propagate:
// J1 blocks its read at replica 0 until the c-update arrives.
func TestJ1BlocksStaleRead(t *testing.T) {
	sys := bridgeSystem(t, true)
	servers := []*Server{NewServer(sys, 0), NewServer(sys, 1), NewServer(sys, 2), NewServer(sys, 3)}
	client := NewClient(sys, 1) // accesses replicas 0 and 3

	// Client writes c at replica 3 (c stored at 0 and 3).
	req, err := client.NewRequest("c", 9, false)
	if err != nil {
		t.Fatal(err)
	}
	if req.Replica != 0 {
		// PickReplica chooses the lowest-numbered holder (replica 0); force
		// replica 3 to stage the propagation scenario.
		req.Replica = 3
	}
	req.Replica = 3
	var out Outcome
	servers[3].HandleRequest(req, &out)
	if len(out.Responses) != 1 || len(out.Updates) != 1 {
		t.Fatalf("write outcome: %+v", out)
	}
	client.AbsorbResponse(out.Responses[0])

	// Read c at replica 0 before the update arrives: J1 must buffer it.
	read, err := client.NewRequest("c", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	read.Replica = 0
	var out0 Outcome
	servers[0].HandleRequest(read, &out0)
	if len(out0.Responses) != 0 || servers[0].PendingRequests() != 1 {
		t.Fatalf("stale read served immediately: %+v", out0)
	}

	// Deliver the c-update to replica 0: the buffered read unblocks and
	// returns the written value.
	upd := out.Updates[0]
	if upd.To != 0 {
		t.Fatalf("update destination = %d, want 0", upd.To)
	}
	out0.Reset()
	servers[0].HandleUpdate(upd, &out0)
	if len(out0.Responses) != 1 {
		t.Fatalf("buffered read did not unblock: %+v", out0)
	}
	if out0.Responses[0].Val != 9 || !out0.Responses[0].IsRead {
		t.Errorf("read response = %+v, want value 9", out0.Responses[0])
	}
	if servers[0].PendingRequests() != 0 {
		t.Error("request still buffered")
	}
}

func TestClientServerRandomSweep(t *testing.T) {
	// Random scripts over the bridge system under random schedules must
	// always be clean with augmented graphs.
	sys := bridgeSystem(t, true)
	prop := func(seed int64) bool {
		rng := transport.NewRandom(seed)
		regsByClient := [][]sharegraph.Register{{"a", "b", "p1", "p2"}, {"a", "b", "c"}}
		scripts := make([][]ClientOp, 2)
		for c := range scripts {
			n := 3 + rng.Pick(8)
			for k := 0; k < n; k++ {
				scripts[c] = append(scripts[c], ClientOp{
					Reg:    regsByClient[c][rng.Pick(len(regsByClient[c]))],
					IsRead: rng.Pick(4) == 0,
				})
			}
		}
		res, err := Run(RunConfig{Sys: sys, Scripts: scripts, Sched: transport.NewRandom(seed ^ 0x77)})
		if err != nil {
			t.Log(err)
			return false
		}
		if !res.Ok() {
			t.Logf("seed %d: %+v", seed, res)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClientServerReducesToPeerToPeer(t *testing.T) {
	// One client pinned to each replica: the augmented graph equals the
	// plain share graph, and runs are clean.
	g := sharegraph.Fig5Example()
	aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(aug)
	plain := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
	for i, tg := range sys.ReplicaGraphs {
		if tg.Len() != plain[i].Len() {
			t.Errorf("replica %d: |Ê_i| = %d, want |E_i| = %d (single-replica clients add nothing)",
				i, tg.Len(), plain[i].Len())
		}
	}
	scripts := [][]ClientOp{
		{{Reg: "y"}, {Reg: "a"}},
		{{Reg: "x"}, {Reg: "y", IsRead: true}},
		{{Reg: "x"}, {Reg: "z"}},
		{{Reg: "w"}, {Reg: "z"}},
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(RunConfig{Sys: sys, Scripts: scripts, Sched: transport.NewRandom(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Errorf("seed %d: %+v", seed, res)
		}
	}
}

// TestGeoSocialSweep runs a larger client-server deployment — the
// examples/geosocial placement — across many random schedules, checking
// Definition 26 end to end with three roaming clients.
func TestGeoSocialSweep(t *testing.T) {
	g, err := sharegraph.New([][]sharegraph.Register{
		{"global", "tech", "eu-board"},
		{"global", "sports", "us-board"},
		{"tech", "sports", "asia-board", "oceania"},
		{"oceania", "aus-board"},
	})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(aug)
	regs := [][]sharegraph.Register{
		{"global", "tech", "eu-board", "sports"},
		{"global", "sports", "tech", "oceania"},
		{"tech", "oceania", "aus-board", "sports"},
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := transport.NewRandom(seed)
		scripts := make([][]ClientOp, 3)
		for c := range scripts {
			for k := 0; k < 4+rng.Pick(6); k++ {
				scripts[c] = append(scripts[c], ClientOp{
					Reg:    regs[c][rng.Pick(len(regs[c]))],
					IsRead: rng.Pick(3) == 0,
				})
			}
		}
		res, err := Run(RunConfig{Sys: sys, Scripts: scripts, Sched: transport.NewRandom(seed ^ 0xbeef)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if res.Responses != res.Requests {
			t.Fatalf("seed %d: %d responses for %d requests", seed, res.Responses, res.Requests)
		}
	}
}

func TestRunValidationAndAccessErrors(t *testing.T) {
	sys := bridgeSystem(t, true)
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(RunConfig{Sys: sys, Sched: transport.FIFOScheduler{},
		Scripts: [][]ClientOp{{}, {}, {}}}); err == nil {
		t.Error("too many scripts accepted")
	}
	// Client 0 (replicas 1,2) cannot reach register c (stored at 0,3).
	if _, err := Run(RunConfig{Sys: sys, Sched: transport.FIFOScheduler{},
		Scripts: [][]ClientOp{{{Reg: "c"}}}}); err == nil {
		t.Error("unreachable register accepted")
	}
	client := NewClient(sys, 0)
	if _, err := client.NewRequest("c", 1, false); err == nil {
		t.Error("NewRequest for unreachable register succeeded")
	}
	if client.ID() != 0 {
		t.Error("bad client id")
	}
	if client.MetadataEntries() == 0 {
		t.Error("client universe empty")
	}
	srv := NewServer(sys, 0)
	if srv.ID() != 0 || srv.MetadataEntries() == 0 {
		t.Error("bad server identity")
	}
	if srv.HandleRequest(Request{Replica: 2}, &Outcome{}) {
		t.Error("misrouted request processed")
	}
	if _, ok := srv.Read("b"); ok {
		t.Error("Read of unstored register ok")
	}
	if len(srv.Timestamp()) != srv.MetadataEntries() {
		t.Error("timestamp length mismatch")
	}
}
