package clientserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
)

// LiveSystem runs the client-server architecture with real concurrency:
// servers are mutex-protected state machines, inter-replica updates travel
// on their own goroutines with jittered delays (non-FIFO, per the system
// model), and client calls block until the server's predicate J1/J2 admits
// them — including requests buffered behind missing causal dependencies.
type LiveSystem struct {
	sys     *System
	tracker *causality.Tracker
	servers []*liveServer

	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int
	closed      bool
	wg          sync.WaitGroup
	seq         atomic.Uint64
	maxDelay    time.Duration

	respMu    sync.Mutex
	respChans map[sharegraph.ClientID]chan Response
}

type liveServer struct {
	mu sync.Mutex
	s  *Server
}

// NewLive starts a live deployment of the system.
func NewLive(sys *System) *LiveSystem {
	ls := &LiveSystem{
		sys:       sys,
		tracker:   causality.NewTracker(sys.Aug.G),
		servers:   make([]*liveServer, sys.Aug.G.NumReplicas()),
		maxDelay:  time.Millisecond,
		respChans: make(map[sharegraph.ClientID]chan Response),
	}
	ls.cond = sync.NewCond(&ls.mu)
	for i := range ls.servers {
		ls.servers[i] = &liveServer{s: NewServer(sys, sharegraph.ReplicaID(i))}
	}
	return ls
}

// Tracker exposes the auditing oracle.
func (ls *LiveSystem) Tracker() *causality.Tracker { return ls.tracker }

// Client returns a handle for client c. A handle issues one operation at
// a time (matching the Appendix E client prototype, which awaits each
// response); it is not safe for concurrent use, but distinct clients may
// operate concurrently.
func (ls *LiveSystem) Client(c sharegraph.ClientID) *LiveClient {
	ls.respMu.Lock()
	defer ls.respMu.Unlock()
	if _, ok := ls.respChans[c]; !ok {
		ls.respChans[c] = make(chan Response, 1)
	}
	return &LiveClient{ls: ls, c: NewClient(ls.sys, c)}
}

// LiveClient is a synchronous client handle.
type LiveClient struct {
	ls *LiveSystem
	c  *Client
}

// Write performs write(x, v) at the preferred replica, blocking until the
// replica accepts it (predicate J2) and returns its timestamp.
func (lc *LiveClient) Write(x sharegraph.Register, v core.Value) error {
	return lc.do(x, v, false)
}

// Read performs read(x), blocking until the replica's state satisfies the
// client's timestamp (predicate J1), and returns the register value.
func (lc *LiveClient) Read(x sharegraph.Register) (core.Value, error) {
	resp, err := lc.doResp(x, 0, true)
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

func (lc *LiveClient) do(x sharegraph.Register, v core.Value, isRead bool) error {
	_, err := lc.doResp(x, v, isRead)
	return err
}

func (lc *LiveClient) doResp(x sharegraph.Register, v core.Value, isRead bool) (Response, error) {
	ls := lc.ls
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		return Response{}, fmt.Errorf("clientserver: live system closed")
	}
	ls.mu.Unlock()

	req, err := lc.c.NewRequest(x, v, isRead)
	if err != nil {
		return Response{}, err
	}
	srv := ls.servers[req.Replica]
	srv.mu.Lock()
	out := srv.s.HandleRequest(req)
	ls.processOutcome(srv.s, out)
	srv.mu.Unlock()

	ls.respMu.Lock()
	ch := ls.respChans[lc.c.ID()]
	ls.respMu.Unlock()
	resp := <-ch // served immediately or unblocked by a later update
	lc.c.AbsorbResponse(resp)
	return resp, nil
}

// processOutcome audits the ordered event trail, stamps oracle IDs onto
// outgoing updates, dispatches them, and routes responses to waiting
// clients. Callers hold the originating server's lock, preserving the
// per-server event order the oracle requires.
func (ls *LiveSystem) processOutcome(server *Server, out *Outcome) {
	if out == nil {
		return
	}
	for _, ev := range out.Events {
		switch {
		case ev.Apply != nil:
			ls.tracker.OnApply(server.ID(), ev.Apply.OracleID)
		case ev.Accept != nil:
			acc := ev.Accept
			ls.tracker.OnClientAccess(acc.Client, acc.Replica)
			if acc.IsWrite {
				id := ls.tracker.OnClientWrite(acc.Client, acc.Replica, acc.Reg)
				for k := 0; k < acc.NumUpdates; k++ {
					out.Updates[acc.UpdateSeq+k].OracleID = id
				}
			}
		}
	}
	if len(out.Updates) > 0 {
		ls.mu.Lock()
		ls.outstanding += len(out.Updates)
		ls.mu.Unlock()
		for i := range out.Updates {
			u := out.Updates[i]
			ls.wg.Add(1)
			go ls.deliver(u)
		}
	}
	for _, resp := range out.Responses {
		ls.respMu.Lock()
		ch, ok := ls.respChans[resp.Client]
		ls.respMu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (ls *LiveSystem) deliver(u UpdateMsg) {
	defer ls.wg.Done()
	if ls.maxDelay > 0 {
		z := ls.seq.Add(1) * 0x9e3779b97f4a7c15
		z ^= z >> 31
		time.Sleep(time.Duration(z % uint64(ls.maxDelay)))
	}
	srv := ls.servers[u.To]
	srv.mu.Lock()
	out := srv.s.HandleUpdate(u)
	ls.processOutcome(srv.s, out)
	srv.mu.Unlock()

	ls.mu.Lock()
	ls.outstanding--
	if ls.outstanding == 0 {
		ls.cond.Broadcast()
	}
	ls.mu.Unlock()
}

// Quiesce blocks until no inter-replica updates are in flight.
func (ls *LiveSystem) Quiesce() {
	ls.mu.Lock()
	for ls.outstanding != 0 {
		ls.cond.Wait()
	}
	ls.mu.Unlock()
}

// Close drains in-flight deliveries and shuts the system down.
func (ls *LiveSystem) Close() {
	ls.mu.Lock()
	ls.closed = true
	ls.mu.Unlock()
	ls.wg.Wait()
}

// CheckLiveness audits update propagation at quiescence.
func (ls *LiveSystem) CheckLiveness() []causality.Violation {
	return ls.tracker.CheckLiveness()
}
