package clientserver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
)

// LiveSystem runs the client-server architecture with real concurrency:
// servers are mutex-protected state machines, inter-replica updates travel
// on the shared worker-pool engine (internal/runtime — the same bounded
// per-replica inboxes, backpressure and seeded delivery shuffle as the
// replica cluster, never a goroutine per message), and client calls block
// until the server's predicate J1/J2 admits them — including requests
// buffered behind missing causal dependencies.
//
// Goroutine budget: engine workers plus one goroutine per concurrently
// blocked client call; at quiescence only the workers remain.
type LiveSystem struct {
	sys     *System
	tracker *causality.Tracker
	servers []*liveServer
	eng     *rt.Engine[UpdateMsg]
	// reg mirrors Options.Obs: nil is the disarmed state, every
	// recording call is nil-safe (the engine-wide metrics discipline).
	reg *obs.Registry

	closed    atomic.Bool
	updates   atomic.Int64
	metaBytes atomic.Int64

	respMu    sync.Mutex
	respChans map[sharegraph.ClientID]chan Response
}

type liveServer struct {
	mu sync.Mutex
	s  *Server
}

// NewLive starts a live deployment of the system with default engine
// options (worker pool sized to GOMAXPROCS, no artificial delivery
// delay). The engine's seeded inbox shuffle already reorders deliveries,
// and with a bounded pool a per-delivery sleep would throttle throughput
// — unlike the old goroutine-per-update dispatcher, whose sleeps
// overlapped without bound. Tests that want messages held in flight
// longer pass Options.MaxDelay explicitly via NewLiveWith.
func NewLive(sys *System) *LiveSystem {
	return NewLiveWith(sys, rt.Options{})
}

// NewLiveWith starts a live deployment with explicit engine options.
// Setting Options.Obs arms metrics collection (see Metrics).
func NewLiveWith(sys *System, opts rt.Options) *LiveSystem {
	ls := newLiveBase(sys)
	ls.reg = opts.Obs
	ls.eng = rt.New(len(ls.servers), opts, ls.deliver)
	return ls
}

// NewLiveChaotic starts a live deployment whose inter-replica transport
// runs through the engine's seeded fault layer: per-edge loss and
// duplication lotteries, partitions and crash parking per the plan.
// Faults are transient (drops retransmit, cuts park until heal), so a
// chaotic system that heals still converges and must pass CheckLiveness.
func NewLiveChaotic(sys *System, opts rt.Options, plan rt.FaultPlan) *LiveSystem {
	ls := newLiveBase(sys)
	ls.reg = opts.Obs
	clone := func(u UpdateMsg) UpdateMsg {
		// The duplicate needs its own timestamp: the original's TS is
		// consumed (recycled) by whichever server ingests it first.
		u.TS = sys.cloneVec(u.TS)
		return u
	}
	ls.eng = rt.NewWithFaults(len(ls.servers), opts, plan, clone, ls.deliver)
	return ls
}

func newLiveBase(sys *System) *LiveSystem {
	ls := &LiveSystem{
		sys:       sys,
		tracker:   causality.NewTracker(sys.Aug.G),
		servers:   make([]*liveServer, sys.Aug.G.NumReplicas()),
		respChans: make(map[sharegraph.ClientID]chan Response),
	}
	for i := range ls.servers {
		ls.servers[i] = &liveServer{s: NewServer(sys, sharegraph.ReplicaID(i))}
	}
	return ls
}

// Faults exposes the fault injector; nil unless built with NewLiveChaotic.
func (ls *LiveSystem) Faults() *rt.FaultInjector[UpdateMsg] { return ls.eng.Faults() }

// StaleDrops sums the duplicate/stale updates every server discarded.
func (ls *LiveSystem) StaleDrops() int {
	total := 0
	for _, srv := range ls.servers {
		srv.mu.Lock()
		total += srv.s.StaleDrops()
		srv.mu.Unlock()
	}
	return total
}

// outcomePool recycles Outcome scratch across client calls and update
// deliveries; dispatch copies everything out of the outcome (updates and
// responses move by value, their vectors by ownership transfer), so an
// outcome is reusable as soon as dispatch returns.
var outcomePool = sync.Pool{New: func() any { return &Outcome{} }}

func getOutcome() *Outcome  { return outcomePool.Get().(*Outcome) }
func putOutcome(o *Outcome) { o.Reset(); outcomePool.Put(o) }

// Tracker exposes the auditing oracle.
func (ls *LiveSystem) Tracker() *causality.Tracker { return ls.tracker }

// Workers returns the delivery worker-pool size.
func (ls *LiveSystem) Workers() int { return ls.eng.Workers() }

// Outstanding returns the number of in-flight inter-replica updates.
func (ls *LiveSystem) Outstanding() int { return ls.eng.Outstanding() }

// UpdatesSent returns the number of inter-replica updates dispatched.
func (ls *LiveSystem) UpdatesSent() int64 { return ls.updates.Load() }

// MetaBytes returns total update-metadata bytes dispatched.
func (ls *LiveSystem) MetaBytes() int64 { return ls.metaBytes.Load() }

// Metrics snapshots the live system in the unified observability
// schema. The legacy totals are always present; the per-replica and
// per-edge breakdowns require an armed registry (Options.Obs).
func (ls *LiveSystem) Metrics() obs.Snapshot {
	s := ls.reg.Snapshot()
	s.Runtime = "clientserver"
	s.Updates = ls.updates.Load()
	s.Messages = ls.updates.Load()
	s.MetaBytes = ls.metaBytes.Load()
	s.Outstanding = int64(ls.eng.Outstanding())
	if f := ls.eng.Faults(); f != nil {
		s.Dropped = int64(f.Dropped())
		s.Duped = int64(f.Duped())
		s.Parked += int64(f.ParkedMessages())
	}
	for i, srv := range ls.servers {
		srv.mu.Lock()
		p := int64(srv.s.PendingUpdates() + srv.s.PendingRequests())
		srv.mu.Unlock()
		if i < len(s.Replicas) {
			s.Replicas[i].Parked = p
		}
		s.Parked += p
	}
	return s
}

// Client returns a handle for client c. A handle issues one operation at
// a time (matching the Appendix E client prototype, which awaits each
// response); it is not safe for concurrent use, but distinct clients may
// operate concurrently.
func (ls *LiveSystem) Client(c sharegraph.ClientID) *LiveClient {
	ls.respMu.Lock()
	defer ls.respMu.Unlock()
	if _, ok := ls.respChans[c]; !ok {
		ls.respChans[c] = make(chan Response, 1)
	}
	return &LiveClient{ls: ls, c: NewClient(ls.sys, c)}
}

// LiveClient is a synchronous client handle.
type LiveClient struct {
	ls *LiveSystem
	c  *Client
}

// Write performs write(x, v) at the preferred replica, blocking until the
// replica accepts it (predicate J2) and returns its timestamp.
func (lc *LiveClient) Write(x sharegraph.Register, v core.Value) error {
	return lc.do(x, v, false)
}

// Read performs read(x), blocking until the replica's state satisfies the
// client's timestamp (predicate J1), and returns the register value.
func (lc *LiveClient) Read(x sharegraph.Register) (core.Value, error) {
	resp, err := lc.doResp(x, 0, true)
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

func (lc *LiveClient) do(x sharegraph.Register, v core.Value, isRead bool) error {
	_, err := lc.doResp(x, v, isRead)
	return err
}

func (lc *LiveClient) doResp(x sharegraph.Register, v core.Value, isRead bool) (Response, error) {
	ls := lc.ls
	if ls.closed.Load() {
		return Response{}, fmt.Errorf("clientserver: live system closed")
	}
	req, err := lc.c.NewRequest(x, v, isRead)
	if err != nil {
		return Response{}, err
	}
	srv := ls.servers[req.Replica]
	out := getOutcome()
	srv.mu.Lock()
	srv.s.HandleRequest(req, out)
	ls.recordOutcome(srv.s, out)
	srv.mu.Unlock()
	// Dispatch outside the server lock: Send applies inbox backpressure
	// and may block; a blocked sender holding a server lock could starve
	// the workers that must drain the full inbox.
	ls.dispatch(out, true)
	putOutcome(out)

	ls.respMu.Lock()
	ch := ls.respChans[lc.c.ID()]
	ls.respMu.Unlock()
	resp := <-ch // served immediately or unblocked by a later update
	lc.c.AbsorbResponse(resp)
	return resp, nil
}

// recordOutcome audits the ordered event trail and stamps oracle IDs onto
// outgoing updates. Callers hold the originating server's lock, preserving
// the per-server event order the oracle requires.
func (ls *LiveSystem) recordOutcome(server *Server, out *Outcome) {
	if out == nil {
		return
	}
	for i := range out.Events {
		ev := &out.Events[i]
		if ev.IsApply {
			ls.tracker.OnApply(server.ID(), ev.Apply.OracleID)
			continue
		}
		acc := &ev.Accept
		ls.tracker.OnClientAccess(acc.Client, acc.Replica)
		if acc.IsWrite {
			id := ls.tracker.OnClientWrite(acc.Client, acc.Replica, acc.Reg)
			for k := 0; k < acc.NumUpdates; k++ {
				out.Updates[acc.UpdateSeq+k].OracleID = id
			}
		}
	}
}

// dispatch hands an outcome's updates to the engine and routes responses
// to waiting clients. Client-path callers use backpressure (Send); the
// delivery path forwards exempt (Forward), since a blocked worker could
// deadlock the pool.
func (ls *LiveSystem) dispatch(out *Outcome, backpressure bool) {
	if out == nil {
		return
	}
	if len(out.Updates) > 0 {
		var accepted int
		if backpressure {
			accepted = ls.eng.Send(out.Updates...)
		} else {
			accepted = ls.eng.Forward(out.Updates...)
		}
		// Count only what the engine accepted — never the suffix a
		// shutdown race dropped — so Stats matches what was delivered.
		ls.updates.Add(int64(accepted))
		for i := 0; i < accepted; i++ {
			ls.metaBytes.Add(int64(out.Updates[i].MetaBytes()))
		}
		if ls.reg != nil {
			for i := 0; i < accepted; i++ {
				u := &out.Updates[i]
				ls.reg.Sent(int(u.From), int(u.To), u.MetaBytes())
			}
		}
	}
	for _, resp := range out.Responses {
		ls.respMu.Lock()
		ch, ok := ls.respChans[resp.Client]
		ls.respMu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// deliver ingests one inter-replica update at its destination server; the
// engine calls it from pool workers.
func (ls *LiveSystem) deliver(u UpdateMsg) {
	srv := ls.servers[u.To]
	out := getOutcome()
	srv.mu.Lock()
	srv.s.HandleUpdate(u, out)
	ls.recordOutcome(srv.s, out)
	srv.mu.Unlock()
	if ls.reg != nil {
		applied := 0
		for i := range out.Events {
			if out.Events[i].IsApply {
				applied++
			}
		}
		ls.reg.Deliver(int(u.From), int(u.To), applied)
	}
	ls.dispatch(out, false)
	putOutcome(out)
}

// Quiesce blocks until no inter-replica updates are in flight.
func (ls *LiveSystem) Quiesce() { ls.eng.Quiesce() }

// Close rejects further client operations, drains in-flight deliveries
// and stops the worker pool; no goroutines outlive the system.
func (ls *LiveSystem) Close() {
	ls.closed.Store(true)
	ls.eng.Close()
}

// CheckLiveness audits update propagation at quiescence.
func (ls *LiveSystem) CheckLiveness() []causality.Violation {
	return ls.tracker.CheckLiveness()
}

// StateSnapshot returns each replica's register contents (the registers
// it genuinely stores). Call after Quiesce for a stable snapshot; the
// differential tests compare it against the deterministic runner's
// final state.
func (ls *LiveSystem) StateSnapshot() []map[sharegraph.Register]core.Value {
	out := make([]map[sharegraph.Register]core.Value, len(ls.servers))
	for i, srv := range ls.servers {
		srv.mu.Lock()
		out[i] = serverState(ls.sys.Aug.G, srv.s, sharegraph.ReplicaID(i))
		srv.mu.Unlock()
	}
	return out
}
