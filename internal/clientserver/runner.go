package clientserver

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
	"repro/internal/transport"
)

// ClientOp is one operation of a client script.
type ClientOp struct {
	Reg    sharegraph.Register
	IsRead bool
	// Val pins the written value; 0 lets the runner assign from its
	// shared counter. Differential tests pin values so the deterministic
	// runner and the live system write identical data.
	Val core.Value
}

// RunConfig configures one deterministic client-server run.
type RunConfig struct {
	Sys *System
	// Scripts[c] is client c's program; a client issues its next request
	// only after absorbing the response to the previous one.
	Scripts [][]ClientOp
	Sched   transport.Scheduler
	// MaxSteps bounds the run; 0 derives a bound from the script sizes.
	MaxSteps int
	// CaptureState fills RunResult.FinalState with each replica's
	// register contents at the end of the run, for differential
	// comparison against the live system.
	CaptureState bool
}

// RunResult holds measurements and oracle verdicts for one run.
type RunResult struct {
	Steps         int
	Requests      int
	Responses     int
	UpdatesSent   int
	MetaBytes     int
	Violations    []causality.Violation
	StuckUpdates  int
	StuckRequests int
	UnfinishedOps int
	ServerEntries []int
	ClientEntries []int
	// FinalState holds each replica's register contents at the end of the
	// run (only the registers it genuinely stores). Nil unless
	// RunConfig.CaptureState was set.
	FinalState []map[sharegraph.Register]core.Value
}

// Ok reports a fully clean run: no violations, nothing stuck, all client
// programs completed.
func (r *RunResult) Ok() bool {
	return len(r.Violations) == 0 && r.StuckUpdates == 0 && r.StuckRequests == 0 && r.UnfinishedOps == 0
}

// event is one in-flight message of the client-server runner. Events
// hold their messages by value — outcomes are recycled scratch, so an
// event must own everything it defers.
type event struct {
	kind   eventKind
	req    Request
	resp   Response
	update UpdateMsg
}

type eventKind uint8

const (
	evRequest eventKind = iota
	evResponse
	evUpdate
)

// Run executes the client scripts to quiescence under the scheduler,
// auditing with the causality oracle (including the client clauses of
// Definitions 25 and 26).
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Sys == nil || cfg.Sched == nil {
		return nil, fmt.Errorf("clientserver: Sys and Sched are required")
	}
	aug := cfg.Sys.Aug
	nClients := aug.NumClients()
	if len(cfg.Scripts) > nClients {
		return nil, fmt.Errorf("clientserver: %d scripts for %d clients", len(cfg.Scripts), nClients)
	}
	nReplicas := aug.G.NumReplicas()
	servers := make([]*Server, nReplicas)
	for i := range servers {
		servers[i] = NewServer(cfg.Sys, sharegraph.ReplicaID(i))
	}
	clients := make([]*Client, nClients)
	for c := range clients {
		clients[c] = NewClient(cfg.Sys, sharegraph.ClientID(c))
	}
	tracker := causality.NewTracker(aug.G)
	res := &RunResult{}

	scripts := make([][]ClientOp, nClients)
	copy(scripts, cfg.Scripts)
	awaiting := make([]bool, nClients) // client has a request in flight
	totalOps := 0
	for _, s := range scripts {
		totalOps += len(s)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = (totalOps+1)*(nReplicas+4) + 64
	}

	var pool []event
	var scratch Outcome // recycled across server calls; pool copies own their data
	nextVal := core.Value(1)

	processOutcome := func(server *Server, out *Outcome) {
		for i := range out.Events {
			ev := &out.Events[i]
			if ev.IsApply {
				tracker.OnApply(server.ID(), ev.Apply.OracleID)
				continue
			}
			acc := &ev.Accept
			tracker.OnClientAccess(acc.Client, acc.Replica)
			if acc.IsWrite {
				id := tracker.OnClientWrite(acc.Client, acc.Replica, acc.Reg)
				for k := 0; k < acc.NumUpdates; k++ {
					out.Updates[acc.UpdateSeq+k].OracleID = id
				}
			}
		}
		for i := range out.Updates {
			res.UpdatesSent++
			res.MetaBytes += out.Updates[i].MetaBytes()
			pool = append(pool, event{kind: evUpdate, update: out.Updates[i]})
		}
		for i := range out.Responses {
			res.Responses++
			res.MetaBytes += timestamp.EncodedSize(out.Responses[i].Tau)
			pool = append(pool, event{kind: evResponse, resp: out.Responses[i]})
		}
	}

	for step := 0; step < maxSteps; step++ {
		var idle []int // clients ready to issue their next op
		for c := 0; c < nClients; c++ {
			if !awaiting[c] && len(scripts[c]) > 0 {
				idle = append(idle, c)
			}
		}
		total := len(idle) + len(pool)
		if total == 0 {
			res.Steps = step
			break
		}
		choice := cfg.Sched.Pick(total)
		if choice < len(idle) {
			c := idle[choice]
			op := scripts[c][0]
			scripts[c] = scripts[c][1:]
			v := op.Val
			if v == 0 {
				v = nextVal
				nextVal++
			}
			req, err := clients[c].NewRequest(op.Reg, v, op.IsRead)
			if err != nil {
				return nil, err
			}
			awaiting[c] = true
			res.Requests++
			res.MetaBytes += timestamp.EncodedSize(req.Mu)
			pool = append(pool, event{kind: evRequest, req: req})
		} else {
			ev := pool[choice-len(idle)]
			pool = append(pool[:choice-len(idle)], pool[choice-len(idle)+1:]...)
			switch ev.kind {
			case evRequest:
				scratch.Reset()
				servers[ev.req.Replica].HandleRequest(ev.req, &scratch)
				processOutcome(servers[ev.req.Replica], &scratch)
			case evUpdate:
				scratch.Reset()
				servers[ev.update.To].HandleUpdate(ev.update, &scratch)
				processOutcome(servers[ev.update.To], &scratch)
			case evResponse:
				clients[ev.resp.Client].AbsorbResponse(ev.resp)
				awaiting[ev.resp.Client] = false
			}
		}
		res.Steps = step + 1
	}

	for _, s := range servers {
		res.StuckUpdates += s.PendingUpdates()
		res.StuckRequests += s.PendingRequests()
		res.ServerEntries = append(res.ServerEntries, s.MetadataEntries())
	}
	if cfg.CaptureState {
		res.FinalState = make([]map[sharegraph.Register]core.Value, nReplicas)
		for i, s := range servers {
			res.FinalState[i] = serverState(aug.G, s, sharegraph.ReplicaID(i))
		}
	}
	for c, cl := range clients {
		res.ClientEntries = append(res.ClientEntries, cl.MetadataEntries())
		res.UnfinishedOps += len(scripts[c])
		if awaiting[c] {
			res.UnfinishedOps++
		}
	}
	tracker.CheckLiveness()
	res.Violations = tracker.Violations()
	return res, nil
}

// serverState snapshots the registers replica r genuinely stores. Both
// the deterministic runner and the live system build their differential
// state captures with it, so the two sides compare maps produced by the
// same code. Callers serialize access to the server.
func serverState(g *sharegraph.Graph, s *Server, r sharegraph.ReplicaID) map[sharegraph.Register]core.Value {
	out := make(map[sharegraph.Register]core.Value)
	for _, x := range g.Stores(r).Sorted() {
		if v, ok := s.Read(x); ok {
			out[x] = v
		}
	}
	return out
}
