package clientserver

import (
	"sync"
	"testing"

	"repro/internal/core"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
)

// TestLiveChaoticConvergence runs the concurrent client workload over a
// faulty inter-replica transport: 5% loss and 5% duplication on every
// edge. Drops retransmit and duplicates are discarded by the server's
// stale guard, so the oracle's full audit — safety and liveness — must
// still come back clean.
func TestLiveChaoticConvergence(t *testing.T) {
	sys := bridgeSystem(t, true)
	ls := NewLiveChaotic(sys, rt.Options{}, rt.FaultPlan{
		Seed:    9,
		Default: rt.EdgeFault{Drop: 0.05, Dup: 0.05},
	})
	defer ls.Close()
	if ls.Faults() == nil {
		t.Fatal("chaotic system has no fault injector")
	}

	var wg sync.WaitGroup
	progs := []struct {
		client sharegraph.ClientID
		regs   []sharegraph.Register
	}{
		{0, []sharegraph.Register{"a", "b", "p1", "a", "b", "a", "p1", "b"}},
		{1, []sharegraph.Register{"c", "a", "c", "b", "c", "a", "b", "c"}},
	}
	for _, prog := range progs {
		wg.Add(1)
		go func(c sharegraph.ClientID, regs []sharegraph.Register) {
			defer wg.Done()
			lc := ls.Client(c)
			for k, x := range regs {
				if k%3 == 2 {
					if _, err := lc.Read(x); err != nil {
						t.Errorf("client %d read %q: %v", c, x, err)
						return
					}
					continue
				}
				if err := lc.Write(x, core.Value(200+k)); err != nil {
					t.Errorf("client %d write %q: %v", c, x, err)
					return
				}
			}
		}(prog.client, prog.regs)
	}
	wg.Wait()
	ls.Quiesce()
	if vs := ls.CheckLiveness(); len(vs) != 0 {
		t.Errorf("liveness under chaos: %v", vs)
	}
	if vs := ls.Tracker().Violations(); len(vs) != 0 {
		t.Errorf("violations under chaos: %v", vs)
	}
	if f := ls.Faults(); f.Duped() > 0 && ls.StaleDrops() == 0 {
		t.Errorf("%d duplicates injected but no server discarded any", f.Duped())
	}
}

// TestServerDropsDuplicateUpdates pins the ingest guard directly: the
// same update delivered twice is applied once and discarded once, and a
// replayed older update is discarded too.
func TestServerDropsDuplicateUpdates(t *testing.T) {
	sys := bridgeSystem(t, true)
	servers := []*Server{NewServer(sys, 0), NewServer(sys, 1), NewServer(sys, 2), NewServer(sys, 3)}
	client := NewClient(sys, 1)

	var out Outcome
	mkUpdate := func(v core.Value) UpdateMsg {
		t.Helper()
		req, err := client.NewRequest("c", v, false)
		if err != nil {
			t.Fatal(err)
		}
		req.Replica = 3
		out.Reset()
		servers[3].HandleRequest(req, &out)
		if len(out.Updates) != 1 {
			t.Fatalf("want 1 update, got %+v", out.Updates)
		}
		client.AbsorbResponse(out.Responses[0])
		return out.Updates[0]
	}

	u1 := mkUpdate(7)
	u1dup := u1
	u1dup.TS = u1.TS.Clone()
	u2 := mkUpdate(8)
	u2dup := u2
	u2dup.TS = u2.TS.Clone()

	deliver := func(u UpdateMsg) int {
		out.Reset()
		servers[0].HandleUpdate(u, &out)
		applies := 0
		for _, ev := range out.Events {
			if ev.IsApply {
				applies++
			}
		}
		return applies
	}
	if got := deliver(u1); got != 1 {
		t.Fatalf("first delivery applied %d updates, want 1", got)
	}
	if got := deliver(u1dup); got != 0 {
		t.Fatalf("duplicate delivery applied %d updates, want 0", got)
	}
	if got := deliver(u2); got != 1 {
		t.Fatalf("second update applied %d, want 1", got)
	}
	// u1 again, now doubly stale: also discarded, not buffered forever.
	if got := deliver(u2dup); got != 0 {
		t.Fatalf("stale replay applied %d updates, want 0", got)
	}
	if servers[0].PendingUpdates() != 0 {
		t.Errorf("%d updates stuck in pending after replays", servers[0].PendingUpdates())
	}
	if servers[0].StaleDrops() != 2 {
		t.Errorf("StaleDrops = %d, want 2", servers[0].StaleDrops())
	}
}

// TestServeSteadyStateAllocs pins the emit-contract payoff: once the
// vector freelist and outcome scratch are warm, serving a client write —
// request build, predicate check, τ advance, one update per recipient,
// response — allocates nothing.
func TestServeSteadyStateAllocs(t *testing.T) {
	sys := bridgeSystem(t, true)
	server := NewServer(sys, 3)
	client := NewClient(sys, 1)

	var out Outcome
	cycle := func() {
		req, err := client.NewRequest("c", 5, false)
		if err != nil {
			t.Fatal(err)
		}
		req.Replica = 3
		out.Reset()
		server.HandleRequest(req, &out)
		// Stand in for the consumers: recycle the vectors the update
		// receivers and the client would.
		for i := range out.Updates {
			sys.putVec(out.Updates[i].TS)
		}
		for i := range out.Responses {
			sys.putVec(out.Responses[i].Tau)
		}
	}
	for i := 0; i < 32; i++ {
		cycle() // warm the freelist and the outcome's capacity
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 0.5 {
		t.Errorf("serve path allocates %.1f objects/op in steady state, want 0", avg)
	}
}
