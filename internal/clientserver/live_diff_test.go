package clientserver

// Differential tests between the two client-server runtimes: with every
// register written by exactly one client (values pinned via ClientOp.Val,
// issued in session order), the final register state is
// schedule-independent, so the live worker-pool deployment and the
// deterministic runner must converge to identical register contents at
// every replica — and both must satisfy the Definition 26 oracle. Run
// with -race this also hammers the engine port's locking.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// ringClientSystem builds the Appendix E deployment over Ring(n): client
// c accesses replicas {c, c+1 mod n} and owns register ring<c> (stored at
// exactly those replicas), so client programs are single-writer per
// register.
func ringClientSystem(t testing.TB, n int) *System {
	t.Helper()
	g := sharegraph.Ring(n)
	clients := make(sharegraph.ClientAssignment, n)
	for c := 0; c < n; c++ {
		clients[c] = []sharegraph.ReplicaID{sharegraph.ReplicaID(c), sharegraph.ReplicaID((c + 1) % n)}
	}
	aug, err := sharegraph.NewAugmented(g, clients)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(aug)
}

// ownerScripts builds one program per client: client c writes ring<c>
// with pinned, strictly increasing values, interleaved with reads of the
// registers it can reach (reads exercise predicate J1 without touching
// state).
func ownerScripts(n, writes int) [][]ClientOp {
	scripts := make([][]ClientOp, n)
	for c := 0; c < n; c++ {
		own := sharegraph.Register(fmt.Sprintf("ring%d", c))
		neighbour := sharegraph.Register(fmt.Sprintf("ring%d", (c+1)%n))
		for k := 1; k <= writes; k++ {
			// Values are pinned unique to (client, write index), so both
			// runtimes write identical data.
			scripts[c] = append(scripts[c], ClientOp{Reg: own, Val: core.Value(c*1000 + k)})
			if k%3 == 0 {
				scripts[c] = append(scripts[c], ClientOp{Reg: neighbour, IsRead: true})
			}
		}
	}
	return scripts
}

func TestLiveMatchesDeterministicRunner(t *testing.T) {
	const n = 6
	const writes = 15
	scripts := ownerScripts(n, writes)

	// Deterministic runner under a seeded-random schedule.
	sys := ringClientSystem(t, n)
	res, err := Run(RunConfig{
		Sys: sys, Scripts: scripts,
		Sched: transport.NewRandom(11), CaptureState: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("deterministic run not clean: %+v", res)
	}

	// Live worker-pool deployment, fresh system, small inboxes to
	// exercise backpressure; one goroutine per client issues its program
	// in session order.
	for _, seed := range []int64{1, 42} {
		ls := NewLiveWith(ringClientSystem(t, n), rt.Options{
			Workers: 4, InboxCapacity: 8, Seed: seed, MaxDelay: 50 * time.Microsecond,
		})
		var wg sync.WaitGroup
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lc := ls.Client(sharegraph.ClientID(c))
				for _, op := range scripts[c] {
					if op.IsRead {
						if _, err := lc.Read(op.Reg); err != nil {
							t.Errorf("client %d read %q: %v", c, op.Reg, err)
						}
						continue
					}
					if err := lc.Write(op.Reg, op.Val); err != nil {
						t.Errorf("client %d write %q: %v", c, op.Reg, err)
					}
				}
			}(c)
		}
		wg.Wait()
		ls.Quiesce()
		if vs := ls.CheckLiveness(); len(vs) != 0 {
			t.Errorf("seed %d: liveness violations: %v", seed, vs)
		}
		if vs := ls.Tracker().Violations(); len(vs) != 0 {
			t.Errorf("seed %d: live run violations: %v", seed, vs)
		}
		live := ls.StateSnapshot()
		if ls.UpdatesSent() == 0 || ls.MetaBytes() == 0 {
			t.Errorf("seed %d: empty transport stats (%d updates, %d bytes)",
				seed, ls.UpdatesSent(), ls.MetaBytes())
		}
		ls.Close()
		if !reflect.DeepEqual(res.FinalState, live) {
			t.Errorf("seed %d: final states diverge:\nrunner: %v\nlive:   %v",
				seed, res.FinalState, live)
		}
	}
}

// TestLiveBoundedGoroutines pins the engine-port property the redesign is
// for: with many updates in flight, the goroutine count stays at workers
// + clients + constant overhead — never O(messages), as under the old
// go ls.deliver(u) per-update dispatch.
func TestLiveBoundedGoroutines(t *testing.T) {
	const n = 8
	const workers = 3
	scripts := ownerScripts(n, 40)
	before := runtime.NumGoroutine()
	ls := NewLiveWith(ringClientSystem(t, n), rt.Options{
		Workers: workers, MaxDelay: 200 * time.Microsecond,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lc := ls.Client(sharegraph.ClientID(c))
				for _, op := range scripts[c] {
					if op.IsRead {
						_, _ = lc.Read(op.Reg)
					} else {
						_ = lc.Write(op.Reg, op.Val)
					}
				}
			}(c)
		}
		wg.Wait()
	}()
	peak := 0
	for {
		select {
		case <-done:
			// Bound: baseline + workers + n client drivers + the driver
			// spawner + slack for unrelated runtime goroutines.
			if bound := before + workers + n + 8; peak > bound {
				t.Errorf("goroutine count not bounded by pool: peak %d (baseline %d, %d workers, %d clients)",
					peak, before, workers, n)
			}
			ls.Quiesce()
			if vs := ls.Tracker().Violations(); len(vs) != 0 {
				t.Errorf("violations: %v", vs)
			}
			ls.Close()
			if ls.Outstanding() != 0 {
				t.Errorf("Close left %d outstanding", ls.Outstanding())
			}
			if after := runtime.NumGoroutine(); after > before+2 {
				t.Errorf("goroutines leaked: %d before, %d after Close", before, after)
			}
			return
		default:
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
}
