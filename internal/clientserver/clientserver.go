// Package clientserver implements the client-server architecture of
// Section 6 and Appendix E of Xiang & Vaidya (PODC 2019): clients maintain
// their own edge-indexed timestamps µ_c over the union of the augmented
// timestamp graphs of the replicas they may access, and replicas buffer
// client requests behind predicates J1/J2 and remote updates behind J3.
//
// Clients accessing multiple replicas propagate causal dependencies even
// between replicas sharing no registers; the augmented share graph
// (Definition 16) adds edges for exactly those paths, and the augmented
// (i, e_jk)-loops (Definition 27) determine the extra counters replicas
// must carry. The package's tests demonstrate both directions: with
// augmented timestamp graphs the system satisfies Definition 26, and with
// plain Definition 5 graphs a client bridging two disconnected replicas
// produces a safety violation.
package clientserver

import (
	"fmt"
	"sync"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// ---------------------------------------------------------------------------
// Vector freelist
//
// The client-server hot path clones timestamps constantly: every request
// carries µ_c, every response carries τ_i, and every update message
// carries τ_i once per recipient. All of those vectors have a clear
// single owner and a clear end of life (the receiver merges them and is
// done), so instead of leaving a clone per message to the garbage
// collector they cycle through a per-System freelist: cloneVec takes a
// recycled vector, putVec returns one. Hanging the freelist off System —
// rather than a process-wide global — keeps vector lifetimes and mutex
// contention confined to one deployment: independent live systems and
// benchmarks in the same process never serialize on each other's clones,
// and one system's large vectors cannot pin memory for another's.

const maxVecFree = 1024

// getVec returns a zeroed vector of length n, recycled when possible.
func (s *System) getVec(n int) timestamp.Vec {
	s.vecMu.Lock()
	for i := len(s.vecFree) - 1; i >= 0; i-- {
		if cap(s.vecFree[i]) >= n {
			v := s.vecFree[i][:n]
			s.vecFree[i] = s.vecFree[len(s.vecFree)-1]
			s.vecFree = s.vecFree[:len(s.vecFree)-1]
			s.vecMu.Unlock()
			for j := range v {
				v[j] = 0
			}
			return v
		}
	}
	s.vecMu.Unlock()
	return make(timestamp.Vec, n)
}

// cloneVec copies src into a recycled vector.
func (s *System) cloneVec(src timestamp.Vec) timestamp.Vec {
	v := s.getVec(len(src))
	copy(v, src)
	return v
}

// putVec recycles a vector whose owner is done with it. Nil is allowed.
func (s *System) putVec(v timestamp.Vec) {
	if v == nil {
		return
	}
	s.vecMu.Lock()
	if len(s.vecFree) < maxVecFree {
		s.vecFree = append(s.vecFree, v)
	}
	s.vecMu.Unlock()
}

// System holds the structure shared by all servers and clients: the
// augmented graph, every replica's augmented timestamp graph Ê_i, and
// every client's timestamp universe ∪_{i∈Rc} Ê_i — all immutable after
// construction — plus the deployment's timestamp-vector freelist.
type System struct {
	Aug *sharegraph.AugmentedGraph
	// ReplicaGraphs[i] indexes replica i's timestamp τ_i.
	ReplicaGraphs []*sharegraph.TSGraph
	// ClientGraphs[c] indexes client c's timestamp µ_c.
	ClientGraphs []*sharegraph.TSGraph

	vecMu   sync.Mutex
	vecFree []timestamp.Vec
}

// NewSystem computes Ê_i per Definition 28 and the client universes.
func NewSystem(aug *sharegraph.AugmentedGraph) *System {
	graphs := aug.BuildAllAugmentedTSGraphs(sharegraph.LoopOptions{})
	return newSystemWithGraphs(aug, graphs)
}

// NewSystemWithPlainGraphs builds the system over plain Definition 5
// timestamp graphs, ignoring client edges — deliberately too weak whenever
// a client bridges replicas, and used by tests to demonstrate that the
// augmentation is necessary.
func NewSystemWithPlainGraphs(aug *sharegraph.AugmentedGraph) *System {
	graphs := sharegraph.BuildAllTSGraphs(aug.G, sharegraph.LoopOptions{})
	return newSystemWithGraphs(aug, graphs)
}

func newSystemWithGraphs(aug *sharegraph.AugmentedGraph, graphs []*sharegraph.TSGraph) *System {
	s := &System{Aug: aug, ReplicaGraphs: graphs}
	for c := 0; c < aug.NumClients(); c++ {
		edges := aug.ClientTSEdges(sharegraph.ClientID(c), graphs)
		// The owner field is unused for client universes; store the client
		// id for diagnostics.
		s.ClientGraphs = append(s.ClientGraphs, sharegraph.NewTSGraphFromEdges(sharegraph.ReplicaID(c), edges))
	}
	return s
}

// mergeMax sets dst[e] = max(dst[e], src[e]) for every edge tracked by
// both index graphs — the shape shared by merge1, merge2 and merge3.
func mergeMax(dstIdx *sharegraph.TSGraph, dst timestamp.Vec, srcIdx *sharegraph.TSGraph, src timestamp.Vec) {
	for _, pair := range dstIdx.Intersection(srcIdx) {
		if src[pair[1]] > dst[pair[0]] {
			dst[pair[0]] = src[pair[1]]
		}
	}
}

// ---------------------------------------------------------------------------
// Server

// Server is one replica's state machine for the client-server prototype
// (Appendix E.1). Not safe for concurrent use.
type Server struct {
	sys    *System
	id     sharegraph.ReplicaID
	eidx   *sharegraph.TSGraph
	τ      timestamp.Vec
	store  map[sharegraph.Register]core.Value
	recips sharegraph.RecipientCache

	pendingUpdates  []serverUpdate
	pendingRequests []Request
	staleDrops      int
}

type serverUpdate struct {
	from     sharegraph.ReplicaID
	ts       timestamp.Vec
	reg      sharegraph.Register
	val      core.Value
	oracleID causality.UpdateID
}

// Request is a client read or write request carrying the client's
// timestamp (the paper's read(x, c, µc) / write(x, v, c, µc)).
type Request struct {
	Client  sharegraph.ClientID
	Replica sharegraph.ReplicaID
	Reg     sharegraph.Register
	Val     core.Value
	IsRead  bool
	Mu      timestamp.Vec // client timestamp µ_c at send time
}

// Response is the replica's reply: the read value (for reads) and the
// replica's timestamp τ_i at acceptance.
type Response struct {
	Client  sharegraph.ClientID
	Replica sharegraph.ReplicaID
	Reg     sharegraph.Register
	Val     core.Value
	IsRead  bool
	Tau     timestamp.Vec
}

// UpdateMsg is an inter-replica update message.
type UpdateMsg struct {
	From     sharegraph.ReplicaID
	To       sharegraph.ReplicaID
	Reg      sharegraph.Register
	Val      core.Value
	TS       timestamp.Vec
	OracleID causality.UpdateID
}

// MetaBytes returns the encoded size of the update's timestamp.
func (u UpdateMsg) MetaBytes() int { return timestamp.EncodedSize(u.TS) }

// Dest returns the destination replica as an inbox index — the routing
// hook the shared worker-pool engine (internal/runtime) keys on.
func (u UpdateMsg) Dest() int { return int(u.To) }

// Source returns the sending replica — the hook the engine's fault
// layer keys its per-edge loss, duplication and partition plans on.
func (u UpdateMsg) Source() int { return int(u.From) }

// NewServer builds replica i's server.
func NewServer(sys *System, i sharegraph.ReplicaID) *Server {
	eidx := sys.ReplicaGraphs[i]
	return &Server{
		sys:    sys,
		id:     i,
		eidx:   eidx,
		τ:      make(timestamp.Vec, eidx.Len()),
		store:  make(map[sharegraph.Register]core.Value),
		recips: sharegraph.NewRecipientCache(sys.Aug.G, i),
	}
}

// ID returns the replica id.
func (s *Server) ID() sharegraph.ReplicaID { return s.id }

// Timestamp returns a copy of τ_i.
func (s *Server) Timestamp() timestamp.Vec { return s.τ.Clone() }

// MetadataEntries returns |Ê_i|.
func (s *Server) MetadataEntries() int { return s.eidx.Len() }

// PendingUpdates returns the number of buffered inter-replica updates.
func (s *Server) PendingUpdates() int { return len(s.pendingUpdates) }

// PendingRequests returns the number of buffered client requests.
func (s *Server) PendingRequests() int { return len(s.pendingRequests) }

// StaleDrops returns the number of update messages this server
// discarded at ingest: duplicates, stale replays, and malformed
// envelopes (unknown sender, misrouted, wrong-length timestamp). See
// HandleUpdate.
func (s *Server) StaleDrops() int { return s.staleDrops }

// requestReady implements J1 = J2: τ[e_ji] ≥ µ[e_ji] for every edge into
// this replica tracked by Ê_i.
func (s *Server) requestReady(req Request) bool {
	cidx := s.sys.ClientGraphs[req.Client]
	for pos, e := range s.eidx.Edges() {
		if e.To != s.id {
			continue
		}
		if mpos, ok := cidx.Index(e); ok && s.τ[pos] < req.Mu[mpos] {
			return false
		}
	}
	return true
}

// updateReady implements J3: τ[e_ki] = T[e_ki] − 1 and τ[e_ji] ≥ T[e_ji]
// for every e_ji ∈ Ê_i ∩ Ê_k with j ≠ k.
func (s *Server) updateReady(u serverUpdate) bool {
	kidx := s.sys.ReplicaGraphs[u.from]
	eki := sharegraph.Edge{From: u.from, To: s.id}
	rpos, okR := s.eidx.Index(eki)
	spos, okS := kidx.Index(eki)
	if !okR || !okS {
		return false
	}
	if s.τ[rpos] != u.ts[spos]-1 {
		return false
	}
	for pos, e := range s.eidx.Edges() {
		if e.To != s.id || e.From == u.from {
			continue
		}
		if kpos, ok := kidx.Index(e); ok && s.τ[pos] < u.ts[kpos] {
			return false
		}
	}
	return true
}

// HandleRequest ingests a client request, appending everything it
// produces to out (the caller owns and recycles the Outcome — the emit
// half of the contract that keeps the serve path allocation-free). If
// the request's predicate holds it is served immediately; otherwise it
// is buffered until later update applications unblock it. The server
// takes ownership of req.Mu. Returns false — without consuming req —
// if the request is addressed to a different replica.
func (s *Server) HandleRequest(req Request, out *Outcome) bool {
	if req.Replica != s.id {
		return false
	}
	if !s.requestReady(req) {
		s.pendingRequests = append(s.pendingRequests, req)
		return true
	}
	s.serve(req, out)
	return true
}

// Outcome aggregates everything one event produced: responses to clients,
// update messages to replicas, and an ordered trail of applies and
// request acceptances. The trail preserves the true interleaving inside a
// drain, which the causality oracle needs to audit accesses correctly.
//
// Callers pass an Outcome into HandleRequest/HandleUpdate and recycle it
// with Reset once its contents are consumed. Ownership of the timestamp
// vectors inside (Updates[i].TS, Responses[i].Tau) transfers to whoever
// consumes the message: update receivers recycle TS after merging it,
// clients recycle Tau when absorbing the response.
type Outcome struct {
	Responses []Response
	Updates   []UpdateMsg
	Events    []OutcomeEvent
}

// Reset clears the outcome for reuse, keeping capacity. It does not
// release the timestamp vectors referenced by the cleared entries —
// their ownership moved to the message consumers at dispatch.
func (o *Outcome) Reset() {
	o.Responses = o.Responses[:0]
	o.Updates = o.Updates[:0]
	o.Events = o.Events[:0]
}

// OutcomeEvent is one step of an outcome trail: an update application
// (IsApply true) or a client request acceptance.
type OutcomeEvent struct {
	IsApply bool
	Apply   core.Applied
	Accept  AcceptedAccess
}

// AcceptedAccess is one client request acceptance.
type AcceptedAccess struct {
	Client  sharegraph.ClientID
	Replica sharegraph.ReplicaID
	Reg     sharegraph.Register
	IsWrite bool
	// UpdateSeq and NumUpdates locate this write's update messages within
	// Outcome.Updates so the runner can stamp their oracle IDs after
	// informing the oracle; reads have NumUpdates 0.
	UpdateSeq  int
	NumUpdates int
}

// serve executes an accepted request (predicate already true), recycling
// the request's µ once it is consumed.
func (s *Server) serve(req Request, out *Outcome) {
	if req.IsRead {
		out.Events = append(out.Events, OutcomeEvent{Accept: AcceptedAccess{
			Client: req.Client, Replica: s.id, Reg: req.Reg,
		}})
		out.Responses = append(out.Responses, Response{
			Client: req.Client, Replica: s.id, Reg: req.Reg,
			Val: s.store[req.Reg], IsRead: true, Tau: s.sys.cloneVec(s.τ),
		})
		s.sys.putVec(req.Mu)
		return
	}
	// Write: advance per Appendix E — increment edges e_{i,k} with
	// x ∈ X_ik; take max(τ, µ) elsewhere. τ is mutated in place: every
	// copy handed out (responses, updates, Timestamp) is a clone, so no
	// one aliases it.
	s.store[req.Reg] = req.Val
	cidx := s.sys.ClientGraphs[req.Client]
	for pos, e := range s.eidx.Edges() {
		if e.From == s.id && s.sys.Aug.G.Shared(s.id, e.To).Has(req.Reg) {
			s.τ[pos]++
			continue
		}
		if mpos, ok := cidx.Index(e); ok && req.Mu[mpos] > s.τ[pos] {
			s.τ[pos] = req.Mu[mpos]
		}
	}
	s.sys.putVec(req.Mu)
	seq := len(out.Updates)
	for _, k := range s.recips.Recipients(req.Reg) {
		out.Updates = append(out.Updates, UpdateMsg{
			From: s.id, To: k, Reg: req.Reg, Val: req.Val, TS: s.sys.cloneVec(s.τ),
		})
	}
	out.Events = append(out.Events, OutcomeEvent{Accept: AcceptedAccess{
		Client: req.Client, Replica: s.id, Reg: req.Reg, IsWrite: true,
		UpdateSeq: seq, NumUpdates: len(out.Updates) - seq,
	}})
	out.Responses = append(out.Responses, Response{
		Client: req.Client, Replica: s.id, Reg: req.Reg,
		Val: req.Val, Tau: s.sys.cloneVec(s.τ),
	})
}

// HandleUpdate ingests an inter-replica update (step 3 of the replica
// prototype), draining both buffered updates and buffered client requests
// to a fixpoint into out. The server takes ownership of u.TS.
//
// Duplicate and stale deliveries are discarded at the door: replica k
// increments the e_ki entry for every update it sends here, so
// τ_i[e_ki] ≥ T[e_ki] means this exact update (or a successor) has
// already been applied. Without the guard a re-delivered envelope would
// sit in pendingUpdates forever — J3 demands τ[e_ki] = T[e_ki] − 1
// exactly — leaking memory and polluting false-dependency accounting.
func (s *Server) HandleUpdate(u UpdateMsg, out *Outcome) {
	// Malformed envelopes are discarded at the door: an unknown sender,
	// a misrouted destination, or a timestamp that does not match the
	// sender's graph would otherwise index out of bounds (or merge
	// nonsense) deep inside the predicate machinery.
	if u.From < 0 || int(u.From) >= len(s.sys.ReplicaGraphs) || u.To != s.id ||
		len(u.TS) != s.sys.ReplicaGraphs[u.From].Len() {
		s.staleDrops++
		s.sys.putVec(u.TS)
		return
	}
	eki := sharegraph.Edge{From: u.From, To: s.id}
	if rpos, ok := s.eidx.Index(eki); ok {
		if spos, ok2 := s.sys.ReplicaGraphs[u.From].Index(eki); ok2 {
			if s.τ[rpos] >= u.TS[spos] {
				s.staleDrops++
				s.sys.putVec(u.TS)
				return
			}
			// A duplicate of a still-buffered update passes the applied
			// check (τ has not advanced yet) but would rot forever once
			// its twin applies — J3 demands equality, never ≤. Discard it
			// against the buffer.
			for i := range s.pendingUpdates {
				pu := &s.pendingUpdates[i]
				if pu.from == u.From && pu.ts[spos] == u.TS[spos] {
					s.staleDrops++
					s.sys.putVec(u.TS)
					return
				}
			}
		}
	}
	s.pendingUpdates = append(s.pendingUpdates, serverUpdate{
		from: u.From, ts: u.TS, reg: u.Reg, val: u.Val, oracleID: u.OracleID,
	})
	s.drain(out)
}

// drain alternates between applying deliverable updates (J3) and serving
// unblocked client requests (J1/J2) until neither makes progress.
func (s *Server) drain(out *Outcome) {
	for {
		progress := false
		for idx := 0; idx < len(s.pendingUpdates); idx++ {
			u := s.pendingUpdates[idx]
			if !s.updateReady(u) {
				continue
			}
			s.store[u.reg] = u.val
			mergeMax(s.eidx, s.τ, s.sys.ReplicaGraphs[u.from], u.ts)
			s.sys.putVec(u.ts)
			s.pendingUpdates = append(s.pendingUpdates[:idx], s.pendingUpdates[idx+1:]...)
			out.Events = append(out.Events, OutcomeEvent{IsApply: true, Apply: core.Applied{
				OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
			}})
			progress = true
			idx--
		}
		for idx := 0; idx < len(s.pendingRequests); idx++ {
			req := s.pendingRequests[idx]
			if !s.requestReady(req) {
				continue
			}
			s.pendingRequests = append(s.pendingRequests[:idx], s.pendingRequests[idx+1:]...)
			s.serve(req, out)
			progress = true
			idx--
		}
		if !progress {
			return
		}
	}
}

// Read returns the local copy (diagnostics; client reads go through
// HandleRequest).
func (s *Server) Read(x sharegraph.Register) (core.Value, bool) {
	if !s.sys.Aug.G.StoresRegister(s.id, x) {
		return 0, false
	}
	return s.store[x], true
}

// ---------------------------------------------------------------------------
// Client

// Client maintains µ_c and issues requests. Not safe for concurrent use.
type Client struct {
	sys      *System
	id       sharegraph.ClientID
	cidx     *sharegraph.TSGraph
	µ        timestamp.Vec
	replicas []sharegraph.ReplicaID // R_c, cached: the graph is immutable
}

// NewClient builds client c.
func NewClient(sys *System, c sharegraph.ClientID) *Client {
	cidx := sys.ClientGraphs[c]
	return &Client{
		sys: sys, id: c, cidx: cidx,
		µ:        make(timestamp.Vec, cidx.Len()),
		replicas: sys.Aug.ClientReplicas(c),
	}
}

// ID returns the client id.
func (c *Client) ID() sharegraph.ClientID { return c.id }

// MetadataEntries returns |∪_{i∈Rc} Ê_i|, the client timestamp length.
func (c *Client) MetadataEntries() int { return c.cidx.Len() }

// Timestamp returns a copy of µ_c.
func (c *Client) Timestamp() timestamp.Vec { return c.µ.Clone() }

// PickReplica chooses a replica in R_c storing x (the lowest-numbered, for
// determinism). ok is false if the client cannot access x at all.
func (c *Client) PickReplica(x sharegraph.Register) (sharegraph.ReplicaID, bool) {
	for _, r := range c.replicas {
		if c.sys.Aug.G.StoresRegister(r, x) {
			return r, true
		}
	}
	return 0, false
}

// NewRequest builds a read or write request for register x carrying the
// current µ_c.
func (c *Client) NewRequest(x sharegraph.Register, v core.Value, isRead bool) (Request, error) {
	r, ok := c.PickReplica(x)
	if !ok {
		return Request{}, fmt.Errorf("clientserver: client %d cannot access register %q", c.id, x)
	}
	return Request{
		Client: c.id, Replica: r, Reg: x, Val: v, IsRead: isRead, Mu: c.sys.cloneVec(c.µ),
	}, nil
}

// AbsorbResponse implements merge1 = merge2: µ_c takes the elementwise max
// with τ over Ê_i, unchanged elsewhere. The response's Tau is consumed —
// recycled into the vector freelist — so callers must not retain it.
func (c *Client) AbsorbResponse(resp Response) {
	mergeMax(c.cidx, c.µ, c.sys.ReplicaGraphs[resp.Replica], resp.Tau)
	c.sys.putVec(resp.Tau)
}
