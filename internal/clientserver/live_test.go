package clientserver

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

func TestLiveClientServerConcurrent(t *testing.T) {
	sys := bridgeSystem(t, true)
	ls := NewLive(sys)
	defer ls.Close()

	var wg sync.WaitGroup
	progs := []struct {
		client sharegraph.ClientID
		regs   []sharegraph.Register
	}{
		{0, []sharegraph.Register{"a", "b", "p1", "a", "b"}},
		{1, []sharegraph.Register{"c", "a", "c", "b"}},
	}
	for _, prog := range progs {
		wg.Add(1)
		go func(c sharegraph.ClientID, regs []sharegraph.Register) {
			defer wg.Done()
			lc := ls.Client(c)
			for k, x := range regs {
				if k%3 == 2 {
					if _, err := lc.Read(x); err != nil {
						t.Errorf("client %d read %q: %v", c, x, err)
						return
					}
					continue
				}
				if err := lc.Write(x, core.Value(100+k)); err != nil {
					t.Errorf("client %d write %q: %v", c, x, err)
					return
				}
			}
		}(prog.client, prog.regs)
	}
	wg.Wait()
	ls.Quiesce()
	if vs := ls.CheckLiveness(); len(vs) != 0 {
		t.Errorf("liveness: %v", vs)
	}
	if vs := ls.Tracker().Violations(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestLiveReadYourWriteAcrossReplicas(t *testing.T) {
	// Client 1 can access replicas 3 and 0, both storing register c. A
	// write routed to replica 3 must be visible to the same client's read
	// even when the read lands on replica 0 — J1 blocks the read until
	// the update propagates.
	sys := bridgeSystem(t, true)
	ls := NewLive(sys)
	defer ls.Close()
	lc := ls.Client(1)
	if err := lc.Write("c", 55); err != nil {
		t.Fatal(err)
	}
	// PickReplica prefers replica 3 (listed first) for writes AND reads,
	// so force variety: issue several write/read rounds; the oracle and
	// blocking J1 guarantee the read is never stale regardless of routing.
	for k := 0; k < 5; k++ {
		if err := lc.Write("c", core.Value(56+k)); err != nil {
			t.Fatal(err)
		}
		v, err := lc.Read("c")
		if err != nil {
			t.Fatal(err)
		}
		if v != core.Value(56+k) {
			t.Fatalf("round %d: read %d, want %d", k, v, 56+k)
		}
	}
	ls.Quiesce()
	if vs := ls.Tracker().Violations(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestLiveClosedRejectsOps(t *testing.T) {
	sys := bridgeSystem(t, true)
	ls := NewLive(sys)
	lc := ls.Client(0)
	ls.Close()
	if err := lc.Write("a", 1); err == nil {
		t.Error("write after Close accepted")
	}
	if _, err := lc.Read("a"); err == nil {
		t.Error("read after Close accepted")
	}
	// Unreachable register surfaces the routing error.
	if err := lc.Write("nonexistent", 1); err == nil {
		t.Error("unreachable register accepted")
	}
}
