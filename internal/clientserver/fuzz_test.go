package clientserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// FuzzServerUpdateIngest hammers Server.HandleUpdate with mutated
// inter-replica updates: exact duplicates, stale replays, unknown and
// negative senders, misrouted destinations, and truncated or padded
// timestamps. The server must never panic, never apply one sender's
// updates out of send order (predicate J3), and never let a replayed
// update rot in the pending buffer.
func FuzzServerUpdateIngest(f *testing.F) {
	// In-order, duplicated back to back.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0, 2, 0, 2, 0})
	// In-order then stale replays.
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 0, 0, 1, 0})
	// Malformed storm.
	f.Add([]byte{0, 1, 0, 2, 1, 3, 1, 4, 2, 5, 3, 6, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := sharegraph.New([][]sharegraph.Register{{"x"}, {"x"}})
		if err != nil {
			t.Fatal(err)
		}
		aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment{{0}})
		if err != nil {
			t.Fatal(err)
		}
		sys := NewSystem(aug)
		writer := NewServer(sys, 0)
		recv := NewServer(sys, 1)
		client := NewClient(sys, 0)

		// A pool of genuine in-order updates 0→1 with increasing values.
		const writes = 16
		updates := make([]UpdateMsg, writes)
		var out Outcome
		for i := 0; i < writes; i++ {
			req, err := client.NewRequest("x", core.Value(i+1), false)
			if err != nil {
				t.Fatal(err)
			}
			out.Reset()
			if !writer.HandleRequest(req, &out) {
				t.Fatalf("write %d rejected", i)
			}
			if len(out.Updates) != 1 || len(out.Responses) != 1 {
				t.Fatalf("write %d outcome: %+v", i, out)
			}
			updates[i] = out.Updates[0]
			updates[i].TS = updates[i].TS.Clone()
			client.AbsorbResponse(out.Responses[0])
		}

		lastVal := core.Value(0)
		seen := make(map[int]bool) // genuine updates delivered intact at least once
		for i := 0; i+1 < len(data); i += 2 {
			idx := int(data[i]) % writes
			u := updates[idx]
			u.TS = u.TS.Clone() // the receiver consumes TS; keep the pool intact
			switch data[i+1] % 8 {
			case 1: // truncated timestamp
				u.TS = u.TS[:len(u.TS)/2]
			case 2: // padded timestamp
				u.TS = append(u.TS, 0, 0)
			case 3: // sender beyond the replica set
				u.From = 9
			case 4: // negative sender
				u.From = -1
			case 5: // misrouted destination
				u.To = 0
			case 6: // nil timestamp
				u.TS = nil
			default: // deliver intact (dups and stale replays arise from repeats)
				seen[idx] = true
			}
			out.Reset()
			recv.HandleUpdate(u, &out)
			for _, ev := range out.Events {
				if !ev.IsApply {
					continue
				}
				if ev.Apply.Val <= lastVal {
					t.Fatalf("applied value %d after %d: out of send order", ev.Apply.Val, lastVal)
				}
				lastVal = ev.Apply.Val
			}
			// Exact pending model: an intact update buffers iff its
			// predecessors have not all arrived, and buffers ONCE — dups of
			// buffered updates must be discarded, dups of applied updates
			// must be discarded, so pending is exactly the distinct
			// not-yet-applied updates ever seen.
			wantPending := 0
			for j := range seen {
				if core.Value(j+1) > lastVal {
					wantPending++
				}
			}
			if got := recv.PendingUpdates(); got != wantPending {
				t.Fatalf("pending = %d, model %d (applied through %d, seen %d)",
					got, wantPending, lastVal, len(seen))
			}
		}
	})
}
