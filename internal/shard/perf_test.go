package shard

import (
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestShardedBeatsSequentialClusters gates the sharding tentpole's
// headline claim: a long-lived sharded runtime hosting 1k Ring(8)
// spaces on a fixed worker pool must push ≥5× the aggregate ops/s of
// running the same 1k per-space scripts through 1k sequentially
// created single-space clusters on the same worker budget.
//
// Each side runs in its default configuration — the system a caller
// actually gets. The sequential side is the repo's pre-shard way to
// host a space: a sim.Cluster with its causality oracle, paying pool
// spin-up/teardown per space per wave (holding 1k live clusters
// instead would need 1000× the worker budget, the resource wall the
// shard layer exists to avoid). The sharded side runs audit-off, its
// documented default: per-space oracles dominate memory at thousands
// of spaces, and TestShardedMatchesIndependentClusters transfers the
// correctness evidence from audited single-space runs instead.
//
// Timing is the median of three waves after two warmups (pool and
// lazily-built state fill over the first waves) to shed scheduler
// noise.
func TestShardedBeatsSequentialClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput-ratio gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing ratios are meaningless under the race detector")
	}
	const (
		spaces      = 1000
		opsPerSpace = 16
		workers     = 8
		seed        = 5
	)
	g := sharegraph.Ring(8)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := workload.GenerateMulti(g, workload.MultiOptions{
		Spaces: spaces, Ops: spaces * opsPerSpace, Zipf: 1.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	median := func(warmups, rounds int, wave func()) time.Duration {
		for i := 0; i < warmups; i++ {
			wave()
		}
		times := make([]time.Duration, rounds)
		for i := range times {
			start := time.Now()
			wave()
			times[i] = time.Since(start)
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return times[rounds/2]
	}

	r, err := New(g, p, Options{Spaces: spaces, Workers: workers, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded := median(2, 3, func() { r.RunMulti(ms, 0) })
	if st := r.Stats(); st.Messages == 0 {
		t.Fatal("sharded run delivered no envelopes")
	}
	r.Close()

	scripts := make([]workload.Script, spaces)
	for s := range scripts {
		scripts[s] = ms.PerSpace(s)
	}
	sequential := median(1, 3, func() {
		for s := 0; s < spaces; s++ {
			if len(scripts[s]) == 0 {
				continue
			}
			c, err := sim.NewCluster(g, p,
				sim.WithWorkers(workers),
				sim.WithSeed(workload.SpaceSeed(seed, s)))
			if err != nil {
				t.Fatal(err)
			}
			if v := c.RunScript(scripts[s]); len(v) != 0 {
				t.Fatalf("space %d: %d oracle violations", s, len(v))
			}
			c.Close()
		}
	})

	ratio := float64(sequential) / float64(sharded)
	t.Logf("sharded=%v sequential=%v ratio=%.2f×", sharded, sequential, ratio)
	if ratio < 5 {
		t.Errorf("sharded runtime only %.2f× the sequential-cluster aggregate, want ≥5× (sharded=%v sequential=%v)",
			ratio, sharded, sequential)
	}
}
