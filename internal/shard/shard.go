// Package shard is the multi-tenant scaling layer between the protocol
// and the worker-pool engine: it hosts thousands of independent register
// spaces — each its own set of core.Node state machines over one shared
// placement graph, optionally its own causality oracle — multiplexed
// onto a fixed pool of delivery workers.
//
// The paper (conf_podc_XiangV19) bounds one space at ≤64 replicas; fleet
// scale comes from multiplexing many small spaces, not growing one. Two
// mechanisms make the multiplexing cheap:
//
//   - Routing: every space is statically placed on a shard
//     (space mod Shards), and each shard is one bounded inbox of the
//     shared runtime.Engine. The engine's Send/Forward contract carries
//     over unchanged: client writes block while their shard's inbox is
//     full; deliveries that emit follow-on messages never block.
//
//   - Envelope batching: emitted envelopes are staged in a per-shard
//     outbox and travel as one batch message — one inbox push (and, on
//     a future network path, one wire.KindBatch frame) carries many
//     updates, amortizing per-message dispatch. Batches flush on size
//     (FlushSize envelopes) and on idle (a flusher sweeps outboxes every
//     FlushInterval, bounding staging latency). Batch buffers and
//     metadata are pooled, so the steady-state hot path allocates
//     nothing.
//
// When batching loses: a latency-sensitive, low-rate workload pays up
// to FlushInterval of staging delay per hop for no amortization win —
// set FlushSize to 1 to degenerate into the unbatched per-envelope path.
package shard

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Options configures a Runtime. The zero value of every field selects
// the documented default.
type Options struct {
	// Spaces is the number of independent register spaces (required,
	// ≥ 1).
	Spaces int
	// Shards is the number of engine inboxes the spaces multiplex onto
	// (default min(Spaces, 4×workers)). Space s lands on shard
	// s mod Shards.
	Shards int
	// Workers is the delivery worker-pool size (engine default:
	// GOMAXPROCS, at least 2).
	Workers int
	// InboxCapacity bounds each shard's inbox in batches (engine
	// default 1024). Client writes block while their shard is full.
	InboxCapacity int
	// FlushSize is the envelope count that flushes a staged batch
	// (default 32). 1 disables batching.
	FlushSize int
	// FlushInterval bounds how long a partial batch may sit staged
	// before the idle flusher pushes it (default 1ms).
	FlushInterval time.Duration
	// Seed drives the engine's per-inbox delivery shuffles.
	Seed int64
	// Audit runs one causality oracle per space. Off by default: at
	// thousands of spaces the oracles dominate memory, and the sharded
	// differential test pins correctness against audited single-space
	// runs instead.
	Audit bool
	// Metrics arms the observability registry: per-replica delivery
	// counters (aggregated across spaces), per-edge traffic, per-shard
	// inbox-depth gauges and batch-size stats, snapshotted by Metrics.
	// Disarmed (default) the hooks cost one nil check.
	Metrics bool
}

func (o Options) withDefaults(workers int) Options {
	if o.Shards <= 0 {
		o.Shards = min(o.Spaces, 4*workers)
	}
	if o.Shards > o.Spaces {
		o.Shards = o.Spaces
	}
	if o.FlushSize <= 0 {
		o.FlushSize = 32
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = time.Millisecond
	}
	return o
}

// item is one envelope of a batch, tagged with its register space.
type item struct {
	space int32
	env   core.Envelope
}

// batch is the engine message: all envelopes staged for one shard since
// the last flush. Dest is the shard, so per-shard inboxes bound batches,
// not envelopes — the overshoot is at most FlushSize-1 envelopes per
// slot.
type batch struct {
	shard int
	items []item
}

// Dest implements runtime.Message.
func (b *batch) Dest() int { return b.shard }

// outbox is one shard's staging buffer: envelopes accumulate here until
// a size or idle flush detaches the batch and hands it to the engine.
type outbox struct {
	mu  sync.Mutex
	cur *batch // nil when nothing is staged
}

// Runtime hosts Options.Spaces independent space instances multiplexed
// over one engine. All spaces share one placement graph and protocol;
// their node sets, locks and (optional) oracles are per space.
type Runtime struct {
	g        *sharegraph.Graph
	protocol core.Protocol
	opts     Options
	replicas int

	nodes    [][]core.Node // [space][replica]
	mu       []sync.Mutex  // [space*replicas + replica]
	trackers []*causality.Tracker

	eng     *rt.Engine[*batch]
	out     []outbox
	meta    transport.BytePool
	batches sync.Pool // *batch
	sinks   sync.Pool // *spaceSink

	flushDone chan struct{}
	flushWG   sync.WaitGroup

	idSeq    atomic.Int64
	closed   atomic.Bool
	msgs     atomic.Int64
	nbatches atomic.Int64
	metaB    atomic.Int64

	// reg is nil unless Options.Metrics armed it; all recording calls
	// below are nil-safe. Replica counters aggregate across spaces
	// (space s, replica j → replica j); queue gauges are per shard.
	reg *obs.Registry
}

// New builds and starts a sharded runtime: protocol.NewNodes() is
// instantiated once per space, the engine's worker pool starts, and the
// idle flusher begins sweeping outboxes. Callers must Close.
func New(g *sharegraph.Graph, protocol core.Protocol, opts Options) (*Runtime, error) {
	if opts.Spaces <= 0 {
		return nil, fmt.Errorf("shard: space count %d, need at least one", opts.Spaces)
	}
	engOpts := rt.Options{
		Workers:       opts.Workers,
		InboxCapacity: opts.InboxCapacity,
		Seed:          opts.Seed,
	}
	r := &Runtime{
		g:         g,
		protocol:  protocol,
		replicas:  g.NumReplicas(),
		flushDone: make(chan struct{}),
	}
	r.nodes = make([][]core.Node, opts.Spaces)
	for s := range r.nodes {
		nodes, err := protocol.NewNodes()
		if err != nil {
			return nil, fmt.Errorf("shard: build space %d: %w", s, err)
		}
		r.nodes[s] = nodes
	}
	r.mu = make([]sync.Mutex, opts.Spaces*r.replicas)
	if opts.Audit {
		r.trackers = make([]*causality.Tracker, opts.Spaces)
		for s := range r.trackers {
			r.trackers[s] = causality.NewTracker(g)
		}
	}
	r.batches.New = func() any { return &batch{} }
	r.sinks.New = func() any { return &spaceSink{r: r} }
	// The shard default derives from the resolved worker count, so
	// mirror the engine's worker default before sizing its inboxes.
	workers := opts.Workers
	if workers <= 0 {
		workers = max(2, goruntime.GOMAXPROCS(0))
	}
	r.opts = opts.withDefaults(workers)
	r.out = make([]outbox, r.opts.Shards)
	if r.opts.Metrics {
		r.reg = obs.New(r.replicas, r.opts.Shards)
		engOpts.Obs = r.reg
	}
	r.eng = rt.New(r.opts.Shards, engOpts, r.deliver)
	r.flushWG.Add(1)
	go r.flusher()
	return r, nil
}

// Graph returns the shared placement graph.
func (r *Runtime) Graph() *sharegraph.Graph { return r.g }

// Spaces returns the hosted space count.
func (r *Runtime) Spaces() int { return len(r.nodes) }

// Shards returns the resolved shard count.
func (r *Runtime) Shards() int { return r.opts.Shards }

// Workers returns the delivery worker-pool size.
func (r *Runtime) Workers() int { return r.eng.Workers() }

// Router returns the flat-key router for this runtime's geometry.
func (r *Runtime) Router() Router {
	return Router{Spaces: r.Spaces(), Shards: r.opts.Shards}
}

func (r *Runtime) lockFor(space int, rep sharegraph.ReplicaID) *sync.Mutex {
	return &r.mu[space*r.replicas+int(rep)]
}

// spaceSink implements core.Sink for one node call: Meta buffers are
// copied through the recycling pool inside the node's lock (satisfying
// the consume-before-next-call contract), then staged into the space's
// shard outbox after the lock is released. one and full are pooled
// scratch so the flush path performs no allocation.
type spaceSink struct {
	r    *Runtime
	envs []core.Envelope
	full []*batch
	one  [1]*batch
}

// Emit implements core.Sink.
func (s *spaceSink) Emit(env core.Envelope) {
	env.Meta = s.r.meta.Copy(env.Meta)
	s.envs = append(s.envs, env)
}

func (r *Runtime) getSink() *spaceSink { return r.sinks.Get().(*spaceSink) }

func (r *Runtime) putSink(s *spaceSink) {
	s.envs = s.envs[:0]
	s.full = s.full[:0]
	s.one[0] = nil
	r.sinks.Put(s)
}

func (r *Runtime) getBatch(shard int) *batch {
	b := r.batches.Get().(*batch)
	b.shard = shard
	return b
}

func (r *Runtime) putBatch(b *batch) {
	// Zero the items so the pooled batch does not pin recycled Meta
	// buffers or register strings.
	clear(b.items)
	b.items = b.items[:0]
	r.batches.Put(b)
}

// stage appends the sink's staged envelopes to the space's shard outbox
// and pushes every batch that reached FlushSize. backpressure selects
// the engine contract for those pushes: Send (blocking, client path) or
// Forward (worker path).
func (r *Runtime) stage(s *spaceSink, space int, backpressure bool) {
	if len(s.envs) == 0 {
		return
	}
	sh := space % r.opts.Shards
	ob := &r.out[sh]
	s.full = s.full[:0]
	ob.mu.Lock()
	for _, env := range s.envs {
		if ob.cur == nil {
			ob.cur = r.getBatch(sh)
		}
		ob.cur.items = append(ob.cur.items, item{space: int32(space), env: env})
		if len(ob.cur.items) >= r.opts.FlushSize {
			s.full = append(s.full, ob.cur)
			ob.cur = nil
		}
	}
	ob.mu.Unlock()
	// Pushes happen outside every lock: Send may block on a full inbox,
	// and a worker needing the outbox (or the node) must stay free to
	// drain it.
	for i, b := range s.full {
		r.push(s, b, backpressure)
		s.full[i] = nil
	}
	s.full = s.full[:0]
	s.envs = s.envs[:0]
}

// push hands one detached batch to the engine. A batch the engine drops
// (shutdown race) is recycled here, metadata included, so the pool's
// leak accounting stays balanced.
func (r *Runtime) push(s *spaceSink, b *batch, backpressure bool) {
	n := len(b.items)
	bytes := int64(0)
	for i := range b.items {
		bytes += int64(len(b.items[i].env.Meta))
	}
	// Per-edge attribution must happen before the engine sees the batch:
	// once accepted, a worker may deliver and recycle it concurrently.
	// The one batch a shutdown race rejects is therefore over-counted in
	// the registry (not in the authoritative Stats totals below) —
	// harmless for monitoring, unsafe to fix by reading b.items later.
	if r.reg != nil {
		r.reg.Batch(n)
		for i := range b.items {
			env := &b.items[i].env
			r.reg.Sent(int(env.From), int(env.To), len(env.Meta))
		}
	}
	s.one[0] = b
	var accepted int
	if backpressure {
		accepted = r.eng.Send(s.one[:]...)
	} else {
		accepted = r.eng.Forward(s.one[:]...)
	}
	s.one[0] = nil
	if accepted == 0 {
		for i := range b.items {
			r.meta.Put(b.items[i].env.Meta)
		}
		r.putBatch(b)
		return
	}
	r.nbatches.Add(1)
	r.msgs.Add(int64(n))
	r.metaB.Add(bytes)
}

// deliver unpacks one batch: each envelope is ingested at its space's
// destination node, applied updates are reported to the space's oracle,
// and follow-on emits are staged back through the outbox (Forward
// contract — a delivering worker never blocks).
func (r *Runtime) deliver(b *batch) {
	s := r.getSink()
	for i := range b.items {
		space := int(b.items[i].space)
		env := b.items[i].env
		mu := r.lockFor(space, env.To)
		mu.Lock()
		applied := r.nodes[space][env.To].HandleMessage(env, s)
		if r.trackers != nil {
			tr := r.trackers[space]
			for _, a := range applied {
				tr.OnApply(env.To, a.OracleID)
			}
		}
		mu.Unlock()
		if r.reg != nil {
			na := len(applied)
			if env.MetaOnly {
				na = obs.MetaOnly
			}
			r.reg.Deliver(int(env.From), int(env.To), na)
		}
		// The node has decoded (or rejected) the metadata; recycle it.
		r.meta.Put(env.Meta)
		r.stage(s, space, false)
	}
	r.putBatch(b)
	r.putSink(s)
}

// issueID reports a client write to the space's oracle, or mints a bare
// ID when auditing is off. Callers hold the writer node's lock.
func (r *Runtime) issueID(space int, rep sharegraph.ReplicaID, x sharegraph.Register) causality.UpdateID {
	if r.trackers != nil {
		return r.trackers[space].OnIssue(rep, x)
	}
	return causality.UpdateID(r.idSeq.Add(1) - 1)
}

// Write performs a client write at replica rep of space, blocking while
// the space's shard inbox is at capacity (the backpressure contract).
// The write is staged: it reaches the engine when its batch fills or the
// idle flusher sweeps, whichever is first.
func (r *Runtime) Write(space int, rep sharegraph.ReplicaID, x sharegraph.Register, v core.Value) error {
	if r.closed.Load() {
		return fmt.Errorf("shard: closed")
	}
	if space < 0 || space >= len(r.nodes) {
		return fmt.Errorf("shard: space %d outside [0,%d)", space, len(r.nodes))
	}
	s := r.getSink()
	mu := r.lockFor(space, rep)
	mu.Lock()
	id := r.issueID(space, rep, x)
	err := r.nodes[space][rep].HandleWrite(x, v, id, s)
	mu.Unlock()
	if err != nil {
		r.putSink(s)
		return fmt.Errorf("shard: write at space %d replica %d: %w", space, rep, err)
	}
	r.stage(s, space, true)
	r.putSink(s)
	return nil
}

// Read returns replica rep's local copy of x in space.
func (r *Runtime) Read(space int, rep sharegraph.ReplicaID, x sharegraph.Register) (core.Value, bool) {
	if space < 0 || space >= len(r.nodes) {
		return 0, false
	}
	mu := r.lockFor(space, rep)
	mu.Lock()
	defer mu.Unlock()
	return r.nodes[space][rep].Read(x)
}

// flusher is the idle-flush loop: every FlushInterval it detaches every
// staged batch and forwards it, bounding how long an envelope can sit in
// an outbox regardless of traffic.
func (r *Runtime) flusher() {
	defer r.flushWG.Done()
	t := time.NewTicker(r.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-r.flushDone:
			return
		case <-t.C:
			r.flushAll()
		}
	}
}

// flushAll detaches and forwards every outbox's staged batch.
func (r *Runtime) flushAll() {
	s := r.getSink()
	for i := range r.out {
		ob := &r.out[i]
		ob.mu.Lock()
		b := ob.cur
		ob.cur = nil
		ob.mu.Unlock()
		if b != nil {
			r.push(s, b, false)
		}
	}
	r.putSink(s)
}

// outboxesEmpty reports whether nothing is staged anywhere.
func (r *Runtime) outboxesEmpty() bool {
	for i := range r.out {
		ob := &r.out[i]
		ob.mu.Lock()
		empty := ob.cur == nil
		ob.mu.Unlock()
		if !empty {
			return false
		}
	}
	return true
}

// Quiesce blocks until no messages are in flight anywhere: outboxes
// empty and the engine idle. Batching makes this a fixpoint loop — a
// draining delivery may stage new envelopes after a sweep, so Quiesce
// alternates flushing and engine quiescence until both hold at once.
// Callers stop issuing writes first (updates stuck in protocol pending
// buffers do not count, as with the engine's own Quiesce).
func (r *Runtime) Quiesce() {
	for {
		r.flushAll()
		r.eng.Quiesce()
		if r.outboxesEmpty() && r.eng.Outstanding() == 0 {
			return
		}
	}
}

// Close rejects further writes, stops the idle flusher, pushes staged
// leftovers, and shuts the engine down after the drain. No goroutines
// outlive the runtime.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.flushDone)
	r.flushWG.Wait()
	r.flushAll()
	r.eng.Close()
}

// AuditViolations runs every space oracle's liveness check and returns
// all violations. Empty (and cheap) when auditing is off.
func (r *Runtime) AuditViolations() []causality.Violation {
	var out []causality.Violation
	for _, tr := range r.trackers {
		if tr == nil {
			continue
		}
		tr.CheckLiveness()
		out = append(out, tr.Violations()...)
	}
	return out
}

// StateSnapshot returns space's per-replica register contents — the
// same shape sim.Cluster.StateSnapshot produces, so sharded and
// single-space runs compare directly. Call after Quiesce.
func (r *Runtime) StateSnapshot(space int) []map[sharegraph.Register]core.Value {
	out := make([]map[sharegraph.Register]core.Value, r.replicas)
	for rep := 0; rep < r.replicas; rep++ {
		id := sharegraph.ReplicaID(rep)
		regs := r.g.Stores(id).Sorted()
		m := make(map[sharegraph.Register]core.Value, len(regs))
		mu := r.lockFor(space, id)
		mu.Lock()
		for _, x := range regs {
			if v, ok := r.nodes[space][id].Read(x); ok {
				m[x] = v
			}
		}
		mu.Unlock()
		out[rep] = m
	}
	return out
}

// Stats are the runtime's aggregate transport counters.
type Stats struct {
	Messages  int64 // envelopes accepted by the engine
	Batches   int64 // batch pushes accepted by the engine
	MetaBytes int64 // metadata bytes across accepted envelopes
}

// AvgBatch returns the mean envelopes per batch.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.Batches)
}

// Stats returns the runtime's counters so far.
func (r *Runtime) Stats() Stats {
	return Stats{
		Messages:  r.msgs.Load(),
		Batches:   r.nbatches.Load(),
		MetaBytes: r.metaB.Load(),
	}
}

// Metrics snapshots the runtime in the unified observability schema.
// Legacy totals (batches, envelopes, metadata bytes) are always
// present; per-replica and per-edge breakdowns require Options.Metrics.
// Replica counters aggregate across all spaces; engine inbox gauges
// appear under Snapshot.Queues, indexed by shard (the runtime's queue
// index space is shards, not replicas).
func (r *Runtime) Metrics() obs.Snapshot {
	s := r.reg.Snapshot()
	s.Runtime = "sharded"
	s.Envelopes = r.msgs.Load()
	s.Messages = r.msgs.Load()
	s.Batches = r.nbatches.Load()
	s.MetaBytes = r.metaB.Load()
	s.Outstanding = int64(r.eng.Outstanding())
	return s
}

// RunMulti executes a multi-tenant workload over a bounded driver pool:
// each (space, replica) client is pinned to one driver goroutine, so
// per-replica program order is preserved within every space while the
// goroutine count stays fixed at drivers (default: the worker count).
// Returns the aggregated audit violations after quiescing (nil without
// auditing).
func (r *Runtime) RunMulti(ms *workload.MultiScript, drivers int) []causality.Violation {
	if drivers <= 0 {
		drivers = r.eng.Workers()
	}
	queues := make([][]workload.MultiOp, drivers)
	for _, mo := range ms.Ops {
		d := (mo.Space*31 + int(mo.Op.Replica)) % drivers
		queues[d] = append(queues[d], mo)
	}
	var wg sync.WaitGroup
	var val atomic.Int64
	for d := range queues {
		if len(queues[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ops []workload.MultiOp) {
			defer wg.Done()
			for _, mo := range ops {
				if mo.Op.IsRead {
					r.Read(mo.Space, mo.Op.Replica, mo.Op.Reg)
					continue
				}
				v := core.Value(mo.Op.Val)
				if v == 0 {
					v = core.Value(val.Add(1))
				}
				_ = r.Write(mo.Space, mo.Op.Replica, mo.Op.Reg, v)
			}
		}(queues[d])
	}
	wg.Wait()
	r.Quiesce()
	if r.trackers == nil {
		return nil
	}
	return r.AuditViolations()
}
