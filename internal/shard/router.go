package shard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sharegraph"
)

// Route is the placement of one multi-tenant key: the register space it
// belongs to, the shard (engine inbox) that space's traffic multiplexes
// onto, and the in-space register name.
type Route struct {
	Space int
	Shard int
	Reg   sharegraph.Register
}

// Router maps flat multi-tenant keys onto (space, shard, register)
// routes. A key is "s<space>/<register>" — the register namespace of
// every space is the shared placement graph's, so the space prefix is
// the only additional coordinate a client needs.
//
// Space→shard placement is static modulo hashing: space s lands on
// shard s mod Shards. Every message of one space therefore serializes
// through one inbox, which is what lets thousands of spaces share a
// fixed worker pool without per-space goroutines.
type Router struct {
	Spaces int
	Shards int
}

// Place returns the shard hosting space s.
func (ro Router) Place(s int) int { return s % ro.Shards }

// Key formats the flat key for register reg of space s.
func (ro Router) Key(s int, reg sharegraph.Register) string {
	return "s" + strconv.Itoa(s) + "/" + string(reg)
}

// Resolve parses a flat key into its route, validating the space index
// against the router's bounds.
func (ro Router) Resolve(key string) (Route, error) {
	rest, ok := strings.CutPrefix(key, "s")
	if !ok {
		return Route{}, fmt.Errorf("shard: key %q: want s<space>/<register>", key)
	}
	spaceStr, reg, ok := strings.Cut(rest, "/")
	if !ok {
		return Route{}, fmt.Errorf("shard: key %q: missing register separator", key)
	}
	space, err := strconv.Atoi(spaceStr)
	if err != nil {
		return Route{}, fmt.Errorf("shard: key %q: bad space index: %v", key, err)
	}
	if space < 0 || space >= ro.Spaces {
		return Route{}, fmt.Errorf("shard: key %q: space %d outside [0,%d)", key, space, ro.Spaces)
	}
	return Route{Space: space, Shard: ro.Place(space), Reg: sharegraph.Register(reg)}, nil
}
