package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

func newRing(t testing.TB, replicas int, opts Options) *Runtime {
	t.Helper()
	g := sharegraph.Ring(replicas)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterRoundTrip(t *testing.T) {
	ro := Router{Spaces: 100, Shards: 8}
	for _, s := range []int{0, 7, 8, 99} {
		key := ro.Key(s, "x/with/slashes")
		route, err := ro.Resolve(key)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", key, err)
		}
		if route.Space != s || route.Shard != s%8 || route.Reg != "x/with/slashes" {
			t.Errorf("Resolve(%q) = %+v", key, route)
		}
	}
	for _, bad := range []string{"", "x3", "s5", "s100/x", "s-1/x", "sfoo/x"} {
		if _, err := ro.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q): expected error", bad)
		}
	}
}

// TestShardedBasicConvergence runs an audited multi-tenant workload and
// checks every space's oracle stays clean and every space converged to a
// consistent final state across replicas of shared registers.
func TestShardedBasicConvergence(t *testing.T) {
	const spaces = 12
	r := newRing(t, 5, Options{Spaces: spaces, Audit: true, Seed: 3, FlushSize: 8, FlushInterval: 200 * time.Microsecond})
	defer r.Close()
	ms, err := workload.GenerateMulti(r.Graph(), workload.MultiOptions{Spaces: spaces, Ops: 1500, Zipf: 1.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.RunMulti(ms, 0); len(v) > 0 {
		t.Fatalf("%d oracle violations, first: %v", len(v), v[0])
	}
	for s := 0; s < spaces; s++ {
		snaps := r.StateSnapshot(s)
		for _, x := range r.Graph().Registers() {
			var want core.Value
			seen := false
			for _, rep := range r.Graph().Holders(x) {
				v, ok := snaps[rep][x]
				if !ok {
					continue
				}
				if seen && v != want {
					t.Fatalf("space %d register %s: replicas diverge (%d vs %d)", s, x, v, want)
				}
				want, seen = v, true
			}
		}
	}
	if st := r.Stats(); st.Batches > 0 && st.AvgBatch() < 1 {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestShardedBackpressureTinyInboxes is the deadlock hunt: one-slot
// shard inboxes, single-envelope batches, many spaces funneled onto few
// shards, and concurrent writers — the Send path must block and recover
// rather than deadlock against delivering workers (run under -race in
// CI).
func TestShardedBackpressureTinyInboxes(t *testing.T) {
	const spaces = 16
	r := newRing(t, 4, Options{
		Spaces: spaces, Shards: 2, Workers: 2,
		InboxCapacity: 1, FlushSize: 1, FlushInterval: 50 * time.Microsecond,
		Seed: 7,
	})
	defer r.Close()
	ms, err := workload.GenerateMulti(r.Graph(), workload.MultiOptions{Spaces: spaces, Ops: 2000, Zipf: 1.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.RunMulti(ms, 8)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sharded run deadlocked under tiny inboxes")
	}
}

// TestShardedWriteErrors covers the validation paths.
func TestShardedWriteErrors(t *testing.T) {
	r := newRing(t, 3, Options{Spaces: 2})
	if err := r.Write(5, 0, "x0", 1); err == nil {
		t.Error("out-of-range space accepted")
	}
	if err := r.Write(0, 0, "not-a-register", 1); err == nil {
		t.Error("unknown register accepted")
	}
	if _, ok := r.Read(9, 0, "x0"); ok {
		t.Error("out-of-range space read ok")
	}
	r.Close()
	if err := r.Write(0, 0, "x0", 1); err == nil {
		t.Error("write after close accepted")
	}
	r.Close() // idempotent
}

// TestShardedQuiesceFlushesStaged pins the fixpoint property batching
// introduces: a write staged below FlushSize is invisible to the engine
// until a flush, and Quiesce must still deliver it before returning.
func TestShardedQuiesceFlushesStaged(t *testing.T) {
	// A flush interval far beyond the test's runtime proves Quiesce did
	// the sweep itself rather than racing the idle flusher.
	r := newRing(t, 4, Options{Spaces: 1, FlushSize: 1 << 20, FlushInterval: time.Hour})
	defer r.Close()
	g := r.Graph()
	var reg sharegraph.Register
	var owner sharegraph.ReplicaID
	for _, x := range g.Registers() {
		if h := g.Holders(x); len(h) >= 2 {
			reg, owner = x, h[0]
			break
		}
	}
	if err := r.Write(0, owner, reg, 42); err != nil {
		t.Fatal(err)
	}
	r.Quiesce()
	for _, rep := range g.Holders(reg) {
		if v, ok := r.Read(0, rep, reg); !ok || v != 42 {
			t.Fatalf("replica %d: %v (ok=%v) after quiesce, want 42", rep, v, ok)
		}
	}
}

// TestShardedConcurrentMixedSpaces hammers many goroutines across many
// spaces at once — the routing layer must keep spaces isolated (values
// written in one space never bleed into another).
func TestShardedConcurrentMixedSpaces(t *testing.T) {
	const spaces = 8
	r := newRing(t, 4, Options{Spaces: spaces, Seed: 5})
	defer r.Close()
	g := r.Graph()
	reg := g.Registers()[0]
	owner := g.Holders(reg)[0]
	var wg sync.WaitGroup
	for s := 0; s < spaces; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.Write(s, owner, reg, core.Value(1000*s+i)); err != nil {
					t.Errorf("space %d write %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	r.Quiesce()
	for s := 0; s < spaces; s++ {
		want := core.Value(1000*s + 199)
		for _, rep := range g.Holders(reg) {
			if v, ok := r.Read(s, rep, reg); !ok || v != want {
				t.Fatalf("space %d replica %d: %v (ok=%v), want %v — space isolation broken", s, rep, v, ok, want)
			}
		}
	}
}

// TestShardedBatchingSteadyStateZeroAlloc asserts the acceptance
// criterion: once warmed, staging a write, flushing its batch and
// delivering it end to end performs no allocation. Single worker and a
// parked idle flusher keep the measurement stable; the cycle ends with
// Quiesce so every Meta buffer returns to the pool before the next
// cycle draws from it.
func TestShardedBatchingSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool sheds items, so alloc accounting is meaningless")
	}
	r := newRing(t, 4, Options{
		Spaces: 2, Shards: 1, Workers: 1,
		FlushSize: 16, FlushInterval: time.Hour, Seed: 1,
	})
	defer r.Close()
	g := r.Graph()
	reg := g.Registers()[0]
	owner := g.Holders(reg)[0]
	cycle := func() {
		for i := 0; i < 64; i++ {
			if err := r.Write(i%2, owner, reg, core.Value(i)); err != nil {
				t.Fatal(err)
			}
		}
		r.Quiesce()
	}
	for i := 0; i < 16; i++ { // warm pools, slice capacities and inboxes
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("sharded batching hot path allocates: %.2f allocs per 64-write cycle", avg)
	}
}

// TestShardDefaults pins the documented defaulting rules.
func TestShardDefaults(t *testing.T) {
	r := newRing(t, 3, Options{Spaces: 2})
	defer r.Close()
	if r.Shards() != 2 { // clamped to Spaces
		t.Errorf("Shards = %d, want 2 (clamped to Spaces)", r.Shards())
	}
	r2 := newRing(t, 3, Options{Spaces: 1000, Workers: 2})
	defer r2.Close()
	if r2.Shards() != 8 {
		t.Errorf("Shards = %d, want 4×workers = 8", r2.Shards())
	}
	ro := r2.Router()
	if ro.Spaces != 1000 || ro.Shards != 8 {
		t.Errorf("Router = %+v", ro)
	}
	if _, err := New(r.Graph(), nil, Options{Spaces: 0}); err == nil {
		t.Error("zero spaces accepted")
	}
}

func BenchmarkShardWriteStage(b *testing.B) {
	r := newRing(b, 8, Options{Spaces: 64, FlushSize: 32, Seed: 1})
	defer r.Close()
	g := r.Graph()
	reg := g.Registers()[0]
	owner := g.Holders(reg)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Write(i%64, owner, reg, core.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.Quiesce()
}
