package shard

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestShardedMatchesIndependentClusters is the sharding acceptance
// differential: one multiplexed run of N spaces must leave every space
// in exactly the state an independent single-space sim.Cluster reaches
// on that space's script. GenerateMulti's per-space decomposition makes
// the comparison exact — PerSpace(s) is reproducible from the derived
// seed alone — and OwnerWrites' single-writer pinned values make both
// final states schedule-independent, so the snapshots must be
// byte-equal in wire.FormatSnapshots form. Any divergence is a routing,
// batching or isolation bug in the shard layer.
func TestShardedMatchesIndependentClusters(t *testing.T) {
	const (
		spaces = 24
		ops    = 4000
		seed   = 17
	)
	g := sharegraph.Ring(6)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := workload.GenerateMulti(g, workload.MultiOptions{Spaces: spaces, Ops: ops, Zipf: 1.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	r, err := New(g, p, Options{
		Spaces: spaces, Shards: 4, Audit: true, Seed: seed,
		FlushSize: 8, FlushInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v := r.RunMulti(ms, 0); len(v) > 0 {
		t.Fatalf("sharded run: %d oracle violations, first: %v", len(v), v[0])
	}

	for s := 0; s < spaces; s++ {
		script := ms.PerSpace(s)
		ref, err := sim.NewCluster(g, p, sim.WithSeed(workload.SpaceSeed(seed, s)))
		if err != nil {
			t.Fatal(err)
		}
		if v := ref.RunScript(script); len(v) > 0 {
			ref.Close()
			t.Fatalf("independent run of space %d: %d oracle violations", s, len(v))
		}
		want := wire.FormatSnapshots(ref.StateSnapshot())
		ref.Close()
		got := wire.FormatSnapshots(r.StateSnapshot(s))
		if got != want {
			t.Errorf("space %d (%d ops) diverges:\nsharded:\n%s\nindependent:\n%s", s, len(script), got, want)
		}
	}
}
