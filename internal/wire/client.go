package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// Client drives a deployed cluster: one connection per replica, writes
// streamed fire-and-forget (TCP ordering preserves each replica's
// program order), and a counter-based quiesce protocol that detects when
// every update the workload produced has been delivered and applied.
type Client struct {
	cfg   ClusterConfig
	conns []*clientConn
}

// clientConn is one replica link. Request/response exchanges hold mu for
// the round trip; plain writes hold it per frame. One goroutine drives
// each replica during a scripted run, so contention is nil in practice.
type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
}

// Dial connects to every replica in the config, retrying each with the
// shared capped-backoff discipline until timeout — nodes may still be
// starting when the client launches.
func Dial(cfg ClusterConfig, timeout time.Duration) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, conns: make([]*clientConn, len(cfg.Replicas))}
	deadline := time.Now().Add(timeout)
	for i, r := range cfg.Replicas {
		conn, err := dialUntil(r.Addr, deadline)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("wire: dial replica %d at %s: %w", i, r.Addr, err)
		}
		if _, err := conn.Write(AppendHello(nil, ClientID)); err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("wire: hello to replica %d: %w", i, err)
		}
		c.conns[i] = &clientConn{conn: conn, br: bufio.NewReader(conn)}
	}
	return c, nil
}

func dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	for attempts := 1; ; attempts++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(rt.Backoff(5*time.Millisecond, attempts, 500*time.Millisecond))
	}
}

// Close closes every connection.
func (c *Client) Close() {
	for _, cc := range c.conns {
		if cc != nil {
			cc.conn.Close()
		}
	}
}

// Graph returns the share graph derived from the client's config.
func (c *Client) Graph() (*sharegraph.Graph, error) { return c.cfg.Graph() }

// Write issues a client write at replica r.
func (c *Client) Write(r sharegraph.ReplicaID, reg sharegraph.Register, val core.Value) error {
	cc := c.conns[r]
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.buf = AppendWrite(cc.buf[:0], reg, val)
	if _, err := cc.conn.Write(cc.buf); err != nil {
		return fmt.Errorf("wire: write to replica %d: %w", r, err)
	}
	return nil
}

// roundTrip sends a request frame and reads one response frame, which
// must have the given kind.
func (cc *clientConn) roundTrip(req []byte, want Kind) ([]byte, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, err := cc.conn.Write(req); err != nil {
		return nil, err
	}
	body, err := ReadFrame(cc.br, &cc.buf)
	if err != nil {
		return nil, err
	}
	kind, payload, err := DecodeBody(body)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("wire: got %v response, want %v", kind, want)
	}
	return payload, nil
}

// Status polls replica r's transport counters.
func (c *Client) Status(r sharegraph.ReplicaID) (Status, error) {
	payload, err := c.conns[r].roundTrip(AppendStatusReq(nil), KindStatus)
	if err != nil {
		return Status{}, fmt.Errorf("wire: status of replica %d: %w", r, err)
	}
	s, isResp, err := DecodeStatus(payload)
	if err != nil || !isResp {
		return Status{}, fmt.Errorf("wire: status of replica %d: bad response (%v)", r, err)
	}
	return s, nil
}

// Metrics polls every replica's Status and folds the counters into the
// unified cross-runtime snapshot schema: per-replica applied/parked
// breakdowns plus cluster-wide totals. The client sees only the wire
// protocol's transport counters, so edge breakdowns are absent — scrape
// a node's /statusz (NodeOptions.StatusAddr) for those.
func (c *Client) Metrics() (obs.Snapshot, error) {
	s := obs.Snapshot{
		Runtime:  "wire",
		Replicas: make([]obs.ReplicaMetrics, len(c.conns)),
	}
	for r := range c.conns {
		st, err := c.Status(sharegraph.ReplicaID(r))
		if err != nil {
			return obs.Snapshot{}, err
		}
		s.Replicas[r] = obs.ReplicaMetrics{
			Delivered: int64(st.RecvUpd),
			Applied:   int64(st.Applied),
			Parked:    int64(st.Pending),
		}
		s.Messages += int64(st.SentUpd)
		s.Updates += int64(st.Applied)
		s.Outstanding += int64(st.QueuedOut)
		s.Parked += int64(st.Pending)
	}
	return s, nil
}

// Snapshot fetches replica r's register contents.
func (c *Client) Snapshot(r sharegraph.ReplicaID) (map[sharegraph.Register]core.Value, error) {
	payload, err := c.conns[r].roundTrip(AppendSnapshotReq(nil), KindSnapshot)
	if err != nil {
		return nil, fmt.Errorf("wire: snapshot of replica %d: %w", r, err)
	}
	st, isResp, err := DecodeSnapshot(payload)
	if err != nil || !isResp {
		return nil, fmt.Errorf("wire: snapshot of replica %d: bad response (%v)", r, err)
	}
	return st, nil
}

// Snapshots fetches every replica's state in ID order.
func (c *Client) Snapshots() ([]map[sharegraph.Register]core.Value, error) {
	out := make([]map[sharegraph.Register]core.Value, len(c.conns))
	for r := range c.conns {
		st, err := c.Snapshot(sharegraph.ReplicaID(r))
		if err != nil {
			return nil, err
		}
		out[r] = st
	}
	return out, nil
}

// Shutdown asks every replica to exit.
func (c *Client) Shutdown() error {
	for r, cc := range c.conns {
		cc.mu.Lock()
		_, err := cc.conn.Write(AppendShutdown(nil))
		cc.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wire: shutdown replica %d: %w", r, err)
		}
	}
	return nil
}

// RunScript drives a workload like sim.Cluster.RunScript: one goroutine
// per replica issues that replica's operations in script order over its
// connection (TCP preserves the per-replica program order; reads are
// performed as snapshots of the addressed register's holder, which the
// wire protocol serves non-blocking like any read).
func (c *Client) RunScript(script workload.Script) error {
	queues := make([][]workload.Op, len(c.conns))
	for _, op := range script {
		queues[op.Replica] = append(queues[op.Replica], op)
	}
	errs := make(chan error, len(queues))
	var wg sync.WaitGroup
	var val int64
	var valMu sync.Mutex
	for r := range queues {
		if len(queues[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for _, op := range queues[r] {
				if op.IsRead {
					// Reads never block and do not change state; the
					// scripted differential workloads are write-only, so a
					// read here is just a liveness touch.
					if _, err := c.Snapshot(sharegraph.ReplicaID(r)); err != nil {
						errs <- err
						return
					}
					continue
				}
				v := op.Val
				if v == 0 {
					valMu.Lock()
					val++
					v = val
					valMu.Unlock()
				}
				if err := c.Write(sharegraph.ReplicaID(r), op.Reg, core.Value(v)); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// Quiesce polls Status until the cluster is provably idle: two
// consecutive rounds with identical counters on every node, every
// outgoing queue empty, and the cluster-wide update send and receive
// totals equal (monotone counters make the double poll sound: if nothing
// changed between two rounds and nothing is queued or in flight, nothing
// can change again until new client traffic arrives).
func (c *Client) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var prev []Status
	for attempts := 1; ; attempts++ {
		cur := make([]Status, len(c.conns))
		for r := range c.conns {
			s, err := c.Status(sharegraph.ReplicaID(r))
			if err != nil {
				return err
			}
			cur[r] = s
		}
		if quiesced(prev, cur) {
			return nil
		}
		prev = cur
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: cluster did not quiesce within %v: %+v", timeout, cur)
		}
		time.Sleep(rt.Backoff(time.Millisecond, attempts, 50*time.Millisecond))
	}
}

// quiesced reports whether the two poll rounds prove idleness.
func quiesced(prev, cur []Status) bool {
	if prev == nil {
		return false
	}
	var sent, recv uint64
	for r := range cur {
		if cur[r] != prev[r] || cur[r].QueuedOut != 0 {
			return false
		}
		sent += cur[r].SentUpd
		recv += cur[r].RecvUpd
	}
	return sent == recv
}
