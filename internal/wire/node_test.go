package wire

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// loopbackConfig reserves distinct loopback ports for every replica of g
// and returns the deployment config. The reserve-then-release dance has
// an inherent race window, but loopback ports on a test host are not
// contended at that rate.
func loopbackConfig(t *testing.T, g *sharegraph.Graph, protocol string) ClusterConfig {
	t.Helper()
	cfg := ClusterConfig{Protocol: protocol, Replicas: make([]NodeAddr, g.NumReplicas())}
	lns := make([]net.Listener, len(cfg.Replicas))
	for i := range cfg.Replicas {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		cfg.Replicas[i] = NodeAddr{
			Addr:      ln.Addr().String(),
			Registers: g.Stores(sharegraph.ReplicaID(i)).Sorted(),
		}
	}
	for _, ln := range lns {
		ln.Close()
	}
	return cfg
}

// startCluster boots one wire.Node per replica and returns them serving.
func startCluster(t *testing.T, cfg ClusterConfig) []*Node {
	t.Helper()
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(cfg.Replicas))
	for i := range nodes {
		proto, err := cli.Protocol(cfg.Protocol, g)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(cfg, i, proto, NodeOptions{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go func() {
			if err := n.Serve(); err != nil {
				t.Errorf("serve: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// TestLoopbackDifferentialRing8 is the tentpole acceptance test: the
// same OwnerWrites script driven through real TCP nodes on loopback and
// through the in-process sim.Cluster must converge to byte-identical
// final states (single-writer registers with pinned values make the
// final state schedule-independent, so the two runtimes cannot disagree
// without a codec or transport bug). The pooled-buffer leak check rides
// along: after a drained run every node's BytePool balance is zero.
func TestLoopbackDifferentialRing8(t *testing.T) {
	g := sharegraph.Ring(8)
	script := workload.OwnerWrites(g, 400, 11)

	// In-process reference run (audited: the oracle must stay silent).
	proto, err := cli.Protocol("edge-indexed", g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.NewCluster(g, proto)
	if err != nil {
		t.Fatal(err)
	}
	if v := ref.RunScript(script); len(v) > 0 {
		t.Fatalf("reference run: %d oracle violations, first: %v", len(v), v[0])
	}
	want := FormatSnapshots(ref.StateSnapshot())
	ref.Close()

	// Networked run over loopback TCP.
	cfg := loopbackConfig(t, g, "edge-indexed")
	nodes := startCluster(t, cfg)
	client, err := Dial(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunScript(script); err != nil {
		t.Fatalf("networked run: %v", err)
	}
	if err := client.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snaps, err := client.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	got := FormatSnapshots(snaps)
	if got != want {
		t.Fatalf("final states diverge:\nnetworked:\n%s\nin-process:\n%s", got, want)
	}

	// The shutdown protocol and the pooled-buffer balance.
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		select {
		case <-n.ShutdownRequested():
		case <-time.After(5 * time.Second):
			t.Fatalf("replica %d never saw the shutdown request", i)
		}
	}
	client.Close()
	for i, n := range nodes {
		n.Close()
		if live := n.Pool().Live(); live != 0 {
			t.Errorf("replica %d leaks %d pooled buffers", i, live)
		}
	}
}

// TestLoopbackDifferentialProtocols runs the smaller cross-protocol
// sweep: every registered protocol must agree with its own in-process
// run on a Star topology (hub relaying exercises the Forward path).
func TestLoopbackDifferentialProtocols(t *testing.T) {
	for _, name := range []string{"edge-indexed", "matrix", "naive-vector"} {
		t.Run(name, func(t *testing.T) {
			g := sharegraph.Star(5)
			script := workload.OwnerWrites(g, 120, 3)
			proto, err := cli.Protocol(name, g)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sim.NewCluster(g, proto)
			if err != nil {
				t.Fatal(err)
			}
			ref.RunScript(script)
			want := FormatSnapshots(ref.StateSnapshot())
			ref.Close()

			cfg := loopbackConfig(t, g, name)
			startCluster(t, cfg)
			client, err := Dial(cfg, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			if err := client.RunScript(script); err != nil {
				t.Fatal(err)
			}
			if err := client.Quiesce(30 * time.Second); err != nil {
				t.Fatal(err)
			}
			snaps, err := client.Snapshots()
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatSnapshots(snaps); got != want {
				t.Fatalf("final states diverge:\nnetworked:\n%s\nin-process:\n%s", got, want)
			}
		})
	}
}

// discardServer accepts connections and discards everything — the far
// end of the encode+send hot-path measurements.
func discardServer(tb testing.TB) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, conn)
				conn.Close()
			}()
		}
	}()
	tb.Cleanup(func() {
		ln.Close()
		<-done
	})
	return ln.Addr().String()
}

func encodeSendCycle(tb testing.TB) (func(), *Transport, *transport.BytePool) {
	addr := discardServer(tb)
	pool := new(transport.BytePool)
	tr := NewTransport(0, []string{"x", addr}, pool, TransportOptions{QueueCap: 1 << 14})
	env := core.Envelope{
		From: 0, To: 1, Reg: "ring0", Val: 42,
		Meta: []byte{0x10, 0x03, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
	}
	cycle := func() {
		env.Val++
		if !tr.Send(1, AppendUpdate(pool.Get(), env)) {
			tb.Fatal("send refused")
		}
	}
	// Warm the pool, the queue slice and the connection.
	for i := 0; i < 512; i++ {
		cycle()
	}
	tr.Flush()
	return cycle, tr, pool
}

// TestWireEncodeSendAllocs pins the acceptance bound: encoding and
// sending one steady-state update costs at most one allocation per
// operation (in practice zero — the frame buffer, the queue slot and
// the writer's path are all recycled).
func TestWireEncodeSendAllocs(t *testing.T) {
	cycle, tr, _ := encodeSendCycle(t)
	avg := testing.AllocsPerRun(2000, cycle)
	tr.Flush()
	tr.Close()
	if avg > 1 {
		t.Fatalf("encode+send allocates %.2f objects/op in steady state, want <= 1", avg)
	}
}

// BenchmarkWireEncodeSend measures the hot path end to end: append-encode
// one update into a pooled buffer and hand it to the transport.
func BenchmarkWireEncodeSend(b *testing.B) {
	cycle, tr, _ := encodeSendCycle(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.StopTimer()
	tr.Flush()
	tr.Close()
}
