package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	rt "repro/internal/runtime"
	"repro/internal/transport"
)

// TransportOptions configures a Transport. The zero value selects the
// documented defaults.
type TransportOptions struct {
	// QueueCap bounds each peer's outgoing frame queue (default 1024).
	// Send blocks while a peer's queue is at capacity — the same
	// backpressure contract as the in-process engine's inboxes.
	QueueCap int
	// DialBackoffBase is the first reconnect delay (default 5ms); it
	// doubles per failed attempt up to DialBackoffMax (default 1s) —
	// the shared runtime.Backoff discipline.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// DrainAttempts bounds dial attempts per frame once Close has begun
	// (default 3): a peer that stays unreachable during shutdown should
	// not wedge the drain forever. Frames still queued when the attempts
	// run out are dropped, like messages sent after an engine shutdown.
	DrainAttempts int
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
}

func (o TransportOptions) withDefaults() TransportOptions {
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.DialBackoffBase <= 0 {
		o.DialBackoffBase = 5 * time.Millisecond
	}
	if o.DialBackoffMax <= 0 {
		o.DialBackoffMax = time.Second
	}
	if o.DrainAttempts <= 0 {
		o.DrainAttempts = 3
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	return o
}

// Transport is the TCP half of the runtime seam: the counterpart, across
// process boundaries, of internal/runtime.Engine's in-process inboxes
// (see runtime.Inboxes for the shared contract). One Transport serves one
// local replica; it owns a lazily-created outgoing connection per peer,
// each with a bounded frame queue drained by a dedicated writer
// goroutine that dials on demand and reconnects with capped exponential
// backoff.
//
//   - Send mirrors Engine.Send: it blocks while the peer's queue is at
//     capacity (client-operation backpressure).
//   - Forward mirrors Engine.Forward: it enqueues above capacity, because
//     a reader goroutine mid-delivery that blocked on a full queue could
//     deadlock two replicas forwarding to each other.
//   - Flush mirrors Quiesce for the outgoing half: it blocks until every
//     queued frame has been written to a socket.
//   - Close drains each queue to the socket (bounded redial attempts),
//     closes the connections and joins the writers.
//
// Frames are pooled []byte buffers: the transport takes ownership on
// Send/Forward and returns each buffer to the pool once written (or
// dropped), so the steady-state send path allocates nothing.
type Transport struct {
	self  int
	addrs []string
	opts  TransportOptions
	pool  *transport.BytePool

	mu      sync.Mutex
	peers   []*peer // lazily created, indexed by replica ID
	closing bool
	wg      sync.WaitGroup
}

// peer is one outgoing link: a bounded queue of encoded frames plus the
// writer goroutine that drains it.
type peer struct {
	t    *Transport
	id   int
	addr string

	mu      sync.Mutex
	cond    *sync.Cond // queue became non-empty, or closing
	space   *sync.Cond // queue dropped below capacity
	idle    *sync.Cond // queue empty and writer not mid-write
	queue   [][]byte
	head    int
	writing bool
	closing bool
	wrote   uint64 // frames fully written to a socket
	dropped uint64 // frames dropped at drain exhaustion
}

// NewTransport builds a transport for replica self of the given address
// list. Connections are dialed on first use, so peers may start in any
// order. Frames handed to Send/Forward must originate from pool (they are
// returned to it when done).
func NewTransport(self int, addrs []string, pool *transport.BytePool, opts TransportOptions) *Transport {
	return &Transport{
		self:  self,
		addrs: addrs,
		opts:  opts.withDefaults(),
		pool:  pool,
		peers: make([]*peer, len(addrs)),
	}
}

// Pool returns the frame buffer pool the transport recycles through.
func (t *Transport) Pool() *transport.BytePool { return t.pool }

func (t *Transport) peerFor(to int) (*peer, error) {
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("wire: no peer %d in %d-replica cluster", to, len(t.addrs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return nil, fmt.Errorf("wire: transport closing")
	}
	p := t.peers[to]
	if p == nil {
		p = &peer{t: t, id: to, addr: t.addrs[to]}
		p.cond = sync.NewCond(&p.mu)
		p.space = sync.NewCond(&p.mu)
		p.idle = sync.NewCond(&p.mu)
		t.peers[to] = p
		t.wg.Add(1)
		go p.writer()
	}
	return p, nil
}

// Send enqueues one encoded frame for peer to, blocking while the peer's
// queue is at capacity — the backpressure path for client operations.
// The transport takes ownership of the frame buffer. It reports whether
// the frame was accepted; frames racing shutdown are returned to the
// pool and refused.
func (t *Transport) Send(to int, frame []byte) bool { return t.enqueue(to, frame, true) }

// Forward enqueues one encoded frame without backpressure — the path for
// frames produced while delivering another frame, where blocking could
// deadlock two replicas forwarding to each other.
func (t *Transport) Forward(to int, frame []byte) bool { return t.enqueue(to, frame, false) }

func (t *Transport) enqueue(to int, frame []byte, backpressure bool) bool {
	p, err := t.peerFor(to)
	if err != nil {
		t.pool.Put(frame)
		return false
	}
	p.mu.Lock()
	if backpressure {
		for p.queued() >= t.opts.QueueCap && !p.closing {
			p.space.Wait()
		}
	}
	if p.closing {
		p.mu.Unlock()
		t.pool.Put(frame)
		return false
	}
	if p.head > 0 && p.head >= len(p.queue)/2 {
		p.queue = append(p.queue[:0], p.queue[p.head:]...)
		p.head = 0
	}
	p.queue = append(p.queue, frame)
	p.cond.Signal()
	p.mu.Unlock()
	return true
}

// queued returns the number of frames waiting. Caller holds p.mu.
func (p *peer) queued() int { return len(p.queue) - p.head }

// writer drains the peer's queue to its socket: dial on demand (capped
// exponential backoff), write, recycle the frame buffer. A frame whose
// write fails is retried on a fresh connection — the old connection dies
// with its partial bytes, so the receiver never sees a torn or duplicated
// frame from this path.
func (p *peer) writer() {
	defer p.t.wg.Done()
	var conn *outConn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		p.mu.Lock()
		for p.queued() == 0 && !p.closing {
			p.cond.Wait()
		}
		if p.queued() == 0 { // closing and drained
			p.mu.Unlock()
			return
		}
		frame := p.queue[p.head]
		p.queue[p.head] = nil
		p.head++
		p.writing = true
		closing := p.closing
		p.mu.Unlock()

		wrote := p.write(&conn, frame, closing)
		p.t.pool.Put(frame)

		p.mu.Lock()
		if wrote {
			p.wrote++
		} else {
			// write gives up only once Close has begun and the dial budget
			// is spent; the rest of the queue would hit the same wall, so
			// drop it wholesale instead of re-dialing per frame.
			p.dropped++
			for p.head < len(p.queue) {
				p.t.pool.Put(p.queue[p.head])
				p.queue[p.head] = nil
				p.head++
				p.dropped++
			}
		}
		p.writing = false
		if p.queued() == p.t.opts.QueueCap-1 {
			// Crossed back below the bound: wake blocked senders. Forward
			// overshoot re-crosses and re-signals on later pops.
			p.space.Broadcast()
		}
		if p.queued() == 0 {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
	}
}

// outConn is one established outgoing link plus its death watch. The
// receiving node never sends on update links, so a read returning on
// this conn means only one thing: the peer closed or died (FIN/RST).
// Without the watch, the first write after a quiescent peer death would
// succeed into the local socket buffer and be silently RST'd — lost
// with no error to trigger the redial-and-resend path. The watch turns
// that one-frame loss window into an immediate pre-write redial
// whenever the death was detectable before the next frame (true for any
// idle gap longer than the FIN's flight time, e.g. a crash between
// workload phases).
type outConn struct {
	net.Conn
	dead atomic.Bool
}

func (c *outConn) watch() {
	var buf [256]byte
	for {
		if _, err := c.Read(buf[:]); err != nil {
			c.dead.Store(true)
			return
		}
		// Data on an update link is unexpected but not fatal; keep
		// draining so a chatty peer cannot stall the watch.
	}
}

// write delivers one frame over the peer's connection, (re)dialing as
// needed. During a drain (closing), dial attempts are bounded so an
// unreachable peer cannot wedge shutdown; it reports whether the frame
// was written.
func (p *peer) write(conn **outConn, frame []byte, closing bool) bool {
	attempts := 0
	for {
		if *conn != nil && (*conn).dead.Load() {
			(*conn).Close()
			*conn = nil
		}
		if *conn == nil {
			c, err := p.dial(&attempts, closing)
			if err != nil {
				return false // drain attempts exhausted
			}
			*conn = &outConn{Conn: c}
			go (*conn).watch()
		}
		if _, err := (*conn).Write(frame); err == nil {
			return true
		}
		(*conn).Close()
		*conn = nil
	}
}

// dial establishes the peer connection, sending the Hello identity frame
// before any data. Retries with the shared capped-backoff discipline;
// when closing, attempts are bounded by DrainAttempts.
func (p *peer) dial(attempts *int, closing bool) (net.Conn, error) {
	for {
		*attempts++
		if closing && *attempts > p.t.opts.DrainAttempts {
			return nil, fmt.Errorf("wire: peer %d unreachable during drain", p.id)
		}
		c, err := net.DialTimeout("tcp", p.addr, p.t.opts.DialTimeout)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			hello := AppendHello(p.t.pool.Get(), p.t.self)
			_, werr := c.Write(hello)
			p.t.pool.Put(hello)
			if werr == nil {
				return c, nil
			}
			c.Close()
			err = werr
		}
		// Also give up mid-backoff if Close started while we were
		// retrying against a dead peer with live traffic queued.
		if !closing {
			p.mu.Lock()
			closing = p.closing
			p.mu.Unlock()
			if closing && *attempts > p.t.opts.DrainAttempts {
				return nil, err
			}
		}
		time.Sleep(rt.Backoff(p.t.opts.DialBackoffBase, *attempts, p.t.opts.DialBackoffMax))
	}
}

// QueuedOut returns the number of frames enqueued but not yet written to
// a socket (including one mid-write), summed over peers — the transport
// half of the quiesce condition the status protocol exposes.
func (t *Transport) QueuedOut() int {
	t.mu.Lock()
	peers := append([]*peer(nil), t.peers...)
	t.mu.Unlock()
	n := 0
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		n += p.queued()
		if p.writing {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Dropped returns the number of frames dropped across peers (drain
// exhaustion against unreachable peers); zero in a healthy run.
func (t *Transport) Dropped() uint64 {
	t.mu.Lock()
	peers := append([]*peer(nil), t.peers...)
	t.mu.Unlock()
	var n uint64
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		n += p.dropped
		p.mu.Unlock()
	}
	return n
}

// Flush blocks until every queued frame has been written to a socket —
// the outgoing half of Quiesce. Frames enqueued concurrently with Flush
// may or may not be covered.
func (t *Transport) Flush() {
	t.mu.Lock()
	peers := append([]*peer(nil), t.peers...)
	t.mu.Unlock()
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		for p.queued() > 0 || p.writing {
			p.idle.Wait()
		}
		p.mu.Unlock()
	}
}

// Close drains every peer queue to its socket (bounded redial attempts
// against unreachable peers), closes the connections, and joins the
// writer goroutines. Sends racing Close are refused and their frames
// recycled.
func (t *Transport) Close() {
	t.mu.Lock()
	t.closing = true
	peers := append([]*peer(nil), t.peers...)
	t.mu.Unlock()
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.closing = true
		p.cond.Broadcast()
		p.space.Broadcast()
		p.mu.Unlock()
	}
	t.wg.Wait()
}
