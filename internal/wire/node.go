package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// Node hosts one replica as a network server: the protocol state machine
// from internal/core behind a TCP listener, with outgoing updates routed
// through a Transport. It is the process-boundary analogue of one slot of
// sim.Cluster — the same emit contract, the same backpressure discipline,
// with the wire codec in place of in-process message structs.
//
// Inbound connections are served one reader goroutine each: peer replicas
// stream Update frames; clients stream Write frames and request Status,
// Snapshot and Shutdown. All protocol calls serialize on the node lock,
// and emitted envelopes are encoded into pooled frame buffers during
// Emit (inside the lock, satisfying the node-owned-scratch contract),
// then handed to the transport after the lock is released so
// backpressure never blocks while holding the node.
type Node struct {
	cfg   ClusterConfig
	self  sharegraph.ReplicaID
	g     *sharegraph.Graph
	node  core.Node
	stock map[string]sharegraph.Register // interned register names

	pool transport.BytePool
	tr   *Transport
	ln   net.Listener

	nodeMu sync.Mutex
	sinks  sync.Pool // *frameSink

	conns   sync.WaitGroup
	connMu  sync.Mutex
	open    map[net.Conn]struct{}
	closed  atomic.Bool
	shutReq chan struct{}
	shutOne sync.Once

	applied atomic.Uint64
	recvUpd atomic.Uint64
	sentUpd atomic.Uint64
	idSeq   atomic.Int64

	logf func(format string, args ...any)
}

// NodeOptions configures a Node.
type NodeOptions struct {
	// Transport tunes the outgoing links.
	Transport TransportOptions
	// Logf sinks diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// NewNode builds replica self of the configured cluster and starts
// listening on its configured address. The protocol must be built over
// cfg.Graph() — every process derives the same graph from the same
// placement, so all timestamp spaces agree. Serve must be called to
// accept traffic.
func NewNode(cfg ClusterConfig, self int, protocol core.Protocol, opts NodeOptions) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self < 0 || self >= len(cfg.Replicas) {
		return nil, fmt.Errorf("wire: replica id %d outside [0,%d)", self, len(cfg.Replicas))
	}
	g, err := cfg.Graph()
	if err != nil {
		return nil, err
	}
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("wire: build nodes: %w", err)
	}
	if len(nodes) != len(cfg.Replicas) {
		return nil, fmt.Errorf("wire: protocol built %d nodes for %d replicas", len(nodes), len(cfg.Replicas))
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	n := &Node{
		cfg:     cfg,
		self:    sharegraph.ReplicaID(self),
		g:       g,
		node:    nodes[self],
		stock:   make(map[string]sharegraph.Register),
		open:    make(map[net.Conn]struct{}),
		shutReq: make(chan struct{}),
		logf:    opts.Logf,
	}
	for _, x := range g.Registers() {
		n.stock[string(x)] = x
	}
	n.sinks.New = func() any { return &frameSink{n: n} }
	n.tr = NewTransport(self, cfg.Addrs(), &n.pool, opts.Transport)
	ln, err := net.Listen("tcp", cfg.Replicas[self].Addr)
	if err != nil {
		return nil, fmt.Errorf("wire: replica %d listen: %w", self, err)
	}
	n.ln = ln
	return n, nil
}

// Addr returns the listener's actual address (useful when the configured
// address had port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ShutdownRequested is closed when a client sends a Shutdown frame.
func (n *Node) ShutdownRequested() <-chan struct{} { return n.shutReq }

// Transport exposes the node's outgoing transport.
func (n *Node) Transport() *Transport { return n.tr }

// Pool exposes the node's frame buffer pool (leak checks assert its
// balance returns to zero after a drained run).
func (n *Node) Pool() *transport.BytePool { return &n.pool }

// Serve accepts connections until Close. It returns nil on clean
// shutdown.
func (n *Node) Serve() error {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return nil
			}
			return fmt.Errorf("wire: replica %d accept: %w", n.self, err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		n.connMu.Lock()
		if n.closed.Load() {
			n.connMu.Unlock()
			conn.Close()
			continue
		}
		n.open[conn] = struct{}{}
		n.connMu.Unlock()
		n.conns.Add(1)
		go n.serveConn(conn)
	}
}

// Close stops accepting, drains the outgoing transport, closes inbound
// connections and joins their readers. The orderly sequence — quiesce
// first, then Close — is the client's job (cmd/prcc-client's -shutdown
// polls Status to quiescence before sending Shutdown frames).
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.ln.Close()
	n.tr.Close()
	n.connMu.Lock()
	for c := range n.open {
		c.Close()
	}
	n.connMu.Unlock()
	n.conns.Wait()
}

func (n *Node) dropConn(conn net.Conn) {
	n.connMu.Lock()
	delete(n.open, conn)
	n.connMu.Unlock()
	conn.Close()
	n.conns.Done()
}

// serveConn is one inbound reader: Hello first, then frames until EOF.
func (n *Node) serveConn(conn net.Conn) {
	defer n.dropConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	peerID := 0
	for first := true; ; first = false {
		body, err := ReadFrame(br, &buf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !n.closed.Load() {
				n.logf("wire: replica %d: read: %v", n.self, err)
			}
			return
		}
		kind, payload, err := DecodeBody(body)
		if err != nil {
			n.logf("wire: replica %d: bad frame: %v", n.self, err)
			return
		}
		if first {
			if kind != KindHello {
				n.logf("wire: replica %d: conn opened with %v, want hello", n.self, kind)
				return
			}
			peerID, err = DecodeHello(payload)
			if err != nil {
				n.logf("wire: replica %d: bad hello: %v", n.self, err)
				return
			}
			continue
		}
		if err := n.handleFrame(conn, peerID, kind, payload); err != nil {
			n.logf("wire: replica %d: %v frame from %d: %v", n.self, kind, peerID, err)
			return
		}
	}
}

func (n *Node) handleFrame(conn net.Conn, peerID int, kind Kind, payload []byte) error {
	switch kind {
	case KindUpdate:
		env, err := DecodeUpdate(payload, n.stock)
		if err != nil {
			return err
		}
		if env.To != n.self {
			return fmt.Errorf("misrouted update for replica %d", env.To)
		}
		// Receipt is counted only after the delivery — including the flush
		// of whatever it emitted — completes: the quiesce protocol's
		// soundness rests on sum(sent) exceeding sum(recv) while any
		// update is accepted but not yet fully processed.
		n.deliver(env)
		n.recvUpd.Add(1)
		return nil
	case KindWrite:
		reg, val, err := DecodeWrite(payload)
		if err != nil {
			return err
		}
		if x, ok := n.stock[string(reg)]; ok {
			reg = x
		}
		return n.clientWrite(reg, val)
	case KindStatus:
		if _, isResp, err := DecodeStatus(payload); err != nil {
			return err
		} else if isResp {
			return fmt.Errorf("unexpected status response")
		}
		frame := AppendStatus(n.pool.Get(), n.Status())
		_, err := conn.Write(frame)
		n.pool.Put(frame)
		return err
	case KindSnapshot:
		if _, isResp, err := DecodeSnapshot(payload); err != nil {
			return err
		} else if isResp {
			return fmt.Errorf("unexpected snapshot response")
		}
		regs, vals := n.snapshot()
		frame := AppendSnapshot(n.pool.Get(), regs, vals)
		_, err := conn.Write(frame)
		n.pool.Put(frame)
		return err
	case KindShutdown:
		n.shutOne.Do(func() { close(n.shutReq) })
		return nil
	case KindHello:
		return fmt.Errorf("duplicate hello")
	default:
		return fmt.Errorf("unknown kind %v", kind)
	}
}

// frameSink implements core.Sink by encoding each emitted envelope into a
// pooled frame buffer immediately — inside the node lock, while the
// node-owned Meta scratch is still valid — and staging (destination,
// frame) pairs for the flush that happens after the lock is released.
type frameSink struct {
	n      *Node
	frames []stagedFrame
}

type stagedFrame struct {
	to    int
	frame []byte
}

func (s *frameSink) Emit(env core.Envelope) {
	s.frames = append(s.frames, stagedFrame{
		to:    int(env.To),
		frame: AppendUpdate(s.n.pool.Get(), env),
	})
}

func (n *Node) getSink() *frameSink { return n.sinks.Get().(*frameSink) }

func (n *Node) putSink(s *frameSink) {
	s.frames = s.frames[:0]
	n.sinks.Put(s)
}

// flush hands staged frames to the transport. backpressure selects the
// Send vs Forward contract; accepted frames are counted as sent.
func (n *Node) flush(s *frameSink, backpressure bool) {
	for _, sf := range s.frames {
		if sf.to == int(n.self) {
			// Self-addressed envelopes do not cross the wire; decode the
			// staged frame back and deliver locally. Protocols do not emit
			// these (recipient lists exclude the writer), but the contract
			// tolerates them.
			if _, payload, err := DecodeBody(sf.frame[4:]); err == nil {
				if env, err := DecodeUpdate(payload, n.stock); err == nil {
					// Send counts before the delivery, receipt after — the
					// same sent-leads-recv discipline as the network path.
					n.sentUpd.Add(1)
					n.deliver(env)
					n.recvUpd.Add(1)
				}
			}
			n.pool.Put(sf.frame)
			continue
		}
		var ok bool
		if backpressure {
			ok = n.tr.Send(sf.to, sf.frame)
		} else {
			ok = n.tr.Forward(sf.to, sf.frame)
		}
		if ok {
			n.sentUpd.Add(1)
		}
	}
	n.putSink(s)
}

// deliver ingests one update at the node and forwards whatever it emits.
func (n *Node) deliver(env core.Envelope) {
	s := n.getSink()
	n.nodeMu.Lock()
	applied := n.node.HandleMessage(env, s)
	n.applied.Add(uint64(len(applied)))
	n.nodeMu.Unlock()
	n.flush(s, false)
}

// clientWrite performs one client write, blocking under transport
// backpressure (the Send contract).
func (n *Node) clientWrite(reg sharegraph.Register, val core.Value) error {
	s := n.getSink()
	n.nodeMu.Lock()
	// Oracle IDs are process-local: the causality oracle does not cross
	// process boundaries, so these only need to be distinct within the
	// node (the emit contract requires an ID, not a globally audited one).
	id := causality.UpdateID(n.idSeq.Add(1) - 1)
	err := n.node.HandleWrite(reg, val, id, s)
	n.nodeMu.Unlock()
	if err != nil {
		n.putSink(s)
		return err
	}
	n.flush(s, true)
	return nil
}

// Status returns the node's transport counters.
func (n *Node) Status() Status {
	n.nodeMu.Lock()
	pending := n.node.PendingCount()
	n.nodeMu.Unlock()
	return Status{
		Applied:   n.applied.Load(),
		Pending:   uint64(pending),
		SentUpd:   n.sentUpd.Load(),
		RecvUpd:   n.recvUpd.Load(),
		QueuedOut: uint64(n.tr.QueuedOut()),
	}
}

// snapshot returns the replica's register contents, sorted by register
// name (Sorted()'s order) so the encoding is byte-stable.
func (n *Node) snapshot() ([]sharegraph.Register, []core.Value) {
	regs := n.g.Stores(n.self).Sorted()
	vals := make([]core.Value, 0, len(regs))
	kept := regs[:0]
	n.nodeMu.Lock()
	for _, x := range regs {
		if v, ok := n.node.Read(x); ok {
			kept = append(kept, x)
			vals = append(vals, v)
		}
	}
	n.nodeMu.Unlock()
	return kept, vals
}

// State returns the replica's registers as a map (the in-process shape
// sim.Cluster.StateSnapshot produces for one replica).
func (n *Node) State() map[sharegraph.Register]core.Value {
	regs, vals := n.snapshot()
	out := make(map[sharegraph.Register]core.Value, len(regs))
	for i, x := range regs {
		out[x] = vals[i]
	}
	return out
}
