package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// Node hosts one replica as a network server: the protocol state machine
// from internal/core behind a TCP listener, with outgoing updates routed
// through a Transport. It is the process-boundary analogue of one slot of
// sim.Cluster — the same emit contract, the same backpressure discipline,
// with the wire codec in place of in-process message structs.
//
// Inbound connections are served one reader goroutine each: peer replicas
// stream Update frames; clients stream Write frames and request Status,
// Snapshot and Shutdown. All protocol calls serialize on the node lock,
// and emitted envelopes are encoded into pooled frame buffers during
// Emit (inside the lock, satisfying the node-owned-scratch contract),
// then handed to the transport after the lock is released so
// backpressure never blocks while holding the node.
type Node struct {
	cfg   ClusterConfig
	self  sharegraph.ReplicaID
	g     *sharegraph.Graph
	node  core.Node
	stock map[string]sharegraph.Register // interned register names

	pool transport.BytePool
	tr   *Transport
	ln   net.Listener

	nodeMu sync.Mutex
	sinks  sync.Pool // *frameSink
	logF   *os.File  // durable mutation log, nil when disabled

	conns   sync.WaitGroup
	connMu  sync.Mutex
	open    map[net.Conn]struct{}
	closed  atomic.Bool
	shutReq chan struct{}
	shutOne sync.Once

	applied atomic.Uint64
	recvUpd atomic.Uint64
	sentUpd atomic.Uint64
	idSeq   atomic.Int64

	reg    *obs.Registry     // nil unless StatusAddr armed metrics
	status *obs.StatusServer // nil unless StatusAddr set

	logf func(format string, args ...any)
}

// NodeOptions configures a Node.
type NodeOptions struct {
	// Transport tunes the outgoing links.
	Transport TransportOptions
	// Logf sinks diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// LogPath, when non-empty, enables the durable mutation log: every
	// accepted mutation (client Write, delivered Update) is appended to
	// this file as its wire frame before it is applied, and an existing
	// log is replayed on startup to rebuild the replica's state and
	// counters after a crash. Replay restores SentUpd/RecvUpd exactly,
	// so the client-side quiesce protocol stays sound across a kill -9
	// and restart of a quiescent node. Updates the transport accepted
	// but had not yet delivered when the process died are not replayed
	// (the transport's queue is volatile); recovery is exact when the
	// cluster was quiescent at crash time.
	LogPath string
	// StatusAddr, when non-empty, arms the metrics registry and serves
	// /statusz and /metricsz on this address (host:port; port 0 picks a
	// free port — read it back via StatusAddrServing). When empty, no
	// registry is allocated and the per-frame cost is a single nil check.
	StatusAddr string
}

// NewNode builds replica self of the configured cluster and starts
// listening on its configured address. The protocol must be built over
// cfg.Graph() — every process derives the same graph from the same
// placement, so all timestamp spaces agree. Serve must be called to
// accept traffic.
func NewNode(cfg ClusterConfig, self int, protocol core.Protocol, opts NodeOptions) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self < 0 || self >= len(cfg.Replicas) {
		return nil, fmt.Errorf("wire: replica id %d outside [0,%d)", self, len(cfg.Replicas))
	}
	g, err := cfg.Graph()
	if err != nil {
		return nil, err
	}
	nodes, err := protocol.NewNodes()
	if err != nil {
		return nil, fmt.Errorf("wire: build nodes: %w", err)
	}
	if len(nodes) != len(cfg.Replicas) {
		return nil, fmt.Errorf("wire: protocol built %d nodes for %d replicas", len(nodes), len(cfg.Replicas))
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	n := &Node{
		cfg:     cfg,
		self:    sharegraph.ReplicaID(self),
		g:       g,
		node:    nodes[self],
		stock:   make(map[string]sharegraph.Register),
		open:    make(map[net.Conn]struct{}),
		shutReq: make(chan struct{}),
		logf:    opts.Logf,
	}
	for _, x := range g.Registers() {
		n.stock[string(x)] = x
	}
	n.sinks.New = func() any { return &frameSink{n: n} }
	if opts.LogPath != "" {
		if err := n.openLog(opts.LogPath); err != nil {
			return nil, fmt.Errorf("wire: replica %d log: %w", self, err)
		}
	}
	n.tr = NewTransport(self, cfg.Addrs(), &n.pool, opts.Transport)
	ln, err := net.Listen("tcp", cfg.Replicas[self].Addr)
	if err != nil {
		if n.logF != nil {
			n.logF.Close()
		}
		return nil, fmt.Errorf("wire: replica %d listen: %w", self, err)
	}
	n.ln = ln
	if opts.StatusAddr != "" {
		n.reg = obs.New(len(cfg.Replicas), 0)
		st, err := obs.Serve(opts.StatusAddr, n.Metrics)
		if err != nil {
			ln.Close()
			n.tr.Close()
			if n.logF != nil {
				n.logF.Close()
			}
			return nil, fmt.Errorf("wire: replica %d status: %w", self, err)
		}
		n.status = st
	}
	return n, nil
}

// StatusAddrServing returns the bound status endpoint address, or "" when
// NodeOptions.StatusAddr was unset.
func (n *Node) StatusAddrServing() string {
	if n.status == nil {
		return ""
	}
	return n.status.Addr()
}

// Addr returns the listener's actual address (useful when the configured
// address had port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ShutdownRequested is closed when a client sends a Shutdown frame.
func (n *Node) ShutdownRequested() <-chan struct{} { return n.shutReq }

// Transport exposes the node's outgoing transport.
func (n *Node) Transport() *Transport { return n.tr }

// Pool exposes the node's frame buffer pool (leak checks assert its
// balance returns to zero after a drained run).
func (n *Node) Pool() *transport.BytePool { return &n.pool }

// Serve accepts connections until Close. It returns nil on clean
// shutdown.
func (n *Node) Serve() error {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return nil
			}
			return fmt.Errorf("wire: replica %d accept: %w", n.self, err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		n.connMu.Lock()
		if n.closed.Load() {
			n.connMu.Unlock()
			conn.Close()
			continue
		}
		n.open[conn] = struct{}{}
		n.connMu.Unlock()
		n.conns.Add(1)
		go n.serveConn(conn)
	}
}

// Close stops accepting, drains the outgoing transport, closes inbound
// connections and joins their readers. The orderly sequence — quiesce
// first, then Close — is the client's job (cmd/prcc-client's -shutdown
// polls Status to quiescence before sending Shutdown frames).
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.ln.Close()
	if n.status != nil {
		n.status.Close()
	}
	n.tr.Close()
	n.connMu.Lock()
	for c := range n.open {
		c.Close()
	}
	n.connMu.Unlock()
	n.conns.Wait()
	if n.logF != nil {
		n.nodeMu.Lock()
		n.logF.Close()
		n.logF = nil
		n.nodeMu.Unlock()
	}
}

// openLog opens (creating if missing) the durable mutation log, replays
// whatever it already holds into the freshly built protocol state, and
// positions the file for appends. The log is a sequence of ordinary wire
// frames in apply order. A torn tail — a frame cut short by a crash
// mid-append — is truncated away: log-before-apply means a torn frame
// was never applied and its emissions never left the process, so
// dropping it is the consistent choice.
func (n *Node) openLog(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	good, err := n.replayLog(f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	n.logF = f
	return nil
}

// replaySink counts the envelopes a replayed mutation re-emits without
// sending them anywhere: the original run already handed them to the
// transport (counting each as sent), so replay only needs the count to
// restore SentUpd. Protocol emission is deterministic given the same
// mutation sequence, so the count is exact. Self-addressed emissions are
// counted too but not re-delivered — their deliveries were logged as
// their own Update frames and replay in order.
type replaySink struct{ emitted uint64 }

func (s *replaySink) Emit(core.Envelope) { s.emitted++ }

// replayLog applies every complete frame in the log and returns the
// offset just past the last complete frame. Counters are restored to
// exactly their pre-crash values: recvUpd = replayed updates, idSeq =
// replayed writes, applied accumulates from the protocol, sentUpd from
// the deterministic re-emission count.
func (n *Node) replayLog(f *os.File) (int64, error) {
	br := bufio.NewReaderSize(f, 64<<10)
	var buf []byte
	var good int64
	for {
		body, err := ReadFrame(br, &buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return good, nil
			}
			// Torn or corrupt tail: stop at the last complete frame. Any
			// other read error (bad magic mid-log, oversized length) also
			// lands here — replaying a prefix is always safe, and the
			// truncate that follows discards the junk.
			n.logf("wire: replica %d: log replay stops at offset %d: %v", n.self, good, err)
			return good, nil
		}
		kind, payload, err := DecodeBody(body)
		if err != nil {
			n.logf("wire: replica %d: log replay stops at offset %d: %v", n.self, good, err)
			return good, nil
		}
		s := &replaySink{}
		switch kind {
		case KindUpdate:
			env, err := DecodeUpdate(payload, n.stock)
			if err != nil {
				n.logf("wire: replica %d: log replay stops at offset %d: %v", n.self, good, err)
				return good, nil
			}
			applied := n.node.HandleMessage(env, s)
			n.applied.Add(uint64(len(applied)))
			n.recvUpd.Add(1)
		case KindWrite:
			reg, val, err := DecodeWrite(payload)
			if err != nil {
				n.logf("wire: replica %d: log replay stops at offset %d: %v", n.self, good, err)
				return good, nil
			}
			if x, ok := n.stock[string(reg)]; ok {
				reg = x
			}
			id := causality.UpdateID(n.idSeq.Add(1) - 1)
			// A write that failed validation originally fails identically
			// here; it still consumed an ID, which is why the bump precedes
			// the call on both paths.
			_ = n.node.HandleWrite(reg, val, id, s)
		default:
			n.logf("wire: replica %d: log replay stops at offset %d: unexpected %v frame", n.self, good, kind)
			return good, nil
		}
		n.sentUpd.Add(s.emitted)
		good += int64(4 + len(body))
	}
}

// logAppend writes one frame to the durable log. Called with nodeMu held
// so the log order is exactly the apply order. The write lands in the
// kernel page cache, which survives a SIGKILL of this process (crash
// recovery targets process death, not host death — no fsync).
func (n *Node) logAppend(frame []byte) {
	if n.logF == nil {
		return
	}
	if _, err := n.logF.Write(frame); err != nil {
		n.logf("wire: replica %d: log append: %v", n.self, err)
	}
}

func (n *Node) dropConn(conn net.Conn) {
	n.connMu.Lock()
	delete(n.open, conn)
	n.connMu.Unlock()
	conn.Close()
	n.conns.Done()
}

// serveConn is one inbound reader: Hello first, then frames until EOF.
func (n *Node) serveConn(conn net.Conn) {
	defer n.dropConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	peerID := 0
	for first := true; ; first = false {
		body, err := ReadFrame(br, &buf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !n.closed.Load() {
				n.logf("wire: replica %d: read: %v", n.self, err)
			}
			return
		}
		kind, payload, err := DecodeBody(body)
		if err != nil {
			n.logf("wire: replica %d: bad frame: %v", n.self, err)
			return
		}
		if first {
			if kind != KindHello {
				n.logf("wire: replica %d: conn opened with %v, want hello", n.self, kind)
				return
			}
			peerID, err = DecodeHello(payload)
			if err != nil {
				n.logf("wire: replica %d: bad hello: %v", n.self, err)
				return
			}
			continue
		}
		if err := n.handleFrame(conn, peerID, kind, payload); err != nil {
			n.logf("wire: replica %d: %v frame from %d: %v", n.self, kind, peerID, err)
			return
		}
	}
}

func (n *Node) handleFrame(conn net.Conn, peerID int, kind Kind, payload []byte) error {
	switch kind {
	case KindUpdate:
		env, err := DecodeUpdate(payload, n.stock)
		if err != nil {
			return err
		}
		if env.To != n.self {
			return fmt.Errorf("misrouted update for replica %d", env.To)
		}
		// Receipt is counted only after the delivery — including the flush
		// of whatever it emitted — completes: the quiesce protocol's
		// soundness rests on sum(sent) exceeding sum(recv) while any
		// update is accepted but not yet fully processed.
		n.deliver(env)
		n.recvUpd.Add(1)
		return nil
	case KindWrite:
		reg, val, err := DecodeWrite(payload)
		if err != nil {
			return err
		}
		if x, ok := n.stock[string(reg)]; ok {
			reg = x
		}
		return n.clientWrite(reg, val)
	case KindStatus:
		if _, isResp, err := DecodeStatus(payload); err != nil {
			return err
		} else if isResp {
			return fmt.Errorf("unexpected status response")
		}
		frame := AppendStatus(n.pool.Get(), n.Status())
		_, err := conn.Write(frame)
		n.pool.Put(frame)
		return err
	case KindSnapshot:
		if _, isResp, err := DecodeSnapshot(payload); err != nil {
			return err
		} else if isResp {
			return fmt.Errorf("unexpected snapshot response")
		}
		regs, vals := n.snapshot()
		frame := AppendSnapshot(n.pool.Get(), regs, vals)
		_, err := conn.Write(frame)
		n.pool.Put(frame)
		return err
	case KindShutdown:
		n.shutOne.Do(func() { close(n.shutReq) })
		return nil
	case KindHello:
		return fmt.Errorf("duplicate hello")
	default:
		return fmt.Errorf("unknown kind %v", kind)
	}
}

// frameSink implements core.Sink by encoding each emitted envelope into a
// pooled frame buffer immediately — inside the node lock, while the
// node-owned Meta scratch is still valid — and staging (destination,
// frame) pairs for the flush that happens after the lock is released.
type frameSink struct {
	n      *Node
	frames []stagedFrame
}

type stagedFrame struct {
	to    int
	frame []byte
}

func (s *frameSink) Emit(env core.Envelope) {
	s.frames = append(s.frames, stagedFrame{
		to:    int(env.To),
		frame: AppendUpdate(s.n.pool.Get(), env),
	})
}

func (n *Node) getSink() *frameSink { return n.sinks.Get().(*frameSink) }

func (n *Node) putSink(s *frameSink) {
	s.frames = s.frames[:0]
	n.sinks.Put(s)
}

// flush hands staged frames to the transport. backpressure selects the
// Send vs Forward contract; accepted frames are counted as sent.
func (n *Node) flush(s *frameSink, backpressure bool) {
	for _, sf := range s.frames {
		if sf.to == int(n.self) {
			// Self-addressed envelopes do not cross the wire; decode the
			// staged frame back and deliver locally. Protocols do not emit
			// these (recipient lists exclude the writer), but the contract
			// tolerates them.
			if _, payload, err := DecodeBody(sf.frame[4:]); err == nil {
				if env, err := DecodeUpdate(payload, n.stock); err == nil {
					// Send counts before the delivery, receipt after — the
					// same sent-leads-recv discipline as the network path.
					n.sentUpd.Add(1)
					if n.reg != nil {
						n.reg.Sent(int(n.self), sf.to, len(sf.frame))
					}
					n.deliver(env)
					n.recvUpd.Add(1)
				}
			}
			n.pool.Put(sf.frame)
			continue
		}
		var ok bool
		if backpressure {
			ok = n.tr.Send(sf.to, sf.frame)
		} else {
			ok = n.tr.Forward(sf.to, sf.frame)
		}
		if ok {
			n.sentUpd.Add(1)
			if n.reg != nil {
				// Bytes here are whole wire frames (header included) — the
				// wire runtime measures what actually crosses the network,
				// not just metadata.
				n.reg.Sent(int(n.self), sf.to, len(sf.frame))
			}
		}
	}
	n.putSink(s)
}

// deliver ingests one update at the node and forwards whatever it emits.
func (n *Node) deliver(env core.Envelope) {
	s := n.getSink()
	n.nodeMu.Lock()
	if n.logF != nil {
		// Log before apply, inside the lock: env.Meta is still valid
		// scratch here, and the log order must be the apply order.
		frame := AppendUpdate(n.pool.Get(), env)
		n.logAppend(frame)
		n.pool.Put(frame)
	}
	applied := n.node.HandleMessage(env, s)
	n.applied.Add(uint64(len(applied)))
	n.nodeMu.Unlock()
	if n.reg != nil {
		na := len(applied)
		if env.MetaOnly {
			na = obs.MetaOnly
		}
		n.reg.Deliver(int(env.From), int(n.self), na)
	}
	n.flush(s, false)
}

// clientWrite performs one client write, blocking under transport
// backpressure (the Send contract).
func (n *Node) clientWrite(reg sharegraph.Register, val core.Value) error {
	s := n.getSink()
	n.nodeMu.Lock()
	if n.logF != nil {
		frame := AppendWrite(n.pool.Get(), reg, val)
		n.logAppend(frame)
		n.pool.Put(frame)
	}
	// Oracle IDs are process-local: the causality oracle does not cross
	// process boundaries, so these only need to be distinct within the
	// node (the emit contract requires an ID, not a globally audited one).
	id := causality.UpdateID(n.idSeq.Add(1) - 1)
	err := n.node.HandleWrite(reg, val, id, s)
	n.nodeMu.Unlock()
	if err != nil {
		n.putSink(s)
		return err
	}
	n.flush(s, true)
	return nil
}

// Status returns the node's transport counters.
func (n *Node) Status() Status {
	n.nodeMu.Lock()
	pending := n.node.PendingCount()
	n.nodeMu.Unlock()
	return Status{
		Applied:   n.applied.Load(),
		Pending:   uint64(pending),
		SentUpd:   n.sentUpd.Load(),
		RecvUpd:   n.recvUpd.Load(),
		QueuedOut: uint64(n.tr.QueuedOut()),
	}
}

// Metrics returns the node's counters in the unified cross-runtime
// snapshot schema. Per-edge breakdowns are present only when
// NodeOptions.StatusAddr armed the registry; the legacy totals are
// always filled from the transport counters. This is the same snapshot
// /statusz serves.
func (n *Node) Metrics() obs.Snapshot {
	s := n.reg.Snapshot()
	s.Runtime = "wire"
	s.Messages = int64(n.sentUpd.Load())
	s.Updates = int64(n.applied.Load())
	s.Outstanding = int64(n.tr.QueuedOut())
	n.nodeMu.Lock()
	parked := int64(n.node.PendingCount())
	n.nodeMu.Unlock()
	s.Parked = parked
	if int(n.self) < len(s.Replicas) {
		s.Replicas[n.self].Parked = parked
	}
	for _, e := range s.Edges {
		s.MetaBytes += e.Bytes
	}
	return s
}

// snapshot returns the replica's register contents, sorted by register
// name (Sorted()'s order) so the encoding is byte-stable.
func (n *Node) snapshot() ([]sharegraph.Register, []core.Value) {
	regs := n.g.Stores(n.self).Sorted()
	vals := make([]core.Value, 0, len(regs))
	kept := regs[:0]
	n.nodeMu.Lock()
	for _, x := range regs {
		if v, ok := n.node.Read(x); ok {
			kept = append(kept, x)
			vals = append(vals, v)
		}
	}
	n.nodeMu.Unlock()
	return kept, vals
}

// State returns the replica's registers as a map (the in-process shape
// sim.Cluster.StateSnapshot produces for one replica).
func (n *Node) State() map[sharegraph.Register]core.Value {
	regs, vals := n.snapshot()
	out := make(map[sharegraph.Register]core.Value, len(regs))
	for i, x := range regs {
		out[x] = vals[i]
	}
	return out
}
