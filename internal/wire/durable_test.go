package wire

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// startLoggedCluster is startCluster with a durable log per replica
// (node<i>.log under dir), without the Cleanup hook — crash-recovery
// tests close and resurrect nodes themselves.
func startLoggedCluster(t *testing.T, cfg ClusterConfig, dir string) []*Node {
	t.Helper()
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(cfg.Replicas))
	for i := range nodes {
		proto, err := cli.Protocol(cfg.Protocol, g)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(cfg, i, proto, NodeOptions{
			Logf:    t.Logf,
			LogPath: filepath.Join(dir, "node"+string(rune('0'+i))+".log"),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go n.Serve()
	}
	return nodes
}

// TestDurableLogRestartRestoresStateAndCounters pins the log-replay
// contract in process: run half a script, remember the victim's state
// and counters, close the victim abruptly (its transport queues are
// drained by the quiesce, like the kill -9 choreography), rebuild it
// from the log alone, and require identical state AND identical
// sent/recv/applied counters — the counters are what keep the
// client-side quiesce sums sound across a restart.
func TestDurableLogRestartRestoresStateAndCounters(t *testing.T) {
	g := sharegraph.Ring(5)
	script := workload.OwnerWrites(g, 300, 19)
	cfg := loopbackConfig(t, g, "edge-indexed")
	dir := t.TempDir()
	nodes := startLoggedCluster(t, cfg, dir)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	client, err := Dial(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunScript(script[:150]); err != nil {
		t.Fatal(err)
	}
	if err := client.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	const victim = 2
	wantState := nodes[victim].State()
	wantStatus := nodes[victim].Status()
	// Close is the in-process stand-in for SIGKILL here: the cluster is
	// quiescent, so the volatile pieces Close drains were empty anyway
	// and the log is the only carrier of state into the new node.
	nodes[victim].Close()

	cg, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cli.Protocol(cfg.Protocol, cg)
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := NewNode(cfg, victim, proto, NodeOptions{
		Logf:    t.Logf,
		LogPath: filepath.Join(dir, "node2.log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes[victim] = reborn
	go reborn.Serve()

	gotState := reborn.State()
	if len(gotState) != len(wantState) {
		t.Fatalf("replayed state has %d registers, want %d", len(gotState), len(wantState))
	}
	for x, v := range wantState {
		if gotState[x] != v {
			t.Errorf("register %s = %v after replay, want %v", x, gotState[x], v)
		}
	}
	got := reborn.Status()
	if got.Applied != wantStatus.Applied || got.SentUpd != wantStatus.SentUpd || got.RecvUpd != wantStatus.RecvUpd {
		t.Errorf("replayed counters %+v, want %+v", got, wantStatus)
	}

	// The resurrected node must be a full participant: finish the script
	// and the cluster-wide quiesce must still converge (it cannot if the
	// counters drifted).
	client2, err := Dial(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := client2.RunScript(script[150:]); err != nil {
		t.Fatal(err)
	}
	if err := client2.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("quiesce after restart: %v", err)
	}
}

// TestDurableLogTornTail pins torn-tail truncation: a log ending in a
// partial frame (crash mid-append) must replay its complete prefix and
// discard the tail, and the node must then append cleanly after it.
func TestDurableLogTornTail(t *testing.T) {
	g := sharegraph.Ring(3)
	cfg := loopbackConfig(t, g, "edge-indexed")
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.log")

	// A valid one-write log plus a torn frame: header promises more
	// bytes than exist.
	reg := g.Stores(0).Sorted()[0]
	frame := AppendWrite(nil, reg, 42)
	torn := append(append([]byte(nil), frame...), frame[:7]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	cg, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cli.Protocol(cfg.Protocol, cg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(cfg, 0, proto, NodeOptions{Logf: t.Logf, LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if v, ok := n.State()[reg]; !ok || v != 42 {
		t.Errorf("state[%s] = %v (ok=%v) after torn-tail replay, want 42", reg, v, ok)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(frame)) {
		t.Errorf("log is %d bytes after truncation, want %d", fi.Size(), len(frame))
	}
}
