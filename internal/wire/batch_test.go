package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

func batchFixture() ([]int32, []core.Envelope) {
	spaces := []int32{0, 7, 7, 1023}
	envs := []core.Envelope{
		{From: 1, To: 2, Reg: "x0", Val: 7, Meta: []byte{0x08, 0x01}},
		{From: 0, To: 3, Reg: "x1", Val: -9, Meta: nil},
		{From: 2, To: 0, Reg: "shared/x", Val: 1 << 40, Meta: []byte{1, 2, 3, 4}, MetaOnly: true},
		{From: 5, To: 4, Reg: "", Val: 0, Meta: []byte{}},
	}
	return spaces, envs
}

func TestBatchRoundTrip(t *testing.T) {
	spaces, envs := batchFixture()
	frame := AppendBatch(nil, spaces, envs)
	kind, payload, err := DecodeBody(frame[4:])
	if err != nil || kind != KindBatch {
		t.Fatalf("DecodeBody: kind=%v err=%v", kind, err)
	}
	var gotSpaces []int32
	var gotEnvs []core.Envelope
	intern := map[string]sharegraph.Register{"x0": "x0", "x1": "x1"}
	err = DecodeBatch(payload, intern, func(space int32, env core.Envelope) error {
		gotSpaces = append(gotSpaces, space)
		env.Meta = append([]byte(nil), env.Meta...) // decode aliases; copy to retain
		gotEnvs = append(gotEnvs, env)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSpaces, spaces) {
		t.Errorf("spaces = %v, want %v", gotSpaces, spaces)
	}
	for i := range envs {
		want := envs[i]
		got := gotEnvs[i]
		// nil and empty Meta both round-trip as empty.
		if len(want.Meta) == 0 {
			want.Meta = got.Meta
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("envelope %d = %+v, want %+v", i, got, want)
		}
	}
	// Interning: known names must come back as the canonical string.
	if gotEnvs[0].Reg != "x0" || gotEnvs[1].Reg != "x1" {
		t.Errorf("interned registers wrong: %q %q", gotEnvs[0].Reg, gotEnvs[1].Reg)
	}
}

func TestBatchEmptyAndErrors(t *testing.T) {
	frame := AppendBatch(nil, nil, nil)
	_, payload, err := DecodeBody(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := DecodeBatch(payload, nil, func(int32, core.Envelope) error { calls++; return nil }); err != nil || calls != 0 {
		t.Fatalf("empty batch: err=%v calls=%d", err, calls)
	}

	// A callback error aborts the scan.
	spaces, envs := batchFixture()
	frame = AppendBatch(nil, spaces, envs)
	_, payload, _ = DecodeBody(frame[4:])
	boom := errors.New("boom")
	calls = 0
	err = DecodeBatch(payload, nil, func(int32, core.Envelope) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if err != boom || calls != 2 {
		t.Fatalf("callback abort: err=%v calls=%d", err, calls)
	}

	// Mismatched parallel slices must panic loudly, not mis-encode.
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	AppendBatch(nil, []int32{1}, nil)
}

func TestBatchAdversarialLengths(t *testing.T) {
	spaces, envs := batchFixture()
	frame := AppendBatch(nil, spaces, envs)
	_, payload, err := DecodeBody(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	nop := func(int32, core.Envelope) error { return nil }

	// Every truncation of a valid payload must error (never panic) —
	// except the degenerate cases that happen to re-frame as a shorter
	// valid batch, which cannot occur here because the count prefix
	// pins the pair count.
	for cut := 0; cut < len(payload); cut++ {
		if err := DecodeBatch(payload[:cut], nil, nop); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	// A count bomb: huge declared count over a few bytes fails on the
	// first missing pair, not by allocating.
	bomb := appendUvarint(nil, 1<<50)
	bomb = append(bomb, 0, 0, 0)
	if err := DecodeBatch(bomb, nil, nop); err == nil {
		t.Fatal("count bomb decoded cleanly")
	}

	// An inner metadata length far beyond the payload is ErrOversized.
	one := appendUvarint(nil, 1)    // count
	one = appendVarint(one, 3)      // space
	one = appendVarint(one, 0)      // from
	one = appendVarint(one, 1)      // to
	one = append(one, 0)            // flags
	one = appendString(one, "x")    // register
	one = appendVarint(one, 5)      // value
	one = appendUvarint(one, 1<<30) // meta length, no bytes behind it
	if err := DecodeBatch(one, nil, nop); !errors.Is(err, ErrOversized) {
		t.Fatalf("meta bomb: err = %v, want ErrOversized", err)
	}

	// Trailing garbage after the declared pairs is rejected.
	trailing := append(append([]byte(nil), payload...), 0xEE)
	if err := DecodeBatch(trailing, nil, nop); err == nil {
		t.Fatal("trailing bytes decoded cleanly")
	}
}

// FuzzBatchCodec drives the Batch frame codec two ways: arbitrary bytes
// through DecodeBatch (nothing may panic, declared lengths may not
// drive allocation), and — when the input survives a decode — a
// re-encode/re-decode round trip that must reproduce the same pairs.
func FuzzBatchCodec(f *testing.F) {
	spaces, envs := batchFixture()
	full := AppendBatch(nil, spaces, envs)
	f.Add(full[4+headerSize:])
	f.Add(AppendBatch(nil, nil, nil)[4+headerSize:])
	f.Add(full[4+headerSize : len(full)-3]) // truncated mid-envelope
	f.Add(append(appendUvarint(nil, 1<<50), 0, 0))
	f.Add(append(append([]byte(nil), full[4+headerSize:]...), 0xEE))

	intern := map[string]sharegraph.Register{"x0": "x0", "shared/x": "shared/x"}
	f.Fuzz(func(t *testing.T, payload []byte) {
		var spaces []int32
		var envs []core.Envelope
		err := DecodeBatch(payload, intern, func(space int32, env core.Envelope) error {
			env.Meta = append([]byte(nil), env.Meta...)
			env.Reg = sharegraph.Register(append([]byte(nil), env.Reg...))
			spaces = append(spaces, space)
			envs = append(envs, env)
			return nil
		})
		if err != nil {
			return
		}
		// Semantic round trip: re-encode the decoded pairs and decode the
		// result again; the pairs must survive. Byte-identity is NOT
		// required — the decoder tolerates non-minimal varint forms that
		// the encoder never emits.
		again := AppendBatch(nil, spaces, envs)
		var spaces2 []int32
		var envs2 []core.Envelope
		if err := DecodeBatch(again[4+headerSize:], intern, func(space int32, env core.Envelope) error {
			env.Meta = append([]byte(nil), env.Meta...)
			spaces2 = append(spaces2, space)
			envs2 = append(envs2, env)
			return nil
		}); err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if !reflect.DeepEqual(spaces, spaces2) {
			t.Fatalf("spaces drift: %v → %v", spaces, spaces2)
		}
		for i := range envs {
			a, b := envs[i], envs2[i]
			if !bytes.Equal(a.Meta, b.Meta) {
				t.Fatalf("envelope %d meta drift: %x → %x", i, a.Meta, b.Meta)
			}
			a.Meta, b.Meta = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("envelope %d drift: %+v → %+v", i, a, b)
			}
		}
	})
}
