package wire

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// TestNodeStatusEndpoint boots a loopback cluster with status serving
// armed on every node, drives a workload, and scrapes /statusz and
// /metricsz over real HTTP: the wire runtime must expose the same
// unified schema as the in-process runtimes, with live per-edge
// counters.
func TestNodeStatusEndpoint(t *testing.T) {
	g := sharegraph.Ring(3)
	cfg := loopbackConfig(t, g, "edge-indexed")

	nodes := make([]*Node, len(cfg.Replicas))
	for i := range nodes {
		proto, err := cli.Protocol(cfg.Protocol, g)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(cfg, i, proto, NodeOptions{Logf: t.Logf, StatusAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go func() {
			if err := n.Serve(); err != nil {
				t.Errorf("serve: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	for i, n := range nodes {
		if n.StatusAddrServing() == "" {
			t.Fatalf("replica %d has no bound status address", i)
		}
	}

	client, err := Dial(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunScript(workload.OwnerWrites(g, 200, 19)); err != nil {
		t.Fatal(err)
	}
	if err := client.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Scrape node 0 over real HTTP.
	resp, err := http.Get("http://" + nodes[0].StatusAddrServing() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var s obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&s)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if s.Runtime != "wire" {
		t.Errorf("runtime = %q, want wire", s.Runtime)
	}
	if s.Messages == 0 || s.Updates == 0 || s.MetaBytes == 0 {
		t.Errorf("quiet totals after workload: %+v", s)
	}
	if len(s.Replicas) != g.NumReplicas() {
		t.Fatalf("replica breakdown has %d rows, want %d", len(s.Replicas), g.NumReplicas())
	}
	if s.Replicas[0].Delivered == 0 {
		t.Error("node 0 delivered nothing according to its own breakdown")
	}
	// Node 0's outbound ring edges carried traffic; counters and frame
	// bytes must both be live.
	sawEdge := false
	for key, e := range s.Edges {
		if e.Sent > 0 && e.Bytes == 0 {
			t.Errorf("edge %s sent %d frames but zero bytes", key, e.Sent)
		}
		if e.Sent > 0 {
			sawEdge = true
		}
	}
	if !sawEdge {
		t.Error("no edge shows outbound traffic on node 0")
	}

	// The flat scraper view serves the same counters.
	resp, err = http.Get("http://" + nodes[0].StatusAddrServing() + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]int64
	err = json.NewDecoder(resp.Body).Decode(&flat)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if flat["messages"] != s.Messages {
		t.Errorf("flat messages = %d, statusz messages = %d", flat["messages"], s.Messages)
	}

	// The client-side aggregate polls every node's Status and returns the
	// same schema.
	cm, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Runtime != "wire" {
		t.Errorf("client metrics runtime = %q, want wire", cm.Runtime)
	}
	if cm.Updates == 0 || cm.Messages == 0 {
		t.Errorf("client aggregate empty after workload: %+v", cm)
	}
	if len(cm.Replicas) != g.NumReplicas() {
		t.Errorf("client aggregate has %d replica rows, want %d", len(cm.Replicas), g.NumReplicas())
	}
	// Per-replica applies depend on which holders the workload picked as
	// owners; the aggregate must agree with the total.
	var applied int64
	for _, rm := range cm.Replicas {
		applied += rm.Applied
	}
	if applied != cm.Updates {
		t.Errorf("replica applied sum = %d, want total updates %d", applied, cm.Updates)
	}
}

// TestNodeStatusDisarmed pins that a node built without StatusAddr
// serves nothing and arms no registry, and that Metrics still reports
// the legacy totals.
func TestNodeStatusDisarmed(t *testing.T) {
	g := sharegraph.Ring(3)
	cfg := loopbackConfig(t, g, "edge-indexed")
	nodes := startCluster(t, cfg)
	if got := nodes[0].StatusAddrServing(); got != "" {
		t.Errorf("disarmed node serves status at %q", got)
	}
	client, err := Dial(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunScript(workload.OwnerWrites(g, 60, 23)); err != nil {
		t.Fatal(err)
	}
	if err := client.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := nodes[0].Metrics()
	if m.Runtime != "wire" || m.Messages == 0 {
		t.Errorf("disarmed node Metrics lost legacy totals: %+v", m)
	}
	if m.Edges != nil {
		t.Errorf("disarmed node carries edge breakdowns: %+v", m.Edges)
	}
}
