package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// readOneFrame pushes an encoded frame through the real reader path
// (length prefix + body) and returns the decoded kind and payload.
func readOneFrame(t *testing.T, frame []byte) (Kind, []byte) {
	t.Helper()
	var buf []byte
	body, err := ReadFrame(bytes.NewReader(frame), &buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	kind, payload, err := DecodeBody(body)
	if err != nil {
		t.Fatalf("DecodeBody: %v", err)
	}
	return kind, payload
}

func TestHelloRoundTrip(t *testing.T) {
	for _, id := range []int{0, 1, 63, ClientID, -7} {
		kind, payload := readOneFrame(t, AppendHello(nil, id))
		if kind != KindHello {
			t.Fatalf("kind = %v, want hello", kind)
		}
		got, err := DecodeHello(payload)
		if err != nil || got != id {
			t.Fatalf("DecodeHello = %d, %v; want %d", got, err, id)
		}
	}
}

// TestUpdateRoundTrip is the codec property test for the node→node kind:
// random envelopes — including empty Meta, empty register names and the
// MetaOnly flag — survive encode → frame read → decode unchanged.
func TestUpdateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	regs := []sharegraph.Register{"", "a", "x0", "some-long-register-name"}
	for i := 0; i < 500; i++ {
		want := core.Envelope{
			From:     sharegraph.ReplicaID(rng.Intn(64)),
			To:       sharegraph.ReplicaID(rng.Intn(64)),
			Reg:      regs[rng.Intn(len(regs))],
			Val:      core.Value(rng.Int63n(1<<40) - 1<<39),
			MetaOnly: rng.Intn(2) == 0,
		}
		if n := rng.Intn(64); n > 0 {
			want.Meta = make([]byte, n)
			rng.Read(want.Meta)
		}
		kind, payload := readOneFrame(t, AppendUpdate(nil, want))
		if kind != KindUpdate {
			t.Fatalf("kind = %v, want update", kind)
		}
		got, err := DecodeUpdate(payload, nil)
		if err != nil {
			t.Fatalf("DecodeUpdate: %v", err)
		}
		if len(got.Meta) == 0 {
			got.Meta = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestUpdateInterning(t *testing.T) {
	intern := map[string]sharegraph.Register{"a": "a"}
	env := core.Envelope{From: 1, To: 2, Reg: "a", Val: 9}
	_, payload := readOneFrame(t, AppendUpdate(nil, env))
	got, err := DecodeUpdate(payload, intern)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if got.Reg != "a" {
		t.Fatalf("Reg = %q, want a", got.Reg)
	}
	// Unknown names still decode, via a fresh string.
	env.Reg = "zz"
	_, payload = readOneFrame(t, AppendUpdate(nil, env))
	if got, err = DecodeUpdate(payload, intern); err != nil || got.Reg != "zz" {
		t.Fatalf("DecodeUpdate unknown reg = %q, %v", got.Reg, err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	kind, payload := readOneFrame(t, AppendWrite(nil, "reg-7", -42))
	if kind != KindWrite {
		t.Fatalf("kind = %v, want write", kind)
	}
	reg, val, err := DecodeWrite(payload)
	if err != nil || reg != "reg-7" || val != -42 {
		t.Fatalf("DecodeWrite = %q, %d, %v", reg, val, err)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	kind, payload := readOneFrame(t, AppendStatusReq(nil))
	if kind != KindStatus {
		t.Fatalf("kind = %v, want status", kind)
	}
	if _, isResp, err := DecodeStatus(payload); err != nil || isResp {
		t.Fatalf("request decoded as response (%v)", err)
	}
	want := Status{Applied: 3, Pending: 1, SentUpd: 10, RecvUpd: 9, QueuedOut: 2}
	_, payload = readOneFrame(t, AppendStatus(nil, want))
	got, isResp, err := DecodeStatus(payload)
	if err != nil || !isResp || got != want {
		t.Fatalf("DecodeStatus = %+v, %v, %v; want %+v", got, isResp, err, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	kind, payload := readOneFrame(t, AppendSnapshotReq(nil))
	if kind != KindSnapshot {
		t.Fatalf("kind = %v, want snapshot", kind)
	}
	if _, isResp, err := DecodeSnapshot(payload); err != nil || isResp {
		t.Fatalf("request decoded as response (%v)", err)
	}
	regs := []sharegraph.Register{"a", "b", "c"}
	vals := []core.Value{1, -2, 1 << 33}
	_, payload = readOneFrame(t, AppendSnapshot(nil, regs, vals))
	got, isResp, err := DecodeSnapshot(payload)
	if err != nil || !isResp {
		t.Fatalf("DecodeSnapshot: %v, %v", isResp, err)
	}
	want := map[sharegraph.Register]core.Value{"a": 1, "b": -2, "c": 1 << 33}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	// The empty snapshot must still be a response, not a request: it
	// carries its zero entry count.
	_, payload = readOneFrame(t, AppendSnapshot(nil, nil, nil))
	if got, isResp, err = DecodeSnapshot(payload); err != nil || !isResp || len(got) != 0 {
		t.Fatalf("empty snapshot = %v, %v, %v", got, isResp, err)
	}
}

func TestShutdownRoundTrip(t *testing.T) {
	kind, payload := readOneFrame(t, AppendShutdown(nil))
	if kind != KindShutdown || len(payload) != 0 {
		t.Fatalf("kind = %v payload = %d bytes", kind, len(payload))
	}
}

// TestDecodeRejectsAdversarialLengths is the satellite hardening check:
// corrupt declared lengths must surface as errors before any allocation
// or slicing, never as panics.
func TestDecodeRejectsAdversarialLengths(t *testing.T) {
	t.Run("oversized register length", func(t *testing.T) {
		frame := AppendUpdate(nil, core.Envelope{From: 1, To: 2, Reg: "abc", Val: 5})
		_, payload, err := DecodeBody(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		// The register length prefix sits after from, to, flags. Blow it up.
		corrupted := append([]byte(nil), payload...)
		corrupted[3] = 0xFF // varint-encodes a length far past the payload
		corrupted[4] = 0xFF
		corrupted[5] = 0x7F
		if _, err := DecodeUpdate(corrupted, nil); !errors.Is(err, ErrOversized) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("corrupt register length: err = %v", err)
		}
	})

	t.Run("truncated frames", func(t *testing.T) {
		frame := AppendUpdate(nil, core.Envelope{From: 1, To: 2, Reg: "abc", Val: 5, Meta: []byte{1, 2, 3}})
		for cut := 4; cut < len(frame); cut++ {
			body := frame[4:cut]
			kind, payload, err := DecodeBody(body)
			if err != nil {
				continue // header itself truncated: also a rejection
			}
			if kind != KindUpdate {
				t.Fatalf("cut %d: kind %v", cut, kind)
			}
			if _, err := DecodeUpdate(payload, nil); err == nil {
				t.Fatalf("cut %d: truncated update decoded cleanly", cut)
			}
		}
	})

	t.Run("bad magic and version", func(t *testing.T) {
		frame := AppendShutdown(nil)
		body := append([]byte(nil), frame[4:]...)
		body[0] ^= 0xFF
		if _, _, err := DecodeBody(body); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("bad magic: err = %v", err)
		}
		body[0] ^= 0xFF
		body[2] = Version + 1
		if _, _, err := DecodeBody(body); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("bad version: err = %v", err)
		}
	})

	t.Run("frame length beyond MaxFrameSize", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
		var buf []byte
		if _, err := ReadFrame(bytes.NewReader(hdr[:]), &buf); !errors.Is(err, ErrFrameSize) {
			t.Fatalf("oversized frame: err = %v", err)
		}
		if buf != nil {
			t.Fatalf("reader allocated %d bytes for a rejected frame", cap(buf))
		}
	})

	t.Run("frame length beyond stream", func(t *testing.T) {
		var hdr [6]byte
		binary.BigEndian.PutUint32(hdr[:], 100) // declares 100, supplies 2
		var buf []byte
		if _, err := ReadFrame(bytes.NewReader(hdr[:]), &buf); !errors.Is(err, ErrTruncated) {
			t.Fatalf("short body: err = %v", err)
		}
	})

	t.Run("snapshot entry count clamp", func(t *testing.T) {
		frame := AppendSnapshotReq(nil)
		body := append([]byte(nil), frame[4:]...)
		// A payload that declares 2^40 entries in a handful of bytes.
		body = appendUvarint(body, 1<<40)
		body = append(body, 0, 0)
		if _, _, err := DecodeSnapshot(body[headerSize:]); !errors.Is(err, ErrOversized) {
			t.Fatalf("entry-count bomb: err = %v", err)
		}
	})

	t.Run("trailing bytes rejected", func(t *testing.T) {
		frame := AppendHello(nil, 3)
		payload := append(append([]byte(nil), frame[4+headerSize:]...), 0x00)
		if _, err := DecodeHello(payload); err == nil {
			t.Fatal("trailing byte decoded cleanly")
		}
	})
}

// TestReadFrameCleanEOF distinguishes connection shutdown at a frame
// boundary (io.EOF) from truncation mid-frame (ErrTruncated).
func TestReadFrameCleanEOF(t *testing.T) {
	frame := AppendHello(nil, 1)
	r := bytes.NewReader(frame)
	var buf []byte
	if _, err := ReadFrame(r, &buf); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if _, err := ReadFrame(r, &buf); err != io.EOF {
		t.Fatalf("at boundary: err = %v, want io.EOF", err)
	}
	r = bytes.NewReader(frame[:2]) // mid-prefix
	if _, err := ReadFrame(r, &buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-prefix: err = %v, want truncated", err)
	}
}

// FuzzWireDecode drives every decoder with raw bytes: the input is read
// as a frame stream and each successfully framed body is pushed through
// every kind-specific decoder. Nothing may panic, and no declared length
// may drive a huge allocation (the fuzz engine's memory limit enforces
// the latter).
func FuzzWireDecode(f *testing.F) {
	f.Add(AppendHello(nil, 3))
	f.Add(AppendUpdate(nil, core.Envelope{From: 1, To: 2, Reg: "ab", Val: 7, Meta: []byte{0x08, 0x01}}))
	f.Add(AppendWrite(nil, "a", 1))
	f.Add(AppendStatusReq(nil))
	f.Add(AppendStatus(nil, Status{Applied: 1, SentUpd: 2, RecvUpd: 2}))
	f.Add(AppendSnapshotReq(nil))
	f.Add(AppendSnapshot(nil, []sharegraph.Register{"a"}, []core.Value{3}))
	f.Add(AppendShutdown(nil))
	f.Add(AppendBatch(nil, []int32{0, 9}, []core.Envelope{
		{From: 1, To: 2, Reg: "ab", Val: 4, Meta: []byte{0x08}},
		{From: 2, To: 1, Reg: "cd", Val: -1, MetaOnly: true},
	}))
	// Adversarial seeds: truncated mid-payload, oversized declared body,
	// oversized inner length, wrong magic.
	f.Add(AppendUpdate(nil, core.Envelope{Reg: "abc", Meta: []byte{1, 2, 3}})[:9])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, magic0, magic1, Version, byte(KindUpdate)})
	f.Add([]byte{0, 0, 0, 6, magic0, magic1, Version, byte(KindWrite), 0xFF, 0x7F})
	f.Add([]byte{0, 0, 0, 4, 'X', 'Y', Version, byte(KindHello)})

	intern := map[string]sharegraph.Register{"ab": "ab"}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			body, err := ReadFrame(r, &buf)
			if err != nil {
				return
			}
			kind, payload, err := DecodeBody(body)
			if err != nil {
				return
			}
			switch kind {
			case KindHello:
				DecodeHello(payload)
			case KindUpdate:
				DecodeUpdate(payload, intern)
			case KindWrite:
				DecodeWrite(payload)
			case KindStatus:
				DecodeStatus(payload)
			case KindSnapshot:
				DecodeSnapshot(payload)
			case KindBatch:
				DecodeBatch(payload, intern, func(int32, core.Envelope) error { return nil })
			}
		}
	})
}
