// Package wire is the network half of the paper's system model: a
// versioned, length-prefixed envelope codec and a TCP transport that
// implement, across process boundaries, the same send/forward contract
// the in-process worker-pool engine (internal/runtime.Engine) provides
// over channels. A replica becomes a process (cmd/prcc-node), clients
// become processes (cmd/prcc-client), and the protocol state machines in
// internal/core run unchanged on either side of the seam.
//
// # Frame format
//
// Every message on a connection is one frame:
//
//	u32 big-endian body length | magic 0xC5 0xCC | version | kind | payload
//
// The payload is kind-specific and varint-encoded throughout (timestamps
// ride as the exact bytes timestamp.EncodeTo produces, so the wire
// metadata size is the quantity the paper's experiments measure). All
// encoders are append-style over caller-supplied buffers — hot paths feed
// them recycled transport.BytePool buffers, so encoding a steady-state
// update performs no allocation.
//
// # Decoder hardening
//
// Length fields are adversarial input: every declared length (frame body,
// register name, metadata) is clamped against the bytes actually present
// before any allocation or slicing, so a corrupt or malicious length
// prefix cannot drive a huge allocation or a panic. ReadFrame
// additionally bounds the body length by MaxFrameSize before reading.
// FuzzWireDecode drives these paths with truncated and oversized frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// Frame framing constants.
const (
	magic0  = 0xC5
	magic1  = 0xCC
	Version = 1

	// headerSize is the fixed per-frame overhead after the length prefix:
	// magic (2) + version (1) + kind (1).
	headerSize = 4

	// MaxFrameSize bounds one frame body. A peer declaring more is
	// corrupt or malicious; the reader rejects the frame before
	// allocating. Generously above any real envelope: a 64-replica dense
	// graph's timestamp encodes in well under 4 KiB.
	MaxFrameSize = 1 << 20
)

// Kind discriminates frame payloads.
type Kind byte

// Frame kinds. Update is the only node→node kind; the rest implement the
// client protocol (handshake, client writes, quiesce polling, snapshot
// transfer, orderly shutdown).
const (
	KindInvalid  Kind = 0
	KindHello    Kind = 1 // sender identity: replica ID, or ClientID
	KindUpdate   Kind = 2 // one core.Envelope
	KindWrite    Kind = 3 // client write: register + value
	KindStatus   Kind = 4 // status request (empty) / response (counters)
	KindSnapshot Kind = 5 // snapshot request (empty) / response (registers)
	KindShutdown Kind = 6 // drain and exit
	KindBatch    Kind = 7 // many space-tagged envelopes in one frame
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindUpdate:
		return "update"
	case KindWrite:
		return "write"
	case KindStatus:
		return "status"
	case KindSnapshot:
		return "snapshot"
	case KindShutdown:
		return "shutdown"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// ClientID is the Hello identity of a connection that is a client rather
// than a peer replica.
const ClientID = -1

// Codec errors. Decoders wrap these with context; matching uses
// errors.Is.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrOversized  = errors.New("wire: declared length exceeds frame")
	ErrFrameSize  = errors.New("wire: frame exceeds MaxFrameSize")
)

// beginFrame appends the length placeholder and header for one frame and
// returns the extended buffer plus the offset of the length prefix.
func beginFrame(dst []byte, kind Kind) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, magic0, magic1, Version, byte(kind))
	return dst, start
}

// endFrame patches the length prefix once the payload is complete.
func endFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

func appendUvarint(dst []byte, x uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	return append(dst, buf[:n]...)
}

func appendVarint(dst []byte, x int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	return append(dst, buf[:n]...)
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendString appends a length-prefixed string without converting it to
// a byte slice first (the conversion would allocate on the hot path).
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendHello appends a Hello frame identifying the sender: a replica ID,
// or ClientID for client connections.
func AppendHello(dst []byte, id int) []byte {
	dst, start := beginFrame(dst, KindHello)
	dst = appendVarint(dst, int64(id))
	return endFrame(dst, start)
}

// envelope flags.
const flagMetaOnly = 1 << 0

// appendEnvelope appends one envelope's fields — sender, destination,
// flags, register, value, metadata — the payload shape shared by Update
// frames (one envelope) and Batch frames (many).
func appendEnvelope(dst []byte, env core.Envelope) []byte {
	dst = appendVarint(dst, int64(env.From))
	dst = appendVarint(dst, int64(env.To))
	var flags byte
	if env.MetaOnly {
		flags |= flagMetaOnly
	}
	dst = append(dst, flags)
	dst = appendString(dst, string(env.Reg))
	dst = appendVarint(dst, int64(env.Val))
	return appendBytes(dst, env.Meta)
}

// AppendUpdate appends an Update frame carrying one core.Envelope: sender,
// destination, flags, register, value, and the timestamp.EncodeTo metadata
// bytes, all length-prefixed where variable. Append-style: feeding it a
// recycled buffer encodes without allocating.
func AppendUpdate(dst []byte, env core.Envelope) []byte {
	dst, start := beginFrame(dst, KindUpdate)
	return endFrame(appendEnvelope(dst, env), start)
}

// AppendBatch appends a Batch frame: a count followed by (space,
// envelope) pairs — the network form of the shard layer's
// per-destination batching, where one write carries every update staged
// for one peer since the last flush. spaces and envs run in parallel
// and must be the same length. Append-style like every encoder here.
func AppendBatch(dst []byte, spaces []int32, envs []core.Envelope) []byte {
	if len(spaces) != len(envs) {
		panic("wire: AppendBatch spaces/envs length mismatch")
	}
	dst, start := beginFrame(dst, KindBatch)
	dst = appendUvarint(dst, uint64(len(envs)))
	for i := range envs {
		dst = appendVarint(dst, int64(spaces[i]))
		dst = appendEnvelope(dst, envs[i])
	}
	return endFrame(dst, start)
}

// AppendWrite appends a client Write frame.
func AppendWrite(dst []byte, reg sharegraph.Register, val core.Value) []byte {
	dst, start := beginFrame(dst, KindWrite)
	dst = appendString(dst, string(reg))
	dst = appendVarint(dst, int64(val))
	return endFrame(dst, start)
}

// Status is one node's transport counters — the quiesce-detection state
// the client polls. All counters are monotone over a node's lifetime.
type Status struct {
	Applied   uint64 // updates applied by the protocol state machine
	Pending   uint64 // updates buffered but not yet deliverable
	SentUpd   uint64 // update frames enqueued toward peers
	RecvUpd   uint64 // update frames ingested from peers
	QueuedOut uint64 // frames enqueued but not yet written to a socket
}

// AppendStatusReq appends an empty Status request frame.
func AppendStatusReq(dst []byte) []byte {
	dst, start := beginFrame(dst, KindStatus)
	return endFrame(dst, start)
}

// AppendStatus appends a Status response frame.
func AppendStatus(dst []byte, s Status) []byte {
	dst, start := beginFrame(dst, KindStatus)
	dst = appendUvarint(dst, s.Applied)
	dst = appendUvarint(dst, s.Pending)
	dst = appendUvarint(dst, s.SentUpd)
	dst = appendUvarint(dst, s.RecvUpd)
	dst = appendUvarint(dst, s.QueuedOut)
	return endFrame(dst, start)
}

// AppendSnapshotReq appends an empty Snapshot request frame.
func AppendSnapshotReq(dst []byte) []byte {
	dst, start := beginFrame(dst, KindSnapshot)
	return endFrame(dst, start)
}

// AppendSnapshot appends a Snapshot response frame: the replica's register
// contents as (register, value) pairs in the given order. Responders pass
// registers sorted so snapshots are byte-comparable across runs.
func AppendSnapshot(dst []byte, regs []sharegraph.Register, vals []core.Value) []byte {
	dst, start := beginFrame(dst, KindSnapshot)
	dst = appendUvarint(dst, uint64(len(regs)))
	for i, r := range regs {
		dst = appendString(dst, string(r))
		dst = appendVarint(dst, int64(vals[i]))
	}
	return endFrame(dst, start)
}

// AppendShutdown appends a Shutdown frame.
func AppendShutdown(dst []byte) []byte {
	dst, start := beginFrame(dst, KindShutdown)
	return endFrame(dst, start)
}

// DecodeBody splits one frame body (the bytes after the length prefix)
// into kind and payload, verifying magic and version.
func DecodeBody(body []byte) (Kind, []byte, error) {
	if len(body) < headerSize {
		return KindInvalid, nil, fmt.Errorf("%w: %d-byte body", ErrTruncated, len(body))
	}
	if body[0] != magic0 || body[1] != magic1 {
		return KindInvalid, nil, fmt.Errorf("%w: %#02x %#02x", ErrBadMagic, body[0], body[1])
	}
	if body[2] != Version {
		return KindInvalid, nil, fmt.Errorf("%w: %d", ErrBadVersion, body[2])
	}
	return Kind(body[3]), body[headerSize:], nil
}

// cursor is a bounds-checked payload reader. Every read clamps against
// the remaining bytes, so corrupt declared lengths surface as errors, not
// panics or huge allocations.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	x, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.err = fmt.Errorf("%w: %s", ErrTruncated, what)
		return 0
	}
	c.b = c.b[n:]
	return x
}

func (c *cursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	x, n := binary.Varint(c.b)
	if n <= 0 {
		c.err = fmt.Errorf("%w: %s", ErrTruncated, what)
		return 0
	}
	c.b = c.b[n:]
	return x
}

func (c *cursor) byte(what string) byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.err = fmt.Errorf("%w: %s", ErrTruncated, what)
		return 0
	}
	x := c.b[0]
	c.b = c.b[1:]
	return x
}

// bytes reads a length-prefixed byte string, clamping the declared length
// against the remaining payload BEFORE slicing. The returned slice
// aliases the payload; callers that retain it must copy.
func (c *cursor) bytes(what string) []byte {
	ln := c.uvarint(what + " length")
	if c.err != nil {
		return nil
	}
	if ln > uint64(len(c.b)) {
		c.err = fmt.Errorf("%w: %s declares %d of %d bytes", ErrOversized, what, ln, len(c.b))
		return nil
	}
	out := c.b[:ln]
	c.b = c.b[ln:]
	return out
}

func (c *cursor) finish() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("wire: %d trailing payload bytes", len(c.b))
	}
	return nil
}

// DecodeHello parses a Hello payload.
func DecodeHello(payload []byte) (int, error) {
	c := cursor{b: payload}
	id := c.varint("hello id")
	if err := c.finish(); err != nil {
		return 0, err
	}
	return int(id), nil
}

// envelope reads one envelope's fields from the cursor — the decode
// half of appendEnvelope, shared by Update and Batch payloads.
func (c *cursor) envelope(intern map[string]sharegraph.Register) core.Envelope {
	var env core.Envelope
	env.From = sharegraph.ReplicaID(c.varint("from"))
	env.To = sharegraph.ReplicaID(c.varint("to"))
	flags := c.byte("flags")
	env.MetaOnly = flags&flagMetaOnly != 0
	reg := c.bytes("register")
	env.Val = core.Value(c.varint("value"))
	env.Meta = c.bytes("metadata")
	if c.err != nil {
		return core.Envelope{}
	}
	if x, ok := intern[string(reg)]; ok {
		env.Reg = x
	} else {
		env.Reg = sharegraph.Register(reg)
	}
	return env
}

// DecodeUpdate parses an Update payload into a core.Envelope. Meta
// aliases the payload buffer — valid only until the caller reuses it;
// receivers ingest (or copy) before reading the next frame. intern, when
// non-nil, maps known register names to canonical strings so the
// steady-state receive path does not allocate per message; unknown names
// (and nil maps) fall back to a fresh string. OracleID is zero: the
// causality oracle does not cross process boundaries.
func DecodeUpdate(payload []byte, intern map[string]sharegraph.Register) (core.Envelope, error) {
	c := cursor{b: payload}
	env := c.envelope(intern)
	if err := c.finish(); err != nil {
		return core.Envelope{}, err
	}
	return env, nil
}

// DecodeBatch parses a Batch payload, invoking fn once per (space,
// envelope) pair in frame order. Each envelope's Reg and Meta alias the
// payload buffer under the same contract as DecodeUpdate, so fn must
// ingest (or copy) before returning. The declared count is clamped by
// construction — every pair consumes at least four payload bytes, so a
// huge declared count fails on the first missing pair instead of
// driving any pre-allocation. A non-nil error from fn aborts the scan.
func DecodeBatch(payload []byte, intern map[string]sharegraph.Register, fn func(space int32, env core.Envelope) error) error {
	c := cursor{b: payload}
	n := c.uvarint("batch count")
	for i := uint64(0); i < n; i++ {
		space := c.varint("space")
		env := c.envelope(intern)
		if c.err != nil {
			break
		}
		if err := fn(int32(space), env); err != nil {
			return err
		}
	}
	return c.finish()
}

// DecodeWrite parses a Write payload. The register aliases the payload.
func DecodeWrite(payload []byte) (sharegraph.Register, core.Value, error) {
	c := cursor{b: payload}
	reg := c.bytes("register")
	val := core.Value(c.varint("value"))
	if err := c.finish(); err != nil {
		return "", 0, err
	}
	return sharegraph.Register(reg), val, nil
}

// DecodeStatus parses a Status payload; an empty payload is a request
// (ok = false), a populated one a response (ok = true).
func DecodeStatus(payload []byte) (Status, bool, error) {
	if len(payload) == 0 {
		return Status{}, false, nil
	}
	c := cursor{b: payload}
	var s Status
	s.Applied = c.uvarint("applied")
	s.Pending = c.uvarint("pending")
	s.SentUpd = c.uvarint("sent")
	s.RecvUpd = c.uvarint("received")
	s.QueuedOut = c.uvarint("queued")
	if err := c.finish(); err != nil {
		return Status{}, false, err
	}
	return s, true, nil
}

// DecodeSnapshot parses a Snapshot payload; an empty payload is a request
// (ok = false). The declared entry count is clamped by construction: each
// entry consumes at least two payload bytes, so a huge declared count
// fails on the first missing entry rather than pre-allocating.
func DecodeSnapshot(payload []byte) (map[sharegraph.Register]core.Value, bool, error) {
	if len(payload) == 0 {
		return nil, false, nil
	}
	c := cursor{b: payload}
	n := c.uvarint("entry count")
	if c.err == nil && n > uint64(len(c.b)) {
		return nil, false, fmt.Errorf("%w: %d entries in %d bytes", ErrOversized, n, len(c.b))
	}
	out := make(map[sharegraph.Register]core.Value, n)
	for i := uint64(0); i < n; i++ {
		reg := c.bytes("register")
		val := c.varint("value")
		if c.err != nil {
			break
		}
		out[sharegraph.Register(append([]byte(nil), reg...))] = core.Value(val)
	}
	if err := c.finish(); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// ReadFrame reads one length-prefixed frame body from r into buf
// (growing it only when needed) and returns the body. The declared
// length is validated against MaxFrameSize before any allocation. On
// io.EOF at a frame boundary it returns io.EOF unwrapped, so clean
// connection shutdown is distinguishable from truncation mid-frame.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: length prefix: %v", ErrTruncated, err)
	}
	ln := binary.BigEndian.Uint32(hdr[:])
	if ln > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, ln)
	}
	if uint32(cap(*buf)) < ln {
		*buf = make([]byte, ln)
	}
	body := (*buf)[:ln]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}
	return body, nil
}
