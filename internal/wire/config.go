package wire

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

// NodeAddr is one replica's deployment entry: its listen address plus the
// registers it stores.
type NodeAddr struct {
	Addr      string                `json:"addr"`
	Registers []sharegraph.Register `json:"registers"`
}

// ClusterConfig is the static deployment description shared by every
// process of one cluster: the protocol name, and per replica its address
// and register placement. It is the on-disk JSON consumed by cmd/prcc-node
// and cmd/prcc-client:
//
//	{
//	  "protocol": "edge-indexed",
//	  "replicas": [
//	    {"addr": "127.0.0.1:42100", "registers": ["a", "b"]},
//	    {"addr": "127.0.0.1:42101", "registers": ["b", "c"]}
//	  ]
//	}
//
// Replica IDs are positions in the replicas array; every process derives
// the identical share graph (and thus identical timestamp graphs) from
// the placement, so no graph state crosses the wire.
type ClusterConfig struct {
	Protocol string     `json:"protocol"`
	Replicas []NodeAddr `json:"replicas"`
}

// ParseClusterConfig decodes and validates a ClusterConfig.
func ParseClusterConfig(data []byte) (ClusterConfig, error) {
	var c ClusterConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return ClusterConfig{}, fmt.Errorf("wire: parse cluster config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return ClusterConfig{}, err
	}
	return c, nil
}

// LoadClusterConfig reads and parses a ClusterConfig file.
func LoadClusterConfig(path string) (ClusterConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ClusterConfig{}, fmt.Errorf("wire: read cluster config: %w", err)
	}
	return ParseClusterConfig(data)
}

// Validate checks structural invariants: at least one replica, non-empty
// pairwise-distinct addresses, and a named protocol. Protocol name
// resolution happens at the call site (internal/cli) so the wire layer
// stays independent of the protocol registry.
func (c ClusterConfig) Validate() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("wire: cluster config has no replicas")
	}
	if c.Protocol == "" {
		return fmt.Errorf("wire: cluster config names no protocol")
	}
	seen := make(map[string]int, len(c.Replicas))
	for i, r := range c.Replicas {
		if r.Addr == "" {
			return fmt.Errorf("wire: replica %d has no address", i)
		}
		if j, dup := seen[r.Addr]; dup {
			return fmt.Errorf("wire: replicas %d and %d share address %s", j, i, r.Addr)
		}
		seen[r.Addr] = i
	}
	return nil
}

// Graph builds the share graph the placement describes.
func (c ClusterConfig) Graph() (*sharegraph.Graph, error) {
	stores := make([][]sharegraph.Register, len(c.Replicas))
	for i, r := range c.Replicas {
		stores[i] = r.Registers
	}
	return sharegraph.New(stores)
}

// Addrs returns the replica-indexed address list.
func (c ClusterConfig) Addrs() []string {
	out := make([]string, len(c.Replicas))
	for i, r := range c.Replicas {
		out[i] = r.Addr
	}
	return out
}

// ConfigFromGraph captures a share graph as a ClusterConfig with
// loopback addresses basePort, basePort+1, … — the shape the run scripts
// and tests deploy. Registers are sorted for determinism.
func ConfigFromGraph(g *sharegraph.Graph, protocol, host string, basePort int) ClusterConfig {
	c := ClusterConfig{Protocol: protocol, Replicas: make([]NodeAddr, g.NumReplicas())}
	for i := range c.Replicas {
		c.Replicas[i] = NodeAddr{
			Addr:      fmt.Sprintf("%s:%d", host, basePort+i),
			Registers: g.Stores(sharegraph.ReplicaID(i)).Sorted(),
		}
	}
	return c
}

// MarshalIndent renders the config as indented JSON.
func (c ClusterConfig) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// FormatSnapshots renders per-replica register states in the canonical
// byte-comparable form the multi-process differential test pins against
// the in-process cluster:
//
//	replica 0: a=3 b=17
//	replica 1: b=17 c=4
//
// Registers are sorted; replicas appear in ID order.
func FormatSnapshots(states []map[sharegraph.Register]core.Value) string {
	var out []byte
	for i, st := range states {
		out = fmt.Appendf(out, "replica %d:", i)
		regs := make([]string, 0, len(st))
		for x := range st {
			regs = append(regs, string(x))
		}
		sort.Strings(regs)
		for _, x := range regs {
			out = fmt.Appendf(out, " %s=%d", x, st[sharegraph.Register(x)])
		}
		out = append(out, '\n')
	}
	return string(out)
}
