package wire

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// frameServer accepts connections and records every frame body it reads,
// keyed by nothing — transport tests care about content and count, not
// provenance.
type frameServer struct {
	t  *testing.T
	ln net.Listener

	mu      sync.Mutex
	hellos  []int
	bodies  [][]byte
	accepts int

	dropNext atomic.Bool // close the next accepted conn after its hello
	wg       sync.WaitGroup
}

func newFrameServer(t *testing.T) *frameServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &frameServer{t: t, ln: ln}
	s.wg.Add(1)
	go s.loop()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *frameServer) addr() string { return s.ln.Addr().String() }

func (s *frameServer) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.accepts++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *frameServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	var buf []byte
	for first := true; ; first = false {
		body, err := ReadFrame(br, &buf)
		if err != nil {
			return
		}
		kind, payload, err := DecodeBody(body)
		if err != nil {
			s.t.Errorf("server: bad frame: %v", err)
			return
		}
		s.mu.Lock()
		if kind == KindHello {
			id, _ := DecodeHello(payload)
			s.hellos = append(s.hellos, id)
		} else {
			s.bodies = append(s.bodies, append([]byte(nil), body...))
		}
		s.mu.Unlock()
		if first && s.dropNext.CompareAndSwap(true, false) {
			return // simulate a peer crash right after the handshake
		}
	}
}

func (s *frameServer) frameCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bodies)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTransportDelivers(t *testing.T) {
	srv := newFrameServer(t)
	var pool transport.BytePool
	tr := NewTransport(0, []string{"127.0.0.1:1", srv.addr()}, &pool, TransportOptions{})
	t.Cleanup(tr.Close) // before the server cleanup, which joins readers
	const n = 50
	for i := 0; i < n; i++ {
		if !tr.Send(1, AppendWrite(pool.Get(), "a", 1)) {
			t.Fatalf("send %d refused", i)
		}
	}
	tr.Flush()
	waitFor(t, "frames", func() bool { return srv.frameCount() == n })
	tr.Close()
	if got := pool.Live(); got != 0 {
		t.Fatalf("pool balance after close: %d live buffers", got)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.hellos) != 1 || srv.hellos[0] != 0 {
		t.Fatalf("hellos = %v, want [0]", srv.hellos)
	}
}

// TestTransportBackpressure pins the Send vs Forward contract: with the
// peer unreachable, Send blocks once the queue is full, Forward keeps
// enqueueing, and Close releases the blocked sender with a refusal.
func TestTransportBackpressure(t *testing.T) {
	// An address that cannot be dialed: a closed listener's port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	var pool transport.BytePool
	tr := NewTransport(0, []string{"x", dead}, &pool, TransportOptions{
		QueueCap:        4,
		DialBackoffBase: time.Millisecond,
		DialBackoffMax:  5 * time.Millisecond,
		DialTimeout:     50 * time.Millisecond,
	})
	// Overfill the queue through Forward, which is exempt from
	// backpressure: the stuck writer holds at most one frame, so ten
	// forwards pin the queue above capacity no matter how the writer
	// interleaves.
	for i := 0; i < 10; i++ {
		if !tr.Forward(1, AppendWrite(pool.Get(), "b", 2)) {
			t.Fatalf("forward %d refused", i)
		}
	}
	// The next Send must block: run it in a goroutine and confirm it has
	// not returned, then confirm Close releases it with a refusal.
	done := make(chan bool, 1)
	go func() { done <- tr.Send(1, AppendWrite(pool.Get(), "c", 3)) }()
	select {
	case <-done:
		t.Fatal("Send returned despite a full queue")
	case <-time.After(50 * time.Millisecond):
	}
	tr.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked Send reported success across Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Send never released by Close")
	}
	if tr.Dropped() == 0 {
		t.Fatal("no frames dropped despite an unreachable peer at Close")
	}
	if got := pool.Live(); got != 0 {
		t.Fatalf("pool balance after close: %d live buffers", got)
	}
	// Sends after Close are refused and their frames recycled.
	if tr.Send(1, AppendWrite(pool.Get(), "d", 4)) {
		t.Fatal("Send accepted after Close")
	}
	if got := pool.Live(); got != 0 {
		t.Fatalf("pool balance after post-close send: %d live buffers", got)
	}
}

// TestTransportReconnects pins the redial discipline: when the peer
// drops the connection, the writer dials a fresh one (with a fresh
// Hello) and later frames keep flowing. Frames that entered the dead
// connection's kernel buffer before the reset arrived are lost — the
// wire transport promises the engine's reliable delivery only while
// peers stay up (crash recovery is the state-transfer layer's job) — so
// the test asserts continued delivery, not exactly-once.
func TestTransportReconnects(t *testing.T) {
	srv := newFrameServer(t)
	srv.dropNext.Store(true) // first connection dies right after Hello
	var pool transport.BytePool
	tr := NewTransport(3, []string{"x", srv.addr()}, &pool, TransportOptions{
		DialBackoffBase: time.Millisecond,
		DialBackoffMax:  10 * time.Millisecond,
	})
	t.Cleanup(tr.Close) // before the server cleanup, which joins readers
	const n = 50
	for i := 0; i < n; i++ {
		if !tr.Send(1, AppendWrite(pool.Get(), "a", 1)) {
			t.Fatalf("send %d refused", i)
		}
		// Slow trickle so the reset from the dropped connection surfaces
		// while frames are still being sent.
		time.Sleep(time.Millisecond)
	}
	tr.Flush()
	waitFor(t, "a reconnect", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.accepts >= 2
	})
	waitFor(t, "frames on the fresh connection", func() bool { return srv.frameCount() >= n/2 })
	tr.Close()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.hellos) < 2 {
		t.Fatalf("hellos = %v, want one per connection", srv.hellos)
	}
	for _, id := range srv.hellos {
		if id != 3 {
			t.Fatalf("hello = %d, want 3", id)
		}
	}
	if got := pool.Live(); got != 0 {
		t.Fatalf("pool balance after close: %d live buffers", got)
	}
}

func TestTransportRejectsUnknownPeer(t *testing.T) {
	var pool transport.BytePool
	tr := NewTransport(0, []string{"x"}, &pool, TransportOptions{})
	defer tr.Close()
	if tr.Send(7, pool.Get()) {
		t.Fatal("send to out-of-range peer accepted")
	}
	if tr.Send(-1, pool.Get()) {
		t.Fatal("send to negative peer accepted")
	}
	if got := pool.Live(); got != 0 {
		t.Fatalf("pool balance: %d live buffers", got)
	}
}

// TestReadFrameReusesBuffer pins the reader's zero-steady-state-alloc
// property: a second same-size frame must land in the same buffer.
func TestReadFrameReusesBuffer(t *testing.T) {
	frame := AppendWrite(nil, "abc", 5)
	stream := append(append([]byte(nil), frame...), frame...)
	r := &sliceReader{b: stream}
	var buf []byte
	b1, err := ReadFrame(r, &buf)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &b1[0]
	b2, err := ReadFrame(r, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if &b2[0] != p1 {
		t.Fatal("second same-size frame reallocated the read buffer")
	}
}

// sliceReader is an io.Reader over a byte slice that does not implement
// io.ReaderAt etc. — keeps ReadFrame on the plain path.
type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
