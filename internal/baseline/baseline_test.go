package baseline

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sharegraph"
)

func build(t testing.TB, p core.Protocol) []core.Node {
	t.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestFIFOOnlyOrdering(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := build(t, NewFIFOOnly(g))
	e1, err := core.CollectWrite(nodes[0], "x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.CollectWrite(nodes[0], "x", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed arrival: second buffers, first cascades both.
	if got, _ := core.CollectMessage(nodes[1], e2[0]); len(got) != 0 {
		t.Fatal("out-of-order apply")
	}
	if ids := nodes[1].PendingOracleIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("PendingOracleIDs = %v", ids)
	}
	if got, _ := core.CollectMessage(nodes[1], e1[0]); len(got) != 2 {
		t.Fatalf("cascade = %d, want 2", len(got))
	}
	if v, _ := nodes[1].Read("x"); v != 2 {
		t.Errorf("x = %d, want 2", v)
	}
	if nodes[1].MetadataEntries() != 2*g.Degree(1) {
		t.Errorf("MetadataEntries = %d", nodes[1].MetadataEntries())
	}
}

// TestFIFOOnlyMissesTransitiveDependency demonstrates, at the node level,
// the safety failure the oracle catches in the sim sweeps: FIFO sequence
// numbers cannot express a dependency through a third replica.
func TestFIFOOnlyMissesTransitiveDependency(t *testing.T) {
	g := sharegraph.FullReplication(3, 1)
	nodes := build(t, NewFIFOOnly(g))
	u1, err := core.CollectWrite(nodes[0], "r0", 10, 0) // to replicas 1,2
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u1 {
		if e.To == 1 {
			core.CollectMessage(nodes[1], e)
		}
	}
	u2, err := core.CollectWrite(nodes[1], "r0", 20, 1) // causally after u1
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u2 {
		if e.To == 2 {
			if applied, _ := core.CollectMessage(nodes[2], e); len(applied) != 1 {
				t.Fatal("fifo should apply immediately — that is its flaw")
			}
		}
	}
	// Replica 2 now holds 20 without ever applying u1: stale final state
	// once u1 lands (last-writer-wins by arrival, violating causality).
	if v, _ := nodes[2].Read("r0"); v != 20 {
		t.Errorf("r0 = %d, want 20", v)
	}
	for _, e := range u1 {
		if e.To == 2 {
			core.CollectMessage(nodes[2], e)
		}
	}
	if v, _ := nodes[2].Read("r0"); v != 10 {
		t.Errorf("after late arrival r0 = %d (causally older value overwrote newer)", v)
	}
}

func TestNaiveVectorDeliverable(t *testing.T) {
	g := sharegraph.FullReplication(3, 1)
	nodes := build(t, NewNaiveVector(g))
	u1, err := core.CollectWrite(nodes[0], "r0", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var to1, to2 core.Envelope
	for _, e := range u1 {
		if e.To == 1 {
			to1 = e
		}
		if e.To == 2 {
			to2 = e
		}
	}
	core.CollectMessage(nodes[1], to1)
	u2, err := core.CollectWrite(nodes[1], "r0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u2 {
		if e.To == 2 {
			if applied, _ := core.CollectMessage(nodes[2], e); len(applied) != 0 {
				t.Fatal("dependent update applied before its dependency")
			}
		}
	}
	if nodes[2].PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", nodes[2].PendingCount())
	}
	if applied, _ := core.CollectMessage(nodes[2], to2); len(applied) != 2 {
		t.Fatalf("cascade = %d, want 2", len(applied))
	}
	if nodes[2].MetadataEntries() != 3 {
		t.Errorf("MetadataEntries = %d, want R = 3", nodes[2].MetadataEntries())
	}
}

func TestBroadcastMetaOnlyFanout(t *testing.T) {
	g := sharegraph.Fig3Example() // 4 replicas; x stored at 0,1
	nodes := build(t, NewBroadcast(g))
	envs, err := core.CollectWrite(nodes[0], "x", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 3 { // data to 1; meta-only to 2 and 3
		t.Fatalf("fanout = %d, want 3", len(envs))
	}
	metaOnly := 0
	for _, e := range envs {
		if e.MetaOnly {
			metaOnly++
			if e.To == 1 {
				t.Error("sharer received meta-only message")
			}
		}
	}
	if metaOnly != 2 {
		t.Errorf("meta-only = %d, want 2", metaOnly)
	}
	// Meta-only delivery merges the clock but applies no value and is
	// excluded from pending oracle IDs.
	for _, e := range envs {
		if e.To == 3 {
			if applied, _ := core.CollectMessage(nodes[3], e); len(applied) != 0 {
				t.Error("meta-only message produced an apply")
			}
		}
	}
	if ids := nodes[3].PendingOracleIDs(); len(ids) != 0 {
		t.Errorf("meta-only pending exposed: %v", ids)
	}
	if _, ok := nodes[3].Read("x"); ok {
		t.Error("dummy register readable")
	}
}

func TestMatrixOrdering(t *testing.T) {
	g := sharegraph.FullReplication(3, 1)
	nodes := build(t, NewMatrix(g))
	u1, err := core.CollectWrite(nodes[0], "r0", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var u1to1, u1to2 core.Envelope
	for _, e := range u1 {
		if e.To == 1 {
			u1to1 = e
		} else {
			u1to2 = e
		}
	}
	core.CollectMessage(nodes[1], u1to1)
	u2, err := core.CollectWrite(nodes[1], "r0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u2 {
		if e.To == 2 {
			if applied, _ := core.CollectMessage(nodes[2], e); len(applied) != 0 {
				t.Fatal("matrix applied dependent update early")
			}
		}
	}
	if applied, _ := core.CollectMessage(nodes[2], u1to2); len(applied) != 2 {
		t.Fatalf("cascade = %d, want 2", len(applied))
	}
	if v, _ := nodes[2].Read("r0"); v != 2 {
		t.Errorf("r0 = %d, want 2", v)
	}
	if nodes[2].MetadataEntries() != 9 {
		t.Errorf("MetadataEntries = %d, want R² = 9", nodes[2].MetadataEntries())
	}
}

func TestAllProtocolsRejectUnstoredWrites(t *testing.T) {
	g := sharegraph.Fig3Example()
	for _, p := range []core.Protocol{NewFIFOOnly(g), NewNaiveVector(g), NewBroadcast(g), NewMatrix(g)} {
		nodes := build(t, p)
		_, err := core.CollectWrite(nodes[3], "x", 1, 0)
		var nse *core.NotStoredError
		if !errors.As(err, &nse) {
			t.Errorf("%s: err = %v, want NotStoredError", p.Name(), err)
		}
		if _, ok := nodes[3].Read("x"); ok {
			t.Errorf("%s: Read of unstored register ok", p.Name())
		}
	}
}

func TestAllProtocolsDropCorruptMetadata(t *testing.T) {
	g := sharegraph.Fig3Example()
	bad := core.Envelope{From: 0, To: 1, Reg: "x", Meta: []byte{0xff}}
	short := core.Envelope{From: 0, To: 1, Reg: "x", Meta: []byte{0x00}} // zero-length vector
	for _, p := range []core.Protocol{
		NewFIFOOnly(g), NewNaiveVector(g), NewBroadcast(g), NewMatrix(g),
		NewFIFOOnlyRescan(g), NewNaiveVectorRescan(g), NewBroadcastRescan(g), NewMatrixRescan(g),
	} {
		nodes := build(t, p)
		if applied, _ := core.CollectMessage(nodes[1], bad); len(applied) != 0 {
			t.Errorf("%s: applied corrupt message", p.Name())
		}
		if applied, _ := core.CollectMessage(nodes[1], short); len(applied) != 0 {
			t.Errorf("%s: applied wrong-length metadata", p.Name())
		}
		if nodes[1].PendingCount() != 0 {
			t.Errorf("%s: corrupt message buffered", p.Name())
		}
	}
}

// TestAllProtocolsDropInvalidSender guards the per-sender indexing both
// engines do: a sender outside the replica set must be dropped (logged),
// not dereferenced.
func TestAllProtocolsDropInvalidSender(t *testing.T) {
	g := sharegraph.Fig3Example()
	for _, p := range []core.Protocol{
		NewFIFOOnly(g), NewNaiveVector(g), NewBroadcast(g), NewMatrix(g),
		NewFIFOOnlyRescan(g), NewNaiveVectorRescan(g), NewBroadcastRescan(g), NewMatrixRescan(g),
	} {
		nodes := build(t, p)
		// Craft plausibly sized metadata so only the sender is invalid.
		envs, err := core.CollectWrite(nodes[0], "x", 1, 0)
		if err != nil || len(envs) == 0 {
			t.Fatalf("%s: seed write failed: %v", p.Name(), err)
		}
		for _, from := range []sharegraph.ReplicaID{-1, sharegraph.ReplicaID(g.NumReplicas())} {
			env := envs[0]
			env.From = from
			if applied, _ := core.CollectMessage(nodes[1], env); len(applied) != 0 {
				t.Errorf("%s: applied message from invalid sender %d", p.Name(), from)
			}
		}
		if nodes[1].PendingCount() != 0 {
			t.Errorf("%s: invalid-sender message buffered", p.Name())
		}
	}
}

func TestProtocolNamesAndIDs(t *testing.T) {
	g := sharegraph.Fig3Example()
	want := map[string]core.Protocol{
		"fifo-only":       NewFIFOOnly(g),
		"naive-vector":    NewNaiveVector(g),
		"dummy-broadcast": NewBroadcast(g),
		"matrix":          NewMatrix(g),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name = %q, want %q", p.Name(), name)
		}
		for i, n := range build(t, p) {
			if n.ID() != sharegraph.ReplicaID(i) {
				t.Errorf("%s node %d: ID = %d", name, i, n.ID())
			}
		}
	}
}
