// Package baseline implements the comparison protocols the paper's
// narrative positions the edge-indexed algorithm against:
//
//   - FIFOOnly: per-channel sequence numbers. FIFO delivery is sound, but
//     causal consistency fails on transitive dependencies through third
//     replicas — the executable form of Theorem 8's necessity argument
//     (a replica oblivious to non-incident tracked edges violates safety).
//
//   - NaiveVector: classic length-R vector timestamps applied naively to
//     partial replication, with updates sent only to register sharers.
//     Safety holds (the predicate is conservative) but liveness fails:
//     a replica can wait forever for an update it was never sent —
//     exactly why the full-replication recipe does not transfer.
//
//   - Broadcast: the Section 5 "dummy registers everywhere" emulation of
//     full replication. Length-R vectors suffice and liveness holds, paid
//     for with a metadata message to every replica on every write plus
//     false dependencies.
//
//   - Matrix: an R×R matrix clock in the style of Raynal–Schiper–Toueg
//     causal multicast (the Full-Track family of Shen et al.). Safe and
//     live under partial replication, with quadratic metadata.
package baseline

import (
	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// diagHolder gives every baseline protocol the injectable drop sink
// (core.DiagSettable); nodes capture the pointer at construction.
type diagHolder struct {
	diag *core.Diag
}

// SetDiag implements core.DiagSettable: nodes built after this call
// report ingest drops through d.
func (h *diagHolder) SetDiag(d *core.Diag) { h.diag = d }

// decodeMeta decodes envelope metadata, reporting (not crashing) on
// harness bugs, mirroring the core protocol's behaviour. free is the
// caller's freelist of vectors recycled by earlier applies.
func decodeMeta(d *core.Diag, proto string, self sharegraph.ReplicaID, env core.Envelope, free *[]timestamp.Vec) (timestamp.Vec, bool) {
	v, err := timestamp.DecodeReuse(free, env.Meta)
	if err != nil {
		d.Dropf(self, "%s: replica %d dropping corrupt metadata from %d: %v", proto, self, env.From, err)
		return nil, false
	}
	return v, true
}

// validSender reports whether the envelope's sender indexes the replica
// set; both engines index per-sender state by it, so an out-of-range
// sender is harness corruption that must be dropped, not dereferenced.
func validSender(d *core.Diag, proto string, self sharegraph.ReplicaID, env core.Envelope, n int) bool {
	if int(env.From) >= 0 && int(env.From) < n {
		return true
	}
	d.Dropf(self, "%s: replica %d dropping update from invalid sender %d", proto, self, env.From)
	return false
}

// ---------------------------------------------------------------------------
// FIFOOnly

// FIFOOnly delivers updates from each sender in send order and nothing
// more. Its per-replica metadata is one counter per neighbour pair —
// deliberately below the Theorem 8 minimum whenever any timestamp graph
// has a non-incident edge, making it the negative control the oracle
// catches.
type FIFOOnly struct {
	diagHolder
	g *sharegraph.Graph
	// naive selects the reference full-buffer rescan (differential tests).
	naive bool
}

var (
	_ core.Protocol     = (*FIFOOnly)(nil)
	_ core.DiagSettable = (*FIFOOnly)(nil)
)

// NewFIFOOnly builds the protocol.
func NewFIFOOnly(g *sharegraph.Graph) *FIFOOnly { return &FIFOOnly{g: g} }

// NewFIFOOnlyRescan builds the protocol with the reference full-buffer
// rescan engine, for differential tests against the indexed engine.
func NewFIFOOnlyRescan(g *sharegraph.Graph) *FIFOOnly { return &FIFOOnly{g: g, naive: true} }

// Name implements core.Protocol.
func (p *FIFOOnly) Name() string { return "fifo-only" }

// NewNodes implements core.Protocol.
func (p *FIFOOnly) NewNodes() ([]core.Node, error) {
	n := p.g.NumReplicas()
	nodes := make([]core.Node, n)
	for i := range nodes {
		fn := &fifoNode{
			id:     sharegraph.ReplicaID(i),
			g:      p.g,
			diag:   p.diag,
			naive:  p.naive,
			sentTo: make([]uint64, n),
			recvd:  make([]uint64, n),
			store:  make(map[sharegraph.Register]core.Value),
			recip:  sharegraph.NewRecipientCache(p.g, sharegraph.ReplicaID(i)),
		}
		if !p.naive {
			fn.q = ingest.NewSenderQueues[fifoPending](n)
		}
		nodes[i] = fn
	}
	return nodes, nil
}

type fifoPending struct {
	env core.Envelope
	seq uint64
}

// fifoNode delivers per sender in sequence order. Its predicate involves
// only the sender's own counter, so the indexed engine is a pure chain:
// file each update under its sequence number and, whenever the head
// matches recvd+1, pop consecutive entries.
type fifoNode struct {
	id     sharegraph.ReplicaID
	g      *sharegraph.Graph
	diag   *core.Diag
	sentTo []uint64
	recvd  []uint64
	store  map[sharegraph.Register]core.Value

	naive   bool
	pending []fifoPending // reference engine

	q        ingest.SenderQueues[fifoPending] // indexed engine
	applyBuf []core.Applied
	vecFree  []timestamp.Vec
	metaBuf  []byte
	seqVec   timestamp.Vec
	recip    sharegraph.RecipientCache
}

var _ core.Node = (*fifoNode)(nil)

func (n *fifoNode) ID() sharegraph.ReplicaID { return n.id }

func (n *fifoNode) HandleWrite(x sharegraph.Register, v core.Value, id causality.UpdateID, out core.Sink) error {
	if !n.g.StoresRegister(n.id, x) {
		return &core.NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	if n.seqVec == nil {
		n.seqVec = timestamp.Vec{0}
	}
	for _, k := range n.recip.Recipients(x) {
		n.sentTo[k]++
		// Unlike the vector protocols, each recipient carries a different
		// sequence number; the scratch buffer is re-encoded per emit (the
		// sink consumes or copies before the next one).
		n.seqVec[0] = n.sentTo[k]
		n.metaBuf = timestamp.EncodeTo(n.metaBuf[:0], n.seqVec)
		out.Emit(core.Envelope{
			From: n.id, To: k, Reg: x, Val: v,
			Meta:     n.metaBuf,
			OracleID: id,
		})
	}
	return nil
}

func (n *fifoNode) HandleMessage(env core.Envelope, out core.Sink) []core.Applied {
	meta, ok := decodeMeta(n.diag, "fifo-only", n.id, env, &n.vecFree)
	if !ok || len(meta) != 1 || !validSender(n.diag, "fifo-only", n.id, env, len(n.recvd)) {
		return nil
	}
	seq := meta[0]
	// The sequence number is all the metadata carries; recycle the vector
	// immediately (fifoPending keeps only the envelope and seq). The Meta
	// buffer is runtime-owned and reclaimed after this call returns, so
	// the buffered copy of the envelope must not alias it.
	n.vecFree = append(n.vecFree, meta)
	env.Meta = nil
	if n.naive {
		return n.drainNaive(fifoPending{env: env, seq: seq})
	}
	from := env.From
	if !n.q.Offer(int(from), seq, n.recvd[from], fifoPending{env: env, seq: seq}) {
		return nil
	}
	outApplied := n.applyBuf[:0]
	for {
		u, ok := n.q.Peek(int(from), n.recvd[from]+1)
		if !ok {
			break
		}
		n.q.Remove(int(from), n.recvd[from]+1)
		n.recvd[from]++
		e := u.env
		n.store[e.Reg] = e.Val
		outApplied = append(outApplied, core.Applied{
			OracleID: e.OracleID, From: e.From, Reg: e.Reg, Val: e.Val,
		})
	}
	n.applyBuf = outApplied
	return outApplied
}

func (n *fifoNode) drainNaive(u fifoPending) []core.Applied {
	n.pending = append(n.pending, u)
	var out []core.Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if u.seq != n.recvd[u.env.From]+1 {
				continue
			}
			n.recvd[u.env.From]++
			n.store[u.env.Reg] = u.env.Val
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			out = append(out, core.Applied{
				OracleID: u.env.OracleID, From: u.env.From, Reg: u.env.Reg, Val: u.env.Val,
			})
			progress = true
			idx--
		}
		if !progress {
			return out
		}
	}
}

func (n *fifoNode) Read(x sharegraph.Register) (core.Value, bool) {
	if !n.g.StoresRegister(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *fifoNode) PendingCount() int {
	if n.naive {
		return len(n.pending)
	}
	return n.q.Len()
}

func (n *fifoNode) PendingOracleIDs() []causality.UpdateID {
	if n.naive {
		out := make([]causality.UpdateID, len(n.pending))
		for i, u := range n.pending {
			out[i] = u.env.OracleID
		}
		return out
	}
	out := make([]causality.UpdateID, 0, n.q.Len())
	n.q.All(func(u fifoPending) { out = append(out, u.env.OracleID) })
	return out
}

func (n *fifoNode) MetadataEntries() int { return 2 * n.g.Degree(n.id) }

// ---------------------------------------------------------------------------
// Shared vector-clock machinery for NaiveVector and Broadcast

type vecPending struct {
	env core.Envelope
	w   timestamp.Vec
}

// vectorNode's predicate is the classic causal-broadcast condition: the
// sender's entry must be exactly one past the local clock, every other
// entry at most equal. Its indexed engine files updates per sender keyed
// by w[from]; an apply advances only v[from] (all other entries were
// already dominated), so after each apply only the queue heads — at most
// one per sender, the exact key v[k]+1 — need re-examination.
type vectorNode struct {
	id        sharegraph.ReplicaID
	g         *sharegraph.Graph
	diag      *core.Diag
	proto     string
	broadcast bool // Broadcast variant: metadata goes to every replica
	v         timestamp.Vec
	store     map[sharegraph.Register]core.Value

	naive   bool
	pending []vecPending // reference engine

	q        ingest.SenderQueues[vecPending] // indexed engine
	applyBuf []core.Applied
	vecFree  []timestamp.Vec
	metaBuf  []byte
	sharer   []bool // broadcast scratch: marks data recipients per write
	recip    sharegraph.RecipientCache
}

var _ core.Node = (*vectorNode)(nil)

func (n *vectorNode) ID() sharegraph.ReplicaID { return n.id }

func (n *vectorNode) HandleWrite(x sharegraph.Register, v core.Value, id causality.UpdateID, out core.Sink) error {
	if !n.g.StoresRegister(n.id, x) {
		return &core.NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	n.v[n.id]++
	n.metaBuf = timestamp.EncodeTo(n.metaBuf[:0], n.v)
	recipients := n.recip.Recipients(x)
	for _, k := range recipients {
		out.Emit(core.Envelope{
			From: n.id, To: k, Reg: x, Val: v, Meta: n.metaBuf, OracleID: id,
		})
	}
	if n.broadcast {
		for _, k := range recipients {
			n.sharer[k] = true
		}
		for k := 0; k < n.g.NumReplicas(); k++ {
			rk := sharegraph.ReplicaID(k)
			if rk == n.id || n.sharer[k] {
				continue
			}
			out.Emit(core.Envelope{
				From: n.id, To: rk, Reg: x, Meta: n.metaBuf, OracleID: id, MetaOnly: true,
			})
		}
		for _, k := range recipients {
			n.sharer[k] = false
		}
	}
	return nil
}

func (n *vectorNode) HandleMessage(env core.Envelope, out core.Sink) []core.Applied {
	w, ok := decodeMeta(n.diag, n.proto, n.id, env, &n.vecFree)
	if !ok || len(w) != len(n.v) || !validSender(n.diag, n.proto, n.id, env, len(n.v)) {
		return nil
	}
	// The buffered copy must not alias the runtime-owned Meta buffer,
	// which is reclaimed once this call returns.
	env.Meta = nil
	u := vecPending{env: env, w: w}
	if n.naive {
		return n.drainNaive(u)
	}
	from := env.From
	if !n.q.Offer(int(from), w[from], n.v[from], u) {
		return nil
	}
	return n.drainHeads()
}

// drainHeads re-examines every sender's queue head until a fixpoint. Each
// pass is O(R) map lookups; the full predicate runs only on heads whose
// sequence number matches the gate exactly.
func (n *vectorNode) drainHeads() []core.Applied {
	out := n.applyBuf[:0]
	for {
		progress := false
		for k := 0; k < n.q.NumSenders(); k++ {
			if n.q.QueueLen(k) == 0 {
				continue
			}
			u, ok := n.q.Peek(k, n.v[k]+1)
			if !ok || !n.vectorDeliverable(u) {
				continue
			}
			n.q.Remove(k, n.v[k]+1)
			for p := range n.v {
				if u.w[p] > n.v[p] {
					n.v[p] = u.w[p]
				}
			}
			n.vecFree = append(n.vecFree, u.w)
			if !u.env.MetaOnly {
				n.store[u.env.Reg] = u.env.Val
				out = append(out, core.Applied{
					OracleID: u.env.OracleID, From: u.env.From, Reg: u.env.Reg, Val: u.env.Val,
				})
			}
			progress = true
		}
		if !progress {
			n.applyBuf = out
			return out
		}
	}
}

func (n *vectorNode) drainNaive(u vecPending) []core.Applied {
	n.pending = append(n.pending, u)
	var out []core.Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if !n.vectorDeliverable(u) {
				continue
			}
			for p := range n.v {
				if u.w[p] > n.v[p] {
					n.v[p] = u.w[p]
				}
			}
			if !u.env.MetaOnly {
				n.store[u.env.Reg] = u.env.Val
			}
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			if !u.env.MetaOnly {
				out = append(out, core.Applied{
					OracleID: u.env.OracleID, From: u.env.From, Reg: u.env.Reg, Val: u.env.Val,
				})
			}
			progress = true
			idx--
		}
		if !progress {
			return out
		}
	}
}

// vectorDeliverable is the classic causal-broadcast condition:
// w[from] = v[from] + 1 and w[l] ≤ v[l] for l ≠ from.
func (n *vectorNode) vectorDeliverable(u vecPending) bool {
	from := u.env.From
	if u.w[from] != n.v[from]+1 {
		return false
	}
	for l := range n.v {
		if sharegraph.ReplicaID(l) == from {
			continue
		}
		if u.w[l] > n.v[l] {
			return false
		}
	}
	return true
}

func (n *vectorNode) Read(x sharegraph.Register) (core.Value, bool) {
	if !n.g.StoresRegister(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *vectorNode) PendingCount() int {
	if n.naive {
		return len(n.pending)
	}
	return n.q.Len()
}

func (n *vectorNode) PendingOracleIDs() []causality.UpdateID {
	if n.naive {
		out := make([]causality.UpdateID, 0, len(n.pending))
		for _, u := range n.pending {
			if !u.env.MetaOnly {
				out = append(out, u.env.OracleID)
			}
		}
		return out
	}
	out := make([]causality.UpdateID, 0, n.q.Len())
	n.q.All(func(u vecPending) {
		if !u.env.MetaOnly {
			out = append(out, u.env.OracleID)
		}
	})
	return out
}

func (n *vectorNode) MetadataEntries() int { return len(n.v) }

// NaiveVector applies full-replication vector clocks to partial
// replication without metadata broadcast. See the package comment: safe
// but not live.
type NaiveVector struct {
	diagHolder
	g     *sharegraph.Graph
	naive bool
}

var (
	_ core.Protocol     = (*NaiveVector)(nil)
	_ core.DiagSettable = (*NaiveVector)(nil)
)

// NewNaiveVector builds the protocol.
func NewNaiveVector(g *sharegraph.Graph) *NaiveVector { return &NaiveVector{g: g} }

// NewNaiveVectorRescan builds the protocol with the reference full-buffer
// rescan engine, for differential tests against the indexed engine.
func NewNaiveVectorRescan(g *sharegraph.Graph) *NaiveVector { return &NaiveVector{g: g, naive: true} }

// Name implements core.Protocol.
func (p *NaiveVector) Name() string { return "naive-vector" }

// NewNodes implements core.Protocol.
func (p *NaiveVector) NewNodes() ([]core.Node, error) {
	nodes := make([]core.Node, p.g.NumReplicas())
	for i := range nodes {
		nodes[i] = newVectorNode(p.g, sharegraph.ReplicaID(i), p.Name(), p.diag, false, p.naive)
	}
	return nodes, nil
}

// Broadcast is the Section 5 dummy-register emulation of full
// replication: length-R vectors plus metadata-only broadcast.
type Broadcast struct {
	diagHolder
	g     *sharegraph.Graph
	naive bool
}

var (
	_ core.Protocol     = (*Broadcast)(nil)
	_ core.DiagSettable = (*Broadcast)(nil)
)

// NewBroadcast builds the protocol.
func NewBroadcast(g *sharegraph.Graph) *Broadcast { return &Broadcast{g: g} }

// NewBroadcastRescan builds the protocol with the reference full-buffer
// rescan engine, for differential tests against the indexed engine.
func NewBroadcastRescan(g *sharegraph.Graph) *Broadcast { return &Broadcast{g: g, naive: true} }

// Name implements core.Protocol.
func (p *Broadcast) Name() string { return "dummy-broadcast" }

// NewNodes implements core.Protocol.
func (p *Broadcast) NewNodes() ([]core.Node, error) {
	nodes := make([]core.Node, p.g.NumReplicas())
	for i := range nodes {
		nodes[i] = newVectorNode(p.g, sharegraph.ReplicaID(i), p.Name(), p.diag, true, p.naive)
	}
	return nodes, nil
}

func newVectorNode(g *sharegraph.Graph, id sharegraph.ReplicaID, proto string, diag *core.Diag, broadcast, naive bool) *vectorNode {
	n := &vectorNode{
		id: id, g: g, proto: proto, diag: diag, broadcast: broadcast, naive: naive,
		v:      make(timestamp.Vec, g.NumReplicas()),
		store:  make(map[sharegraph.Register]core.Value),
		sharer: make([]bool, g.NumReplicas()),
		recip:  sharegraph.NewRecipientCache(g, id),
	}
	if !naive {
		n.q = ingest.NewSenderQueues[vecPending](g.NumReplicas())
	}
	return n
}

// ---------------------------------------------------------------------------
// Matrix

// Matrix is the R×R matrix-clock protocol (Raynal–Schiper–Toueg style):
// entry (l, d) counts the messages l is known to have sent to d. Safe and
// live under partial replication at quadratic metadata cost.
type Matrix struct {
	diagHolder
	g     *sharegraph.Graph
	naive bool
}

var (
	_ core.Protocol     = (*Matrix)(nil)
	_ core.DiagSettable = (*Matrix)(nil)
)

// NewMatrix builds the protocol.
func NewMatrix(g *sharegraph.Graph) *Matrix { return &Matrix{g: g} }

// NewMatrixRescan builds the protocol with the reference full-buffer
// rescan engine, for differential tests against the indexed engine.
func NewMatrixRescan(g *sharegraph.Graph) *Matrix { return &Matrix{g: g, naive: true} }

// Name implements core.Protocol.
func (p *Matrix) Name() string { return "matrix" }

// NewNodes implements core.Protocol.
func (p *Matrix) NewNodes() ([]core.Node, error) {
	n := p.g.NumReplicas()
	nodes := make([]core.Node, n)
	for i := range nodes {
		mn := &matrixNode{
			id: sharegraph.ReplicaID(i), g: p.g, r: n, diag: p.diag, naive: p.naive,
			m:     make(timestamp.Vec, n*n),
			store: make(map[sharegraph.Register]core.Value),
			recip: sharegraph.NewRecipientCache(p.g, sharegraph.ReplicaID(i)),
		}
		if !p.naive {
			mn.q = ingest.NewSenderQueues[matrixPending](n)
		}
		nodes[i] = mn
	}
	return nodes, nil
}

type matrixPending struct {
	env core.Envelope
	w   timestamp.Vec
}

// matrixNode's predicate reads only column "me" of the clock: the sender's
// entry must be exactly one past the local count (a per-receiver sequence
// number) and every other entry in the column at most equal — the same
// shape as the vector predicate, so the same per-sender seq-keyed engine
// applies.
type matrixNode struct {
	id    sharegraph.ReplicaID
	g     *sharegraph.Graph
	diag  *core.Diag
	r     int
	m     timestamp.Vec // row-major r×r: m[l*r+d] = msgs l sent to d (known)
	store map[sharegraph.Register]core.Value

	naive   bool
	pending []matrixPending // reference engine

	q        ingest.SenderQueues[matrixPending] // indexed engine
	applyBuf []core.Applied
	vecFree  []timestamp.Vec
	metaBuf  []byte
	recip    sharegraph.RecipientCache
}

var _ core.Node = (*matrixNode)(nil)

func (n *matrixNode) ID() sharegraph.ReplicaID { return n.id }

func (n *matrixNode) at(w timestamp.Vec, l, d sharegraph.ReplicaID) uint64 {
	return w[int(l)*n.r+int(d)]
}

func (n *matrixNode) HandleWrite(x sharegraph.Register, v core.Value, id causality.UpdateID, out core.Sink) error {
	if !n.g.StoresRegister(n.id, x) {
		return &core.NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	recipients := n.recip.Recipients(x)
	for _, d := range recipients {
		n.m[int(n.id)*n.r+int(d)]++
	}
	n.metaBuf = timestamp.EncodeTo(n.metaBuf[:0], n.m)
	for _, d := range recipients {
		out.Emit(core.Envelope{
			From: n.id, To: d, Reg: x, Val: v, Meta: n.metaBuf, OracleID: id,
		})
	}
	return nil
}

func (n *matrixNode) HandleMessage(env core.Envelope, out core.Sink) []core.Applied {
	w, ok := decodeMeta(n.diag, "matrix", n.id, env, &n.vecFree)
	if !ok || len(w) != n.r*n.r || !validSender(n.diag, "matrix", n.id, env, n.r) {
		return nil
	}
	// The buffered copy must not alias the runtime-owned Meta buffer,
	// which is reclaimed once this call returns.
	env.Meta = nil
	u := matrixPending{env: env, w: w}
	if n.naive {
		return n.drainNaive(u)
	}
	from := env.From
	if !n.q.Offer(int(from), n.at(w, from, n.id), n.at(n.m, from, n.id), u) {
		return nil
	}
	return n.drainHeads()
}

// drainHeads re-examines every sender's queue head until a fixpoint,
// mirroring vectorNode.drainHeads over column "me" of the matrix clock.
func (n *matrixNode) drainHeads() []core.Applied {
	out := n.applyBuf[:0]
	for {
		progress := false
		for k := 0; k < n.q.NumSenders(); k++ {
			if n.q.QueueLen(k) == 0 {
				continue
			}
			key := n.at(n.m, sharegraph.ReplicaID(k), n.id) + 1
			u, ok := n.q.Peek(k, key)
			if !ok || !n.matrixDeliverable(u) {
				continue
			}
			n.q.Remove(k, key)
			for p := range n.m {
				if u.w[p] > n.m[p] {
					n.m[p] = u.w[p]
				}
			}
			n.vecFree = append(n.vecFree, u.w)
			n.store[u.env.Reg] = u.env.Val
			out = append(out, core.Applied{
				OracleID: u.env.OracleID, From: u.env.From, Reg: u.env.Reg, Val: u.env.Val,
			})
			progress = true
		}
		if !progress {
			n.applyBuf = out
			return out
		}
	}
}

func (n *matrixNode) drainNaive(u matrixPending) []core.Applied {
	n.pending = append(n.pending, u)
	var out []core.Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if !n.matrixDeliverable(u) {
				continue
			}
			for p := range n.m {
				if u.w[p] > n.m[p] {
					n.m[p] = u.w[p]
				}
			}
			n.store[u.env.Reg] = u.env.Val
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			out = append(out, core.Applied{
				OracleID: u.env.OracleID, From: u.env.From, Reg: u.env.Reg, Val: u.env.Val,
			})
			progress = true
			idx--
		}
		if !progress {
			return out
		}
	}
}

// matrixDeliverable: w[from][me] = m[from][me] + 1 (FIFO from the sender)
// and w[l][me] ≤ m[l][me] for every l ≠ from (all messages to me that the
// sender knew about have arrived).
func (n *matrixNode) matrixDeliverable(u matrixPending) bool {
	from := u.env.From
	if n.at(u.w, from, n.id) != n.at(n.m, from, n.id)+1 {
		return false
	}
	for l := 0; l < n.r; l++ {
		rl := sharegraph.ReplicaID(l)
		if rl == from {
			continue
		}
		if n.at(u.w, rl, n.id) > n.at(n.m, rl, n.id) {
			return false
		}
	}
	return true
}

func (n *matrixNode) Read(x sharegraph.Register) (core.Value, bool) {
	if !n.g.StoresRegister(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *matrixNode) PendingCount() int {
	if n.naive {
		return len(n.pending)
	}
	return n.q.Len()
}

func (n *matrixNode) PendingOracleIDs() []causality.UpdateID {
	if n.naive {
		out := make([]causality.UpdateID, len(n.pending))
		for i, u := range n.pending {
			out[i] = u.env.OracleID
		}
		return out
	}
	out := make([]causality.UpdateID, 0, n.q.Len())
	n.q.All(func(u matrixPending) { out = append(out, u.env.OracleID) })
	return out
}

func (n *matrixNode) MetadataEntries() int { return n.r * n.r }
