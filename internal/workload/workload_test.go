package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/sharegraph"
)

func TestGenerateTargetsStoredRegisters(t *testing.T) {
	g := sharegraph.Fig5Example()
	s, err := Generate(g, Options{Ops: 500, ReadFraction: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 500 {
		t.Fatalf("len = %d, want 500", len(s))
	}
	reads := 0
	for _, op := range s {
		if !g.StoresRegister(op.Replica, op.Reg) {
			t.Fatalf("op targets unstored register: %+v", op)
		}
		if op.IsRead {
			reads++
		}
	}
	if reads == 0 || reads == 500 {
		t.Errorf("reads = %d, expected a mix", reads)
	}
	if s.Writes() != 500-reads {
		t.Errorf("Writes() = %d, want %d", s.Writes(), 500-reads)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := sharegraph.Ring(5)
	a, _ := Generate(g, Options{Ops: 100, Seed: 9})
	b, _ := Generate(g, Options{Ops: 100, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scripts diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	g := sharegraph.Fig3Example()
	if _, err := Generate(g, Options{Ops: -1}); err == nil {
		t.Error("negative ops accepted")
	}
	if _, err := Generate(g, Options{Ops: 1, ReadFraction: 1.5}); err == nil {
		t.Error("bad read fraction accepted")
	}
	if _, err := Generate(g, Options{Ops: 1, HotspotAlpha: 1.0}); err == nil {
		t.Error("bad hotspot alpha accepted")
	}
}

func TestHotspotSkew(t *testing.T) {
	g := sharegraph.Ring(4)
	s, err := Generate(g, Options{Ops: 2000, HotspotAlpha: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With alpha 0.9, each replica's lexicographically-first register must
	// dominate its op mix.
	first := make(map[sharegraph.ReplicaID]sharegraph.Register)
	for i := 0; i < g.NumReplicas(); i++ {
		first[sharegraph.ReplicaID(i)] = g.Stores(sharegraph.ReplicaID(i)).Sorted()[0]
	}
	hot, total := 0, 0
	for _, op := range s {
		total++
		if op.Reg == first[op.Replica] {
			hot++
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.8 {
		t.Errorf("hotspot fraction = %v, want > 0.8", frac)
	}
}

func TestSharedOnly(t *testing.T) {
	g := sharegraph.Ring(4) // priv registers are single-holder
	s := SharedOnly(g, 300, 5)
	if len(s) != 300 {
		t.Fatalf("len = %d", len(s))
	}
	for _, op := range s {
		if len(g.Holders(op.Reg)) < 2 {
			t.Fatalf("SharedOnly picked single-holder register %q", op.Reg)
		}
		if op.IsRead {
			t.Fatal("SharedOnly generated a read")
		}
	}
	// A graph with no shared registers yields an empty script.
	iso, err := sharegraph.New([][]sharegraph.Register{{"a"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := SharedOnly(iso, 10, 1); got != nil {
		t.Errorf("expected nil script, got %v", got)
	}
}

func TestUniformProperty(t *testing.T) {
	g := sharegraph.Grid(2, 2)
	prop := func(seed int64) bool {
		s := Uniform(g, 50, seed)
		if len(s) != 50 {
			return false
		}
		for _, op := range s {
			if op.IsRead || !g.StoresRegister(op.Replica, op.Reg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
