package workload

import (
	"reflect"
	"testing"

	"repro/internal/sharegraph"
)

func TestGenerateMultiDeterministicAndDecomposable(t *testing.T) {
	g := sharegraph.Ring(6)
	opts := MultiOptions{Spaces: 16, Ops: 2000, Zipf: 1.2, Seed: 9}
	m1, err := GenerateMulti(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := GenerateMulti(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Ops, m2.Ops) {
		t.Fatal("same options, different scripts")
	}

	// The interleaving must decompose exactly into the per-space scripts,
	// and each per-space script must be reproducible from the derived
	// seed alone — the property the sharded differential test rests on.
	counts := make([]int, opts.Spaces)
	next := make([]int, opts.Spaces)
	for i, mo := range m1.Ops {
		if mo.Space < 0 || mo.Space >= opts.Spaces {
			t.Fatalf("op %d: space %d out of range", i, mo.Space)
		}
		if mo.Op != m1.PerSpace(mo.Space)[next[mo.Space]] {
			t.Fatalf("op %d: interleaving diverges from PerSpace(%d)[%d]", i, mo.Space, next[mo.Space])
		}
		next[mo.Space]++
		counts[mo.Space]++
	}
	for s := 0; s < opts.Spaces; s++ {
		want := OwnerWrites(g, counts[s], SpaceSeed(opts.Seed, s))
		if !reflect.DeepEqual([]Op(m1.PerSpace(s)), []Op(want)) {
			t.Fatalf("space %d: PerSpace != OwnerWrites(%d ops, derived seed)", s, counts[s])
		}
		if got := len(m1.PerSpace(s)); got != counts[s] {
			t.Fatalf("space %d: %d ops in PerSpace, %d in interleaving", s, got, counts[s])
		}
	}
}

func TestGenerateMultiZipfSkews(t *testing.T) {
	g := sharegraph.Ring(4)
	m, err := GenerateMulti(g, MultiOptions{Spaces: 64, Ops: 8000, Zipf: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.Spaces)
	for _, mo := range m.Ops {
		counts[mo.Space]++
	}
	// Space 0 is the zipf head; it must dominate the tail half combined.
	tail := 0
	for s := m.Spaces / 2; s < m.Spaces; s++ {
		tail += counts[s]
	}
	if counts[0] <= tail {
		t.Errorf("zipf head got %d ops, tail half got %d — no skew", counts[0], tail)
	}

	u, err := GenerateMulti(g, MultiOptions{Spaces: 64, Ops: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uCounts := make([]int, u.Spaces)
	for _, mo := range u.Ops {
		uCounts[mo.Space]++
	}
	if uCounts[0] > 8000/4 {
		t.Errorf("uniform head got %d of 8000 ops — unexpectedly skewed", uCounts[0])
	}
}

func TestGenerateMultiValidation(t *testing.T) {
	g := sharegraph.Ring(3)
	for _, tc := range []MultiOptions{
		{Spaces: 0, Ops: 10},
		{Spaces: 4, Ops: -1},
		{Spaces: 4, Ops: 10, Zipf: 0.5},
		{Spaces: 4, Ops: 10, Zipf: 1},
	} {
		if _, err := GenerateMulti(g, tc); err == nil {
			t.Errorf("options %+v: expected error", tc)
		}
	}
	// Zero ops is a valid empty workload.
	m, err := GenerateMulti(g, MultiOptions{Spaces: 4})
	if err != nil || len(m.Ops) != 0 {
		t.Fatalf("empty workload: %v, %d ops", err, len(m.Ops))
	}
}
