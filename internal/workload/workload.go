// Package workload generates deterministic client operation scripts for
// the simulation experiments. The paper places no constraints on client
// behaviour, so workloads are the experiments' independent variable:
// uniform writes, hotspot (skewed) writes, and read/write mixes.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sharegraph"
)

// Op is one client operation, performed at a specific replica (the
// peer-to-peer model: each peer's client talks to its local replica).
type Op struct {
	Replica sharegraph.ReplicaID
	Reg     sharegraph.Register
	IsRead  bool
	// Val, when nonzero, pins the value a write stores. Zero lets the
	// runtime assign values in issue order — fine for consistency
	// auditing, but runtime-dependent: differential tests that compare
	// final register states across runtimes pin values here so both sides
	// write identical data.
	Val int64
}

// Script is an ordered list of per-replica operations. Operations of
// different replicas may interleave arbitrarily at run time; the script
// order is each replica's program order.
type Script []Op

// Writes returns the number of write operations in the script.
func (s Script) Writes() int {
	n := 0
	for _, op := range s {
		if !op.IsRead {
			n++
		}
	}
	return n
}

// Options configures generation.
type Options struct {
	// Ops is the total number of operations to generate.
	Ops int
	// ReadFraction in [0,1] is the probability an operation is a read.
	ReadFraction float64
	// HotspotAlpha in [0,1) skews register choice within a replica: with
	// probability HotspotAlpha the replica's first register is chosen.
	// 0 means uniform.
	HotspotAlpha float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces a script where each operation picks a replica
// uniformly and a register the replica stores (registers a replica does
// not store cannot be addressed in the peer-to-peer model).
func Generate(g *sharegraph.Graph, opts Options) (Script, error) {
	if opts.Ops < 0 {
		return nil, fmt.Errorf("workload: negative op count %d", opts.Ops)
	}
	if opts.ReadFraction < 0 || opts.ReadFraction > 1 {
		return nil, fmt.Errorf("workload: read fraction %v out of [0,1]", opts.ReadFraction)
	}
	if opts.HotspotAlpha < 0 || opts.HotspotAlpha >= 1 {
		return nil, fmt.Errorf("workload: hotspot alpha %v out of [0,1)", opts.HotspotAlpha)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := g.NumReplicas()
	regs := make([][]sharegraph.Register, n)
	for i := 0; i < n; i++ {
		regs[i] = g.Stores(sharegraph.ReplicaID(i)).Sorted()
	}
	out := make(Script, 0, opts.Ops)
	for len(out) < opts.Ops {
		r := rng.Intn(n)
		if len(regs[r]) == 0 {
			continue
		}
		var reg sharegraph.Register
		if opts.HotspotAlpha > 0 && rng.Float64() < opts.HotspotAlpha {
			reg = regs[r][0]
		} else {
			reg = regs[r][rng.Intn(len(regs[r]))]
		}
		out = append(out, Op{
			Replica: sharegraph.ReplicaID(r),
			Reg:     reg,
			IsRead:  rng.Float64() < opts.ReadFraction,
		})
	}
	return out, nil
}

// Uniform is Generate with all writes, uniform register choice.
func Uniform(g *sharegraph.Graph, ops int, seed int64) Script {
	s, err := Generate(g, Options{Ops: ops, Seed: seed})
	if err != nil {
		panic(err) // impossible: options are valid by construction
	}
	return s
}

// OwnerWrites generates writes where every register is only ever written
// at one fixed holder (its seeded-random "owner"), with values pinned to
// the op's script position. Single-writer registers make the final state
// schedule-independent for any protocol that delivers each sender's
// updates in send order, so runs of the same script on different
// runtimes — or under different schedules — must converge to identical
// register contents.
func OwnerWrites(g *sharegraph.Graph, ops int, seed int64) Script {
	rng := rand.New(rand.NewSource(seed))
	var writable []Op // one entry per register, at its owner
	for _, x := range g.Registers() {
		holders := g.Holders(x)
		if len(holders) == 0 {
			continue
		}
		owner := holders[rng.Intn(len(holders))]
		writable = append(writable, Op{Replica: owner, Reg: x})
	}
	if len(writable) == 0 {
		return nil
	}
	out := make(Script, ops)
	for i := range out {
		op := writable[rng.Intn(len(writable))]
		op.Val = int64(i + 1)
		out[i] = op
	}
	return out
}

// SharedOnly generates writes restricted to registers stored on at least
// two replicas, maximizing inter-replica traffic.
func SharedOnly(g *sharegraph.Graph, ops int, seed int64) Script {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumReplicas()
	var choices []Op
	for i := 0; i < n; i++ {
		for _, reg := range g.Stores(sharegraph.ReplicaID(i)).Sorted() {
			if len(g.Holders(reg)) >= 2 {
				choices = append(choices, Op{Replica: sharegraph.ReplicaID(i), Reg: reg})
			}
		}
	}
	if len(choices) == 0 {
		return nil
	}
	out := make(Script, ops)
	for i := range out {
		out[i] = choices[rng.Intn(len(choices))]
	}
	return out
}
