package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sharegraph"
)

// MultiOp is one operation of a multi-tenant workload: a register
// operation addressed to one of many independent register spaces.
type MultiOp struct {
	Space int
	Op    Op
}

// MultiScript is an interleaved multi-tenant workload over Spaces
// independent register spaces that all share one placement graph. The
// interleaving carries the tenant skew; each space's own subsequence is
// exactly the single-space script OwnerWrites would generate for that
// space's derived seed, so a sharded run can be differentially
// compared, space by space, against independent single-space runs of
// PerSpace(s).
type MultiScript struct {
	Spaces int
	Ops    []MultiOp

	perSpace []Script
}

// PerSpace returns space s's operation subsequence — identical to
// OwnerWrites(g, n_s, SpaceSeed(seed, s)) where n_s is the number of
// operations the skew assigned to s. The slice is shared with Ops;
// callers must not mutate it.
func (m *MultiScript) PerSpace(s int) Script { return m.perSpace[s] }

// MultiOptions configures multi-tenant generation.
type MultiOptions struct {
	// Spaces is the number of independent register spaces.
	Spaces int
	// Ops is the total operation count across all spaces.
	Ops int
	// Zipf skews space popularity: each operation's space is drawn from
	// a zipf distribution with this s parameter (must be > 1; heavier
	// skew as s grows). Zero selects the uniform distribution.
	Zipf float64
	// Seed makes generation deterministic; per-space scripts derive
	// their own seeds from it via SpaceSeed.
	Seed int64
}

// SpaceSeed derives space s's workload seed from the run seed. The
// multiplier decorrelates neighbouring spaces (same constant family as
// the engine's per-inbox shuffle streams).
func SpaceSeed(seed int64, s int) int64 {
	return seed ^ (int64(s+1) * 0x4f1bdcdcbfa53e0b)
}

// GenerateMulti produces a multi-tenant owner-writes workload: every
// operation picks a space (zipf-skewed or uniform), and within each
// space the operations are the single-writer pinned-value writes of
// OwnerWrites, so each space's final state is schedule-independent and
// byte-comparable across runtimes.
//
// Generation is two-pass: the space sequence is drawn first, then each
// space's subsequence is generated independently from its derived seed
// and spliced back into the interleaving. That structure is what makes
// PerSpace(s) exactly reproducible without the other spaces.
func GenerateMulti(g *sharegraph.Graph, opts MultiOptions) (*MultiScript, error) {
	if opts.Spaces <= 0 {
		return nil, fmt.Errorf("workload: space count %d, need at least one", opts.Spaces)
	}
	if opts.Ops < 0 {
		return nil, fmt.Errorf("workload: negative op count %d", opts.Ops)
	}
	if opts.Zipf != 0 && opts.Zipf <= 1 {
		return nil, fmt.Errorf("workload: zipf parameter %v must be > 1 (or 0 for uniform)", opts.Zipf)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var draw func() int
	if opts.Zipf > 1 {
		z := rand.NewZipf(rng, opts.Zipf, 1, uint64(opts.Spaces-1))
		draw = func() int { return int(z.Uint64()) }
	} else {
		draw = func() int { return rng.Intn(opts.Spaces) }
	}
	seq := make([]int, opts.Ops)
	counts := make([]int, opts.Spaces)
	for i := range seq {
		s := draw()
		seq[i] = s
		counts[s]++
	}
	m := &MultiScript{
		Spaces:   opts.Spaces,
		Ops:      make([]MultiOp, opts.Ops),
		perSpace: make([]Script, opts.Spaces),
	}
	for s := 0; s < opts.Spaces; s++ {
		m.perSpace[s] = OwnerWrites(g, counts[s], SpaceSeed(opts.Seed, s))
	}
	next := make([]int, opts.Spaces)
	for i, s := range seq {
		m.Ops[i] = MultiOp{Space: s, Op: m.perSpace[s][next[s]]}
		next[s]++
	}
	return m, nil
}
