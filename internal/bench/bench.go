// Package bench parses the repository's benchmark capture files: the
// JSON arrays scripts/bench.sh produces and the checked-in
// BENCH_PR<n>.json history. It is the shared loader behind
// cmd/prcc-benchgate (the regression gate) and cmd/prcc-trend (the
// trajectory table), so both tools agree on name canonicalization and
// metric handling.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Entry is one benchmark result: the name plus every numeric metric the
// bench.sh awk conversion captured (ns/op, B/op, allocs/op, ops/s, ...).
type Entry struct {
	Name       string
	Iterations int
	Metrics    map[string]float64
	Order      []string // metric emission order, canonicalized
}

// gomaxprocsSuffix matches the -GOMAXPROCS suffix go test appends to
// benchmark names on multi-core machines; captures from different
// machines must share names.
var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

// Load reads a scripts/bench.sh JSON file, returning its benchmark
// entries and the capture CPU recorded in the "_env" entry ("" for
// captures predating that field).
func Load(path string) ([]Entry, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	cpu := ""
	out := make([]Entry, 0, len(raw))
	for _, m := range raw {
		e := Entry{Metrics: map[string]float64{}}
		name, ok := m["name"].(string)
		if !ok {
			return nil, "", fmt.Errorf("%s: entry without a name", path)
		}
		if name == "_env" {
			cpu, _ = m["cpu"].(string)
			continue
		}
		e.Name = gomaxprocsSuffix.ReplaceAllString(name, "")
		if it, ok := m["iterations"].(float64); ok {
			e.Iterations = int(it)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		// JSON objects are unordered; canonicalize so text output is
		// stable: ns/op first, then the standard -benchmem pair, then
		// custom metrics alphabetically.
		sort.Slice(keys, func(i, j int) bool {
			return metricRank(keys[i]) < metricRank(keys[j]) || (metricRank(keys[i]) == metricRank(keys[j]) && keys[i] < keys[j])
		})
		for _, k := range keys {
			if k == "name" || k == "iterations" {
				continue
			}
			v, ok := m[k].(float64)
			if !ok {
				continue
			}
			e.Metrics[k] = v
			e.Order = append(e.Order, k)
		}
		out = append(out, e)
	}
	return out, cpu, nil
}

func metricRank(k string) int {
	switch k {
	case "name":
		return 0
	case "iterations":
		return 1
	case "ns/op":
		return 2
	case "B/op":
		return 3
	case "allocs/op":
		return 4
	default:
		return 5
	}
}
