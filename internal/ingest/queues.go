// Package ingest implements the per-sender buffering every indexed
// delivery engine in this repository shares. All four protocols
// (edge-indexed, fifo-only, the vector-clock pair, matrix) gate delivery
// from a given sender on a per-receiver sequence number that each send
// advances by exactly one, so a receiver can file buffered updates in
// per-sender queues keyed by that number: an out-of-order arrival is one
// map insert, and at most one entry per sender — the exact key gate+1 —
// can ever be deliverable. SenderQueues centralizes that filing logic
// (range and duplicate guards, lazy map initialization, the gate
// comparison, dead parking, pending accounting), which before this package
// was instantiated separately in core.edgeNode and the three baseline
// nodes.
package ingest

// SenderQueues buffers not-yet-deliverable updates of type P, one queue
// per sender, keyed by the update's per-receiver sequence number. The
// zero value is not ready to use; construct with NewSenderQueues.
//
// SenderQueues does not evaluate the protocol's full deliverability
// predicate — only its sequence-number skeleton. Callers keep the gate
// counters (they live inside protocol timestamps) and run the full
// predicate on queue heads via Peek before committing with Remove.
type SenderQueues[P any] struct {
	queues []map[uint64]P
	// dead parks updates the predicate can never admit again: replayed or
	// stale sequence numbers (the gate only grows, so strict equality
	// gate+1 = seq can never hold), duplicates of an already-filed key,
	// and updates whose sender edge is untracked. They stay counted in
	// Len so pending accounting matches the reference rescan engines,
	// which keep rescanning such updates forever in vain.
	dead []P
	n    int
}

// NewSenderQueues builds queues for the given number of senders.
func NewSenderQueues[P any](senders int) SenderQueues[P] {
	return SenderQueues[P]{queues: make([]map[uint64]P, senders)}
}

// NumSenders returns the number of per-sender queues. Callers must
// bounds-check envelope senders against the replica set before filing
// (the guard lives with the protocols, which also serve the reference
// engines and log with protocol context); Offer indexes by sender
// unchecked.
func (q *SenderQueues[P]) NumSenders() int { return len(q.queues) }

// Offer files update u from sender from, carrying sequence number seq,
// given the receiver's current gate counter for that sender. Stale
// sequence numbers (seq ≤ gate) and duplicates of an already-filed key
// are parked dead. It returns true exactly when seq == gate+1, i.e. when
// the sender's queue head may now satisfy the full predicate and the
// caller should drain.
func (q *SenderQueues[P]) Offer(from int, seq, gate uint64, u P) bool {
	q.n++
	if seq <= gate {
		q.dead = append(q.dead, u)
		return false
	}
	m := q.queues[from]
	if _, dup := m[seq]; dup {
		q.dead = append(q.dead, u)
		return false
	}
	if m == nil {
		m = make(map[uint64]P)
		q.queues[from] = m
	}
	m[seq] = u
	return seq == gate+1
}

// Park files an update that can never become deliverable regardless of
// sequence number — e.g. the edge-indexed protocol receiving from a
// sender whose edge counter its truncated timestamp graph does not track.
func (q *SenderQueues[P]) Park(u P) {
	q.dead = append(q.dead, u)
	q.n++
}

// Peek returns the update filed under seq for the given sender, without
// removing it.
func (q *SenderQueues[P]) Peek(from int, seq uint64) (P, bool) {
	u, ok := q.queues[from][seq]
	return u, ok
}

// Remove unfiles the update at (from, seq) after the caller applied it.
func (q *SenderQueues[P]) Remove(from int, seq uint64) {
	delete(q.queues[from], seq)
	q.n--
}

// Len returns the number of buffered updates, counting dead-parked ones —
// the pending_i set size of the replica prototype.
func (q *SenderQueues[P]) Len() int { return q.n }

// QueueLen returns the number of live (non-dead) updates buffered from
// one sender. Drain loops use it to skip senders with nothing filed.
func (q *SenderQueues[P]) QueueLen(from int) int { return len(q.queues[from]) }

// All calls yield for every buffered update — live queues first, then the
// dead parking — in unspecified order. False-dependency accounting and
// diagnostics use it; protocols must not.
func (q *SenderQueues[P]) All(yield func(P)) {
	for _, m := range q.queues {
		for _, u := range m {
			yield(u)
		}
	}
	for _, u := range q.dead {
		yield(u)
	}
}
