package ingest

import (
	"testing"
)

// FuzzSenderQueues drives random interleavings of offers (including
// out-of-range senders, stale and duplicate sequence numbers) and
// park/drain cycles against a reference model, asserting the queues never
// panic, never mis-count, and never surface an update out of
// sequence-number order — the skeleton of predicate J.
func FuzzSenderQueues(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 0, 0, 3, 0, 250, 9, 0})
	f.Add([]byte{3, 1, 1, 2, 2, 2, 1, 1, 1, 0, 0, 0, 0, 1, 4})
	f.Add([]byte{})
	// Exact duplicates: every sequence number offered twice back to back —
	// once ahead of the gate (duplicate key parks dead) and once at it.
	f.Add([]byte{0, 1, 1, 0, 1, 1, 0, 2, 1, 0, 2, 1, 0, 3, 1, 0, 3, 1})
	// Stale replays: drain 1..3, then replay 1, 2 and the never-valid 0 —
	// all must park dead below the gate, never re-deliver.
	f.Add([]byte{0, 1, 1, 0, 2, 1, 0, 3, 1, 0, 1, 1, 0, 2, 1, 0, 0, 1})
	// Duplicate storm across two senders with interleaved parks.
	f.Add([]byte{1, 4, 1, 1, 4, 1, 2, 4, 1, 2, 4, 1, 1, 1, 1, 1, 1, 1, 2, 1, 0, 1, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const senders = 4
		q := NewSenderQueues[uint64](senders)
		gates := make([]uint64, senders)
		model := 0 // every accepted update, live or dead
		for i := 0; i+2 < len(data); i += 3 {
			from := int(int8(data[i])) // frequently out of range, incl. negative
			seq := uint64(data[i+1] % 16)
			if from < 0 || from >= q.NumSenders() {
				// Caller contract: out-of-range senders are dropped before
				// filing (the protocols guard and log them).
				continue
			}
			if data[i+2]%7 == 0 {
				q.Park(seq)
				model++
				continue
			}
			atGate := q.Offer(from, seq, gates[from], seq)
			model++
			if atGate != (seq == gates[from]+1) {
				t.Fatalf("Offer(from=%d seq=%d gate=%d) = %v", from, seq, gates[from], atGate)
			}
			if atGate {
				// Drain like the FIFO protocol: heads are unconditionally
				// deliverable. Every surfaced update must carry exactly the
				// next sequence number — predicate-J order.
				for {
					u, ok := q.Peek(from, gates[from]+1)
					if !ok {
						break
					}
					if u != gates[from]+1 {
						t.Fatalf("delivered seq %d at gate %d: out of order", u, gates[from])
					}
					q.Remove(from, gates[from]+1)
					gates[from]++
					model--
				}
			}
			if q.Len() != model {
				t.Fatalf("Len = %d, model %d", q.Len(), model)
			}
		}
		visited := 0
		q.All(func(uint64) { visited++ })
		if visited != q.Len() {
			t.Fatalf("All visited %d of Len %d", visited, q.Len())
		}
	})
}
