package ingest

import (
	"sort"
	"testing"
)

func TestOfferGateAndDup(t *testing.T) {
	q := NewSenderQueues[string](3)
	if q.NumSenders() != 3 {
		t.Errorf("NumSenders = %d", q.NumSenders())
	}
	// seq exactly gate+1 reports deliverable.
	if !q.Offer(0, 1, 0, "a1") {
		t.Error("Offer(gate+1) = false")
	}
	// Out of order: filed, not deliverable.
	if q.Offer(0, 3, 0, "a3") {
		t.Error("Offer(gate+3) = true")
	}
	// Stale: parked dead, still counted.
	if q.Offer(0, 0, 0, "stale") {
		t.Error("stale Offer = true")
	}
	// Duplicate key: parked dead.
	if q.Offer(0, 3, 0, "dup") {
		t.Error("dup Offer = true")
	}
	q.Park("untracked")
	if q.Len() != 5 {
		t.Errorf("Len = %d, want 5", q.Len())
	}
	if q.QueueLen(0) != 2 || q.QueueLen(1) != 0 {
		t.Errorf("QueueLen = %d/%d", q.QueueLen(0), q.QueueLen(1))
	}

	if u, ok := q.Peek(0, 1); !ok || u != "a1" {
		t.Errorf("Peek(0,1) = %q,%v", u, ok)
	}
	if _, ok := q.Peek(0, 2); ok {
		t.Error("Peek(0,2) found nothing filed")
	}
	if _, ok := q.Peek(1, 1); ok {
		t.Error("Peek on empty sender found something")
	}
	q.Remove(0, 1)
	if q.Len() != 4 || q.QueueLen(0) != 1 {
		t.Errorf("after Remove: Len=%d QueueLen=%d", q.Len(), q.QueueLen(0))
	}

	var all []string
	q.All(func(s string) { all = append(all, s) })
	sort.Strings(all)
	want := []string{"a3", "dup", "stale", "untracked"}
	if len(all) != len(want) {
		t.Fatalf("All visited %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("All visited %v, want %v", all, want)
		}
	}
}

func TestDrainChain(t *testing.T) {
	q := NewSenderQueues[int](2)
	// File 5..2 out of order from sender 1; nothing deliverable yet.
	for seq := uint64(5); seq >= 2; seq-- {
		if q.Offer(1, seq, 0, int(seq)) {
			t.Fatalf("Offer(%d) deliverable before head", seq)
		}
	}
	// The head arrives: drain the chain in sequence order.
	if !q.Offer(1, 1, 0, 1) {
		t.Fatal("head Offer not deliverable")
	}
	gate := uint64(0)
	var got []int
	for {
		u, ok := q.Peek(1, gate+1)
		if !ok {
			break
		}
		q.Remove(1, gate+1)
		gate++
		got = append(got, u)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("drained %v, want 1..5 in order", got)
		}
	}
	if len(got) != 5 || q.Len() != 0 {
		t.Fatalf("drained %d, Len=%d", len(got), q.Len())
	}
}
