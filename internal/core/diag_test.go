package core

import (
	"testing"
)

// TestDiagRateLimit: every drop counts and fires the hook, but only the
// first diagLogFirst drops log, then one in diagLogEvery.
func TestDiagRateLimit(t *testing.T) {
	logged := 0
	hooked := 0
	d := NewDiag(func(string, ...any) { logged++ }, func(int) { hooked++ })
	total := diagLogFirst + 2*diagLogEvery
	for i := 0; i < total; i++ {
		d.Dropf(3, "drop %d", i)
	}
	if got := d.Drops(); got != uint64(total) {
		t.Errorf("Drops() = %d, want %d", got, total)
	}
	if hooked != total {
		t.Errorf("onDrop fired %d times, want every drop (%d)", hooked, total)
	}
	if want := diagLogFirst + 2; logged != want {
		t.Errorf("logged %d lines for %d drops, want %d (first %d + 1/%d after)",
			logged, total, want, diagLogFirst, diagLogEvery)
	}
}

// TestDiagNilSafe: a nil *Diag must not panic — it falls back to the
// shared package default, whose counter absorbs the drop.
func TestDiagNilSafe(t *testing.T) {
	var d *Diag
	before := d.Drops()
	d.Dropf(0, "diag nil-receiver test drop")
	if got := d.Drops(); got != before+1 {
		t.Errorf("nil Diag drops went %d -> %d, want +1 via the package default", before, got)
	}
}
