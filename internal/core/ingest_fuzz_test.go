package core

import (
	"io"
	"log"
	"testing"

	"repro/internal/causality"
	"repro/internal/sharegraph"
)

// FuzzEdgeNodeIngest hammers the indexed engine's envelope guards through
// the real node: random interleavings of valid, replayed, truncated,
// padded (wrong vector length) and invalid-sender envelopes must never
// panic and never apply a sender's updates out of send order — the
// predicate-J guarantee the ingest queues encode.
func FuzzEdgeNodeIngest(f *testing.F) {
	f.Add([]byte{0, 0, 5, 1, 9, 2, 3, 0, 7, 5})
	f.Add([]byte{23, 0, 22, 0, 21, 0, 1, 3, 2, 4, 0, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 0})
	// Exact duplicates: every envelope delivered twice back to back, the
	// dup-lottery shape the chaotic transport produces.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0, 2, 0, 2, 0, 3, 0, 3, 0})
	// Stale replays: deliver 0..5 in order, then re-deliver 0, 1, 2 —
	// the retransmit-after-apply shape; all three must park dead.
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 0, 0, 1, 0, 2, 0})
	// Duplicates of a parked (ahead-of-gate) envelope, then the gap fills.
	f.Add([]byte{2, 0, 2, 0, 3, 0, 3, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The guards log dropped envelopes; silence the noise for fuzzing.
		old := log.Writer()
		log.SetOutput(io.Discard)
		defer log.SetOutput(old)

		g := sharegraph.Line(2)
		p, err := NewEdgeIndexed(g)
		if err != nil {
			t.Fatal(err)
		}
		nodes, err := p.NewNodes()
		if err != nil {
			t.Fatal(err)
		}
		// A pool of genuine in-order envelopes from replica 0 to replica 1.
		const writes = 24
		envs := make([]Envelope, writes)
		for i := 0; i < writes; i++ {
			out, err := CollectWrite(nodes[0], "seg0", Value(i+1), causality.UpdateID(i))
			if err != nil || len(out) != 1 {
				t.Fatalf("write %d: %v %v", i, err, out)
			}
			envs[i] = out[0]
		}
		recv := nodes[1]
		lastVal := Value(0)
		for i := 0; i+1 < len(data); i += 2 {
			env := envs[int(data[i])%writes]
			switch data[i+1] % 8 {
			case 1: // truncated metadata: decode error, dropped
				env.Meta = env.Meta[:len(env.Meta)/2]
			case 2: // padded metadata: wrong-length vector, dropped
				padded := append([]byte(nil), env.Meta...)
				env.Meta = append(padded, 0, 0)
			case 3: // sender beyond the replica set
				env.From = 7
			case 4: // negative sender
				env.From = -1
			case 5: // empty metadata
				env.Meta = nil
			default: // deliver intact (dups arise from repeated picks)
			}
			applied, fwd := CollectMessage(recv, env)
			if len(fwd) != 0 {
				t.Fatalf("edge-indexed forwarded %d messages", len(fwd))
			}
			for _, a := range applied {
				// Values were written 1..writes in send order; per-sender
				// delivery must preserve it.
				if a.Val <= lastVal {
					t.Fatalf("applied value %d after %d: out of send order", a.Val, lastVal)
				}
				lastVal = a.Val
			}
			if recv.PendingCount() < 0 {
				t.Fatalf("negative pending count")
			}
		}
	})
}
