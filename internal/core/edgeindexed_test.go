package core

import (
	"errors"
	"testing"

	"repro/internal/causality"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

func newProto(t testing.TB, g *sharegraph.Graph) *EdgeIndexed {
	t.Helper()
	p, err := NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newNodes(t testing.TB, p Protocol) []Node {
	t.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestWriteLocalApplyAndFanout(t *testing.T) {
	g := sharegraph.Fig5Example()
	p := newProto(t, g)
	nodes := newNodes(t, p)

	// Replica 0 writes y; y is stored at 0, 1 and 3 → two messages.
	envs, err := CollectWrite(nodes[0], "y", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("fanout = %d messages, want 2", len(envs))
	}
	dests := map[sharegraph.ReplicaID]bool{}
	for _, e := range envs {
		if e.From != 0 || e.Reg != "y" || e.Val != 42 || e.MetaOnly {
			t.Errorf("bad envelope %+v", e)
		}
		if len(e.Meta) == 0 {
			t.Error("empty metadata")
		}
		dests[e.To] = true
	}
	if !dests[1] || !dests[3] {
		t.Errorf("destinations = %v, want {1,3}", dests)
	}
	// Local copy visible immediately (step 2(i)).
	if v, ok := nodes[0].Read("y"); !ok || v != 42 {
		t.Errorf("Read(y) = (%d,%v), want (42,true)", v, ok)
	}
}

func TestWriteUnstoredRegister(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	_, err := CollectWrite(nodes[0], "z", 1, 0) // z not at replica 0
	var nse *NotStoredError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want NotStoredError", err)
	}
	if nse.Replica != 0 || nse.Register != "z" {
		t.Errorf("NotStoredError fields = %+v", nse)
	}
	if nse.Error() == "" {
		t.Error("empty error string")
	}
}

func TestPendingDrainCascade(t *testing.T) {
	// Two sequential updates from 0 arrive at 1 in reverse order; applying
	// the first must cascade-apply the buffered second in the same call.
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	e1, err := CollectWrite(nodes[0], "x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := CollectWrite(nodes[0], "x", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := CollectMessage(nodes[1], e2[0]); len(got) != 0 {
		t.Fatalf("second update applied out of order: %v", got)
	}
	if nodes[1].PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", nodes[1].PendingCount())
	}
	ids := nodes[1].PendingOracleIDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("PendingOracleIDs = %v", ids)
	}
	applied, _ := CollectMessage(nodes[1], e1[0])
	if len(applied) != 2 {
		t.Fatalf("cascade applied %d updates, want 2", len(applied))
	}
	if applied[0].OracleID != 0 || applied[1].OracleID != 1 {
		t.Errorf("apply order = %v", applied)
	}
	if v, _ := nodes[1].Read("x"); v != 2 {
		t.Errorf("final x = %d, want 2", v)
	}
	if nodes[1].PendingCount() != 0 {
		t.Error("pending not drained")
	}
}

func TestCorruptMetadataDropped(t *testing.T) {
	g := sharegraph.Fig3Example()
	for _, build := range []func(*sharegraph.Graph) (*EdgeIndexed, error){
		NewEdgeIndexed, NewEdgeIndexedNaive,
	} {
		p, err := build(g)
		if err != nil {
			t.Fatal(err)
		}
		nodes := newNodes(t, p)
		valid, err := CollectWrite(nodes[0], "x", 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for name, env := range map[string]Envelope{
			"corrupt bytes":  {From: 0, To: 1, Reg: "x", Meta: []byte{0xff}},
			"invalid sender": {From: 99, To: 1, Reg: "x", Meta: valid[0].Meta},
			"negative sender": {From: -1, To: 1, Reg: "x",
				Meta: timestamp.Encode(timestamp.Vec{1, 2})},
			"wrong length": {From: 0, To: 1, Reg: "x",
				Meta: timestamp.Encode(timestamp.Vec{})},
		} {
			applied, _ := CollectMessage(nodes[1], env)
			if len(applied) != 0 || nodes[1].PendingCount() != 0 {
				t.Errorf("%s: %s message was not dropped", p.Name(), name)
			}
		}
	}
}

func TestMetadataEntriesMatchTimestampGraph(t *testing.T) {
	g := sharegraph.Fig5Example()
	p := newProto(t, g)
	nodes := newNodes(t, p)
	for i, n := range nodes {
		want := p.Space().Len(sharegraph.ReplicaID(i))
		if n.MetadataEntries() != want {
			t.Errorf("replica %d: MetadataEntries = %d, want |E_%d| = %d",
				i, n.MetadataEntries(), i, want)
		}
	}
}

func TestNodeTimestampClone(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	en := nodes[0].(*edgeNode)
	ts := en.Timestamp()
	if len(ts) == 0 {
		t.Fatal("empty timestamp")
	}
	ts[0] = 999
	if en.τ[0] == 999 {
		t.Error("Timestamp() shares storage with the node")
	}
	if nodes[0].ID() != 0 {
		t.Errorf("ID = %d", nodes[0].ID())
	}
	if newProto(t, g).Name() != "edge-indexed" {
		t.Error("wrong protocol name")
	}
}

func TestReadUnstored(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	if _, ok := nodes[0].Read("z"); ok {
		t.Error("Read of unstored register reported ok")
	}
}

func BenchmarkHandleWriteFanout(b *testing.B) {
	g := sharegraph.FullReplication(8, 4)
	nodes := newNodes(b, newProto(b, g))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// The emit contract makes the steady-state fanout allocation-free;
		// a discard sink measures the node's own cost alone.
		if err := nodes[0].HandleWrite("r0", Value(n), 0, DiscardSink{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleMessage(b *testing.B) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(b, newProto(b, g))
	envs, err := CollectWrite(nodes[0], "x", 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	recv := nodes[1].(*edgeNode)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		recv.HandleMessage(envs[0], DiscardSink{})
		// Reset the timestamp so the predicate outcome stays constant; the
		// indexed queues self-clean on apply (asserted once, cheaply).
		if recv.PendingCount() != 0 {
			b.Fatal("queue did not drain")
		}
		recv.τ = recv.space.Zero(1)
	}
}

// TestRedeliveredUpdateParksForever exercises the engine's dead buffer:
// a replayed update whose sequence number is already behind the gate can
// never satisfy predicate J's strict equality, so it must stay buffered
// (as the reference engine keeps it) without wedging the live queues.
func TestRedeliveredUpdateParksForever(t *testing.T) {
	g := sharegraph.Fig3Example()
	for _, build := range []func(*sharegraph.Graph) (*EdgeIndexed, error){
		NewEdgeIndexed, NewEdgeIndexedNaive,
	} {
		p, err := build(g)
		if err != nil {
			t.Fatal(err)
		}
		nodes := newNodes(t, p)
		e1, err := CollectWrite(nodes[0], "x", 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if applied, _ := CollectMessage(nodes[1], e1[0]); len(applied) != 1 {
			t.Fatalf("%s: first delivery applied %d updates", p.Name(), len(applied))
		}
		// Replay the same envelope: seq 1 is now ≤ the gate.
		if applied, _ := CollectMessage(nodes[1], e1[0]); len(applied) != 0 {
			t.Fatalf("%s: replay was applied", p.Name())
		}
		if got := nodes[1].PendingCount(); got != 1 {
			t.Fatalf("%s: PendingCount = %d, want 1 (parked replay)", p.Name(), got)
		}
		// Later traffic keeps flowing past the parked replay.
		e2, err := CollectWrite(nodes[0], "x", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if applied, _ := CollectMessage(nodes[1], e2[0]); len(applied) != 1 {
			t.Fatalf("%s: delivery after replay did not apply", p.Name())
		}
		ids := nodes[1].PendingOracleIDs()
		if len(ids) != 1 || ids[0] != 0 {
			t.Fatalf("%s: PendingOracleIDs = %v, want [0]", p.Name(), ids)
		}
	}
}

// TestIndexedIngestAllocsFlat asserts the acceptance criterion that
// buffering cost does not scale with the pending-buffer size: allocations
// per ingested message stay flat as the out-of-order window grows 8×.
func TestIndexedIngestAllocsFlat(t *testing.T) {
	g := sharegraph.Line(2)
	p := newProto(t, g)
	perMsg := func(window int) float64 {
		nodes := newNodes(t, p)
		envs := make([]Envelope, window)
		for i := 0; i < window; i++ {
			out, err := CollectWrite(nodes[0], "seg0", Value(i), causality.UpdateID(i))
			if err != nil || len(out) != 1 {
				t.Fatalf("write %d: %v", i, err)
			}
			envs[window-1-i] = out[0]
		}
		allocs := testing.AllocsPerRun(10, func() {
			recv, err := p.NewNodes()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range envs {
				CollectMessage(recv[1], e)
			}
			if recv[1].PendingCount() != 0 {
				t.Fatal("window did not drain")
			}
		})
		return allocs / float64(window)
	}
	small, large := perMsg(128), perMsg(1024)
	if large > small*1.5+0.5 {
		t.Errorf("allocs per message grew with pending window: %.2f at 128 vs %.2f at 1024", small, large)
	}
}

// TestRoutedDummySemantics exercises the Section 5 dummy-register routing
// variant at the node level: metadata-only fanout to dummy holders, which
// merge timestamps but never expose values or accept operations.
func TestRoutedDummySemantics(t *testing.T) {
	// Effective graph: x lives at 0, 1 and (as a dummy) 2.
	eff, err := sharegraph.New([][]sharegraph.Register{
		{"x"}, {"x", "y"}, {"x", "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	realStore := func(r sharegraph.ReplicaID, x sharegraph.Register) bool {
		return !(r == 2 && x == "x") // replica 2's copy of x is a dummy
	}
	p, err := NewEdgeIndexedRouted(eff, realStore, "routed")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "routed" {
		t.Error("bad name")
	}
	nodes := newNodes(t, p)
	envs, err := CollectWrite(nodes[0], "x", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawData, sawMeta bool
	for _, e := range envs {
		switch e.To {
		case 1:
			sawData = !e.MetaOnly
		case 2:
			sawMeta = e.MetaOnly
		}
	}
	if !sawData || !sawMeta {
		t.Fatalf("fanout wrong: %+v", envs)
	}
	// The dummy holder merges but neither applies nor exposes the value.
	for _, e := range envs {
		if e.To != 2 {
			continue
		}
		applied, fwd := CollectMessage(nodes[2], e)
		if len(applied) != 0 || len(fwd) != 0 {
			t.Error("dummy delivery produced applies or forwards")
		}
	}
	if _, ok := nodes[2].Read("x"); ok {
		t.Error("dummy copy readable")
	}
	if _, err := CollectWrite(nodes[2], "x", 1, 1); err == nil {
		t.Error("write accepted at dummy holder")
	}
	if v, ok := nodes[2].Read("y"); !ok || v != 0 {
		t.Error("genuine register unreadable at dummy holder")
	}
}
