package core

import (
	"errors"
	"testing"

	"repro/internal/sharegraph"
)

func newProto(t testing.TB, g *sharegraph.Graph) *EdgeIndexed {
	t.Helper()
	p, err := NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newNodes(t testing.TB, p Protocol) []Node {
	t.Helper()
	nodes, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestWriteLocalApplyAndFanout(t *testing.T) {
	g := sharegraph.Fig5Example()
	p := newProto(t, g)
	nodes := newNodes(t, p)

	// Replica 0 writes y; y is stored at 0, 1 and 3 → two messages.
	envs, err := nodes[0].HandleWrite("y", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("fanout = %d messages, want 2", len(envs))
	}
	dests := map[sharegraph.ReplicaID]bool{}
	for _, e := range envs {
		if e.From != 0 || e.Reg != "y" || e.Val != 42 || e.MetaOnly {
			t.Errorf("bad envelope %+v", e)
		}
		if len(e.Meta) == 0 {
			t.Error("empty metadata")
		}
		dests[e.To] = true
	}
	if !dests[1] || !dests[3] {
		t.Errorf("destinations = %v, want {1,3}", dests)
	}
	// Local copy visible immediately (step 2(i)).
	if v, ok := nodes[0].Read("y"); !ok || v != 42 {
		t.Errorf("Read(y) = (%d,%v), want (42,true)", v, ok)
	}
}

func TestWriteUnstoredRegister(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	_, err := nodes[0].HandleWrite("z", 1, 0) // z not at replica 0
	var nse *NotStoredError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want NotStoredError", err)
	}
	if nse.Replica != 0 || nse.Register != "z" {
		t.Errorf("NotStoredError fields = %+v", nse)
	}
	if nse.Error() == "" {
		t.Error("empty error string")
	}
}

func TestPendingDrainCascade(t *testing.T) {
	// Two sequential updates from 0 arrive at 1 in reverse order; applying
	// the first must cascade-apply the buffered second in the same call.
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	e1, err := nodes[0].HandleWrite("x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := nodes[0].HandleWrite("x", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := nodes[1].HandleMessage(e2[0]); len(got) != 0 {
		t.Fatalf("second update applied out of order: %v", got)
	}
	if nodes[1].PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", nodes[1].PendingCount())
	}
	ids := nodes[1].PendingOracleIDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("PendingOracleIDs = %v", ids)
	}
	applied, _ := nodes[1].HandleMessage(e1[0])
	if len(applied) != 2 {
		t.Fatalf("cascade applied %d updates, want 2", len(applied))
	}
	if applied[0].OracleID != 0 || applied[1].OracleID != 1 {
		t.Errorf("apply order = %v", applied)
	}
	if v, _ := nodes[1].Read("x"); v != 2 {
		t.Errorf("final x = %d, want 2", v)
	}
	if nodes[1].PendingCount() != 0 {
		t.Error("pending not drained")
	}
}

func TestCorruptMetadataDropped(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	applied, _ := nodes[1].HandleMessage(Envelope{From: 0, To: 1, Reg: "x", Meta: []byte{0xff}})
	if len(applied) != 0 || nodes[1].PendingCount() != 0 {
		t.Error("corrupt message was not dropped")
	}
}

func TestMetadataEntriesMatchTimestampGraph(t *testing.T) {
	g := sharegraph.Fig5Example()
	p := newProto(t, g)
	nodes := newNodes(t, p)
	for i, n := range nodes {
		want := p.Space().Len(sharegraph.ReplicaID(i))
		if n.MetadataEntries() != want {
			t.Errorf("replica %d: MetadataEntries = %d, want |E_%d| = %d",
				i, n.MetadataEntries(), i, want)
		}
	}
}

func TestNodeTimestampClone(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	en := nodes[0].(*edgeNode)
	ts := en.Timestamp()
	if len(ts) == 0 {
		t.Fatal("empty timestamp")
	}
	ts[0] = 999
	if en.τ[0] == 999 {
		t.Error("Timestamp() shares storage with the node")
	}
	if nodes[0].ID() != 0 {
		t.Errorf("ID = %d", nodes[0].ID())
	}
	if newProto(t, g).Name() != "edge-indexed" {
		t.Error("wrong protocol name")
	}
}

func TestReadUnstored(t *testing.T) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(t, newProto(t, g))
	if _, ok := nodes[0].Read("z"); ok {
		t.Error("Read of unstored register reported ok")
	}
}

func BenchmarkHandleWriteFanout(b *testing.B) {
	g := sharegraph.FullReplication(8, 4)
	nodes := newNodes(b, newProto(b, g))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := nodes[0].HandleWrite("r0", Value(n), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleMessage(b *testing.B) {
	g := sharegraph.Fig3Example()
	nodes := newNodes(b, newProto(b, g))
	envs, err := nodes[0].HandleWrite("x", 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	recv := nodes[1].(*edgeNode)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		recv.HandleMessage(envs[0])
		// Reset receiver state so the predicate outcome stays constant.
		recv.τ = recv.space.Zero(1)
		recv.pending = recv.pending[:0]
	}
}

// TestRoutedDummySemantics exercises the Section 5 dummy-register routing
// variant at the node level: metadata-only fanout to dummy holders, which
// merge timestamps but never expose values or accept operations.
func TestRoutedDummySemantics(t *testing.T) {
	// Effective graph: x lives at 0, 1 and (as a dummy) 2.
	eff, err := sharegraph.New([][]sharegraph.Register{
		{"x"}, {"x", "y"}, {"x", "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	realStore := func(r sharegraph.ReplicaID, x sharegraph.Register) bool {
		return !(r == 2 && x == "x") // replica 2's copy of x is a dummy
	}
	p, err := NewEdgeIndexedRouted(eff, realStore, "routed")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "routed" {
		t.Error("bad name")
	}
	nodes := newNodes(t, p)
	envs, err := nodes[0].HandleWrite("x", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawData, sawMeta bool
	for _, e := range envs {
		switch e.To {
		case 1:
			sawData = !e.MetaOnly
		case 2:
			sawMeta = e.MetaOnly
		}
	}
	if !sawData || !sawMeta {
		t.Fatalf("fanout wrong: %+v", envs)
	}
	// The dummy holder merges but neither applies nor exposes the value.
	for _, e := range envs {
		if e.To != 2 {
			continue
		}
		applied, fwd := nodes[2].HandleMessage(e)
		if len(applied) != 0 || len(fwd) != 0 {
			t.Error("dummy delivery produced applies or forwards")
		}
	}
	if _, ok := nodes[2].Read("x"); ok {
		t.Error("dummy copy readable")
	}
	if _, err := nodes[2].HandleWrite("x", 1, 1); err == nil {
		t.Error("write accepted at dummy holder")
	}
	if v, ok := nodes[2].Read("y"); !ok || v != 0 {
		t.Error("genuine register unreadable at dummy holder")
	}
}
